#!/bin/sh
# Tier-1 gate: build, test suite, and a smoke batch through the
# experiment registry (2 domains, abbreviated durations, JSONL sink).
set -eux

dune build
dune runtest
dune exec bin/mcc.exe -- run --all --quick --jobs 2 --json /tmp/out.jsonl --quiet
test -s /tmp/out.jsonl

# Telemetry smoke: a metrics-enabled run must emit parseable JSONL with
# a busy bottleneck (nonzero link.drops on fig1's congested link).
dune exec bin/mcc.exe -- run --only fig1 --quick --json /tmp/out2.jsonl \
  --metrics=/tmp/m.jsonl --quiet
test -s /tmp/out2.jsonl
test -s /tmp/m.jsonl
if command -v python3 >/dev/null 2>&1; then
  python3 - <<'EOF'
import json

for path in ("/tmp/out.jsonl", "/tmp/out2.jsonl", "/tmp/m.jsonl"):
    with open(path) as f:
        rows = [json.loads(line) for line in f if line.strip()]
    assert rows, f"{path}: empty"

with open("/tmp/m.jsonl") as f:
    row = json.loads(f.readline())
assert row["name"] == "fig1", row
assert row["metrics"]["link.drops"] > 0, "fig1 bottleneck never dropped"
assert row["metrics"]["engine.events"] > 0
assert row["profile"]["events"] == row["metrics"]["engine.events"]
print("telemetry smoke ok")
EOF
fi
