#!/bin/sh
# Tier-1 gate: build, test suite, and a smoke batch through the
# experiment registry (2 domains, abbreviated durations, JSONL sink).
set -eux

dune build
dune runtest
dune exec bin/mcc.exe -- run --all --quick --jobs 2 --json /tmp/out.jsonl --quiet
test -s /tmp/out.jsonl
