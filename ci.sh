#!/bin/sh
# Tier-1 gate: build, test suite, and a smoke batch through the
# experiment registry (2 domains, abbreviated durations, JSONL sink).
set -eux

# Every mcc run/matrix/profile below records a run-ledger entry; point
# the ledger at a scratch directory so CI never touches .mcc/ in the
# working tree.
MCC_LEDGER="$(mktemp -d)/ledger"
export MCC_LEDGER

dune build
dune runtest

# Invariant lint gate: the static-analysis pass (lib/lint) must find no
# determinism or domain-safety violations — wall-clock reads, ambient
# randomness, shared top-level mutable state, polymorphic float
# compares, missing .mli, GC reads outside lib/obs, and the typed-tree
# rules (domain-escape, hot-alloc, registry-exhaustive) — anywhere in
# lib/bin/bench/examples.
dune build @lint

# The typed stage must have genuinely run, not silently degraded to the
# syntactic subset: the JSON report has to show .cmts loaded.  (This is
# what catches a build-layout drift that moves the .cmt files.)
dune build @check
dune exec bin/mcc.exe -- lint --json=- lib bin bench examples > /tmp/lint.json
grep -q '"cmts_loaded":[1-9]' /tmp/lint.json
grep -q '"findings":\[\]' /tmp/lint.json
# ... and the lint run itself must have landed in the ledger.
MCC_LEDGER_COUNT="$(grep -c '"kind":"lint"' "$MCC_LEDGER/ledger.jsonl")"
test "$MCC_LEDGER_COUNT" -ge 1

# Deep-lint canary: an injected Domain.spawn closure capturing a ref
# must fail the lint with a domain-escape finding naming the file.
cp lib/util/prng.ml /tmp/prng-orig.ml
trap 'cp /tmp/prng-orig.ml lib/util/prng.ml' EXIT
cat >> lib/util/prng.ml <<'EOF'

let _lint_canary () =
  let r = ref 0 in
  let d = Domain.spawn (fun () -> incr r) in
  Domain.join d;
  !r
EOF
dune build @check
if dune exec bin/mcc_lint.exe -- --allow lint.allow lib/util/prng.ml \
  > /tmp/lint-canary.txt 2>&1; then
  cp /tmp/prng-orig.ml lib/util/prng.ml
  echo "lint failed to flag an injected domain escape" >&2
  exit 1
fi
grep -q "domain-escape" /tmp/lint-canary.txt
grep -q "prng.ml" /tmp/lint-canary.txt
cp /tmp/prng-orig.ml lib/util/prng.ml
trap - EXIT
dune build @check
dune exec bin/mcc.exe -- run --all --quick --jobs 2 --json /tmp/out.jsonl --quiet
test -s /tmp/out.jsonl

# Telemetry smoke: a metrics-enabled run must emit parseable JSONL with
# a busy bottleneck (nonzero link.drops on fig1's congested link).
dune exec bin/mcc.exe -- run --only fig1 --quick --json /tmp/out2.jsonl \
  --metrics=/tmp/m.jsonl --quiet
test -s /tmp/out2.jsonl
test -s /tmp/m.jsonl
if command -v python3 >/dev/null 2>&1; then
  python3 - <<'EOF'
import json

for path in ("/tmp/out.jsonl", "/tmp/out2.jsonl", "/tmp/m.jsonl"):
    with open(path) as f:
        rows = [json.loads(line) for line in f if line.strip()]
    assert rows, f"{path}: empty"

with open("/tmp/m.jsonl") as f:
    row = json.loads(f.readline())
assert row["name"] == "fig1", row
assert row["metrics"]["link.drops"] > 0, "fig1 bottleneck never dropped"
assert row["metrics"]["engine.events"] > 0
assert row["profile"]["events"] == row["metrics"]["engine.events"]
print("telemetry smoke ok")
EOF
fi

# Time-series + forensics smoke: a sampled run, a warn-level trace, and
# an offline report over both (no rerun).
dune exec bin/mcc.exe -- run --only fig7 --quick --series=/tmp/series.jsonl \
  --sample-dt 0.5 --quiet
test -s /tmp/series.jsonl
dune exec bin/mcc.exe -- trace --only fig7 --quick --filter sigma \
  --level warn --out /tmp/trace.jsonl
dune exec bin/mcc.exe -- report --series /tmp/series.jsonl \
  --trace /tmp/trace.jsonl > /tmp/report.md
test -s /tmp/report.md
grep -q "SIGMA forensics timeline" /tmp/report.md
grep -q "Throughput recovery" /tmp/report.md
if command -v python3 >/dev/null 2>&1; then
  python3 - <<'EOF'
import json

with open("/tmp/series.jsonl") as f:
    row = json.loads(f.readline())
assert row["name"] == "fig7", row
assert row["series"], "no series sampled"
assert any(k.endswith(".goodput_kbps") for k in row["series"]), row["series"].keys()
assert all(
    all(len(p) == 2 for p in pts) for pts in row["series"].values()
), "series points are not [t, v] pairs"
print("series smoke ok")
EOF
fi

# Profiler smoke: a profiled matrix attack cell must produce a
# self-time table, non-empty folded stacks, valid JSON, and a
# containment critical path that names the first rejected key; the
# offline report path must render the per-hop latency section from the
# saved JSON alone.
dune exec bin/mcc.exe -- profile matrix-inflate-flid-delta+sigma --quick \
  -o /tmp/profile.md --folded /tmp/profile.folded --json /tmp/profile.json
test -s /tmp/profile.md
test -s /tmp/profile.folded
test -s /tmp/profile.json
grep -q "## Self time" /tmp/profile.md
grep -q "Containment critical path" /tmp/profile.md
grep -q "key 0x" /tmp/profile.md
dune exec bin/mcc.exe -- report --series /tmp/series.jsonl \
  --profile /tmp/profile.json > /tmp/report2.md
grep -q "Per-hop containment latency" /tmp/report2.md
if command -v python3 >/dev/null 2>&1; then
  python3 - <<'EOF'
import json

with open("/tmp/profile.json") as f:
    doc = json.load(f)
assert doc["name"] == "matrix-inflate-flid-delta+sigma", doc["name"]
assert doc["prof"], "empty span tree"
assert doc["lineage"]["transitions"], "no hop transitions"
assert any(c["kind"] == "key_reject" for c in doc["lineage"]["cases"])
assert doc["profile"]["sched_stats"]["pushes"] > 0
with open("/tmp/profile.folded") as f:
    folded = [l for l in f if l.strip()]
assert folded and all(l.rsplit(" ", 1)[1].strip().isdigit() for l in folded)
print("profiler smoke ok")
EOF
fi

# Attack-matrix smoke: a tiny grid at full duration (containment needs
# the real horizon), scorecard showing the paper's headline, and the
# JSONL byte-identical across job counts.
dune exec bin/mcc.exe -- matrix --attacks inflate --protocols flid \
  --defences plain,delta+sigma --json /tmp/matrix1.jsonl \
  --out /tmp/scorecard.md --quiet
dune exec bin/mcc.exe -- matrix --attacks inflate --protocols flid \
  --defences plain,delta+sigma --jobs 2 --json /tmp/matrix2.jsonl --quiet
cmp /tmp/matrix1.jsonl /tmp/matrix2.jsonl
# ... and byte-identical again on the calendar-queue backend: the
# scheduler is a performance knob, never a semantics knob.
dune exec bin/mcc.exe -- matrix --attacks inflate --protocols flid \
  --defences plain,delta+sigma --sched wheel --json /tmp/matrix3.jsonl --quiet
cmp /tmp/matrix1.jsonl /tmp/matrix3.jsonl
test -s /tmp/scorecard.md
grep -q "BREACH" /tmp/scorecard.md
grep -q "contained" /tmp/scorecard.md
grep -q "DELTA+SIGMA contains every attack" /tmp/scorecard.md

# Workload smoke: every committed workload file must validate, and a
# run through the declarative pipeline must stay byte-identical across
# job counts, just like the matrix above.
dune exec bin/mcc.exe -- workload check --all
dune exec bin/mcc.exe -- workload run workloads/fat_tree_flash_crowd.json \
  --quick --json /tmp/workload1.jsonl --quiet
dune exec bin/mcc.exe -- workload run workloads/fat_tree_flash_crowd.json \
  --quick --jobs 4 --json /tmp/workload2.jsonl --quiet
cmp /tmp/workload1.jsonl /tmp/workload2.jsonl
# ... and a malformed document must be rejected with a nonzero exit.
printf '{"version": 1, "name": "bad"}\n' > /tmp/bad-workload.json
if dune exec bin/mcc.exe -- workload check /tmp/bad-workload.json \
  2>/tmp/bad-workload.err; then
  echo "workload check accepted a malformed document" >&2
  exit 1
fi
grep -q "duration" /tmp/bad-workload.err

# Bench regression gate: a baseline saved by the same run must compare
# clean against itself, and the scheduler-churn figures must also hold
# up against the committed repo baseline.  The committed gate uses a
# loose threshold — events/s moves a lot between host machines, so it
# only catches catastrophic slowdowns; tight tracking is for a baseline
# saved on the same machine.
dune exec bench/main.exe -- --quick fig9b oversub profile-overhead \
  churn-heap churn-wheel --save-baseline /tmp/bench-baseline.json
dune exec bench/main.exe -- --quick fig9b oversub profile-overhead \
  churn-heap churn-wheel --baseline /tmp/bench-baseline.json --threshold 0.5
dune exec bench/main.exe -- --quick oversub profile-overhead churn-heap \
  churn-wheel --baseline --threshold 0.9

# Run-ledger smoke: two identical runs into a fresh ledger list as two
# entries sharing one config digest, and diffing them reports zero
# deterministic-field drift.  The loose threshold keeps host noise on
# the wall-derived events/s figures from tripping the regression flag,
# exactly as the committed bench gate above does.
LEDGER_SCRATCH="$(mktemp -d)/ledger"
MCC_LEDGER="$LEDGER_SCRATCH" dune exec bin/mcc.exe -- run --only fig1 \
  --quick --quiet
MCC_LEDGER="$LEDGER_SCRATCH" dune exec bin/mcc.exe -- run --only fig1 \
  --quick --quiet
test "$(wc -l < "$LEDGER_SCRATCH/ledger.jsonl")" -eq 2
MCC_LEDGER="$LEDGER_SCRATCH" dune exec bin/mcc.exe -- history \
  > /tmp/history.txt
test "$(grep -c "fig1" /tmp/history.txt)" -ge 2
grep -q "trend events_per_sec over 2 entries" /tmp/history.txt
MCC_LEDGER="$LEDGER_SCRATCH" dune exec bin/mcc.exe -- diff 1 2 \
  --threshold 0.9 > /tmp/diff.txt
grep -q "digests match" /tmp/diff.txt
grep -q "payload: 0 deterministic fields drifted" /tmp/diff.txt

# ... and an injected bench-figure regression must flip diff to exit 1
# and name the dropped figure.
printf '{"fig1": 1000.0}\n' > /tmp/base-a.json
printf '{"fig1": 400.0}\n' > /tmp/base-b.json
if dune exec bin/mcc.exe -- diff /tmp/base-a.json /tmp/base-b.json \
  > /tmp/diff-reg.txt; then
  echo "diff failed to flag an injected regression" >&2
  exit 1
fi
grep -q "REGRESSION" /tmp/diff-reg.txt

# OpenMetrics exposition smoke: well-formed families (TYPE + HELP, the
# counter _total suffix, per-run labels) and the single EOF marker.
dune exec bin/mcc.exe -- run --only fig1 --quick --no-ledger \
  --metrics /tmp/metrics.om --metrics-format openmetrics --quiet
grep -q "^# TYPE mcc_engine_events counter$" /tmp/metrics.om
grep -q "^# HELP mcc_engine_events " /tmp/metrics.om
grep -q '^mcc_engine_events_total{run="fig1"} [1-9]' /tmp/metrics.om
test "$(tail -n 1 /tmp/metrics.om)" = "# EOF"
test "$(grep -c '^# EOF$' /tmp/metrics.om)" -eq 1

# Live telemetry is stderr-only observation: forcing the meter on must
# not change a single sink byte (cmp against the meter-off matrix
# output above).
dune exec bin/mcc.exe -- matrix --attacks inflate --protocols flid \
  --defences plain,delta+sigma --jobs 2 --progress \
  --json /tmp/matrix4.jsonl --quiet
cmp /tmp/matrix1.jsonl /tmp/matrix4.jsonl

# Machine-readable registry listing.
dune exec bin/mcc.exe -- list --json > /tmp/list.json
grep -q '"experiments":' /tmp/list.json
grep -q '"groups":' /tmp/list.json
