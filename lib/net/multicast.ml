module Sim = Mcc_engine.Sim

let upstream_link topo ~(node : Node.t) ~group =
  match Topology.group_source topo group with
  | None -> None
  | Some src ->
      if src.Node.id = node.Node.id then None
      else Hashtbl.find_opt node.Node.fib src.Node.id

let rec graft topo ~node ~group ~down =
  let was_off_tree = Node.add_downstream node ~group down in
  if was_off_tree then
    match upstream_link topo ~node ~group with
    | None -> () (* at the source, or unroutable *)
    | Some up -> (
        match up.Link.rev with
        | None -> ()
        | Some rev ->
            let parent = Topology.node topo up.Link.dst in
            Sim.post_after (Topology.sim topo)
                 ~delay:(Link.control_delay up) (fun () ->
                   graft topo ~node:parent ~group ~down:rev))

let rec prune topo ~node ~group ~down =
  let became_empty = Node.remove_downstream node ~group down in
  if became_empty && not (Hashtbl.mem node.Node.local_groups group) then
    match upstream_link topo ~node ~group with
    | None -> ()
    | Some up -> (
        match up.Link.rev with
        | None -> ()
        | Some rev ->
            let parent = Topology.node topo up.Link.dst in
            Sim.post_after (Topology.sim topo)
                 ~delay:(Link.control_delay up) (fun () ->
                   prune topo ~node:parent ~group ~down:rev))

let propagate_graft topo ~(node : Node.t) ~group =
  match upstream_link topo ~node ~group with
  | None -> ()
  | Some up -> (
      match up.Link.rev with
      | None -> ()
      | Some rev ->
          let parent = Topology.node topo up.Link.dst in
          Sim.post_after (Topology.sim topo)
               ~delay:(Link.control_delay up) (fun () ->
                 graft topo ~node:parent ~group ~down:rev))

let graft_local topo ~(node : Node.t) ~group =
  let on_tree =
    Hashtbl.mem node.Node.local_groups group
    || Node.downstream node ~group <> []
  in
  if not (Hashtbl.mem node.Node.local_groups group) then
    Node.subscribe_local node ~group (fun _ -> ());
  if not on_tree then propagate_graft topo ~node ~group

let prune_local topo ~(node : Node.t) ~group =
  if Hashtbl.mem node.Node.local_groups group then begin
    Node.unsubscribe_local node ~group;
    if Node.downstream node ~group = [] then
      match upstream_link topo ~node ~group with
      | None -> ()
      | Some up -> (
          match up.Link.rev with
          | None -> ()
          | Some rev ->
              let parent = Topology.node topo up.Link.dst in
              Sim.post_after (Topology.sim topo)
                   ~delay:(Link.control_delay up) (fun () ->
                     prune topo ~node:parent ~group ~down:rev))
  end

let router_of topo (host : Node.t) =
  (* A host's (or LAN's) unique router neighbor, and the router's link
     back toward the host: the interface SIGMA guards.  A host wired
     through a LAN segment shares the LAN's router interface. *)
  let rec find = function
    | [] -> None
    | (l : Link.t) :: rest -> (
        match l.Link.dst_kind with
        | Link.To_router -> (
            match l.Link.rev with Some rev -> Some rev | None -> find rest)
        | Link.To_host | Link.To_lan -> find rest)
  in
  let rec resolve (node : Node.t) depth =
    if depth > 2 then (None, None)
    else
      match find node.Node.links with
      | Some rev -> (Some (Topology.node topo rev.Link.src), Some rev)
      | None -> (
          (* Look one segment further through an attached LAN. *)
          let lan =
            List.find_opt
              (fun (l : Link.t) -> l.Link.dst_kind = Link.To_lan)
              node.Node.links
          in
          match lan with
          | Some l -> resolve (Topology.node topo l.Link.dst) (depth + 1)
          | None -> (None, None))
  in
  resolve host 0

let host_join ?latency topo ~host ~group =
  match router_of topo host with
  | Some router, Some down ->
      let delay =
        match latency with Some l -> l | None -> Link.control_delay down
      in
      Sim.post_after (Topology.sim topo) ~delay (fun () ->
             if not (Hashtbl.mem router.Node.protected_groups group) then
               graft topo ~node:router ~group ~down)
  | _, _ -> ()

let host_leave ?(latency = 0.05) topo ~host ~group =
  match router_of topo host with
  | Some router, Some down ->
      Sim.post_after (Topology.sim topo) ~delay:latency (fun () ->
             if not (Hashtbl.mem router.Node.protected_groups group) then
               prune topo ~node:router ~group ~down)
  | _, _ -> ()
