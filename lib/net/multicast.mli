(** Source-specific multicast trees with explicit graft/prune
    propagation latency.

    Joining a group grafts the path from the requesting router toward
    the group's source hop by hop; each hop costs the link's propagation
    delay (control messages do not compete for data bandwidth, matching
    NS-2's dense-mode abstraction).  Leaves prune an interface after a
    configurable local processing latency; this is the low-leave-latency
    substitute for FLID-DL's dynamic layering (see DESIGN.md §5). *)

val graft : Topology.t -> node:Node.t -> group:int -> down:Link.t -> unit
(** Add [down] to [node]'s downstream set for [group] and, if the node
    was not yet on the tree, propagate a graft toward the source. *)

val prune : Topology.t -> node:Node.t -> group:int -> down:Link.t -> unit
(** Remove [down]; if the downstream set empties and the node keeps no
    local subscription, propagate a prune toward the source. *)

val graft_local : Topology.t -> node:Node.t -> group:int -> unit
(** Put [node] itself on [group]'s tree as a local consumer (no
    downstream interface): grafts upstream if the node was off-tree.
    SIGMA edge routers use this to keep receiving a session's special
    packets while local receivers hold higher groups only. *)

val prune_local : Topology.t -> node:Node.t -> group:int -> unit
(** Drop the node's local interest; prunes upstream if no downstream
    interface remains. *)

val host_join :
  ?latency:float -> Topology.t -> host:Node.t -> group:int -> unit
(** IGMP-style join: the host's edge router grafts the host-facing
    interface after [latency] (default: the access-link delay).  The
    join is ignored if the router guards the group with SIGMA
    ([Node.protected_groups]); receivers must then present keys. *)

val host_leave :
  ?latency:float -> Topology.t -> host:Node.t -> group:int -> unit
(** IGMP-style leave, honoured after [latency] (default 0.05 s of local
    leave processing). *)

val router_of : Topology.t -> Node.t -> Node.t option * Link.t option
(** The router a host or LAN hangs off (its unique router neighbor) and
    the router's link back toward the host, if the topology provides
    them. *)
