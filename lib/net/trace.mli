(** Packet-event tracing on links: the typed, per-link view.

    Attach a trace to any link to record its events — transmissions,
    enqueues, drops, marks, deliveries — with timestamps and packet
    summaries, bounded by an {!Mcc_obs.Ring}.  Intended for debugging
    and for tests that assert on event sequences; attaching a trace
    never changes forwarding behaviour.

    This is a thin client of the observability layer: the ring and its
    eviction policy come from [Mcc_obs], and links independently emit
    the same events to the structured {!Mcc_obs.Tracer} stream (component
    "link") and to the domain's metrics registry, so nothing needs a
    [Trace] attached to be observable. *)

type record = {
  time : float;
  event : Link.event;
  uid : int;  (** packet uid *)
  size : int;
  multicast : bool;
}

type t

val attach : ?capacity:int -> Link.t -> t
(** Installs (or chains onto) the link's event tap; the ring keeps the
    most recent [capacity] records (default 1024). *)

val records : t -> record list
(** Oldest first. *)

val iter : (record -> unit) -> t -> unit
(** Oldest first, without materialising a list. *)

val fold : ('acc -> record -> 'acc) -> 'acc -> t -> 'acc
(** Oldest first. *)

val count : t -> Link.event -> int
(** Events seen since attach (counted even after the ring evicts them). *)

val clear : t -> unit

val pp : Format.formatter -> t -> unit
(** One line per retained record. *)
