(** Packet-event tracing on links.

    Attach a trace to any link to record its events — transmissions,
    enqueues, drops, marks, deliveries — with timestamps and packet
    summaries, bounded by a ring buffer.  Intended for debugging and for
    tests that assert on event sequences; attaching a trace never
    changes forwarding behaviour. *)

type record = {
  time : float;
  event : Link.event;
  uid : int;  (** packet uid *)
  size : int;
  multicast : bool;
}

type t

val attach : ?capacity:int -> Link.t -> t
(** Installs (or chains onto) the link's event tap; the ring keeps the
    most recent [capacity] records (default 1024). *)

val records : t -> record list
(** Oldest first. *)

val count : t -> Link.event -> int
(** Events seen since attach (counted even after the ring evicts them). *)

val clear : t -> unit

val pp : Format.formatter -> t -> unit
(** One line per retained record. *)
