(** Allocation arenas for the packet hot path.

    Flat-array structures grown by doubling: in steady state neither
    allocates per operation, unlike [Stdlib.Queue] (a cons cell per
    enqueue) or fresh records per recycled object.  Slots beyond the
    live region may retain stale references until overwritten; both
    structures are domain-confined, like everything else in the
    simulator's data plane. *)

(** Array-backed growable ring buffer: the drop-tail FIFO inside
    {!Link}. *)
module Fifo : sig
  type 'a t

  val create : unit -> 'a t
  (** Storage is allocated lazily on the first push. *)

  val length : 'a t -> int
  val is_empty : 'a t -> bool

  val capacity : 'a t -> int
  (** Current backing-array length (observability / tests). *)

  val push : 'a t -> 'a -> unit
  (** Appends at the tail; amortised O(1), allocation only on
      doubling. *)

  val pop : 'a t -> 'a
  (** Removes the head.  @raise Invalid_argument when empty. *)

  val clear : 'a t -> unit
  (** Empties the buffer and drops its storage. *)
end

(** Bounded LIFO free list: the recycling store behind
    {!Packet.release}. *)
module Freelist : sig
  type 'a t

  val create : cap:int -> unit -> 'a t
  (** At most [cap] elements are retained; further {!put}s are dropped
      on the floor (the GC reclaims them as usual). *)

  val length : 'a t -> int
  val put : 'a t -> 'a -> unit
  val is_empty : 'a t -> bool

  val pop : 'a t -> 'a
  (** Removes the most recently {!put} element.  The emptiness check is
      the caller's ([is_empty] + [pop] rather than an option-returning
      take, so recycling a packet allocates no [Some] box).
      @raise Invalid_argument when empty. *)
end
