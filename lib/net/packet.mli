(** Network packets.

    A packet records its total wire size in bytes; link transmission
    time and buffer occupancy are computed from it.  Multicast
    forwarding duplicates packets per branch with [copy] so that
    per-copy mutations (the ECN mark) stay independent. *)

type dst = Unicast of int | Multicast of int

type t = {
  mutable uid : int;
      (** unique per original packet; shared by multicast copies *)
  mutable src : int;  (** originating node id *)
  mutable dst : dst;
  mutable size : int;  (** bytes on the wire *)
  mutable ecn : bool;  (** explicit congestion notification mark *)
  mutable router_alert : bool;
      (** SIGMA special packets: intercepted by edge routers, never
          forwarded onto host-facing interfaces *)
  mutable payload : Payload.t;
      (** mutable so a per-branch copy can swap in a rewritten payload
          (ECN component scrubbing) without aliasing other branches *)
  mutable lineage : Mcc_obs.Lineage.t;
      (** causal hop record; the shared sentinel (all mutators no-op)
          unless {!Mcc_obs.Lineage} collection is enabled.  [copy]/
          [copy_pooled] clone it per branch; [release] returns it to
          the lineage pool *)
}
(** All fields are mutable so pooled records can be re-initialised in
    place; outside {!copy_pooled} the identity fields (uid, src, dst,
    size, router_alert) are never written after {!make}. *)

val make : ?router_alert:bool -> src:int -> dst:dst -> size:int -> Payload.t -> t
(** Allocates a fresh uid.  @raise Invalid_argument if [size <= 0]. *)

val copy : t -> t
(** Same uid and fields; independent mutable state. *)

val copy_pooled : t -> t
(** {!copy} drawing the record from this domain's free list when one is
    available.  Semantically identical to [copy]; exists so the
    multicast fan-out can recycle branch copies (see {!release}). *)

val release : t -> unit
(** Returns a packet to this domain's free list for reuse by
    {!copy_pooled}.  The caller asserts no live references remain — the
    forwarding path only releases copies it allocated itself that died
    in a synchronous, unobserved drop.  The list is bounded (further
    releases are dropped on the floor), so never releasing is merely the
    pre-pool allocation behaviour. *)

val pooled : unit -> int
(** Number of packets currently parked in this domain's free list
    (observability / tests). *)

val is_multicast : t -> bool

val pp : Format.formatter -> t -> unit
