(** Network packets.

    A packet records its total wire size in bytes; link transmission
    time and buffer occupancy are computed from it.  Multicast
    forwarding duplicates packets per branch with [copy] so that
    per-copy mutations (the ECN mark) stay independent. *)

type dst = Unicast of int | Multicast of int

type t = {
  uid : int;  (** unique per original packet; shared by multicast copies *)
  src : int;  (** originating node id *)
  dst : dst;
  size : int;  (** bytes on the wire *)
  mutable ecn : bool;  (** explicit congestion notification mark *)
  router_alert : bool;
      (** SIGMA special packets: intercepted by edge routers, never
          forwarded onto host-facing interfaces *)
  mutable payload : Payload.t;
      (** mutable so a per-branch copy can swap in a rewritten payload
          (ECN component scrubbing) without aliasing other branches *)
}

val make : ?router_alert:bool -> src:int -> dst:dst -> size:int -> Payload.t -> t
(** Allocates a fresh uid.  @raise Invalid_argument if [size <= 0]. *)

val copy : t -> t
(** Same uid and fields; independent mutable state. *)

val is_multicast : t -> bool

val pp : Format.formatter -> t -> unit
