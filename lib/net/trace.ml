module Ring = Mcc_obs.Ring

type record = {
  time : float;
  event : Link.event;
  uid : int;
  size : int;
  multicast : bool;
}

type t = {
  ring : record Ring.t;
  mutable tx : int;
  mutable enqueued : int;
  mutable dropped : int;
  mutable marked : int;
  mutable delivered : int;
}

let count t = function
  | Link.Tx_start -> t.tx
  | Link.Enqueued -> t.enqueued
  | Link.Dropped -> t.dropped
  | Link.Marked -> t.marked
  | Link.Delivered -> t.delivered

let bump t = function
  | Link.Tx_start -> t.tx <- t.tx + 1
  | Link.Enqueued -> t.enqueued <- t.enqueued + 1
  | Link.Dropped -> t.dropped <- t.dropped + 1
  | Link.Marked -> t.marked <- t.marked + 1
  | Link.Delivered -> t.delivered <- t.delivered + 1

let attach ?(capacity = 1024) (link : Link.t) =
  let t =
    {
      ring = Ring.create ~capacity;
      tx = 0;
      enqueued = 0;
      dropped = 0;
      marked = 0;
      delivered = 0;
    }
  in
  let previous = link.Link.on_event in
  link.Link.on_event <-
    Some
      (fun event pkt ->
        (match previous with Some f -> f event pkt | None -> ());
        bump t event;
        Ring.push t.ring
          {
            time = Mcc_engine.Sim.now link.Link.sim;
            event;
            uid = pkt.Packet.uid;
            size = pkt.Packet.size;
            multicast = Packet.is_multicast pkt;
          });
  t

let iter f t = Ring.iter f t.ring
let fold f init t = Ring.fold f init t.ring
let records t = Ring.to_list t.ring
let clear t = Ring.clear t.ring

let pp fmt t =
  iter
    (fun r ->
      Format.fprintf fmt "%.6f %-5s #%d %dB%s@." r.time
        (Link.event_name r.event) r.uid r.size
        (if r.multicast then " mcast" else ""))
    t
