module Sim = Mcc_engine.Sim

type dst_kind = To_host | To_router | To_lan

type event = Tx_start | Enqueued | Dropped | Marked | Delivered

type t = {
  id : int;
  src : int;
  dst : int;
  dst_kind : dst_kind;
  rate_bps : float;
  delay_s : float;
  buffer_bytes : int;
  buffer_packets : int option;
  ecn_threshold_bytes : int option;
  mutable red : Red.t option;
  sim : Sim.t;
  queue : Packet.t Queue.t;
  mutable queued_bytes : int;
  mutable busy : bool;
  mutable rev : t option;
  mutable deliver : Packet.t -> unit;
  mutable on_event : (event -> Packet.t -> unit) option;
  mutable tx_packets : int;
  mutable tx_bytes : int;
  mutable drops : int;
  mutable drop_bytes : int;
  mutable marks : int;
}

let create ~sim ~id ~src ~dst ~dst_kind ~rate_bps ~delay_s ~buffer_bytes
    ?buffer_packets ?ecn_threshold_bytes () =
  if rate_bps <= 0. then invalid_arg "Link.create: rate_bps <= 0";
  if delay_s < 0. then invalid_arg "Link.create: negative delay";
  if buffer_bytes < 0 then invalid_arg "Link.create: negative buffer";
  {
    id;
    src;
    dst;
    dst_kind;
    rate_bps;
    delay_s;
    buffer_bytes;
    buffer_packets;
    ecn_threshold_bytes;
    red = None;
    sim;
    queue = Queue.create ();
    queued_bytes = 0;
    busy = false;
    rev = None;
    deliver = (fun _ -> ());
    on_event = None;
    tx_packets = 0;
    tx_bytes = 0;
    drops = 0;
    drop_bytes = 0;
    marks = 0;
  }

let tx_time t pkt = float_of_int (pkt.Packet.size * 8) /. t.rate_bps

let emit t event pkt =
  match t.on_event with Some f -> f event pkt | None -> ()

let rec start_tx t pkt =
  t.busy <- true;
  t.tx_packets <- t.tx_packets + 1;
  t.tx_bytes <- t.tx_bytes + pkt.Packet.size;
  emit t Tx_start pkt;
  ignore
    (Sim.schedule_after t.sim ~delay:(tx_time t pkt) (fun () ->
         (* Serialization finished: launch propagation, then service the
            next queued packet. *)
         ignore
           (Sim.schedule_after t.sim ~delay:t.delay_s (fun () ->
                emit t Delivered pkt;
                t.deliver pkt));
         if Queue.is_empty t.queue then t.busy <- false
         else begin
           let next = Queue.pop t.queue in
           t.queued_bytes <- t.queued_bytes - next.Packet.size;
           start_tx t next
         end))

let send t pkt =
  let packet_room =
    match t.buffer_packets with
    | Some cap -> Queue.length t.queue < cap
    | None -> true
  in
  if not t.busy then start_tx t pkt
  else if packet_room && t.queued_bytes + pkt.Packet.size <= t.buffer_bytes
  then begin
    (match t.red with
    | Some red ->
        if Red.on_enqueue red ~queue_bytes:t.queued_bytes then begin
          pkt.Packet.ecn <- true;
          t.marks <- t.marks + 1;
          emit t Marked pkt
        end
    | None -> (
        match t.ecn_threshold_bytes with
        | Some thr when t.queued_bytes >= thr ->
            pkt.Packet.ecn <- true;
            t.marks <- t.marks + 1;
            emit t Marked pkt
        | Some _ | None -> ()));
    Queue.push pkt t.queue;
    t.queued_bytes <- t.queued_bytes + pkt.Packet.size;
    emit t Enqueued pkt
  end
  else begin
    t.drops <- t.drops + 1;
    t.drop_bytes <- t.drop_bytes + pkt.Packet.size;
    emit t Dropped pkt
  end

let occupancy_bytes t = t.queued_bytes
let control_delay t = t.delay_s
