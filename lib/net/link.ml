module Sim = Mcc_engine.Sim
module Metrics = Mcc_obs.Metrics
module Tracer = Mcc_obs.Tracer
module Timeseries = Mcc_obs.Timeseries
module Json = Mcc_obs.Json
module Prof = Mcc_obs.Prof
module Lineage = Mcc_obs.Lineage

type dst_kind = To_host | To_router | To_lan

type event = Tx_start | Enqueued | Dropped | Marked | Delivered

let event_name = function
  | Tx_start -> "tx"
  | Enqueued -> "enq"
  | Dropped -> "drop"
  | Marked -> "mark"
  | Delivered -> "rx"

(* Domain-aggregate counters over every link; the per-link totals stay
   in the record fields below.  Get-or-create makes all links of a
   domain share one set of handles. *)
type metrics = {
  m_tx : Metrics.counter;
  m_tx_bytes : Metrics.counter;
  m_enqueues : Metrics.counter;
  m_enqueue_bytes : Metrics.counter;
  m_drops : Metrics.counter;
  m_drop_bytes : Metrics.counter;
  m_marks : Metrics.counter;
  m_mark_bytes : Metrics.counter;
}

let link_metrics () =
  {
    m_tx = Metrics.counter "link.tx_packets";
    m_tx_bytes = Metrics.counter "link.tx_bytes";
    m_enqueues = Metrics.counter "link.enqueues";
    m_enqueue_bytes = Metrics.counter "link.enqueue_bytes";
    m_drops = Metrics.counter "link.drops";
    m_drop_bytes = Metrics.counter "link.drop_bytes";
    m_marks = Metrics.counter "link.marks";
    m_mark_bytes = Metrics.counter "link.mark_bytes";
  }

type t = {
  id : int;
  src : int;
  dst : int;
  dst_kind : dst_kind;
  rate_bps : float;
  delay_s : float;
  buffer_bytes : int;
  buffer_packets : int option;
  ecn_threshold_bytes : int option;
  mutable red : Red.t option;
  sim : Sim.t;
  queue : Packet.t Pool.Fifo.t;
  mutable queued_bytes : int;
  mutable busy : bool;
  mutable rev : t option;
  mutable deliver : Packet.t -> unit;
  mutable on_event : (event -> Packet.t -> unit) option;
  mutable tx_packets : int;
  mutable tx_bytes : int;
  mutable enqueues : int;
  mutable enqueue_bytes : int;
  mutable drops : int;
  mutable drop_bytes : int;
  mutable marks : int;
  mutable mark_bytes : int;
  metrics : metrics;
}

let create ~sim ~id ~src ~dst ~dst_kind ~rate_bps ~delay_s ~buffer_bytes
    ?buffer_packets ?ecn_threshold_bytes () =
  if rate_bps <= 0. then invalid_arg "Link.create: rate_bps <= 0";
  if delay_s < 0. then invalid_arg "Link.create: negative delay";
  if buffer_bytes < 0 then invalid_arg "Link.create: negative buffer";
  let t =
    {
      id;
      src;
      dst;
      dst_kind;
      rate_bps;
      delay_s;
      buffer_bytes;
      buffer_packets;
      ecn_threshold_bytes;
      red = None;
      sim;
      (* Ring buffer, not Stdlib.Queue: the FIFO is entirely internal to
         the link, and the ring allocates nothing per enqueue. *)
      queue = Pool.Fifo.create ();
      queued_bytes = 0;
      busy = false;
      rev = None;
      deliver = (fun _ -> ());
      on_event = None;
      tx_packets = 0;
      tx_bytes = 0;
      enqueues = 0;
      enqueue_bytes = 0;
      drops = 0;
      drop_bytes = 0;
      marks = 0;
      mark_bytes = 0;
      metrics = link_metrics ();
    }
  in
  (* Per-link time series (no-ops unless the run enabled sampling):
     instantaneous queue depth plus drop and throughput rates — the
     trajectories behind the paper's bottleneck figures. *)
  if Timeseries.enabled () then begin
    let name suffix = Printf.sprintf "link.%d.%s" id suffix in
    Timeseries.sample_gauge (name "queue_bytes") (fun () ->
        float_of_int t.queued_bytes);
    Timeseries.sample_rate (name "drops_per_s") (fun () ->
        float_of_int t.drops);
    Timeseries.sample_rate ~scale:0.008 (name "tx_kbps") (fun () ->
        float_of_int t.tx_bytes)
  end;
  t

let[@hot] tx_time t pkt = float_of_int (pkt.Packet.size * 8) /. t.rate_bps

let[@hot] emit t event pkt =
  match t.on_event with Some f -> f event pkt | None -> ()

(* Hot path: [Tracer.enabled] first, so runs without a sink pay one
   branch and allocate nothing. *)
let[@hot] trace t event pkt =
  if Tracer.enabled () then
    Tracer.emit_at
      ~level:(match event with Dropped | Marked -> Tracer.Info | _ -> Tracer.Debug)
      ~sim_time:(Sim.now t.sim) ~component:"link" ~event:(event_name event)
      (* lint: allow hot-alloc — field thunk built only with a live sink *)
      (fun () ->
        [
          ("link", Json.Int t.id);
          ("src", Json.Int t.src);
          ("dst", Json.Int t.dst);
          ("uid", Json.Int pkt.Packet.uid);
          ("size", Json.Int pkt.Packet.size);
          ("mcast", Json.Bool (Packet.is_multicast pkt));
        ])

(* Lineage hop labels: constant strings, so stamping a hop allocates
   nothing.  RED/ECN marks are credited to "red" — in a latency
   breakdown they are the AQM's doing, not the FIFO's. *)
let[@hot] hop_name = function
  | Tx_start -> "link.tx"
  | Enqueued -> "link.enq"
  | Dropped -> "link.drop"
  | Marked -> "red.mark"
  | Delivered -> "link.rx"

let[@hot] note t event pkt =
  Lineage.hop pkt.Packet.lineage ~time:(Sim.now t.sim) (hop_name event);
  emit t event pkt;
  trace t event pkt

let rec start_tx t pkt =
  t.busy <- true;
  t.tx_packets <- t.tx_packets + 1;
  t.tx_bytes <- t.tx_bytes + pkt.Packet.size;
  Metrics.incr t.metrics.m_tx;
  Metrics.incr_by t.metrics.m_tx_bytes pkt.Packet.size;
  note t Tx_start pkt;
  Sim.post_after t.sim ~delay:(tx_time t pkt) (fun () ->
         (* Serialization finished: launch propagation, then service the
            next queued packet. *)
         let sp = Prof.span "link" in
         Sim.post_after t.sim ~delay:t.delay_s (fun () ->
             let sp = Prof.span "link" in
             note t Delivered pkt;
             Prof.finish sp;
             t.deliver pkt);
         if Pool.Fifo.is_empty t.queue then t.busy <- false
         else begin
           let next = Pool.Fifo.pop t.queue in
           t.queued_bytes <- t.queued_bytes - next.Packet.size;
           start_tx t next
         end;
         Prof.finish sp)

let[@hot] mark t pkt =
  pkt.Packet.ecn <- true;
  t.marks <- t.marks + 1;
  t.mark_bytes <- t.mark_bytes + pkt.Packet.size;
  Metrics.incr t.metrics.m_marks;
  Metrics.incr_by t.metrics.m_mark_bytes pkt.Packet.size;
  note t Marked pkt

let[@hot] send_body t pkt =
  let packet_room =
    match t.buffer_packets with
    | Some cap -> Pool.Fifo.length t.queue < cap
    | None -> true
  in
  if not t.busy then begin
    start_tx t pkt;
    true
  end
  else if packet_room && t.queued_bytes + pkt.Packet.size <= t.buffer_bytes
  then begin
    (match t.red with
    | Some red ->
        if Red.on_enqueue red ~queue_bytes:t.queued_bytes then mark t pkt
    | None -> (
        match t.ecn_threshold_bytes with
        | Some thr when t.queued_bytes >= thr -> mark t pkt
        | Some _ | None -> ()));
    Pool.Fifo.push t.queue pkt;
    t.queued_bytes <- t.queued_bytes + pkt.Packet.size;
    t.enqueues <- t.enqueues + 1;
    t.enqueue_bytes <- t.enqueue_bytes + pkt.Packet.size;
    Metrics.incr t.metrics.m_enqueues;
    Metrics.incr_by t.metrics.m_enqueue_bytes pkt.Packet.size;
    note t Enqueued pkt;
    true
  end
  else begin
    t.drops <- t.drops + 1;
    t.drop_bytes <- t.drop_bytes + pkt.Packet.size;
    Metrics.incr t.metrics.m_drops;
    Metrics.incr_by t.metrics.m_drop_bytes pkt.Packet.size;
    note t Dropped pkt;
    false
  end

let send t pkt =
  let sp = Prof.span "link" in
  let accepted = send_body t pkt in
  Prof.finish sp;
  accepted

let observed t = Option.is_some t.on_event
let occupancy_bytes t = t.queued_bytes
let control_delay t = t.delay_s
