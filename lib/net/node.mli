(** Network nodes: hosts, routers, and LAN segments.

    Routers forward unicast packets by FIB lookup and multicast packets
    along per-group downstream interface sets.  Hosts terminate traffic
    and dispatch it to registered handlers.  A LAN node models a shared
    edge-router interface: it repeats every packet to all attached
    links, which is what makes SIGMA's per-interface semantics (ack
    suppression, shared subscriptions) observable. *)

type kind = Host | Edge_router | Core_router | Lan

type t = {
  id : int;
  kind : kind;
  sim : Mcc_engine.Sim.t;
  mutable links : Link.t list;  (** outgoing links *)
  fib : (int, Link.t) Hashtbl.t;  (** destination node -> next-hop link *)
  mcast_out : (int, Link.t list ref) Hashtbl.t;
      (** group -> downstream interfaces *)
  local_groups : (int, Packet.t -> unit) Hashtbl.t;
  mutable local_unicast : (Packet.t -> unit) option;
  mutable mcast_filter : (int -> Link.t -> bool) option;
      (** consulted before forwarding group traffic onto host- or
          LAN-facing links; SIGMA's enforcement point *)
  mutable intercept : (Packet.t -> unit) option;
      (** router-alert packets are handed here on routers *)
  mutable on_forward : (int -> Link.t -> Packet.t -> unit) option;
      (** called on each fresh multicast copy before it leaves a router;
          the hook may mutate the copy (SIGMA's ECN component scrub) *)
  mutable promiscuous : (Packet.t -> unit) option;
      (** host-only tap: sees every packet reaching the host regardless
          of destination (SIGMA ack suppression on shared LANs) *)
  protected_groups : (int, unit) Hashtbl.t;
      (** groups for which this router ignores plain IGMP joins because
          SIGMA guards them *)
}

val create : sim:Mcc_engine.Sim.t -> id:int -> kind:kind -> t

val is_router : t -> bool

val receive : t -> from:Link.t option -> Packet.t -> unit
(** Entry point wired to [Link.deliver]: local delivery plus forwarding. *)

val originate : t -> Packet.t -> unit
(** Inject a packet at this node: unicast goes out the FIB next hop,
    multicast fans out over the node's downstream set (the node must be
    the group source for multicast traffic to flow). *)

val subscribe_local : t -> group:int -> (Packet.t -> unit) -> unit
(** Register (or replace) this node's local handler for a group. *)

val unsubscribe_local : t -> group:int -> unit

val set_unicast_handler : t -> (Packet.t -> unit) -> unit

val downstream : t -> group:int -> Link.t list
(** Current downstream interfaces for a group. *)

val add_downstream : t -> group:int -> Link.t -> bool
(** Adds a downstream interface.  Returns [true] when the group had no
    downstream interfaces before (i.e. the caller must graft upstream). *)

val remove_downstream : t -> group:int -> Link.t -> bool
(** Removes an interface.  Returns [true] when the set became empty
    (i.e. the caller must prune upstream). *)

val link_to : t -> int -> Link.t option
(** Direct link to a neighbor node id, if one exists. *)
