module Prof = Mcc_obs.Prof
module Lineage = Mcc_obs.Lineage

type kind = Host | Edge_router | Core_router | Lan

type t = {
  id : int;
  kind : kind;
  sim : Mcc_engine.Sim.t;
  mutable links : Link.t list;
  fib : (int, Link.t) Hashtbl.t;
  mcast_out : (int, Link.t list ref) Hashtbl.t;
  local_groups : (int, Packet.t -> unit) Hashtbl.t;
  mutable local_unicast : (Packet.t -> unit) option;
  mutable mcast_filter : (int -> Link.t -> bool) option;
  mutable intercept : (Packet.t -> unit) option;
  mutable on_forward : (int -> Link.t -> Packet.t -> unit) option;
  mutable promiscuous : (Packet.t -> unit) option;
  protected_groups : (int, unit) Hashtbl.t;
}

let create ~sim ~id ~kind =
  {
    id;
    kind;
    sim;
    links = [];
    fib = Hashtbl.create 16;
    mcast_out = Hashtbl.create 16;
    local_groups = Hashtbl.create 16;
    local_unicast = None;
    mcast_filter = None;
    intercept = None;
    on_forward = None;
    promiscuous = None;
    protected_groups = Hashtbl.create 16;
  }

let is_router t = match t.kind with Edge_router | Core_router -> true | Host | Lan -> false

let downstream t ~group =
  match Hashtbl.find_opt t.mcast_out group with Some l -> !l | None -> []

let add_downstream t ~group link =
  match Hashtbl.find_opt t.mcast_out group with
  | None ->
      Hashtbl.replace t.mcast_out group (ref [ link ]);
      true
  | Some l ->
      let was_empty = !l = [] in
      if not (List.memq link !l) then l := link :: !l;
      was_empty

let remove_downstream t ~group link =
  match Hashtbl.find_opt t.mcast_out group with
  | None -> false
  | Some l ->
      let before = !l in
      l := List.filter (fun x -> not (x == link)) before;
      before <> [] && !l = []

let subscribe_local t ~group handler = Hashtbl.replace t.local_groups group handler
let unsubscribe_local t ~group = Hashtbl.remove t.local_groups group
let set_unicast_handler t handler = t.local_unicast <- Some handler

let link_to t neighbor =
  List.find_opt (fun (l : Link.t) -> l.Link.dst = neighbor) t.links

let deliver_local t pkt =
  match pkt.Packet.dst with
  | Packet.Unicast id ->
      if id = t.id then begin
        match t.local_unicast with Some h -> h pkt | None -> ()
      end
  | Packet.Multicast g ->
      if not pkt.Packet.router_alert then begin
        match Hashtbl.find_opt t.local_groups g with
        | Some h -> h pkt
        | None -> ()
      end

let may_forward_on t ~group link pkt =
  let host_facing =
    match link.Link.dst_kind with
    | Link.To_host | Link.To_lan -> true
    | Link.To_router -> false
  in
  if pkt.Packet.router_alert && host_facing then false
  else
    match t.mcast_filter with
    | Some f when host_facing -> f group link
    | Some _ | None -> true

(* Branch copies come from the packet pool, and a copy that dies in a
   synchronous drop goes straight back — provided nothing could have
   kept a reference: no on_forward hook saw it and the link carries no
   observability tap. *)
let forward_multicast t ~from ~group pkt =
  let same_link l = match from with Some f -> l == f | None -> false in
  List.iter
    (fun link ->
      if (not (same_link link)) && may_forward_on t ~group link pkt then begin
        let fresh = Packet.copy_pooled pkt in
        Lineage.hop fresh.Packet.lineage ~time:(Mcc_engine.Sim.now t.sim)
          "node.fwd";
        (match t.on_forward with Some h -> h group link fresh | None -> ());
        if
          (not (Link.send link fresh))
          && Option.is_none t.on_forward
          && not (Link.observed link)
        then Packet.release fresh
      end)
    (downstream t ~group)

let receive_body t ~from pkt =
  match t.kind with
  | Lan ->
      (* Repeat onto every attached link except the one leading back to
         the sender. *)
      let leads_back (l : Link.t) =
        match from with Some f -> l.Link.dst = f.Link.src | None -> false
      in
      List.iter
        (fun link ->
          if not (leads_back link) then begin
            let fresh = Packet.copy_pooled pkt in
            if (not (Link.send link fresh)) && not (Link.observed link) then
              Packet.release fresh
          end)
        t.links
  | Host ->
      (* End of the causal chain: fold the hop record into the domain's
         per-hop latency aggregates before the application sees it. *)
      Lineage.retire pkt.Packet.lineage ~time:(Mcc_engine.Sim.now t.sim);
      (match t.promiscuous with Some h -> h pkt | None -> ());
      deliver_local t pkt
  | Edge_router | Core_router -> (
      deliver_local t pkt;
      if pkt.Packet.router_alert then
        (match t.intercept with Some h -> h pkt | None -> ());
      match pkt.Packet.dst with
      | Packet.Unicast id ->
          if id <> t.id then (
            match Hashtbl.find_opt t.fib id with
            | Some link -> ignore (Link.send link pkt)
            | None -> ())
      | Packet.Multicast g -> forward_multicast t ~from ~group:g pkt)

let receive t ~from pkt =
  let sp = Prof.span "node" in
  receive_body t ~from pkt;
  Prof.finish sp

let originate t pkt =
  match pkt.Packet.dst with
  | Packet.Unicast id -> (
      if id = t.id then deliver_local t pkt
      else
        match Hashtbl.find_opt t.fib id with
        | Some link -> ignore (Link.send link pkt)
        | None -> ())
  | Packet.Multicast g ->
      deliver_local t pkt;
      forward_multicast t ~from:None ~group:g pkt
