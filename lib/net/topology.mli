(** Topology builder: nodes, duplex links, static shortest-path routing,
    and the multicast group registry (group address -> source node). *)

type t

val create : Mcc_engine.Sim.t -> t

val sim : t -> Mcc_engine.Sim.t

val add_node : t -> Node.kind -> Node.t
(** Node ids are assigned densely from 0. *)

val node : t -> int -> Node.t
(** @raise Invalid_argument on an unknown id. *)

val nodes : t -> Node.t list

val connect :
  t ->
  Node.t ->
  Node.t ->
  rate_bps:float ->
  delay_s:float ->
  buffer_bytes:int ->
  ?buffer_packets:int ->
  ?ecn_threshold_bytes:int ->
  unit ->
  Link.t * Link.t
(** Creates a duplex link (two simplex links wired as each other's
    [rev]) and installs delivery into the endpoints. *)

val compute_routes : t -> unit
(** Fills every node's FIB with delay-metric shortest paths (Dijkstra).
    Call after the topology is complete and before traffic starts. *)

val register_group : t -> group:int -> source:Node.t -> unit
(** Declares [source] as the root of [group]'s distribution tree. *)

val group_source : t -> int -> Node.t option

val links : t -> Link.t list
(** All simplex links, for counters and reports. *)

val dump : t -> string
(** A canonical plain-text rendering of the graph: nodes in id order,
    simplex links in creation order ("src->dst rate delay buffer"),
    registered groups in address order.  Deterministic builds render to
    identical bytes — the contract the seed-driven topology generators
    are tested against. *)
