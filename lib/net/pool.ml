(* Allocation arenas for the packet hot path.

   Both structures store elements in flat arrays grown by doubling, so
   steady-state operation allocates nothing: the link FIFO replaces
   Stdlib.Queue (one cons cell per enqueue) and the free list backs
   Packet recycling.  Slots beyond the live region may keep stale
   references to previously stored elements until overwritten — callers
   hold recyclable or short-lived values, and [clear] drops the storage
   outright. *)

module Fifo = struct
  type 'a t = { mutable buf : 'a array; mutable head : int; mutable len : int }

  let initial_capacity = 16

  let create () = { buf = [||]; head = 0; len = 0 }
  let length t = t.len
  let is_empty t = t.len = 0
  let capacity t = Array.length t.buf

  (* Unwraps the ring while copying, so [head] restarts at 0; the filler
     is the element being pushed, immediately overwritten. *)
  let grow t filler =
    let cap = Array.length t.buf in
    let cap' = if cap = 0 then initial_capacity else 2 * cap in
    let buf' = Array.make cap' filler in
    for i = 0 to t.len - 1 do
      buf'.(i) <- t.buf.((t.head + i) mod cap)
    done;
    t.buf <- buf';
    t.head <- 0

  let[@hot] push t v =
    if t.len = Array.length t.buf then
      (* lint: allow hot-alloc — amortised doubling, not steady state *)
      grow t v;
    t.buf.((t.head + t.len) mod Array.length t.buf) <- v;
    t.len <- t.len + 1

  let[@hot] pop t =
    if t.len = 0 then invalid_arg "Pool.Fifo.pop: empty";
    let v = t.buf.(t.head) in
    t.head <- (t.head + 1) mod Array.length t.buf;
    t.len <- t.len - 1;
    v

  let clear t =
    t.buf <- [||];
    t.head <- 0;
    t.len <- 0
end

module Freelist = struct
  type 'a t = { mutable store : 'a array; mutable len : int; cap : int }

  let create ~cap () = { store = [||]; len = 0; cap }
  let length t = t.len

  let[@hot] put t v =
    if t.len < t.cap then begin
      if t.len = Array.length t.store then begin
        let cap' = min t.cap (max 64 (2 * Array.length t.store)) in
        (* lint: allow hot-alloc — amortised doubling, not steady state *)
        let store' = Array.make cap' v in
        Array.blit t.store 0 store' 0 t.len;
        t.store <- store'
      end;
      t.store.(t.len) <- v;
      t.len <- t.len + 1
    end

  (* The take API is is_empty + pop (not [take : 'a option]): a [Some]
     box per recycled packet would put the pool itself on the hot
     path's allocation budget. *)
  let is_empty t = t.len = 0

  let[@hot] pop t =
    if t.len = 0 then invalid_arg "Pool.Freelist.pop: empty";
    t.len <- t.len - 1;
    t.store.(t.len)
end
