type t = ..
type t += Raw

(* Atomic rather than a bare ref: protocol libraries register printers
   at init, but nothing stops a worker domain from pulling in a payload
   extension later, and a lost update here would drop a printer. *)
let printers : (Format.formatter -> t -> bool) list Atomic.t = Atomic.make []

let rec register_pp f =
  let cur = Atomic.get printers in
  if not (Atomic.compare_and_set printers cur (f :: cur)) then register_pp f

let pp fmt p =
  match p with
  | Raw -> Format.pp_print_string fmt "raw"
  | _ ->
      let rec try_printers = function
        | [] -> Format.pp_print_string fmt "<payload>"
        | f :: rest -> if not (f fmt p) then try_printers rest
      in
      try_printers (Atomic.get printers)
