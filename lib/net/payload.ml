type t = ..
type t += Raw

let printers : (Format.formatter -> t -> bool) list ref = ref []
let register_pp f = printers := f :: !printers

let pp fmt p =
  match p with
  | Raw -> Format.pp_print_string fmt "raw"
  | _ ->
      let rec try_printers = function
        | [] -> Format.pp_print_string fmt "<payload>"
        | f :: rest -> if not (f fmt p) then try_printers rest
      in
      try_printers !printers
