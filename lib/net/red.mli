(** Random Early Detection (RED) active queue management.

    The fixed [ecn_threshold_bytes] on a link marks deterministically;
    RED is the standard probabilistic discipline used with ECN: it
    tracks an exponentially weighted moving average of the queue size
    and marks with probability rising linearly from 0 at [min_bytes] to
    [max_probability] at [max_bytes] (marking everything above).  This
    module is a pure policy object the link consults per enqueue, so it
    is unit-testable without a simulator. *)

type config = {
  min_bytes : int;
  max_bytes : int;
  max_probability : float;  (** marking probability at [max_bytes] *)
  weight : float;  (** EWMA weight for the average queue size, e.g. 0.002 *)
}

val default_config : buffer_bytes:int -> config
(** min = buffer/4, max = 3*buffer/4, p_max = 0.1, weight = 0.02. *)

type t

val create : ?seed:int -> config -> t

val on_enqueue : t -> queue_bytes:int -> bool
(** Updates the average with the instantaneous [queue_bytes] and returns
    whether this packet should be marked. *)

val average : t -> float
val marks : t -> int
