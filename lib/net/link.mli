(** Unidirectional link: a transmission rate, a propagation delay, and a
    finite drop-tail FIFO buffer, optionally ECN-marking.

    A packet handed to [send] is transmitted immediately if the link is
    idle, queued if the buffer has room, and dropped otherwise.  After
    serialization ([size * 8 / rate] seconds) the packet propagates for
    [delay] seconds and is handed to the receive callback installed by
    the topology. *)

type dst_kind = To_host | To_router | To_lan

type event =
  | Tx_start  (** serialization of a packet began *)
  | Enqueued
  | Dropped
  | Marked
  | Delivered  (** handed to the receiving node after propagation *)

val event_name : event -> string
(** Short stable name ("tx", "enq", "drop", "mark", "rx") used by the
    structured tracer and {!Trace.pp}. *)

type metrics
(** Domain-aggregate {!Mcc_obs.Metrics} counter handles
    ("link.tx_packets", "link.drops", ...), shared by every link of the
    domain; fetched once per link at creation. *)

type t = {
  id : int;
  src : int;  (** node id of the transmitting end *)
  dst : int;  (** node id of the receiving end *)
  dst_kind : dst_kind;
  rate_bps : float;
  delay_s : float;
  buffer_bytes : int;  (** queue capacity, excluding the packet in service *)
  buffer_packets : int option;
      (** optional NS-2-style packet-count cap applied on top of the
          byte cap; keeps small control packets from being undroppable
          in a byte-quantized queue *)
  ecn_threshold_bytes : int option;
      (** mark instead of waiting for loss once occupancy exceeds this *)
  mutable red : Red.t option;
      (** probabilistic marking; takes precedence over the fixed
          threshold when installed (see {!Red}) *)
  sim : Mcc_engine.Sim.t;
  queue : Packet.t Pool.Fifo.t;  (** drop-tail FIFO, ring-buffer backed *)
  mutable queued_bytes : int;
  mutable busy : bool;
  mutable rev : t option;  (** reverse direction of a duplex pair *)
  mutable deliver : Packet.t -> unit;
  mutable on_event : (event -> Packet.t -> unit) option;
      (** observability tap (see {!Trace}); never affects forwarding *)
  (* per-link packet and byte counters *)
  mutable tx_packets : int;
  mutable tx_bytes : int;
  mutable enqueues : int;
  mutable enqueue_bytes : int;
  mutable drops : int;
  mutable drop_bytes : int;
  mutable marks : int;
  mutable mark_bytes : int;
  metrics : metrics;
}

val create :
  sim:Mcc_engine.Sim.t ->
  id:int ->
  src:int ->
  dst:int ->
  dst_kind:dst_kind ->
  rate_bps:float ->
  delay_s:float ->
  buffer_bytes:int ->
  ?buffer_packets:int ->
  ?ecn_threshold_bytes:int ->
  unit ->
  t
(** @raise Invalid_argument on non-positive rate or negative delay. *)

val send : t -> Packet.t -> bool
(** Transmit or queue the packet ([true]), or drop it ([false]).  A
    [false] return is synchronous: the link holds no reference to the
    packet, which lets the multicast fan-out recycle unobserved branch
    copies ({!Packet.release}). *)

val observed : t -> bool
(** Whether an [on_event] tap is installed.  A tap may retain packets
    (the {!Trace} ring does), so the forwarding path only recycles
    dropped copies on unobserved links. *)

val occupancy_bytes : t -> int
(** Bytes currently queued (not counting the packet in service). *)

val control_delay : t -> float
(** Propagation delay only; used for control-plane messages (grafts,
    prunes, IGMP reports) that do not compete for data bandwidth. *)
