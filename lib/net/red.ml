type config = {
  min_bytes : int;
  max_bytes : int;
  max_probability : float;
  weight : float;
}

let default_config ~buffer_bytes =
  {
    min_bytes = buffer_bytes / 4;
    max_bytes = 3 * buffer_bytes / 4;
    max_probability = 0.1;
    weight = 0.02;
  }

type t = {
  config : config;
  prng : Mcc_util.Prng.t;
  mutable avg : float;
  mutable mark_count : int;
  metric : Mcc_obs.Metrics.counter;  (* domain aggregate "red.marks" *)
}

let create ?(seed = 12345) config =
  if config.min_bytes < 0 || config.max_bytes <= config.min_bytes then
    invalid_arg "Red.create: thresholds";
  if config.max_probability <= 0. || config.max_probability > 1. then
    invalid_arg "Red.create: max_probability";
  if config.weight <= 0. || config.weight > 1. then
    invalid_arg "Red.create: weight";
  let t =
    { config; prng = Mcc_util.Prng.create seed; avg = 0.; mark_count = 0;
      metric = Mcc_obs.Metrics.counter "red.marks" }
  in
  (* The EWMA queue estimate over time (several gateways auto-suffix
     "#2", "#3", ...); no-op unless the run enabled sampling. *)
  if Mcc_obs.Timeseries.enabled () then begin
    Mcc_obs.Timeseries.sample_gauge "red.avg_bytes" (fun () -> t.avg);
    Mcc_obs.Timeseries.sample_rate "red.marks_per_s" (fun () ->
        float_of_int t.mark_count)
  end;
  t

let average t = t.avg
let marks t = t.mark_count

let on_enqueue t ~queue_bytes =
  let c = t.config in
  t.avg <- ((1. -. c.weight) *. t.avg) +. (c.weight *. float_of_int queue_bytes);
  let mark =
    if t.avg < float_of_int c.min_bytes then false
    else if t.avg >= float_of_int c.max_bytes then true
    else
      let span = float_of_int (c.max_bytes - c.min_bytes) in
      let p =
        c.max_probability *. (t.avg -. float_of_int c.min_bytes) /. span
      in
      Mcc_util.Prng.float t.prng < p
  in
  if mark then begin
    t.mark_count <- t.mark_count + 1;
    Mcc_obs.Metrics.incr t.metric
  end;
  mark
