type dst = Unicast of int | Multicast of int

type t = {
  uid : int;
  src : int;
  dst : dst;
  size : int;
  mutable ecn : bool;
  router_alert : bool;
  mutable payload : Payload.t;
}

(* Domain-local so concurrent simulations (the batch runner farms runs
   out to domains) never contend on — or non-deterministically
   interleave — the counter.  Uids stay unique and reproducible within
   a domain, which is as strong a guarantee as the previous global
   counter gave a single-threaded process. *)
let next_uid = Domain.DLS.new_key (fun () -> ref 0)

let make ?(router_alert = false) ~src ~dst ~size payload =
  if size <= 0 then invalid_arg "Packet.make: size <= 0";
  let counter = Domain.DLS.get next_uid in
  incr counter;
  { uid = !counter; src; dst; size; ecn = false; router_alert; payload }

let copy t = { t with uid = t.uid }
let is_multicast t = match t.dst with Multicast _ -> true | Unicast _ -> false

let pp fmt t =
  let dst_str =
    match t.dst with
    | Unicast n -> Printf.sprintf "u%d" n
    | Multicast g -> Printf.sprintf "g%d" g
  in
  Format.fprintf fmt "#%d %d->%s %dB%s [%a]" t.uid t.src dst_str t.size
    (if t.ecn then " ecn" else "")
    Payload.pp t.payload
