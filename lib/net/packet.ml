type dst = Unicast of int | Multicast of int

(* All fields are mutable so a recycled record can be re-initialised in
   place ([copy_pooled]); outside the pool the identity fields are
   treated as immutable, exactly as before. *)
type t = {
  mutable uid : int;
  mutable src : int;
  mutable dst : dst;
  mutable size : int;
  mutable ecn : bool;
  mutable router_alert : bool;
  mutable payload : Payload.t;
  mutable lineage : Mcc_obs.Lineage.t;
}

(* Domain-local so concurrent simulations (the batch runner farms runs
   out to domains) never contend on — or non-deterministically
   interleave — the counter.  Uids stay unique and reproducible within
   a domain, which is as strong a guarantee as the previous global
   counter gave a single-threaded process. *)
let next_uid = Domain.DLS.new_key (fun () -> ref 0)

let make ?(router_alert = false) ~src ~dst ~size payload =
  if size <= 0 then invalid_arg "Packet.make: size <= 0";
  let counter = Domain.DLS.get next_uid in
  incr counter;
  {
    uid = !counter;
    src;
    dst;
    size;
    ecn = false;
    router_alert;
    payload;
    lineage = Mcc_obs.Lineage.fresh ();
  }

(* A copy is a distinct causal object (one multicast branch), so it
   gets its own lineage record seeded with the parent's history. *)
let copy t = { t with lineage = Mcc_obs.Lineage.clone t.lineage }

(* Multicast fan-out allocates one copy per downstream branch, and under
   the congestion the attack figures live in, most of those copies die
   synchronously in a full link buffer.  Recycling them through a
   domain-local free list turns that steady state allocation-free.  The
   pool is bounded, so a run that never releases behaves exactly as
   before. *)
let pool = Domain.DLS.new_key (fun () -> Pool.Freelist.create ~cap:4096 ())

let[@hot] copy_pooled src =
  let fl = Domain.DLS.get pool in
  if Pool.Freelist.is_empty fl then copy src
  else begin
    let pkt = Pool.Freelist.pop fl in
    pkt.uid <- src.uid;
    pkt.src <- src.src;
    pkt.dst <- src.dst;
    pkt.size <- src.size;
    pkt.ecn <- src.ecn;
    pkt.router_alert <- src.router_alert;
    pkt.payload <- src.payload;
    pkt.lineage <- Mcc_obs.Lineage.clone src.lineage;
    pkt
  end

let[@hot] release pkt =
  (* The lineage goes back to its own pool; the packet keeps a stale
     pointer that [copy_pooled] overwrites before the record is seen
     again. *)
  Mcc_obs.Lineage.release pkt.lineage;
  Pool.Freelist.put (Domain.DLS.get pool) pkt
let pooled () = Pool.Freelist.length (Domain.DLS.get pool)
let is_multicast t = match t.dst with Multicast _ -> true | Unicast _ -> false

let pp fmt t =
  let dst_str =
    match t.dst with
    | Unicast n -> Printf.sprintf "u%d" n
    | Multicast g -> Printf.sprintf "g%d" g
  in
  Format.fprintf fmt "#%d %d->%s %dB%s [%a]" t.uid t.src dst_str t.size
    (if t.ecn then " ecn" else "")
    Payload.pp t.payload
