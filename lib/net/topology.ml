module Sim = Mcc_engine.Sim

type t = {
  sim : Sim.t;
  mutable nodes : Node.t list;  (* reverse insertion order *)
  mutable node_count : int;
  mutable links : Link.t list;
  mutable link_count : int;
  groups : (int, Node.t) Hashtbl.t;
}

let create sim =
  { sim; nodes = []; node_count = 0; links = []; link_count = 0; groups = Hashtbl.create 16 }

let sim t = t.sim

let add_node t kind =
  let node = Node.create ~sim:t.sim ~id:t.node_count ~kind in
  t.node_count <- t.node_count + 1;
  t.nodes <- node :: t.nodes;
  node

let nodes t = List.rev t.nodes

let node t id =
  match List.find_opt (fun (n : Node.t) -> n.Node.id = id) t.nodes with
  | Some n -> n
  | None -> invalid_arg (Printf.sprintf "Topology.node: unknown id %d" id)

let dst_kind_of (n : Node.t) =
  match n.Node.kind with
  | Node.Host -> Link.To_host
  | Node.Lan -> Link.To_lan
  | Node.Edge_router | Node.Core_router -> Link.To_router

let connect t a b ~rate_bps ~delay_s ~buffer_bytes ?buffer_packets
    ?ecn_threshold_bytes () =
  let make ~src ~dst =
    let id = t.link_count in
    t.link_count <- t.link_count + 1;
    let link =
      Link.create ~sim:t.sim ~id ~src:src.Node.id ~dst:dst.Node.id
        ~dst_kind:(dst_kind_of dst) ~rate_bps ~delay_s ~buffer_bytes
        ?buffer_packets ?ecn_threshold_bytes ()
    in
    link.Link.deliver <- (fun pkt -> Node.receive dst ~from:(Some link) pkt);
    t.links <- link :: t.links;
    link
  in
  let ab = make ~src:a ~dst:b in
  let ba = make ~src:b ~dst:a in
  ab.Link.rev <- Some ba;
  ba.Link.rev <- Some ab;
  a.Node.links <- ab :: a.Node.links;
  b.Node.links <- ba :: b.Node.links;
  (ab, ba)

let compute_routes t =
  let all = nodes t in
  let n = t.node_count in
  List.iter
    (fun (src : Node.t) ->
      (* Dijkstra from [src] over propagation delay. *)
      let dist = Array.make n infinity in
      let first_hop : Link.t option array = Array.make n None in
      let visited = Array.make n false in
      dist.(src.Node.id) <- 0.;
      let rec loop () =
        (* Linear-scan extraction is fine at simulation topology sizes. *)
        let best = ref (-1) in
        for i = 0 to n - 1 do
          if (not visited.(i)) && dist.(i) < infinity
             && (!best = -1 || dist.(i) < dist.(!best))
          then best := i
        done;
        if !best >= 0 then begin
          let u = !best in
          visited.(u) <- true;
          let node_u = node t u in
          List.iter
            (fun (l : Link.t) ->
              let v = l.Link.dst in
              let d = dist.(u) +. l.Link.delay_s +. 1e-9 in
              if d < dist.(v) then begin
                dist.(v) <- d;
                first_hop.(v) <- (if u = src.Node.id then Some l else first_hop.(u))
              end)
            node_u.Node.links;
          loop ()
        end
      in
      loop ();
      Hashtbl.reset src.Node.fib;
      for v = 0 to n - 1 do
        if v <> src.Node.id then
          match first_hop.(v) with
          | Some l -> Hashtbl.replace src.Node.fib v l
          | None -> ()
      done)
    all

let register_group t ~group ~source = Hashtbl.replace t.groups group source
let group_source t group = Hashtbl.find_opt t.groups group
let links t = List.rev t.links

let kind_str = function
  | Node.Host -> "host"
  | Node.Edge_router -> "edge"
  | Node.Core_router -> "core"
  | Node.Lan -> "lan"

(* A canonical plain-text rendering of the graph: nodes in id order,
   simplex links in creation order, groups in address order.  Two
   topologies built by the same deterministic steps render to the same
   bytes, which is what the generator-determinism tests compare. *)
let dump t =
  let buf = Buffer.create 256 in
  List.iter
    (fun (n : Node.t) ->
      Buffer.add_string buf
        (Printf.sprintf "node %d %s\n" n.Node.id (kind_str n.Node.kind)))
    (nodes t);
  List.iter
    (fun (l : Link.t) ->
      Buffer.add_string buf
        (Printf.sprintf "link %d %d->%d rate=%g delay=%g buffer=%d\n"
           l.Link.id l.Link.src l.Link.dst l.Link.rate_bps l.Link.delay_s
           l.Link.buffer_bytes))
    (links t);
  let groups =
    List.sort
      (fun (a, _) (b, _) -> Int.compare a b)
      (Hashtbl.fold
         (fun g (src : Node.t) acc -> (g, src.Node.id) :: acc)
         t.groups [])
  in
  List.iter
    (fun (g, src) ->
      Buffer.add_string buf (Printf.sprintf "group %#x source=%d\n" g src))
    groups;
  Buffer.contents buf
