(** Extensible packet payloads.

    The network layer forwards packets without looking inside them;
    each protocol library (transport, mcast, sigma) extends this type
    with its own segments.  [Raw] is a size-only filler used by plain
    CBR sources and tests. *)

type t = ..

type t += Raw

val pp : Format.formatter -> t -> unit
(** Prints the constructor name for registered payloads and ["<payload>"]
    otherwise; extensions may register a printer with [register_pp]. *)

val register_pp : (Format.formatter -> t -> bool) -> unit
(** Printers return [true] if they handled the payload. *)
