type t = { groups : int; min_rate_bps : float; factor : float }

let make ~groups ~min_rate_bps ~factor =
  if groups < 1 then invalid_arg "Layering.make: groups < 1";
  if min_rate_bps <= 0. then invalid_arg "Layering.make: min_rate_bps <= 0";
  if factor <= 1. then invalid_arg "Layering.make: factor <= 1";
  { groups; min_rate_bps; factor }

let cumulative_rate t ~level =
  if level < 0 || level > t.groups then invalid_arg "Layering.cumulative_rate";
  if level = 0 then 0.
  else t.min_rate_bps *. (t.factor ** float_of_int (level - 1))

let layer_rate t ~group =
  if group < 1 || group > t.groups then invalid_arg "Layering.layer_rate";
  cumulative_rate t ~level:group -. cumulative_rate t ~level:(group - 1)

let fair_level t ~rate_bps =
  let rec climb level =
    if level >= t.groups then t.groups
    else if cumulative_rate t ~level:(level + 1) > rate_bps then level
    else climb (level + 1)
  in
  if rate_bps < t.min_rate_bps then 0 else climb 1

let top_rate t = cumulative_rate t ~level:t.groups
