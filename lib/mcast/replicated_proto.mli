(** Replicated multicast congestion control (paper Section 3.1.2,
    "Session structure", and Figure 5).

    Each group of the session carries the {e same} content at a
    different rate (group 1 slowest, group N fastest) and a receiver
    subscribes to exactly one group: it switches down one group when
    congested, and up one group when uncongested and authorized.  In
    [Robust] mode the session is protected by the replicated DELTA
    instantiation — per-group top keys, decrease fields naming the next
    lower group's key, increase keys equal to the lower group's
    component XOR — enforced by the same generic SIGMA agent that
    guards FLID-DS. *)

type config = {
  id : int;
  base_group : int;
  layering : Layering.t;  (** level g = single group g at rate R_g *)
  slot_duration : float;
  packet_size : int;
  width : int;
  mode : Flid.mode;  (** [Plain] or [Robust], as for FLID *)
  upgrade_period : int -> int;
  processing_margin : float;
}

val make_config :
  ?packet_size:int ->
  ?width:int ->
  ?upgrade_period:(int -> int) ->
  ?processing_margin:float ->
  id:int ->
  base_group:int ->
  layering:Layering.t ->
  slot_duration:float ->
  mode:Flid.mode ->
  unit ->
  config

val group_addr : config -> int -> int

type Mcc_net.Payload.t +=
  | Rep_data of {
      session : int;
      group : int;
      slot : int;
      seq : int;
      last : bool;
      upgrade_mask : int;
      delta : Mcc_delta.Field.t option;
    }

type sender

val sender_start :
  ?at:float ->
  Mcc_net.Topology.t ->
  node:Mcc_net.Node.t ->
  prng:Mcc_util.Prng.t ->
  config ->
  sender

val sender_stop : sender -> unit

val sender_keys_for_slot :
  sender -> slot:int -> Mcc_delta.Replicated.keys option

type receiver

val receiver_start :
  ?at:float ->
  ?behavior:Flid.behavior ->
  Mcc_net.Topology.t ->
  host:Mcc_net.Node.t ->
  prng:Mcc_util.Prng.t ->
  config ->
  receiver

val receiver_meter : receiver -> Mcc_util.Meter.t

val receiver_group : receiver -> int
(** The single group currently subscribed (0 while re-admitting). *)

val group_series : receiver -> Mcc_util.Series.t
val receiver_stop : receiver -> unit
