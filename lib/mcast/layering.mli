(** Rate structure of a multi-group session.

    The paper's sessions are cumulative layered: subscription level g
    receives groups 1..g at cumulative rate R_g = r * m^(g-1) (Eq. 10),
    so group g alone carries R_g - R_(g-1).  The same record describes a
    replicated session, where level g is the single group g at rate
    R_g. *)

type t = {
  groups : int;  (** N *)
  min_rate_bps : float;  (** r: rate of group 1 / the minimal level *)
  factor : float;  (** m: multiplicative growth per level *)
}

val make : groups:int -> min_rate_bps:float -> factor:float -> t
(** @raise Invalid_argument on non-positive parameters or factor <= 1. *)

val cumulative_rate : t -> level:int -> float
(** R_g; [level] in 1..N.  [cumulative_rate ~level:0] is 0. *)

val layer_rate : t -> group:int -> float
(** R_g - R_(g-1): what group g alone transmits in a layered session. *)

val fair_level : t -> rate_bps:float -> int
(** The highest level whose cumulative rate fits within [rate_bps];
    0 if even the minimal level exceeds it. *)

val top_rate : t -> float
(** R_N, the session's full cumulative rate. *)
