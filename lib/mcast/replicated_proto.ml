module Sim = Mcc_engine.Sim
module Node = Mcc_net.Node
module Packet = Mcc_net.Packet
module Payload = Mcc_net.Payload
module Topology = Mcc_net.Topology
module Multicast = Mcc_net.Multicast
module Meter = Mcc_util.Meter
module Series = Mcc_util.Series
module Prng = Mcc_util.Prng
module Key = Mcc_delta.Key
module Field = Mcc_delta.Field
module Replicated = Mcc_delta.Replicated
module Tuple = Mcc_sigma.Tuple
module Special = Mcc_sigma.Special
module Client = Mcc_sigma.Client
module Metrics = Mcc_obs.Metrics
module Tracer = Mcc_obs.Tracer
module Timeseries = Mcc_obs.Timeseries
module Json = Mcc_obs.Json

type config = {
  id : int;
  base_group : int;
  layering : Layering.t;
  slot_duration : float;
  packet_size : int;
  width : int;
  mode : Flid.mode;
  upgrade_period : int -> int;
  processing_margin : float;
}

let make_config ?(packet_size = 576) ?(width = Key.default_width)
    ?upgrade_period ?(processing_margin = 0.9) ~id ~base_group ~layering
    ~slot_duration ~mode () =
  if slot_duration <= 0. then
    invalid_arg "Replicated_proto.make_config: slot_duration";
  let upgrade_period =
    match upgrade_period with
    | Some f -> f
    | None -> Flid.default_upgrade_period layering
  in
  {
    id;
    base_group;
    layering;
    slot_duration;
    packet_size;
    width;
    mode;
    upgrade_period;
    processing_margin;
  }

let group_addr config g = config.base_group + g - 1

type Payload.t +=
  | Rep_data of {
      session : int;
      group : int;
      slot : int;
      seq : int;
      last : bool;
      upgrade_mask : int;
      delta : Field.t option;
    }

let () =
  Payload.register_pp (fun fmt -> function
    | Rep_data { session; group; slot; seq; _ } ->
        Format.fprintf fmt "rep s%d g%d slot%d #%d" session group slot seq;
        true
    | _ -> false)

let mask_bit mask g = mask land (1 lsl (g - 1)) <> 0

(* ----------------------------------------------------------------- *)
(* Sender                                                            *)
(* ----------------------------------------------------------------- *)

type sender = {
  s_config : config;
  s_topo : Topology.t;
  s_node : Node.t;
  s_prng : Prng.t;
  mutable s_slot : int;
  s_credits : float array;
  mutable s_keys : (int * Replicated.keys) list;
  mutable s_tick : Sim.handle option;
  mutable s_stopped : bool;
}

let sender_stop s =
  s.s_stopped <- true;
  match s.s_tick with Some h -> Sim.cancel h | None -> ()

let sender_keys_for_slot s ~slot = List.assoc_opt slot s.s_keys

let upgrade_mask config slot =
  let n = config.layering.Layering.groups in
  let mask = ref 0 in
  for g = 2 to n do
    if (slot + g) mod config.upgrade_period g = 0 then
      mask := !mask lor (1 lsl (g - 1))
  done;
  !mask

let emit s ~group ~slot ~seq ~last ~mask ~delta () =
  if not s.s_stopped then begin
    let config = s.s_config in
    let field_bytes =
      match delta with
      | Some f -> Field.wire_bytes ~width:config.width f
      | None -> 0
    in
    Node.originate s.s_node
      (Packet.make ~src:s.s_node.Node.id
         ~dst:(Packet.Multicast (group_addr config group))
         ~size:(config.packet_size + field_bytes)
         (Rep_data
            { session = config.id; group; slot; seq; last; upgrade_mask = mask;
              delta }))
  end

let sender_slot_tick s () =
  let config = s.s_config in
  let sim = Topology.sim s.s_topo in
  let tick_now = Sim.now sim in
  let n = config.layering.Layering.groups in
  let slot = s.s_slot in
  s.s_slot <- slot + 1;
  let mask = upgrade_mask config slot in
  let delta_state =
    match config.mode with
    | Flid.Plain -> None
    | Flid.Robust ->
        let upgrades = Array.init n (fun i -> i >= 1 && mask_bit mask (i + 1)) in
        let st =
          Replicated.sender_create ~prng:s.s_prng ~width:config.width ~groups:n
            ~upgrades
        in
        let keys = Replicated.sender_keys st in
        let guarded = slot + 2 in
        s.s_keys <- (guarded, keys) :: List.filteri (fun i _ -> i < 3) s.s_keys;
        let tuples =
          List.init n (fun i ->
              let g = i + 1 in
              Tuple.make ~group:(group_addr config g) ~slot:guarded
                ~keys:(Replicated.valid_keys keys ~group:g) ~minimal:(g = 1))
        in
        ignore
          (Special.distribute s.s_topo ~sender:s.s_node ~session:config.id
             ~via_group:(group_addr config 1) ~width:config.width ~slot:guarded
             ~slot_duration:config.slot_duration ~tuples ());
        Some st
  in
  for g = 1 to n do
    (* Each group carries the full content: group g transmits at the
       cumulative rate R_g, not a layer residue. *)
    let rate = Layering.cumulative_rate config.layering ~level:g in
    s.s_credits.(g - 1) <-
      s.s_credits.(g - 1)
      +. (rate *. config.slot_duration /. float_of_int (config.packet_size * 8));
    let count = max 1 (int_of_float s.s_credits.(g - 1)) in
    s.s_credits.(g - 1) <- s.s_credits.(g - 1) -. float_of_int count;
    let spacing = config.slot_duration /. float_of_int count in
    let phase = float_of_int g /. float_of_int (n + 1) *. spacing in
    for i = 0 to count - 1 do
      let last = i = count - 1 in
      let delta () =
        match delta_state with
        | Some st ->
            Some
              (Field.make
                 ~component:(Replicated.next_component st ~group:g ~last)
                 ~decrease:(Replicated.decrease_field st ~group:g))
        | None -> None
      in
      Sim.post sim
           ~at:(tick_now +. phase +. (float_of_int i *. spacing))
           (fun () -> emit s ~group:g ~slot ~seq:i ~last ~mask ~delta:(delta ()) ())
    done
  done

let sender_start ?(at = 0.) topo ~node ~prng config =
  let n = config.layering.Layering.groups in
  for g = 1 to n do
    Topology.register_group topo ~group:(group_addr config g) ~source:node
  done;
  let s =
    {
      s_config = config;
      s_topo = topo;
      s_node = node;
      s_prng = prng;
      s_slot = 0;
      s_credits = Array.make n 0.;
      s_keys = [];
      s_tick = None;
      s_stopped = false;
    }
  in
  s.s_tick <-
    Some
      (Sim.every (Topology.sim topo) ~start:at ~period:config.slot_duration
         (sender_slot_tick s));
  s

(* ----------------------------------------------------------------- *)
(* Receiver                                                          *)
(* ----------------------------------------------------------------- *)

type slot_rec = {
  mutable count : int;
  mutable last_seq : int option;
  mutable saw_last : bool;
  mutable mask : int;
  delta_recv : Replicated.receiver option;
}

type receiver = {
  r_config : config;
  r_topo : Topology.t;
  r_host : Node.t;
  r_behavior : Flid.behavior;
  r_prng : Prng.t;
  r_meter : Meter.t;
  r_series : Series.t;
  mutable r_group : int;  (* currently subscribed group; 0 = re-admitting *)
  mutable r_active_since : int;  (* first slot the group is evaluated for *)
  r_slots : (int, slot_rec) Hashtbl.t;
  mutable r_base : float;
  mutable r_synced : bool;
  mutable r_next_eval : int;
  mutable r_highest : int;  (* highest slot seen on the current group *)
  r_client : Client.t option;
  mutable r_misbehaving : bool;
  mutable r_joined_all : bool;
  mutable r_stopped : bool;
}

let receiver_meter r = r.r_meter
let receiver_group r = r.r_group
let group_series r = r.r_series
let receiver_stop r = r.r_stopped <- true

let slot_rec r slot =
  match Hashtbl.find_opt r.r_slots slot with
  | Some rec_ -> rec_
  | None ->
      let rec_ =
        {
          count = 0;
          last_seq = None;
          saw_last = false;
          mask = 0;
          delta_recv =
            (match r.r_config.mode with
            | Flid.Robust ->
                Some
                  (Replicated.receiver_create
                     ~groups:r.r_config.layering.Layering.groups)
            | Flid.Plain -> None);
        }
      in
      Hashtbl.replace r.r_slots slot rec_;
      rec_

let record_group r =
  let time = Sim.now (Topology.sim r.r_topo) in
  Series.add r.r_series ~time ~value:(float_of_int r.r_group);
  Metrics.tick "rep.switches";
  if Tracer.enabled () then
    Tracer.emit ~sim_time:time ~component:"rep.receiver" ~event:"switch"
      (fun () ->
        [
          ("host", Json.Int r.r_host.Node.id);
          ("group", Json.Int r.r_group);
        ])

let lost rec_ =
  rec_.count = 0
  || (not rec_.saw_last)
  || match rec_.last_seq with Some l -> rec_.count < l + 1 | None -> true

let switch_plain r ~from_group ~to_group =
  let config = r.r_config in
  if to_group >= 1 then
    Multicast.host_join r.r_topo ~host:r.r_host
      ~group:(group_addr config to_group);
  if from_group >= 1 && from_group <> to_group then
    Multicast.host_leave r.r_topo ~host:r.r_host
      ~group:(group_addr config from_group)

let plain_inflate r =
  if not r.r_joined_all then begin
    r.r_joined_all <- true;
    let n = r.r_config.layering.Layering.groups in
    (* Replicated inflation: jump straight to the fastest group (and,
       greedily, keep everything else too). *)
    for g = 1 to n do
      Multicast.host_join r.r_topo ~host:r.r_host
        ~group:(group_addr r.r_config g)
    done;
    r.r_group <- n;
    record_group r
  end

let eval_slot r slot =
  let config = r.r_config in
  let n = config.layering.Layering.groups in
  let rec_ = slot_rec r slot in
  (match r.r_behavior with
  | Flid.Adversarial a ->
      (* Replicated receivers hold one group at a time, so every active
         adversary degrades to the same misbehaviour: claim the faster
         streams with guessed keys (Robust) or plain joins. *)
      r.r_misbehaving <- a.Flid.adv_active ~time:(Sim.now (Topology.sim r.r_topo))
  | Flid.Inflate_after t when Sim.now (Topology.sim r.r_topo) >= t ->
      r.r_misbehaving <- true
  | Flid.Inflate_after _ | Flid.Well_behaved -> ());
  Metrics.tick "rep.slots";
  if r.r_group >= 1 && r.r_active_since <= slot then begin
    let congested = lost rec_ in
    if congested then Metrics.tick "rep.inferred_losses";
    let g = r.r_group in
    match config.mode with
    | Flid.Plain ->
        if r.r_misbehaving then plain_inflate r
        else if congested then begin
          let to_group = max 1 (g - 1) in
          if to_group <> g then begin
            switch_plain r ~from_group:g ~to_group;
            r.r_group <- to_group;
            r.r_active_since <- slot + 2;
            record_group r
          end
        end
        else if g < n && mask_bit rec_.mask (g + 1) then begin
          switch_plain r ~from_group:g ~to_group:(g + 1);
          r.r_group <- g + 1;
          r.r_active_since <- slot + 2;
          record_group r
        end
    | Flid.Robust -> (
        match rec_.delta_recv with
        | None -> ()
        | Some delta ->
            let outcome =
              Replicated.slot_end delta ~group:g ~congested
                ~upgrade_to:(fun j -> j <= n && mask_bit rec_.mask j)
            in
            let pairs =
              match outcome.Replicated.key with
              | Some k when outcome.Replicated.next_group >= 1 ->
                  [ (group_addr config outcome.Replicated.next_group, k) ]
              | Some _ | None -> []
            in
            let pairs =
              if r.r_misbehaving then
                (* Claim every faster group with guessed keys. *)
                pairs
                @ List.filter_map
                    (fun j ->
                      if j > outcome.Replicated.next_group then
                        Some
                          ( group_addr config j,
                            Key.nonce r.r_prng ~width:config.width )
                      else None)
                    (List.init n (fun i -> i + 1))
              else pairs
            in
            (match r.r_client with
            | Some client when pairs <> [] ->
                Client.subscribe client ~slot:(slot + 2) ~pairs
            | Some _ | None -> ());
            let next = outcome.Replicated.next_group in
            if next = 0 then begin
              (match r.r_client with
              | Some client ->
                  Client.session_join client ~group:(group_addr config 1)
              | None -> ());
              r.r_group <- 1;
              r.r_active_since <- slot + 3;
              record_group r
            end
            else if next <> g then begin
              (* Switch, don't stack: a replicated receiver leaves its
                 old group as it moves, otherwise both rates transit the
                 bottleneck and the overlap itself causes congestion. *)
              (if not r.r_misbehaving then
                 match r.r_client with
                 | Some client ->
                     Client.unsubscribe client ~groups:[ group_addr config g ]
                 | None -> ());
              r.r_group <- next;
              r.r_active_since <- slot + 2;
              record_group r
            end;
            (* Total silence while nominally subscribed: knock again. *)
            if rec_.count = 0 && r.r_group = 1 then
              match r.r_client with
              | Some client ->
                  Client.session_join client ~group:(group_addr config 1)
              | None -> ())
  end;
  let stale =
    Hashtbl.fold (fun s _ acc -> if s <= slot then s :: acc else acc) r.r_slots []
  in
  List.iter (Hashtbl.remove r.r_slots) stale

let slot_closed r slot =
  r.r_group >= 1 && r.r_active_since <= slot
  && (r.r_highest > slot
     ||
     match Hashtbl.find_opt r.r_slots slot with
     | Some rec_ -> rec_.saw_last
     | None -> false)

let rec try_eval r =
  if (not r.r_stopped) && slot_closed r r.r_next_eval then begin
    let slot = r.r_next_eval in
    eval_slot r slot;
    r.r_next_eval <- slot + 1;
    try_eval r
  end

let rec schedule_eval r =
  if not r.r_stopped then begin
    let sim = Topology.sim r.r_topo in
    let config = r.r_config in
    let slot = r.r_next_eval in
    let at =
      r.r_base
      +. (float_of_int (slot + 1) *. config.slot_duration)
      +. (config.processing_margin *. config.slot_duration)
    in
    let at = Float.max at (Sim.now sim) in
    Sim.post sim ~at (fun () ->
           if not r.r_stopped then begin
             if r.r_next_eval = slot then begin
               eval_slot r slot;
               r.r_next_eval <- slot + 1;
               try_eval r
             end;
             schedule_eval r
           end)
  end

let on_data r pkt =
  match pkt.Packet.payload with
  | Rep_data { session; group; slot; seq; last; upgrade_mask; delta }
    when session = r.r_config.id ->
      let now = Sim.now (Topology.sim r.r_topo) in
      Meter.record r.r_meter ~time:now ~bytes:pkt.Packet.size;
      let candidate_base =
        now -. (float_of_int slot *. r.r_config.slot_duration)
      in
      if not r.r_synced then begin
        r.r_synced <- true;
        r.r_base <- candidate_base;
        r.r_next_eval <- slot + 1;
        if r.r_active_since = max_int then r.r_active_since <- slot + 1;
        schedule_eval r
      end
      else r.r_base <- Float.min r.r_base candidate_base;
      if group = r.r_group then
        r.r_highest <- max r.r_highest slot;
      if slot >= r.r_next_eval then begin
        (* Only the subscribed group's packets feed congestion state; a
           packet from another group (stale forwarding during a switch)
           still feeds the DELTA accumulators, which are per-group. *)
        let rec_ = slot_rec r slot in
        if group = r.r_group then begin
          rec_.count <- rec_.count + 1;
          if last then begin
            rec_.saw_last <- true;
            rec_.last_seq <- Some seq
          end
        end;
        rec_.mask <- rec_.mask lor upgrade_mask;
        match (rec_.delta_recv, delta) with
        | Some dr, Some f ->
            Replicated.on_packet dr ~group ~component:f.Field.component
              ~decrease:f.Field.decrease
        | _, _ -> ()
      end;
      try_eval r
  | _ -> ()

let receiver_start ?(at = 0.) ?(behavior = Flid.Well_behaved) topo ~host ~prng
    config =
  let n = config.layering.Layering.groups in
  let r =
    {
      r_config = config;
      r_topo = topo;
      r_host = host;
      r_behavior = behavior;
      r_prng = prng;
      r_meter = Meter.create ();
      r_series = Series.create ();
      r_group = 1;
      r_active_since = max_int;
      r_slots = Hashtbl.create 8;
      r_base = infinity;
      r_synced = false;
      r_next_eval = 0;
      r_highest = -1;
      r_client =
        (match config.mode with
        | Flid.Robust -> Some (Client.create ~width:config.width topo ~host)
        | Flid.Plain -> None);
      r_misbehaving = false;
      r_joined_all = false;
      r_stopped = false;
    }
  in
  if Timeseries.enabled () then begin
    let name suffix =
      Printf.sprintf "rep.s%d.h%d.%s" config.id host.Node.id suffix
    in
    Timeseries.sample_rate ~scale:0.008 (name "goodput_kbps") (fun () ->
        float_of_int (Meter.total_bytes r.r_meter));
    Timeseries.sample_gauge (name "group") (fun () -> float_of_int r.r_group)
  end;
  for g = 1 to n do
    Node.subscribe_local host ~group:(group_addr config g) (on_data r)
  done;
  Sim.post (Topology.sim topo) ~at (fun () ->
         match (config.mode, r.r_client) with
         | Flid.Plain, _ ->
             Multicast.host_join topo ~host ~group:(group_addr config 1)
         | Flid.Robust, Some client ->
             Client.session_join client ~group:(group_addr config 1)
         | Flid.Robust, None -> ());
  r
