module Sim = Mcc_engine.Sim
module Node = Mcc_net.Node
module Packet = Mcc_net.Packet
module Payload = Mcc_net.Payload
module Topology = Mcc_net.Topology
module Multicast = Mcc_net.Multicast
module Meter = Mcc_util.Meter
module Series = Mcc_util.Series
module Prng = Mcc_util.Prng
module Key = Mcc_delta.Key
module Field = Mcc_delta.Field
module Layered = Mcc_delta.Layered
module Tuple = Mcc_sigma.Tuple
module Special = Mcc_sigma.Special
module Client = Mcc_sigma.Client
module Metrics = Mcc_obs.Metrics
module Tracer = Mcc_obs.Tracer
module Timeseries = Mcc_obs.Timeseries
module Json = Mcc_obs.Json

type mode = Plain | Robust

type config = {
  id : int;
  base_group : int;
  layering : Layering.t;
  slot_duration : float;
  packet_size : int;
  width : int;
  mode : mode;
  upgrade_period : int -> int;
  processing_margin : float;
  fec_scheme : Mcc_sigma.Fec.scheme;
}

let default_upgrade_period layering g =
  let r1 = layering.Layering.min_rate_bps in
  let rg = Layering.cumulative_rate layering ~level:g in
  max 2 (int_of_float (ceil (rg /. r1)))

let make_config ?(packet_size = 576) ?(width = Key.default_width)
    ?upgrade_period ?(processing_margin = 0.9)
    ?(fec_scheme = Mcc_sigma.Fec.Repetition 2) ~id ~base_group ~layering
    ~slot_duration ~mode () =
  if slot_duration <= 0. then invalid_arg "Flid.make_config: slot_duration";
  if packet_size <= 0 then invalid_arg "Flid.make_config: packet_size";
  let upgrade_period =
    match upgrade_period with
    | Some f -> f
    | None -> default_upgrade_period layering
  in
  {
    id;
    base_group;
    layering;
    slot_duration;
    packet_size;
    width;
    mode;
    upgrade_period;
    processing_margin;
    fec_scheme;
  }

let group_addr config g = config.base_group + g - 1

type Payload.t +=
  | Data of {
      session : int;
      group : int;
      slot : int;
      seq : int;
      last : bool;
      upgrade_mask : int;
      delta : Field.t option;
    }

let () =
  Payload.register_pp (fun fmt -> function
    | Data { session; group; slot; seq; last; _ } ->
        Format.fprintf fmt "flid s%d g%d slot%d #%d%s" session group slot seq
          (if last then " last" else "");
        true
    | _ -> false)

let mask_bit mask g = mask land (1 lsl (g - 1)) <> 0

(* ----------------------------------------------------------------- *)
(* Sender                                                            *)
(* ----------------------------------------------------------------- *)

type sender_stats = {
  mutable slots : int;
  mutable data_bits : int;
  mutable delta_bits : int;
  mutable sigma_payload_bits : int;
  mutable sigma_header_bits : int;
  mutable sigma_packets : int;
  mutable authorizations : int array;
  mutable fec_expansion : float;
}

type sender = {
  s_config : config;
  s_topo : Topology.t;
  s_node : Node.t;
  s_prng : Prng.t;
  mutable s_slot : int;
  s_credits : float array;  (* fractional packets carried across slots *)
  mutable s_keys : (int * Layered.keys) list;  (* (guarded slot, keys) *)
  s_stats : sender_stats;
  mutable s_tick : Sim.handle option;
  mutable s_stopped : bool;
}

let sender_stats s = s.s_stats

let sender_stop s =
  s.s_stopped <- true;
  match s.s_tick with Some h -> Sim.cancel h | None -> ()

let sender_keys_for_slot s ~slot = List.assoc_opt slot s.s_keys

let upgrade_mask config slot =
  let n = config.layering.Layering.groups in
  let mask = ref 0 in
  for g = 2 to n do
    if (slot + g) mod config.upgrade_period g = 0 then
      mask := !mask lor (1 lsl (g - 1))
  done;
  !mask

let emit_packet s ~group ~slot ~seq ~last ~mask ~delta () =
  if not s.s_stopped then begin
    let config = s.s_config in
    let field_bytes =
      match delta with
      | Some f -> Field.wire_bytes ~width:config.width f
      | None -> 0
    in
    let pkt =
      Packet.make ~src:s.s_node.Node.id
        ~dst:(Packet.Multicast (group_addr config group))
        ~size:(config.packet_size + field_bytes)
        (Data
           { session = config.id; group; slot; seq; last; upgrade_mask = mask;
             delta })
    in
    s.s_stats.data_bits <- s.s_stats.data_bits + (config.packet_size * 8);
    s.s_stats.delta_bits <- s.s_stats.delta_bits + (field_bytes * 8);
    Mcc_obs.Lineage.set_origin pkt.Packet.lineage ~session:config.id
      ~level:group
      ~time:(Sim.now (Topology.sim s.s_topo));
    Node.originate s.s_node pkt
  end

(* One tick per slot: decide the slot's upgrade authorizations, draw the
   DELTA key material guarding slot+2, distribute the tuples through
   SIGMA, and schedule every data packet of the slot.  Each packet's
   fields are computed at its own emission instant from state captured
   here, so slot boundaries involve no shared mutable state. *)
let sender_slot_tick_body s () =
  let config = s.s_config in
  let sim = Topology.sim s.s_topo in
  let tick_now = Sim.now sim in
  let n = config.layering.Layering.groups in
  let slot = s.s_slot in
  s.s_slot <- slot + 1;
  let mask = upgrade_mask config slot in
  s.s_stats.slots <- s.s_stats.slots + 1;
  for g = 2 to n do
    if mask_bit mask g then
      s.s_stats.authorizations.(g - 1) <- s.s_stats.authorizations.(g - 1) + 1
  done;
  let delta_state =
    match config.mode with
    | Plain -> None
    | Robust ->
        let upgrades = Array.init n (fun i -> i >= 1 && mask_bit mask (i + 1)) in
        let st =
          Layered.sender_create ~prng:s.s_prng ~width:config.width ~groups:n
            ~upgrades
        in
        let keys = Layered.sender_keys st in
        let guarded = slot + 2 in
        s.s_keys <- (guarded, keys) :: List.filteri (fun i _ -> i < 3) s.s_keys;
        let tuples =
          List.init n (fun i ->
              let g = i + 1 in
              Tuple.make ~group:(group_addr config g) ~slot:guarded
                ~keys:(Layered.valid_keys keys ~group:g) ~minimal:(g = 1))
        in
        let stats =
          Special.distribute ~scheme:config.fec_scheme s.s_topo
            ~sender:s.s_node ~session:config.id
            ~via_group:(group_addr config 1) ~width:config.width ~slot:guarded
            ~slot_duration:config.slot_duration ~tuples ()
        in
        s.s_stats.sigma_payload_bits <-
          s.s_stats.sigma_payload_bits + stats.Special.payload_bits;
        s.s_stats.sigma_header_bits <-
          s.s_stats.sigma_header_bits + stats.Special.header_bits;
        s.s_stats.sigma_packets <-
          s.s_stats.sigma_packets + stats.Special.packets;
        s.s_stats.fec_expansion <- stats.Special.expansion;
        Some st
  in
  for g = 1 to n do
    let rate = Layering.layer_rate config.layering ~group:g in
    s.s_credits.(g - 1) <-
      s.s_credits.(g - 1)
      +. (rate *. config.slot_duration /. float_of_int (config.packet_size * 8));
    let count = max 1 (int_of_float s.s_credits.(g - 1)) in
    s.s_credits.(g - 1) <- s.s_credits.(g - 1) -. float_of_int count;
    let spacing = config.slot_duration /. float_of_int count in
    (* De-phase groups so slot starts are not synchronized bursts. *)
    let phase = float_of_int g /. float_of_int (n + 1) *. spacing in
    for i = 0 to count - 1 do
      let seq = i in
      let last = i = count - 1 in
      let delta () =
        match delta_state with
        | Some st ->
            Some
              (Field.make
                 ~component:(Layered.next_component st ~group:g ~last)
                 ~decrease:(Layered.decrease_field st ~group:g))
        | None -> None
      in
      Sim.post sim
           ~at:(tick_now +. phase +. (float_of_int i *. spacing))
           (fun () ->
             emit_packet s ~group:g ~slot ~seq ~last ~mask ~delta:(delta ()) ())
    done
  done

let sender_slot_tick s () =
  let prof = Mcc_obs.Prof.span "flid" in
  sender_slot_tick_body s ();
  Mcc_obs.Prof.finish prof

let sender_start ?(at = 0.) topo ~node ~prng config =
  let n = config.layering.Layering.groups in
  let sim = Topology.sim topo in
  for g = 1 to n do
    Topology.register_group topo ~group:(group_addr config g) ~source:node
  done;
  let s =
    {
      s_config = config;
      s_topo = topo;
      s_node = node;
      s_prng = prng;
      s_slot = 0;
      s_credits = Array.make n 0.;
      s_keys = [];
      s_stats =
        {
          slots = 0;
          data_bits = 0;
          delta_bits = 0;
          sigma_payload_bits = 0;
          sigma_header_bits = 0;
          sigma_packets = 0;
          authorizations = Array.make n 0;
          fec_expansion = 1.;
        };
      s_tick = None;
      s_stopped = false;
    }
  in
  s.s_tick <-
    Some (Sim.every sim ~start:at ~period:config.slot_duration (sender_slot_tick s));
  s

(* ----------------------------------------------------------------- *)
(* Receiver                                                          *)
(* ----------------------------------------------------------------- *)

(* An adversary is a pair of closures: whether the receiver misbehaves
   at a given instant, and — in Robust mode — what it actually submits
   to its edge router in place of the honest subscription.  Everything a
   strategy can use (entitled keys, the session's group addresses, a
   fresh-key draw from the receiver's own PRNG, past honest submissions)
   travels in the context, so strategies stay pure data from the
   receiver's point of view. *)

type submission = { sub_slot : int; sub_pairs : (int * Key.t) list }

type adv_ctx = {
  actx_time : float;
  actx_slot : int;  (* the guarded slot being subscribed (s + 2) *)
  actx_entitled : (int * Key.t) list;  (* (group addr, key): honestly earned *)
  actx_groups : int list;  (* every group address of the session *)
  actx_fresh_key : unit -> Key.t;
  actx_history : submission list;  (* past honest submissions, newest first *)
}

type adversary = {
  adv_label : string;
  adv_active : time:float -> bool;
  adv_submit : adv_ctx -> submission list;
}

type behavior = Well_behaved | Inflate_after of float | Adversarial of adversary

type group_slot_rec = {
  mutable count : int;
  mutable last_seq : int option;
  mutable saw_last : bool;
  mutable marked : int;
      (** ECN-marked arrivals: trusted edge routers scrub their DELTA
          components, so the receiver counts them as congestion rather
          than attempting a key it cannot reconstruct *)
}

type slot_rec = {
  per_group : group_slot_rec array;
  delta_recv : Layered.receiver option;
  mutable mask : int;
}

type receiver = {
  r_config : config;
  r_topo : Topology.t;
  r_host : Node.t;
  r_behavior : behavior;
  r_prng : Prng.t;
  r_meter : Meter.t;
  r_series : Series.t;
  mutable r_level : int;
  r_active_since : int array;  (* first slot each group is evaluated for *)
  r_slots : (int, slot_rec) Hashtbl.t;
  mutable r_base : float;
  mutable r_synced : bool;
  mutable r_next_eval : int;
  r_highest : int array;  (* per group: highest slot seen (self-clocking) *)
  mutable r_congestions : int;
  r_client : Client.t option;
  mutable r_misbehaving : bool;
  mutable r_joined_all : bool;
  mutable r_stopped : bool;
  mutable r_history : submission list;
      (** honest (slot, pairs) submissions, newest first, bounded: what
          a colluder copies and what a stale-replay adversary mines *)
  mutable r_collude_source : receiver option;
      (** when set, this receiver replays that receiver's submissions
          instead of reconstructing keys itself (paper Section 4.2) *)
}

let receiver_meter r = r.r_meter
let receiver_level r = r.r_level
let level_series r = r.r_series
let congestion_events r = r.r_congestions
let receiver_stop r = r.r_stopped <- true

let receiver_leave r =
  if not r.r_stopped then begin
    let config = r.r_config in
    let groups =
      List.init (max 0 r.r_level) (fun i -> group_addr config (i + 1))
    in
    (match (config.mode, r.r_client) with
    | Robust, Some client when groups <> [] ->
        Client.unsubscribe client ~groups
    | (Robust | Plain), _ ->
        List.iter
          (fun group -> Multicast.host_leave r.r_topo ~host:r.r_host ~group)
          groups);
    r.r_stopped <- true
  end

let slot_rec r slot =
  match Hashtbl.find_opt r.r_slots slot with
  | Some rec_ -> rec_
  | None ->
      let n = r.r_config.layering.Layering.groups in
      let rec_ =
        {
          per_group =
            Array.init n (fun _ ->
                { count = 0; last_seq = None; saw_last = false; marked = 0 });
          delta_recv =
            (match r.r_config.mode with
            | Robust -> Some (Layered.receiver_create ~groups:n)
            | Plain -> None);
          mask = 0;
        }
      in
      Hashtbl.replace r.r_slots slot rec_;
      rec_

let record_level r =
  let time = Sim.now (Topology.sim r.r_topo) in
  Series.add r.r_series ~time ~value:(float_of_int r.r_level);
  Metrics.tick "flid.level_changes";
  if Tracer.enabled () then
    Tracer.emit ~sim_time:time ~component:"flid.receiver" ~event:"level"
      (fun () ->
        [
          ("host", Json.Int r.r_host.Node.id);
          ("level", Json.Int r.r_level);
        ])

(* Largest level e <= r_level such that every group 1..e has been
   subscribed since before slot [slot]: partial slots of freshly joined
   groups must not count as losses. *)
let effective_level r slot =
  let rec climb e =
    if e >= r.r_level then r.r_level
    else if r.r_active_since.(e) <= slot then climb (e + 1)
    else e
  in
  if r.r_active_since.(0) <= slot then climb 1 else 0

let group_lost rec_ g =
  let gs = rec_.per_group.(g - 1) in
  if gs.count = 0 then true
  else if gs.marked > 0 then true
  else if not gs.saw_last then true
  else match gs.last_seq with Some l -> gs.count < l + 1 | None -> true

let random_key r = Key.nonce r.r_prng ~width:r.r_config.width

(* Inflation guesses: claim every group of the session, drawing a random
   key for each one the receiver is not eligible for.  This is the single
   implementation of the paper's Figure 1 misbehaviour; both the legacy
   [Inflate_after] behaviour and the attack subsystem's strategies build
   on it. *)
let inflation_guesses ctx =
  let covered = List.map fst ctx.actx_entitled in
  List.filter_map
    (fun addr ->
      if List.mem addr covered then None else Some (addr, ctx.actx_fresh_key ()))
    ctx.actx_groups

let inflation_adversary ~at =
  {
    adv_label = "inflate";
    adv_active = (fun ~time -> time >= at);
    adv_submit =
      (fun ctx ->
        [
          {
            sub_slot = ctx.actx_slot;
            sub_pairs = ctx.actx_entitled @ inflation_guesses ctx;
          };
        ]);
  }

let subscribe_robust r ~slot ~entitled_pairs =
  match r.r_client with
  | None -> ()
  | Some client ->
      let config = r.r_config in
      let entitled =
        List.map (fun (g, k) -> (group_addr config g, k)) entitled_pairs
      in
      r.r_history <-
        { sub_slot = slot; sub_pairs = entitled }
        :: List.filteri (fun i _ -> i < 15) r.r_history;
      let submissions =
        match r.r_behavior with
        | Adversarial a when r.r_misbehaving ->
            let ctx =
              {
                actx_time = Sim.now (Topology.sim r.r_topo);
                actx_slot = slot;
                actx_entitled = entitled;
                actx_groups =
                  List.init config.layering.Layering.groups (fun i ->
                      group_addr config (i + 1));
                actx_fresh_key = (fun () -> random_key r);
                actx_history = r.r_history;
              }
            in
            a.adv_submit ctx
        | Adversarial _ | Well_behaved | Inflate_after _ ->
            [ { sub_slot = slot; sub_pairs = entitled } ]
      in
      List.iter
        (fun { sub_slot; sub_pairs } ->
          if sub_pairs <> [] then
            Client.subscribe client ~slot:sub_slot ~pairs:sub_pairs)
        submissions

let plain_inflate r =
  if not r.r_joined_all then begin
    r.r_joined_all <- true;
    let config = r.r_config in
    let n = config.layering.Layering.groups in
    for g = 1 to n do
      Multicast.host_join r.r_topo ~host:r.r_host ~group:(group_addr config g)
    done;
    r.r_level <- n;
    record_level r
  end

let eval_plain r slot rec_ effective congested =
  let config = r.r_config in
  let n = config.layering.Layering.groups in
  if congested then begin
    let new_level = max 1 (r.r_level - 1) in
    if new_level < r.r_level then begin
      for g = new_level + 1 to r.r_level do
        Multicast.host_leave r.r_topo ~host:r.r_host
          ~group:(group_addr config g);
        r.r_active_since.(g - 1) <- max_int
      done;
      (* A pulse adversary that went quiet resumes honest behaviour:
         once a group is shed it must be able to re-inflate later. *)
      r.r_joined_all <- false;
      r.r_level <- new_level;
      record_level r
    end
  end
  else if effective = r.r_level && r.r_level < n
          && mask_bit rec_.mask (r.r_level + 1) then begin
    let g = r.r_level + 1 in
    Multicast.host_join r.r_topo ~host:r.r_host ~group:(group_addr config g);
    r.r_active_since.(g - 1) <- slot + 2;
    r.r_level <- g;
    record_level r
  end

let eval_robust r slot rec_ effective congested lost =
  let config = r.r_config in
  match rec_.delta_recv with
  | None -> ()
  | Some delta ->
      let upgrade_to j =
        effective = r.r_level
        && j <= config.layering.Layering.groups
        && mask_bit rec_.mask j
      in
      let outcome =
        Layered.slot_end delta ~level:effective ~congested ~lost ~upgrade_to
      in
      subscribe_robust r ~slot:(slot + 2) ~entitled_pairs:outcome.Layered.keys;
      let new_level =
        if effective = r.r_level then outcome.Layered.next_level
        else if congested then outcome.Layered.next_level
        else r.r_level
      in
      if new_level < r.r_level then begin
        if (not r.r_misbehaving) && new_level < r.r_level then begin
          match r.r_client with
          | Some client ->
              let dropped =
                List.init (r.r_level - max 0 new_level) (fun i ->
                    group_addr config (max 0 new_level + i + 1))
              in
              Client.unsubscribe client ~groups:dropped
          | None -> ()
        end;
        for g = max 1 new_level + 1 to r.r_level do
          r.r_active_since.(g - 1) <- max_int
        done
      end;
      if new_level > r.r_level then
        r.r_active_since.(new_level - 1) <- slot + 2;
      if new_level = 0 then begin
        (* Even the minimal group's key chain broke: re-admit through
           SIGMA's session-join once the current grant lapses. *)
        (match r.r_client with
        | Some client -> Client.session_join client ~group:(group_addr config 1)
        | None -> ());
        r.r_active_since.(0) <- slot + 3;
        if r.r_level <> 1 then begin
          r.r_level <- 1;
          record_level r
        end
      end
      else if new_level <> r.r_level then begin
        r.r_level <- new_level;
        record_level r
      end;
      (* A silent minimal group while nominally subscribed means the
         grant lapsed (e.g. during an outage): keep knocking. *)
      if rec_.per_group.(0).count = 0 && r.r_level = 1 then
        match r.r_client with
        | Some client -> Client.session_join client ~group:(group_addr config 1)
        | None -> ()

let set_colluder r ~source = r.r_collude_source <- Some source
let receiver_history r = r.r_history

(* A colluding receiver does not reconstruct anything: it replays, slot
   for slot, whatever its accomplice last submitted. *)
let collude r source =
  match (r.r_client, source.r_history) with
  | Some client, { sub_slot = slot; sub_pairs = pairs } :: _ when pairs <> [] ->
      Client.subscribe client ~slot ~pairs
  | _, _ -> ()

let eval_slot r slot =
  let rec_ = slot_rec r slot in
  Metrics.tick "flid.slots";
  let level_before = r.r_level in
  (match r.r_behavior with
  | Adversarial a ->
      r.r_misbehaving <- a.adv_active ~time:(Sim.now (Topology.sim r.r_topo))
  | Inflate_after t when Sim.now (Topology.sim r.r_topo) >= t ->
      (* Normalised to [Adversarial] at receiver_start; kept for receivers
         constructed with the record directly in tests. *)
      r.r_misbehaving <- true
  | Inflate_after _ | Well_behaved -> ());
  let effective = effective_level r slot in
  let lost g = g <= effective && group_lost rec_ g in
  let congested =
    effective >= 1 && List.exists lost (List.init effective (fun i -> i + 1))
  in
  if congested then begin
    r.r_congestions <- r.r_congestions + 1;
    Metrics.tick "flid.inferred_losses"
  end;
  (match r.r_config.mode with
  | Plain ->
      if r.r_misbehaving then plain_inflate r
      else if effective >= 1 then eval_plain r slot rec_ effective congested
  | Robust -> (
      if effective >= 1 then eval_robust r slot rec_ effective congested lost;
      match r.r_collude_source with
      | Some source -> collude r source
      | None -> ()));
  let delta = r.r_level - level_before in
  if delta > 0 then Metrics.tick "flid.joins" ~by:delta
  else if delta < 0 then Metrics.tick "flid.leaves" ~by:(-delta);
  (* Drop bookkeeping for this and any older slot. *)
  let stale =
    Hashtbl.fold (fun s _ acc -> if s <= slot then s :: acc else acc) r.r_slots []
  in
  List.iter (Hashtbl.remove r.r_slots) stale

(* A group's slot is closed once its flagged last packet arrived or a
   packet of a later slot did: the path is FIFO, so nothing of the slot
   can still be in flight.  A slot is ready for evaluation when every
   group of the effective subscription closed it. *)
let slot_closed r slot =
  let effective = effective_level r slot in
  effective >= 1
  &&
  let rec check g =
    if g > effective then true
    else
      let closed =
        r.r_highest.(g - 1) > slot
        ||
        match Hashtbl.find_opt r.r_slots slot with
        | Some rec_ -> rec_.per_group.(g - 1).saw_last
        | None -> false
      in
      closed && check (g + 1)
  in
  check 1

let rec try_eval r =
  if (not r.r_stopped) && slot_closed r r.r_next_eval then begin
    let slot = r.r_next_eval in
    eval_slot r slot;
    r.r_next_eval <- slot + 1;
    try_eval r
  end

(* Wall-clock fallback: when a subscribed group goes completely silent
   nothing closes the slot, so evaluate [processing_margin] of a slot
   after the boundary regardless (late packets then count as lost, as in
   FLID-DL). *)
let rec schedule_eval r =
  if not r.r_stopped then begin
    let sim = Topology.sim r.r_topo in
    let config = r.r_config in
    let slot = r.r_next_eval in
    let at =
      r.r_base
      +. (float_of_int (slot + 1) *. config.slot_duration)
      +. (config.processing_margin *. config.slot_duration)
    in
    let at = Float.max at (Sim.now sim) in
    Sim.post sim ~at (fun () ->
           if not r.r_stopped then begin
             if r.r_next_eval = slot then begin
               eval_slot r slot;
               r.r_next_eval <- slot + 1;
               try_eval r
             end;
             schedule_eval r
           end)
  end

let on_data r pkt =
  match pkt.Packet.payload with
  | Data { session; group; slot; seq; last; upgrade_mask; delta }
    when session = r.r_config.id ->
      let now = Sim.now (Topology.sim r.r_topo) in
      Meter.record r.r_meter ~time:now ~bytes:pkt.Packet.size;
      let candidate_base =
        now -. (float_of_int slot *. r.r_config.slot_duration)
      in
      if not r.r_synced then begin
        r.r_synced <- true;
        r.r_base <- candidate_base;
        r.r_next_eval <- slot + 1;
        if r.r_active_since.(0) = max_int then
          r.r_active_since.(0) <- slot + 1;
        schedule_eval r
      end
      else r.r_base <- Float.min r.r_base candidate_base;
      r.r_highest.(group - 1) <- max r.r_highest.(group - 1) slot;
      if slot >= r.r_next_eval then begin
        let rec_ = slot_rec r slot in
        let gs = rec_.per_group.(group - 1) in
        gs.count <- gs.count + 1;
        if pkt.Packet.ecn then gs.marked <- gs.marked + 1;
        if last then begin
          gs.saw_last <- true;
          gs.last_seq <- Some seq
        end;
        rec_.mask <- rec_.mask lor upgrade_mask;
        (match (rec_.delta_recv, delta) with
        | Some dr, Some f ->
            Layered.on_packet dr ~group ~component:f.Field.component
              ~decrease:f.Field.decrease
        | _, _ -> ())
      end;
      try_eval r
  | _ -> ()

let receiver_start ?(at = 0.) ?(behavior = Well_behaved) topo ~host ~prng
    config =
  (* The legacy constructor is sugar for the canonical inflation
     adversary, so the Figure 1 misbehaviour has a single
     implementation. *)
  let behavior =
    match behavior with
    | Inflate_after at -> Adversarial (inflation_adversary ~at)
    | (Well_behaved | Adversarial _) as b -> b
  in
  let n = config.layering.Layering.groups in
  let r =
    {
      r_config = config;
      r_topo = topo;
      r_host = host;
      r_behavior = behavior;
      r_prng = prng;
      r_meter = Meter.create ();
      r_series = Series.create ();
      r_level = 1;
      r_active_since = Array.make n max_int;
      r_slots = Hashtbl.create 8;
      r_base = infinity;
      r_synced = false;
      r_next_eval = 0;
      r_highest = Array.make n (-1);
      r_congestions = 0;
      r_client =
        (match config.mode with
        | Robust -> Some (Client.create ~width:config.width topo ~host)
        | Plain -> None);
      r_misbehaving = false;
      r_joined_all = false;
      r_stopped = false;
      r_history = [];
      r_collude_source = None;
    }
  in
  (* Per-receiver trajectories (no-op unless sampling is on): goodput in
     kbit/s and the current subscription level — the curves of the
     paper's attack/recovery figures. *)
  if Timeseries.enabled () then begin
    let name suffix =
      Printf.sprintf "flid.s%d.h%d.%s" config.id host.Node.id suffix
    in
    Timeseries.sample_rate ~scale:0.008 (name "goodput_kbps") (fun () ->
        float_of_int (Meter.total_bytes r.r_meter));
    Timeseries.sample_gauge (name "level") (fun () -> float_of_int r.r_level)
  end;
  for g = 1 to n do
    Node.subscribe_local host ~group:(group_addr config g) (on_data r)
  done;
  Sim.post (Topology.sim topo) ~at (fun () ->
         match (config.mode, r.r_client) with
         | Plain, _ ->
             Multicast.host_join topo ~host ~group:(group_addr config 1)
         | Robust, Some client ->
             Client.session_join client ~group:(group_addr config 1)
         | Robust, None -> ());
  r
