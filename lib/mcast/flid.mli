(** FLID-DL and FLID-DS: cumulative layered multicast congestion
    control, without and with the paper's DELTA + SIGMA protection.

    A session has N groups carrying layers at multiplicatively growing
    cumulative rates.  Time is divided into sender-driven slots; every
    data packet names its (group, slot, sequence) coordinates, flags the
    group's last packet of the slot, and carries the slot's upgrade
    authorization mask.  A receiver that loses any packet of its
    subscription during a slot is congested and drops its top layer; an
    uncongested receiver may add a layer when the mask authorizes an
    upgrade to the next level (paper Section 3.1.1 subscription rules).

    In [Robust] mode ([FLID-DS]) every packet additionally carries DELTA
    component and decrease fields for the keys of slot s+2, the sender
    distributes address-key tuples to edge routers through SIGMA special
    packets, and receivers must present reconstructed keys to their edge
    router each slot.  In [Plain] mode ([FLID-DL]) group membership is
    plain IGMP-style join/leave, which is what the inflated-subscription
    attack exploits. *)

type mode = Plain | Robust

type config = {
  id : int;  (** session id *)
  base_group : int;  (** address of group 1; group g is base + g - 1 *)
  layering : Layering.t;
  slot_duration : float;
  packet_size : int;  (** data bytes per packet (the paper's 576) *)
  width : int;  (** DELTA key width in bits *)
  mode : mode;
  upgrade_period : int -> int;
      (** slots between upgrade authorizations to level g *)
  processing_margin : float;
      (** Evaluation is normally self-clocked: a slot is processed as
          soon as every subscribed group delivered its flagged last
          packet or a packet of a later slot (the FIFO path guarantees
          nothing is still in flight).  This margin — a fraction of a
          slot — is the wall-clock fallback for groups that went
          completely silent; packets arriving after it count as lost,
          as in FLID-DL. *)
  fec_scheme : Mcc_sigma.Fec.scheme;
}

val make_config :
  ?packet_size:int ->
  ?width:int ->
  ?upgrade_period:(int -> int) ->
  ?processing_margin:float ->
  ?fec_scheme:Mcc_sigma.Fec.scheme ->
  id:int ->
  base_group:int ->
  layering:Layering.t ->
  slot_duration:float ->
  mode:mode ->
  unit ->
  config
(** The default upgrade period to level g is
    [max 2 (ceil (R_g / R_1))] slots: probing slows multiplicatively at
    higher levels.  Default fallback margin 0.9 — larger than the worst
    drop-tail queueing delay (two RTTs with the paper's buffers), so a
    merely-delayed slot is never misread as silence.  FEC
    [Repetition 2]. *)

val group_addr : config -> int -> int
(** Address of group [g] (1-based). *)

val default_upgrade_period : Layering.t -> int -> int
(** [max 2 (ceil (R_g / R_1))] slots between authorizations to level g;
    shared with the other multi-group protocols in this library. *)

type Mcc_net.Payload.t +=
  | Data of {
      session : int;
      group : int;  (** 1-based group index *)
      slot : int;
      seq : int;  (** per-group sequence within the slot, from 0 *)
      last : bool;  (** group's final packet of the slot *)
      upgrade_mask : int;  (** bit g-1 set: upgrade to level g authorized *)
      delta : Mcc_delta.Field.t option;  (** present in [Robust] mode *)
    }

(** {1 Sender} *)

type sender_stats = {
  mutable slots : int;
  mutable data_bits : int;
  mutable delta_bits : int;
  mutable sigma_payload_bits : int;
  mutable sigma_header_bits : int;
  mutable sigma_packets : int;
  mutable authorizations : int array;
      (** [authorizations.(g-1)]: slots that authorized an upgrade to g *)
  mutable fec_expansion : float;  (** z of the last slot's encoding *)
}

type sender

val sender_start :
  ?at:float ->
  Mcc_net.Topology.t ->
  node:Mcc_net.Node.t ->
  prng:Mcc_util.Prng.t ->
  config ->
  sender
(** Registers the session's groups with the topology and begins slot
    ticking and per-group emission at [at] (default 0). *)

val sender_stats : sender -> sender_stats
val sender_stop : sender -> unit

val sender_keys_for_slot :
  sender -> slot:int -> Mcc_delta.Layered.keys option
(** Keys guarding [slot] (Robust mode; the two most recent slots are
    retained).  Exposed for tests. *)

(** {1 Receivers} *)

type submission = {
  sub_slot : int;  (** the guarded slot the pairs were submitted for *)
  sub_pairs : (int * Mcc_delta.Key.t) list;  (** (group address, key) *)
}

type adv_ctx = {
  actx_time : float;  (** simulated now *)
  actx_slot : int;  (** the guarded slot being subscribed (s + 2) *)
  actx_entitled : (int * Mcc_delta.Key.t) list;
      (** (group address, key) pairs the receiver honestly reconstructed
          for this slot *)
  actx_groups : int list;  (** every group address of the session *)
  actx_fresh_key : unit -> Mcc_delta.Key.t;
      (** a random w-bit key drawn from the receiver's own PRNG *)
  actx_history : submission list;
      (** the receiver's past honest submissions, newest first (bounded
          to 16): raw material for stale replay *)
}
(** What a receiver-side adversary sees each time the honest protocol
    would submit keys to the edge router. *)

type adversary = {
  adv_label : string;
  adv_active : time:float -> bool;
      (** whether the receiver misbehaves at [time]; re-evaluated every
          slot, so on–off (pulse) strategies simply gate on the clock.
          While inactive the receiver is indistinguishable from an
          honest one. *)
  adv_submit : adv_ctx -> submission list;
      (** the submissions actually sent while active, in place of the
          honest one (Robust mode; a [Plain] misbehaving receiver just
          IGMP-joins every group) *)
}
(** A pluggable receiver-side adversary.  [Mcc_attack.Strategy] builds
    these; {!inflation_adversary} is the canonical example. *)

type behavior =
  | Well_behaved
  | Inflate_after of float
      (** misbehave from the given time on: a [Plain] receiver joins
          every group; a [Robust] receiver submits its eligible keys
          plus random guesses for all higher groups.  Sugar: normalised
          to [Adversarial (inflation_adversary ~at)] at
          {!receiver_start}. *)
  | Adversarial of adversary

val inflation_adversary : at:float -> adversary
(** The paper's Figure 1 misbehaviour: from [at] on, claim every group
    of the session, guessing a random key for each group the receiver
    is not eligible for.  The single implementation behind
    [Inflate_after] and the attack subsystem's persistent-inflation
    strategy. *)

val inflation_guesses : adv_ctx -> (int * Mcc_delta.Key.t) list
(** The guessed (group address, key) pairs [inflation_adversary]
    appends: one fresh random key per group not covered by
    [actx_entitled], in group order.  Building block for budgeted
    key-guessing strategies. *)

type receiver

val receiver_start :
  ?at:float ->
  ?behavior:behavior ->
  Mcc_net.Topology.t ->
  host:Mcc_net.Node.t ->
  prng:Mcc_util.Prng.t ->
  config ->
  receiver

val receiver_meter : receiver -> Mcc_util.Meter.t
(** Bytes of session data reaching the receiver's host. *)

val receiver_level : receiver -> int
(** Current subscription level (what the receiver believes). *)

val level_series : receiver -> Mcc_util.Series.t
(** (time, level) samples recorded at every level change. *)

val congestion_events : receiver -> int

val receiver_stop : receiver -> unit
(** Freezes the receiver (no further evaluation or subscriptions);
    group membership decays via key expiry.  For an orderly departure
    use {!receiver_leave}. *)

val receiver_leave : receiver -> unit
(** The paper's explicit unsubscription (Section 3.2.2, Figure 6c): the
    receiver leaves all its groups at once — an unsubscription message
    under SIGMA, IGMP leaves otherwise — and stops. *)

val receiver_history : receiver -> submission list
(** The receiver's recent honest (slot, key) submissions, newest first,
    bounded — what an accomplice leaks to colluders (Section 4.2) and a
    stale-replay adversary mines. *)

val set_colluder : receiver -> source:receiver -> unit
(** Turns the receiver into a colluder (paper Section 4.2): every slot
    it replays the (slot, key) submissions its accomplice [source] —
    typically a receiver behind a cleaner path — last made, instead of
    reconstructing keys from its own reception.  Defeated by the SIGMA
    agent's [interface_keys] option, which makes keys interface-specific. *)
