(** TCP-friendly rate computation (the TFRC / WEBRC ingredient).

    WEBRC-style receivers do not react to individual losses: they
    estimate a smoothed loss event rate and a multicast round-trip time
    and set their subscription to the level whose cumulative rate the
    TCP throughput equation sustains (paper Section 2.2: protocols that
    "monitor a long-term history of losses to determine the fair
    subscription level").  This module is the pure arithmetic; the
    protocol wiring lives in {!Rlm_like}. *)

val throughput :
  packet_bytes:int -> rtt:float -> loss_rate:float -> float
(** The Padhye/TFRC response function in bits per second:

    {v s / (R sqrt(2p/3) + t_RTO (3 sqrt(3p/8)) p (1 + 32 p^2)) v}

    with [t_RTO = 4 R].  Returns [infinity] when [loss_rate = 0].
    @raise Invalid_argument on non-positive [packet_bytes] or [rtt], or
    a [loss_rate] outside [0, 1]. *)

(** Exponentially weighted estimator of the per-slot loss rate. *)
module Loss_estimator : sig
  type t

  val create : ?alpha:float -> unit -> t
  (** [alpha] is the weight of a new sample (default 0.1: roughly a
      ten-slot memory). *)

  val update : t -> loss_rate:float -> unit
  val value : t -> float
  (** 0 before the first sample. *)

  val samples : t -> int
end
