module Sim = Mcc_engine.Sim
module Node = Mcc_net.Node
module Packet = Mcc_net.Packet
module Topology = Mcc_net.Topology
module Multicast = Mcc_net.Multicast
module Meter = Mcc_util.Meter
module Series = Mcc_util.Series
module Prng = Mcc_util.Prng
module Key = Mcc_delta.Key
module Layered = Mcc_delta.Layered
module Field = Mcc_delta.Field
module Client = Mcc_sigma.Client
module Metrics = Mcc_obs.Metrics
module Tracer = Mcc_obs.Tracer
module Timeseries = Mcc_obs.Timeseries
module Json = Mcc_obs.Json

type config = {
  flid : Flid.config;
  alpha : float;
  target : float;
  md : float;
  ai_bps : float;
  max_exp : int;
}

let make_config ?(packet_size = 576) ?(width = Key.default_width)
    ?upgrade_period ?(processing_margin = 0.9) ?(alpha = 0.5) ?(target = 0.3)
    ?(md = 0.5) ?(ai_bps = 10_000.) ?(max_exp = 6) ~id ~base_group ~layering
    ~slot_duration ~mode () =
  if not (alpha > 0. && alpha <= 1.) then invalid_arg "Oversub.make_config: alpha";
  if not (target > 0. && target < 1.) then
    invalid_arg "Oversub.make_config: target";
  if not (md > 0. && md <= 1.) then invalid_arg "Oversub.make_config: md";
  if ai_bps <= 0. then invalid_arg "Oversub.make_config: ai_bps";
  if max_exp < 0 then invalid_arg "Oversub.make_config: max_exp";
  let flid =
    Flid.make_config ~packet_size ~width ?upgrade_period ~processing_margin ~id
      ~base_group ~layering ~slot_duration ~mode ()
  in
  { flid; alpha; target; md; ai_bps; max_exp }

let group_addr config g = Flid.group_addr config.flid g

(* The sender side is protocol-independent: slot-clocked layered groups
   with precomputed DELTA keys and SIGMA tuple distribution, identical
   to FLID-DS.  Oversub is a receiver-side control law over that wire
   format, so the sender is FLID's. *)

type sender = Flid.sender

let sender_start ?at topo ~node ~prng config =
  Flid.sender_start ?at topo ~node ~prng config.flid

let sender_stats = Flid.sender_stats
let sender_stop = Flid.sender_stop

(* ----------------------------------------------------------------- *)
(* Receiver                                                          *)
(* ----------------------------------------------------------------- *)

let mask_bit mask g = mask land (1 lsl (g - 1)) <> 0

type group_slot_rec = {
  mutable count : int;
  mutable last_seq : int option;
  mutable saw_last : bool;
  mutable marked : int;  (** ECN-marked arrivals *)
}

type slot_rec = {
  per_group : group_slot_rec array;
  delta_recv : Layered.receiver option;
  mutable mask : int;
}

type receiver = {
  r_config : config;
  r_topo : Topology.t;
  r_host : Node.t;
  r_meter : Meter.t;
  r_series : Series.t;
  mutable r_level : int;
  mutable r_rate : float;  (** the CC rate variable, bps *)
  mutable r_ewma : float;  (** EWMA of the per-slot mark fraction *)
  mutable r_exp : int;  (** consecutive uncongested slots (probe exponent) *)
  r_active_since : int array;
  r_slots : (int, slot_rec) Hashtbl.t;
  mutable r_base : float;
  mutable r_synced : bool;
  mutable r_next_eval : int;
  r_highest : int array;
  mutable r_congestions : int;
  mutable r_decreases : int;
  r_client : Client.t option;
  mutable r_stopped : bool;
}

let receiver_meter r = r.r_meter
let receiver_level r = r.r_level
let level_series r = r.r_series
let congestion_events r = r.r_congestions
let decrease_events r = r.r_decreases
let mark_ewma r = r.r_ewma
let receiver_stop r = r.r_stopped <- true

let receiver_leave r =
  if not r.r_stopped then begin
    let config = r.r_config in
    let groups =
      List.init (max 0 r.r_level) (fun i -> group_addr config (i + 1))
    in
    (match (config.flid.Flid.mode, r.r_client) with
    | Flid.Robust, Some client when groups <> [] ->
        Client.unsubscribe client ~groups
    | (Flid.Robust | Flid.Plain), _ ->
        List.iter
          (fun group -> Multicast.host_leave r.r_topo ~host:r.r_host ~group)
          groups);
    r.r_stopped <- true
  end

let slot_rec r slot =
  match Hashtbl.find_opt r.r_slots slot with
  | Some rec_ -> rec_
  | None ->
      let n = r.r_config.flid.Flid.layering.Layering.groups in
      let rec_ =
        {
          per_group =
            Array.init n (fun _ ->
                { count = 0; last_seq = None; saw_last = false; marked = 0 });
          delta_recv =
            (match r.r_config.flid.Flid.mode with
            | Flid.Robust -> Some (Layered.receiver_create ~groups:n)
            | Flid.Plain -> None);
          mask = 0;
        }
      in
      Hashtbl.replace r.r_slots slot rec_;
      rec_

let record_level r =
  let time = Sim.now (Topology.sim r.r_topo) in
  Series.add r.r_series ~time ~value:(float_of_int r.r_level);
  Metrics.tick "oversub.level_changes";
  if Tracer.enabled () then
    Tracer.emit ~sim_time:time ~component:"oversub.receiver" ~event:"level"
      (fun () ->
        [
          ("host", Json.Int r.r_host.Node.id);
          ("level", Json.Int r.r_level);
          ("ewma", Json.Float r.r_ewma);
        ])

let effective_level r slot =
  let rec climb e =
    if e >= r.r_level then r.r_level
    else if r.r_active_since.(e) <= slot then climb (e + 1)
    else e
  in
  if r.r_active_since.(0) <= slot then climb 1 else 0

(* Loss is missing packets only: a marked packet arrived, so it counts
   toward the mark fraction, not toward loss. *)
let group_lost rec_ g =
  let gs = rec_.per_group.(g - 1) in
  if gs.count = 0 then true
  else if not gs.saw_last then true
  else match gs.last_seq with Some l -> gs.count < l + 1 | None -> true

(* The control law (per slot): EWMA of the slot's ECN mark fraction,
   with packet loss saturating the congestion signal.  Above the target,
   multiplicative decrease of the rate variable (proportional to the
   excess) and a probe reset; below, additive increase with an
   exponentially growing quantum.  Returns the level the rate variable
   asks for, before key/authorization constraints. *)
let control_update r rec_ ~effective ~any_lost =
  let c = r.r_config in
  let layering = c.flid.Flid.layering in
  let received = ref 0 and marked = ref 0 in
  for g = 1 to effective do
    let gs = rec_.per_group.(g - 1) in
    received := !received + gs.count;
    marked := !marked + gs.marked
  done;
  let fraction =
    if any_lost || !received = 0 then 1.0
    else float_of_int !marked /. float_of_int !received
  in
  r.r_ewma <- ((1. -. c.alpha) *. r.r_ewma) +. (c.alpha *. fraction);
  let congested = r.r_ewma > c.target in
  if congested then begin
    r.r_decreases <- r.r_decreases + 1;
    Metrics.tick "oversub.decreases";
    r.r_rate <-
      Float.max layering.Layering.min_rate_bps
        (r.r_rate *. (1. -. ((r.r_ewma -. c.target) *. c.md)));
    r.r_exp <- 0
  end
  else begin
    let quantum = c.ai_bps *. (2. ** float_of_int (min r.r_exp c.max_exp)) in
    r.r_exp <- r.r_exp + 1;
    r.r_rate <- Float.min (Layering.top_rate layering) (r.r_rate +. quantum)
  end;
  (!marked, max 1 (Layering.fair_level layering ~rate_bps:r.r_rate))

(* Desired level after the per-slot constraints: decreases may span
   several levels at once, increases move one level per slot and only
   when the slot's mask authorized an upgrade to level+1. *)
let constrain_desired r rec_ ~effective ~desired =
  let c = r.r_config in
  let layering = c.flid.Flid.layering in
  let desired =
    if desired > r.r_level then
      if effective = r.r_level && mask_bit rec_.mask (r.r_level + 1) then
        r.r_level + 1
      else r.r_level
    else desired
  in
  (* Bound probe overshoot to one pending level so a long wait for an
     upgrade authorization cannot bank a multi-level jump. *)
  let cap =
    Layering.cumulative_rate layering
      ~level:(min layering.Layering.groups (desired + 1))
  in
  r.r_rate <- Float.min r.r_rate cap;
  desired

let eval_plain r slot rec_ ~effective ~desired =
  let config = r.r_config in
  ignore rec_;
  if desired < r.r_level then begin
    for g = desired + 1 to r.r_level do
      Multicast.host_leave r.r_topo ~host:r.r_host ~group:(group_addr config g);
      r.r_active_since.(g - 1) <- max_int
    done;
    r.r_level <- desired;
    record_level r
  end
  else if desired > r.r_level && effective = r.r_level then begin
    let g = r.r_level + 1 in
    Multicast.host_join r.r_topo ~host:r.r_host ~group:(group_addr config g);
    r.r_active_since.(g - 1) <- slot + 2;
    r.r_level <- g;
    record_level r
  end

let eval_robust r slot rec_ ~effective ~desired ~any_lost ~any_marked ~lost =
  let config = r.r_config in
  match rec_.delta_recv with
  | None -> ()
  | Some delta ->
      (* Marked components were scrubbed by a trusted ECN edge, so the
         top keys cannot be reconstructed: marks force the decrease-key
         path even when the EWMA alone would not decrease — the DELTA
         synergy this protocol exists to exercise. *)
      let key_congested = any_lost || any_marked || desired < r.r_level in
      let upgrade_to j =
        (not key_congested)
        && desired > r.r_level
        && j = r.r_level + 1
        && mask_bit rec_.mask j
      in
      let outcome =
        Layered.slot_end delta ~level:effective ~congested:key_congested ~lost
          ~upgrade_to
      in
      let new_level =
        if key_congested then min outcome.Layered.next_level desired
        else if effective = r.r_level then outcome.Layered.next_level
        else r.r_level
      in
      let keys =
        List.filter (fun (g, _) -> g <= max new_level 1) outcome.Layered.keys
      in
      let pairs = List.map (fun (g, k) -> (group_addr config g, k)) keys in
      (match r.r_client with
      | Some client when pairs <> [] ->
          Client.subscribe client ~slot:(slot + 2) ~pairs
      | Some _ | None -> ());
      if new_level < r.r_level then begin
        (match r.r_client with
        | Some client ->
            let dropped =
              List.init (r.r_level - max 0 new_level) (fun i ->
                  group_addr config (max 0 new_level + i + 1))
            in
            Client.unsubscribe client ~groups:dropped
        | None -> ());
        for g = max 1 new_level + 1 to r.r_level do
          r.r_active_since.(g - 1) <- max_int
        done;
        (* The key chain forced the rate below what the EWMA asked for:
           the rate variable follows the attainable level down. *)
        r.r_rate <-
          Float.min r.r_rate
            (Layering.cumulative_rate config.flid.Flid.layering
               ~level:(max 1 new_level))
      end;
      if new_level > r.r_level then
        r.r_active_since.(new_level - 1) <- slot + 2;
      if new_level = 0 then begin
        (match r.r_client with
        | Some client -> Client.session_join client ~group:(group_addr config 1)
        | None -> ());
        r.r_active_since.(0) <- slot + 3;
        if r.r_level <> 1 then begin
          r.r_level <- 1;
          record_level r
        end
      end
      else if new_level <> r.r_level then begin
        r.r_level <- new_level;
        record_level r
      end;
      if rec_.per_group.(0).count = 0 && r.r_level = 1 then
        match r.r_client with
        | Some client -> Client.session_join client ~group:(group_addr config 1)
        | None -> ()

let eval_slot r slot =
  let rec_ = slot_rec r slot in
  Metrics.tick "oversub.slots";
  let effective = effective_level r slot in
  (if effective >= 1 then begin
     let lost g = g <= effective && group_lost rec_ g in
     let any_lost = List.exists lost (List.init effective (fun i -> i + 1)) in
     let marked, rate_level = control_update r rec_ ~effective ~any_lost in
     if any_lost then Metrics.tick "oversub.lossy_slots";
     if any_lost || marked > 0 then begin
       r.r_congestions <- r.r_congestions + 1;
       Metrics.tick "oversub.congested_slots"
     end;
     let desired = constrain_desired r rec_ ~effective ~desired:rate_level in
     match r.r_config.flid.Flid.mode with
     | Flid.Plain -> eval_plain r slot rec_ ~effective ~desired
     | Flid.Robust ->
         eval_robust r slot rec_ ~effective ~desired ~any_lost
           ~any_marked:(marked > 0) ~lost
   end);
  let stale =
    Hashtbl.fold (fun s _ acc -> if s <= slot then s :: acc else acc) r.r_slots []
  in
  List.iter (Hashtbl.remove r.r_slots) stale

let slot_closed r slot =
  let effective = effective_level r slot in
  effective >= 1
  &&
  let rec check g =
    if g > effective then true
    else
      let closed =
        r.r_highest.(g - 1) > slot
        ||
        match Hashtbl.find_opt r.r_slots slot with
        | Some rec_ -> rec_.per_group.(g - 1).saw_last
        | None -> false
      in
      closed && check (g + 1)
  in
  check 1

let rec try_eval r =
  if (not r.r_stopped) && slot_closed r r.r_next_eval then begin
    let slot = r.r_next_eval in
    eval_slot r slot;
    r.r_next_eval <- slot + 1;
    try_eval r
  end

let rec schedule_eval r =
  if not r.r_stopped then begin
    let sim = Topology.sim r.r_topo in
    let config = r.r_config.flid in
    let slot = r.r_next_eval in
    let at =
      r.r_base
      +. (float_of_int (slot + 1) *. config.Flid.slot_duration)
      +. (config.Flid.processing_margin *. config.Flid.slot_duration)
    in
    let at = Float.max at (Sim.now sim) in
    Sim.post sim ~at (fun () ->
        if not r.r_stopped then begin
          if r.r_next_eval = slot then begin
            eval_slot r slot;
            r.r_next_eval <- slot + 1;
            try_eval r
          end;
          schedule_eval r
        end)
  end

let on_data r pkt =
  match pkt.Packet.payload with
  | Flid.Data { session; group; slot; seq; last; upgrade_mask; delta }
    when session = r.r_config.flid.Flid.id ->
      let now = Sim.now (Topology.sim r.r_topo) in
      Meter.record r.r_meter ~time:now ~bytes:pkt.Packet.size;
      let candidate_base =
        now -. (float_of_int slot *. r.r_config.flid.Flid.slot_duration)
      in
      if not r.r_synced then begin
        r.r_synced <- true;
        r.r_base <- candidate_base;
        r.r_next_eval <- slot + 1;
        if r.r_active_since.(0) = max_int then
          r.r_active_since.(0) <- slot + 1;
        schedule_eval r
      end
      else r.r_base <- Float.min r.r_base candidate_base;
      r.r_highest.(group - 1) <- max r.r_highest.(group - 1) slot;
      if slot >= r.r_next_eval then begin
        let rec_ = slot_rec r slot in
        let gs = rec_.per_group.(group - 1) in
        gs.count <- gs.count + 1;
        if pkt.Packet.ecn then gs.marked <- gs.marked + 1;
        if last then begin
          gs.saw_last <- true;
          gs.last_seq <- Some seq
        end;
        rec_.mask <- rec_.mask lor upgrade_mask;
        (match (rec_.delta_recv, delta) with
        | Some dr, Some f ->
            Layered.on_packet dr ~group ~component:f.Field.component
              ~decrease:f.Field.decrease
        | _, _ -> ())
      end;
      try_eval r
  | _ -> ()

let receiver_start ?(at = 0.) topo ~host ~prng config =
  (* An honest Oversub receiver draws no randomness; the parameter keeps
     receiver construction uniform across the protocol library. *)
  ignore (prng : Prng.t);
  let n = config.flid.Flid.layering.Layering.groups in
  let r =
    {
      r_config = config;
      r_topo = topo;
      r_host = host;
      r_meter = Meter.create ();
      r_series = Series.create ();
      r_level = 1;
      r_rate = config.flid.Flid.layering.Layering.min_rate_bps;
      r_ewma = 0.;
      r_exp = 0;
      r_active_since = Array.make n max_int;
      r_slots = Hashtbl.create 8;
      r_base = infinity;
      r_synced = false;
      r_next_eval = 0;
      r_highest = Array.make n (-1);
      r_congestions = 0;
      r_decreases = 0;
      r_client =
        (match config.flid.Flid.mode with
        | Flid.Robust ->
            Some (Client.create ~width:config.flid.Flid.width topo ~host)
        | Flid.Plain -> None);
      r_stopped = false;
    }
  in
  if Timeseries.enabled () then begin
    let name suffix =
      Printf.sprintf "oversub.s%d.h%d.%s" config.flid.Flid.id host.Node.id
        suffix
    in
    Timeseries.sample_rate ~scale:0.008 (name "goodput_kbps") (fun () ->
        float_of_int (Meter.total_bytes r.r_meter));
    Timeseries.sample_gauge (name "level") (fun () -> float_of_int r.r_level);
    Timeseries.sample_gauge (name "mark_ewma") (fun () -> r.r_ewma)
  end;
  for g = 1 to n do
    Node.subscribe_local host ~group:(group_addr config g) (on_data r)
  done;
  Sim.post (Topology.sim topo) ~at (fun () ->
      match (config.flid.Flid.mode, r.r_client) with
      | Flid.Plain, _ ->
          Multicast.host_join topo ~host ~group:(group_addr config 1)
      | Flid.Robust, Some client ->
          Client.session_join client ~group:(group_addr config 1)
      | Flid.Robust, None -> ());
  r
