module Sim = Mcc_engine.Sim
module Node = Mcc_net.Node
module Packet = Mcc_net.Packet
module Payload = Mcc_net.Payload
module Topology = Mcc_net.Topology
module Multicast = Mcc_net.Multicast
module Meter = Mcc_util.Meter
module Prng = Mcc_util.Prng
module Shamir = Mcc_util.Shamir
module Threshold = Mcc_delta.Threshold
module Mux = Mcc_transport.Mux
module Tuple = Mcc_sigma.Tuple
module Special = Mcc_sigma.Special
module Client = Mcc_sigma.Client
module Metrics = Mcc_obs.Metrics
module Tracer = Mcc_obs.Tracer
module Timeseries = Mcc_obs.Timeseries
module Json = Mcc_obs.Json

type policy = Ladder | Equation

type config = {
  id : int;
  base_group : int;
  layering : Layering.t;
  slot_duration : float;
  packet_size : int;
  mode : Flid.mode;
  base_threshold : float;
  threshold_decay : float;
  repair_fraction : float;
  policy : policy;
  upgrade_period : int -> int;
  processing_margin : float;
}

let aligned_threshold fraction = fraction /. (1. +. fraction)

let make_config ?(packet_size = 576) ?(base_threshold = 0.25)
    ?(threshold_decay = 1.3) ?(repair_fraction = 0.) ?(policy = Ladder)
    ?upgrade_period ?(processing_margin = 0.9) ~id ~base_group ~layering
    ~slot_duration ~mode () =
  if base_threshold <= 0. || base_threshold >= 1. then
    invalid_arg "Rlm_like.make_config: base_threshold";
  if threshold_decay < 1. then invalid_arg "Rlm_like.make_config: decay";
  if repair_fraction < 0. then invalid_arg "Rlm_like.make_config: repair";
  let upgrade_period =
    match upgrade_period with
    | Some f -> f
    | None -> Flid.default_upgrade_period layering
  in
  {
    id;
    base_group;
    layering;
    slot_duration;
    packet_size;
    mode;
    base_threshold;
    threshold_decay;
    repair_fraction;
    policy;
    upgrade_period;
    processing_margin;
  }

let group_addr config g = config.base_group + g - 1

let threshold config ~level =
  config.base_threshold /. (config.threshold_decay ** float_of_int (level - 1))

type Payload.t +=
  | Rlm_data of {
      session : int;
      group : int;
      slot : int;
      seq : int;
      last : bool;
      repair : bool;
      upgrade_mask : int;
      top_shares : (int * Shamir.share) list;
      inc_shares : (int * Shamir.share) list;
    }

type Payload.t +=
  | Rtt_probe of { session : int; receiver : int; sent_at : float }
  | Rtt_echo of { session : int; receiver : int; sent_at : float }

let () =
  Payload.register_pp (fun fmt -> function
    | Rtt_probe { session; receiver; _ } ->
        Format.fprintf fmt "rlm-probe s%d r%d" session receiver;
        true
    | Rtt_echo { session; receiver; _ } ->
        Format.fprintf fmt "rlm-echo s%d r%d" session receiver;
        true
    | Rlm_data { session; group; slot; seq; _ } ->
        Format.fprintf fmt "rlm s%d g%d slot%d #%d" session group slot seq;
        true
    | _ -> false)

let mask_bit mask g = mask land (1 lsl (g - 1)) <> 0

(* ----------------------------------------------------------------- *)
(* Sender                                                            *)
(* ----------------------------------------------------------------- *)

type slot_state = {
  top : Threshold.sender;
  inc : Threshold.sender option;  (* levels 1..N-1; key l guards level l+1 *)
  mask : int;
}

type sender = {
  s_config : config;
  s_topo : Topology.t;
  s_node : Node.t;
  s_prng : Prng.t;
  mutable s_slot : int;
  s_credits : float array;
  mutable s_share_bits : int;
  mutable s_data_bits : int;
  mutable s_tick : Sim.handle option;
  mutable s_stopped : bool;
}

let sender_stop s =
  s.s_stopped <- true;
  match s.s_tick with Some h -> Sim.cancel h | None -> ()

let share_overhead_bits s = s.s_share_bits
let data_bits s = s.s_data_bits

let upgrade_mask config slot =
  let n = config.layering.Layering.groups in
  let mask = ref 0 in
  for g = 2 to n do
    if (slot + g) mod config.upgrade_period g = 0 then
      mask := !mask lor (1 lsl (g - 1))
  done;
  !mask

let thresholds config n =
  Array.init n (fun i -> threshold config ~level:(i + 1))

let emit s ~group ~slot ~seq ~last ~repair ~state ~counts () =
  if not s.s_stopped then begin
    let config = s.s_config in
    let n = config.layering.Layering.groups in
    let packet_index = seq + 1 in
    let top_shares =
      Threshold.shares_for_packet state.top ~group ~packet_index
    in
    let inc_shares =
      match state.inc with
      | Some inc when group <= n - 1 ->
          (* Shares of increase keys, only for authorized targets. *)
          List.filter_map
            (fun (l, share) ->
              if mask_bit state.mask (l + 1) then Some (l + 1, share) else None)
            (Threshold.shares_for_packet inc ~group ~packet_index)
      | Some _ | None -> []
    in
    ignore counts;
    let share_bytes = 4 * (List.length top_shares + List.length inc_shares) in
    s.s_share_bits <- s.s_share_bits + (8 * share_bytes);
    s.s_data_bits <- s.s_data_bits + (8 * config.packet_size);
    Node.originate s.s_node
      (Packet.make ~src:s.s_node.Node.id
         ~dst:(Packet.Multicast (group_addr config group))
         ~size:(config.packet_size + share_bytes)
         (Rlm_data
            {
              session = config.id;
              group;
              slot;
              seq;
              last;
              repair;
              upgrade_mask = state.mask;
              top_shares;
              inc_shares;
            }))
  end

let sender_slot_tick s () =
  let config = s.s_config in
  let sim = Topology.sim s.s_topo in
  let tick_now = Sim.now sim in
  let n = config.layering.Layering.groups in
  let slot = s.s_slot in
  s.s_slot <- slot + 1;
  let mask = upgrade_mask config slot in
  (* Packet counts for the slot are decided up front, which is what lets
     Shamir polynomials be sized exactly. *)
  let originals =
    Array.init n (fun i ->
        let g = i + 1 in
        let rate = Layering.layer_rate config.layering ~group:g in
        s.s_credits.(i) <-
          s.s_credits.(i)
          +. (rate *. config.slot_duration /. float_of_int (config.packet_size * 8));
        let count = max 1 (int_of_float s.s_credits.(i)) in
        s.s_credits.(i) <- s.s_credits.(i) -. float_of_int count;
        count)
  in
  (* Reliability extension: repair packets join the slot and carry key
     shares exactly like originals (paper Section 3.1.2). *)
  let counts =
    Array.map
      (fun c ->
        c + int_of_float (ceil (config.repair_fraction *. float_of_int c)))
      originals
  in
  let state =
    match config.mode with
    | Flid.Plain ->
        { top = Threshold.sender_create ~prng:s.s_prng ~levels:1
                  ~per_group_counts:[| 1 |] ~loss_thresholds:[| 0.5 |];
          inc = None;
          mask }
        (* placeholder, unused in Plain mode *)
    | Flid.Robust ->
        let top =
          Threshold.sender_create ~prng:s.s_prng ~levels:n
            ~per_group_counts:counts ~loss_thresholds:(thresholds config n)
        in
        let inc =
          if n >= 2 then
            Some
              (Threshold.sender_create ~prng:s.s_prng ~levels:(n - 1)
                 ~per_group_counts:(Array.sub counts 0 (n - 1))
                 ~loss_thresholds:(Array.sub (thresholds config n) 0 (n - 1)))
          else None
        in
        let guarded = slot + 2 in
        let tuples =
          List.init n (fun i ->
              let g = i + 1 in
              let keys = [ Threshold.level_key top ~level:g ] in
              let keys =
                match inc with
                | Some inc_sender when g >= 2 && mask_bit mask g ->
                    Threshold.level_key inc_sender ~level:(g - 1) :: keys
                | Some _ | None -> keys
              in
              Tuple.make ~group:(group_addr config g) ~slot:guarded ~keys
                ~minimal:(g = 1))
        in
        ignore
          (Special.distribute s.s_topo ~sender:s.s_node ~session:config.id
             ~via_group:(group_addr config 1) ~width:31 ~slot:guarded
             ~slot_duration:config.slot_duration ~tuples ());
        { top; inc; mask }
  in
  for g = 1 to n do
    let count = counts.(g - 1) in
    let spacing = config.slot_duration /. float_of_int count in
    let phase = float_of_int g /. float_of_int (n + 1) *. spacing in
    for i = 0 to count - 1 do
      let last = i = count - 1 in
      let repair = i >= originals.(g - 1) in
      Sim.post sim
           ~at:(tick_now +. phase +. (float_of_int i *. spacing))
           (fun () ->
             if config.mode = Flid.Robust then
               emit s ~group:g ~slot ~seq:i ~last ~repair ~state ~counts ()
             else begin
               s.s_data_bits <- s.s_data_bits + (8 * config.packet_size);
               Node.originate s.s_node
                 (Packet.make ~src:s.s_node.Node.id
                    ~dst:(Packet.Multicast (group_addr config g))
                    ~size:config.packet_size
                    (Rlm_data
                       {
                         session = config.id;
                         group = g;
                         slot;
                         seq = i;
                         last;
                         repair;
                         upgrade_mask = state.mask;
                         top_shares = [];
                         inc_shares = [];
                       }))
             end)
    done
  done

let sender_start ?(at = 0.) topo ~node ~prng config =
  let n = config.layering.Layering.groups in
  for g = 1 to n do
    Topology.register_group topo ~group:(group_addr config g) ~source:node
  done;
  (* Echo RTT probes: the Equation policy measures its multicast round
     trip against the sender. *)
  Mux.add_handler (Mux.of_node node) (fun pkt ->
      match pkt.Packet.payload with
      | Rtt_probe { session; receiver; sent_at } when session = config.id ->
          Node.originate node
            (Packet.make ~src:node.Node.id ~dst:(Packet.Unicast receiver)
               ~size:40 (Rtt_echo { session; receiver; sent_at }));
          true
      | _ -> false);
  let s =
    {
      s_config = config;
      s_topo = topo;
      s_node = node;
      s_prng = prng;
      s_slot = 0;
      s_credits = Array.make n 0.;
      s_share_bits = 0;
      s_data_bits = 0;
      s_tick = None;
      s_stopped = false;
    }
  in
  s.s_tick <-
    Some
      (Sim.every (Topology.sim topo) ~start:at ~period:config.slot_duration
         (sender_slot_tick s));
  s

(* ----------------------------------------------------------------- *)
(* Receiver                                                          *)
(* ----------------------------------------------------------------- *)

type group_slot_rec = {
  mutable count : int;
  mutable last_seq : int option;
  mutable saw_last : bool;
}

type slot_rec = {
  per_group : group_slot_rec array;
  top_recv : Threshold.receiver;
  inc_recv : Threshold.receiver;
  mutable mask : int;
}

type receiver = {
  r_config : config;
  r_topo : Topology.t;
  r_host : Node.t;
  r_prng : Prng.t;
  r_meter : Meter.t;
  mutable r_level : int;
  r_active_since : int array;
  r_slots : (int, slot_rec) Hashtbl.t;
  mutable r_base : float;
  mutable r_synced : bool;
  mutable r_next_eval : int;
  r_highest : int array;
  r_client : Client.t option;
  r_loss_est : Tfrc.Loss_estimator.t;
  mutable r_srtt : float option;
  mutable r_stopped : bool;
}

let receiver_meter r = r.r_meter
let receiver_level r = r.r_level
let receiver_rtt r = r.r_srtt
let receiver_loss_rate r = Tfrc.Loss_estimator.value r.r_loss_est
let receiver_stop r = r.r_stopped <- true

let slot_rec r slot =
  match Hashtbl.find_opt r.r_slots slot with
  | Some rec_ -> rec_
  | None ->
      let n = r.r_config.layering.Layering.groups in
      let rec_ =
        {
          per_group =
            Array.init n (fun _ ->
                { count = 0; last_seq = None; saw_last = false });
          top_recv = Threshold.receiver_create ~levels:n;
          inc_recv = Threshold.receiver_create ~levels:(max 1 (n - 1));
          mask = 0;
        }
      in
      Hashtbl.replace r.r_slots slot rec_;
      rec_

let effective_level r slot =
  let rec climb e =
    if e >= r.r_level then r.r_level
    else if r.r_active_since.(e) <= slot then climb (e + 1)
    else e
  in
  if r.r_active_since.(0) <= slot then climb 1 else 0

(* Expected packets of a group this slot, falling back to the rate-based
   estimate when even the last packet was lost. *)
let expected r rec_ g =
  let gs = rec_.per_group.(g - 1) in
  match gs.last_seq with
  | Some l when gs.saw_last -> l + 1
  | Some l -> l + 2
  | None ->
      if gs.count > 0 then gs.count + 1
      else
        let config = r.r_config in
        let rate = Layering.layer_rate config.layering ~group:g in
        let originals =
          rate *. config.slot_duration /. float_of_int (config.packet_size * 8)
        in
        max 1
          (int_of_float (originals *. (1. +. config.repair_fraction)))

let loss_rate r rec_ ~upto =
  let exp_total = ref 0 and got_total = ref 0 in
  for g = 1 to upto do
    exp_total := !exp_total + expected r rec_ g;
    got_total := !got_total + rec_.per_group.(g - 1).count
  done;
  if !exp_total = 0 then 0.
  else
    Float.max 0.
      (float_of_int (!exp_total - !got_total) /. float_of_int !exp_total)

(* Quorum for level l given its expected packet count, mirroring the
   sender's construction. *)
let quorum_for r rec_ ~level =
  let n_l = ref 0 in
  for g = 1 to level do
    n_l := !n_l + expected r rec_ g
  done;
  max 1
    (int_of_float
       (ceil ((1. -. threshold r.r_config ~level) *. float_of_int !n_l)))

let eval_slot r slot =
  let config = r.r_config in
  let n = config.layering.Layering.groups in
  let rec_ = slot_rec r slot in
  Metrics.tick "rlm.slots";
  let level_before = r.r_level in
  let g = effective_level r slot in
  if g >= 1 then begin
    let rate_g = loss_rate r rec_ ~upto:g in
    Tfrc.Loss_estimator.update r.r_loss_est ~loss_rate:rate_g;
    let congested = rate_g > threshold config ~level:g in
    if congested then Metrics.tick "rlm.inferred_losses";
    let ladder_target () =
      if congested then begin
        (* Drop to the highest level whose tolerance covers its loss. *)
        let rec descend l =
          if l < 1 then 0
          else if loss_rate r rec_ ~upto:l <= threshold config ~level:l then l
          else descend (l - 1)
        in
        descend (g - 1)
      end
      else if g = r.r_level && g < n && mask_bit rec_.mask (g + 1) then g + 1
      else min g r.r_level
    in
    let equation_target () =
      let p = Tfrc.Loss_estimator.value r.r_loss_est in
      let rtt = Option.value r.r_srtt ~default:0.1 in
      let fair_rate =
        Tfrc.throughput ~packet_bytes:config.packet_size ~rtt ~loss_rate:p
      in
      let desired =
        if fair_rate = infinity then n
        else max 1 (Layering.fair_level config.layering ~rate_bps:fair_rate)
      in
      if desired > g then
        (* Upgrades remain gated by increase-key authorization. *)
        if g = r.r_level && g < n && mask_bit rec_.mask (g + 1) then g + 1
        else min g r.r_level
      else desired
    in
    let target =
      match config.policy with
      | Ladder -> ladder_target ()
      | Equation -> equation_target ()
    in
    (match (config.mode, r.r_client) with
    | Flid.Robust, Some client ->
        (* Reconstruct a key per group of the target subscription.  The
           quorum estimate mirrors the sender's; an estimate off by a
           lost tail merely under-claims. *)
        let pairs = ref [] in
        let reachable = ref 0 in
        (try
           for l = 1 to min target n do
             let key =
               if l = g + 1 then
                 (* Upgrade: the increase key for level g+1 lives in the
                    inc scheme at index g. *)
                 Threshold.reconstruct rec_.inc_recv ~level:g
                   ~quorum:(quorum_for r rec_ ~level:g)
               else
                 Threshold.reconstruct rec_.top_recv ~level:l
                   ~quorum:(quorum_for r rec_ ~level:l)
             in
             match key with
             | Some k ->
                 pairs := (group_addr config l, k) :: !pairs;
                 reachable := l
             | None -> raise Exit
           done
         with Exit -> ());
        if !pairs <> [] then
          Client.subscribe client ~slot:(slot + 2) ~pairs:!pairs;
        let next = !reachable in
        if next = 0 then begin
          Client.session_join client ~group:(group_addr config 1);
          r.r_active_since.(0) <- slot + 3;
          r.r_level <- 1
        end
        else begin
          if next > r.r_level then r.r_active_since.(next - 1) <- slot + 2;
          if next < r.r_level then begin
            let dropped =
              List.init (r.r_level - next) (fun i -> group_addr config (next + i + 1))
            in
            Client.unsubscribe client ~groups:dropped;
            for l = next + 1 to r.r_level do
              r.r_active_since.(l - 1) <- max_int
            done
          end;
          r.r_level <- next
        end
    | Flid.Plain, _ | Flid.Robust, None ->
        let next = if target = 0 then 1 else target in
        if next > r.r_level then begin
          for l = r.r_level + 1 to next do
            Multicast.host_join r.r_topo ~host:r.r_host
              ~group:(group_addr config l);
            r.r_active_since.(l - 1) <- slot + 2
          done
        end
        else if next < r.r_level then
          for l = next + 1 to r.r_level do
            Multicast.host_leave r.r_topo ~host:r.r_host
              ~group:(group_addr config l);
            r.r_active_since.(l - 1) <- max_int
          done;
        r.r_level <- next)
  end;
  let delta = r.r_level - level_before in
  if delta <> 0 then begin
    Metrics.tick "rlm.level_changes";
    Metrics.tick (if delta > 0 then "rlm.joins" else "rlm.leaves") ~by:(abs delta);
    if Tracer.enabled () then
      Tracer.emit ~sim_time:(Sim.now (Topology.sim r.r_topo))
        ~component:"rlm.receiver" ~event:"level" (fun () ->
          [
            ("host", Json.Int r.r_host.Node.id);
            ("level", Json.Int r.r_level);
          ])
  end;
  let stale =
    Hashtbl.fold (fun s _ acc -> if s <= slot then s :: acc else acc) r.r_slots []
  in
  List.iter (Hashtbl.remove r.r_slots) stale

let slot_closed r slot =
  let effective = effective_level r slot in
  effective >= 1
  &&
  let rec check g =
    if g > effective then true
    else
      (r.r_highest.(g - 1) > slot
      ||
      match Hashtbl.find_opt r.r_slots slot with
      | Some rec_ -> rec_.per_group.(g - 1).saw_last
      | None -> false)
      && check (g + 1)
  in
  check 1

let rec try_eval r =
  if (not r.r_stopped) && slot_closed r r.r_next_eval then begin
    let slot = r.r_next_eval in
    eval_slot r slot;
    r.r_next_eval <- slot + 1;
    try_eval r
  end

let rec schedule_eval r =
  if not r.r_stopped then begin
    let sim = Topology.sim r.r_topo in
    let config = r.r_config in
    let slot = r.r_next_eval in
    let at =
      r.r_base
      +. (float_of_int (slot + 1) *. config.slot_duration)
      +. (config.processing_margin *. config.slot_duration)
    in
    let at = Float.max at (Sim.now sim) in
    Sim.post sim ~at (fun () ->
           if not r.r_stopped then begin
             if r.r_next_eval = slot then begin
               eval_slot r slot;
               r.r_next_eval <- slot + 1;
               try_eval r
             end;
             schedule_eval r
           end)
  end

let on_data r pkt =
  match pkt.Packet.payload with
  | Rlm_data { session; group; slot; seq; last; repair = _; upgrade_mask;
               top_shares; inc_shares }
    when session = r.r_config.id ->
      let now = Sim.now (Topology.sim r.r_topo) in
      Meter.record r.r_meter ~time:now ~bytes:pkt.Packet.size;
      let candidate_base =
        now -. (float_of_int slot *. r.r_config.slot_duration)
      in
      if not r.r_synced then begin
        r.r_synced <- true;
        r.r_base <- candidate_base;
        r.r_next_eval <- slot + 1;
        if r.r_active_since.(0) = max_int then
          r.r_active_since.(0) <- slot + 1;
        schedule_eval r
      end
      else r.r_base <- Float.min r.r_base candidate_base;
      r.r_highest.(group - 1) <- max r.r_highest.(group - 1) slot;
      if slot >= r.r_next_eval then begin
        let rec_ = slot_rec r slot in
        let gs = rec_.per_group.(group - 1) in
        gs.count <- gs.count + 1;
        if last then begin
          gs.saw_last <- true;
          gs.last_seq <- Some seq
        end;
        rec_.mask <- rec_.mask lor upgrade_mask;
        Threshold.on_shares rec_.top_recv top_shares;
        Threshold.on_shares rec_.inc_recv
          (List.map (fun (target, share) -> (target - 1, share)) inc_shares)
      end;
      try_eval r
  | _ -> ()

let receiver_start ?(at = 0.) topo ~host ~prng config =
  let n = config.layering.Layering.groups in
  let r =
    {
      r_config = config;
      r_topo = topo;
      r_host = host;
      r_prng = prng;
      r_meter = Meter.create ();
      r_level = 1;
      r_active_since = Array.make n max_int;
      r_slots = Hashtbl.create 8;
      r_base = infinity;
      r_synced = false;
      r_next_eval = 0;
      r_highest = Array.make n (-1);
      r_client =
        (match config.mode with
        | Flid.Robust -> Some (Client.create ~width:31 topo ~host)
        | Flid.Plain -> None);
      r_loss_est = Tfrc.Loss_estimator.create ();
      r_srtt = None;
      r_stopped = false;
    }
  in
  if Timeseries.enabled () then begin
    let name suffix =
      Printf.sprintf "rlm.s%d.h%d.%s" config.id host.Node.id suffix
    in
    Timeseries.sample_rate ~scale:0.008 (name "goodput_kbps") (fun () ->
        float_of_int (Meter.total_bytes r.r_meter));
    Timeseries.sample_gauge (name "level") (fun () -> float_of_int r.r_level)
  end;
  ignore r.r_prng;
  (match config.policy with
  | Equation ->
      (* RTT probing toward the session source, one probe per second. *)
      Mux.add_handler (Mux.of_node host) (fun pkt ->
          match pkt.Packet.payload with
          | Rtt_echo { session; receiver; sent_at }
            when session = config.id && receiver = host.Node.id ->
              let sample = Sim.now (Topology.sim topo) -. sent_at in
              (r.r_srtt <-
                (match r.r_srtt with
                | None -> Some sample
                | Some srtt -> Some ((0.875 *. srtt) +. (0.125 *. sample))));
              true
          | _ -> false);
      ignore
        (Sim.every (Topology.sim topo) ~start:(at +. 0.1) ~period:1.0
           (fun () ->
             if not r.r_stopped then
               match Topology.group_source topo (group_addr config 1) with
               | Some source ->
                   Node.originate host
                     (Packet.make ~src:host.Node.id
                        ~dst:(Packet.Unicast source.Node.id) ~size:40
                        (Rtt_probe
                           {
                             session = config.id;
                             receiver = host.Node.id;
                             sent_at = Sim.now (Topology.sim topo);
                           }))
               | None -> ()))
  | Ladder -> ());
  for g = 1 to n do
    Node.subscribe_local host ~group:(group_addr config g) (on_data r)
  done;
  Sim.post (Topology.sim topo) ~at (fun () ->
         match (config.mode, r.r_client) with
         | Flid.Plain, _ ->
             Multicast.host_join topo ~host ~group:(group_addr config 1)
         | Flid.Robust, Some client ->
             Client.session_join client ~group:(group_addr config 1)
         | Flid.Robust, None -> ());
  r
