(** Threshold-based layered multicast congestion control in the style
    of RLM / MLDA / WEBRC (paper Section 3.1.2, "Congested state"),
    protected by the Shamir-threshold DELTA instantiation.

    A receiver of subscription level g is congested only when its loss
    rate across groups 1..g during a slot exceeds the level's tolerance
    [theta_g]; tolerances shrink at higher levels
    ([theta_g = base / decay^(g-1)]), so every loss rate maps to a fair
    level.  In [Robust] mode the key for level g is split with Shamir's
    (k_g, n_g) scheme over all packets of groups 1..g, with
    [k_g = ceil ((1 - theta_g) n_g)]: exactly the receivers whose loss
    is within tolerance can reconstruct it.  Authorized upgrades
    additionally split an increase key for level g+1 over groups 1..g.
    Because Shamir components cannot be reused across levels, every
    packet carries one share per level above it — the communication
    overhead the paper points out, which [bench/main.exe ablation]
    quantifies against the XOR scheme. *)

(** How the receiver chooses its target level each slot. *)
type policy =
  | Ladder
      (** classic RLM: one step up when authorized, down to the highest
          level whose tolerance covers the slot's loss *)
  | Equation
      (** WEBRC/TFRC style: a smoothed loss-event rate and a probed
          multicast round-trip time feed the TCP throughput equation,
          and the receiver subscribes to the highest level the resulting
          rate sustains (see {!Tfrc}) *)

type config = {
  id : int;
  base_group : int;
  layering : Layering.t;
  slot_duration : float;
  packet_size : int;
  mode : Flid.mode;
  base_threshold : float;  (** theta_1, default 0.25 (RLM's default) *)
  threshold_decay : float;  (** tolerance shrink per level, default 1.3 *)
  repair_fraction : float;
      (** reliability extension (paper Section 3.1.2, "Reliability"):
          each group additionally carries this fraction of repair
          packets per slot, and key shares span originals and repairs
          alike.  With [base_threshold = aligned_threshold fraction]
          and no decay, key eligibility coincides exactly with data
          recoverability: a receiver that can decode the content can
          open the groups, one that cannot, cannot. *)
  policy : policy;
  upgrade_period : int -> int;
  processing_margin : float;
}

val aligned_threshold : float -> float
(** [fraction /. (1 +. fraction)]: the loss rate a repair budget of
    [fraction] recovers from, hence the matching key threshold. *)

val make_config :
  ?packet_size:int ->
  ?base_threshold:float ->
  ?threshold_decay:float ->
  ?repair_fraction:float ->
  ?policy:policy ->
  ?upgrade_period:(int -> int) ->
  ?processing_margin:float ->
  id:int ->
  base_group:int ->
  layering:Layering.t ->
  slot_duration:float ->
  mode:Flid.mode ->
  unit ->
  config

val group_addr : config -> int -> int

val threshold : config -> level:int -> float
(** theta_g. *)

type Mcc_net.Payload.t +=
  | Rlm_data of {
      session : int;
      group : int;
      slot : int;
      seq : int;
      last : bool;
      repair : bool;  (** an added redundancy packet, not original data *)
      upgrade_mask : int;
      top_shares : (int * Mcc_util.Shamir.share) list;
          (** (level, share) of the level keys, levels >= the group *)
      inc_shares : (int * Mcc_util.Shamir.share) list;
          (** (target level, share) of authorized increase keys *)
    }

type sender

val sender_start :
  ?at:float ->
  Mcc_net.Topology.t ->
  node:Mcc_net.Node.t ->
  prng:Mcc_util.Prng.t ->
  config ->
  sender

val sender_stop : sender -> unit

val share_overhead_bits : sender -> int
(** Total share bits emitted so far — the threshold scheme's
    communication cost. *)

val data_bits : sender -> int

type receiver

val receiver_start :
  ?at:float ->
  Mcc_net.Topology.t ->
  host:Mcc_net.Node.t ->
  prng:Mcc_util.Prng.t ->
  config ->
  receiver

val receiver_meter : receiver -> Mcc_util.Meter.t
val receiver_level : receiver -> int

val receiver_rtt : receiver -> float option
(** Smoothed probe round-trip time ([Equation] policy only). *)

val receiver_loss_rate : receiver -> float
(** Smoothed loss-event rate the equation is fed with. *)

val receiver_stop : receiver -> unit
