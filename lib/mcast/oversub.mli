(** Oversubscribed congestion control: a cumulative layered session
    whose receivers are driven by an EWMA of the per-slot ECN mark
    fraction rather than FLID's loss-per-slot rule.

    The wire format and the sender are FLID's ({!Flid.Data} packets,
    slot-clocked layered groups, DELTA key material for slot s+2
    distributed through SIGMA): Oversub is a receiver-side control law
    over that machinery.  Per slot the receiver computes the fraction
    of its arrivals that carried an ECN mark (a lost packet saturates
    the signal to 1), folds it into an EWMA [g], and then

    - if [g > target]: multiplicative decrease — the rate variable is
      scaled by [1 - (g - target) * md] and the probe quantum resets;
      the subscription drops to the highest level whose cumulative rate
      fits (possibly several levels at once, via DELTA decrease keys);
    - otherwise: exponential probing — the rate grows by an additive
      quantum that doubles every consecutive uncongested slot (capped at
      [2^max_exp]), and the receiver adds a layer when the rate crosses
      the next cumulative rate and the slot's mask authorizes it.

    Under the DELTA + SIGMA + ECN defence this protocol stresses the
    ECN-scrubbing edge far harder than FLID-DS: a marked packet's
    component field is scrubbed by the trusted edge, so any marked slot
    breaks top-key reconstruction and forces the decrease-key path even
    when the EWMA alone would have held the level. *)

type config = {
  flid : Flid.config;  (** wire format, slot clock and key machinery *)
  alpha : float;  (** EWMA gain (default 0.5) *)
  target : float;  (** mark-fraction target (default 0.3) *)
  md : float;  (** multiplicative-decrease factor (default 0.5) *)
  ai_bps : float;  (** base additive-increase quantum (default 10 kbps) *)
  max_exp : int;  (** probe-quantum doubling cap (default 6) *)
}

val make_config :
  ?packet_size:int ->
  ?width:int ->
  ?upgrade_period:(int -> int) ->
  ?processing_margin:float ->
  ?alpha:float ->
  ?target:float ->
  ?md:float ->
  ?ai_bps:float ->
  ?max_exp:int ->
  id:int ->
  base_group:int ->
  layering:Layering.t ->
  slot_duration:float ->
  mode:Flid.mode ->
  unit ->
  config
(** @raise Invalid_argument on out-of-range control parameters (alpha
    and md in (0, 1], target in (0, 1), positive ai_bps). *)

val group_addr : config -> int -> int
(** Address of group [g] (1-based). *)

(** {1 Sender}

    The sender is FLID's, byte for byte: same slot tick, same DELTA
    precomputation, same SIGMA tuple distribution. *)

type sender = Flid.sender

val sender_start :
  ?at:float ->
  Mcc_net.Topology.t ->
  node:Mcc_net.Node.t ->
  prng:Mcc_util.Prng.t ->
  config ->
  sender

val sender_stats : sender -> Flid.sender_stats
val sender_stop : sender -> unit

(** {1 Receiver} *)

type receiver

val receiver_start :
  ?at:float ->
  Mcc_net.Topology.t ->
  host:Mcc_net.Node.t ->
  prng:Mcc_util.Prng.t ->
  config ->
  receiver
(** Joins the minimal group at [at] (SIGMA session-join in [Robust]
    mode, IGMP otherwise) and runs the EWMA control law every slot.
    [prng] is unused by the honest receiver and kept for construction
    uniformity across the protocol library. *)

val receiver_meter : receiver -> Mcc_util.Meter.t
(** Bytes of session data reaching the receiver's host. *)

val receiver_level : receiver -> int
(** Current subscription level. *)

val level_series : receiver -> Mcc_util.Series.t
(** (time, level) samples recorded at every level change. *)

val mark_ewma : receiver -> float
(** Current EWMA of the mark fraction. *)

val congestion_events : receiver -> int
(** Slots that observed a congestion signal (loss or at least one
    mark). *)

val decrease_events : receiver -> int
(** Slots on which the EWMA exceeded the target and the rate variable
    was multiplicatively decreased. *)

val receiver_stop : receiver -> unit
(** Freezes the receiver; group membership decays via key expiry. *)

val receiver_leave : receiver -> unit
(** Orderly departure: leave every subscribed group at once (an
    unsubscription message under SIGMA, IGMP leaves otherwise) and
    stop. *)
