let throughput ~packet_bytes ~rtt ~loss_rate =
  if packet_bytes <= 0 then invalid_arg "Tfrc.throughput: packet_bytes";
  if rtt <= 0. then invalid_arg "Tfrc.throughput: rtt";
  if loss_rate < 0. || loss_rate > 1. then
    invalid_arg "Tfrc.throughput: loss_rate";
  if Float.equal loss_rate 0. then infinity
  else begin
    let s = float_of_int (packet_bytes * 8) in
    let p = loss_rate in
    let t_rto = 4. *. rtt in
    let denom =
      (rtt *. sqrt (2. *. p /. 3.))
      +. (t_rto *. (3. *. sqrt (3. *. p /. 8.)) *. p *. (1. +. (32. *. p *. p)))
    in
    s /. denom
  end

module Loss_estimator = struct
  type t = { alpha : float; mutable value : float; mutable samples : int }

  let create ?(alpha = 0.1) () =
    if alpha <= 0. || alpha > 1. then invalid_arg "Loss_estimator.create";
    { alpha; value = 0.; samples = 0 }

  let update t ~loss_rate =
    if loss_rate < 0. || loss_rate > 1. then
      invalid_arg "Loss_estimator.update";
    if t.samples = 0 then t.value <- loss_rate
    else t.value <- ((1. -. t.alpha) *. t.value) +. (t.alpha *. loss_rate);
    t.samples <- t.samples + 1

  let value t = t.value
  let samples t = t.samples
end
