module Sim = Mcc_engine.Sim
module Node = Mcc_net.Node
module Link = Mcc_net.Link
module Packet = Mcc_net.Packet
module Prng = Mcc_util.Prng
module Flid = Mcc_mcast.Flid
module Layering = Mcc_mcast.Layering
module Router_agent = Mcc_sigma.Router_agent
module Tcp = Mcc_transport.Tcp
module On_off = Mcc_transport.On_off
module Field = Mcc_delta.Field
module Ecn = Mcc_delta.Ecn

type receiver_spec = {
  start_at : float;
  behavior : Flid.behavior;
  access_delay_s : float option;
  access_rate_bps : float option;
}

let receiver ?(at = 0.) ?(behavior = Flid.Well_behaved) ?access_delay_s
    ?access_rate_bps () =
  { start_at = at; behavior; access_delay_s; access_rate_bps }

type session = {
  config : Flid.config;
  sender : Flid.sender;
  receivers : Flid.receiver list;
}

type t = {
  sim : Sim.t;
  db : Dumbbell.t;
  prng : Prng.t;
  agent_config : Router_agent.config;
  sigma : bool;
  mutable next_session : int;
  mutable next_base_group : int;
  mutable agent : Router_agent.t option;
  mutable tcp_flows : int;
  mutable routed : bool;
}

let create ?(seed = 42) ?sched ?bottleneck_delay_s ?ecn ?packet_buffer
    ?(agent_config = Router_agent.default_config) ?(sigma = true)
    ~bottleneck_rate_bps () =
  let sim = Sim.create ?sched () in
  let db =
    Dumbbell.create ?bottleneck_delay_s ?ecn ?packet_buffer sim
      ~bottleneck_rate_bps ()
  in
  {
    sim;
    db;
    prng = Prng.create seed;
    agent_config;
    sigma;
    next_session = 1;
    next_base_group = 0x1000;
    agent = None;
    tcp_flows = 0;
    routed = false;
  }

let sim t = t.sim
let dumbbell t = t.db
let agent t = t.agent

(* Component transform for FLID payloads, installed on the SIGMA agent.
   Marked copies get a fresh random component (ECN scrub); with
   interface-specific keys enabled every other copy is XOR-padded and
   the pad recorded so the agent can map the interface's lower keys back
   to the sender's upper keys (paper Section 4.2).  The payload is
   replaced, never mutated: multicast branches share it. *)
let transform agent prng (link : Link.t) pkt =
  match pkt.Packet.payload with
  | Flid.Data ({ delta = Some f; group = _; slot; _ } as d) ->
      let width = Mcc_delta.Key.default_width in
      let iface_keys = Router_agent.interface_keys_enabled agent in
      let addr =
        match pkt.Packet.dst with
        | Packet.Multicast addr -> Some addr
        | Packet.Unicast _ -> None
      in
      let component =
        if pkt.Packet.ecn then
          Some (Ecn.scrubbed_component prng ~width f.Field.component)
        else
          match addr with
          | Some addr when iface_keys ->
              let pad = Mcc_delta.Key.nonce prng ~width in
              Router_agent.note_pad agent ~link_id:link.Link.id ~group:addr
                ~guarded_slot:(slot + 2) ~pad;
              Some (Mcc_delta.Key.xor f.Field.component pad)
          | Some _ | None -> None
      in
      let decrease =
        match (addr, f.Field.decrease) with
        | Some addr, Some dec when iface_keys ->
            (* The decrease field of group [addr]'s packets opens group
               [addr - 1] (consecutive addressing); a stable pad per
               (interface, opened group, guarded slot) keeps every copy
               the receiver sees consistent while making a lifted
               decrease key fail on any other interface. *)
            let pad =
              Router_agent.decrease_pad agent ~link_id:link.Link.id
                ~group:(addr - 1) ~guarded_slot:(slot + 2)
                ~fresh:(fun () -> Mcc_delta.Key.nonce prng ~width)
            in
            Some (Some (Mcc_delta.Key.xor dec pad))
        | _ -> None
      in
      if component <> None || decrease <> None then begin
        let fresh =
          Field.make
            ~component:(Option.value component ~default:f.Field.component)
            ~decrease:
              (match decrease with Some x -> x | None -> f.Field.decrease)
        in
        pkt.Packet.payload <- Flid.Data { d with delta = Some fresh }
      end
  | _ -> ()

(* Exported for builders over generated topologies (Mcc_workload): the
   same transform, one per attached agent. *)
let delta_transform = transform

(* With [sigma = false] the right-hand edge router stays a legacy IGMP
   device even for Robust sessions (the paper's incremental-deployment
   counterfactual): keys flow in band but nothing enforces them. *)
let ensure_agent t =
  if not t.sigma then None
  else
    match t.agent with
    | Some agent -> Some agent
    | None ->
        let agent =
          Router_agent.attach ~config:t.agent_config t.db.Dumbbell.topo
            t.db.Dumbbell.right
        in
        let scrub_prng = Prng.split t.prng in
        Router_agent.set_scrubber agent (transform agent scrub_prng);
        t.agent <- Some agent;
        Some agent

let add_multicast ?slot ?layering ?fec_scheme ?packet_size ?receiver_mode t
    ~mode ~receivers () =
  let layering = match layering with Some l -> l | None -> Defaults.layering () in
  let slot =
    match slot with
    | Some s -> s
    | None -> (
        match mode with
        | Flid.Plain -> Defaults.flid_dl_slot
        | Flid.Robust -> Defaults.flid_ds_slot)
  in
  (match mode with Flid.Robust -> ignore (ensure_agent t) | Flid.Plain -> ());
  let id = t.next_session in
  t.next_session <- id + 1;
  let base_group = t.next_base_group in
  t.next_base_group <- base_group + layering.Layering.groups;
  let config =
    Flid.make_config ?fec_scheme ?packet_size ~id ~base_group ~layering
      ~slot_duration:slot ~mode ()
  in
  let sender_host = Dumbbell.add_sender t.db in
  let sender =
    Flid.sender_start t.db.Dumbbell.topo ~node:sender_host
      ~prng:(Prng.split t.prng) config
  in
  (* [receiver_mode] models receivers behind a legacy edge: a Plain-mode
     receiver of a Robust session falls back to IGMP control while the
     sender still pays the DELTA/SIGMA overhead (paper Section 3.2.3). *)
  let receiver_config =
    match receiver_mode with
    | Some m -> { config with Flid.mode = m }
    | None -> config
  in
  let receivers =
    List.map
      (fun spec ->
        let host =
          Dumbbell.add_receiver ?delay_s:spec.access_delay_s
            ?rate_bps:spec.access_rate_bps t.db
        in
        Flid.receiver_start ~at:spec.start_at ~behavior:spec.behavior
          t.db.Dumbbell.topo ~host ~prng:(Prng.split t.prng) receiver_config)
      receivers
  in
  { config; sender; receivers }

type replicated_session = {
  rep_config : Mcc_mcast.Replicated_proto.config;
  rep_sender : Mcc_mcast.Replicated_proto.sender;
  rep_receivers : Mcc_mcast.Replicated_proto.receiver list;
}

let fresh_session t ~groups =
  let id = t.next_session in
  t.next_session <- id + 1;
  let base_group = t.next_base_group in
  t.next_base_group <- base_group + groups;
  (id, base_group)

let add_replicated ?slot ?layering ?receiver_mode t ~mode ~receivers () =
  let module Rep = Mcc_mcast.Replicated_proto in
  let layering =
    match layering with Some l -> l | None -> Defaults.layering ()
  in
  let slot = Option.value slot ~default:Defaults.flid_ds_slot in
  (match mode with Flid.Robust -> ignore (ensure_agent t) | Flid.Plain -> ());
  let id, base_group = fresh_session t ~groups:layering.Layering.groups in
  let config =
    Rep.make_config ~id ~base_group ~layering ~slot_duration:slot ~mode ()
  in
  let sender_host = Dumbbell.add_sender t.db in
  let sender =
    Rep.sender_start t.db.Dumbbell.topo ~node:sender_host
      ~prng:(Prng.split t.prng) config
  in
  let receiver_config =
    match receiver_mode with
    | Some m -> { config with Rep.mode = m }
    | None -> config
  in
  let rep_receivers =
    List.map
      (fun spec ->
        let host =
          Dumbbell.add_receiver ?delay_s:spec.access_delay_s
            ?rate_bps:spec.access_rate_bps t.db
        in
        Rep.receiver_start ~at:spec.start_at ~behavior:spec.behavior
          t.db.Dumbbell.topo ~host ~prng:(Prng.split t.prng) receiver_config)
      receivers
  in
  { rep_config = config; rep_sender = sender; rep_receivers }

type rlm_session = {
  rlm_config : Mcc_mcast.Rlm_like.config;
  rlm_sender : Mcc_mcast.Rlm_like.sender;
  rlm_receivers : Mcc_mcast.Rlm_like.receiver list;
}

let add_rlm ?slot ?layering ?policy ?receiver_mode t ~mode ~receivers () =
  let module Rlm = Mcc_mcast.Rlm_like in
  let layering =
    match layering with Some l -> l | None -> Defaults.layering ()
  in
  let slot = Option.value slot ~default:Defaults.flid_ds_slot in
  (match mode with Flid.Robust -> ignore (ensure_agent t) | Flid.Plain -> ());
  let id, base_group = fresh_session t ~groups:layering.Layering.groups in
  let config =
    Rlm.make_config ?policy ~id ~base_group ~layering ~slot_duration:slot
      ~mode ()
  in
  let sender_host = Dumbbell.add_sender t.db in
  let sender =
    Rlm.sender_start t.db.Dumbbell.topo ~node:sender_host
      ~prng:(Prng.split t.prng) config
  in
  let receiver_config =
    match receiver_mode with
    | Some m -> { config with Rlm.mode = m }
    | None -> config
  in
  let rlm_receivers =
    List.map
      (fun spec ->
        let host =
          Dumbbell.add_receiver ?delay_s:spec.access_delay_s
            ?rate_bps:spec.access_rate_bps t.db
        in
        Rlm.receiver_start ~at:spec.start_at t.db.Dumbbell.topo ~host
          ~prng:(Prng.split t.prng) receiver_config)
      receivers
  in
  { rlm_config = config; rlm_sender = sender; rlm_receivers }

type oversub_session = {
  ovs_config : Mcc_mcast.Oversub.config;
  ovs_sender : Mcc_mcast.Oversub.sender;
  ovs_receivers : Mcc_mcast.Oversub.receiver list;
}

let add_oversub ?slot ?layering ?receiver_mode t ~mode ~receivers () =
  let module Ovs = Mcc_mcast.Oversub in
  let layering =
    match layering with Some l -> l | None -> Defaults.layering ()
  in
  let slot = Option.value slot ~default:Defaults.flid_ds_slot in
  (match mode with Flid.Robust -> ignore (ensure_agent t) | Flid.Plain -> ());
  let id, base_group = fresh_session t ~groups:layering.Layering.groups in
  let config =
    Ovs.make_config ~id ~base_group ~layering ~slot_duration:slot ~mode ()
  in
  let sender_host = Dumbbell.add_sender t.db in
  let sender =
    Ovs.sender_start t.db.Dumbbell.topo ~node:sender_host
      ~prng:(Prng.split t.prng) config
  in
  let receiver_config =
    match receiver_mode with
    | Some m -> { config with Ovs.flid = { config.Ovs.flid with Flid.mode = m } }
    | None -> config
  in
  let ovs_receivers =
    List.map
      (fun spec ->
        let host =
          Dumbbell.add_receiver ?delay_s:spec.access_delay_s
            ?rate_bps:spec.access_rate_bps t.db
        in
        Ovs.receiver_start ~at:spec.start_at t.db.Dumbbell.topo ~host
          ~prng:(Prng.split t.prng) receiver_config)
      receivers
  in
  { ovs_config = config; ovs_sender = sender; ovs_receivers }

let add_tcp ?(at = 0.) t =
  t.tcp_flows <- t.tcp_flows + 1;
  let src = Dumbbell.add_sender t.db in
  let dst = Dumbbell.add_receiver t.db in
  Tcp.start ~at t.db.Dumbbell.topo ~flow:t.tcp_flows ~src ~dst ()

let add_onoff_cbr ?(at = 0.) ?until t ~rate_bps ~on_period ~off_period =
  let src = Dumbbell.add_sender t.db in
  let dst = Dumbbell.add_receiver t.db in
  On_off.start ~at ?until t.db.Dumbbell.topo ~src
    ~dst:(Packet.Unicast dst.Node.id) ~rate_bps ~size:Defaults.packet_size
    ~on_period ~off_period ()

let run t ~seconds =
  if not t.routed then begin
    Dumbbell.finalize t.db;
    t.routed <- true
  end;
  Sim.run_until t.sim seconds

let bottleneck_drops t = t.db.Dumbbell.forward.Link.drops
