(* The implementation lives in Mcc_obs so the telemetry layer (which
   every library depends on) can render JSON without depending on the
   experiment layer.  Re-exported here for the core API's callers. *)
include Mcc_obs.Json
