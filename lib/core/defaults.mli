(** The experimental settings of paper Section 5.1, used by every
    experiment unless it overrides them. *)

val fair_share_bps : float
(** 250 Kbps per session: the bottleneck is provisioned as
    [fair_share * number of sessions]. *)

val bottleneck_delay_s : float
(** 20 ms. *)

val access_rate_bps : float
(** 10 Mbps side links. *)

val access_delay_s : float
(** 10 ms side links. *)

val groups : int
(** 10 groups per multicast session. *)

val min_rate_bps : float
(** 100 Kbps minimal group. *)

val rate_factor : float
(** 1.5: multiplicative growth of the cumulative rate per group. *)

val packet_size : int
(** 576-byte data packets. *)

val flid_dl_slot : float
(** 500 ms FLID-DL time slot. *)

val flid_ds_slot : float
(** 250 ms FLID-DS time slot: SIGMA enforces with a responsiveness of
    two slots, so halving the slot matches FLID-DL's control
    granularity. *)

val key_width : int
(** 16-bit keys, as in the paper's overhead evaluation. *)

val layering : unit -> Mcc_mcast.Layering.t
(** The default 10-group, 100 Kbps, x1.5 session structure. *)

val buffer_bytes : bottleneck_rate_bps:float -> rtt_s:float -> int
(** Two bandwidth-delay products, the paper's buffer sizing. *)

val path_rtt_s : bottleneck_delay_s:float -> access_delay_s:float -> float
(** Round trip of the standard three-link path. *)
