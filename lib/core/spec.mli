(** First-class experiment specifications.

    Every experiment of the paper's evaluation (Figures 1, 7, 8a–8h,
    9a, 9b, plus the Section 3.2.3 incremental-deployment study) is
    described by a parameter record; [t] is the sum of those records.
    A spec is pure data: the same spec always produces the same result
    ({!Experiments.run} is a pure function of it), which is what lets
    {!Runner} farm batches of specs out to domains and still merge
    byte-identical outputs.

    Each record has a [default_*] value carrying the paper's settings;
    build variants with record update syntax:
    [{ Spec.default_attack with mode = Flid.Plain; duration = 60. }]. *)

type mode = Mcc_mcast.Flid.mode

type attack_params = {
  seed : int;
  duration : float;  (** simulated seconds *)
  attack_at : float;  (** when receiver F1 starts inflating *)
  mode : mode;
}
(** Figures 1 / 7: two multicast + two TCP sessions over a 1 Mbps
    bottleneck; receiver F1 inflates its subscription at [attack_at]. *)

type sweep_params = {
  seed : int;
  duration : float;
  sessions : int;  (** number of concurrent multicast sessions *)
  cross_traffic : bool;
      (** one TCP flow per session plus an on-off CBR (Figure 8d) *)
  mode : mode;
}
(** One point of Figures 8a–8d.  The figure's sweep is a batch of these
    specs, one per session count — independent runs, so they
    parallelise. *)

type responsiveness_params = {
  seed : int;
  duration : float;
  burst_start : float;
  burst_stop : float;
  burst_rate_bps : float;
  mode : mode;
}
(** Figure 8e: one session plus a CBR burst on a 1 Mbps bottleneck. *)

type rtt_params = {
  seed : int;
  duration : float;
  receivers : int;  (** RTTs spread uniformly over 30–220 ms *)
  mode : mode;
}
(** Figure 8f. *)

type convergence_params = {
  seed : int;
  duration : float;
  join_times : float list;  (** one receiver joins at each time *)
  mode : mode;
}
(** Figures 8g / 8h. *)

type overhead_axis = Groups | Slot

type overhead_params = {
  seed : int;
  duration : float;
  groups : int;
  slot : float;  (** slot duration in seconds *)
  axis : overhead_axis;
      (** which parameter the containing figure varies; selects the
          x coordinate of the resulting point (9a: groups, 9b: slot) *)
}
(** One point of Figures 9a / 9b: DELTA and SIGMA communication
    overhead, analytic and measured. *)

type partial_params = {
  seed : int;
  duration : float;
  attack_at : float;
}
(** Incremental deployment (paper Section 3.2.3): the same inflation
    attack behind a SIGMA edge router and behind a legacy IGMP one. *)

type attack_kind =
  | Persistent_inflation
      (** F1's behaviour from Figure 1: join everything, forever. *)
  | Pulse_inflation of { period_s : float; duty : float }
      (** On-off inflation with period [period_s] and on-fraction
          [duty], timed against RED's averaging window. *)
  | Key_guessing of { budget_per_slot : int }
      (** Submit up to [budget_per_slot] random w-bit keys per slot for
          groups the attacker holds no key for (paper Section 3.2.2's
          guessing analysis, against the agent's tally/lockout). *)
  | Stale_replay of { lag_slots : int }
      (** Replay keys that were valid [lag_slots] slots ago: DELTA keys
          are per-slot, so the edge router must reject them. *)
  | Grace_churn of { period_slots : float }
      (** Join/leave cycling every [period_slots] slots, riding SIGMA's
          session-join grace window without ever presenting a key. *)
  | Collusion of { colluders : int }
      (** [colluders] extra receivers replay the keys a clean-path
          accomplice reconstructs (paper Section 4.2). *)
(** The adversary catalogue.  Every strategy is implemented in
    [Mcc_attack.Strategy]; the payloads here are the knobs the matrix
    sweeps. *)

type protocol = Flid_ds | Rlm_threshold | Replicated
(** Which congestion-control scheme the session under attack runs:
    FLID-DS (XOR keys), the RLM-like ladder with Shamir threshold keys,
    or replicated streams with tier switching. *)

type defence = Undefended | Delta_only | Delta_sigma | Delta_sigma_ecn
(** The defence column of the matrix: plain IGMP (no keys, no agent),
    DELTA keys without an enforcing edge router (legacy edge), the
    paper's full DELTA + SIGMA, and the ECN-marking variant. *)

type adversary_params = {
  seed : int;
  duration : float;
  attack_at : float;  (** when the strategy arms itself *)
  attack : attack_kind;
  protocol : protocol;
  defence : defence;
}
(** One cell of the defence-evaluation matrix: a multicast session with
    one honest receiver and one adversary, plus a TCP flow, sharing a
    bottleneck provisioned at two fair shares. *)

type t =
  | Attack of attack_params
  | Sweep of sweep_params
  | Responsiveness of responsiveness_params
  | Rtt of rtt_params
  | Convergence of convergence_params
  | Overhead of overhead_params
  | Partial of partial_params
  | Adversary of adversary_params

val default_attack : attack_params
(** seed 7, 200 s, attack at 100 s, FLID-DS. *)

val default_sweep : sweep_params
(** seed 12 (the legacy API's seed 11 + sessions), 200 s, 1 session, no
    cross traffic, FLID-DS. *)

val default_responsiveness : responsiveness_params
(** seed 19, 100 s, 800 Kbps burst during [45 s, 75 s], FLID-DS. *)

val default_rtt : rtt_params
(** seed 23, 200 s, 20 receivers, FLID-DS. *)

val default_convergence : convergence_params
(** seed 29, 40 s, joins at 0/10/20/30 s, FLID-DS. *)

val default_overhead : overhead_params
(** seed 31, 30 s, 10 groups, 250 ms slots, [Groups] axis. *)

val default_partial : partial_params
(** seed 37, 120 s, attack at 40 s. *)

val default_adversary : adversary_params
(** seed 41, 120 s, attack at 30 s, persistent inflation against
    FLID-DS under DELTA + SIGMA. *)

val attack_str : attack_kind -> string
(** "inflate", "pulse", "guess", "replay", "churn" or "collude". *)

val protocol_str : protocol -> string
(** "flid", "rlm" or "replicated". *)

val defence_str : defence -> string
(** "plain", "delta", "delta+sigma" or "delta+sigma+ecn". *)

val kind : t -> string
(** "attack", "sweep", "responsiveness", "rtt", "convergence",
    "overhead", "partial" or "adversary". *)

val seed : t -> int

val duration : t -> float

val scale_time : t -> factor:float -> t
(** Multiplies every temporal parameter (duration and the instants
    within it: attack onset, burst window, join times) by [factor],
    preserving the scenario's shape.  Protocol timing (slot durations)
    is not touched.  Used for abbreviated "--quick" batches. *)

val to_json : t -> Json.t
(** The spec as a JSON object, [kind] field included; every parameter
    appears so a result file documents exactly what produced it. *)

val pp : Format.formatter -> t -> unit
(** One-line human summary, e.g. "attack seed=7 duration=200s
    attack_at=100s mode=robust". *)
