(** First-class experiment specifications.

    Every experiment of the paper's evaluation (Figures 1, 7, 8a–8h,
    9a, 9b, plus the Section 3.2.3 incremental-deployment study) is
    described by a parameter record; [t] is the sum of those records.
    A spec is pure data: the same spec always produces the same result
    ({!Experiments.run} is a pure function of it), which is what lets
    {!Runner} farm batches of specs out to domains and still merge
    byte-identical outputs.

    Each record has a [default_*] value carrying the paper's settings;
    build variants with record update syntax:
    [{ Spec.default_attack with mode = Flid.Plain; duration = 60. }]. *)

type mode = Mcc_mcast.Flid.mode

type attack_params = {
  seed : int;
  duration : float;  (** simulated seconds *)
  attack_at : float;  (** when receiver F1 starts inflating *)
  mode : mode;
}
(** Figures 1 / 7: two multicast + two TCP sessions over a 1 Mbps
    bottleneck; receiver F1 inflates its subscription at [attack_at]. *)

type sweep_params = {
  seed : int;
  duration : float;
  sessions : int;  (** number of concurrent multicast sessions *)
  cross_traffic : bool;
      (** one TCP flow per session plus an on-off CBR (Figure 8d) *)
  mode : mode;
}
(** One point of Figures 8a–8d.  The figure's sweep is a batch of these
    specs, one per session count — independent runs, so they
    parallelise. *)

type responsiveness_params = {
  seed : int;
  duration : float;
  burst_start : float;
  burst_stop : float;
  burst_rate_bps : float;
  mode : mode;
}
(** Figure 8e: one session plus a CBR burst on a 1 Mbps bottleneck. *)

type rtt_params = {
  seed : int;
  duration : float;
  receivers : int;  (** RTTs spread uniformly over 30–220 ms *)
  mode : mode;
}
(** Figure 8f. *)

type convergence_params = {
  seed : int;
  duration : float;
  join_times : float list;  (** one receiver joins at each time *)
  mode : mode;
}
(** Figures 8g / 8h. *)

type overhead_axis = Groups | Slot

type overhead_params = {
  seed : int;
  duration : float;
  groups : int;
  slot : float;  (** slot duration in seconds *)
  axis : overhead_axis;
      (** which parameter the containing figure varies; selects the
          x coordinate of the resulting point (9a: groups, 9b: slot) *)
}
(** One point of Figures 9a / 9b: DELTA and SIGMA communication
    overhead, analytic and measured. *)

type partial_params = {
  seed : int;
  duration : float;
  attack_at : float;
}
(** Incremental deployment (paper Section 3.2.3): the same inflation
    attack behind a SIGMA edge router and behind a legacy IGMP one. *)

type attack_kind =
  | Persistent_inflation
      (** F1's behaviour from Figure 1: join everything, forever. *)
  | Pulse_inflation of { period_s : float; duty : float }
      (** On-off inflation with period [period_s] and on-fraction
          [duty], timed against RED's averaging window. *)
  | Key_guessing of { budget_per_slot : int }
      (** Submit up to [budget_per_slot] random w-bit keys per slot for
          groups the attacker holds no key for (paper Section 3.2.2's
          guessing analysis, against the agent's tally/lockout). *)
  | Stale_replay of { lag_slots : int }
      (** Replay keys that were valid [lag_slots] slots ago: DELTA keys
          are per-slot, so the edge router must reject them. *)
  | Grace_churn of { period_slots : float }
      (** Join/leave cycling every [period_slots] slots, riding SIGMA's
          session-join grace window without ever presenting a key. *)
  | Collusion of { colluders : int }
      (** [colluders] extra receivers replay the keys a clean-path
          accomplice reconstructs (paper Section 4.2). *)
(** The adversary catalogue.  Every strategy is implemented in
    [Mcc_attack.Strategy]; the payloads here are the knobs the matrix
    sweeps. *)

type protocol = Flid_ds | Rlm_threshold | Replicated | Oversub
(** Which congestion-control scheme the session under attack runs:
    FLID-DS (XOR keys), the RLM-like ladder with Shamir threshold keys,
    replicated streams with tier switching, or the oversubscribed-CC
    layered scheme driven by an EWMA of the ECN mark fraction. *)

type defence = Undefended | Delta_only | Delta_sigma | Delta_sigma_ecn
(** The defence column of the matrix: plain IGMP (no keys, no agent),
    DELTA keys without an enforcing edge router (legacy edge), the
    paper's full DELTA + SIGMA, and the ECN-marking variant. *)

type adversary_params = {
  seed : int;
  duration : float;
  attack_at : float;  (** when the strategy arms itself *)
  attack : attack_kind;
  protocol : protocol;
  defence : defence;
}
(** One cell of the defence-evaluation matrix: a multicast session with
    one honest receiver and one adversary, plus a TCP flow, sharing a
    bottleneck provisioned at two fair shares. *)

type topology_spec =
  | Dumbbell_topo  (** the classic two-router dumbbell (paper setup) *)
  | Fat_tree of { k : int; core_rate_bps : float }
      (** k-ary fat tree: (k/2)^2 core routers, k pods of k/2 aggregation
          and k/2 edge routers, k/2 hosts per edge.  [k] must be even. *)
  | Star_lans of { lans : int; hosts_per_lan : int; core_rate_bps : float }
      (** one core router fanning out to [lans] edge routers, each
          serving a LAN segment of [hosts_per_lan] hosts *)
  | Isp_random of {
      routers : int;
      extra_links : int;
      hosts_per_edge : int;
      core_rate_bps : float;
    }
      (** ISP-like random graph: a seed-grown random tree over [routers]
          core routers plus [extra_links] random shortcut links, one
          edge router with [hosts_per_edge] hosts per core router *)
(** Seed-driven deterministic topology generators: the same (spec, seed)
    pair always yields a byte-identical {!Mcc_net.Topology} dump. *)

type churn_spec =
  | No_churn
  | Flash_crowd of { at : float; arrivals : int; leave_after : float }
      (** [arrivals] extra receivers join in a burst at [at] and leave
          [leave_after] seconds later *)
  | Diurnal of { period : float; fraction : float }
      (** [fraction] of the receivers cycle off and on with [period],
          phase-staggered — a compressed day/night wave *)
  | Regional_outage of { at : float; restore_at : float; fraction : float }
      (** a correlated slice of the receiver population (one "region")
          drops at [at] and rejoins at [restore_at] *)
(** Receiver-churn models; instants are horizon times and scale with
    {!scale_time}. *)

type traffic_spec =
  | Web_mix of { flows : int; rate_bps : float; mean_on : float; mean_off : float }
      (** web-like on/off CBR background flows with exponential on/off
          holding times drawn from the workload's seed *)
  | Tcp_flows of { flows : int }  (** long-lived TCP cross flows *)

type workload_params = {
  seed : int;
  duration : float;
  topology : topology_spec;
  protocol : protocol;
  defence : defence;
  receivers : int;  (** base receiver population (before churn) *)
  churn : churn_spec;
  traffic : traffic_spec list;
  attack : attack_kind option;  (** an optional bare attacker host *)
  attack_at : float;
}
(** One declarative workload: a generated topology carrying one
    multicast session under a chosen defence, plus churn, background
    traffic, and optionally an attacker.  Parsed from workload files by
    [Mcc_workload.Schema]; executed by the [Mcc_workload] build hook. *)

type t =
  | Attack of attack_params
  | Sweep of sweep_params
  | Responsiveness of responsiveness_params
  | Rtt of rtt_params
  | Convergence of convergence_params
  | Overhead of overhead_params
  | Partial of partial_params
  | Adversary of adversary_params
  | Workload of workload_params

val default_attack : attack_params
(** seed 7, 200 s, attack at 100 s, FLID-DS. *)

val default_sweep : sweep_params
(** seed 12 (the legacy API's seed 11 + sessions), 200 s, 1 session, no
    cross traffic, FLID-DS. *)

val default_responsiveness : responsiveness_params
(** seed 19, 100 s, 800 Kbps burst during [45 s, 75 s], FLID-DS. *)

val default_rtt : rtt_params
(** seed 23, 200 s, 20 receivers, FLID-DS. *)

val default_convergence : convergence_params
(** seed 29, 40 s, joins at 0/10/20/30 s, FLID-DS. *)

val default_overhead : overhead_params
(** seed 31, 30 s, 10 groups, 250 ms slots, [Groups] axis. *)

val default_partial : partial_params
(** seed 37, 120 s, attack at 40 s. *)

val default_adversary : adversary_params
(** seed 41, 120 s, attack at 30 s, persistent inflation against
    FLID-DS under DELTA + SIGMA. *)

val default_workload : workload_params
(** seed 43, 120 s, fat-tree(4) with a 2 Mbps core, FLID-DS under
    DELTA + SIGMA, 6 receivers, no churn/traffic/attack. *)

val attack_str : attack_kind -> string
(** "inflate", "pulse", "guess", "replay", "churn" or "collude". *)

val protocols : (protocol * string * string) list
(** The protocol registry: (variant, CLI short name, scorecard column
    heading), in matrix column order.  {!protocol_str},
    {!protocol_heading}, the matrix's default protocol set and the CLI
    [--protocols] parser all derive from this list, so registering a
    protocol here is the only step needed to add a matrix column. *)

val protocol_str : protocol -> string
(** "flid", "rlm", "replicated" or "oversub". *)

val protocol_heading : protocol -> string
(** The scorecard column heading from the {!protocols} registry. *)

val topology_str : topology_spec -> string
(** "dumbbell", "fat_tree", "star_lans" or "isp_random". *)

val churn_str : churn_spec -> string
(** "none", "flash_crowd", "diurnal" or "regional_outage". *)

val traffic_str : traffic_spec -> string
(** "web" or "tcp". *)

val defence_str : defence -> string
(** "plain", "delta", "delta+sigma" or "delta+sigma+ecn". *)

val kind : t -> string
(** "attack", "sweep", "responsiveness", "rtt", "convergence",
    "overhead", "partial", "adversary" or "workload". *)

val seed : t -> int

val duration : t -> float

val scale_time : t -> factor:float -> t
(** Multiplies every temporal parameter (duration and the instants
    within it: attack onset, burst window, join times) by [factor],
    preserving the scenario's shape.  Protocol timing (slot durations)
    is not touched.  Used for abbreviated "--quick" batches. *)

val to_json : t -> Json.t
(** The spec as a JSON object, [kind] field included; every parameter
    appears so a result file documents exactly what produced it. *)

val pp : Format.formatter -> t -> unit
(** One-line human summary, e.g. "attack seed=7 duration=200s
    attack_at=100s mode=robust". *)
