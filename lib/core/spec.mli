(** First-class experiment specifications.

    Every experiment of the paper's evaluation (Figures 1, 7, 8a–8h,
    9a, 9b, plus the Section 3.2.3 incremental-deployment study) is
    described by a parameter record; [t] is the sum of those records.
    A spec is pure data: the same spec always produces the same result
    ({!Experiments.run} is a pure function of it), which is what lets
    {!Runner} farm batches of specs out to domains and still merge
    byte-identical outputs.

    Each record has a [default_*] value carrying the paper's settings;
    build variants with record update syntax:
    [{ Spec.default_attack with mode = Flid.Plain; duration = 60. }]. *)

type mode = Mcc_mcast.Flid.mode

type attack_params = {
  seed : int;
  duration : float;  (** simulated seconds *)
  attack_at : float;  (** when receiver F1 starts inflating *)
  mode : mode;
}
(** Figures 1 / 7: two multicast + two TCP sessions over a 1 Mbps
    bottleneck; receiver F1 inflates its subscription at [attack_at]. *)

type sweep_params = {
  seed : int;
  duration : float;
  sessions : int;  (** number of concurrent multicast sessions *)
  cross_traffic : bool;
      (** one TCP flow per session plus an on-off CBR (Figure 8d) *)
  mode : mode;
}
(** One point of Figures 8a–8d.  The figure's sweep is a batch of these
    specs, one per session count — independent runs, so they
    parallelise. *)

type responsiveness_params = {
  seed : int;
  duration : float;
  burst_start : float;
  burst_stop : float;
  burst_rate_bps : float;
  mode : mode;
}
(** Figure 8e: one session plus a CBR burst on a 1 Mbps bottleneck. *)

type rtt_params = {
  seed : int;
  duration : float;
  receivers : int;  (** RTTs spread uniformly over 30–220 ms *)
  mode : mode;
}
(** Figure 8f. *)

type convergence_params = {
  seed : int;
  duration : float;
  join_times : float list;  (** one receiver joins at each time *)
  mode : mode;
}
(** Figures 8g / 8h. *)

type overhead_axis = Groups | Slot

type overhead_params = {
  seed : int;
  duration : float;
  groups : int;
  slot : float;  (** slot duration in seconds *)
  axis : overhead_axis;
      (** which parameter the containing figure varies; selects the
          x coordinate of the resulting point (9a: groups, 9b: slot) *)
}
(** One point of Figures 9a / 9b: DELTA and SIGMA communication
    overhead, analytic and measured. *)

type partial_params = {
  seed : int;
  duration : float;
  attack_at : float;
}
(** Incremental deployment (paper Section 3.2.3): the same inflation
    attack behind a SIGMA edge router and behind a legacy IGMP one. *)

type t =
  | Attack of attack_params
  | Sweep of sweep_params
  | Responsiveness of responsiveness_params
  | Rtt of rtt_params
  | Convergence of convergence_params
  | Overhead of overhead_params
  | Partial of partial_params

val default_attack : attack_params
(** seed 7, 200 s, attack at 100 s, FLID-DS. *)

val default_sweep : sweep_params
(** seed 12 (the legacy API's seed 11 + sessions), 200 s, 1 session, no
    cross traffic, FLID-DS. *)

val default_responsiveness : responsiveness_params
(** seed 19, 100 s, 800 Kbps burst during [45 s, 75 s], FLID-DS. *)

val default_rtt : rtt_params
(** seed 23, 200 s, 20 receivers, FLID-DS. *)

val default_convergence : convergence_params
(** seed 29, 40 s, joins at 0/10/20/30 s, FLID-DS. *)

val default_overhead : overhead_params
(** seed 31, 30 s, 10 groups, 250 ms slots, [Groups] axis. *)

val default_partial : partial_params
(** seed 37, 120 s, attack at 40 s. *)

val kind : t -> string
(** "attack", "sweep", "responsiveness", "rtt", "convergence",
    "overhead" or "partial". *)

val seed : t -> int

val duration : t -> float

val scale_time : t -> factor:float -> t
(** Multiplies every temporal parameter (duration and the instants
    within it: attack onset, burst window, join times) by [factor],
    preserving the scenario's shape.  Protocol timing (slot durations)
    is not touched.  Used for abbreviated "--quick" batches. *)

val to_json : t -> Json.t
(** The spec as a JSON object, [kind] field included; every parameter
    appears so a result file documents exactly what produced it. *)

val pp : Format.formatter -> t -> unit
(** One-line human summary, e.g. "attack seed=7 duration=200s
    attack_at=100s mode=robust". *)
