module Topology = Mcc_net.Topology
module Node = Mcc_net.Node
module Link = Mcc_net.Link

type t = {
  topo : Topology.t;
  left : Node.t;
  right : Node.t;
  forward : Link.t;
  backward : Link.t;
  bottleneck_rate_bps : float;
  bottleneck_delay_s : float;
}

let create ?(bottleneck_delay_s = Defaults.bottleneck_delay_s) ?(ecn = false)
    ?packet_buffer sim ~bottleneck_rate_bps () =
  let topo = Topology.create sim in
  let left = Topology.add_node topo Node.Core_router in
  let right = Topology.add_node topo Node.Edge_router in
  let rtt =
    Defaults.path_rtt_s ~bottleneck_delay_s
      ~access_delay_s:Defaults.access_delay_s
  in
  let buffer = Defaults.buffer_bytes ~bottleneck_rate_bps ~rtt_s:rtt in
  let ecn_threshold_bytes = if ecn then Some (buffer / 2) else None in
  let buffer_packets =
    if packet_buffer = Some true then
      Some (max 2 (buffer / Defaults.packet_size))
    else None
  in
  let forward, backward =
    Topology.connect topo left right ~rate_bps:bottleneck_rate_bps
      ~delay_s:bottleneck_delay_s ~buffer_bytes:buffer ?buffer_packets
      ?ecn_threshold_bytes ()
  in
  { topo; left; right; forward; backward; bottleneck_rate_bps; bottleneck_delay_s }

let access_buffer t rate_bps =
  let rtt =
    Defaults.path_rtt_s ~bottleneck_delay_s:t.bottleneck_delay_s
      ~access_delay_s:Defaults.access_delay_s
  in
  Defaults.buffer_bytes ~bottleneck_rate_bps:rate_bps ~rtt_s:rtt

let add_sender ?(delay_s = Defaults.access_delay_s)
    ?(rate_bps = Defaults.access_rate_bps) t =
  let host = Topology.add_node t.topo Node.Host in
  let _ =
    Topology.connect t.topo host t.left ~rate_bps ~delay_s
      ~buffer_bytes:(access_buffer t rate_bps) ()
  in
  host

let add_receiver ?(delay_s = Defaults.access_delay_s)
    ?(rate_bps = Defaults.access_rate_bps) t =
  let host = Topology.add_node t.topo Node.Host in
  let _ =
    Topology.connect t.topo host t.right ~rate_bps ~delay_s
      ~buffer_bytes:(access_buffer t rate_bps) ()
  in
  host

let add_receiver_lan t ~hosts =
  let lan = Topology.add_node t.topo Node.Lan in
  let buffer = access_buffer t Defaults.access_rate_bps in
  let _ =
    Topology.connect t.topo lan t.right ~rate_bps:Defaults.access_rate_bps
      ~delay_s:Defaults.access_delay_s ~buffer_bytes:buffer ()
  in
  let members =
    List.init hosts (fun _ ->
        let host = Topology.add_node t.topo Node.Host in
        let _ =
          Topology.connect t.topo host lan ~rate_bps:Defaults.access_rate_bps
            ~delay_s:0.0001 ~buffer_bytes:buffer ()
        in
        host)
  in
  (lan, members)

let finalize t = Topology.compute_routes t.topo
