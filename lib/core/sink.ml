module Metrics = Mcc_obs.Metrics
module Profile = Mcc_obs.Profile
module Timeseries = Mcc_obs.Timeseries

type record = {
  name : string;
  group : string;
  spec : Spec.t;
  result : Experiments.result;
  metrics : (string * Metrics.value) list;
  series : (string * (float * float) list) list;
  profile : Profile.t option;
}

type t = { emit : record -> unit; close : unit -> unit }

let emit t record = t.emit record
let close t = t.close ()
let map f inner = { emit = (fun r -> inner.emit (f r)); close = inner.close }

let jsonl write =
  let emit r =
    let fields =
      [
        ("name", Json.String r.name);
        ("group", Json.String r.group);
        ("kind", Json.String (Spec.kind r.spec));
        ("spec", Spec.to_json r.spec);
        ("result", Report.result_json r.result);
      ]
      @ (if r.metrics = [] then []
         else [ ("metrics", Metrics.values_json r.metrics) ])
      (* The profile carries the only nondeterministic fields (wall
         clock); keeping it last lets consumers compare lines up to
         "wall_s" across job counts. *)
      @ match r.profile with
        | Some p -> [ ("profile", Profile.to_json p) ]
        | None -> []
    in
    write (Json.to_string (Json.Obj fields) ^ "\n")
  in
  { emit; close = (fun () -> ()) }

(* RFC 4180: quote a field when it contains a comma, a quote, or a line
   break; double embedded quotes. *)
let csv_field s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s then begin
    let buf = Buffer.create (String.length s + 8) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let csv write =
  write "name,group,metric,value\n";
  let emit r =
    let row metric value =
      write
        (Printf.sprintf "%s,%s,%s,%.12g\n" (csv_field r.name)
           (csv_field r.group) (csv_field metric) value)
    in
    List.iter (fun (metric, value) -> row metric value) (Report.summary r.result);
    (* Counters and gauges are deterministic; histograms and the wall
       clock profile don't fit the long format and are jsonl-only. *)
    List.iter
      (fun (name, value) ->
        match value with
        | Metrics.Counter n -> row name (float_of_int n)
        | Metrics.Gauge v -> row name v
        | Metrics.Histogram _ -> ())
      r.metrics
  in
  { emit; close = (fun () -> ()) }

let to_file make path =
  let oc = open_out path in
  let sink = make (output_string oc) in
  {
    emit = sink.emit;
    close =
      (fun () ->
        sink.close ();
        close_out oc);
  }

let jsonl_file path = to_file jsonl path
let csv_file path = to_file csv path

(* One line per run, series only: the shape [mcc report] parses back.
   The spec rides along so the report can recover attack_at and the
   horizon without the original registry. *)
let series_jsonl write =
  let emit r =
    if r.series <> [] then
      write
        (Json.to_string
           (Json.Obj
              [
                ("name", Json.String r.name);
                ("group", Json.String r.group);
                ("kind", Json.String (Spec.kind r.spec));
                ("spec", Spec.to_json r.spec);
                ("series", Timeseries.snapshot_json r.series);
              ])
        ^ "\n")
  in
  { emit; close = (fun () -> ()) }

let series_jsonl_file path = to_file series_jsonl path

let pretty fmt =
  let emit r =
    Report.heading fmt (Printf.sprintf "%s (%s)" r.name (Spec.kind r.spec));
    Format.fprintf fmt "spec: %a@." Spec.pp r.spec;
    Report.result fmt r.result;
    match r.profile with
    | Some p -> Format.fprintf fmt "profile: %a@." Profile.pp p
    | None -> ()
  in
  { emit; close = (fun () -> Format.pp_print_flush fmt ()) }

let multi sinks =
  {
    emit = (fun r -> List.iter (fun s -> s.emit r) sinks);
    close = (fun () -> List.iter (fun s -> s.close ()) sinks);
  }
