(** One entry point per experiment figure of the paper (Figures 1, 7,
    8a-8h, 9a, 9b).  Each function builds the paper's Section 5.1
    setting, runs it, and returns the series/rows the figure plots.
    Durations are parameters so tests can run abbreviated versions; the
    defaults are the paper's. *)

type series = (float * float) list

(** {1 Figures 1 and 7: inflated subscription, plain and protected} *)

type attack_result = {
  f1 : series;  (** the (mis)behaving receiver, smoothed Kbps over time *)
  f2 : series;
  t1 : series;
  t2 : series;
  f1_before : float;  (** mean Kbps in the second half before the attack *)
  f1_after : float;  (** mean Kbps over the attack period *)
  f2_after : float;
  t1_after : float;
  t2_after : float;
}

val attack :
  ?seed:int ->
  ?duration:float ->
  ?attack_at:float ->
  mode:Mcc_mcast.Flid.mode ->
  unit ->
  attack_result
(** Two multicast + two TCP sessions over a 1 Mbps bottleneck; receiver
    F1 inflates its subscription from [attack_at] (default 100 s) on. *)

(** {1 Figures 8a-8d: throughput vs number of sessions} *)

type sweep_point = {
  sessions : int;
  individual_kbps : float list;  (** one entry per multicast receiver *)
  average_kbps : float;
}

val throughput_vs_sessions :
  ?seed:int ->
  ?duration:float ->
  ?cross_traffic:bool ->
  mode:Mcc_mcast.Flid.mode ->
  counts:int list ->
  unit ->
  sweep_point list
(** [cross_traffic] adds one TCP flow per multicast session plus an
    on-off CBR at 10% of the bottleneck (5 s periods) — Figure 8d. *)

(** {1 Figure 8e: responsiveness} *)

type responsiveness_result = {
  multicast : series;  (** smoothed Kbps *)
  burst_start : float;
  burst_stop : float;
  before_kbps : float;
  during_kbps : float;
  after_kbps : float;
}

val responsiveness :
  ?seed:int -> ?duration:float -> mode:Mcc_mcast.Flid.mode -> unit ->
  responsiveness_result
(** One multicast session and an 800 Kbps on-off CBR active during
    [45 s, 75 s] over a 1 Mbps bottleneck. *)

(** {1 Figure 8f: heterogeneous round-trip times} *)

val rtt_fairness :
  ?seed:int ->
  ?duration:float ->
  ?receivers:int ->
  mode:Mcc_mcast.Flid.mode ->
  unit ->
  (float * float) list
(** One session, [receivers] (default 20) receivers whose RTTs spread
    uniformly over [30 ms, 220 ms] (bottleneck delay 5 ms).  Returns
    (rtt_ms, average Kbps) rows. *)

(** {1 Figures 8g and 8h: subscription convergence} *)

val convergence :
  ?seed:int ->
  ?duration:float ->
  ?join_times:float list ->
  mode:Mcc_mcast.Flid.mode ->
  unit ->
  series list
(** One 250 Kbps-bottleneck session; receivers join at [join_times]
    (default 0/10/20/30 s).  Returns one smoothed throughput series per
    receiver. *)

(** {1 Incremental deployment (paper Section 3.2.3)} *)

type partial_result = {
  protected_attacker_kbps : float;
      (** inflating receiver behind a SIGMA edge router *)
  unprotected_attacker_kbps : float;
      (** the same attack behind a legacy IGMP router *)
  honest_kbps : float;  (** a well-behaved receiver behind the SIGMA edge *)
}

val partial_deployment :
  ?seed:int -> ?duration:float -> ?attack_at:float -> unit -> partial_result
(** Three FLID-DS sessions share a 750 kbps bottleneck; two receivers
    inflate at [attack_at], one behind each kind of edge router.  Even a
    partial SIGMA deployment protects its own receivers (the protected
    attacker stays near its fair share) while the legacy edge lets the
    attack through. *)

(** {1 Figures 9a and 9b: communication overhead} *)

type overhead_point = {
  x : float;  (** number of groups (9a) or slot duration (9b) *)
  delta_analytic : float;  (** percent *)
  sigma_analytic : float;
  delta_measured : float;
  sigma_measured : float;
}

val overhead_vs_groups :
  ?seed:int -> ?duration:float -> ?groups_list:int list -> unit ->
  overhead_point list
(** FLID-DS session at cumulative rate 4 Mbps, 500-byte packets,
    16-bit keys, t = 250 ms; N varies (default 2..20). *)

val overhead_vs_slot :
  ?seed:int -> ?duration:float -> ?slots:float list -> unit ->
  overhead_point list
(** Same session with N = 10 and the slot duration varying (default
    0.2..1.0 s). *)
