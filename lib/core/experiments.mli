(** The paper's experiments (Figures 1, 7, 8a–8h, 9a, 9b and the
    Section 3.2.3 deployment study) as pure functions of {!Spec}
    parameter records.

    Each [run_*] function builds the paper's Section 5.1 setting from
    its record, runs it to the record's horizon, and returns the
    series/rows the figure plots.  [run] dispatches a {!Spec.t} to the
    matching experiment and wraps the outcome in {!result}; it is the
    single entry point the {!Runner} executes — one call, one isolated
    simulation, no shared mutable state between calls.

    The legacy optional-argument entry points are kept as thin
    deprecated wrappers for one release; new code should build a spec
    record (start from the [Spec.default_*] values) instead. *)

type series = (float * float) list

(** {1 Figures 1 and 7: inflated subscription, plain and protected} *)

type attack_result = {
  f1 : series;  (** the (mis)behaving receiver, smoothed Kbps over time *)
  f2 : series;
  t1 : series;
  t2 : series;
  f1_before : float;  (** mean Kbps in the second half before the attack *)
  f1_after : float;  (** mean Kbps over the attack period *)
  f2_after : float;
  t1_after : float;
  t2_after : float;
}

val run_attack : Spec.attack_params -> attack_result
(** Two multicast + two TCP sessions over a 1 Mbps bottleneck; receiver
    F1 inflates its subscription from [attack_at] on. *)

(** {1 Figures 8a-8d: throughput vs number of sessions} *)

type sweep_point = {
  sessions : int;
  individual_kbps : float list;  (** one entry per multicast receiver *)
  average_kbps : float;
}

val run_sweep : Spec.sweep_params -> sweep_point
(** One point of the figure's sweep: [sessions] concurrent multicast
    sessions on a proportionally provisioned bottleneck;
    [cross_traffic] adds one TCP flow per session plus an on-off CBR at
    10% of the bottleneck (5 s periods) — Figure 8d. *)

(** {1 Figure 8e: responsiveness} *)

type responsiveness_result = {
  multicast : series;  (** smoothed Kbps *)
  burst_start : float;
  burst_stop : float;
  before_kbps : float;
  during_kbps : float;
  after_kbps : float;
}

val run_responsiveness : Spec.responsiveness_params -> responsiveness_result
(** One multicast session and an on-off CBR burst active during
    [burst_start, burst_stop] over a 1 Mbps bottleneck. *)

(** {1 Figure 8f: heterogeneous round-trip times} *)

val run_rtt : Spec.rtt_params -> (float * float) list
(** One session, [receivers] receivers whose RTTs spread uniformly over
    [30 ms, 220 ms] (bottleneck delay 5 ms).  Returns (rtt_ms,
    average Kbps) rows. *)

(** {1 Figures 8g and 8h: subscription convergence} *)

val run_convergence : Spec.convergence_params -> series list
(** One 250 Kbps-bottleneck session; receivers join at [join_times].
    Returns one smoothed throughput series per receiver. *)

(** {1 Incremental deployment (paper Section 3.2.3)} *)

type partial_result = {
  protected_attacker_kbps : float;
      (** inflating receiver behind a SIGMA edge router *)
  unprotected_attacker_kbps : float;
      (** the same attack behind a legacy IGMP router *)
  honest_kbps : float;  (** a well-behaved receiver behind the SIGMA edge *)
}

val run_partial : Spec.partial_params -> partial_result
(** Three FLID-DS sessions share a 750 kbps bottleneck; two receivers
    inflate at [attack_at], one behind each kind of edge router.  Even a
    partial SIGMA deployment protects its own receivers (the protected
    attacker stays near its fair share) while the legacy edge lets the
    attack through. *)

(** {1 Figures 9a and 9b: communication overhead} *)

type overhead_point = {
  x : float;  (** number of groups (9a) or slot duration (9b) *)
  delta_analytic : float;  (** percent *)
  sigma_analytic : float;
  delta_measured : float;
  sigma_measured : float;
}

val run_overhead : Spec.overhead_params -> overhead_point
(** FLID-DS session at cumulative rate 4 Mbps, 500-byte packets, 16-bit
    keys; the spec's [axis] picks which parameter lands in [x]. *)

(** {1 Spec dispatch} *)

type result =
  | Attack of attack_result
  | Sweep_point of sweep_point
  | Responsiveness of responsiveness_result
  | Rtt of (float * float) list
  | Convergence of series list
  | Overhead of overhead_point
  | Partial of partial_result

val run : Spec.t -> result
(** Runs the experiment a spec describes.  Deterministic: the result is
    a pure function of the spec.  Each call owns its simulator and PRNG
    state, so concurrent calls from different domains do not interact. *)

(** {1 Deprecated wrappers (pre-spec API)}

    Thin shims over the [run_*] functions above, preserved for one
    release so external callers keep compiling.  Defaults are the
    paper's. *)

val attack :
  ?seed:int ->
  ?duration:float ->
  ?attack_at:float ->
  mode:Mcc_mcast.Flid.mode ->
  unit ->
  attack_result
[@@deprecated "Use run_attack with a Spec.attack_params record."]

val throughput_vs_sessions :
  ?seed:int ->
  ?duration:float ->
  ?cross_traffic:bool ->
  mode:Mcc_mcast.Flid.mode ->
  counts:int list ->
  unit ->
  sweep_point list
[@@deprecated
  "Use run_sweep with one Spec.sweep_params record per session count."]

val responsiveness :
  ?seed:int -> ?duration:float -> mode:Mcc_mcast.Flid.mode -> unit ->
  responsiveness_result
[@@deprecated "Use run_responsiveness with a Spec.responsiveness_params record."]

val rtt_fairness :
  ?seed:int ->
  ?duration:float ->
  ?receivers:int ->
  mode:Mcc_mcast.Flid.mode ->
  unit ->
  (float * float) list
[@@deprecated "Use run_rtt with a Spec.rtt_params record."]

val convergence :
  ?seed:int ->
  ?duration:float ->
  ?join_times:float list ->
  mode:Mcc_mcast.Flid.mode ->
  unit ->
  series list
[@@deprecated "Use run_convergence with a Spec.convergence_params record."]

val partial_deployment :
  ?seed:int -> ?duration:float -> ?attack_at:float -> unit -> partial_result
[@@deprecated "Use run_partial with a Spec.partial_params record."]

val overhead_vs_groups :
  ?seed:int -> ?duration:float -> ?groups_list:int list -> unit ->
  overhead_point list
[@@deprecated "Use run_overhead with one Spec.overhead_params record per point."]

val overhead_vs_slot :
  ?seed:int -> ?duration:float -> ?slots:float list -> unit ->
  overhead_point list
[@@deprecated "Use run_overhead with one Spec.overhead_params record per point."]
