(** The paper's experiments (Figures 1, 7, 8a–8h, 9a, 9b and the
    Section 3.2.3 deployment study) as pure functions of {!Spec}
    parameter records.

    Each [run_*] function builds the paper's Section 5.1 setting from
    its record, runs it to the record's horizon, and returns the
    series/rows the figure plots.  [run] dispatches a {!Spec.t} to the
    matching experiment and wraps the outcome in {!result}; it is the
    single entry point the {!Runner} executes — one call, one isolated
    simulation, no shared mutable state between calls.

    Build specs from the [Spec.default_*] records with update syntax;
    the pre-spec optional-argument wrappers were removed after their
    one-release deprecation window. *)

type series = (float * float) list

(** {1 Figures 1 and 7: inflated subscription, plain and protected} *)

type attack_result = {
  f1 : series;  (** the (mis)behaving receiver, smoothed Kbps over time *)
  f2 : series;
  t1 : series;
  t2 : series;
  f1_before : float;  (** mean Kbps in the second half before the attack *)
  f1_after : float;  (** mean Kbps over the attack period *)
  f2_after : float;
  t1_after : float;
  t2_after : float;
}

val run_attack : Spec.attack_params -> attack_result
(** Two multicast + two TCP sessions over a 1 Mbps bottleneck; receiver
    F1 inflates its subscription from [attack_at] on. *)

(** {1 Figures 8a-8d: throughput vs number of sessions} *)

type sweep_point = {
  sessions : int;
  individual_kbps : float list;  (** one entry per multicast receiver *)
  average_kbps : float;
}

val run_sweep : Spec.sweep_params -> sweep_point
(** One point of the figure's sweep: [sessions] concurrent multicast
    sessions on a proportionally provisioned bottleneck;
    [cross_traffic] adds one TCP flow per session plus an on-off CBR at
    10% of the bottleneck (5 s periods) — Figure 8d. *)

(** {1 Figure 8e: responsiveness} *)

type responsiveness_result = {
  multicast : series;  (** smoothed Kbps *)
  burst_start : float;
  burst_stop : float;
  before_kbps : float;
  during_kbps : float;
  after_kbps : float;
}

val run_responsiveness : Spec.responsiveness_params -> responsiveness_result
(** One multicast session and an on-off CBR burst active during
    [burst_start, burst_stop] over a 1 Mbps bottleneck. *)

(** {1 Figure 8f: heterogeneous round-trip times} *)

val run_rtt : Spec.rtt_params -> (float * float) list
(** One session, [receivers] receivers whose RTTs spread uniformly over
    [30 ms, 220 ms] (bottleneck delay 5 ms).  Returns (rtt_ms,
    average Kbps) rows. *)

(** {1 Figures 8g and 8h: subscription convergence} *)

val run_convergence : Spec.convergence_params -> series list
(** One 250 Kbps-bottleneck session; receivers join at [join_times].
    Returns one smoothed throughput series per receiver. *)

(** {1 Incremental deployment (paper Section 3.2.3)} *)

type partial_result = {
  protected_attacker_kbps : float;
      (** inflating receiver behind a SIGMA edge router *)
  unprotected_attacker_kbps : float;
      (** the same attack behind a legacy IGMP router *)
  honest_kbps : float;  (** a well-behaved receiver behind the SIGMA edge *)
}

val run_partial : Spec.partial_params -> partial_result
(** Three FLID-DS sessions share a 750 kbps bottleneck; two receivers
    inflate at [attack_at], one behind each kind of edge router.  Even a
    partial SIGMA deployment protects its own receivers (the protected
    attacker stays near its fair share) while the legacy edge lets the
    attack through. *)

(** {1 Figures 9a and 9b: communication overhead} *)

type overhead_point = {
  x : float;  (** number of groups (9a) or slot duration (9b) *)
  delta_analytic : float;  (** percent *)
  sigma_analytic : float;
  delta_measured : float;
  sigma_measured : float;
}

val run_overhead : Spec.overhead_params -> overhead_point
(** FLID-DS session at cumulative rate 4 Mbps, 500-byte packets, 16-bit
    keys; the spec's [axis] picks which parameter lands in [x]. *)

(** {1 Adversary cells (defence-evaluation matrix)} *)

type adversary_result = {
  honest_before_kbps : float;  (** honest receiver before the attack *)
  honest_after_kbps : float;  (** honest receiver once the attack runs *)
  honest_loss_pct : float;  (** 100 * (1 - after / before), clamped at 0 *)
  attacker_kbps : float;  (** adversary goodput during the attack *)
  attacker_gain : float;  (** [attacker_kbps] / fair share *)
  containment_s : float option;
      (** seconds from attack start until the adversary's goodput drops
          to (and stays within) 1.5 fair shares; [None] = never
          contained within the horizon *)
  tcp_kbps : float;  (** the competing TCP flow during the attack *)
  keys_rejected : int;  (** edge-router stats; 0 without an agent *)
  lockouts : int;
  grace_admissions : int;
}
(** Per-cell damage metrics of the attack × protocol × defence matrix. *)

val run_adversary : Spec.adversary_params -> adversary_result
(** One matrix cell.  Implemented by [Mcc_attack.Matrix] (which depends
    on this library and needs the strategy library); raises [Failure]
    if the [mcc_attack] library is not linked into the executable. *)

val set_adversary_impl : (Spec.adversary_params -> adversary_result) -> unit
(** Registers the cell runner; called by [Mcc_attack.Matrix] at module
    initialisation.  Not for general use. *)

(** {1 Declarative workloads} *)

type workload_result = {
  w_nodes : int;  (** nodes in the generated topology *)
  w_links : int;
  w_receivers : int;  (** receiver instances started (churn included) *)
  w_mean_goodput_kbps : float;
      (** mean over receivers of each receiver's goodput over its own
          active window (post-warmup) *)
  w_min_goodput_kbps : float;
  w_max_goodput_kbps : float;
  w_cross_kbps : float;  (** background traffic delivered, all flows *)
  w_attacker_kbps : float;  (** 0 without an attack *)
  w_drops : int;  (** queue drops summed over every link *)
  w_marks : int;  (** ECN marks summed over every link *)
  w_keys_rejected : int;  (** edge-agent stats; 0 without SIGMA *)
  w_lockouts : int;
}
(** Aggregate outcome of one declarative workload run. *)

val run_workload : Spec.workload_params -> workload_result
(** One workload: generated topology, one session, churn, traffic, and
    optionally an attacker.  Implemented by [Mcc_workload.Build] (which
    depends on this library and the topology generators); raises
    [Failure] if the [mcc_workload] library is not linked into the
    executable. *)

val set_workload_impl : (Spec.workload_params -> workload_result) -> unit
(** Registers the workload builder; called by [Mcc_workload.Build] at
    module initialisation.  Not for general use. *)

(** {1 Spec dispatch} *)

type result =
  | Attack of attack_result
  | Sweep_point of sweep_point
  | Responsiveness of responsiveness_result
  | Rtt of (float * float) list
  | Convergence of series list
  | Overhead of overhead_point
  | Partial of partial_result
  | Adversary of adversary_result
  | Workload of workload_result

val run : Spec.t -> result
(** Runs the experiment a spec describes.  Deterministic: the result is
    a pure function of the spec.  Each call owns its simulator and PRNG
    state, so concurrent calls from different domains do not interact. *)
