(** Cross-run history and regression diffing over the {!Mcc_obs.Ledger}.

    This module owns the ledger's payload conventions and their
    consumers — building the entry a CLI invocation records, rendering
    the [mcc history] trend table (with {!Forensics.sparkline}s), and
    computing the [mcc diff] comparison of two entries.

    Payload convention (the deterministic body):
    {v
    {"config": {"command": "run", "jobs-independent flags",
                "entries": [{"name", "group", "spec": {...}}, ...]},
     "rows":   [{"name", "summary": {...}, "metrics": {...},
                 "profile": {"sched", "events", "queue_capacity",
                             "sched_stats"?}}, ...]}
    v}
    The digest covers ["config"] only, so two runs of the same selection
    share a digest whatever their outcome.  Everything wall-derived —
    recording time, wall seconds, events/s figures, profiler self
    times — goes in the entry's [wall] suffix:
    [{"recorded_unix_s", "wall_s", "events_per_sec",
    "figures": {name -> events/s}, "prof"?: {path -> self_s}}]. *)

val run_payload :
  command:string -> config:(string * Json.t) list -> Runner.row list -> Json.t
(** The deterministic payload for a batch: a ["config"] object
    ([{"command": command} @ config @ {"entries": ...}]) and one
    ["rows"] element per row — result summary ({!Report.summary}),
    metrics snapshot, and the deterministic profile fields ([sched],
    [events], [queue_capacity], [sched_stats]; never [wall_s]). *)

val run_wall : recorded:float -> Runner.row list -> (string * Json.t) list
(** The wall suffix for a batch: [recorded_unix_s], summed [wall_s],
    aggregate [events_per_sec], and a ["figures"] object mapping each
    row name to its own events/s. *)

val prof_wall : Mcc_obs.Prof.entry list -> (string * Json.t) list
(** An extra wall field for instrumented runs: [{"prof": {path ->
    self_s}}] over the self-profiler snapshot ([[]] when the snapshot is
    empty), for {!diff}'s self-time drift section. *)

val entry_of_document : Json.t -> (Mcc_obs.Ledger.entry, string) result
(** Adapts a standalone JSON document to a ledger entry so [mcc diff]
    can take files as well as ledger selectors: a document that parses
    as a full entry is returned as such; a flat object of numbers (the
    bench baseline format) becomes a synthetic [seq = 0] bench entry
    whose numbers are the [wall] ["figures"]. *)

val find_value : Mcc_obs.Ledger.entry -> key:string -> float option
(** The named numeric series value of an entry, searching in order: the
    wall ["figures"] object, the wall fields themselves ([wall_s],
    [events_per_sec], ...), then the payload rows — a ["summary"] or
    ["metrics"] member named [key], averaged across rows when several
    carry it.  Histogram-valued metrics are not findable. *)

val history_table :
  ?metric:string -> ?width:int -> Mcc_obs.Ledger.entry list -> string
(** The [mcc history] rendering: one line per entry (seq, kind, label,
    digest, recording time, headline figure) followed — when at least
    two entries carry the selected series — by a trend block with a
    {!Forensics.sparkline} ([width] characters, default 40).  [metric]
    selects the series through {!find_value}; the default is
    [events_per_sec].  Entries missing the series are skipped in the
    trend but still listed. *)

type delta = {
  key : string;
  va : float;  (** value in the first (older) entry *)
  vb : float;  (** value in the second (newer) entry *)
  pct : float option;  (** relative change, [None] when [va = 0] *)
}

type diff_report = {
  rendering : string;  (** the full [mcc diff] text *)
  drifted : int;  (** deterministic payload fields that differ *)
  regressions : delta list;
      (** figures that dropped by more than the threshold *)
}

val diff :
  ?threshold:float ->
  Mcc_obs.Ledger.entry ->
  Mcc_obs.Ledger.entry ->
  diff_report
(** Compares two entries, oldest first.  Sections: config digests
    (match or drift); deterministic payload drift (a field-by-field
    comparison of the flattened payloads — the count is [drifted] and
    same-config same-code runs report zero); figure deltas from the
    wall ["figures"] objects, flagging any figure that dropped by more
    than [threshold] (default 0.05) as a regression (figures are
    throughput rates, so only drops regress); wall/events-per-sec
    drift; and profiler self-time drift when both entries carry a wall
    ["prof"] table. *)
