(** Attack-forensics reports: turn a saved run's sampled series (the
    [Sink.series_jsonl] format) and optionally its trace (the
    [Tracer.jsonl] format) into a Markdown report with ASCII sparklines
    — who inflated their subscription, when SIGMA evicted them, and how
    long receiver throughput took to recover — without rerunning the
    simulation.  This is the engine behind [mcc report]. *)

(** One sampled run, as read back from a series JSONL line. *)
type run = {
  name : string;  (** registry name, e.g. "fig1" *)
  group : string;
  kind : string;  (** spec kind, e.g. "attack" *)
  spec : Json.t;  (** the spec as written by the sink; [Null] if absent *)
  series : (string * (float * float) list) list;
}

(** One trace record, as read back from a trace JSONL line. *)
type trace_event = {
  time : float;
  level : string;
  component : string;
  event : string;
  attrs : (string * Json.t) list;
}

val parse_series_line : string -> (run, string) result
val parse_trace_line : string -> (trace_event, string) result

val parse_series_lines : string list -> (run list, string) result
(** Parse a whole file's lines (blank lines skipped); the error names
    the offending 1-based line. *)

val parse_trace_lines : string list -> (trace_event list, string) result

val sparkline : ?width:int -> (float * float) list -> string
(** An ASCII sparkline of the series, [width] characters wide (default
    60): points are binned by time, bins averaged, and values mapped
    onto the ramp [' ' .. '@']; empty bins stay blank.  A constant
    positive series renders at full height, a constant zero one at the
    lowest mark. *)

val lineage_of_json : Json.t -> (Mcc_obs.Lineage.summary, string) result
(** Inverse of {!Mcc_obs.Lineage.to_json}: read a saved lineage summary
    back (missing fields default to zero/empty), so [mcc report
    --profile] can render containment latency from a profile file
    without rerunning the simulation. *)

val render_lineage :
  ?attack_at:float ->
  ?containment_s:float ->
  Format.formatter ->
  Mcc_obs.Lineage.summary ->
  unit
(** The containment-latency sections of a profiled run: a per-hop
    Markdown table over the aggregated transitions (count, total, mean
    and max latency per [from -> to] pair) and — when the summary
    preserved a "key_reject" case — the containment critical path: the
    attacker's first rejected key (receiver, group, key as captured, one
    line per hop with its latency delta), anchored against [attack_at]
    and [containment_s] when known. *)

val render :
  ?width:int -> ?trace:trace_event list -> Format.formatter -> run -> unit
(** The Markdown report: a sparkline block per dotted series family, a
    SIGMA timeline merging key-failure trace spans with the
    "sigma.evictions" series, and — when the spec has an [attack_at] —
    a per-receiver throughput-recovery table (pre-attack mean,
    post-attack mean, first time back at 90% of the pre-attack mean). *)
