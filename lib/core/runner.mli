(** Experiment registry and multicore batch runner.

    Every figure of the paper's evaluation is registered here as one or
    more named {!Spec.t} values — sweeps (Figures 8a–8d, 9a, 9b) are
    split into one spec per point, so a batch parallelises across its
    whole surface.  [run_batch] executes a batch across OCaml 5 domains:
    each run is fully isolated (its own [Sim.t], PRNG, meters — the
    simulator keeps no cross-run mutable globals), results land in a
    slot per entry, and sinks are fed strictly in entry order after the
    batch completes.  Serial and parallel executions of the same batch
    therefore produce byte-identical sink output. *)

type entry = {
  name : string;  (** unique, e.g. "fig8a-n04" *)
  group : string;  (** the figure it belongs to, e.g. "fig8a" *)
  doc : string;
  spec : Spec.t;
}

val all : unit -> entry list
(** Every registered experiment, in figure order. *)

val groups : unit -> string list
(** The distinct group names, in figure order. *)

val find : string -> entry list
(** Entries whose [name] or [group] equals the argument ([] if none). *)

val lookup : string -> entry option
(** Exact-name lookup. *)

val run_spec : Spec.t -> Experiments.result
(** Alias of {!Experiments.run}: one isolated simulation. *)

val run_specs :
  ?jobs:int ->
  ?sched:Mcc_engine.Scheduler.backend ->
  Spec.t list ->
  Experiments.result list
(** Executes the specs on up to [jobs] domains (default 1; capped at
    the spec count).  Results are returned in input order regardless of
    completion order.  If a run raises, the exception is re-raised
    after the batch drains.

    [sched] selects the event-scheduler backend for every run.  It is
    applied as the domain-local {!Mcc_engine.Scheduler.set_default}
    inside each worker — worker domains start from a fresh default, so
    setting it before spawning would not reach them — and restored
    afterwards.  Backends fire identical schedules
    ({!Mcc_engine.Scheduler}), so results do not depend on the choice. *)

val run_spec_profiled :
  ?sched:Mcc_engine.Scheduler.backend ->
  ?sample_dt:float ->
  Spec.t ->
  Experiments.result * (string * Mcc_obs.Metrics.value) list
  * (string * (float * float) list) list
  * Mcc_obs.Profile.t
(** One isolated run bracketed by the per-run metrics protocol: the
    domain's registry is reset, a catalog of every metric the simulator
    can emit is preregistered (so snapshots share one schema across
    specs — a Plain-mode run still lists the sigma.* counters, at
    zero), the spec runs, and the snapshot plus an event-loop profile
    are returned with the registry reset again.  [sched] behaves as in
    {!run_specs}; the profile records the backend name the run executed
    on.  With [sample_dt],
    time-series sampling ({!Mcc_obs.Timeseries}) is enabled at that
    period for the duration of the run and the recorded series (sorted
    by name) are the third component; without it the series list is
    empty and sampling costs nothing.  Snapshots and series are fully
    deterministic; only the profile's wall-clock fields vary between
    executions. *)

val run_specs_profiled :
  ?jobs:int ->
  ?sched:Mcc_engine.Scheduler.backend ->
  ?sample_dt:float ->
  Spec.t list ->
  (Experiments.result * (string * Mcc_obs.Metrics.value) list
   * (string * (float * float) list) list
   * Mcc_obs.Profile.t)
  list
(** {!run_spec_profiled} with the scheduling of {!run_specs}.  Each
    domain's metrics registry and series store are domain-local, and
    sampling is switched on inside the worker, so parallel runs cannot
    bleed counts into each other and [--jobs N] series are
    byte-identical to serial ones. *)

type instrumented = {
  i_result : Experiments.result;
  i_metrics : (string * Mcc_obs.Metrics.value) list;
  i_profile : Mcc_obs.Profile.t;
  i_prof : Mcc_obs.Prof.entry list;  (** self-profiler component tree *)
  i_lineage : Mcc_obs.Lineage.summary;  (** per-hop latency + case log *)
}

val run_spec_instrumented :
  ?sched:Mcc_engine.Scheduler.backend ->
  ?sample_dt:float ->
  Spec.t ->
  instrumented
(** {!run_spec_profiled} with the {!Mcc_obs.Prof} self-profiler and
    {!Mcc_obs.Lineage} packet-lineage collection enabled for the run
    (both are restored to off before returning).  The whole experiment
    executes under a root "run" span, so the snapshot's self times sum
    to the span-covered share of the measured wall time.  Prof and
    Lineage state is domain-local; the run and both snapshots happen on
    the calling domain, which is why there is no batch variant — [mcc
    profile] runs one entry at a time. *)

type row = {
  entry : entry;
  result : Experiments.result;
  metrics : (string * Mcc_obs.Metrics.value) list;
  series : (string * (float * float) list) list;
  profile : Mcc_obs.Profile.t;
}

val run_batch :
  ?jobs:int ->
  ?sched:Mcc_engine.Scheduler.backend ->
  ?sample_dt:float ->
  ?sinks:Sink.t list ->
  ?on_progress:(Mcc_obs.Progress.sample -> unit) ->
  ?progress_interval:float ->
  entry list ->
  row list
(** {!run_specs_profiled} over a batch of registry entries; after all
    runs complete, each row is emitted to every sink in entry order.
    The caller retains ownership of the sinks (they are not closed).

    With [on_progress], a {!Mcc_obs.Progress} monitor watches the sweep:
    workers report each finished cell and the callback receives periodic
    samples (every [progress_interval] seconds, default 0.2) plus one
    final sample when the batch drains.  The callback fires at
    host-timing-dependent moments on the monitor domain, so it must only
    drive ephemeral output (the CLI's stderr meter) — sink output is fed
    after the batch in entry order and stays byte-identical whether or
    not a monitor is attached, for any [jobs]. *)
