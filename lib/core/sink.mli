(** Pluggable result sinks for the experiment runner.

    A sink consumes one {!record} per completed run.  The runner always
    feeds records in registry order (independent of how many domains
    executed the batch), so file sinks produce byte-identical output
    for [--jobs 1] and [--jobs N]. *)

type record = {
  name : string;  (** registry name, e.g. "fig8a-n04" *)
  group : string;  (** figure the run belongs to, e.g. "fig8a" *)
  spec : Spec.t;
  result : Experiments.result;
}

type t

val emit : t -> record -> unit
val close : t -> unit
(** Flushes and releases whatever the sink holds (a no-op for
    writer-backed sinks). *)

val jsonl : (string -> unit) -> t
(** One JSON object per record, newline-terminated:
    [{"name":..., "group":..., "kind":..., "spec":{...}, "result":{...}}].
    The writer receives complete lines. *)

val csv : (string -> unit) -> t
(** Long-format CSV: a ["name,group,metric,value"] header (written
    immediately), then one row per scalar metric of each record
    ({!Report.summary}).  Fields are RFC-4180 quoted when needed. *)

val jsonl_file : string -> t
(** [jsonl] writing to a file (truncated); [close] closes it. *)

val csv_file : string -> t
(** [csv] writing to a file (truncated); [close] closes it. *)

val pretty : Format.formatter -> t
(** Human-readable rendering: a heading per record followed by the
    {!Report.result} printer — what the CLI shows on stdout. *)

val multi : t list -> t
(** Fans every record out to each sink in order. *)
