(** Pluggable result sinks for the experiment runner.

    A sink consumes one {!record} per completed run.  The runner always
    feeds records in registry order (independent of how many domains
    executed the batch), so file sinks produce byte-identical output
    for [--jobs 1] and [--jobs N]. *)

type record = {
  name : string;  (** registry name, e.g. "fig8a-n04" *)
  group : string;  (** figure the run belongs to, e.g. "fig8a" *)
  spec : Spec.t;
  result : Experiments.result;
  metrics : (string * Mcc_obs.Metrics.value) list;
      (** the run's metric snapshot, sorted by name ([] when the caller
          did not capture one) *)
  series : (string * (float * float) list) list;
      (** sampled time series, sorted by name ([] when the run was not
          sampled) *)
  profile : Mcc_obs.Profile.t option;
      (** event-loop profile; its wall-clock fields are the only
          nondeterministic content of a record *)
}

type t

val emit : t -> record -> unit
val close : t -> unit
(** Flushes and releases whatever the sink holds (a no-op for
    writer-backed sinks). *)

val map : (record -> record) -> t -> t
(** [map f sink] feeds [f record] to [sink]; closing the wrapper closes
    [sink].  Use to e.g. drop the (nondeterministic) profile when the
    output must be byte-stable across machines. *)

val jsonl : (string -> unit) -> t
(** One JSON object per record, newline-terminated:
    [{"name":..., "group":..., "kind":..., "spec":{...}, "result":{...},
    "metrics":{...}?, "profile":{...}?}] — the last two only when
    present, with the profile (and so every wall-clock field) last on
    the line.  The writer receives complete lines. *)

val csv : (string -> unit) -> t
(** Long-format CSV: a ["name,group,metric,value"] header (written
    immediately), then one row per scalar metric of each record
    ({!Report.summary}) and per counter/gauge of its metric snapshot
    (histograms and the profile are jsonl-only).  Fields are RFC-4180
    quoted when needed. *)

val jsonl_file : string -> t
(** [jsonl] writing to a file (truncated); [close] closes it. *)

val csv_file : string -> t
(** [csv] writing to a file (truncated); [close] closes it. *)

val series_jsonl : (string -> unit) -> t
(** One JSON object per sampled record, newline-terminated:
    [{"name":..., "group":..., "kind":..., "spec":{...},
    "series":{"<series name>":[[t, v], ...], ...}}].  Records with no
    series (unsampled runs) are skipped.  Fully deterministic, so
    [--jobs 1] and [--jobs N] files are byte-identical; this is the
    format [mcc report] consumes. *)

val series_jsonl_file : string -> t
(** [series_jsonl] writing to a file (truncated); [close] closes it. *)

val pretty : Format.formatter -> t
(** Human-readable rendering: a heading per record followed by the
    {!Report.result} printer — what the CLI shows on stdout. *)

val multi : t list -> t
(** Fans every record out to each sink in order. *)
