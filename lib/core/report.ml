let series fmt ~label points =
  Format.fprintf fmt "# %s@." label;
  List.iter (fun (x, y) -> Format.fprintf fmt "%.2f %.1f@." x y) points;
  Format.fprintf fmt "@."

let row fmt label pairs =
  Format.fprintf fmt "%-28s" label;
  List.iter (fun (name, v) -> Format.fprintf fmt " %s=%.1f" name v) pairs;
  Format.fprintf fmt "@."

let heading fmt title =
  Format.fprintf fmt "@.=== %s ===@." title

let attack fmt (r : Experiments.attack_result) =
  row fmt "F1 (misbehaving)"
    [ ("before", r.Experiments.f1_before); ("after", r.Experiments.f1_after) ];
  row fmt "F2" [ ("after", r.Experiments.f2_after) ];
  row fmt "T1" [ ("after", r.Experiments.t1_after) ];
  row fmt "T2" [ ("after", r.Experiments.t2_after) ];
  series fmt ~label:"F1 Kbps" r.Experiments.f1;
  series fmt ~label:"F2 Kbps" r.Experiments.f2;
  series fmt ~label:"T1 Kbps" r.Experiments.t1;
  series fmt ~label:"T2 Kbps" r.Experiments.t2

let sweep fmt points =
  Format.fprintf fmt "# sessions individual... | average@.";
  List.iter
    (fun (p : Experiments.sweep_point) ->
      Format.fprintf fmt "%2d " p.Experiments.sessions;
      List.iter (fun v -> Format.fprintf fmt "%.0f " v) p.Experiments.individual_kbps;
      Format.fprintf fmt "| avg %.1f@." p.Experiments.average_kbps)
    points;
  Format.fprintf fmt "@."

let responsiveness fmt (r : Experiments.responsiveness_result) =
  row fmt "multicast Kbps"
    [
      ("before", r.Experiments.before_kbps);
      ("during-burst", r.Experiments.during_kbps);
      ("after", r.Experiments.after_kbps);
    ];
  series fmt ~label:"multicast Kbps" r.Experiments.multicast

let rtt fmt rows =
  Format.fprintf fmt "# rtt_ms kbps@.";
  List.iter (fun (x, y) -> Format.fprintf fmt "%.0f %.1f@." x y) rows;
  Format.fprintf fmt "@."

let convergence fmt receivers =
  List.iteri
    (fun i s -> series fmt ~label:(Printf.sprintf "receiver %d Kbps" (i + 1)) s)
    receivers

let overhead fmt ~x_label points =
  Format.fprintf fmt "# %s delta%%(analytic) sigma%%(analytic) delta%%(measured) sigma%%(measured)@."
    x_label;
  List.iter
    (fun (p : Experiments.overhead_point) ->
      Format.fprintf fmt "%5.2f  %.3f %.3f  %.3f %.3f@." p.Experiments.x
        p.Experiments.delta_analytic p.Experiments.sigma_analytic
        p.Experiments.delta_measured p.Experiments.sigma_measured)
    points;
  Format.fprintf fmt "@."
