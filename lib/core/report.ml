type series = (float * float) list

let series fmt ~label points =
  Format.fprintf fmt "# %s@." label;
  List.iter (fun (x, y) -> Format.fprintf fmt "%.2f %.1f@." x y) points;
  Format.fprintf fmt "@."

let row fmt label pairs =
  Format.fprintf fmt "%-28s" label;
  List.iter (fun (name, v) -> Format.fprintf fmt " %s=%.1f" name v) pairs;
  Format.fprintf fmt "@."

let heading fmt title =
  Format.fprintf fmt "@.=== %s ===@." title

(* --- human-readable printers ------------------------------------------- *)

let attack fmt (r : Experiments.attack_result) =
  row fmt "F1 (misbehaving)"
    [ ("before", r.Experiments.f1_before); ("after", r.Experiments.f1_after) ];
  row fmt "F2" [ ("after", r.Experiments.f2_after) ];
  row fmt "T1" [ ("after", r.Experiments.t1_after) ];
  row fmt "T2" [ ("after", r.Experiments.t2_after) ];
  series fmt ~label:"F1 Kbps" r.Experiments.f1;
  series fmt ~label:"F2 Kbps" r.Experiments.f2;
  series fmt ~label:"T1 Kbps" r.Experiments.t1;
  series fmt ~label:"T2 Kbps" r.Experiments.t2

let sweep fmt points =
  Format.fprintf fmt "# sessions individual... | average@.";
  List.iter
    (fun (p : Experiments.sweep_point) ->
      Format.fprintf fmt "%2d " p.Experiments.sessions;
      List.iter (fun v -> Format.fprintf fmt "%.0f " v) p.Experiments.individual_kbps;
      Format.fprintf fmt "| avg %.1f@." p.Experiments.average_kbps)
    points;
  Format.fprintf fmt "@."

let responsiveness fmt (r : Experiments.responsiveness_result) =
  row fmt "multicast Kbps"
    [
      ("before", r.Experiments.before_kbps);
      ("during-burst", r.Experiments.during_kbps);
      ("after", r.Experiments.after_kbps);
    ];
  series fmt ~label:"multicast Kbps" r.Experiments.multicast

let rtt fmt rows =
  Format.fprintf fmt "# rtt_ms kbps@.";
  List.iter (fun (x, y) -> Format.fprintf fmt "%.0f %.1f@." x y) rows;
  Format.fprintf fmt "@."

let convergence fmt receivers =
  List.iteri
    (fun i s -> series fmt ~label:(Printf.sprintf "receiver %d Kbps" (i + 1)) s)
    receivers

let overhead fmt ~x_label points =
  Format.fprintf fmt "# %s delta%%(analytic) sigma%%(analytic) delta%%(measured) sigma%%(measured)@."
    x_label;
  List.iter
    (fun (p : Experiments.overhead_point) ->
      Format.fprintf fmt "%5.2f  %.3f %.3f  %.3f %.3f@." p.Experiments.x
        p.Experiments.delta_analytic p.Experiments.sigma_analytic
        p.Experiments.delta_measured p.Experiments.sigma_measured)
    points;
  Format.fprintf fmt "@."

let partial fmt (r : Experiments.partial_result) =
  row fmt "attacker behind SIGMA edge"
    [ ("kbps", r.Experiments.protected_attacker_kbps) ];
  row fmt "attacker behind legacy edge"
    [ ("kbps", r.Experiments.unprotected_attacker_kbps) ];
  row fmt "honest receiver" [ ("kbps", r.Experiments.honest_kbps) ]

let adversary fmt (r : Experiments.adversary_result) =
  row fmt "honest receiver"
    [
      ("before", r.Experiments.honest_before_kbps);
      ("during-attack", r.Experiments.honest_after_kbps);
      ("loss%", r.Experiments.honest_loss_pct);
    ];
  row fmt "adversary"
    [
      ("kbps", r.Experiments.attacker_kbps);
      ("gain-x-fair", r.Experiments.attacker_gain);
    ];
  row fmt "tcp" [ ("kbps", r.Experiments.tcp_kbps) ];
  row fmt "edge router"
    [
      ("keys_rejected", float_of_int r.Experiments.keys_rejected);
      ("lockouts", float_of_int r.Experiments.lockouts);
      ("grace_admissions", float_of_int r.Experiments.grace_admissions);
    ];
  (match r.Experiments.containment_s with
  | Some s -> Format.fprintf fmt "contained %.1fs after attack start@." s
  | None -> Format.fprintf fmt "never contained within the horizon@.")

let workload fmt (r : Experiments.workload_result) =
  row fmt "topology"
    [
      ("nodes", float_of_int r.Experiments.w_nodes);
      ("links", float_of_int r.Experiments.w_links);
    ];
  row fmt "receivers"
    [
      ("count", float_of_int r.Experiments.w_receivers);
      ("mean_kbps", r.Experiments.w_mean_goodput_kbps);
      ("min_kbps", r.Experiments.w_min_goodput_kbps);
      ("max_kbps", r.Experiments.w_max_goodput_kbps);
    ];
  row fmt "background"
    [
      ("cross_kbps", r.Experiments.w_cross_kbps);
      ("attacker_kbps", r.Experiments.w_attacker_kbps);
    ];
  row fmt "network"
    [
      ("drops", float_of_int r.Experiments.w_drops);
      ("marks", float_of_int r.Experiments.w_marks);
    ];
  row fmt "edge router"
    [
      ("keys_rejected", float_of_int r.Experiments.w_keys_rejected);
      ("lockouts", float_of_int r.Experiments.w_lockouts);
    ]

let result fmt = function
  | Experiments.Attack r -> attack fmt r
  | Experiments.Sweep_point p -> sweep fmt [ p ]
  | Experiments.Responsiveness r -> responsiveness fmt r
  | Experiments.Rtt rows -> rtt fmt rows
  | Experiments.Convergence receivers -> convergence fmt receivers
  | Experiments.Overhead p -> overhead fmt ~x_label:"x" [ p ]
  | Experiments.Partial r -> partial fmt r
  | Experiments.Adversary r -> adversary fmt r
  | Experiments.Workload r -> workload fmt r

(* --- machine-readable twins -------------------------------------------- *)

let attack_json (r : Experiments.attack_result) =
  Json.Obj
    [
      ("f1_before", Json.Float r.Experiments.f1_before);
      ("f1_after", Json.Float r.Experiments.f1_after);
      ("f2_after", Json.Float r.Experiments.f2_after);
      ("t1_after", Json.Float r.Experiments.t1_after);
      ("t2_after", Json.Float r.Experiments.t2_after);
      ("f1", Json.of_series r.Experiments.f1);
      ("f2", Json.of_series r.Experiments.f2);
      ("t1", Json.of_series r.Experiments.t1);
      ("t2", Json.of_series r.Experiments.t2);
    ]

let sweep_point_json (p : Experiments.sweep_point) =
  Json.Obj
    [
      ("sessions", Json.Int p.Experiments.sessions);
      ( "individual_kbps",
        Json.List
          (List.map (fun v -> Json.Float v) p.Experiments.individual_kbps) );
      ("average_kbps", Json.Float p.Experiments.average_kbps);
    ]

let responsiveness_json (r : Experiments.responsiveness_result) =
  Json.Obj
    [
      ("burst_start", Json.Float r.Experiments.burst_start);
      ("burst_stop", Json.Float r.Experiments.burst_stop);
      ("before_kbps", Json.Float r.Experiments.before_kbps);
      ("during_kbps", Json.Float r.Experiments.during_kbps);
      ("after_kbps", Json.Float r.Experiments.after_kbps);
      ("multicast", Json.of_series r.Experiments.multicast);
    ]

let rtt_json rows =
  Json.Obj [ ("rows", Json.of_series rows) ]

let convergence_json receivers =
  Json.Obj
    [ ("receivers", Json.List (List.map Json.of_series receivers)) ]

let overhead_json (p : Experiments.overhead_point) =
  Json.Obj
    [
      ("x", Json.Float p.Experiments.x);
      ("delta_analytic", Json.Float p.Experiments.delta_analytic);
      ("sigma_analytic", Json.Float p.Experiments.sigma_analytic);
      ("delta_measured", Json.Float p.Experiments.delta_measured);
      ("sigma_measured", Json.Float p.Experiments.sigma_measured);
    ]

let partial_json (r : Experiments.partial_result) =
  Json.Obj
    [
      ("protected_attacker_kbps", Json.Float r.Experiments.protected_attacker_kbps);
      ( "unprotected_attacker_kbps",
        Json.Float r.Experiments.unprotected_attacker_kbps );
      ("honest_kbps", Json.Float r.Experiments.honest_kbps);
    ]

let adversary_json (r : Experiments.adversary_result) =
  Json.Obj
    [
      ("honest_before_kbps", Json.Float r.Experiments.honest_before_kbps);
      ("honest_after_kbps", Json.Float r.Experiments.honest_after_kbps);
      ("honest_loss_pct", Json.Float r.Experiments.honest_loss_pct);
      ("attacker_kbps", Json.Float r.Experiments.attacker_kbps);
      ("attacker_gain", Json.Float r.Experiments.attacker_gain);
      ( "containment_s",
        match r.Experiments.containment_s with
        | Some s -> Json.Float s
        | None -> Json.Null );
      ("tcp_kbps", Json.Float r.Experiments.tcp_kbps);
      ("keys_rejected", Json.Int r.Experiments.keys_rejected);
      ("lockouts", Json.Int r.Experiments.lockouts);
      ("grace_admissions", Json.Int r.Experiments.grace_admissions);
    ]

let workload_json (r : Experiments.workload_result) =
  Json.Obj
    [
      ("nodes", Json.Int r.Experiments.w_nodes);
      ("links", Json.Int r.Experiments.w_links);
      ("receivers", Json.Int r.Experiments.w_receivers);
      ("mean_goodput_kbps", Json.Float r.Experiments.w_mean_goodput_kbps);
      ("min_goodput_kbps", Json.Float r.Experiments.w_min_goodput_kbps);
      ("max_goodput_kbps", Json.Float r.Experiments.w_max_goodput_kbps);
      ("cross_kbps", Json.Float r.Experiments.w_cross_kbps);
      ("attacker_kbps", Json.Float r.Experiments.w_attacker_kbps);
      ("drops", Json.Int r.Experiments.w_drops);
      ("marks", Json.Int r.Experiments.w_marks);
      ("keys_rejected", Json.Int r.Experiments.w_keys_rejected);
      ("lockouts", Json.Int r.Experiments.w_lockouts);
    ]

let result_json = function
  | Experiments.Attack r -> attack_json r
  | Experiments.Sweep_point p -> sweep_point_json p
  | Experiments.Responsiveness r -> responsiveness_json r
  | Experiments.Rtt rows -> rtt_json rows
  | Experiments.Convergence receivers -> convergence_json receivers
  | Experiments.Overhead p -> overhead_json p
  | Experiments.Partial r -> partial_json r
  | Experiments.Adversary r -> adversary_json r
  | Experiments.Workload r -> workload_json r

let attack_to_json r = Json.to_string (attack_json r)
let sweep_point_to_json p = Json.to_string (sweep_point_json p)
let responsiveness_to_json r = Json.to_string (responsiveness_json r)
let rtt_to_json rows = Json.to_string (rtt_json rows)
let convergence_to_json receivers = Json.to_string (convergence_json receivers)
let overhead_to_json p = Json.to_string (overhead_json p)
let partial_to_json r = Json.to_string (partial_json r)
let result_to_json r = Json.to_string (result_json r)

(* --- scalar summaries --------------------------------------------------- *)

let final_of = function [] -> 0. | s -> snd (List.nth s (List.length s - 1))

let summary = function
  | Experiments.Attack r ->
      [
        ("f1_before_kbps", r.Experiments.f1_before);
        ("f1_after_kbps", r.Experiments.f1_after);
        ("f2_after_kbps", r.Experiments.f2_after);
        ("t1_after_kbps", r.Experiments.t1_after);
        ("t2_after_kbps", r.Experiments.t2_after);
      ]
  | Experiments.Sweep_point p ->
      let rates = p.Experiments.individual_kbps in
      let lo = List.fold_left Float.min infinity rates in
      let hi = List.fold_left Float.max neg_infinity rates in
      [
        ("sessions", float_of_int p.Experiments.sessions);
        ("average_kbps", p.Experiments.average_kbps);
        ("min_kbps", (if rates = [] then 0. else lo));
        ("max_kbps", (if rates = [] then 0. else hi));
      ]
  | Experiments.Responsiveness r ->
      [
        ("before_kbps", r.Experiments.before_kbps);
        ("during_kbps", r.Experiments.during_kbps);
        ("after_kbps", r.Experiments.after_kbps);
      ]
  | Experiments.Rtt rows ->
      let rates = List.map snd rows in
      let lo = List.fold_left Float.min infinity rates in
      let hi = List.fold_left Float.max neg_infinity rates in
      [
        ("receivers", float_of_int (List.length rows));
        ("mean_kbps", Mcc_util.Stats.mean rates);
        ("min_kbps", (if rates = [] then 0. else lo));
        ("max_kbps", (if rates = [] then 0. else hi));
      ]
  | Experiments.Convergence receivers ->
      ("receivers", float_of_int (List.length receivers))
      :: List.mapi
           (fun i s -> (Printf.sprintf "final_kbps_%d" (i + 1), final_of s))
           receivers
  | Experiments.Overhead p ->
      [
        ("x", p.Experiments.x);
        ("delta_analytic_pct", p.Experiments.delta_analytic);
        ("sigma_analytic_pct", p.Experiments.sigma_analytic);
        ("delta_measured_pct", p.Experiments.delta_measured);
        ("sigma_measured_pct", p.Experiments.sigma_measured);
      ]
  | Experiments.Partial r ->
      [
        ("protected_attacker_kbps", r.Experiments.protected_attacker_kbps);
        ("unprotected_attacker_kbps", r.Experiments.unprotected_attacker_kbps);
        ("honest_kbps", r.Experiments.honest_kbps);
      ]
  | Experiments.Adversary r ->
      [
        ("honest_before_kbps", r.Experiments.honest_before_kbps);
        ("honest_after_kbps", r.Experiments.honest_after_kbps);
        ("honest_loss_pct", r.Experiments.honest_loss_pct);
        ("attacker_kbps", r.Experiments.attacker_kbps);
        ("attacker_gain", r.Experiments.attacker_gain);
        ( "containment_s",
          match r.Experiments.containment_s with Some s -> s | None -> -1. );
        ("tcp_kbps", r.Experiments.tcp_kbps);
        ("keys_rejected", float_of_int r.Experiments.keys_rejected);
        ("lockouts", float_of_int r.Experiments.lockouts);
        ("grace_admissions", float_of_int r.Experiments.grace_admissions);
      ]
  | Experiments.Workload r ->
      [
        ("nodes", float_of_int r.Experiments.w_nodes);
        ("links", float_of_int r.Experiments.w_links);
        ("receivers", float_of_int r.Experiments.w_receivers);
        ("mean_goodput_kbps", r.Experiments.w_mean_goodput_kbps);
        ("min_goodput_kbps", r.Experiments.w_min_goodput_kbps);
        ("max_goodput_kbps", r.Experiments.w_max_goodput_kbps);
        ("cross_kbps", r.Experiments.w_cross_kbps);
        ("attacker_kbps", r.Experiments.w_attacker_kbps);
        ("drops", float_of_int r.Experiments.w_drops);
        ("marks", float_of_int r.Experiments.w_marks);
        ("keys_rejected", float_of_int r.Experiments.w_keys_rejected);
        ("lockouts", float_of_int r.Experiments.w_lockouts);
      ]
