(* Cross-run ledger payloads, history rendering, and entry diffing; the
   payload/wall conventions live in the interface.  Everything here is a
   pure function of its inputs — recording times come in as arguments
   and the only nondeterministic material ever written is confined to
   the wall suffix. *)

module Ledger = Mcc_obs.Ledger
module Metrics = Mcc_obs.Metrics
module Profile = Mcc_obs.Profile
module Prof = Mcc_obs.Prof

(* --- ledger payload builders ------------------------------------------- *)

let run_payload ~command ~config rows =
  let entry_json (r : Runner.row) =
    Json.Obj
      [
        ("name", Json.String r.Runner.entry.Runner.name);
        ("group", Json.String r.Runner.entry.Runner.group);
        ("spec", Spec.to_json r.Runner.entry.Runner.spec);
      ]
  in
  let row_json (r : Runner.row) =
    let p = r.Runner.profile in
    Json.Obj
      [
        ("name", Json.String r.Runner.entry.Runner.name);
        ( "summary",
          Json.Obj
            (List.map
               (fun (k, v) -> (k, Json.Float v))
               (Report.summary r.Runner.result)) );
        ("metrics", Metrics.values_json r.Runner.metrics);
        ( "profile",
          Json.Obj
            ([
               ("sched", Json.String p.Profile.sched);
               ("events", Json.Int p.Profile.events);
               ("queue_capacity", Json.Int p.Profile.queue_capacity);
             ]
            @
            match p.Profile.sched_stats with
            | Some s -> [ ("sched_stats", Profile.sched_stats_to_json s) ]
            | None -> []) );
      ]
  in
  Json.Obj
    [
      ( "config",
        Json.Obj
          ((("command", Json.String command) :: config)
          @ [ ("entries", Json.List (List.map entry_json rows)) ]) );
      ("rows", Json.List (List.map row_json rows));
    ]

let run_wall ~recorded rows =
  let wall_s =
    List.fold_left
      (fun acc (r : Runner.row) -> acc +. r.Runner.profile.Profile.wall_s)
      0. rows
  in
  let events =
    List.fold_left
      (fun acc (r : Runner.row) -> acc + r.Runner.profile.Profile.events)
      0 rows
  in
  [
    ("recorded_unix_s", Json.Float recorded);
    ("wall_s", Json.Float wall_s);
    ( "events_per_sec",
      Json.Float
        (if wall_s > 0. then float_of_int events /. wall_s else 0.) );
    ( "figures",
      Json.Obj
        (List.map
           (fun (r : Runner.row) ->
             ( r.Runner.entry.Runner.name,
               Json.Float r.Runner.profile.Profile.events_per_sec ))
           rows) );
  ]

let prof_wall = function
  | [] -> []
  | entries ->
      [
        ( "prof",
          Json.Obj
            (List.map
               (fun (e : Prof.entry) ->
                 (String.concat "/" e.Prof.path, Json.Float e.Prof.self_s))
               entries) );
      ]

(* --- documents and lookup ---------------------------------------------- *)

let entry_of_document json =
  match Ledger.entry_of_json json with
  | Ok e -> Ok e
  | Error _ -> (
      match json with
      | Json.Obj fields
        when fields <> []
             && List.for_all
                  (fun (_, v) -> Option.is_some (Json.to_float_opt v))
                  fields ->
          (* A flat {figure: number} document — the bench baseline
             format.  The digest covers the figure names only, so two
             baselines of the same suite compare as same-config. *)
          Ok
            {
              Ledger.seq = 0;
              kind = "bench";
              label = "file";
              digest =
                Ledger.digest_of_json
                  (Json.List (List.map (fun (k, _) -> Json.String k) fields));
              payload = Json.Null;
              wall = [ ("figures", json) ];
            }
      | _ -> Error "not a ledger entry or a flat object of numeric figures")

let figures (e : Ledger.entry) =
  match List.assoc_opt "figures" e.Ledger.wall with
  | Some (Json.Obj fields) ->
      List.filter_map
        (fun (k, v) -> Option.map (fun x -> (k, x)) (Json.to_float_opt v))
        fields
  | Some _ | None -> []

let find_value (e : Ledger.entry) ~key =
  match List.assoc_opt key (figures e) with
  | Some v -> Some v
  | None -> (
      match
        Option.bind (List.assoc_opt key e.Ledger.wall) Json.to_float_opt
      with
      | Some v -> Some v
      | None ->
          let rows =
            match Json.member "rows" e.Ledger.payload with
            | Some (Json.List rows) -> rows
            | Some _ | None -> []
          in
          let row_value row =
            let section name =
              Option.bind
                (Option.bind (Json.member name row) (Json.member key))
                Json.to_float_opt
            in
            match section "summary" with
            | Some v -> Some v
            | None -> section "metrics"
          in
          (match List.filter_map row_value rows with
          | [] -> None
          | vs ->
              Some
                (List.fold_left ( +. ) 0. vs /. float_of_int (List.length vs))))

(* --- mcc history -------------------------------------------------------- *)

let time_str unix_s =
  (* Rendering a stored timestamp, not reading the clock. *)
  let tm = Unix.gmtime unix_s in
  Printf.sprintf "%04d-%02d-%02d %02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

let history_table ?(metric = "events_per_sec") ?(width = 40) entries =
  let buf = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "%4s  %-8s %-24s %-16s %-21s %s\n" "#" "kind" "label" "digest" "recorded"
    metric;
  List.iter
    (fun (e : Ledger.entry) ->
      let recorded =
        match
          Option.bind
            (List.assoc_opt "recorded_unix_s" e.Ledger.wall)
            Json.to_float_opt
        with
        | Some t -> time_str t
        | None -> "-"
      in
      let value =
        match find_value e ~key:metric with
        | Some v -> Printf.sprintf "%.4g" v
        | None -> "-"
      in
      pf "%4d  %-8s %-24s %-16s %-21s %s\n" e.Ledger.seq e.Ledger.kind
        e.Ledger.label e.Ledger.digest recorded value)
    entries;
  let points =
    List.filter_map
      (fun (e : Ledger.entry) ->
        Option.map
          (fun v -> (float_of_int e.Ledger.seq, v))
          (find_value e ~key:metric))
      entries
  in
  (match points with
  | _ :: _ :: _ ->
      let ys = List.map snd points in
      let lo = List.fold_left Float.min Float.infinity ys in
      let hi = List.fold_left Float.max Float.neg_infinity ys in
      pf "\ntrend %s over %d entries (min %.4g, max %.4g):\n  |%s|\n" metric
        (List.length points) lo hi
        (Forensics.sparkline ~width points)
  | _ -> ());
  Buffer.contents buf

(* --- mcc diff ----------------------------------------------------------- *)

type delta = { key : string; va : float; vb : float; pct : float option }

type diff_report = {
  rendering : string;
  drifted : int;
  regressions : delta list;
}

(* Flatten a JSON tree to dotted-path leaves; leaves compare by their
   compact rendering (never polymorphic compare — floats travel here). *)
let rec flatten prefix json acc =
  let join k = if String.equal prefix "" then k else prefix ^ "." ^ k in
  match json with
  | Json.Obj fields ->
      List.fold_left (fun acc (k, v) -> flatten (join k) v acc) acc fields
  | Json.List items ->
      let _, acc =
        List.fold_left
          (fun (i, acc) v ->
            (i + 1, flatten (join (Printf.sprintf "%d" i)) v acc))
          (0, acc) items
      in
      acc
  | leaf -> (prefix, Json.to_string leaf) :: acc

let mk_delta key va vb =
  {
    key;
    va;
    vb;
    pct = (if Float.abs va > 0. then Some ((vb -. va) /. va) else None);
  }

let pct_str = function
  | Some p -> Printf.sprintf "%+.1f%%" (100. *. p)
  | None -> "n/a"

let diff ?(threshold = 0.05) (a : Ledger.entry) (b : Ledger.entry) =
  let buf = Buffer.create 2048 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "diff: #%d %s %s (%s)  ->  #%d %s %s (%s)\n" a.Ledger.seq a.Ledger.kind
    a.Ledger.label a.Ledger.digest b.Ledger.seq b.Ledger.kind b.Ledger.label
    b.Ledger.digest;
  if String.equal a.Ledger.digest b.Ledger.digest then
    pf "config: digests match (%s)\n" a.Ledger.digest
  else
    pf "config: DRIFT %s -> %s (comparing different configurations)\n"
      a.Ledger.digest b.Ledger.digest;
  (* Deterministic payload drift: field-by-field over the flattened
     payloads.  Same config + same code => zero. *)
  let fa = List.rev (flatten "" a.Ledger.payload []) in
  let fb = List.rev (flatten "" b.Ledger.payload []) in
  let changes =
    List.filter_map
      (fun (path, la) ->
        match List.assoc_opt path fb with
        | Some lb when String.equal la lb -> None
        | Some lb -> Some (path, la, lb)
        | None -> Some (path, la, "(absent)"))
      fa
    @ List.filter_map
        (fun (path, lb) ->
          if List.mem_assoc path fa then None
          else Some (path, "(absent)", lb))
        fb
  in
  let drifted = List.length changes in
  pf "payload: %d deterministic fields drifted\n" drifted;
  List.iteri
    (fun i (path, la, lb) ->
      if i < 20 then pf "  %s: %s -> %s\n" path la lb)
    changes;
  if drifted > 20 then pf "  ... and %d more\n" (drifted - 20);
  (* Figure deltas: throughput rates, so only drops regress. *)
  let figs_a = figures a and figs_b = figures b in
  let regressions = ref [] in
  (match (figs_a, figs_b) with
  | [], [] -> ()
  | _ ->
      pf "figures (events/s, regression threshold %.0f%%):\n"
        (100. *. threshold);
      List.iter
        (fun (key, va) ->
          match List.assoc_opt key figs_b with
          | None -> pf "  %-24s %12.4g -> %12s\n" key va "(absent)"
          | Some vb ->
              let d = mk_delta key va vb in
              let regressed =
                match d.pct with
                | Some p -> p < -.threshold
                | None -> false
              in
              if regressed then regressions := d :: !regressions;
              pf "  %-24s %12.4g -> %12.4g  %8s%s\n" key va vb (pct_str d.pct)
                (if regressed then "  REGRESSION" else ""))
        figs_a;
      List.iter
        (fun (key, vb) ->
          if not (List.mem_assoc key figs_a) then
            pf "  %-24s %12s -> %12.4g  (new)\n" key "(absent)" vb)
        figs_b);
  (* Wall drift. *)
  List.iter
    (fun key ->
      match
        ( Option.bind (List.assoc_opt key a.Ledger.wall) Json.to_float_opt,
          Option.bind (List.assoc_opt key b.Ledger.wall) Json.to_float_opt )
      with
      | Some va, Some vb ->
          let d = mk_delta key va vb in
          pf "wall: %-20s %12.4g -> %12.4g  %8s\n" key va vb (pct_str d.pct)
      | _ -> ())
    [ "wall_s"; "events_per_sec" ];
  (* Profiler self-time drift, when both entries carry a prof table. *)
  let prof_of (e : Ledger.entry) =
    match List.assoc_opt "prof" e.Ledger.wall with
    | Some (Json.Obj fields) ->
        List.filter_map
          (fun (k, v) -> Option.map (fun x -> (k, x)) (Json.to_float_opt v))
          fields
    | Some _ | None -> []
  in
  (match (prof_of a, prof_of b) with
  | [], _ | _, [] -> ()
  | pa, pb ->
      pf "prof self-time drift (top shared spans):\n";
      let shared =
        List.filter_map
          (fun (key, va) ->
            Option.map (fun vb -> mk_delta key va vb) (List.assoc_opt key pb))
          pa
      in
      let by_magnitude =
        List.sort
          (fun x y ->
            Float.compare (Float.abs (y.vb -. y.va)) (Float.abs (x.vb -. x.va)))
          shared
      in
      List.iteri
        (fun i d ->
          if i < 10 then
            pf "  %-32s %10.4gs -> %10.4gs  %8s\n" d.key d.va d.vb
              (pct_str d.pct))
        by_magnitude);
  { rendering = Buffer.contents buf; drifted; regressions = List.rev !regressions }
