(** Scenario builder: composes a dumbbell, multicast sessions (FLID-DL
    or FLID-DS), TCP and CBR cross traffic, and the SIGMA edge-router
    agent, then runs the simulation.

    Everything stochastic draws from a single seed, so a scenario is a
    pure function of its parameters. *)

type receiver_spec = {
  start_at : float;
  behavior : Mcc_mcast.Flid.behavior;
  access_delay_s : float option;  (** overrides the default 10 ms *)
  access_rate_bps : float option;
      (** overrides the default 10 Mbps: a capacity-limited receiver *)
}

val receiver : ?at:float -> ?behavior:Mcc_mcast.Flid.behavior ->
  ?access_delay_s:float -> ?access_rate_bps:float -> unit -> receiver_spec

type session = {
  config : Mcc_mcast.Flid.config;
  sender : Mcc_mcast.Flid.sender;
  receivers : Mcc_mcast.Flid.receiver list;
}

type t

val create :
  ?seed:int ->
  ?sched:Mcc_engine.Scheduler.backend ->
  ?bottleneck_delay_s:float ->
  ?ecn:bool ->
  ?packet_buffer:bool ->
  ?agent_config:Mcc_sigma.Router_agent.config ->
  ?sigma:bool ->
  bottleneck_rate_bps:float ->
  unit ->
  t
(** [sched] selects the event-scheduler backend for the scenario's sim
    (default: the domain's {!Mcc_engine.Scheduler.default}).

    [sigma] (default [true]) controls whether the right edge router runs
    the SIGMA agent.  With [sigma:false] the edge stays a legacy IGMP
    device even for Robust sessions — the paper's incremental-deployment
    counterfactual where DELTA keys flow in band but nothing enforces
    them (Section 3.2.3). *)

val sim : t -> Mcc_engine.Sim.t
val dumbbell : t -> Dumbbell.t
val agent : t -> Mcc_sigma.Router_agent.t option
(** The SIGMA agent on the right edge router; installed as soon as the
    first robust session is added. *)

val delta_transform :
  Mcc_sigma.Router_agent.t ->
  Mcc_util.Prng.t ->
  Mcc_net.Link.t ->
  Mcc_net.Packet.t ->
  unit
(** The component transform installed on SIGMA agents (ECN scrub of
    marked DELTA components, interface-key padding).  Exported so
    builders over generated topologies ([Mcc_workload]) can install the
    same scrubber on every edge agent; one PRNG per agent. *)

val add_multicast :
  ?slot:float ->
  ?layering:Mcc_mcast.Layering.t ->
  ?fec_scheme:Mcc_sigma.Fec.scheme ->
  ?packet_size:int ->
  ?receiver_mode:Mcc_mcast.Flid.mode ->
  t ->
  mode:Mcc_mcast.Flid.mode ->
  receivers:receiver_spec list ->
  unit ->
  session
(** Adds a sender host on the left, one receiver host per spec on the
    right, and starts the protocol.  Default slot duration: 500 ms for
    FLID-DL, 250 ms for FLID-DS (paper Section 5.1).  [receiver_mode]
    overrides the mode receivers run in: Plain receivers of a Robust
    session model hosts behind a legacy edge that still drive
    subscriptions over IGMP. *)

type replicated_session = {
  rep_config : Mcc_mcast.Replicated_proto.config;
  rep_sender : Mcc_mcast.Replicated_proto.sender;
  rep_receivers : Mcc_mcast.Replicated_proto.receiver list;
}

val add_replicated :
  ?slot:float ->
  ?layering:Mcc_mcast.Layering.t ->
  ?receiver_mode:Mcc_mcast.Flid.mode ->
  t ->
  mode:Mcc_mcast.Flid.mode ->
  receivers:receiver_spec list ->
  unit ->
  replicated_session
(** A replicated-multicast session (paper Fig. 5 instantiation) on the
    same dumbbell; shares the SIGMA agent with any FLID-DS session. *)

type rlm_session = {
  rlm_config : Mcc_mcast.Rlm_like.config;
  rlm_sender : Mcc_mcast.Rlm_like.sender;
  rlm_receivers : Mcc_mcast.Rlm_like.receiver list;
}

val add_rlm :
  ?slot:float ->
  ?layering:Mcc_mcast.Layering.t ->
  ?policy:Mcc_mcast.Rlm_like.policy ->
  ?receiver_mode:Mcc_mcast.Flid.mode ->
  t ->
  mode:Mcc_mcast.Flid.mode ->
  receivers:receiver_spec list ->
  unit ->
  rlm_session
(** A threshold-protocol session (RLM-like; [policy] picks the ladder or
    the WEBRC-style equation receiver).  Receiver behaviours in the
    specs are ignored: only well-behaved threshold receivers are
    modelled. *)

type oversub_session = {
  ovs_config : Mcc_mcast.Oversub.config;
  ovs_sender : Mcc_mcast.Oversub.sender;
  ovs_receivers : Mcc_mcast.Oversub.receiver list;
}

val add_oversub :
  ?slot:float ->
  ?layering:Mcc_mcast.Layering.t ->
  ?receiver_mode:Mcc_mcast.Flid.mode ->
  t ->
  mode:Mcc_mcast.Flid.mode ->
  receivers:receiver_spec list ->
  unit ->
  oversub_session
(** An oversubscribed-CC session (EWMA of the ECN mark fraction) on the
    same dumbbell.  It shares FLID's wire format, so the agent's ECN
    scrubber applies unchanged.  Receiver behaviours in the specs are
    ignored: attacks on this protocol are mounted as bare attackers. *)

val add_tcp : ?at:float -> t -> Mcc_transport.Tcp.t
(** One TCP Reno flow left to right; returns the flow (its meter gives
    the receiver throughput). *)

val add_onoff_cbr :
  ?at:float ->
  ?until:float ->
  t ->
  rate_bps:float ->
  on_period:float ->
  off_period:float ->
  Mcc_transport.On_off.t
(** On-off CBR cross traffic left to right. *)

val run : t -> seconds:float -> unit
(** Computes routes and executes the simulation to the horizon.  May be
    called repeatedly with growing horizons. *)

val bottleneck_drops : t -> int
