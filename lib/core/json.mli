(** Re-export of {!Mcc_obs.Json}, where the implementation moved when
    the telemetry layer ([mcc_obs]) gained JSON rendering; the types are
    equal, so values flow freely between the two names. *)

include module type of struct
  include Mcc_obs.Json
end
