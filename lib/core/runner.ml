module Flid = Mcc_mcast.Flid
module Metrics = Mcc_obs.Metrics
module Profile = Mcc_obs.Profile
module Timeseries = Mcc_obs.Timeseries

type entry = {
  name : string;
  group : string;
  doc : string;
  spec : Spec.t;
}

(* --- the registry ------------------------------------------------------- *)

let sweep_counts = [ 1; 2; 4; 6; 8; 10; 12; 14; 16; 18 ]
let overhead_groups = [ 2; 4; 6; 8; 10; 12; 14; 16; 18; 20 ]
let overhead_slots = [ 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9; 1.0 ]

let sweep_entries ~group ~doc ~cross_traffic ~mode =
  List.map
    (fun sessions ->
      {
        name = Printf.sprintf "%s-n%02d" group sessions;
        group;
        doc = Printf.sprintf "%s, %d sessions" doc sessions;
        spec =
          Spec.Sweep
            {
              Spec.default_sweep with
              (* The pre-spec API seeded each point with 11 + sessions so
                 sweep points don't share traffic phases; kept for
                 bit-compatible figures. *)
              Spec.seed = 11 + sessions;
              sessions;
              cross_traffic;
              mode;
            };
      })
    sweep_counts

let registry =
  [
    {
      name = "fig1";
      group = "fig1";
      doc = "Figure 1: inflated subscription under FLID-DL";
      spec = Spec.Attack { Spec.default_attack with Spec.mode = Flid.Plain };
    };
    {
      name = "fig7";
      group = "fig7";
      doc = "Figure 7: the same attack under FLID-DS (DELTA + SIGMA)";
      spec = Spec.Attack Spec.default_attack;
    };
  ]
  @ sweep_entries ~group:"fig8a" ~cross_traffic:false ~mode:Flid.Plain
      ~doc:"Figure 8a: FLID-DL throughput vs sessions"
  @ sweep_entries ~group:"fig8b" ~cross_traffic:false ~mode:Flid.Robust
      ~doc:"Figure 8b: FLID-DS throughput vs sessions"
  @ sweep_entries ~group:"fig8d-dl" ~cross_traffic:true ~mode:Flid.Plain
      ~doc:"Figure 8d: FLID-DL with TCP and on-off CBR cross traffic"
  @ sweep_entries ~group:"fig8d-ds" ~cross_traffic:true ~mode:Flid.Robust
      ~doc:"Figure 8d: FLID-DS with TCP and on-off CBR cross traffic"
  @ [
      {
        name = "fig8e-dl";
        group = "fig8e";
        doc = "Figure 8e: FLID-DL responsiveness to an 800 Kbps burst";
        spec =
          Spec.Responsiveness
            { Spec.default_responsiveness with Spec.mode = Flid.Plain };
      };
      {
        name = "fig8e-ds";
        group = "fig8e";
        doc = "Figure 8e: FLID-DS responsiveness to an 800 Kbps burst";
        spec = Spec.Responsiveness Spec.default_responsiveness;
      };
      {
        name = "fig8f-dl";
        group = "fig8f";
        doc = "Figure 8f: FLID-DL throughput vs heterogeneous RTTs";
        spec = Spec.Rtt { Spec.default_rtt with Spec.mode = Flid.Plain };
      };
      {
        name = "fig8f-ds";
        group = "fig8f";
        doc = "Figure 8f: FLID-DS throughput vs heterogeneous RTTs";
        spec = Spec.Rtt Spec.default_rtt;
      };
      {
        name = "fig8g";
        group = "fig8g";
        doc = "Figure 8g: FLID-DL subscription convergence";
        spec =
          Spec.Convergence
            { Spec.default_convergence with Spec.mode = Flid.Plain };
      };
      {
        name = "fig8h";
        group = "fig8h";
        doc = "Figure 8h: FLID-DS subscription convergence";
        spec = Spec.Convergence Spec.default_convergence;
      };
    ]
  @ List.map
      (fun groups ->
        {
          name = Printf.sprintf "fig9a-g%02d" groups;
          group = "fig9a";
          doc =
            Printf.sprintf
              "Figure 9a: DELTA/SIGMA overhead with %d groups" groups;
          spec =
            Spec.Overhead
              { Spec.default_overhead with Spec.groups = groups; axis = Spec.Groups };
        })
      overhead_groups
  @ List.map
      (fun slot ->
        {
          name = Printf.sprintf "fig9b-s%.1f" slot;
          group = "fig9b";
          doc =
            Printf.sprintf
              "Figure 9b: DELTA/SIGMA overhead with %.1f s slots" slot;
          spec =
            Spec.Overhead
              { Spec.default_overhead with Spec.slot = slot; axis = Spec.Slot };
        })
      overhead_slots
  @ [
      {
        name = "partial";
        group = "partial";
        doc =
          "Section 3.2.3: incremental deployment, SIGMA vs legacy edge router";
        spec = Spec.Partial Spec.default_partial;
      };
    ]

let () =
  (* A duplicate name would make --only ambiguous; fail at first use. *)
  let seen = Hashtbl.create 97 in
  List.iter
    (fun e ->
      if Hashtbl.mem seen e.name then
        invalid_arg (Printf.sprintf "Runner: duplicate entry %S" e.name);
      Hashtbl.add seen e.name ())
    registry

let all () = registry

let groups () =
  List.fold_left
    (fun acc e -> if List.mem e.group acc then acc else e.group :: acc)
    [] registry
  |> List.rev

let find key =
  match List.filter (fun e -> e.name = key) registry with
  | [] -> List.filter (fun e -> e.group = key) registry
  | exact -> exact

let lookup name = List.find_opt (fun e -> e.name = name) registry

(* --- multicore execution ------------------------------------------------ *)

let run_spec = Experiments.run

(* Work-stealing over an atomic cursor: each domain claims the next
   unclaimed index and writes its result into that slot, so the merged
   order is the input order no matter how the jobs interleave.  Every
   simulation is confined to the claiming domain — Sim.t, PRNG, meters
   and topology are all allocated inside [f]. *)
let parallel_map ~jobs f inputs =
  let arr = Array.of_list inputs in
  let n = Array.length arr in
  let jobs = max 1 (min jobs n) in
  if jobs <= 1 then List.map f inputs
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (* input-order slots: worker i is the only writer of
             results.(i), arr is never written, and the join below
             happens-before the read-back *)
          (* lint: allow domain-escape — results slot discipline above *)
          (results.(i) <-
             (* lint: allow domain-escape — arr is read-only in workers *)
             Some (try Ok (f arr.(i)) with exn -> Error exn));
          loop ()
        end
      in
      loop ()
    in
    let helpers = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join helpers;
    Array.to_list results
    |> List.map (function
         | Some (Ok r) -> r
         | Some (Error exn) -> raise exn
         | None -> assert false)
  end

(* The scheduler default is domain-local and worker domains start from a
   fresh heap default, so a batch's --sched choice is applied inside the
   worker body — bracketed, like the metrics reset, so a caller's own
   default survives the batch. *)
let with_sched sched f =
  match sched with
  | None -> f ()
  | Some backend ->
      let prev = Mcc_engine.Scheduler.default () in
      Mcc_engine.Scheduler.set_default backend;
      Fun.protect
        ~finally:(fun () -> Mcc_engine.Scheduler.set_default prev)
        f

let run_specs ?(jobs = 1) ?sched specs =
  parallel_map ~jobs
    (fun spec -> with_sched sched (fun () -> Experiments.run spec))
    specs

(* --- profiled execution ------------------------------------------------- *)

(* Every metric any experiment can touch, registered up front so each
   run's snapshot has the same schema whatever the spec exercises: a
   fig1 (Plain mode) row still carries the sigma.* counters, at zero. *)
let counter_catalog =
  [
    "engine.events";
    "link.tx_packets"; "link.tx_bytes";
    "link.enqueues"; "link.enqueue_bytes";
    "link.drops"; "link.drop_bytes";
    "link.marks"; "link.mark_bytes";
    "red.marks";
    "sigma.subscriptions"; "sigma.keys_accepted"; "sigma.keys_rejected";
    "sigma.acks"; "sigma.upgrade_graces"; "sigma.grace_admissions";
    "sigma.suppressed_duplicates"; "sigma.unsubscribes"; "sigma.lockouts";
    "sigma.specials"; "sigma.guesses";
    "sigma.fec.chunks"; "sigma.fec.duplicates";
    "flid.slots"; "flid.inferred_losses";
    "flid.joins"; "flid.leaves"; "flid.level_changes";
    "rlm.slots"; "rlm.inferred_losses";
    "rlm.joins"; "rlm.leaves"; "rlm.level_changes";
    "rep.slots"; "rep.switches"; "rep.inferred_losses";
    "tcp.retransmits"; "tcp.rto_fires";
    "attack.submissions"; "attack.guesses"; "attack.replays";
    "attack.churn_cycles"; "attack.colluder_shares";
  ]

let gauge_catalog =
  [
    (* Sim also registers engine.queue_capacity gauges (a generic one
       plus a per-backend view), but those are backend-performance
       diagnostics — the heap's high-water mark tracks peak event
       population while the wheel's slot table is fixed — so
       [run_spec_profiled] folds them into the profile and drops them
       from the deterministic snapshot; preregistering them here would
       only reintroduce backend-dependent record bytes. *)
    "sigma.fec.expansion";
  ]

(* Bounds must match the instrumentation sites or registration raises. *)
let preregister () =
  List.iter (fun name -> ignore (Metrics.counter name)) counter_catalog;
  List.iter (fun name -> ignore (Metrics.gauge name)) gauge_catalog;
  ignore
    (Metrics.histogram "sigma.subscribe_pairs"
       ~bounds:(Metrics.exponential_bounds ~base:1. ~count:5));
  ignore
    (Metrics.histogram "tcp.rtt_ms"
       ~bounds:(Metrics.exponential_bounds ~base:10. ~count:8))

(* Shared profile assembly: lift the engine counters (and the backend
   stats probe the sim parked on this domain) out of the snapshot into
   the profile record.  Queue capacity is a property of the scheduler
   backend, not of the simulated system: the heap's high-water mark
   follows peak event population while the wheel's slot table is a
   constant.  It travels in the profile (with [sched] and the wall
   clock), and dropping the gauges from the snapshot keeps sink records
   byte-identical across --sched. *)
let finish_profile ?sched metrics wall_s =
  let events =
    match List.assoc_opt "engine.events" metrics with
    | Some (Metrics.Counter n) -> n
    | Some _ | None -> 0
  in
  let queue_capacity =
    match List.assoc_opt "engine.queue_capacity" metrics with
    | Some (Metrics.Gauge v) -> int_of_float v
    | Some _ | None -> 0
  in
  let metrics =
    List.filter
      (fun (name, _) ->
        not (String.starts_with ~prefix:"engine.queue_capacity" name))
      metrics
  in
  let sched_name =
    Mcc_engine.Scheduler.backend_name
      (match sched with
      | Some b -> b
      | None -> Mcc_engine.Scheduler.default ())
  in
  let sched_stats = Profile.take_sched_stats () in
  ( metrics,
    Profile.make ~sched:sched_name ?sched_stats ~events ~queue_capacity
      ~wall_s () )

(* The registry is reset on both sides of the run: entering clean keeps
   the snapshot to this one spec, and leaving clean keeps a later run in
   the same domain (or the caller's own metrics) from inheriting stale
   handles. *)
let run_spec_profiled ?sched ?sample_dt spec =
  Metrics.reset ();
  preregister ();
  (* Sampling is configured inside the (possibly worker-domain) call, so
     a parallel batch samples exactly like a serial one; [disable] also
     clears the series, bracketing like the metrics reset. *)
  (match sample_dt with
  | Some dt -> Timeseries.enable ~dt ()
  | None -> ());
  let result, wall_s =
    Profile.with_wall_clock (fun () ->
        with_sched sched (fun () -> Experiments.run spec))
  in
  let metrics = Metrics.snapshot () in
  let series =
    match sample_dt with Some _ -> Timeseries.snapshot () | None -> []
  in
  Timeseries.disable ();
  Metrics.reset ();
  let metrics, profile = finish_profile ?sched metrics wall_s in
  (result, metrics, series, profile)

let run_specs_profiled ?(jobs = 1) ?sched ?sample_dt specs =
  parallel_map ~jobs (run_spec_profiled ?sched ?sample_dt) specs

(* --- instrumented execution (mcc profile) ------------------------------- *)

type instrumented = {
  i_result : Experiments.result;
  i_metrics : (string * Metrics.value) list;
  i_profile : Profile.t;
  i_prof : Mcc_obs.Prof.entry list;
  i_lineage : Mcc_obs.Lineage.summary;
}

(* Like [run_spec_profiled], but with the self-profiler and packet
   lineage collecting.  Prof/Lineage state is domain-local, so both the
   run and the snapshots happen inside this one call, on the caller's
   domain — there is deliberately no batch variant.  The root "run"
   span brackets the whole experiment, so the snapshot's self times sum
   to (almost exactly) the measured wall time; opening it here keeps
   every span site inside lib/, where the lint prof-span rule wants
   them. *)
let run_spec_instrumented ?sched ?sample_dt spec =
  Metrics.reset ();
  preregister ();
  (match sample_dt with
  | Some dt -> Timeseries.enable ~dt ()
  | None -> ());
  Mcc_obs.Prof.enable ();
  Mcc_obs.Lineage.enable ();
  let result, wall_s =
    Profile.with_wall_clock (fun () ->
        with_sched sched (fun () ->
            Mcc_obs.Prof.with_span "run" (fun () -> Experiments.run spec)))
  in
  let prof = Mcc_obs.Prof.snapshot () in
  let lineage = Mcc_obs.Lineage.summary () in
  Mcc_obs.Prof.disable ();
  Mcc_obs.Lineage.disable ();
  let metrics = Metrics.snapshot () in
  Timeseries.disable ();
  Metrics.reset ();
  let metrics, profile = finish_profile ?sched metrics wall_s in
  { i_result = result; i_metrics = metrics; i_profile = profile;
    i_prof = prof; i_lineage = lineage }

type row = {
  entry : entry;
  result : Experiments.result;
  metrics : (string * Metrics.value) list;
  series : (string * (float * float) list) list;
  profile : Profile.t;
}

let run_batch ?(jobs = 1) ?sched ?sample_dt ?(sinks = []) ?on_progress
    ?progress_interval entries =
  let specs = List.map (fun e -> e.spec) entries in
  let outs =
    match on_progress with
    | None -> run_specs_profiled ~jobs ?sched ?sample_dt specs
    | Some callback ->
        (* The monitor only ever drives the callback (the CLI's stderr
           meter): workers report each cell as it completes, but results
           still land in input-order slots and sinks are fed after the
           batch below — telemetry on/off cannot change sink bytes. *)
        let monitor =
          Mcc_obs.Progress.start ?interval:progress_interval
            ~total:(List.length specs) ~on_progress:callback ()
        in
        Fun.protect
          ~finally:(fun () -> ignore (Mcc_obs.Progress.stop monitor))
          (fun () ->
            parallel_map ~jobs
              (fun spec ->
                (* lint: allow gc-stats — live Progress meter only, never a sink *)
                let minor0 = Gc.minor_words () in
                let (_, _, _, profile) as out =
                  run_spec_profiled ?sched ?sample_dt spec
                in
                Mcc_obs.Progress.cell_done monitor
                  ~events:profile.Profile.events
                  (* lint: allow gc-stats — same meter-only use *)
                  ~minor_words:(Gc.minor_words () -. minor0);
                out)
              specs)
  in
  let rows =
    List.map2
      (fun entry (result, metrics, series, profile) ->
        { entry; result; metrics; series; profile })
      entries outs
  in
  List.iter
    (fun { entry = e; result; metrics; series; profile } ->
      let record =
        {
          Sink.name = e.name;
          group = e.group;
          spec = e.spec;
          result;
          metrics;
          series;
          profile = Some profile;
        }
      in
      List.iter (fun sink -> Sink.emit sink record) sinks)
    rows;
  rows
