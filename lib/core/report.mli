(** Uniform printing of experiment results: gnuplot-style series blocks
    and aligned summary rows, matching what the paper's figures plot. *)

val series :
  Format.formatter -> label:string -> (float * float) list -> unit
(** A "# label" header followed by "x y" rows and a blank line. *)

val row : Format.formatter -> string -> (string * float) list -> unit
(** One labelled summary row of name/value pairs. *)

val heading : Format.formatter -> string -> unit

val attack : Format.formatter -> Experiments.attack_result -> unit
val sweep : Format.formatter -> Experiments.sweep_point list -> unit
val responsiveness : Format.formatter -> Experiments.responsiveness_result -> unit
val rtt : Format.formatter -> (float * float) list -> unit
val convergence : Format.formatter -> Experiments.series list -> unit
val overhead : Format.formatter -> x_label:string -> Experiments.overhead_point list -> unit
