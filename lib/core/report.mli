(** Uniform presentation of experiment results.

    Every printer has two renderings: the human-readable
    gnuplot-style blocks the figures plot, and a machine-readable JSON
    twin ([*_to_json]) used by the {!Sink} writers — so this module,
    not the CLI, is the one place result fields are enumerated. *)

type series = (float * float) list

val series :
  Format.formatter -> label:string -> (float * float) list -> unit
(** A "# label" header followed by "x y" rows and a blank line. *)

val row : Format.formatter -> string -> (string * float) list -> unit
(** One labelled summary row of name/value pairs. *)

val heading : Format.formatter -> string -> unit

(** {1 Per-experiment printers} *)

val attack : Format.formatter -> Experiments.attack_result -> unit
val sweep : Format.formatter -> Experiments.sweep_point list -> unit
val responsiveness : Format.formatter -> Experiments.responsiveness_result -> unit
val rtt : Format.formatter -> (float * float) list -> unit
val convergence : Format.formatter -> Experiments.series list -> unit
val overhead : Format.formatter -> x_label:string -> Experiments.overhead_point list -> unit
val partial : Format.formatter -> Experiments.partial_result -> unit
val adversary : Format.formatter -> Experiments.adversary_result -> unit
val workload : Format.formatter -> Experiments.workload_result -> unit

val result : Format.formatter -> Experiments.result -> unit
(** Dispatches to the matching printer above. *)

(** {1 Machine-readable twins}

    Each returns a compact JSON object enumerating every field of the
    result, series included. *)

val attack_to_json : Experiments.attack_result -> string
val sweep_point_to_json : Experiments.sweep_point -> string
val responsiveness_to_json : Experiments.responsiveness_result -> string
val rtt_to_json : (float * float) list -> string
val convergence_to_json : Experiments.series list -> string
val overhead_to_json : Experiments.overhead_point -> string
val partial_to_json : Experiments.partial_result -> string

val adversary_json : Experiments.adversary_result -> Json.t
(** Per-cell damage metrics of a matrix cell ([containment_s] is null
    when the adversary was never contained). *)

val workload_json : Experiments.workload_result -> Json.t
(** Aggregate outcome of a declarative workload run. *)

val result_to_json : Experiments.result -> string
(** Dispatches to the matching [*_to_json] above. *)

val result_json : Experiments.result -> Json.t
(** The same object as a {!Json.t}, for embedding in larger documents
    (the JSONL sink nests it next to the spec). *)

val summary : Experiments.result -> (string * float) list
(** The result's scalar metrics as (metric, value) rows — what the CSV
    sink writes and what [row] prints. *)
