(** Single-bottleneck dumbbell topology (paper Section 5.1): every
    session crosses a three-link path whose middle link — the only
    bottleneck — is shared by all sessions.  Sender hosts hang off the
    left router, receiver hosts off the right (edge) router. *)

type t = {
  topo : Mcc_net.Topology.t;
  left : Mcc_net.Node.t;  (** router on the sender side *)
  right : Mcc_net.Node.t;  (** edge router on the receiver side *)
  forward : Mcc_net.Link.t;  (** left -> right bottleneck direction *)
  backward : Mcc_net.Link.t;
  bottleneck_rate_bps : float;
  bottleneck_delay_s : float;
}

val create :
  ?bottleneck_delay_s:float ->
  ?ecn:bool ->
  ?packet_buffer:bool ->
  Mcc_engine.Sim.t ->
  bottleneck_rate_bps:float ->
  unit ->
  t
(** Buffers are sized at two bandwidth-delay products of the standard
    path RTT.  [ecn] adds a marking threshold at half the bottleneck
    buffer.  [packet_buffer] additionally caps the bottleneck queue at
    the equivalent packet count (NS-2-style), which makes small control
    packets as droppable as data. *)

val add_sender : ?delay_s:float -> ?rate_bps:float -> t -> Mcc_net.Node.t
(** New host behind the left router (default 10 Mbps / 10 ms access). *)

val add_receiver : ?delay_s:float -> ?rate_bps:float -> t -> Mcc_net.Node.t
(** New host behind the right router.  A [rate_bps] below the shared
    bottleneck models a capacity-limited receiver (the heterogeneity
    that motivates layered multicast). *)

val add_receiver_lan : t -> hosts:int -> Mcc_net.Node.t * Mcc_net.Node.t list
(** A LAN segment behind the right router with [hosts] hosts sharing
    one router interface (for SIGMA suppression scenarios).  Returns
    (lan node, hosts). *)

val finalize : t -> unit
(** Computes unicast routes; call once the topology is complete. *)
