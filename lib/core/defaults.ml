let fair_share_bps = 250_000.
let bottleneck_delay_s = 0.020
let access_rate_bps = 10_000_000.
let access_delay_s = 0.010
let groups = 10
let min_rate_bps = 100_000.
let rate_factor = 1.5
let packet_size = 576
let flid_dl_slot = 0.5
let flid_ds_slot = 0.25
let key_width = 16

let layering () =
  Mcc_mcast.Layering.make ~groups ~min_rate_bps ~factor:rate_factor

let path_rtt_s ~bottleneck_delay_s ~access_delay_s =
  2. *. ((2. *. access_delay_s) +. bottleneck_delay_s)

let buffer_bytes ~bottleneck_rate_bps ~rtt_s =
  int_of_float (2. *. bottleneck_rate_bps *. rtt_s /. 8.)
