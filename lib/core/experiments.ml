module Flid = Mcc_mcast.Flid
module Layering = Mcc_mcast.Layering
module Meter = Mcc_util.Meter
module Tcp = Mcc_transport.Tcp
module Overhead = Mcc_delta.Overhead
module Prng = Mcc_util.Prng

type series = (float * float) list

let smooth meter = Meter.smoothed_kbps meter ~window:5.0

(* --- Figures 1 / 7 ---------------------------------------------------- *)

type attack_result = {
  f1 : series;
  f2 : series;
  t1 : series;
  t2 : series;
  f1_before : float;
  f1_after : float;
  f2_after : float;
  t1_after : float;
  t2_after : float;
}

let run_attack (p : Spec.attack_params) =
  let { Spec.seed; duration; attack_at; mode } = p in
  let t = Scenario.create ~seed ~bottleneck_rate_bps:1_000_000. () in
  let f1 =
    Scenario.add_multicast t ~mode
      ~receivers:[ Scenario.receiver ~behavior:(Flid.Inflate_after attack_at) () ]
      ()
  in
  let f2 = Scenario.add_multicast t ~mode ~receivers:[ Scenario.receiver () ] () in
  let t1 = Scenario.add_tcp t in
  let t2 = Scenario.add_tcp t in
  Scenario.run t ~seconds:duration;
  let m_f1 = Flid.receiver_meter (List.hd f1.Scenario.receivers) in
  let m_f2 = Flid.receiver_meter (List.hd f2.Scenario.receivers) in
  let m_t1 = Tcp.delivered_meter t1 in
  let m_t2 = Tcp.delivered_meter t2 in
  let before_lo = attack_at /. 2. in
  let settle = Float.min 10. (0.1 *. (duration -. attack_at)) in
  {
    f1 = smooth m_f1;
    f2 = smooth m_f2;
    t1 = smooth m_t1;
    t2 = smooth m_t2;
    f1_before = Meter.mean_kbps m_f1 ~lo:before_lo ~hi:attack_at;
    f1_after = Meter.mean_kbps m_f1 ~lo:(attack_at +. settle) ~hi:duration;
    f2_after = Meter.mean_kbps m_f2 ~lo:(attack_at +. settle) ~hi:duration;
    t1_after = Meter.mean_kbps m_t1 ~lo:(attack_at +. settle) ~hi:duration;
    t2_after = Meter.mean_kbps m_t2 ~lo:(attack_at +. settle) ~hi:duration;
  }

(* --- Figures 8a-8d ----------------------------------------------------- *)

type sweep_point = {
  sessions : int;
  individual_kbps : float list;
  average_kbps : float;
}

let run_sweep (p : Spec.sweep_params) =
  let { Spec.seed; duration; sessions; cross_traffic; mode } = p in
  let bottleneck =
    Defaults.fair_share_bps
    *. float_of_int (if cross_traffic then 2 * sessions else sessions)
  in
  let t = Scenario.create ~seed ~bottleneck_rate_bps:bottleneck () in
  let multicast =
    List.init sessions (fun _ ->
        Scenario.add_multicast t ~mode ~receivers:[ Scenario.receiver () ] ())
  in
  if cross_traffic then begin
    for _ = 1 to sessions do
      ignore (Scenario.add_tcp t)
    done;
    ignore
      (Scenario.add_onoff_cbr t ~rate_bps:(0.1 *. bottleneck) ~on_period:5.
         ~off_period:5.)
  end;
  Scenario.run t ~seconds:duration;
  let rates =
    List.map
      (fun session ->
        let meter =
          Flid.receiver_meter (List.hd session.Scenario.receivers)
        in
        (* Skip the first quarter: start-up transient. *)
        Meter.mean_kbps meter ~lo:(duration /. 4.) ~hi:duration)
      multicast
  in
  { sessions; individual_kbps = rates; average_kbps = Mcc_util.Stats.mean rates }

(* --- Figure 8e --------------------------------------------------------- *)

type responsiveness_result = {
  multicast : series;
  burst_start : float;
  burst_stop : float;
  before_kbps : float;
  during_kbps : float;
  after_kbps : float;
}

let run_responsiveness (p : Spec.responsiveness_params) =
  let { Spec.seed; duration; burst_start; burst_stop; burst_rate_bps; mode } =
    p
  in
  let t = Scenario.create ~seed ~bottleneck_rate_bps:1_000_000. () in
  let session =
    Scenario.add_multicast t ~mode ~receivers:[ Scenario.receiver () ] ()
  in
  ignore
    (Scenario.add_onoff_cbr t ~at:burst_start ~until:burst_stop
       ~rate_bps:burst_rate_bps ~on_period:(burst_stop -. burst_start)
       ~off_period:1.);
  Scenario.run t ~seconds:duration;
  let meter = Flid.receiver_meter (List.hd session.Scenario.receivers) in
  (* Settling margins scale with the burst window so abbreviated specs
     still measure inside it. *)
  let margin = Float.min 5. (0.25 *. (burst_stop -. burst_start)) in
  let tail = Float.min 10. (0.4 *. (duration -. burst_stop)) in
  {
    multicast = smooth meter;
    burst_start;
    burst_stop;
    before_kbps = Meter.mean_kbps meter ~lo:(burst_start *. 2. /. 3.) ~hi:burst_start;
    during_kbps = Meter.mean_kbps meter ~lo:(burst_start +. margin) ~hi:burst_stop;
    after_kbps = Meter.mean_kbps meter ~lo:(burst_stop +. tail) ~hi:duration;
  }

(* --- Figure 8f --------------------------------------------------------- *)

let run_rtt (p : Spec.rtt_params) =
  let { Spec.seed; duration; receivers; mode } = p in
  (* RTT = 2 * (access + bottleneck(5 ms) + sender access(10 ms)); the
     receiver access delay spreads RTTs over [30 ms, 220 ms]. *)
  let bottleneck_delay_s = 0.005 in
  let rtt_min = 0.030 and rtt_max = 0.220 in
  let specs =
    List.init receivers (fun i ->
        let frac =
          if receivers = 1 then 0.
          else float_of_int i /. float_of_int (receivers - 1)
        in
        let rtt = rtt_min +. (frac *. (rtt_max -. rtt_min)) in
        let access = (rtt /. 2.) -. bottleneck_delay_s -. Defaults.access_delay_s in
        (rtt, Scenario.receiver ~access_delay_s:(Float.max 0.0001 access) ()))
  in
  let t =
    Scenario.create ~seed ~bottleneck_delay_s
      ~bottleneck_rate_bps:Defaults.fair_share_bps ()
  in
  let session =
    Scenario.add_multicast t ~mode ~receivers:(List.map snd specs) ()
  in
  Scenario.run t ~seconds:duration;
  List.map2
    (fun (rtt, _) receiver ->
      let meter = Flid.receiver_meter receiver in
      (rtt *. 1000., Meter.mean_kbps meter ~lo:(duration /. 4.) ~hi:duration))
    specs session.Scenario.receivers

(* --- Figures 8g / 8h --------------------------------------------------- *)

let run_convergence (p : Spec.convergence_params) =
  let { Spec.seed; duration; join_times; mode } = p in
  let t =
    Scenario.create ~seed ~bottleneck_rate_bps:Defaults.fair_share_bps ()
  in
  let session =
    Scenario.add_multicast t ~mode
      ~receivers:(List.map (fun at -> Scenario.receiver ~at ()) join_times)
      ()
  in
  Scenario.run t ~seconds:duration;
  List.map
    (fun receiver ->
      Meter.smoothed_kbps (Flid.receiver_meter receiver) ~window:3.0)
    session.Scenario.receivers

(* --- Incremental deployment (paper Section 3.2.3) ---------------------- *)

type partial_result = {
  protected_attacker_kbps : float;
  unprotected_attacker_kbps : float;
  honest_kbps : float;
}

let run_partial (p : Spec.partial_params) =
  let ({ Spec.seed; duration; attack_at } : Spec.partial_params) = p in
  let module Sim = Mcc_engine.Sim in
  let module Topology = Mcc_net.Topology in
  let module Node = Mcc_net.Node in
  let module Router_agent = Mcc_sigma.Router_agent in
  let sim = Sim.create () in
  let topo = Topology.create sim in
  let prng = Prng.create seed in
  (* Left router, bottleneck, core fan-out to two edge routers: one runs
     SIGMA, the other is a legacy IGMP router. *)
  let left = Topology.add_node topo Node.Core_router in
  let core = Topology.add_node topo Node.Core_router in
  let edge_sigma = Topology.add_node topo Node.Edge_router in
  let edge_legacy = Topology.add_node topo Node.Edge_router in
  let bottleneck_rate = 750_000. (* 3 sessions x 250 kbps fair share *) in
  let rtt = Defaults.path_rtt_s ~bottleneck_delay_s:0.02 ~access_delay_s:0.01 in
  let buffer = Defaults.buffer_bytes ~bottleneck_rate_bps:bottleneck_rate ~rtt_s:rtt in
  let connect ?(rate = Defaults.access_rate_bps) ?(delay = 0.01) a b =
    ignore
      (Topology.connect topo a b ~rate_bps:rate ~delay_s:delay
         ~buffer_bytes:(Defaults.buffer_bytes ~bottleneck_rate_bps:rate ~rtt_s:rtt)
         ())
  in
  ignore
    (Topology.connect topo left core ~rate_bps:bottleneck_rate ~delay_s:0.02
       ~buffer_bytes:buffer ());
  connect core edge_sigma ~delay:0.005;
  connect core edge_legacy ~delay:0.005;
  let agent = Router_agent.attach topo edge_sigma in
  ignore agent;
  let host_behind edge =
    let h = Topology.add_node topo Node.Host in
    connect h edge;
    h
  in
  let make_session ~id ~edge ~receiver_mode ~behavior =
    let sender_host = Topology.add_node topo Node.Host in
    connect sender_host left;
    let layering = Defaults.layering () in
    let config =
      Flid.make_config ~id ~base_group:(0x7000 + (id * 32)) ~layering
        ~slot_duration:Defaults.flid_ds_slot ~mode:Flid.Robust ()
    in
    let _sender =
      Flid.sender_start topo ~node:sender_host ~prng:(Prng.split prng) config
    in
    (* A receiver behind a legacy router falls back to IGMP: model it as
       a Plain-mode receiver of the same (Robust) session, exactly the
       paper's incremental-deployment story. *)
    let receiver_config = { config with Flid.mode = receiver_mode } in
    let host = host_behind edge in
    Flid.receiver_start ~behavior topo ~host ~prng:(Prng.split prng)
      receiver_config
  in
  let protected_attacker =
    make_session ~id:1 ~edge:edge_sigma ~receiver_mode:Flid.Robust
      ~behavior:(Flid.Inflate_after attack_at)
  in
  let unprotected_attacker =
    make_session ~id:2 ~edge:edge_legacy ~receiver_mode:Flid.Plain
      ~behavior:(Flid.Inflate_after attack_at)
  in
  let honest =
    make_session ~id:3 ~edge:edge_sigma ~receiver_mode:Flid.Robust
      ~behavior:Flid.Well_behaved
  in
  Topology.compute_routes topo;
  Sim.run_until sim duration;
  let settle = Float.min 10. (0.25 *. (duration -. attack_at)) in
  let after r =
    Meter.mean_kbps (Flid.receiver_meter r) ~lo:(attack_at +. settle) ~hi:duration
  in
  {
    protected_attacker_kbps = after protected_attacker;
    unprotected_attacker_kbps = after unprotected_attacker;
    honest_kbps = after honest;
  }

(* --- Figures 9a / 9b --------------------------------------------------- *)

type overhead_point = {
  x : float;
  delta_analytic : float;
  sigma_analytic : float;
  delta_measured : float;
  sigma_measured : float;
}

(* The paper's overhead experiment: cumulative rate R = 4 Mbps, minimal
   group 100 Kbps, 500-byte (s = 4000 bits) packets, 16-bit keys, 8-bit
   slot numbers, FEC overcoming 50% loss. *)
let run_overhead (p : Spec.overhead_params) =
  let { Spec.seed; duration; groups; slot; axis } = p in
  let r = 100_000. and cumulative = 4_000_000. in
  let factor =
    if groups = 1 then 2.
    else (cumulative /. r) ** (1. /. float_of_int (groups - 1))
  in
  let layering = Layering.make ~groups ~min_rate_bps:r ~factor in
  let t =
    Scenario.create ~seed ~bottleneck_rate_bps:(2. *. cumulative) ()
  in
  (* The overhead analysis uses 500-byte (s = 4000 bits) data packets. *)
  let packet_size = 500 in
  let session =
    Scenario.add_multicast t ~mode:Flid.Robust ~slot ~layering ~packet_size
      ~receivers:[ Scenario.receiver () ]
      ()
  in
  Scenario.run t ~seconds:duration;
  let stats = Flid.sender_stats session.Scenario.sender in
  let slots = max 1 stats.Flid.slots in
  let upgrade_freq =
    Array.init (max 0 (groups - 1)) (fun i ->
        float_of_int stats.Flid.authorizations.(i + 1) /. float_of_int slots)
  in
  let params =
    {
      Overhead.groups;
      min_rate_bps = r;
      rate_factor = factor;
      slot;
      data_bits = packet_size * 8;
      key_bits = 16;
      slot_number_bits = 8;
      fec_expansion = stats.Flid.fec_expansion;
      header_bits =
        (if slots = 0 then 0 else stats.Flid.sigma_header_bits / slots);
      upgrade_freq;
    }
  in
  let measured_delta =
    if stats.Flid.data_bits = 0 then 0.
    else float_of_int stats.Flid.delta_bits /. float_of_int stats.Flid.data_bits
  in
  let measured_sigma =
    if stats.Flid.data_bits = 0 then 0.
    else
      float_of_int (stats.Flid.sigma_payload_bits + stats.Flid.sigma_header_bits)
      /. float_of_int stats.Flid.data_bits
  in
  {
    x = (match axis with Spec.Groups -> float_of_int groups | Spec.Slot -> slot);
    delta_analytic = 100. *. Overhead.delta_overhead params;
    sigma_analytic = 100. *. Overhead.sigma_overhead params;
    delta_measured = 100. *. measured_delta;
    sigma_measured = 100. *. measured_sigma;
  }

(* --- Adversary cells (defence-evaluation matrix) ------------------------ *)

type adversary_result = {
  honest_before_kbps : float;  (** honest receiver before the attack *)
  honest_after_kbps : float;  (** honest receiver once the attack runs *)
  honest_loss_pct : float;  (** 100 * (1 - after / before), clamped at 0 *)
  attacker_kbps : float;  (** adversary goodput during the attack *)
  attacker_gain : float;  (** attacker_kbps / fair share *)
  containment_s : float option;
      (** seconds from attack start until the adversary's goodput drops
          to (and stays within) 1.5 fair shares; None = never contained *)
  tcp_kbps : float;  (** the competing TCP flow during the attack *)
  keys_rejected : int;  (** edge-router stats; 0 without an agent *)
  lockouts : int;
  grace_admissions : int;
}

(* The cell runner lives in Mcc_attack (it needs Scenario *and* the
   strategy library), which depends on this library; the dispatch below
   reaches it through this hook, registered when Mcc_attack.Matrix is
   linked. *)
let adversary_impl : (Spec.adversary_params -> adversary_result) option Atomic.t =
  Atomic.make None

let set_adversary_impl f = Atomic.set adversary_impl (Some f)

let run_adversary p =
  match Atomic.get adversary_impl with
  | Some f -> f p
  | None ->
      failwith
        "Spec.Adversary requires the attack subsystem: link the mcc_attack \
         library (module Mcc_attack.Matrix) into the executable"

(* --- Declarative workloads --------------------------------------------- *)

type workload_result = {
  w_nodes : int;  (** nodes in the generated topology *)
  w_links : int;
  w_receivers : int;  (** receiver instances started (churn included) *)
  w_mean_goodput_kbps : float;
      (** mean over receivers of each receiver's goodput over its own
          active window (post-warmup) *)
  w_min_goodput_kbps : float;
  w_max_goodput_kbps : float;
  w_cross_kbps : float;  (** background traffic delivered, all flows *)
  w_attacker_kbps : float;  (** 0 without an attack *)
  w_drops : int;  (** queue drops summed over every link *)
  w_marks : int;  (** ECN marks summed over every link *)
  w_keys_rejected : int;  (** edge-agent stats; 0 without SIGMA *)
  w_lockouts : int;
}

(* Like the adversary hook: the workload builder lives in Mcc_workload
   (it needs the topology generators and every protocol), which depends
   on this library; dispatch reaches it through this hook, registered
   when Mcc_workload.Build is linked. *)
let workload_impl : (Spec.workload_params -> workload_result) option Atomic.t =
  Atomic.make None

let set_workload_impl f = Atomic.set workload_impl (Some f)

let run_workload p =
  match Atomic.get workload_impl with
  | Some f -> f p
  | None ->
      failwith
        "Spec.Workload requires the workload subsystem: link the mcc_workload \
         library (module Mcc_workload.Build) into the executable"

(* --- Spec dispatch ------------------------------------------------------ *)

type result =
  | Attack of attack_result
  | Sweep_point of sweep_point
  | Responsiveness of responsiveness_result
  | Rtt of (float * float) list
  | Convergence of series list
  | Overhead of overhead_point
  | Partial of partial_result
  | Adversary of adversary_result
  | Workload of workload_result

let run = function
  | Spec.Attack p -> Attack (run_attack p)
  | Spec.Sweep p -> Sweep_point (run_sweep p)
  | Spec.Responsiveness p -> Responsiveness (run_responsiveness p)
  | Spec.Rtt p -> Rtt (run_rtt p)
  | Spec.Convergence p -> Convergence (run_convergence p)
  | Spec.Overhead p -> Overhead (run_overhead p)
  | Spec.Partial p -> Partial (run_partial p)
  | Spec.Adversary p -> Adversary (run_adversary p)
  | Spec.Workload p -> Workload (run_workload p)
