module Flid = Mcc_mcast.Flid

type mode = Flid.mode

type attack_params = {
  seed : int;
  duration : float;
  attack_at : float;
  mode : mode;
}

type sweep_params = {
  seed : int;
  duration : float;
  sessions : int;
  cross_traffic : bool;
  mode : mode;
}

type responsiveness_params = {
  seed : int;
  duration : float;
  burst_start : float;
  burst_stop : float;
  burst_rate_bps : float;
  mode : mode;
}

type rtt_params = {
  seed : int;
  duration : float;
  receivers : int;
  mode : mode;
}

type convergence_params = {
  seed : int;
  duration : float;
  join_times : float list;
  mode : mode;
}

type overhead_axis = Groups | Slot

type overhead_params = {
  seed : int;
  duration : float;
  groups : int;
  slot : float;
  axis : overhead_axis;
}

type partial_params = {
  seed : int;
  duration : float;
  attack_at : float;
}

type attack_kind =
  | Persistent_inflation
  | Pulse_inflation of { period_s : float; duty : float }
  | Key_guessing of { budget_per_slot : int }
  | Stale_replay of { lag_slots : int }
  | Grace_churn of { period_slots : float }
  | Collusion of { colluders : int }

type protocol = Flid_ds | Rlm_threshold | Replicated | Oversub

type defence = Undefended | Delta_only | Delta_sigma | Delta_sigma_ecn

type adversary_params = {
  seed : int;
  duration : float;
  attack_at : float;
  attack : attack_kind;
  protocol : protocol;
  defence : defence;
}

type topology_spec =
  | Dumbbell_topo
  | Fat_tree of { k : int; core_rate_bps : float }
  | Star_lans of { lans : int; hosts_per_lan : int; core_rate_bps : float }
  | Isp_random of {
      routers : int;
      extra_links : int;
      hosts_per_edge : int;
      core_rate_bps : float;
    }

type churn_spec =
  | No_churn
  | Flash_crowd of { at : float; arrivals : int; leave_after : float }
  | Diurnal of { period : float; fraction : float }
  | Regional_outage of { at : float; restore_at : float; fraction : float }

type traffic_spec =
  | Web_mix of { flows : int; rate_bps : float; mean_on : float; mean_off : float }
  | Tcp_flows of { flows : int }

type workload_params = {
  seed : int;
  duration : float;
  topology : topology_spec;
  protocol : protocol;
  defence : defence;
  receivers : int;
  churn : churn_spec;
  traffic : traffic_spec list;
  attack : attack_kind option;
  attack_at : float;
}

type t =
  | Attack of attack_params
  | Sweep of sweep_params
  | Responsiveness of responsiveness_params
  | Rtt of rtt_params
  | Convergence of convergence_params
  | Overhead of overhead_params
  | Partial of partial_params
  | Adversary of adversary_params
  | Workload of workload_params

(* The defaults are the paper's Section 5.1 settings; seeds match the
   fixed seeds the pre-spec API used, so regenerated figures are
   bit-compatible with EXPERIMENTS.md. *)

let default_attack =
  { seed = 7; duration = 200.; attack_at = 100.; mode = Flid.Robust }

let default_sweep =
  { seed = 12; duration = 200.; sessions = 1; cross_traffic = false;
    mode = Flid.Robust }

let default_responsiveness =
  { seed = 19; duration = 100.; burst_start = 45.; burst_stop = 75.;
    burst_rate_bps = 800_000.; mode = Flid.Robust }

let default_rtt = { seed = 23; duration = 200.; receivers = 20; mode = Flid.Robust }

let default_convergence =
  { seed = 29; duration = 40.; join_times = [ 0.; 10.; 20.; 30. ];
    mode = Flid.Robust }

let default_overhead =
  { seed = 31; duration = 30.; groups = 10; slot = 0.25; axis = Groups }

let default_partial = { seed = 37; duration = 120.; attack_at = 40. }

let default_adversary =
  { seed = 41; duration = 120.; attack_at = 30.;
    attack = Persistent_inflation; protocol = Flid_ds; defence = Delta_sigma }

let default_workload =
  { seed = 43; duration = 120.;
    topology = Fat_tree { k = 4; core_rate_bps = 2_000_000. };
    protocol = Flid_ds; defence = Delta_sigma; receivers = 6;
    churn = No_churn; traffic = []; attack = None; attack_at = 40. }

let attack_str = function
  | Persistent_inflation -> "inflate"
  | Pulse_inflation _ -> "pulse"
  | Key_guessing _ -> "guess"
  | Stale_replay _ -> "replay"
  | Grace_churn _ -> "churn"
  | Collusion _ -> "collude"

(* The protocol registry: every scheme the matrix can run, with its CLI
   short name and scorecard column heading.  Matrix columns, scorecard
   headings and CLI parsing all derive from this single list, so adding
   a protocol here is all it takes to grow the matrix. *)
let protocols =
  [
    (Flid_ds, "flid", "FLID-DS (layered, XOR keys)");
    (Rlm_threshold, "rlm", "RLM-like (threshold keys)");
    (Replicated, "replicated", "Replicated streams");
    (Oversub, "oversub", "Oversub (ECN-EWMA layered)");
  ]

let protocol_str p =
  let _, s, _ = List.find (fun (q, _, _) -> q = p) protocols in
  s

let protocol_heading p =
  let _, _, h = List.find (fun (q, _, _) -> q = p) protocols in
  h

let defence_str = function
  | Undefended -> "plain"
  | Delta_only -> "delta"
  | Delta_sigma -> "delta+sigma"
  | Delta_sigma_ecn -> "delta+sigma+ecn"

let topology_str = function
  | Dumbbell_topo -> "dumbbell"
  | Fat_tree _ -> "fat_tree"
  | Star_lans _ -> "star_lans"
  | Isp_random _ -> "isp_random"

let churn_str = function
  | No_churn -> "none"
  | Flash_crowd _ -> "flash_crowd"
  | Diurnal _ -> "diurnal"
  | Regional_outage _ -> "regional_outage"

let traffic_str = function Web_mix _ -> "web" | Tcp_flows _ -> "tcp"

let kind = function
  | Attack _ -> "attack"
  | Sweep _ -> "sweep"
  | Responsiveness _ -> "responsiveness"
  | Rtt _ -> "rtt"
  | Convergence _ -> "convergence"
  | Overhead _ -> "overhead"
  | Partial _ -> "partial"
  | Adversary _ -> "adversary"
  | Workload _ -> "workload"

let seed = function
  | Attack p -> p.seed
  | Sweep p -> p.seed
  | Responsiveness p -> p.seed
  | Rtt p -> p.seed
  | Convergence p -> p.seed
  | Overhead p -> p.seed
  | Partial p -> p.seed
  | Adversary p -> p.seed
  | Workload p -> p.seed

let duration = function
  | Attack p -> p.duration
  | Sweep p -> p.duration
  | Responsiveness p -> p.duration
  | Rtt p -> p.duration
  | Convergence p -> p.duration
  | Overhead p -> p.duration
  | Partial p -> p.duration
  | Adversary p -> p.duration
  | Workload p -> p.duration

let scale_time t ~factor =
  match t with
  | Attack p ->
      Attack
        { p with duration = p.duration *. factor;
          attack_at = p.attack_at *. factor }
  | Sweep p -> Sweep { p with duration = p.duration *. factor }
  | Responsiveness p ->
      Responsiveness
        { p with duration = p.duration *. factor;
          burst_start = p.burst_start *. factor;
          burst_stop = p.burst_stop *. factor }
  | Rtt p -> Rtt { p with duration = p.duration *. factor }
  | Convergence p ->
      Convergence
        { p with duration = p.duration *. factor;
          join_times = List.map (fun j -> j *. factor) p.join_times }
  | Overhead p -> Overhead { p with duration = p.duration *. factor }
  | Partial p ->
      Partial
        { p with duration = p.duration *. factor;
          attack_at = p.attack_at *. factor }
  | Adversary p ->
      (* Attack-internal timing (pulse period, churn cadence) tracks the
         protocol's slot/RED clocks, not the horizon, so it stays put. *)
      Adversary
        { p with duration = p.duration *. factor;
          attack_at = p.attack_at *. factor }
  | Workload p ->
      (* Churn instants live on the horizon and scale with it; traffic
         on/off periods track flow dynamics and stay put. *)
      let churn =
        match p.churn with
        | No_churn -> No_churn
        | Flash_crowd c ->
            Flash_crowd
              { c with at = c.at *. factor;
                leave_after = c.leave_after *. factor }
        | Diurnal c -> Diurnal { c with period = c.period *. factor }
        | Regional_outage c ->
            Regional_outage
              { c with at = c.at *. factor;
                restore_at = c.restore_at *. factor }
      in
      Workload
        { p with duration = p.duration *. factor;
          attack_at = p.attack_at *. factor; churn }

let mode_str = function Flid.Plain -> "plain" | Flid.Robust -> "robust"

let to_json t =
  let base = [ ("kind", Json.String (kind t)) ] in
  let fields =
    match t with
    | Attack p ->
        [
          ("seed", Json.Int p.seed);
          ("duration", Json.Float p.duration);
          ("attack_at", Json.Float p.attack_at);
          ("mode", Json.String (mode_str p.mode));
        ]
    | Sweep p ->
        [
          ("seed", Json.Int p.seed);
          ("duration", Json.Float p.duration);
          ("sessions", Json.Int p.sessions);
          ("cross_traffic", Json.Bool p.cross_traffic);
          ("mode", Json.String (mode_str p.mode));
        ]
    | Responsiveness p ->
        [
          ("seed", Json.Int p.seed);
          ("duration", Json.Float p.duration);
          ("burst_start", Json.Float p.burst_start);
          ("burst_stop", Json.Float p.burst_stop);
          ("burst_rate_bps", Json.Float p.burst_rate_bps);
          ("mode", Json.String (mode_str p.mode));
        ]
    | Rtt p ->
        [
          ("seed", Json.Int p.seed);
          ("duration", Json.Float p.duration);
          ("receivers", Json.Int p.receivers);
          ("mode", Json.String (mode_str p.mode));
        ]
    | Convergence p ->
        [
          ("seed", Json.Int p.seed);
          ("duration", Json.Float p.duration);
          ("join_times", Json.List (List.map (fun j -> Json.Float j) p.join_times));
          ("mode", Json.String (mode_str p.mode));
        ]
    | Overhead p ->
        [
          ("seed", Json.Int p.seed);
          ("duration", Json.Float p.duration);
          ("groups", Json.Int p.groups);
          ("slot", Json.Float p.slot);
          ( "axis",
            Json.String (match p.axis with Groups -> "groups" | Slot -> "slot")
          );
        ]
    | Partial p ->
        [
          ("seed", Json.Int p.seed);
          ("duration", Json.Float p.duration);
          ("attack_at", Json.Float p.attack_at);
        ]
    | Adversary p ->
        let attack_fields =
          match p.attack with
          | Persistent_inflation -> []
          | Pulse_inflation { period_s; duty } ->
              [ ("period_s", Json.Float period_s); ("duty", Json.Float duty) ]
          | Key_guessing { budget_per_slot } ->
              [ ("budget_per_slot", Json.Int budget_per_slot) ]
          | Stale_replay { lag_slots } -> [ ("lag_slots", Json.Int lag_slots) ]
          | Grace_churn { period_slots } ->
              [ ("period_slots", Json.Float period_slots) ]
          | Collusion { colluders } -> [ ("colluders", Json.Int colluders) ]
        in
        [
          ("seed", Json.Int p.seed);
          ("duration", Json.Float p.duration);
          ("attack_at", Json.Float p.attack_at);
          ("attack", Json.String (attack_str p.attack));
          ("protocol", Json.String (protocol_str p.protocol));
          ("defence", Json.String (defence_str p.defence));
        ]
        @ attack_fields
    | Workload p ->
        let topology =
          let base = [ ("kind", Json.String (topology_str p.topology)) ] in
          match p.topology with
          | Dumbbell_topo -> Json.Obj base
          | Fat_tree { k; core_rate_bps } ->
              Json.Obj
                (base
                @ [ ("k", Json.Int k);
                    ("core_rate_bps", Json.Float core_rate_bps) ])
          | Star_lans { lans; hosts_per_lan; core_rate_bps } ->
              Json.Obj
                (base
                @ [ ("lans", Json.Int lans);
                    ("hosts_per_lan", Json.Int hosts_per_lan);
                    ("core_rate_bps", Json.Float core_rate_bps) ])
          | Isp_random { routers; extra_links; hosts_per_edge; core_rate_bps }
            ->
              Json.Obj
                (base
                @ [ ("routers", Json.Int routers);
                    ("extra_links", Json.Int extra_links);
                    ("hosts_per_edge", Json.Int hosts_per_edge);
                    ("core_rate_bps", Json.Float core_rate_bps) ])
        in
        let churn =
          let base = [ ("kind", Json.String (churn_str p.churn)) ] in
          match p.churn with
          | No_churn -> Json.Obj base
          | Flash_crowd { at; arrivals; leave_after } ->
              Json.Obj
                (base
                @ [ ("at", Json.Float at);
                    ("arrivals", Json.Int arrivals);
                    ("leave_after", Json.Float leave_after) ])
          | Diurnal { period; fraction } ->
              Json.Obj
                (base
                @ [ ("period", Json.Float period);
                    ("fraction", Json.Float fraction) ])
          | Regional_outage { at; restore_at; fraction } ->
              Json.Obj
                (base
                @ [ ("at", Json.Float at);
                    ("restore_at", Json.Float restore_at);
                    ("fraction", Json.Float fraction) ])
        in
        let traffic =
          Json.List
            (List.map
               (fun t ->
                 let base = [ ("kind", Json.String (traffic_str t)) ] in
                 match t with
                 | Web_mix { flows; rate_bps; mean_on; mean_off } ->
                     Json.Obj
                       (base
                       @ [ ("flows", Json.Int flows);
                           ("rate_bps", Json.Float rate_bps);
                           ("mean_on", Json.Float mean_on);
                           ("mean_off", Json.Float mean_off) ])
                 | Tcp_flows { flows } ->
                     Json.Obj (base @ [ ("flows", Json.Int flows) ]))
               p.traffic)
        in
        [
          ("seed", Json.Int p.seed);
          ("duration", Json.Float p.duration);
          ("topology", topology);
          ("protocol", Json.String (protocol_str p.protocol));
          ("defence", Json.String (defence_str p.defence));
          ("receivers", Json.Int p.receivers);
          ("churn", churn);
          ("traffic", traffic);
        ]
        @ (match p.attack with
          | None -> []
          | Some a ->
              [
                ("attack", Json.String (attack_str a));
                ("attack_at", Json.Float p.attack_at);
              ])
  in
  Json.Obj (base @ fields)

let pp fmt t =
  match t with
  | Attack p ->
      Format.fprintf fmt "attack seed=%d duration=%gs attack_at=%gs mode=%s"
        p.seed p.duration p.attack_at (mode_str p.mode)
  | Sweep p ->
      Format.fprintf fmt "sweep seed=%d duration=%gs sessions=%d cross=%b mode=%s"
        p.seed p.duration p.sessions p.cross_traffic (mode_str p.mode)
  | Responsiveness p ->
      Format.fprintf fmt
        "responsiveness seed=%d duration=%gs burst=[%g,%g]s @@%gbps mode=%s"
        p.seed p.duration p.burst_start p.burst_stop p.burst_rate_bps
        (mode_str p.mode)
  | Rtt p ->
      Format.fprintf fmt "rtt seed=%d duration=%gs receivers=%d mode=%s" p.seed
        p.duration p.receivers (mode_str p.mode)
  | Convergence p ->
      Format.fprintf fmt "convergence seed=%d duration=%gs joins=[%s] mode=%s"
        p.seed p.duration
        (String.concat ";" (List.map (Printf.sprintf "%g") p.join_times))
        (mode_str p.mode)
  | Overhead p ->
      Format.fprintf fmt "overhead seed=%d duration=%gs groups=%d slot=%gs by=%s"
        p.seed p.duration p.groups p.slot
        (match p.axis with Groups -> "groups" | Slot -> "slot")
  | Partial p ->
      Format.fprintf fmt "partial seed=%d duration=%gs attack_at=%gs" p.seed
        p.duration p.attack_at
  | Adversary p ->
      Format.fprintf fmt
        "adversary seed=%d duration=%gs attack_at=%gs attack=%s protocol=%s \
         defence=%s"
        p.seed p.duration p.attack_at (attack_str p.attack)
        (protocol_str p.protocol) (defence_str p.defence)
  | Workload p ->
      Format.fprintf fmt
        "workload seed=%d duration=%gs topology=%s protocol=%s defence=%s \
         receivers=%d churn=%s traffic=[%s]%s"
        p.seed p.duration (topology_str p.topology) (protocol_str p.protocol)
        (defence_str p.defence) p.receivers (churn_str p.churn)
        (String.concat ";" (List.map traffic_str p.traffic))
        (match p.attack with
        | None -> ""
        | Some a ->
            Printf.sprintf " attack=%s@%gs" (attack_str a) p.attack_at)
