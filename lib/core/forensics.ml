(* Attack-forensics reports: render the series a sampled run recorded
   (and optionally its trace) into a Markdown narrative — who inflated
   their subscription, when SIGMA evicted them, how long throughput took
   to recover — without rerunning the simulation.

   The input is what [Sink.series_jsonl] and [Tracer.jsonl] wrote; both
   parse with [Json.of_string], so [mcc report] works on any saved run. *)

module Tracer = Mcc_obs.Tracer

type run = {
  name : string;
  group : string;
  kind : string;
  spec : Json.t;
  series : (string * (float * float) list) list;
}

type trace_event = {
  time : float;
  level : string;
  component : string;
  event : string;
  attrs : (string * Json.t) list;
}

(* --- parsing ----------------------------------------------------------- *)

let parse_series_line line =
  match Json.of_string line with
  | Error e -> Error ("invalid JSON: " ^ e)
  | Ok json -> (
      let str field = Option.bind (Json.member field json) Json.to_string_opt in
      match (str "name", str "group", str "kind", Json.member "series" json) with
      | Some name, Some group, Some kind, Some (Json.Obj fields) -> (
          let parsed =
            List.map
              (fun (sname, v) ->
                match Json.to_series v with
                | Some points -> Ok (sname, points)
                | None -> Error sname)
              fields
          in
          match
            List.find_map
              (function Error sname -> Some sname | Ok _ -> None)
              parsed
          with
          | Some sname -> Error (Printf.sprintf "series %S is not [[t,v],...]" sname)
          | None ->
              let series =
                List.filter_map (function Ok s -> Some s | Error _ -> None)
                  parsed
              in
              Ok
                { name; group; kind;
                  spec = Option.value (Json.member "spec" json) ~default:Json.Null;
                  series })
      | _ -> Error "missing name/group/kind/series fields")

let parse_trace_line line =
  match Json.of_string line with
  | Error e -> Error ("invalid JSON: " ^ e)
  | Ok json -> (
      let str field = Option.bind (Json.member field json) Json.to_string_opt in
      let time = Option.bind (Json.member "t" json) Json.to_float_opt in
      match (time, str "level", str "component", str "event") with
      | Some time, Some level, Some component, Some event ->
          let attrs =
            match Json.member "attrs" json with
            | Some (Json.Obj fields) -> fields
            | _ -> []
          in
          Ok { time; level; component; event; attrs }
      | _ -> Error "missing t/level/component/event fields")

let parse_lines parse lines =
  let rec go n acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest when String.trim line = "" -> go (n + 1) acc rest
    | line :: rest -> (
        match parse line with
        | Ok v -> go (n + 1) (v :: acc) rest
        | Error e -> Error (Printf.sprintf "line %d: %s" n e))
  in
  go 1 [] lines

let parse_series_lines lines = parse_lines parse_series_line lines
let parse_trace_lines lines = parse_lines parse_trace_line lines

(* --- sparklines -------------------------------------------------------- *)

(* Pure-ASCII value ramp, low to high; renders anywhere (terminals,
   Markdown code spans) without font support for block glyphs. *)
(* lint: allow shared-mutable-toplevel — write-never sparkline glyph ramp *)
let ramp = [| ' '; '.'; ':'; '-'; '='; '+'; '*'; '#'; '%'; '@' |]

let sparkline ?(width = 60) points =
  match points with
  | [] -> String.make width ' '
  | points ->
      let times = List.map fst points in
      let lo_t = List.fold_left min (List.hd times) times in
      let hi_t = List.fold_left max (List.hd times) times in
      let vals = List.map snd points in
      let lo_v = List.fold_left min (List.hd vals) vals in
      let hi_v = List.fold_left max (List.hd vals) vals in
      (* Bin by time, average within a bin, leave empty bins blank. *)
      let sums = Array.make width 0. and counts = Array.make width 0 in
      let span_t = hi_t -. lo_t in
      List.iter
        (fun (t, v) ->
          let i =
            if span_t <= 0. then 0
            else
              min (width - 1)
                (int_of_float ((t -. lo_t) /. span_t *. float_of_int width))
          in
          sums.(i) <- sums.(i) +. v;
          counts.(i) <- counts.(i) + 1)
        points;
      let span_v = hi_v -. lo_v in
      String.init width (fun i ->
          if counts.(i) = 0 then ' '
          else
            let v = sums.(i) /. float_of_int counts.(i) in
            let r =
              if span_v <= 0. then if hi_v > 0. then Array.length ramp - 1 else 1
              else
                1
                + int_of_float
                    ((v -. lo_v) /. span_v
                    *. float_of_int (Array.length ramp - 2))
            in
            ramp.(min (Array.length ramp - 1) (max 1 r)))

(* --- series statistics ------------------------------------------------- *)

let values_in points ~lo ~hi =
  List.filter_map
    (fun (t, v) -> if t >= lo && t < hi then Some v else None)
    points

let mean = function
  | [] -> 0.
  | vs -> List.fold_left ( +. ) 0. vs /. float_of_int (List.length vs)

let minmax points =
  match List.map snd points with
  | [] -> (0., 0.)
  | v :: vs -> (List.fold_left min v vs, List.fold_left max v vs)

(* First sample at or after [from] whose value sustains >= threshold:
   the "throughput recovery" instant of the attack narrative. *)
let recovery_time points ~from ~threshold =
  List.find_map
    (fun (t, v) -> if t >= from && v >= threshold then Some t else None)
    points

(* --- packet lineage ----------------------------------------------------- *)

module Lineage = Mcc_obs.Lineage

(* Inverse of [Lineage.to_json]: read a saved lineage summary back so
   [mcc report --profile] can render containment latency without
   rerunning the simulation. *)
let lineage_of_json json =
  let int field j ~default =
    match Option.bind (Json.member field j) Json.to_float_opt with
    | Some f -> int_of_float f
    | None -> default
  in
  let flt field j ~default =
    match Option.bind (Json.member field j) Json.to_float_opt with
    | Some f -> f
    | None -> default
  in
  let str field j ~default =
    match Option.bind (Json.member field j) Json.to_string_opt with
    | Some s -> s
    | None -> default
  in
  let transition j =
    {
      Lineage.from_comp = str "from" j ~default:"?";
      to_comp = str "to" j ~default:"?";
      t_count = int "count" j ~default:0;
      t_total_s = flt "total_s" j ~default:0.;
      t_max_s = flt "max_s" j ~default:0.;
    }
  in
  let hop = function
    | Json.List [ t; Json.String comp ] ->
        Some (Option.value (Json.to_float_opt t) ~default:0., comp)
    | _ -> None
  in
  let case j =
    {
      Lineage.c_kind = str "kind" j ~default:"?";
      c_time = flt "t" j ~default:0.;
      c_attrs =
        (match Json.member "attrs" j with
        | Some (Json.Obj fields) -> fields
        | _ -> []);
      c_session = int "session" j ~default:(-1);
      c_level = int "level" j ~default:(-1);
      c_born = flt "born" j ~default:0.;
      c_hops =
        (match Json.member "hops" j with
        | Some (Json.List hops) -> List.filter_map hop hops
        | _ -> []);
    }
  in
  let list field j =
    match Json.member field j with Some (Json.List l) -> l | _ -> []
  in
  match json with
  | Json.Obj _ ->
      Ok
        {
          Lineage.s_transitions = List.map transition (list "transitions" json);
          s_cases = List.map case (list "cases" json);
          s_retired = int "retired" json ~default:0;
          s_allocated = int "allocated" json ~default:0;
          s_pool_hits = int "pool_hits" json ~default:0;
          s_cases_dropped = int "cases_dropped" json ~default:0;
        }
  | _ -> Error "lineage summary is not a JSON object"

let ms s = s *. 1e3

let render_lineage ?attack_at ?containment_s fmt (s : Lineage.summary) =
  let pf f = Format.fprintf fmt f in
  if s.Lineage.s_transitions <> [] then begin
    pf "@.## Per-hop containment latency@.@.";
    pf "| hop | count | total (s) | mean (ms) | max (ms) |@.";
    pf "|---|---|---|---|---|@.";
    List.iter
      (fun tr ->
        let mean_ms =
          if tr.Lineage.t_count = 0 then 0.
          else ms (tr.Lineage.t_total_s /. float_of_int tr.Lineage.t_count)
        in
        pf "| `%s -> %s` | %d | %.6g | %.4g | %.4g |@." tr.Lineage.from_comp
          tr.Lineage.to_comp tr.Lineage.t_count tr.Lineage.t_total_s mean_ms
          (ms tr.Lineage.t_max_s))
      s.Lineage.s_transitions;
    pf "@.%d chains retired (%d records allocated, %d pool hits%s)@."
      s.Lineage.s_retired s.Lineage.s_allocated s.Lineage.s_pool_hits
      (if s.Lineage.s_cases_dropped > 0 then
         Printf.sprintf ", %d cases dropped" s.Lineage.s_cases_dropped
       else "")
  end;
  (* The critical path: the first preserved key-rejection chain walks the
     attacker's packet from origin to the SIGMA denial, hop by hop. *)
  match
    List.find_opt (fun c -> c.Lineage.c_kind = "key_reject") s.Lineage.s_cases
  with
  | None -> ()
  | Some c ->
      pf "@.## Containment critical path@.@.";
      let attr name =
        match List.assoc_opt name c.Lineage.c_attrs with
        | Some (Json.String s) -> s
        | Some v -> Json.to_string v
        | None -> "?"
      in
      pf "First rejected key: receiver %s submitted key %s for group %s \
          (slot %s, %s pair%s rejected) at t=%.6g.@."
        (attr "receiver") (attr "key") (attr "group") (attr "slot")
        (attr "rejected")
        (if attr "rejected" = "1" then "" else "s")
        c.Lineage.c_time;
      (match attack_at with
      | Some a when c.Lineage.c_time >= a ->
          pf "The rejection lands %.6g s after the attack begins at t=%g.@."
            (c.Lineage.c_time -. a) a
      | _ -> ());
      pf "@.";
      pf "- t=%-12.6g +%-8s origin (session %d, level %d)@." c.Lineage.c_born
        "0 ms" c.Lineage.c_session c.Lineage.c_level;
      let prev = ref c.Lineage.c_born in
      List.iter
        (fun (t, comp) ->
          pf "- t=%-12.6g +%-8s %s@." t
            (Printf.sprintf "%.4g ms" (ms (t -. !prev)))
            comp;
          prev := t)
        c.Lineage.c_hops;
      pf "- t=%-12.6g +%-8s key rejected — containment begins@."
        c.Lineage.c_time
        (Printf.sprintf "%.4g ms" (ms (c.Lineage.c_time -. !prev)));
      (match (attack_at, containment_s) with
      | Some a, Some cs ->
          pf "@.Onset t=%g -> first rejection t=%.6g (+%.6g s) -> full \
              containment %.6g s after onset.@."
            a c.Lineage.c_time
            (c.Lineage.c_time -. a)
            cs
      | _, Some cs -> pf "@.Full containment %.6g s after onset.@." cs
      | _, None -> ())

(* --- report ------------------------------------------------------------ *)

let spec_float field run = Option.bind (Json.member field run.spec) Json.to_float_opt

let has_suffix ~suffix name =
  let ls = String.length suffix and ln = String.length name in
  ln >= ls && String.sub name (ln - ls) ls = suffix

let goodput_series run =
  List.filter (fun (name, _) -> has_suffix ~suffix:".goodput_kbps" name)
    run.series

let render ?(width = 60) ?(trace = []) fmt run =
  let pf f = Format.fprintf fmt f in
  pf "# Attack forensics: %s (%s)@." run.name run.kind;
  pf "@.spec: `%s`@." (Json.to_string run.spec);
  let attack_at = spec_float "attack_at" run in
  let duration = spec_float "duration" run in
  (match (attack_at, duration) with
  | Some a, Some d -> pf "attack at t=%g of a %g s run@." a d
  | _ -> ());
  (* Every series, grouped by first dotted component, as sparklines. *)
  let prefix name =
    match String.index_opt name '.' with
    | Some i -> String.sub name 0 i
    | None -> name
  in
  let groups =
    List.sort_uniq String.compare (List.map (fun (n, _) -> prefix n) run.series)
  in
  List.iter
    (fun g ->
      pf "@.## %s series@.@." g;
      List.iter
        (fun (name, points) ->
          if prefix name = g then begin
            let lo, hi = minmax points in
            pf "- `%-34s` `%s` min %.6g max %.6g (%d pts)@." name
              (sparkline ~width points) lo hi (List.length points)
          end)
        run.series)
    groups;
  (* The attack narrative proper: rejected-key spans name the inflater,
     the eviction series dates the lockouts, and goodput recovery is
     measured against each receiver's own pre-attack mean. *)
  let warn_spans =
    List.filter
      (fun e ->
        Tracer.component_matches ~filter:"sigma" e.component
        && (e.event = "key_failure_start" || e.event = "key_failure_end"))
      trace
  in
  let evictions =
    match List.assoc_opt "sigma.evictions" run.series with
    | Some points -> points
    | None -> []
  in
  if warn_spans <> [] || evictions <> [] || attack_at <> None then begin
    pf "@.## SIGMA forensics timeline@.@.";
    (match attack_at with
    | Some a -> pf "- t=%-9.6g attack begins (spec)@." a
    | None -> ());
    let attr name e =
      match List.assoc_opt name e.attrs with
      | Some v -> Json.to_string v
      | None -> "?"
    in
    let span_lines =
      List.map
        (fun e ->
          ( e.time,
            if e.event = "key_failure_start" then
              Printf.sprintf
                "t=%-9.6g receiver %s starts submitting invalid keys \
                 (inflated subscription)"
                e.time (attr "receiver" e)
            else
              Printf.sprintf
                "t=%-9.6g receiver %s back to valid keys after %s rejects"
                e.time (attr "receiver" e) (attr "rejected" e) ))
        warn_spans
    and evict_lines =
      List.map
        (fun (t, g) ->
          (t, Printf.sprintf "t=%-9.6g SIGMA evicts group %g (lockout)" t g))
        evictions
    in
    let timeline =
      List.sort (fun (a, _) (b, _) -> Float.compare a b) (span_lines @ evict_lines)
    in
    let shown, hidden =
      let rec split n = function
        | [] -> ([], [])
        | l when n = 0 -> ([], l)
        | x :: rest ->
            let s, h = split (n - 1) rest in
            (x :: s, h)
      in
      split 40 timeline
    in
    List.iter (fun (_, line) -> pf "- %s@." line) shown;
    if hidden <> [] then pf "- ... %d more events@." (List.length hidden)
  end;
  (match attack_at with
  | None -> ()
  | Some a ->
      let receivers = goodput_series run in
      if receivers <> [] then begin
        pf "@.## Throughput recovery@.@.";
        pf "| receiver series | pre-attack mean | post-attack mean | \
            recovered (>=90%% of pre) |@.";
        pf "|---|---|---|---|@.";
        List.iter
          (fun (name, points) ->
            let horizon =
              match duration with
              | Some d -> d
              | None -> List.fold_left (fun acc (t, _) -> max acc t) a points
            in
            let pre = mean (values_in points ~lo:0. ~hi:a) in
            let post =
              mean
                (values_in points
                   ~lo:(horizon -. ((horizon -. a) /. 4.))
                   ~hi:(horizon +. 1.))
            in
            let recovered =
              if pre <= 0. then "n/a"
              else
                match
                  recovery_time points ~from:a ~threshold:(0.9 *. pre)
                with
                | Some t -> Printf.sprintf "t=%g" t
                | None -> "never"
            in
            pf "| `%s` | %.6g kbit/s | %.6g kbit/s | %s |@." name pre post
              recovered)
          receivers
      end)
