(** Causal packet lineage — the forensic half of the third
    observability pillar (see {!Prof} for the time half).

    A lineage is a bounded record threaded through [lib/net] packets:
    the origin (session id, FLID level, birth sim-time) plus up to 16
    [(sim_time, component)] hops stamped as the packet crosses
    instrumented sites.  {!retire} folds a finished chain into a
    domain-local per-hop transition table (count / total / max
    latency), and {!note_case} keeps whole chains for interesting
    events (SIGMA key rejections) in a bounded case log — together
    these give forensics the end-to-end latency breakdown and the
    critical path from attack onset to containment.

    {b Zero cost when disabled}: every packet shares the domain's
    sentinel record, and all mutators are a length check away from a
    no-op — no allocation, no clock, no writes.  Enabled, records
    recycle through a bounded domain-local pool, so steady state
    allocates nothing either.

    State is per-domain ({!Domain.DLS}): enable, run and {!summary} on
    the same domain. *)

type t
(** A per-packet lineage record.  Mutable; ownership follows the
    packet (clone on copy, release with the packet's pool slot). *)

val enabled : unit -> bool

val enable : unit -> unit
(** Clears this domain's aggregates and starts collecting: {!fresh}
    returns live records from here on. *)

val disable : unit -> unit
(** Stops collecting.  Aggregates survive until {!enable}/{!reset} so
    a caller may still {!summary} after disabling. *)

val reset : unit -> unit

val none : unit -> t
(** This domain's sentinel — the record every packet carries while
    collection is off.  All mutators no-op on it. *)

val fresh : unit -> t
(** A blank record (pooled when available), or {!none} when
    collection is off. *)

val clone : t -> t
(** Deep copy, for packet fan-out ([Packet.copy]/[copy_pooled]).
    Cloning the sentinel returns the sentinel. *)

val release : t -> unit
(** Returns the record to the pool (bounded; drops beyond the cap).
    Call when the owning packet is released; the sentinel is never
    pooled. *)

val set_origin : t -> session:int -> level:int -> time:float -> unit
(** Stamps the originating session/level and birth sim-time. *)

val hop : t -> time:float -> string -> unit
(** Appends a [(sim_time, component)] hop; beyond the 16-slot buffer
    the hop is counted in {!lost} instead. *)

val retire : t -> time:float -> unit
(** Folds the chain into the domain transition table: one transition
    per consecutive hop pair (plus [origin ->] first and [-> retired]
    last).  Does not release the record. *)

val note_case : t -> kind:string -> time:float -> attrs:(string * Json.t) list -> unit
(** Snapshots the whole chain into the bounded case log (first 64
    kept, later ones counted as dropped) — used by the SIGMA agent to
    pin the first rejected key with its full causal path. *)

val hops : t -> (float * string) list

val origin : t -> int * int * float
(** Session, level, birth time. *)

val lost : t -> int

val allocated : unit -> int
(** Records allocated (pool misses) since {!enable} — the pool-reuse
    test asserts this stops growing at steady state. *)

val pooled : unit -> int
(** Records currently sitting in the pool. *)

(** One aggregated hop transition. *)
type transition = {
  from_comp : string;
  to_comp : string;
  t_count : int;
  t_total_s : float;
  t_max_s : float;
}

(** One preserved causal chain. *)
type case = {
  c_kind : string;
  c_time : float;
  c_attrs : (string * Json.t) list;
  c_session : int;
  c_level : int;
  c_born : float;
  c_hops : (float * string) list;
}

type summary = {
  s_transitions : transition list;  (** sorted by (from, to) — deterministic *)
  s_cases : case list;  (** oldest first *)
  s_retired : int;
  s_allocated : int;
  s_pool_hits : int;
  s_cases_dropped : int;
}

val summary : unit -> summary
val case_to_json : case -> Json.t
val to_json : summary -> Json.t
