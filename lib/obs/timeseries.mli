(** Sampled time series: bounded, domain-local [(time, value)] streams
    recorded while a simulation runs, giving the point-in-time metrics
    of {!Metrics} a time dimension.

    Sampling is opt-in per run.  Components register samplers (or call
    {!record}) unconditionally; until {!enable} is called in the current
    domain every entry point is a cheap no-op, so uninstrumented runs
    pay nothing.  The periodic clock lives in the engine: [Sim.create]
    consults {!dt} and drives {!sample_all} through its own event queue,
    which keeps this module free of any engine dependency and makes the
    sample times simulated (deterministic), not wall clock.

    All state is domain-local, mirroring {!Metrics}: a parallel batch
    worker samples exactly the runs it executes, and series never need
    locks.  The standard per-run protocol (used by [Runner]) is
    [enable ~dt] → run → {!snapshot} → {!disable}. *)

val enable : ?max_points:int -> dt:float -> unit -> unit
(** Turn on sampling in this domain at period [dt] simulated seconds.
    Each series stops growing after [max_points] samples (default
    65536); further points count into {!dropped}.
    @raise Invalid_argument if [dt] is not finite and positive, or
    [max_points < 1]. *)

val disable : unit -> unit
(** Turn sampling off and discard all samplers and series. *)

val enabled : unit -> bool

val dt : unit -> float option
(** The configured sampling period, [None] when disabled.  [Sim.create]
    reads this to decide whether to install its sampling tick. *)

val sample_gauge : string -> (unit -> float) -> unit
(** Register an instantaneous reading (queue depth, subscription level)
    to be recorded every tick.  No-op when sampling is disabled.  If the
    name is already taken by another sampler, a ["#2"], ["#3"], ...
    suffix is appended deterministically. *)

val sample_rate : ?scale:float -> string -> (unit -> float) -> unit
(** Register a cumulative reading (bytes, drops); each tick records the
    per-second first difference times [scale] (default 1.), e.g.
    [~scale:0.008] turns cumulative bytes into kbit/s.  The baseline is
    the reading at registration time.  No-op when disabled. *)

val record : string -> time:float -> value:float -> unit
(** Append one event-driven point (e.g. a SIGMA eviction) outside the
    periodic tick.  Times must be non-decreasing per name.  No-op when
    sampling is disabled. *)

val sample_all : time:float -> unit
(** Record one sample of every registered sampler, in registration
    order, at simulated time [time].  Called by the engine's tick. *)

val snapshot : unit -> (string * (float * float) list) list
(** All series recorded so far, sorted by name. *)

val snapshot_json : (string * (float * float) list) list -> Json.t
(** [{"name": [[t, v], ...], ...}] — the shape the series sinks emit
    and [mcc report] parses back. *)

val dropped : unit -> int
(** Points discarded because a series hit its [max_points] bound. *)

val reset : unit -> unit
(** Discard all samplers and series but keep sampling enabled. *)
