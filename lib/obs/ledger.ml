(* Append-only JSONL run ledger; see the interface for the determinism
   discipline.  Everything here is plain file IO plus Json — no clock
   reads (timestamps are the *caller's* wall suffix) and no state, so
   the module stays as deterministic as the entries it stores. *)

type entry = {
  seq : int;
  kind : string;
  label : string;
  digest : string;
  payload : Json.t;
  wall : (string * Json.t) list;
}

let default_dir () =
  match Sys.getenv_opt "MCC_LEDGER" with
  | Some dir when String.length (String.trim dir) > 0 -> dir
  | Some _ | None -> Filename.concat ".mcc" "ledger"

let file ~dir = Filename.concat dir "ledger.jsonl"

(* FNV-1a, 64-bit.  A content hash, not a cryptographic one: entries
   are trusted local telemetry and the digest only has to make "same
   config" checks and history grouping cheap and stable. *)
let digest_of_string s =
  let prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h prime)
    s;
  Printf.sprintf "%016Lx" !h

let digest_of_json json = digest_of_string (Json.to_string json)

(* Wall fields render inside one trailing "wall" object, so truncating
   a line at "\"wall\"" leaves exactly the deterministic bytes. *)
let entry_to_json e =
  Json.Obj
    [
      ("seq", Json.Int e.seq);
      ("kind", Json.String e.kind);
      ("label", Json.String e.label);
      ("digest", Json.String e.digest);
      ("payload", e.payload);
      ("wall", Json.Obj e.wall);
    ]

let entry_of_json json =
  let str field =
    Option.bind (Json.member field json) Json.to_string_opt
  in
  let seq =
    match Json.member "seq" json with Some (Json.Int n) -> Some n | _ -> None
  in
  match (seq, str "kind", str "label", str "digest") with
  | Some seq, Some kind, Some label, Some digest ->
      Ok
        {
          seq;
          kind;
          label;
          digest;
          payload = Option.value (Json.member "payload" json) ~default:Json.Null;
          wall =
            (match Json.member "wall" json with
            | Some (Json.Obj fields) -> fields
            | _ -> []);
        }
  | _ -> Error "missing seq/kind/label/digest fields"

let read_lines path =
  In_channel.with_open_bin path (fun ic ->
      let rec go acc =
        match In_channel.input_line ic with
        | Some line -> go (line :: acc)
        | None -> List.rev acc
      in
      go [])

let load ~dir =
  let path = file ~dir in
  if not (Sys.file_exists path) then Ok []
  else
    match read_lines path with
    | exception Sys_error msg -> Error msg
    | lines ->
        let rec go n acc = function
          | [] -> Ok (List.rev acc)
          | line :: rest when String.trim line = "" -> go (n + 1) acc rest
          | line :: rest -> (
              match Json.of_string line with
              | Error e ->
                  Error (Printf.sprintf "%s: line %d: invalid JSON: %s" path n e)
              | Ok json -> (
                  match entry_of_json json with
                  | Error e -> Error (Printf.sprintf "%s: line %d: %s" path n e)
                  | Ok entry -> go (n + 1) (entry :: acc) rest))
        in
        go 1 [] lines

let rec mkdir_p dir =
  if String.equal dir "" || String.equal dir "." || Sys.file_exists dir then ()
  else begin
    mkdir_p (Filename.dirname dir);
    match Sys.mkdir dir 0o755 with
    | () -> ()
    | exception Sys_error _ when Sys.file_exists dir -> ()
  end

let append ~dir ~kind ~label ?(payload = Json.Null) ?(wall = []) () =
  let digest_source =
    match Json.member "config" payload with
    | Some config -> config
    | None -> payload
  in
  let digest = digest_of_json digest_source in
  match load ~dir with
  | Error _ as e -> e
  | Ok existing -> (
      let entry =
        { seq = List.length existing + 1; kind; label; digest; payload; wall }
      in
      match
        mkdir_p dir;
        Out_channel.with_open_gen
          [ Open_append; Open_creat; Open_binary ]
          0o644 (file ~dir)
          (fun oc ->
            Out_channel.output_string oc
              (Json.to_string (entry_to_json entry) ^ "\n"))
      with
      | () -> Ok entry
      | exception Sys_error msg -> Error msg)
