type counter = { mutable count : int }
type gauge = { mutable value : float }

type histogram = {
  bounds : float array;
  buckets : int array;  (* length = Array.length bounds + 1 (overflow) *)
  mutable observations : int;
  mutable sum : float;
}

type metric =
  | Counter_m of counter
  | Gauge_m of gauge
  | Histogram_m of histogram

type value =
  | Counter of int
  | Gauge of float
  | Histogram of {
      bounds : float list;
      buckets : int list;
      observations : int;
      sum : float;
    }

(* Domain-local, like the packet-UID registry: every domain of a batch
   run owns its own table, so concurrent simulations never contend on —
   or non-deterministically interleave — the counters.  Handles fetched
   before a [reset] keep mutating their detached records and simply stop
   being visible in snapshots, which is exactly the isolation the
   per-run reset in [Runner] relies on. *)
let registry : (string, metric) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 64)

let table () = Domain.DLS.get registry

let kind_error name =
  invalid_arg
    (Printf.sprintf "Metrics: %S already registered with another kind" name)

let counter name =
  let tbl = table () in
  match Hashtbl.find_opt tbl name with
  | Some (Counter_m c) -> c
  | Some _ -> kind_error name
  | None ->
      let c = { count = 0 } in
      Hashtbl.replace tbl name (Counter_m c);
      c

let[@hot] incr_by c by = c.count <- c.count + by
let incr ?(by = 1) c = incr_by c by
let counter_value c = c.count
let tick ?by name = incr ?by (counter name)

let gauge name =
  let tbl = table () in
  match Hashtbl.find_opt tbl name with
  | Some (Gauge_m g) -> g
  | Some _ -> kind_error name
  | None ->
      let g = { value = 0. } in
      Hashtbl.replace tbl name (Gauge_m g);
      g

let set g v = g.value <- v
let gauge_value g = g.value
let set_gauge name v = set (gauge name) v

let exponential_bounds ~base ~count =
  if not (Float.is_finite base && base > 0.) then
    invalid_arg "Metrics.exponential_bounds: base must be finite and positive";
  if count < 1 then invalid_arg "Metrics.exponential_bounds: count must be >= 1";
  List.init count (fun i -> base *. Float.pow 2. (float_of_int i))

let histogram name ~bounds =
  let rec ascending = function
    | a :: (b :: _ as rest) -> a < b && ascending rest
    | [ _ ] | [] -> true
  in
  if bounds = [] || not (ascending bounds) then
    invalid_arg "Metrics.histogram: bounds must be non-empty and ascending";
  let tbl = table () in
  match Hashtbl.find_opt tbl name with
  | Some (Histogram_m h) -> h
  | Some _ -> kind_error name
  | None ->
      let bounds = Array.of_list bounds in
      let h =
        {
          bounds;
          buckets = Array.make (Array.length bounds + 1) 0;
          observations = 0;
          sum = 0.;
        }
      in
      Hashtbl.replace tbl name (Histogram_m h);
      h

let observe h v =
  h.observations <- h.observations + 1;
  h.sum <- h.sum +. v;
  let n = Array.length h.bounds in
  let rec bucket i = if i >= n || v <= h.bounds.(i) then i else bucket (i + 1) in
  let i = bucket 0 in
  h.buckets.(i) <- h.buckets.(i) + 1

let freeze = function
  | Counter_m c -> Counter c.count
  | Gauge_m g -> Gauge g.value
  | Histogram_m h ->
      Histogram
        {
          bounds = Array.to_list h.bounds;
          buckets = Array.to_list h.buckets;
          observations = h.observations;
          sum = h.sum;
        }

let snapshot () =
  Hashtbl.fold (fun name m acc -> (name, freeze m) :: acc) (table ()) []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset () = Hashtbl.reset (table ())

let value_json = function
  | Counter n -> Json.Int n
  | Gauge v -> Json.Float v
  | Histogram h ->
      Json.Obj
        [
          ("bounds", Json.List (List.map (fun b -> Json.Float b) h.bounds));
          ("buckets", Json.List (List.map (fun c -> Json.Int c) h.buckets));
          ("observations", Json.Int h.observations);
          ("sum", Json.Float h.sum);
        ]

let values_json values =
  Json.Obj (List.map (fun (name, v) -> (name, value_json v)) values)

let snapshot_json () = values_json (snapshot ())

(* --- OpenMetrics text rendering ----------------------------------------- *)

(* OpenMetrics metric names are [a-zA-Z_:][a-zA-Z0-9_:]*; the dotted
   registry names map dots (and anything else foreign) to '_'. *)
let om_name ~prefix name =
  let b = Buffer.create (String.length prefix + String.length name) in
  Buffer.add_string b prefix;
  String.iteri
    (fun i c ->
      let ok =
        (c >= 'a' && c <= 'z')
        || (c >= 'A' && c <= 'Z')
        || c = '_' || c = ':'
        || (c >= '0' && c <= '9' && (i > 0 || prefix <> ""))
      in
      Buffer.add_char b (if ok then c else '_'))
    name;
  Buffer.contents b

(* Label values are escaped like JSON strings minus the unicode forms:
   backslash, quote and newline, per the OpenMetrics ABNF. *)
let om_label_value s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let om_labels = function
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (om_label_value v))
             labels)
      ^ "}"

let om_float v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

let openmetrics_page ?(prefix = "mcc_") sets =
  let b = Buffer.create 4096 in
  (* Families must be unique in an exposition, so the page is grouped
     by metric: one TYPE/HELP block, then that metric's sample from
     every labelled set.  First-seen order keeps the page deterministic
     (snapshots are already name-sorted). *)
  let families = ref [] in
  List.iter
    (fun (_, values) ->
      List.iter
        (fun (name, v) ->
          if not (List.mem_assoc name !families) then
            families := (name, v) :: !families)
        values)
    sets;
  List.iter
    (fun (name, sample_kind) ->
      let fam = om_name ~prefix name in
      let om_type =
        match sample_kind with
        | Counter _ -> "counter"
        | Gauge _ -> "gauge"
        | Histogram _ -> "histogram"
      in
      Buffer.add_string b
        (Printf.sprintf "# TYPE %s %s\n# HELP %s mcc metric %s\n" fam om_type
           fam name);
      List.iter
        (fun (labels, values) ->
          match List.assoc_opt name values with
          | None -> ()
          | Some (Counter n) ->
              Buffer.add_string b
                (Printf.sprintf "%s_total%s %d\n" fam (om_labels labels) n)
          | Some (Gauge v) ->
              Buffer.add_string b
                (Printf.sprintf "%s%s %s\n" fam (om_labels labels) (om_float v))
          | Some (Histogram { bounds; buckets; observations; sum }) ->
              (* OpenMetrics buckets are cumulative with inclusive upper
                 bounds; the registry's are per-bucket, so integrate. *)
              let acc = ref 0 in
              List.iter2
                (fun bound count ->
                  acc := !acc + count;
                  Buffer.add_string b
                    (Printf.sprintf "%s_bucket%s %d\n" fam
                       (om_labels (labels @ [ ("le", om_float bound) ]))
                       !acc))
                bounds
                (List.filteri (fun i _ -> i < List.length bounds) buckets);
              Buffer.add_string b
                (Printf.sprintf "%s_bucket%s %d\n" fam
                   (om_labels (labels @ [ ("le", "+Inf") ]))
                   observations);
              Buffer.add_string b
                (Printf.sprintf "%s_sum%s %s\n" fam (om_labels labels)
                   (om_float sum));
              Buffer.add_string b
                (Printf.sprintf "%s_count%s %d\n" fam (om_labels labels)
                   observations))
        sets)
    (List.rev !families);
  Buffer.add_string b "# EOF\n";
  Buffer.contents b

let to_openmetrics ?prefix values = openmetrics_page ?prefix [ ([], values) ]
