type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_str f =
  if not (Float.is_finite f) then "null"
  else
    let s = Printf.sprintf "%.12g" f in
    (* "1." is not valid JSON; "%.12g" never produces it, but a plain
       integer mantissa like "3" is fine as a JSON number. *)
    s

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_str f)
  | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          write buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (name, value) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape name);
          Buffer.add_string buf "\":";
          write buf value)
        fields;
      Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 256 in
  write buf t;
  Buffer.contents buf

let of_series points =
  List (List.map (fun (x, y) -> List [ Float x; Float y ]) points)

(* --- parsing ------------------------------------------------------------

   A small recursive-descent parser, the inverse of [to_string]: enough
   JSON to read back what the sinks write (series/metrics JSONL lines,
   bench baselines) without an external dependency.  Accepts standard
   JSON; numbers with a '.', exponent, or out of int range become
   [Float], others [Int]. *)

exception Parse_error of string

type cursor = { src : string; mutable pos : int }

let parse_fail c msg =
  raise (Parse_error (Printf.sprintf "at offset %d: %s" c.pos msg))

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let skip_ws c =
  while
    c.pos < String.length c.src
    && match c.src.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    c.pos <- c.pos + 1
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> c.pos <- c.pos + 1
  | Some x -> parse_fail c (Printf.sprintf "expected %C, found %C" ch x)
  | None -> parse_fail c (Printf.sprintf "expected %C, found end of input" ch)

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then (
    c.pos <- c.pos + n;
    value)
  else parse_fail c (Printf.sprintf "invalid literal (expected %s)" word)

let hex_digit c ch =
  match ch with
  | '0' .. '9' -> Char.code ch - Char.code '0'
  | 'a' .. 'f' -> Char.code ch - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code ch - Char.code 'A' + 10
  | _ -> parse_fail c "invalid \\u escape"

let add_utf8 buf code =
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then (
    Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f))))
  else (
    Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f))))

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> parse_fail c "unterminated string"
    | Some '"' -> c.pos <- c.pos + 1
    | Some '\\' ->
        c.pos <- c.pos + 1;
        (match peek c with
        | None -> parse_fail c "unterminated escape"
        | Some ch ->
            c.pos <- c.pos + 1;
            (match ch with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'u' ->
                if c.pos + 4 > String.length c.src then
                  parse_fail c "truncated \\u escape";
                let d i = hex_digit c c.src.[c.pos + i] in
                let code =
                  (d 0 lsl 12) lor (d 1 lsl 8) lor (d 2 lsl 4) lor d 3
                in
                c.pos <- c.pos + 4;
                add_utf8 buf code
            | _ -> parse_fail c "invalid escape"));
        go ()
    | Some ch ->
        c.pos <- c.pos + 1;
        Buffer.add_char buf ch;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_float = ref false in
  let consume () = c.pos <- c.pos + 1 in
  if peek c = Some '-' then consume ();
  while (match peek c with Some '0' .. '9' -> true | _ -> false) do
    consume ()
  done;
  if peek c = Some '.' then (
    is_float := true;
    consume ();
    while (match peek c with Some '0' .. '9' -> true | _ -> false) do
      consume ()
    done);
  (match peek c with
  | Some ('e' | 'E') ->
      is_float := true;
      consume ();
      (match peek c with Some ('+' | '-') -> consume () | _ -> ());
      while (match peek c with Some '0' .. '9' -> true | _ -> false) do
        consume ()
      done
  | _ -> ());
  let text = String.sub c.src start (c.pos - start) in
  if text = "" || text = "-" then parse_fail c "invalid number";
  if !is_float then Float (float_of_string text)
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> Float (float_of_string text)

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> parse_fail c "unexpected end of input"
  | Some '"' -> String (parse_string c)
  | Some '{' ->
      c.pos <- c.pos + 1;
      skip_ws c;
      if peek c = Some '}' then (
        c.pos <- c.pos + 1;
        Obj [])
      else
        let rec fields acc =
          skip_ws c;
          let name = parse_string c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              c.pos <- c.pos + 1;
              fields ((name, v) :: acc)
          | Some '}' ->
              c.pos <- c.pos + 1;
              Obj (List.rev ((name, v) :: acc))
          | _ -> parse_fail c "expected ',' or '}'"
        in
        fields []
  | Some '[' ->
      c.pos <- c.pos + 1;
      skip_ws c;
      if peek c = Some ']' then (
        c.pos <- c.pos + 1;
        List [])
      else
        let rec items acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              c.pos <- c.pos + 1;
              items (v :: acc)
          | Some ']' ->
              c.pos <- c.pos + 1;
              List (List.rev (v :: acc))
          | _ -> parse_fail c "expected ',' or ']'"
        in
        items []
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> parse_fail c (Printf.sprintf "unexpected character %C" ch)

let of_string s =
  let c = { src = s; pos = 0 } in
  match parse_value c with
  | v ->
      skip_ws c;
      if c.pos <> String.length s then
        Error (Printf.sprintf "at offset %d: trailing characters" c.pos)
      else Ok v
  | exception Parse_error msg -> Error msg

(* --- accessors ----------------------------------------------------------

   Total lookups for consumers walking parsed trees ([mcc report], the
   bench baseline gate): each returns [None] rather than raising when
   the shape is not the expected one. *)

let member name = function Obj fields -> List.assoc_opt name fields | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_string_opt = function String s -> Some s | _ -> None

let to_series = function
  | List items ->
      let point = function
        | List [ a; b ] -> (
            match (to_float_opt a, to_float_opt b) with
            | Some x, Some y -> Some (x, y)
            | _ -> None)
        | _ -> None
      in
      let points = List.filter_map point items in
      if List.length points = List.length items then Some points else None
  | _ -> None
