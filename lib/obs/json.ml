type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_str f =
  if not (Float.is_finite f) then "null"
  else
    let s = Printf.sprintf "%.12g" f in
    (* "1." is not valid JSON; "%.12g" never produces it, but a plain
       integer mantissa like "3" is fine as a JSON number. *)
    s

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_str f)
  | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          write buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (name, value) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape name);
          Buffer.add_string buf "\":";
          write buf value)
        fields;
      Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 256 in
  write buf t;
  Buffer.contents buf

let of_series points =
  List (List.map (fun (x, y) -> List [ Float x; Float y ]) points)
