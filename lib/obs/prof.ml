(* Domain-local hierarchical self-profiler.

   A span names a component ("engine", "link", "sigma", ...); nesting
   builds a tree keyed by the call path, so the same component under
   two parents is two nodes and recursion never double-counts.  Each
   node accumulates wall time (through Profile.now, the sanctioned
   host-clock site), call counts and minor-heap allocation; self time
   is total time minus the time spent in direct child spans, so the
   self times of a snapshot sum exactly to the root spans' totals.

   Everything is domain-local (Domain.DLS): concurrent batch workers
   never contend, and a worker's tree dies with its domain — callers
   snapshot before returning, as Runner does.

   Zero cost when disabled: [span] reads one domain-local flag and
   returns the [disabled] token; [finish disabled] is one compare.  No
   closure, no allocation, no clock read.  The lint prof-span rule
   keeps span sites inside lib/ behind .mli interfaces. *)

type node = {
  name : string;
  parent : int;  (** node index; -1 for a root-level span *)
  depth : int;
  mutable first_child : int;
  mutable next_sibling : int;
  mutable count : int;
  mutable total_s : float;
  mutable self_s : float;
  mutable alloc_w : float;  (** minor words allocated, children excluded *)
}

type state = {
  mutable on : bool;
  mutable nodes : node array;
  mutable n_nodes : int;
  mutable roots : int;  (** head of the depth-0 sibling chain; -1 = none *)
  (* The frame stack lives in parallel arrays so pushing a span
     allocates nothing once the high-water depth has been reached. *)
  mutable fr_node : int array;
  mutable fr_t0 : float array;
  mutable fr_w0 : float array;
  mutable fr_child_s : float array;
  mutable fr_child_w : float array;
  mutable depth : int;
}

let nil = -1

let dummy_node () =
  {
    name = "";
    parent = nil;
    depth = 0;
    first_child = nil;
    next_sibling = nil;
    count = 0;
    total_s = 0.;
    self_s = 0.;
    alloc_w = 0.;
  }

let state_key =
  Domain.DLS.new_key (fun () ->
      {
        on = false;
        nodes = [||];
        n_nodes = 0;
        roots = nil;
        fr_node = [||];
        fr_t0 = [||];
        fr_w0 = [||];
        fr_child_s = [||];
        fr_child_w = [||];
        depth = 0;
      })

let state () = Domain.DLS.get state_key

let enabled () = (state ()).on

let reset_state st =
  st.nodes <- [||];
  st.n_nodes <- 0;
  st.roots <- nil;
  st.depth <- 0

let reset () = reset_state (state ())

let enable () =
  let st = state () in
  reset_state st;
  st.on <- true

let disable () =
  (* The tree survives so a caller can disable, then snapshot — Runner
     snapshots first anyway; [enable]/[reset] clear it. *)
  (state ()).on <- false

(* --- span bookkeeping --------------------------------------------------- *)

let add_node st ~parent ~depth name =
  if st.n_nodes = Array.length st.nodes then begin
    let cap = Stdlib.max 16 (2 * Array.length st.nodes) in
    let grown = Array.make cap (dummy_node ()) in
    Array.blit st.nodes 0 grown 0 st.n_nodes;
    st.nodes <- grown
  end;
  let i = st.n_nodes in
  st.nodes.(i) <-
    {
      name;
      parent;
      depth;
      first_child = nil;
      next_sibling = nil;
      count = 0;
      total_s = 0.;
      self_s = 0.;
      alloc_w = 0.;
    };
  st.n_nodes <- i + 1;
  i

(* Find [name] among [parent]'s children (root chain when parent is
   nil), creating it on first use.  Linear scan: component fan-out is a
   handful of names, and a hit allocates nothing. *)
let find_or_add st parent name =
  let head = if parent = nil then st.roots else st.nodes.(parent).first_child in
  let rec scan i =
    if i = nil then nil
    else if String.equal st.nodes.(i).name name then i
    else scan st.nodes.(i).next_sibling
  in
  match scan head with
  | i when i <> nil -> i
  | _ ->
      let depth = if parent = nil then 0 else st.nodes.(parent).depth + 1 in
      let i = add_node st ~parent ~depth name in
      (* Prepend, then restore creation order at snapshot time. *)
      if parent = nil then begin
        st.nodes.(i).next_sibling <- st.roots;
        st.roots <- i
      end
      else begin
        st.nodes.(i).next_sibling <- st.nodes.(parent).first_child;
        st.nodes.(parent).first_child <- i
      end;
      i

type span = int
(* A token is the frame-stack depth after pushing (1-based); 0 is the
   disabled token, so [finish] on it is a single compare. *)

let disabled : span = 0

let span name =
  let st = state () in
  if not st.on then disabled
  else begin
    let parent = if st.depth = 0 then nil else st.fr_node.(st.depth - 1) in
    let node = find_or_add st parent name in
    if st.depth = Array.length st.fr_node then begin
      let cap = Stdlib.max 16 (2 * Array.length st.fr_node) in
      let grow a filler =
        let g = Array.make cap filler in
        Array.blit a 0 g 0 st.depth;
        g
      in
      st.fr_node <- grow st.fr_node 0;
      st.fr_t0 <- grow st.fr_t0 0.;
      st.fr_w0 <- grow st.fr_w0 0.;
      st.fr_child_s <- grow st.fr_child_s 0.;
      st.fr_child_w <- grow st.fr_child_w 0.
    end;
    let i = st.depth in
    st.fr_node.(i) <- node;
    st.fr_child_s.(i) <- 0.;
    st.fr_child_w.(i) <- 0.;
    st.fr_w0.(i) <- Gc.minor_words ();
    st.fr_t0.(i) <- Profile.now ();
    st.depth <- i + 1;
    i + 1
  end

let pop_frame st =
  let i = st.depth - 1 in
  let dt = Profile.now () -. st.fr_t0.(i) in
  let dw = Gc.minor_words () -. st.fr_w0.(i) in
  let node = st.nodes.(st.fr_node.(i)) in
  node.count <- node.count + 1;
  node.total_s <- node.total_s +. dt;
  node.self_s <- node.self_s +. (dt -. st.fr_child_s.(i));
  node.alloc_w <- node.alloc_w +. (dw -. st.fr_child_w.(i));
  st.depth <- i;
  if i > 0 then begin
    st.fr_child_s.(i - 1) <- st.fr_child_s.(i - 1) +. dt;
    st.fr_child_w.(i - 1) <- st.fr_child_w.(i - 1) +. dw
  end

let finish token =
  if token <> disabled then begin
    let st = state () in
    (* Pop every frame the span opened over, so a missed inner finish
       (an exception path) charges the inner time to its own node
       rather than corrupting the stack. *)
    while st.depth >= token do
      pop_frame st
    done
  end

let with_span name f =
  let st = state () in
  if not st.on then f ()
  else begin
    let t = span name in
    Fun.protect ~finally:(fun () -> finish t) f
  end

(* --- snapshots ---------------------------------------------------------- *)

type entry = {
  path : string list;  (** root-first component path *)
  depth : int;
  count : int;
  total_s : float;
  self_s : float;
  alloc_w : float;
}

let snapshot () =
  let st = state () in
  let rec path_of i acc =
    if i = nil then acc else path_of st.nodes.(i).parent (st.nodes.(i).name :: acc)
  in
  (* Sibling chains are prepended, so reverse each chain to recover
     creation order — which is deterministic for a deterministic run. *)
  let children_of head =
    let rec collect i acc =
      if i = nil then acc else collect st.nodes.(i).next_sibling (i :: acc)
    in
    collect head []
  in
  let rec walk i acc =
    let n = st.nodes.(i) in
    let e =
      {
        path = path_of i [];
        depth = n.depth;
        count = n.count;
        total_s = n.total_s;
        self_s = n.self_s;
        alloc_w = n.alloc_w;
      }
    in
    List.fold_left (fun acc c -> walk c acc) (e :: acc) (children_of n.first_child)
  in
  List.rev (List.fold_left (fun acc r -> walk r acc) [] (children_of st.roots))

let root_total entries =
  List.fold_left
    (fun acc e -> if e.depth = 0 then acc +. e.total_s else acc)
    0. entries

let self_total entries =
  List.fold_left (fun acc e -> acc +. e.self_s) 0. entries

(* --- rendering ---------------------------------------------------------- *)

let path_string e = String.concat ";" e.path

let to_markdown ?wall_s entries =
  let buf = Buffer.create 1024 in
  let total = match wall_s with Some w when w > 0. -> w | _ -> root_total entries in
  Buffer.add_string buf
    "| component | count | total (s) | self (s) | self % | alloc (Mw) |\n";
  Buffer.add_string buf "|---|---|---|---|---|---|\n";
  List.iter
    (fun e ->
      let indent = String.concat "" (List.init e.depth (fun _ -> "&nbsp;&nbsp;")) in
      let name = match List.rev e.path with name :: _ -> name | [] -> "?" in
      Buffer.add_string buf
        (Printf.sprintf "| %s`%s` | %d | %.6f | %.6f | %.1f | %.3f |\n" indent
           name e.count e.total_s e.self_s
           (if total > 0. then 100. *. e.self_s /. total else 0.)
           (e.alloc_w /. 1e6)))
    entries;
  (match wall_s with
  | Some w when w > 0. ->
      Buffer.add_string buf
        (Printf.sprintf
           "\nprofiled spans cover %.1f%% of the %.6f s measured wall time\n"
           (100. *. self_total entries /. w)
           w)
  | _ -> ());
  Buffer.contents buf

(* Folded stacks: one "a;b;c <self microseconds>" line per node, the
   input format of flamegraph.pl / speedscope / inferno. *)
let folded entries =
  let buf = Buffer.create 1024 in
  List.iter
    (fun e ->
      let us = int_of_float (Float.round (e.self_s *. 1e6)) in
      Buffer.add_string buf
        (Printf.sprintf "%s %d\n" (path_string e) (Stdlib.max 0 us)))
    entries;
  Buffer.contents buf

let to_json entries =
  Json.List
    (List.map
       (fun e ->
         Json.Obj
           [
             ("path", Json.List (List.map (fun s -> Json.String s) e.path));
             ("count", Json.Int e.count);
             ("total_s", Json.Float e.total_s);
             ("self_s", Json.Float e.self_s);
             ("alloc_w", Json.Float e.alloc_w);
           ])
       entries)
