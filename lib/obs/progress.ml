(* Live sweep monitor; see the interface for the telemetry/determinism
   contract.  Workers feed atomics, a monitor domain turns them into
   periodic samples.  All host-clock reads go through the sanctioned
   [Profile.now]; the pacing sleep below is this module's one justified
   wall-clock pragma. *)

type sample = {
  total : int;
  completed : int;
  events : int;
  elapsed_s : float;
  events_per_sec : float;
  eta_s : float option;
  minor_words : float;
  major_words : float;
  top_heap_words : int;
  final : bool;
}

type t = {
  total : int;
  completed : int Atomic.t;
  events : int Atomic.t;
  minor : float Atomic.t;
  stopped : bool Atomic.t;
  started : float;
  on_progress : sample -> unit;
  mutable monitor : unit Domain.t option;
}

let take t ~final =
  let elapsed_s = Profile.now () -. t.started in
  let completed = Atomic.get t.completed in
  let events = Atomic.get t.events in
  let q = Gc.quick_stat () in
  let events_per_sec =
    if elapsed_s > 0. then float_of_int events /. elapsed_s else 0.
  in
  let eta_s =
    if final || completed = 0 || completed >= t.total then None
    else
      Some
        (elapsed_s
        *. float_of_int (t.total - completed)
        /. float_of_int completed)
  in
  {
    total = t.total;
    completed;
    events;
    elapsed_s;
    events_per_sec;
    eta_s;
    minor_words = Atomic.get t.minor;
    major_words = q.Gc.major_words;
    top_heap_words = q.Gc.top_heap_words;
    final;
  }

let start ?(interval = 0.2) ~total ~on_progress () =
  let t =
    {
      total;
      completed = Atomic.make 0;
      events = Atomic.make 0;
      minor = Atomic.make 0.;
      stopped = Atomic.make false;
      started = Profile.now ();
      on_progress;
      monitor = None;
    }
  in
  let monitor =
    Domain.spawn (fun () ->
        (* lint: allow domain-escape — worker-atomics: the monitor reads only t's Atomic fields *)
        while not (Atomic.get t.stopped) do
          (* lint: allow wall-clock — monitor pacing sleep, meter-only *)
          Unix.sleepf interval;
          if not (Atomic.get t.stopped) then on_progress (take t ~final:false)
        done)
  in
  t.monitor <- Some monitor;
  t

let cell_done t ~events ~minor_words =
  ignore (Atomic.fetch_and_add t.completed 1);
  ignore (Atomic.fetch_and_add t.events events);
  let rec add () =
    let old = Atomic.get t.minor in
    if not (Atomic.compare_and_set t.minor old (old +. minor_words)) then
      add ()
  in
  add ()

let stop t =
  Atomic.set t.stopped true;
  Option.iter Domain.join t.monitor;
  t.monitor <- None;
  let s = take t ~final:true in
  t.on_progress s;
  s

let render (s : sample) =
  let pct =
    if s.total > 0 then
      100. *. float_of_int s.completed /. float_of_int s.total
    else 100.
  in
  let eta =
    match s.eta_s with
    | Some e -> Printf.sprintf " | eta %.1fs" e
    | None -> ""
  in
  Printf.sprintf
    "[ %d/%d cells %5.1f%% | %.2e ev/s%s | gc minor %.1fMw major %.1fMw \
     heap %.1fMw ]"
    s.completed s.total pct s.events_per_sec eta (s.minor_words /. 1e6)
    (s.major_words /. 1e6)
    (float_of_int s.top_heap_words /. 1e6)
