(* Sampled time series: the time dimension of the telemetry layer.

   Like the metrics registry, all state is domain-local — a batch worker
   samples exactly the simulation it runs, and parallel domains never
   share (or lock) a series.  Sampling is off by default and every entry
   point is a cheap no-op until [enable] turns it on, so instrumented
   components register samplers unconditionally without taxing runs that
   never asked for series.

   The driving clock lives in the engine: [Sim.create] checks [dt] and,
   when sampling is enabled, installs a periodic task that calls
   [sample_all] at the configured interval.  Inverting the hook this way
   keeps mcc_obs free of any engine dependency. *)

module Series = Mcc_util.Series

type sampler =
  | Gauge of (unit -> float)
  | Rate of { read : unit -> float; scale : float; mutable prev : float }

type state = {
  mutable dt : float option;  (** None = sampling disabled *)
  mutable max_points : int;
  mutable samplers : (string * sampler) list;  (** reverse registration order *)
  series : (string, Series.t) Hashtbl.t;
  mutable dropped : int;  (** points discarded by the [max_points] bound *)
}

let state : state Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { dt = None; max_points = 65536; samplers = []; series = Hashtbl.create 16;
        dropped = 0 })

let default_max_points = 65536

let enable ?(max_points = default_max_points) ~dt () =
  if not (Float.is_finite dt && dt > 0.) then
    invalid_arg "Timeseries.enable: dt must be finite and positive";
  if max_points < 1 then
    invalid_arg "Timeseries.enable: max_points must be >= 1";
  let t = Domain.DLS.get state in
  t.dt <- Some dt;
  t.max_points <- max_points

let enabled () = (Domain.DLS.get state).dt <> None
let dt () = (Domain.DLS.get state).dt

let reset () =
  let t = Domain.DLS.get state in
  t.samplers <- [];
  Hashtbl.reset t.series;
  t.dropped <- 0

let disable () =
  let t = Domain.DLS.get state in
  t.dt <- None;
  reset ()

let dropped () = (Domain.DLS.get state).dropped

let series_for t name =
  match Hashtbl.find_opt t.series name with
  | Some s -> s
  | None ->
      let s = Series.create () in
      Hashtbl.add t.series name s;
      s

let push t s ~time ~value =
  if Series.length s >= t.max_points then t.dropped <- t.dropped + 1
  else Series.add s ~time ~value

let record name ~time ~value =
  let t = Domain.DLS.get state in
  if t.dt <> None then push t (series_for t name) ~time ~value

(* Two components may pick the same series name (e.g. several links all
   called "red.avg_bytes"); suffix later registrations "#2", "#3", ...
   deterministically rather than interleave their points. *)
let unique_name t name =
  if not (List.mem_assoc name t.samplers) then name
  else
    let rec go k =
      let candidate = Printf.sprintf "%s#%d" name k in
      if List.mem_assoc candidate t.samplers then go (k + 1) else candidate
    in
    go 2

let add_sampler name sampler =
  let t = Domain.DLS.get state in
  if t.dt <> None then
    t.samplers <- (unique_name t name, sampler) :: t.samplers

let sample_gauge name read = add_sampler name (Gauge read)

let sample_rate ?(scale = 1.) name read =
  add_sampler name (Rate { read; scale; prev = read () })

let sample_all ~time =
  let t = Domain.DLS.get state in
  match t.dt with
  | None -> ()
  | Some dt ->
      (* Registration order (the list is reversed) keeps the point
         stream deterministic for a given spec. *)
      List.iter
        (fun (name, sampler) ->
          let value =
            match sampler with
            | Gauge read -> read ()
            | Rate r ->
                let now = r.read () in
                let per_s = (now -. r.prev) /. dt *. r.scale in
                r.prev <- now;
                per_s
          in
          push t (series_for t name) ~time ~value)
        (List.rev t.samplers)

let snapshot () =
  let t = Domain.DLS.get state in
  Hashtbl.fold (fun name s acc -> (name, Series.to_list s) :: acc) t.series []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let snapshot_json snap =
  Json.Obj (List.map (fun (name, points) -> (name, Json.of_series points)) snap)
