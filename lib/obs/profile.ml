type t = {
  sched : string;
  events : int;
  queue_capacity : int;
  wall_s : float;
  events_per_sec : float;
}

(* Profiling measures elapsed wall time; everything else runs on the
   simulated clock, and the lint wall-clock rule keeps it that way. *)
(* lint: allow wall-clock — the one sanctioned host-clock read *)
let now () = Unix.gettimeofday ()

let with_wall_clock f =
  let t0 = now () in
  let r = f () in
  (r, now () -. t0)

let make ?(sched = "heap") ~events ~queue_capacity ~wall_s () =
  {
    sched;
    events;
    queue_capacity;
    wall_s;
    events_per_sec = (if wall_s > 0. then float_of_int events /. wall_s else 0.);
  }

(* Wall-clock fields deliberately last: consumers comparing serial and
   parallel renderings byte-for-byte can truncate at "wall_s". *)
let to_json t =
  Json.Obj
    [
      ("sched", Json.String t.sched);
      ("events", Json.Int t.events);
      ("queue_capacity", Json.Int t.queue_capacity);
      ("wall_s", Json.Float t.wall_s);
      ("events_per_sec", Json.Float t.events_per_sec);
    ]

let pp fmt t =
  Format.fprintf fmt
    "%d events in %.3f s (%.0f events/s, %s scheduler, queue capacity %d)"
    t.events t.wall_s t.events_per_sec t.sched t.queue_capacity
