(* Backend introspection published by the scheduler/engine at the end
   of a run.  Everything here is deterministic (counts of simulated
   work), so it renders BEFORE the wall-clock fields in to_json. *)
type sched_stats = {
  pushes : int;
  max_size : int;
  capacities : int list;
  level_places : int list;
  overflow : int;
  drain_inserts : int;
  free_hits : int;
  free_misses : int;
  pool_hits : int;
  pool_misses : int;
}

type t = {
  sched : string;
  events : int;
  queue_capacity : int;
  sched_stats : sched_stats option;
  wall_s : float;
  events_per_sec : float;
}

(* Profiling measures elapsed wall time; everything else runs on the
   simulated clock, and the lint wall-clock rule keeps it that way. *)
(* lint: allow wall-clock — the one sanctioned host-clock read *)
let now () = Unix.gettimeofday ()

let with_wall_clock f =
  let t0 = now () in
  let r = f () in
  (r, now () -. t0)

let make ?(sched = "heap") ?sched_stats ~events ~queue_capacity ~wall_s () =
  {
    sched;
    events;
    queue_capacity;
    sched_stats;
    wall_s;
    events_per_sec = (if wall_s > 0. then float_of_int events /. wall_s else 0.);
  }

let sched_stats_to_json s =
  Json.Obj
    [
      ("pushes", Json.Int s.pushes);
      ("max_size", Json.Int s.max_size);
      ("capacities", Json.List (List.map (fun c -> Json.Int c) s.capacities));
      ("level_places", Json.List (List.map (fun c -> Json.Int c) s.level_places));
      ("overflow", Json.Int s.overflow);
      ("drain_inserts", Json.Int s.drain_inserts);
      ("free_hits", Json.Int s.free_hits);
      ("free_misses", Json.Int s.free_misses);
      ("pool_hits", Json.Int s.pool_hits);
      ("pool_misses", Json.Int s.pool_misses);
    ]

(* Wall-clock fields deliberately last — even when sched_stats render:
   consumers comparing serial and parallel renderings byte-for-byte can
   truncate at "wall_s". *)
let to_json t =
  let deterministic =
    [
      ("sched", Json.String t.sched);
      ("events", Json.Int t.events);
      ("queue_capacity", Json.Int t.queue_capacity);
    ]
    @ (match t.sched_stats with
      | None -> []
      | Some s -> [ ("sched_stats", sched_stats_to_json s) ])
  in
  Json.Obj
    (deterministic
    @ [
        ("wall_s", Json.Float t.wall_s);
        ("events_per_sec", Json.Float t.events_per_sec);
      ])

let pp fmt t =
  Format.fprintf fmt
    "%d events in %.3f s (%.0f events/s, %s scheduler, queue capacity %d)"
    t.events t.wall_s t.events_per_sec t.sched t.queue_capacity

(* The engine flushes its backend stats here at the end of a run; the
   Runner, still on the same domain, picks them up for the profile
   record.  A DLS slot keeps batch workers independent. *)
let sched_stats_key : sched_stats option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let note_sched_stats s = Domain.DLS.set sched_stats_key (Some s)

let take_sched_stats () =
  let s = Domain.DLS.get sched_stats_key in
  Domain.DLS.set sched_stats_key None;
  s
