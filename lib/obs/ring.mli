(** Bounded FIFO ring buffer: pushing beyond capacity evicts the
    oldest element.  The memory bound behind every retained-record
    telemetry surface ({!Tracer.ring}, [Net.Trace]). *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument if [capacity <= 0]. *)

val capacity : 'a t -> int

val length : 'a t -> int
(** Elements currently retained ([<= capacity]). *)

val pushed : 'a t -> int
(** Total elements ever pushed, including evicted ones; unaffected by
    {!clear}. *)

val push : 'a t -> 'a -> unit

val iter : ('a -> unit) -> 'a t -> unit
(** Oldest first, without materialising a list. *)

val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
(** Oldest first. *)

val to_list : 'a t -> 'a list
(** Oldest first. *)

val clear : 'a t -> unit
(** Drops the retained elements; {!pushed} keeps its count. *)
