(* Causal packet lineage.

   A lineage is a compact record threaded through lib/net packets: the
   origin (session, level, birth time) plus a bounded buffer of
   (sim_time, component) hops appended as the packet crosses
   instrumented sites (link enqueue/tx/rx, multicast fan-out, the
   SIGMA agent).  Retiring a lineage folds its hop chain into a
   domain-local transition table (from-component -> to-component:
   count / total / max latency), so forensics can break end-to-end
   latency down per hop without retaining every chain; interesting
   retirements (key rejections) are additionally kept whole in a
   bounded case log, which is where the containment critical path
   comes from.

   Collection is off by default.  Disabled, every packet shares its
   domain's sentinel record (empty hop arrays), so the hot-path [hop]
   call is a load and a length check — no allocation, no writes, and
   deterministic output is untouched.  Enabled, records are recycled
   through a bounded domain-local free list, so steady-state
   collection allocates nothing either (see the pool-reuse test). *)

let hop_cap = 16
let pool_cap = 4096
let case_cap = 64

type t = {
  mutable origin_session : int;
  mutable origin_level : int;
  mutable born : float;  (** sim time the origin stamped; -1 = unset *)
  mutable hops : int;
  mutable lost : int;  (** hops dropped beyond the buffer *)
  times : float array;  (** [hop_cap] slots; 0 slots = disabled sentinel *)
  comps : string array;
}

type transition = {
  from_comp : string;
  to_comp : string;
  t_count : int;
  t_total_s : float;
  t_max_s : float;
}

type case = {
  c_kind : string;
  c_time : float;
  c_attrs : (string * Json.t) list;
  c_session : int;
  c_level : int;
  c_born : float;
  c_hops : (float * string) list;
}

type agg = {
  mutable a_count : int;
  mutable a_total : float;
  mutable a_max : float;
}

type state = {
  mutable on : bool;
  sentinel : t;
  mutable pool : t list;
  mutable pooled : int;
  transitions : (string * string, agg) Hashtbl.t;
  mutable cases : case list;  (** newest first; the first [case_cap] kept *)
  mutable n_cases : int;
  mutable cases_dropped : int;
  mutable retired : int;
  mutable allocated : int;
  mutable pool_hits : int;
}

let fresh_record () =
  {
    origin_session = -1;
    origin_level = -1;
    born = -1.;
    hops = 0;
    lost = 0;
    times = Array.make hop_cap 0.;
    comps = Array.make hop_cap "";
  }

let state_key =
  Domain.DLS.new_key (fun () ->
      {
        on = false;
        sentinel =
          {
            origin_session = -1;
            origin_level = -1;
            born = -1.;
            hops = 0;
            lost = 0;
            times = [||];
            comps = [||];
          };
        pool = [];
        pooled = 0;
        transitions = Hashtbl.create 64;
        cases = [];
        n_cases = 0;
        cases_dropped = 0;
        retired = 0;
        allocated = 0;
        pool_hits = 0;
      })

let state () = Domain.DLS.get state_key
let enabled () = (state ()).on

let reset () =
  let st = state () in
  st.pool <- [];
  st.pooled <- 0;
  Hashtbl.reset st.transitions;
  st.cases <- [];
  st.n_cases <- 0;
  st.cases_dropped <- 0;
  st.retired <- 0;
  st.allocated <- 0;
  st.pool_hits <- 0

let enable () =
  reset ();
  (state ()).on <- true

let disable () =
  (* Aggregates survive so callers can disable, then summarise; [enable]
     and [reset] clear them. *)
  (state ()).on <- false

let none () = (state ()).sentinel

(* The sentinel (and only the sentinel) has no hop slots, so one length
   check distinguishes live records on every hot-path entry point. *)
let is_none t = Array.length t.times = 0

let fresh () =
  let st = state () in
  if not st.on then st.sentinel
  else
    match st.pool with
    | r :: rest ->
        st.pool <- rest;
        st.pooled <- st.pooled - 1;
        st.pool_hits <- st.pool_hits + 1;
        r.origin_session <- -1;
        r.origin_level <- -1;
        r.born <- -1.;
        r.hops <- 0;
        r.lost <- 0;
        r
    | [] ->
        st.allocated <- st.allocated + 1;
        fresh_record ()

let release t =
  if not (is_none t) then begin
    let st = state () in
    if st.pooled < pool_cap then begin
      st.pool <- t :: st.pool;
      st.pooled <- st.pooled + 1
    end
  end

let clone src =
  if is_none src then src
  else begin
    let c = fresh () in
    if is_none c then c  (* collection raced off; keep the sentinel *)
    else begin
      c.origin_session <- src.origin_session;
      c.origin_level <- src.origin_level;
      c.born <- src.born;
      c.hops <- src.hops;
      c.lost <- src.lost;
      Array.blit src.times 0 c.times 0 src.hops;
      Array.blit src.comps 0 c.comps 0 src.hops;
      c
    end
  end

let set_origin t ~session ~level ~time =
  if not (is_none t) then begin
    t.origin_session <- session;
    t.origin_level <- level;
    t.born <- time
  end

let hop t ~time comp =
  if not (is_none t) then begin
    if t.hops < Array.length t.times then begin
      t.times.(t.hops) <- time;
      t.comps.(t.hops) <- comp;
      t.hops <- t.hops + 1
    end
    else t.lost <- t.lost + 1
  end

let hops t = List.init t.hops (fun i -> (t.times.(i), t.comps.(i)))
let origin t = (t.origin_session, t.origin_level, t.born)
let lost t = t.lost

let note_transition st ~from_comp ~to_comp dt =
  let key = (from_comp, to_comp) in
  match Hashtbl.find_opt st.transitions key with
  | Some a ->
      a.a_count <- a.a_count + 1;
      a.a_total <- a.a_total +. dt;
      if dt > a.a_max then a.a_max <- dt
  | None ->
      Hashtbl.replace st.transitions key
        { a_count = 1; a_total = dt; a_max = dt }

let retire t ~time =
  if not (is_none t) then begin
    let st = state () in
    st.retired <- st.retired + 1;
    let prev_t = ref t.born and prev_c = ref "origin" in
    if t.born < 0. && t.hops > 0 then begin
      prev_t := t.times.(0);
      prev_c := t.comps.(0)
    end;
    for i = 0 to t.hops - 1 do
      let ti = t.times.(i) and ci = t.comps.(i) in
      if not (Float.equal ti !prev_t && String.equal ci !prev_c) then
        note_transition st ~from_comp:!prev_c ~to_comp:ci (ti -. !prev_t);
      prev_t := ti;
      prev_c := ci
    done;
    if t.hops > 0 then
      note_transition st ~from_comp:!prev_c ~to_comp:"retired" (time -. !prev_t)
  end

let note_case t ~kind ~time ~attrs =
  if not (is_none t) then begin
    let st = state () in
    if st.n_cases >= case_cap then st.cases_dropped <- st.cases_dropped + 1
    else begin
      st.cases <-
        {
          c_kind = kind;
          c_time = time;
          c_attrs = attrs;
          c_session = t.origin_session;
          c_level = t.origin_level;
          c_born = t.born;
          c_hops = hops t;
        }
        :: st.cases;
      st.n_cases <- st.n_cases + 1
    end
  end

(* --- summaries ---------------------------------------------------------- *)

type summary = {
  s_transitions : transition list;
  s_cases : case list;  (** in record order (oldest first) *)
  s_retired : int;
  s_allocated : int;
  s_pool_hits : int;
  s_cases_dropped : int;
}

let summary () =
  let st = state () in
  let transitions =
    Hashtbl.fold
      (fun (from_comp, to_comp) a acc ->
        {
          from_comp;
          to_comp;
          t_count = a.a_count;
          t_total_s = a.a_total;
          t_max_s = a.a_max;
        }
        :: acc)
      st.transitions []
    |> List.sort (fun a b ->
           match String.compare a.from_comp b.from_comp with
           | 0 -> String.compare a.to_comp b.to_comp
           | c -> c)
  in
  {
    s_transitions = transitions;
    s_cases = List.rev st.cases;
    s_retired = st.retired;
    s_allocated = st.allocated;
    s_pool_hits = st.pool_hits;
    s_cases_dropped = st.cases_dropped;
  }

let allocated () = (state ()).allocated
let pooled () = (state ()).pooled

let case_to_json c =
  Json.Obj
    [
      ("kind", Json.String c.c_kind);
      ("t", Json.Float c.c_time);
      ("session", Json.Int c.c_session);
      ("level", Json.Int c.c_level);
      ("born", Json.Float c.c_born);
      ( "hops",
        Json.List
          (List.map
             (fun (t, comp) -> Json.List [ Json.Float t; Json.String comp ])
             c.c_hops) );
      ("attrs", Json.Obj c.c_attrs);
    ]

let to_json s =
  Json.Obj
    [
      ( "transitions",
        Json.List
          (List.map
             (fun tr ->
               Json.Obj
                 [
                   ("from", Json.String tr.from_comp);
                   ("to", Json.String tr.to_comp);
                   ("count", Json.Int tr.t_count);
                   ("total_s", Json.Float tr.t_total_s);
                   ("max_s", Json.Float tr.t_max_s);
                 ])
             s.s_transitions) );
      ("cases", Json.List (List.map case_to_json s.s_cases));
      ("retired", Json.Int s.s_retired);
      ("allocated", Json.Int s.s_allocated);
      ("pool_hits", Json.Int s.s_pool_hits);
      ("cases_dropped", Json.Int s.s_cases_dropped);
    ]
