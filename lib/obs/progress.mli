(** Live telemetry monitor for long Domain-parallel sweeps.

    A monitor watches a batch of [total] cells run by worker domains:
    workers report each finished cell with {!cell_done}, and a dedicated
    monitor domain wakes every [interval] seconds to assemble a
    {!sample} — completion, aggregate events/s, an ETA, and GC telemetry
    ([Gc.quick_stat] major words and heap high-water from the monitor's
    own view of the shared major heap, plus worker-reported minor
    words) — and hand it to the [on_progress] callback.

    Telemetry never touches results: the callback fires at
    host-timing-dependent moments, so callers must route it to ephemeral
    output only (the CLI renders a stderr meter).  Batch sinks are fed
    after the sweep in deterministic order, unchanged — the runner's
    byte-identical-sinks guarantee holds with a monitor attached.

    Clock discipline: elapsed time and ETA read the host clock through
    the one sanctioned site ({!Profile.now}); the monitor's pacing sleep
    is this module's own justified [wall-clock] pragma site. *)

type sample = {
  total : int;  (** cells in the batch *)
  completed : int;  (** cells finished so far *)
  events : int;  (** simulation events across finished cells *)
  elapsed_s : float;  (** wall seconds since {!start} *)
  events_per_sec : float;  (** [events /. elapsed_s] (0 at t=0) *)
  eta_s : float option;
      (** linear-extrapolation estimate of remaining wall seconds; [None]
          until at least one cell has finished or once all have *)
  minor_words : float;  (** worker-reported minor allocations (words) *)
  major_words : float;  (** [Gc.quick_stat] major words *)
  top_heap_words : int;  (** [Gc.quick_stat] heap high-water (words) *)
  final : bool;  (** [true] only for the sample {!stop} emits *)
}

type t

val start :
  ?interval:float -> total:int -> on_progress:(sample -> unit) -> unit -> t
(** Spawns the monitor domain; it calls [on_progress] every [interval]
    seconds (default 0.2) until {!stop}.  [on_progress] runs on the
    monitor domain (and once, for the final sample, on the caller of
    {!stop}), so it must not touch domain-local state of the workers. *)

val cell_done : t -> events:int -> minor_words:float -> unit
(** Worker-side report of one finished cell: the cell's event count and
    the minor words its domain allocated while running it.  Safe to call
    concurrently from any domain. *)

val stop : t -> sample
(** Stops and joins the monitor domain, then emits one final sample
    (with [final = true]) through [on_progress] and returns it.  ETA is
    suppressed on the final sample. *)

val render : sample -> string
(** One-line meter for the sample, no trailing newline — e.g.
    [[ 12/48 cells  25.0% | 1.31e+06 ev/s | eta 3.2s | gc minor 12.1Mw
    major 0.4Mw heap 6.2Mw ]].  The CLI prints it to stderr behind a
    carriage return. *)
