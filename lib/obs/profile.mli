(** Run profile: how fast the event loop went.

    [events] and [queue_capacity] come from the simulation (via the
    "engine.events" counter and "engine.queue_capacity" gauge the engine
    maintains) and are deterministic; [wall_s] and [events_per_sec] are
    wall-clock measurements and vary run to run.  {!to_json} renders the
    wall-clock fields last — even when {!sched_stats} render — so
    deterministic prefixes can be compared byte-for-byte. *)

(** Scheduler-backend introspection, published by the engine at run
    end.  All counts are of simulated work and therefore
    deterministic.  Heap backends use [pushes]/[max_size]/[capacities]
    (the capacity trajectory, growth by growth); wheel backends
    additionally fill the bucket-placement histogram [level_places]
    (one bin per wheel level), [overflow], [drain_inserts] and the
    cell free-list hit/miss counters.  [pool_hits]/[pool_misses] are
    the engine's timer-handle pool. *)
type sched_stats = {
  pushes : int;  (** events pushed over the run *)
  max_size : int;  (** queue size high-water, in events *)
  capacities : int list;  (** storage capacity after each growth, first to last *)
  level_places : int list;  (** wheel: placements per level; [[]] for heap *)
  overflow : int;  (** wheel: events placed beyond the horizon *)
  drain_inserts : int;  (** wheel: pushes landing on the draining tick *)
  free_hits : int;  (** wheel: cells recycled from the free list *)
  free_misses : int;  (** wheel: cells newly allocated *)
  pool_hits : int;  (** engine: timer handles reused from the pool *)
  pool_misses : int;  (** engine: timer handles freshly allocated *)
}

type t = {
  sched : string;  (** scheduler backend the run executed on *)
  events : int;  (** event-loop callbacks fired *)
  queue_capacity : int;  (** event-queue allocation high-water, in slots *)
  sched_stats : sched_stats option;  (** backend probe, when the engine published one *)
  wall_s : float;
  events_per_sec : float;
}

val make :
  ?sched:string ->
  ?sched_stats:sched_stats ->
  events:int ->
  queue_capacity:int ->
  wall_s:float ->
  unit ->
  t
(** Derives [events_per_sec] (0 when [wall_s] is 0).  [sched] defaults
    to ["heap"], the engine's default backend. *)

val now : unit -> float
(** Host wall clock, in seconds.  The one sanctioned direct read (see
    {!with_wall_clock}); the only other caller is {!Prof}, which needs
    per-span timestamps rather than one bracketed measurement. *)

val with_wall_clock : (unit -> 'a) -> 'a * float
(** [with_wall_clock f] runs [f] and returns its result paired with the
    elapsed wall-clock seconds.  This is the one sanctioned host-clock
    read in the tree (the lint [wall-clock] rule forbids
    [Unix.gettimeofday]/[Sys.time] everywhere else): simulation code
    measures time on the simulated clock only, and profiling callers go
    through here rather than touching [Unix] directly. *)

val sched_stats_to_json : sched_stats -> Json.t
val to_json : t -> Json.t
val pp : Format.formatter -> t -> unit

val note_sched_stats : sched_stats -> unit
(** Called by the engine when a run's metrics flush: parks this
    domain's backend stats for {!take_sched_stats}. *)

val take_sched_stats : unit -> sched_stats option
(** Takes (and clears) the stats {!note_sched_stats} parked on this
    domain, if any. *)
