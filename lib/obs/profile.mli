(** Run profile: how fast the event loop went.

    [events] and [queue_capacity] come from the simulation (via the
    "engine.events" counter and "engine.queue_capacity" gauge the engine
    maintains) and are deterministic; [wall_s] and [events_per_sec] are
    wall-clock measurements and vary run to run.  {!to_json} renders the
    wall-clock fields last so deterministic prefixes can be compared
    byte-for-byte. *)

type t = {
  sched : string;  (** scheduler backend the run executed on *)
  events : int;  (** event-loop callbacks fired *)
  queue_capacity : int;  (** event-queue allocation high-water, in slots *)
  wall_s : float;
  events_per_sec : float;
}

val make :
  ?sched:string -> events:int -> queue_capacity:int -> wall_s:float -> unit -> t
(** Derives [events_per_sec] (0 when [wall_s] is 0).  [sched] defaults
    to ["heap"], the engine's default backend. *)

val with_wall_clock : (unit -> 'a) -> 'a * float
(** [with_wall_clock f] runs [f] and returns its result paired with the
    elapsed wall-clock seconds.  This is the one sanctioned host-clock
    read in the tree (the lint [wall-clock] rule forbids
    [Unix.gettimeofday]/[Sys.time] everywhere else): simulation code
    measures time on the simulated clock only, and profiling callers go
    through here rather than touching [Unix] directly. *)

val to_json : t -> Json.t
val pp : Format.formatter -> t -> unit
