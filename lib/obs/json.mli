(** Minimal JSON emission (no parsing, no external dependency): just
    enough structure for the machine-readable experiment sinks and the
    telemetry layer.  Values render deterministically — same tree, same
    bytes — which is what lets the runner's serial and parallel outputs
    be byte-compared.

    Historically this module lived in [Mcc_core]; it moved here so the
    low-level libraries can render metrics and trace records without
    depending on the experiment layer.  [Mcc_core.Json] re-exports it. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** non-finite floats render as [null] *)
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering, no whitespace. *)

val escape : string -> string
(** The body of a JSON string literal for the argument (no surrounding
    quotes): backslash, quote, and control characters escaped, so
    arbitrary strings — trace attributes included — always produce
    valid JSON. *)

val of_series : (float * float) list -> t
(** A series as a list of [[x, y]] pairs. *)

val of_string : string -> (t, string) result
(** Parse one JSON document (the inverse of {!to_string}): standard
    JSON, no extensions.  Numbers without ['.'] or an exponent that fit
    in [int] parse as [Int], all others as [Float].  [Error] carries a
    byte offset plus a description.  This is what lets [mcc report] and
    the bench baseline gate read back what the sinks wrote without an
    external JSON dependency. *)

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] on missing fields or non-objects. *)

val to_float_opt : t -> float option
(** [Float] or [Int] as a float; [None] otherwise. *)

val to_string_opt : t -> string option

val to_series : t -> (float * float) list option
(** Inverse of {!of_series}: a list of [[x, y]] number pairs; [None] if
    any element has another shape. *)
