(** Append-only cross-run ledger.

    One JSONL file ([ledger.jsonl] under {!default_dir}) accumulates an
    entry per recorded invocation — [mcc run], [mcc matrix], [mcc
    profile], bench [--record] — so the repository's perf and metrics
    trajectory is visible {e across} runs, not just within one.  [mcc
    history] renders trends over it and [mcc diff] compares two entries.

    Determinism discipline (the same one {!Profile.to_json} follows):
    every field of an entry except the trailing [wall] object is a pure
    function of the recorded configuration, the simulation it produced,
    and the ledger's existing length — so two appends of the same config
    at the same position render byte-identical deterministic prefixes,
    and [mcc diff] of two same-config entries reports zero drift.  The
    [wall] object (wall seconds, events/s, self-profiler times,
    recording timestamp, bench figures — anything host-timing-derived)
    renders strictly last on the line. *)

type entry = {
  seq : int;  (** 1-based position in the ledger file *)
  kind : string;  (** "run", "matrix", "profile" or "bench" *)
  label : string;  (** human selector, e.g. "fig1" or "all" *)
  digest : string;  (** content hash of the config (see {!digest_of_json}) *)
  payload : Json.t;  (** deterministic body; by convention an object with a
                         ["config"] member the digest was computed over *)
  wall : (string * Json.t) list;
      (** nondeterministic suffix, rendered last *)
}

val default_dir : unit -> string
(** [$MCC_LEDGER] when set and non-empty, else [".mcc/ledger"]. *)

val file : dir:string -> string
(** The ledger file path, [dir ^ "/ledger.jsonl"]. *)

val digest_of_json : Json.t -> string
(** 64-bit FNV-1a over the compact rendering, as 16 lowercase hex
    characters.  A content hash of pure data (specs, matrix selections,
    bench configuration) — never of wall-clock material — so the same
    configuration always produces the same digest. *)

val entry_to_json : entry -> Json.t
(** [{"seq":..,"kind":..,"label":..,"digest":..,"payload":{..},
    "wall":{..}}] with [wall] last, so consumers can byte-compare lines
    truncated at ["wall"]. *)

val entry_of_json : Json.t -> (entry, string) result
(** Inverse of {!entry_to_json}; missing optional members default
    ([payload] to [Null], [wall] to []). *)

val append :
  dir:string ->
  kind:string ->
  label:string ->
  ?payload:Json.t ->
  ?wall:(string * Json.t) list ->
  unit ->
  (entry, string) result
(** Appends one entry, creating [dir] (and its parent) if needed.  The
    digest is computed over the payload's ["config"] member (or the
    whole payload if there is none) and [seq] is the current entry
    count plus one, so the entry is deterministic given the config and
    the ledger's history.  [Error] carries a filesystem or permission
    message; recording is telemetry, so callers typically warn and
    continue rather than fail the run. *)

val load : dir:string -> (entry list, string) result
(** Every entry of the ledger in file (= seq) order; [Ok []] when the
    ledger does not exist yet.  [Error] names the offending 1-based
    line on parse failures. *)
