type level = Debug | Info | Warn

let level_name = function Debug -> "debug" | Info -> "info" | Warn -> "warn"
let level_rank = function Debug -> 0 | Info -> 1 | Warn -> 2

type record = {
  sim_time : float;
  level : level;
  component : string;
  event : string;
  attrs : (string * Json.t) list;
}

type sink = {
  id : int;
  min_level : level;
  components : string list option;
  push : record -> unit;
  flush : unit -> unit;
}

(* Domain-local for the same reason the metrics registry is: a sink
   installed in one domain observes exactly the simulations that domain
   runs, and parallel batch domains never share (or lock) a sink. *)
let sinks : sink list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])
let next_id : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)

let enabled () = !(Domain.DLS.get sinks) <> []

(* A component filter matches exact names and dotted descendants on
   dotted boundaries only: "sigma" matches "sigma" and "sigma.router",
   never "sigmax" or "sigmax.fec".  A trailing dot is stripped first, so
   "sigma." (a natural way to type a prefix) behaves like "sigma"
   instead of silently matching nothing. *)
let strip_trailing_dots f =
  let rec last i = if i > 0 && f.[i - 1] = '.' then last (i - 1) else i in
  String.sub f 0 (last (String.length f))

let component_matches ~filter component =
  let filter = strip_trailing_dots filter in
  let lf = String.length filter and lc = String.length component in
  lf > 0
  && lc >= lf
  && String.sub component 0 lf = filter
  && (lc = lf || component.[lf] = '.')

(* Filter strings come straight from the CLI; a typo like "" or
   "sigma..router" would otherwise install a sink that silently matches
   nothing.  [check_component] is the shared validator. *)
let check_component filter =
  let has_space s = String.exists (fun c -> c = ' ' || c = '\t') s in
  if String.trim filter = "" then
    Error "component filter must not be empty or whitespace"
  else if has_space filter then
    Error
      (Printf.sprintf "component filter %S must not contain whitespace" filter)
  else
    let body = strip_trailing_dots filter in
    if List.exists (fun seg -> seg = "") (String.split_on_char '.' body) then
      Error
        (Printf.sprintf "component filter %S has an empty dotted segment" filter)
    else Ok ()

let check_components filters =
  List.fold_left
    (fun acc f -> match acc with Error _ -> acc | Ok () -> check_component f)
    (Ok ()) filters

let wants s ~level ~component =
  level_rank level >= level_rank s.min_level
  && (match s.components with
     | None -> true
     | Some filters ->
         List.exists (fun filter -> component_matches ~filter component) filters)

let emit_at ~level ~sim_time ~component ~event attrs =
  match !(Domain.DLS.get sinks) with
  | [] -> ()
  | all -> (
      match List.filter (fun s -> wants s ~level ~component) all with
      | [] -> ()
      | interested ->
          let r = { sim_time; level; component; event; attrs = attrs () } in
          (* Install order = reverse list order; deliver oldest first. *)
          List.iter (fun s -> s.push r) (List.rev interested))

let emit ?(level = Info) ~sim_time ~component ~event attrs =
  emit_at ~level ~sim_time ~component ~event attrs

let install ?(min_level = Debug) ?components ?(flush = fun () -> ()) push =
  let idr = Domain.DLS.get next_id in
  incr idr;
  let s = { id = !idr; min_level; components; push; flush } in
  let r = Domain.DLS.get sinks in
  r := s :: !r;
  s

let remove s =
  let r = Domain.DLS.get sinks in
  r := List.filter (fun s' -> s'.id <> s.id) !r;
  s.flush ()

let record_json r =
  Json.Obj
    ([
       ("t", Json.Float r.sim_time);
       ("level", Json.String (level_name r.level));
       ("component", Json.String r.component);
       ("event", Json.String r.event);
     ]
    @ match r.attrs with [] -> [] | attrs -> [ ("attrs", Json.Obj attrs) ])

let jsonl ?min_level ?components write =
  install ?min_level ?components
    (fun r -> write (Json.to_string (record_json r) ^ "\n"))

let ring ?(capacity = 4096) ?min_level ?components () =
  let ring = Ring.create ~capacity in
  let sink = install ?min_level ?components (fun r -> Ring.push ring r) in
  (ring, sink)
