(** Domain-local metrics registry: named counters, gauges and
    fixed-bucket histograms.

    Like the packet-UID registry, the table is domain-local
    ([Domain.DLS]), so the batch runner's [--jobs N] domains never
    contend on or interleave their counters: a simulation's metrics live
    exactly in the domain that ran it.  Within a domain, registration is
    get-or-create — every [counter "link.drops"] call returns the same
    handle — so components instrumented independently aggregate into one
    metric.

    The intended per-run protocol (what [Mcc_core.Runner] does):
    {!reset}, run the simulation, {!snapshot}.  Handles fetched before a
    reset keep mutating their detached records and stop being visible,
    so a stale component can never pollute the next run's snapshot. *)

type counter
type gauge
type histogram

(** An immutable snapshot of one metric. *)
type value =
  | Counter of int
  | Gauge of float
  | Histogram of {
      bounds : float list;
      buckets : int list;  (** one per bound plus a final overflow bucket *)
      observations : int;
      sum : float;
    }

val counter : string -> counter
(** Get or create the named counter in this domain's registry.
    @raise Invalid_argument if the name is registered with another kind. *)

val incr : ?by:int -> counter -> unit

val incr_by : counter -> int -> unit
(** [incr ~by] without the optional-argument [Some] box: [\[@hot\]]
    call sites use this so per-packet accounting allocates nothing. *)

val counter_value : counter -> int

val tick : ?by:int -> string -> unit
(** [incr ?by (counter name)] — for cold paths where caching the handle
    is not worth the plumbing. *)

val gauge : string -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float

val set_gauge : string -> float -> unit
(** [set (gauge name) v]. *)

val exponential_bounds : base:float -> count:int -> float list
(** [count] power-of-two bucket bounds starting at [base]:
    [[base; 2*base; 4*base; ...]].  The standard shape for latency and
    queue-depth histograms, replacing hand-written bucket lists.
    @raise Invalid_argument if [base] is not finite and positive or
    [count < 1]. *)

val histogram : string -> bounds:float list -> histogram
(** Fixed upper bucket bounds, strictly ascending; an observation lands
    in the first bucket whose bound is [>= v], or the overflow bucket.
    @raise Invalid_argument on empty or non-ascending bounds, or a name
    registered with another kind. *)

val observe : histogram -> float -> unit

val snapshot : unit -> (string * value) list
(** Every metric of this domain's registry, sorted by name — the sort
    makes renderings deterministic and byte-comparable. *)

val reset : unit -> unit
(** Empties this domain's registry (see the per-run protocol above). *)

val value_json : value -> Json.t
val values_json : (string * value) list -> Json.t
(** An object keyed by metric name, in list order. *)

val snapshot_json : unit -> Json.t

val to_openmetrics : ?prefix:string -> (string * value) list -> string
(** An OpenMetrics text-format exposition of one snapshot: per metric a
    [# TYPE]/[# HELP] block and its sample lines, then the mandatory
    [# EOF] marker.  Dotted registry names map to underscore-separated
    OpenMetrics names under [prefix] (default ["mcc_"]); counters get
    the [_total] suffix; histograms render cumulative [_bucket{le=..}]
    lines (upper bounds inclusive, final [+Inf]) plus [_sum]/[_count].
    Deterministic for a given snapshot — snapshots are name-sorted. *)

val openmetrics_page : ?prefix:string -> ((string * string) list * (string * value) list) list -> string
(** Like {!to_openmetrics} but merges several labelled snapshots into
    one exposition: each [(labels, values)] set contributes sample
    lines carrying its label set (e.g. [("run", "fig1")]), grouped so
    each metric family appears exactly once, with a single trailing
    [# EOF].  Family order is first appearance across the sets. *)
