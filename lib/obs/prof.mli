(** Domain-local hierarchical self-profiler (the third observability
    pillar, alongside {!Metrics} and {!Tracer}).

    Scoped spans attribute wall time, call counts and minor-heap
    allocation to a component tree keyed by the span call path: the
    same name under two different parents is two nodes, so recursion
    and shared helpers never double-count.  Wall time is read through
    {!Profile.now}, the sanctioned host-clock site.

    {b Zero cost when disabled}: {!span} reads one domain-local flag
    and returns {!disabled}; {!finish} on that token is one integer
    compare.  No closure is built and no clock is read, so span sites
    may sit on simulator hot paths (the bench [profile-overhead]
    figure pins the disabled overhead at under 2%).  Span sites are
    confined to [lib/] modules with interfaces — the lint [prof-span]
    rule enforces this.

    State is per-domain ({!Domain.DLS}): a batch worker's tree must be
    snapshotted inside the worker ([Mcc_core.Runner] does). *)

val enabled : unit -> bool

val enable : unit -> unit
(** Clears this domain's tree and starts collecting. *)

val disable : unit -> unit
(** Stops collecting.  The tree survives until {!enable}/{!reset} so a
    caller may still {!snapshot} after disabling. *)

val reset : unit -> unit

type span
(** An open region token.  Not thread-values: open and finish on the
    same domain, well-nested (the engine loop and [with_span] both
    guarantee this). *)

val disabled : span
(** The token {!span} returns when profiling is off. *)

val span : string -> span
(** Opens a region named [name] under the innermost open span (or at
    the root).  Returns {!disabled} when profiling is off. *)

val finish : span -> unit
(** Closes the region.  Also closes any inner spans still open above
    it (exception paths), charging them to their own nodes. *)

val with_span : string -> (unit -> 'a) -> 'a
(** [with_span name f] brackets [f] in a span, finishing on exceptions
    too.  When profiling is off this is exactly [f ()] — prefer the
    explicit {!span}/{!finish} pair on hot paths where even the
    closure argument's allocation matters. *)

(** One component node of a snapshot. *)
type entry = {
  path : string list;  (** root-first span path, e.g. [["run"; "engine"; "link"]] *)
  depth : int;  (** [List.length path - 1] *)
  count : int;  (** times the span was opened *)
  total_s : float;  (** wall seconds inside the span, children included *)
  self_s : float;  (** wall seconds minus direct children's totals *)
  alloc_w : float;  (** minor words allocated, children excluded *)
}

val snapshot : unit -> entry list
(** Depth-first preorder, children in creation order — deterministic
    for a deterministic run (the times, of course, are not). *)

val root_total : entry list -> float
(** Sum of the root spans' [total_s]. *)

val self_total : entry list -> float
(** Sum of every node's [self_s]; equals {!root_total} by
    construction, so coverage against an externally measured wall time
    is [self_total / wall_s]. *)

val to_markdown : ?wall_s:float -> entry list -> string
(** Markdown self-time table (count, total, self, self-%, allocation);
    with [wall_s], percentages are against it and a coverage line is
    appended. *)

val folded : entry list -> string
(** Folded-stack lines ["a;b;c <self-microseconds>"], the input format
    of [flamegraph.pl], inferno and speedscope. *)

val to_json : entry list -> Json.t
