(** Structured event tracing: a domain-wide stream of
    [{sim_time; component; event; attrs}] records.

    Components call {!emit} unconditionally; with no sink installed the
    call is a cheap no-op (hot paths may additionally guard attribute
    construction behind {!enabled}).  Sinks filter by severity and by
    component, and come in two memory shapes: a JSONL writer for full
    streams ([mcc trace]) and a bounded {!Ring} for in-memory capture.

    Sinks are domain-local — a sink observes exactly the simulations its
    own domain runs — which is what keeps [--jobs N] batch runs
    race-free without locks. *)

type level = Debug | Info | Warn

val level_name : level -> string

type record = {
  sim_time : float;  (** simulated seconds, not wall clock *)
  level : level;
  component : string;  (** dotted source name, e.g. "sigma.router" *)
  event : string;  (** e.g. "drop", "grace_admit" *)
  attrs : (string * Json.t) list;
}

type sink

val enabled : unit -> bool
(** Any sink installed in this domain?  Hot paths check this before
    building attribute closures. *)

val emit :
  ?level:level ->
  sim_time:float ->
  component:string ->
  event:string ->
  (unit -> (string * Json.t) list) ->
  unit
(** Deliver a record to every interested sink (default level [Info]).
    The attribute thunk runs only if at least one sink wants the
    record. *)

val emit_at :
  level:level ->
  sim_time:float ->
  component:string ->
  event:string ->
  (unit -> (string * Json.t) list) ->
  unit
(** [emit] with the level required rather than optional: no
    [Some level] box per call, so [\[@hot\]] emitters use this form. *)

val install :
  ?min_level:level ->
  ?components:string list ->
  ?flush:(unit -> unit) ->
  (record -> unit) ->
  sink
(** Install a sink in this domain.  [min_level] defaults to [Debug]
    (everything); [components] restricts to the named components and
    their dotted descendants ("sigma" matches "sigma.router").  [flush]
    runs on {!remove}. *)

val remove : sink -> unit
(** Uninstall (idempotent) and flush. *)

val component_matches : filter:string -> string -> bool
(** Dotted-prefix matching on component boundaries: filter ["sigma"]
    matches ["sigma"] and ["sigma.router"], never ["sigmax"] or
    ["sigmax.fec"].  A trailing dot on the filter is ignored, so
    ["sigma."] behaves like ["sigma"]. *)

val check_component : string -> (unit, string) result
(** Validate one component filter string (CLI [--filter] values): empty
    or whitespace strings and empty dotted segments (["sigma..router"])
    are rejected with a descriptive error instead of silently matching
    nothing.  A single trailing dot is accepted as prefix notation. *)

val check_components : string list -> (unit, string) result
(** First error of {!check_component} over the list, or [Ok ()]. *)

val record_json : record -> Json.t
(** [{"t":..., "level":..., "component":..., "event":..., "attrs":{...}}];
    ["attrs"] is omitted when empty. *)

val jsonl : ?min_level:level -> ?components:string list -> (string -> unit) -> sink
(** A sink writing one {!record_json} line per record. *)

val ring :
  ?capacity:int ->
  ?min_level:level ->
  ?components:string list ->
  unit ->
  record Ring.t * sink
(** Bounded-memory capture: the most recent [capacity] (default 4096)
    matching records. *)
