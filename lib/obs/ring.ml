type 'a t = {
  capacity : int;
  slots : 'a option array;
  mutable start : int;  (* index of the oldest retained element *)
  mutable length : int;
  mutable pushed : int;  (* total ever pushed, evictions included *)
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Ring.create: capacity <= 0";
  { capacity; slots = Array.make capacity None; start = 0; length = 0;
    pushed = 0 }

let capacity t = t.capacity
let length t = t.length
let pushed t = t.pushed

let push t x =
  let idx = (t.start + t.length) mod t.capacity in
  t.slots.(idx) <- Some x;
  if t.length = t.capacity then t.start <- (t.start + 1) mod t.capacity
  else t.length <- t.length + 1;
  t.pushed <- t.pushed + 1

let iter f t =
  for i = 0 to t.length - 1 do
    match t.slots.((t.start + i) mod t.capacity) with
    | Some x -> f x
    | None -> assert false
  done

let fold f init t =
  let acc = ref init in
  iter (fun x -> acc := f !acc x) t;
  !acc

let to_list t = List.rev (fold (fun acc x -> x :: acc) [] t)

let clear t =
  Array.fill t.slots 0 t.capacity None;
  t.start <- 0;
  t.length <- 0
