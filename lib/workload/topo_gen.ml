module Sim = Mcc_engine.Sim
module Topology = Mcc_net.Topology
module Node = Mcc_net.Node
module Prng = Mcc_util.Prng
module Spec = Mcc_core.Spec
module Defaults = Mcc_core.Defaults

type built = {
  topo : Topology.t;
  sender : Node.t;
  pool : Node.t list;
  edges : Node.t list;
}

(* Link construction mirrors Dumbbell's sizing: buffers hold two
   bandwidth-delay products of the standard path RTT at the link's own
   rate, and ECN (when enabled) marks at half the buffer.  Core links
   carry the marking threshold; access links are provisioned an order
   of magnitude above any session and never congest first. *)

let rtt_s ~delay_s =
  Defaults.path_rtt_s ~bottleneck_delay_s:delay_s
    ~access_delay_s:Defaults.access_delay_s

let core_link ~ecn topo a b ~rate_bps ~delay_s =
  let buffer = Defaults.buffer_bytes ~bottleneck_rate_bps:rate_bps ~rtt_s:(rtt_s ~delay_s) in
  let ecn_threshold_bytes = if ecn then Some (buffer / 2) else None in
  ignore
    (Topology.connect topo a b ~rate_bps ~delay_s ~buffer_bytes:buffer
       ?ecn_threshold_bytes ())

let access_link topo router host =
  let rate_bps = Defaults.access_rate_bps in
  let delay_s = Defaults.access_delay_s in
  let buffer =
    Defaults.buffer_bytes ~bottleneck_rate_bps:rate_bps ~rtt_s:(rtt_s ~delay_s)
  in
  ignore
    (Topology.connect topo router host ~rate_bps ~delay_s ~buffer_bytes:buffer
       ())

let add_host topo router =
  let host = Topology.add_node topo Node.Host in
  access_link topo router host;
  host

(* --- Dumbbell ----------------------------------------------------------- *)

let dumbbell ~ecn topo ~hosts ~core_rate_bps =
  let left = Topology.add_node topo Node.Edge_router in
  let right = Topology.add_node topo Node.Edge_router in
  core_link ~ecn topo left right ~rate_bps:core_rate_bps
    ~delay_s:Defaults.bottleneck_delay_s;
  let sender = add_host topo left in
  let pool = List.init hosts (fun _ -> add_host topo right) in
  { topo; sender; pool; edges = [ right ] }

(* --- Fat tree ----------------------------------------------------------- *)

(* Canonical k-ary fat tree: (k/2)^2 core routers, k pods of k/2
   aggregation and k/2 edge routers, k/2 hosts per edge router.
   Aggregation router i of every pod uplinks to cores
   [i*k/2 .. i*k/2 + k/2 - 1]; every edge router connects to all of its
   pod's aggregation routers.  The sender is the first host of pod 0's
   first edge router; every other host is receiver pool, in edge order. *)

let fat_tree ~ecn topo ~k ~core_rate_bps =
  if k < 2 || k mod 2 <> 0 then invalid_arg "Topo_gen.fat_tree: k must be even and >= 2";
  let half = k / 2 in
  let delay_s = Defaults.bottleneck_delay_s /. 4. in
  let cores =
    Array.init (half * half) (fun _ -> Topology.add_node topo Node.Core_router)
  in
  let all_edges = ref [] in
  for _pod = 0 to k - 1 do
    let aggs =
      Array.init half (fun _ -> Topology.add_node topo Node.Core_router)
    in
    Array.iteri
      (fun i agg ->
        for j = 0 to half - 1 do
          core_link ~ecn topo agg cores.((i * half) + j)
            ~rate_bps:core_rate_bps ~delay_s
        done)
      aggs;
    for _e = 0 to half - 1 do
      let edge = Topology.add_node topo Node.Edge_router in
      Array.iter
        (fun agg -> core_link ~ecn topo edge agg ~rate_bps:core_rate_bps ~delay_s)
        aggs;
      all_edges := edge :: !all_edges
    done
  done;
  let edges = List.rev !all_edges in
  let hosts =
    List.concat_map (fun e -> List.init half (fun _ -> add_host topo e)) edges
  in
  match hosts with
  | sender :: pool -> { topo; sender; pool; edges }
  | [] -> assert false

(* --- Star of LANs ------------------------------------------------------- *)

(* One core router, [lans] edge routers on core links, [hosts_per_lan]
   hosts behind each edge.  The sender hangs directly off the core. *)

let star_lans ~ecn topo ~lans ~hosts_per_lan ~core_rate_bps =
  if lans < 1 || hosts_per_lan < 1 then
    invalid_arg "Topo_gen.star_lans: lans and hosts_per_lan must be positive";
  let core = Topology.add_node topo Node.Core_router in
  let sender = add_host topo core in
  let edges = List.init lans (fun _ -> Topology.add_node topo Node.Edge_router) in
  List.iter
    (fun e ->
      core_link ~ecn topo core e ~rate_bps:core_rate_bps
        ~delay_s:Defaults.bottleneck_delay_s)
    edges;
  let pool =
    List.concat_map
      (fun e -> List.init hosts_per_lan (fun _ -> add_host topo e))
      edges
  in
  { topo; sender; pool; edges }

(* --- ISP-like random graph ---------------------------------------------- *)

(* A random tree over [routers] core routers (router i uplinks to a
   uniformly drawn earlier router — the classic preferential-free
   random recursive tree), plus [extra_links] shortcut links between
   distinct random pairs.  Every core router fronts one edge router
   with [hosts_per_edge] hosts; the sender is an extra host on router
   0's edge.  All randomness comes from [prng], so one seed is one
   graph. *)

let isp_random ~ecn topo ~prng ~routers ~extra_links ~hosts_per_edge
    ~core_rate_bps =
  if routers < 2 then invalid_arg "Topo_gen.isp_random: routers must be >= 2";
  if hosts_per_edge < 1 then
    invalid_arg "Topo_gen.isp_random: hosts_per_edge must be positive";
  let delay_s = Defaults.bottleneck_delay_s /. 2. in
  let cores =
    Array.init routers (fun _ -> Topology.add_node topo Node.Core_router)
  in
  for i = 1 to routers - 1 do
    let up = Prng.int prng i in
    core_link ~ecn topo cores.(i) cores.(up) ~rate_bps:core_rate_bps ~delay_s
  done;
  (* Shortcuts may collide with tree links or each other; a duplicate
     duplex link is legal (parallel paths) and Dijkstra just ignores the
     longer one, so no dedup is needed — only self-loops are skipped,
     with the pair redrawn a bounded number of times. *)
  for _ = 1 to extra_links do
    let rec draw tries =
      let a = Prng.int prng routers and b = Prng.int prng routers in
      if a <> b then Some (a, b) else if tries <= 0 then None else draw (tries - 1)
    in
    match draw 8 with
    | Some (a, b) ->
        core_link ~ecn topo cores.(a) cores.(b) ~rate_bps:core_rate_bps ~delay_s
    | None -> ()
  done;
  let edges =
    Array.to_list
      (Array.map
         (fun c ->
           let e = Topology.add_node topo Node.Edge_router in
           core_link ~ecn topo c e ~rate_bps:core_rate_bps
             ~delay_s:Defaults.access_delay_s;
           e)
         cores)
  in
  let sender = add_host topo (List.hd edges) in
  let pool =
    List.concat_map
      (fun e -> List.init hosts_per_edge (fun _ -> add_host topo e))
      edges
  in
  { topo; sender; pool; edges }

(* --- Dispatch ----------------------------------------------------------- *)

let capacity ~(spec : Spec.topology_spec) ~hosts =
  match spec with
  | Spec.Dumbbell_topo -> hosts
  | Spec.Fat_tree { k; _ } -> (k * k * k / 4) - 1
  | Spec.Star_lans { lans; hosts_per_lan; _ } -> lans * hosts_per_lan
  | Spec.Isp_random { routers; hosts_per_edge; _ } -> routers * hosts_per_edge

let build ?(ecn = false) sim ~prng ~(spec : Spec.topology_spec) ~hosts =
  let topo = Topology.create sim in
  let b =
    match spec with
    | Spec.Dumbbell_topo ->
        dumbbell ~ecn topo ~hosts ~core_rate_bps:1_000_000.
    | Spec.Fat_tree { k; core_rate_bps } -> fat_tree ~ecn topo ~k ~core_rate_bps
    | Spec.Star_lans { lans; hosts_per_lan; core_rate_bps } ->
        star_lans ~ecn topo ~lans ~hosts_per_lan ~core_rate_bps
    | Spec.Isp_random { routers; extra_links; hosts_per_edge; core_rate_bps } ->
        isp_random ~ecn topo ~prng ~routers ~extra_links ~hosts_per_edge
          ~core_rate_bps
  in
  if List.length b.pool < hosts then
    invalid_arg
      (Printf.sprintf
         "Topo_gen.build: %s provides %d receiver hosts, workload needs %d"
         (Spec.topology_str spec) (List.length b.pool) hosts);
  b
