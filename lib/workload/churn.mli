(** Receiver-churn models as pure membership plans.

    A plan maps a {!Mcc_core.Spec.churn_spec} to a list of intervals —
    (pool host index, join time, optional leave time) — computed
    entirely up front.  The builder realises each interval as a fresh
    receiver instance on the named host, so a rejoin is a restart, and
    the whole membership timeline is a deterministic function of the
    spec and the seed stream. *)

type interval = {
  host : int;  (** index into the topology's receiver pool *)
  at : float;  (** join time, seconds *)
  until : float option;  (** leave time; [None] = stays to the end *)
}

val hosts_needed : spec:Mcc_core.Spec.churn_spec -> receivers:int -> int
(** Pool size the plan requires: the steady population plus, for a
    flash crowd, its arrivals (which land on their own hosts). *)

val plan :
  Mcc_util.Prng.t ->
  spec:Mcc_core.Spec.churn_spec ->
  receivers:int ->
  duration:float ->
  interval list
(** The membership timeline.  [No_churn]: everyone joins at 0 and
    stays.  [Flash_crowd]: [arrivals] extra receivers join around [at]
    (per-receiver jitter of up to 1 s from [prng]) and, when
    [leave_after > 0], leave that long after joining.  [Diurnal]: the
    first [fraction] of the population is subscribed only during the
    first half of every [period].  [Regional_outage]: the first
    [fraction] drops at [at] and rejoins at [restore_at]. *)
