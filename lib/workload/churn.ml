module Prng = Mcc_util.Prng
module Spec = Mcc_core.Spec

type interval = { host : int; at : float; until : float option }

(* A churn plan is pure data: intervals are computed up front from the
   spec (and the seed stream, for flash-crowd jitter), never from
   simulation state, so the same spec always produces the same
   membership timeline.  Each interval is realised as a fresh receiver
   instance; a rejoining host is a new receiver, matching how a real
   application would restart its session. *)

let hosts_needed ~(spec : Spec.churn_spec) ~receivers =
  match spec with
  | Spec.No_churn | Spec.Diurnal _ | Spec.Regional_outage _ -> receivers
  | Spec.Flash_crowd { arrivals; _ } -> receivers + arrivals

let base ~receivers = List.init receivers (fun i -> { host = i; at = 0.; until = None })

let plan prng ~(spec : Spec.churn_spec) ~receivers ~duration =
  match spec with
  | Spec.No_churn -> base ~receivers
  | Spec.Flash_crowd { at; arrivals; leave_after } ->
      (* The crowd lands on its own hosts (indices past the steady
         population), each jittered by up to a second so the joins do
         not arrive as one synchronized burst. *)
      let crowd =
        List.init arrivals (fun i ->
            let jitter = Prng.float prng in
            let join = at +. jitter in
            let until =
              if leave_after > 0. then Some (join +. leave_after) else None
            in
            { host = receivers + i; at = join; until })
      in
      base ~receivers @ crowd
  | Spec.Diurnal { period; fraction } ->
      (* The first [fraction] of the population cycles: on for the
         first half of every period, off for the second.  The rest stay
         subscribed for the whole run. *)
      let cycling =
        int_of_float (Float.round (fraction *. float_of_int receivers))
      in
      let cycling = max 0 (min receivers cycling) in
      let steady =
        List.init (receivers - cycling) (fun i ->
            { host = cycling + i; at = 0.; until = None })
      in
      let cycles = int_of_float (ceil (duration /. period)) in
      let cyclic =
        List.concat_map
          (fun i ->
            List.filter_map
              (fun k ->
                let at = float_of_int k *. period in
                if at >= duration then None
                else Some { host = i; at; until = Some (at +. (period /. 2.)) })
              (List.init (max 1 cycles) Fun.id))
          (List.init cycling Fun.id)
      in
      steady @ cyclic
  | Spec.Regional_outage { at; restore_at; fraction } ->
      (* A region — the first [fraction] of the population — drops at
         [at] and rejoins at [restore_at]. *)
      let affected =
        int_of_float (Float.round (fraction *. float_of_int receivers))
      in
      let affected = max 0 (min receivers affected) in
      let out =
        List.concat_map
          (fun i ->
            { host = i; at = 0.; until = Some at }
            ::
            (if restore_at < duration then
               [ { host = i; at = restore_at; until = None } ]
             else []))
          (List.init affected Fun.id)
      in
      let steady =
        List.init (receivers - affected) (fun i ->
            { host = affected + i; at = 0.; until = None })
      in
      out @ steady
