(** Workload instantiation: one {!Mcc_core.Spec.workload_params} in,
    one finished simulation out.

    Builds the declared topology ({!Topo_gen}), attaches a SIGMA agent
    with the shared DELTA scrubber to every receiver-side edge router
    when the defence enforces, starts the declared protocol's sender
    and one receiver instance per churn interval ({!Churn}), installs
    the background traffic ({!Traffic}) and the optional bare attacker
    ({!Mcc_attack.Strategy}), computes routes, runs to the horizon and
    aggregates the result.

    Linking this module registers the implementation hook
    ({!Mcc_core.Experiments.set_workload_impl}), which is what makes
    [Spec.Workload] entries runnable by the ordinary Runner. *)

val run :
  Mcc_core.Spec.workload_params -> Mcc_core.Experiments.workload_result
