module Json = Mcc_core.Json
module Spec = Mcc_core.Spec
module Runner = Mcc_core.Runner

let version = 1

let ( let* ) = Result.bind

let err ctx msg = Error (Printf.sprintf "%s: %s" ctx msg)

(* --- Typed field access with error paths -------------------------------- *)

let as_obj ctx = function
  | Json.Obj fields -> Ok fields
  | _ -> err ctx "expected an object"

let check_keys ctx allowed fields =
  match List.find_opt (fun (k, _) -> not (List.mem k allowed)) fields with
  | Some (k, _) ->
      err
        (Printf.sprintf "%s.%s" ctx k)
        (Printf.sprintf "unknown field (allowed: %s)"
           (String.concat ", " allowed))
  | None -> Ok ()

let field ctx fields name =
  match List.assoc_opt name fields with
  | Some v -> Ok v
  | None -> err (Printf.sprintf "%s.%s" ctx name) "missing required field"

let opt_field fields name = List.assoc_opt name fields

let as_int ctx = function
  | Json.Int i -> Ok i
  | _ -> err ctx "expected an integer"

let as_float ctx v =
  match Json.to_float_opt v with
  | Some f -> Ok f
  | None -> err ctx "expected a number"

let as_string ctx = function
  | Json.String s -> Ok s
  | _ -> err ctx "expected a string"

let int_field ctx fields name =
  let* v = field ctx fields name in
  as_int (Printf.sprintf "%s.%s" ctx name) v

let float_field ctx fields name =
  let* v = field ctx fields name in
  as_float (Printf.sprintf "%s.%s" ctx name) v

let opt_float_field ctx fields name ~default =
  match opt_field fields name with
  | None -> Ok default
  | Some v -> as_float (Printf.sprintf "%s.%s" ctx name) v

let opt_int_field ctx fields name ~default =
  match opt_field fields name with
  | None -> Ok default
  | Some v -> as_int (Printf.sprintf "%s.%s" ctx name) v

let positive ctx what v =
  if v > 0. then Ok v else err ctx (Printf.sprintf "%s must be positive" what)

(* --- Enumerations from the Spec registries ------------------------------ *)

let protocol_of_string ctx s =
  match List.find_opt (fun (_, n, _) -> String.equal n s) Spec.protocols with
  | Some (p, _, _) -> Ok p
  | None ->
      err ctx
        (Printf.sprintf "unknown protocol %S (one of: %s)" s
           (String.concat ", " (List.map (fun (_, n, _) -> n) Spec.protocols)))

let defences =
  [ Spec.Undefended; Spec.Delta_only; Spec.Delta_sigma; Spec.Delta_sigma_ecn ]

let defence_of_string ctx s =
  match
    List.find_opt (fun d -> String.equal (Spec.defence_str d) s) defences
  with
  | Some d -> Ok d
  | None ->
      err ctx
        (Printf.sprintf "unknown defence %S (one of: %s)" s
           (String.concat ", " (List.map Spec.defence_str defences)))

(* --- Nested objects ----------------------------------------------------- *)

let topology ctx v =
  let* fields = as_obj ctx v in
  let* kind = field ctx fields "kind" in
  let* kind = as_string (ctx ^ ".kind") kind in
  match kind with
  | "dumbbell" ->
      let* () = check_keys ctx [ "kind" ] fields in
      Ok Spec.Dumbbell_topo
  | "fat_tree" ->
      let* () = check_keys ctx [ "kind"; "k"; "core_rate_bps" ] fields in
      let* k = opt_int_field ctx fields "k" ~default:4 in
      let* core_rate_bps =
        opt_float_field ctx fields "core_rate_bps" ~default:2_000_000.
      in
      if k < 2 || k mod 2 <> 0 then
        err (ctx ^ ".k") "fat-tree arity must be even and >= 2"
      else
        let* _ = positive (ctx ^ ".core_rate_bps") "core rate" core_rate_bps in
        Ok (Spec.Fat_tree { k; core_rate_bps })
  | "star_lans" ->
      let* () =
        check_keys ctx [ "kind"; "lans"; "hosts_per_lan"; "core_rate_bps" ] fields
      in
      let* lans = opt_int_field ctx fields "lans" ~default:4 in
      let* hosts_per_lan = opt_int_field ctx fields "hosts_per_lan" ~default:4 in
      let* core_rate_bps =
        opt_float_field ctx fields "core_rate_bps" ~default:2_000_000.
      in
      if lans < 1 then err (ctx ^ ".lans") "need at least one LAN"
      else if hosts_per_lan < 1 then
        err (ctx ^ ".hosts_per_lan") "need at least one host per LAN"
      else
        let* _ = positive (ctx ^ ".core_rate_bps") "core rate" core_rate_bps in
        Ok (Spec.Star_lans { lans; hosts_per_lan; core_rate_bps })
  | "isp_random" ->
      let* () =
        check_keys ctx
          [ "kind"; "routers"; "extra_links"; "hosts_per_edge"; "core_rate_bps" ]
          fields
      in
      let* routers = opt_int_field ctx fields "routers" ~default:8 in
      let* extra_links = opt_int_field ctx fields "extra_links" ~default:3 in
      let* hosts_per_edge = opt_int_field ctx fields "hosts_per_edge" ~default:2 in
      let* core_rate_bps =
        opt_float_field ctx fields "core_rate_bps" ~default:2_000_000.
      in
      if routers < 2 then err (ctx ^ ".routers") "need at least two routers"
      else if extra_links < 0 then
        err (ctx ^ ".extra_links") "must be non-negative"
      else if hosts_per_edge < 1 then
        err (ctx ^ ".hosts_per_edge") "need at least one host per edge"
      else
        let* _ = positive (ctx ^ ".core_rate_bps") "core rate" core_rate_bps in
        Ok (Spec.Isp_random { routers; extra_links; hosts_per_edge; core_rate_bps })
  | other ->
      err (ctx ^ ".kind")
        (Printf.sprintf
           "unknown topology %S (one of: dumbbell, fat_tree, star_lans, \
            isp_random)"
           other)

let churn ctx v =
  let* fields = as_obj ctx v in
  let* kind = field ctx fields "kind" in
  let* kind = as_string (ctx ^ ".kind") kind in
  match kind with
  | "none" ->
      let* () = check_keys ctx [ "kind" ] fields in
      Ok Spec.No_churn
  | "flash_crowd" ->
      let* () = check_keys ctx [ "kind"; "at"; "arrivals"; "leave_after" ] fields in
      let* at = float_field ctx fields "at" in
      let* arrivals = int_field ctx fields "arrivals" in
      let* leave_after = opt_float_field ctx fields "leave_after" ~default:0. in
      if arrivals < 1 then err (ctx ^ ".arrivals") "need at least one arrival"
      else if at < 0. then err (ctx ^ ".at") "must be non-negative"
      else Ok (Spec.Flash_crowd { at; arrivals; leave_after })
  | "diurnal" ->
      let* () = check_keys ctx [ "kind"; "period"; "fraction" ] fields in
      let* period = float_field ctx fields "period" in
      let* fraction = float_field ctx fields "fraction" in
      let* _ = positive (ctx ^ ".period") "period" period in
      if fraction <= 0. || fraction > 1. then
        err (ctx ^ ".fraction") "must be in (0, 1]"
      else Ok (Spec.Diurnal { period; fraction })
  | "regional_outage" ->
      let* () = check_keys ctx [ "kind"; "at"; "restore_at"; "fraction" ] fields in
      let* at = float_field ctx fields "at" in
      let* restore_at = float_field ctx fields "restore_at" in
      let* fraction = float_field ctx fields "fraction" in
      if at < 0. then err (ctx ^ ".at") "must be non-negative"
      else if restore_at <= at then
        err (ctx ^ ".restore_at") "must be after the outage"
      else if fraction <= 0. || fraction > 1. then
        err (ctx ^ ".fraction") "must be in (0, 1]"
      else Ok (Spec.Regional_outage { at; restore_at; fraction })
  | other ->
      err (ctx ^ ".kind")
        (Printf.sprintf
           "unknown churn model %S (one of: none, flash_crowd, diurnal, \
            regional_outage)"
           other)

let traffic_one ctx v =
  let* fields = as_obj ctx v in
  let* kind = field ctx fields "kind" in
  let* kind = as_string (ctx ^ ".kind") kind in
  match kind with
  | "web" ->
      let* () =
        check_keys ctx [ "kind"; "flows"; "rate_bps"; "mean_on"; "mean_off" ]
          fields
      in
      let* flows = opt_int_field ctx fields "flows" ~default:4 in
      let* rate_bps = opt_float_field ctx fields "rate_bps" ~default:200_000. in
      let* mean_on = opt_float_field ctx fields "mean_on" ~default:5. in
      let* mean_off = opt_float_field ctx fields "mean_off" ~default:5. in
      if flows < 1 then err (ctx ^ ".flows") "need at least one flow"
      else
        let* _ = positive (ctx ^ ".rate_bps") "rate" rate_bps in
        let* _ = positive (ctx ^ ".mean_on") "mean on period" mean_on in
        let* _ = positive (ctx ^ ".mean_off") "mean off period" mean_off in
        Ok (Spec.Web_mix { flows; rate_bps; mean_on; mean_off })
  | "tcp" ->
      let* () = check_keys ctx [ "kind"; "flows" ] fields in
      let* flows = opt_int_field ctx fields "flows" ~default:1 in
      if flows < 1 then err (ctx ^ ".flows") "need at least one flow"
      else Ok (Spec.Tcp_flows { flows })
  | other ->
      err (ctx ^ ".kind")
        (Printf.sprintf "unknown traffic model %S (one of: web, tcp)" other)

let attack ctx v =
  let* fields = as_obj ctx v in
  let* kind = field ctx fields "kind" in
  let* kind = as_string (ctx ^ ".kind") kind in
  let* at = opt_float_field ctx fields "at" ~default:40. in
  let* () =
    if at < 0. then err (ctx ^ ".at") "must be non-negative" else Ok ()
  in
  let* k =
    match kind with
    | "inflate" ->
        let* () = check_keys ctx [ "kind"; "at" ] fields in
        Ok Spec.Persistent_inflation
    | "pulse" ->
        let* () = check_keys ctx [ "kind"; "at"; "period_s"; "duty" ] fields in
        let* period_s = opt_float_field ctx fields "period_s" ~default:10. in
        let* duty = opt_float_field ctx fields "duty" ~default:0.5 in
        let* _ = positive (ctx ^ ".period_s") "period" period_s in
        if duty <= 0. || duty >= 1. then err (ctx ^ ".duty") "must be in (0, 1)"
        else Ok (Spec.Pulse_inflation { period_s; duty })
    | "guess" ->
        let* () = check_keys ctx [ "kind"; "at"; "budget_per_slot" ] fields in
        let* budget_per_slot =
          opt_int_field ctx fields "budget_per_slot" ~default:4
        in
        if budget_per_slot < 1 then
          err (ctx ^ ".budget_per_slot") "must be positive"
        else Ok (Spec.Key_guessing { budget_per_slot })
    | "replay" ->
        let* () = check_keys ctx [ "kind"; "at"; "lag_slots" ] fields in
        let* lag_slots = opt_int_field ctx fields "lag_slots" ~default:4 in
        if lag_slots < 1 then err (ctx ^ ".lag_slots") "must be positive"
        else Ok (Spec.Stale_replay { lag_slots })
    | "churn" ->
        let* () = check_keys ctx [ "kind"; "at"; "period_slots" ] fields in
        let* period_slots =
          opt_float_field ctx fields "period_slots" ~default:2.5
        in
        let* _ = positive (ctx ^ ".period_slots") "period" period_slots in
        Ok (Spec.Grace_churn { period_slots })
    | "collude" ->
        let* () = check_keys ctx [ "kind"; "at"; "colluders" ] fields in
        let* colluders = opt_int_field ctx fields "colluders" ~default:3 in
        if colluders < 1 then err (ctx ^ ".colluders") "must be positive"
        else Ok (Spec.Collusion { colluders })
    | other ->
        err (ctx ^ ".kind")
          (Printf.sprintf
             "unknown attack %S (one of: inflate, pulse, guess, replay, churn, \
              collude)"
             other)
  in
  Ok (k, at)

(* --- The document ------------------------------------------------------- *)

let allowed_top =
  [
    "version"; "name"; "seed"; "seeds"; "duration"; "topology"; "protocol";
    "defence"; "receivers"; "churn"; "traffic"; "attack";
  ]

let params_of_json ~ctx json =
  let* fields = as_obj ctx json in
  let* () = check_keys ctx allowed_top fields in
  let* v = int_field ctx fields "version" in
  let* () =
    if v <> version then
      err (ctx ^ ".version")
        (Printf.sprintf "unsupported schema version %d (this build reads %d)" v
           version)
    else Ok ()
  in
  let* name = field ctx fields "name" in
  let* name = as_string (ctx ^ ".name") name in
  let* () =
    if String.length name = 0 then err (ctx ^ ".name") "must be non-empty"
    else Ok ()
  in
  let* seeds =
    match (opt_field fields "seeds", opt_field fields "seed") with
    | Some _, Some _ ->
        err (ctx ^ ".seeds") "give either seed or seeds, not both"
    | Some (Json.List xs), None ->
        if xs = [] then err (ctx ^ ".seeds") "must be non-empty"
        else
          let rec ints i acc = function
            | [] -> Ok (List.rev acc)
            | x :: rest ->
                let* n = as_int (Printf.sprintf "%s.seeds[%d]" ctx i) x in
                ints (i + 1) (n :: acc) rest
          in
          ints 0 [] xs
    | Some _, None -> err (ctx ^ ".seeds") "expected a list of integers"
    | None, Some s ->
        let* s = as_int (ctx ^ ".seed") s in
        Ok [ s ]
    | None, None -> Ok [ Spec.default_workload.Spec.seed ]
  in
  let* duration = float_field ctx fields "duration" in
  let* _ = positive (ctx ^ ".duration") "duration" duration in
  let* topo_json = field ctx fields "topology" in
  let* topology = topology (ctx ^ ".topology") topo_json in
  let* protocol = field ctx fields "protocol" in
  let* protocol = as_string (ctx ^ ".protocol") protocol in
  let* protocol = protocol_of_string (ctx ^ ".protocol") protocol in
  let* defence = field ctx fields "defence" in
  let* defence = as_string (ctx ^ ".defence") defence in
  let* defence = defence_of_string (ctx ^ ".defence") defence in
  let* receivers = int_field ctx fields "receivers" in
  let* () =
    if receivers < 1 then err (ctx ^ ".receivers") "need at least one receiver"
    else Ok ()
  in
  let* churn =
    match opt_field fields "churn" with
    | None -> Ok Spec.No_churn
    | Some v -> churn (ctx ^ ".churn") v
  in
  let* traffic =
    match opt_field fields "traffic" with
    | None -> Ok []
    | Some (Json.List xs) ->
        let rec each i acc = function
          | [] -> Ok (List.rev acc)
          | x :: rest ->
              let* t = traffic_one (Printf.sprintf "%s.traffic[%d]" ctx i) x in
              each (i + 1) (t :: acc) rest
        in
        each 0 [] xs
    | Some _ -> err (ctx ^ ".traffic") "expected a list of traffic objects"
  in
  let* attack, attack_at =
    match opt_field fields "attack" with
    | None -> Ok (None, Spec.default_workload.Spec.attack_at)
    | Some v ->
        let* k, at = attack (ctx ^ ".attack") v in
        Ok (Some k, at)
  in
  let* () =
    if attack <> None && attack_at >= duration then
      err (ctx ^ ".attack.at") "attack starts after the run ends"
    else Ok ()
  in
  (* Capacity: the topology must seat the steady population plus any
     churn arrivals. *)
  let needed = Churn.hosts_needed ~spec:churn ~receivers in
  let cap = Topo_gen.capacity ~spec:topology ~hosts:needed in
  let* () =
    if needed > cap then
      err (ctx ^ ".receivers")
        (Printf.sprintf
           "%d receivers (plus churn arrivals: %d hosts) exceed the %s \
            topology's %d receiver hosts"
           receivers needed (Spec.topology_str topology) cap)
    else Ok ()
  in
  let params seed =
    {
      Spec.seed;
      duration;
      topology;
      protocol;
      defence;
      receivers;
      churn;
      traffic;
      attack;
      attack_at;
    }
  in
  Ok (name, List.map (fun s -> (s, params s)) seeds)

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> c
      | _ -> '-')
    name

let entries_of_json ~ctx json =
  let* name, seeded = params_of_json ~ctx json in
  let multi = List.length seeded > 1 in
  Ok
    (List.map
       (fun (seed, p) ->
         {
           Runner.name =
             (if multi then Printf.sprintf "%s-s%d" (sanitize name) seed
              else sanitize name);
           group = "workload";
           doc = Format.asprintf "%a" Spec.pp (Spec.Workload p);
           spec = Spec.Workload p;
         })
       seeded)

let load ~path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | contents -> (
      match Json.of_string contents with
      | Error msg -> Error (Printf.sprintf "%s: invalid JSON: %s" path msg)
      | Ok json -> entries_of_json ~ctx:path json)
