(** Deterministic, seed-driven topology generators over
    {!Mcc_net.Topology}.

    Each generator is a pure function of its parameters (and, for the
    random ISP graph, of the supplied PRNG): node ids, link creation
    order and therefore {!Mcc_net.Topology.dump} are reproducible byte
    for byte — the property the generator-determinism tests pin down.

    Shapes:
    - [Dumbbell_topo]: the paper's two-router dumbbell, [hosts]
      receiver hosts behind the right edge;
    - [Fat_tree k]: the canonical k-ary fat tree ((k/2)^2 cores, k pods
      of k/2 aggregation + k/2 edge routers, k/2 hosts per edge);
    - [Star_lans]: one core, [lans] edge routers, [hosts_per_lan] hosts
      each, sender directly on the core;
    - [Isp_random]: a random recursive tree over [routers] cores plus
      [extra_links] shortcuts, one edge router with [hosts_per_edge]
      hosts per core.

    Buffers are sized at two bandwidth-delay products (as in
    {!Mcc_core.Dumbbell}); with [ecn] every core link marks at half its
    buffer. *)

type built = {
  topo : Mcc_net.Topology.t;
  sender : Mcc_net.Node.t;  (** the multicast source host *)
  pool : Mcc_net.Node.t list;
      (** receiver hosts in deterministic (edge, then attach) order;
          workloads use a prefix of this pool *)
  edges : Mcc_net.Node.t list;
      (** receiver-side edge routers — the SIGMA attach points *)
}

val capacity : spec:Mcc_core.Spec.topology_spec -> hosts:int -> int
(** Size of [pool] the spec would generate ([hosts] is only read for
    the dumbbell, whose pool is sized on demand).  Lets the schema
    validate receiver counts without building anything. *)

val access_link : Mcc_net.Topology.t -> Mcc_net.Node.t -> Mcc_net.Node.t -> unit
(** Standard access link (10 Mbps / 10 ms, two-BDP buffer) from a
    router to a host; used by the traffic installer to attach dedicated
    cross-traffic sources with the same sizing as generated hosts. *)

val build :
  ?ecn:bool ->
  Mcc_engine.Sim.t ->
  prng:Mcc_util.Prng.t ->
  spec:Mcc_core.Spec.topology_spec ->
  hosts:int ->
  built
(** Builds the shape into a fresh topology on [sim].  [hosts] is the
    number of receiver hosts the workload will actually use; the
    dumbbell creates exactly that many, the generated shapes create
    their structural pool.
    @raise Invalid_argument on malformed shape parameters or when the
    shape provides fewer than [hosts] receiver hosts. *)
