module Sim = Mcc_engine.Sim
module Topology = Mcc_net.Topology
module Node = Mcc_net.Node
module Packet = Mcc_net.Packet
module Payload = Mcc_net.Payload
module Prng = Mcc_util.Prng
module Meter = Mcc_util.Meter
module Spec = Mcc_core.Spec
module Defaults = Mcc_core.Defaults
module On_off = Mcc_transport.On_off
module Tcp = Mcc_transport.Tcp
module Mux = Mcc_transport.Mux

type installed = { delivered : Meter.t list }

(* The host one hop behind [host]'s access link: where a dedicated
   cross-traffic source attaches so background flows share the core
   with the session without riding the multicast sender's own access
   link. *)
let access_router topo (host : Node.t) =
  match host.Node.links with
  | l :: _ -> Topology.node topo l.Mcc_net.Link.dst
  | [] -> invalid_arg "Traffic.access_router: host has no links"

let nth_cyclic xs i = List.nth xs (i mod List.length xs)

let install (built : Topo_gen.built) ~prng ~duration
    ~(specs : Spec.traffic_spec list) =
  if specs = [] then { delivered = [] }
  else begin
    let topo = built.Topo_gen.topo in
    let sim = Topology.sim topo in
    let src_router = access_router topo built.Topo_gen.sender in
    let web_meter = Meter.create () in
    let web_metered = Hashtbl.create 8 in
    (* Claim raw (CBR) unicast payloads on a destination host and feed
       the shared web meter; TCP and protocol payloads fall through to
       their own handlers. *)
    let meter_web_at (host : Node.t) =
      if not (Hashtbl.mem web_metered host.Node.id) then begin
        Hashtbl.replace web_metered host.Node.id ();
        Mux.add_handler (Mux.of_node host) (fun pkt ->
            match pkt.Packet.payload with
            | Payload.Raw ->
                Meter.record web_meter ~time:(Sim.now sim)
                  ~bytes:pkt.Packet.size;
                true
            | _ -> false)
      end
    in
    let tcp_meters = ref [] in
    let next_tcp_flow = ref 0 in
    let web_flows = ref 0 in
    List.iter
      (fun (spec : Spec.traffic_spec) ->
        match spec with
        | Spec.Web_mix { flows; rate_bps; mean_on; mean_off } ->
            for _ = 1 to flows do
              let i = !web_flows in
              incr web_flows;
              let src = Topology.add_node topo Node.Host in
              Topo_gen.access_link topo src_router src;
              let dst_host = nth_cyclic built.Topo_gen.pool i in
              meter_web_at dst_host;
              (* Per-flow on/off periods drawn once from the seed
                 stream: a fixed-period approximation of the web mix's
                 heavy-tailed think times, deterministic per seed. *)
              let on_period = Float.max 0.1 (Prng.exponential prng ~mean:mean_on) in
              let off_period =
                Float.max 0.1 (Prng.exponential prng ~mean:mean_off)
              in
              let at = Prng.float prng *. Float.min mean_off duration in
              ignore
                (On_off.start ~at ~until:duration topo ~src
                   ~dst:(Packet.Unicast dst_host.Node.id)
                   ~rate_bps:(rate_bps /. float_of_int flows)
                   ~size:Defaults.packet_size ~on_period ~off_period ())
            done
        | Spec.Tcp_flows { flows } ->
            for _ = 1 to flows do
              let i = !next_tcp_flow in
              incr next_tcp_flow;
              let src = Topology.add_node topo Node.Host in
              Topo_gen.access_link topo src_router src;
              let dst_host = nth_cyclic built.Topo_gen.pool i in
              let tcp = Tcp.start topo ~flow:i ~src ~dst:dst_host () in
              tcp_meters := Tcp.delivered_meter tcp :: !tcp_meters
            done)
      specs;
    let delivered =
      (if !web_flows > 0 then [ web_meter ] else []) @ List.rev !tcp_meters
    in
    { delivered }
  end
