(** The declarative workload file format: versioned JSON, validated
    strictly (unknown fields, out-of-range values and capacity
    violations are errors), with every diagnostic carrying its
    [file:field.path] so a broken file names the exact offender.

    Document shape (version 1):
    {v
    { "version": 1,
      "name": "fat-tree flash crowd",
      "seed": 43,                    // or "seeds": [43, 44, 45]
      "duration": 120,
      "topology": { "kind": "fat_tree", "k": 4, "core_rate_bps": 2e6 },
      "protocol": "flid",            // registry: flid|rlm|replicated|oversub
      "defence": "delta+sigma+ecn",  // plain|delta|delta+sigma|delta+sigma+ecn
      "receivers": 6,
      "churn":   { "kind": "flash_crowd", "at": 30,
                   "arrivals": 8, "leave_after": 40 },      // optional
      "traffic": [ { "kind": "web", "flows": 4, "rate_bps": 2e5,
                     "mean_on": 5, "mean_off": 5 },
                   { "kind": "tcp", "flows": 1 } ],          // optional
      "attack":  { "kind": "pulse", "at": 40,
                   "period_s": 10, "duty": 0.5 } }           // optional
    v}
    A "seeds" list expands to one run per seed, named
    [<name>-s<seed>]. *)

val version : int
(** The schema version this build reads (1). *)

val params_of_json :
  ctx:string ->
  Mcc_core.Json.t ->
  (string * (int * Mcc_core.Spec.workload_params) list, string) result
(** Validate one document.  [ctx] prefixes every error (callers pass
    the file path).  Returns the workload's name and one (seed, params)
    pair per requested seed. *)

val entries_of_json :
  ctx:string -> Mcc_core.Json.t -> (Mcc_core.Runner.entry list, string) result
(** {!params_of_json} wrapped as runnable batch entries (group
    "workload"). *)

val load : path:string -> (Mcc_core.Runner.entry list, string) result
(** Read, parse and validate a workload file. *)
