(** Background cross-traffic for workloads.

    [Web_mix] approximates web-like traffic: [flows] on-off CBR
    sources, each with fixed on/off periods drawn once per flow from
    exponentials with the spec's means (and a phase offset), splitting
    [rate_bps] between them.  [Tcp_flows] starts long-lived TCP Reno
    transfers.  Sources attach to dedicated hosts behind the multicast
    sender's access router; destinations cycle through the receiver
    pool, so the traffic crosses the same core the session uses. *)

type installed = {
  delivered : Mcc_util.Meter.t list;
      (** one shared meter for all web flows (delivered bytes at the
          destinations), plus one goodput meter per TCP flow *)
}

val install :
  Topo_gen.built ->
  prng:Mcc_util.Prng.t ->
  duration:float ->
  specs:Mcc_core.Spec.traffic_spec list ->
  installed
(** Installs every spec; call before routes are computed (the sources
    get their own hosts).  With an empty spec list, installs nothing. *)
