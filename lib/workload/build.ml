module Sim = Mcc_engine.Sim
module Topology = Mcc_net.Topology
module Node = Mcc_net.Node
module Link = Mcc_net.Link
module Prng = Mcc_util.Prng
module Meter = Mcc_util.Meter
module Spec = Mcc_core.Spec
module Experiments = Mcc_core.Experiments
module Defaults = Mcc_core.Defaults
module Scenario = Mcc_core.Scenario
module Router_agent = Mcc_sigma.Router_agent
module Flid = Mcc_mcast.Flid
module Rlm = Mcc_mcast.Rlm_like
module Rep = Mcc_mcast.Replicated_proto
module Oversub = Mcc_mcast.Oversub
module Strategy = Mcc_attack.Strategy

(* One receiver instance realised from a churn interval: its goodput
   meter plus the active window it should be judged over. *)
type instance = { meter : Meter.t; lo : float; hi : float }

let run (p : Spec.workload_params) : Experiments.workload_result =
  let ecn = p.Spec.defence = Spec.Delta_sigma_ecn in
  let sigma_enforced =
    match p.Spec.defence with
    | Spec.Delta_sigma | Spec.Delta_sigma_ecn -> true
    | Spec.Undefended | Spec.Delta_only -> false
  in
  let mode =
    match p.Spec.defence with
    | Spec.Undefended -> Flid.Plain
    | _ -> Flid.Robust
  in
  let receiver_mode =
    match p.Spec.defence with Spec.Delta_only -> Some Flid.Plain | _ -> None
  in
  let slot =
    match mode with
    | Flid.Plain -> Defaults.flid_dl_slot
    | Flid.Robust -> Defaults.flid_ds_slot
  in
  (* One master stream, split in a fixed order so every stochastic
     element owns an independent deterministic stream. *)
  let prng = Prng.create p.Spec.seed in
  let topo_prng = Prng.split prng in
  let churn_prng = Prng.split prng in
  let traffic_prng = Prng.split prng in
  let sim = Sim.create () in
  let hosts = Churn.hosts_needed ~spec:p.Spec.churn ~receivers:p.Spec.receivers in
  let built = Topo_gen.build ~ecn sim ~prng:topo_prng ~spec:p.Spec.topology ~hosts in
  let topo = built.Topo_gen.topo in
  (* SIGMA agents on every receiver-side edge router, each with its own
     scrubber stream — the per-edge equivalent of the dumbbell
     scenario's single agent. *)
  let agents =
    if sigma_enforced then
      List.map
        (fun edge ->
          let agent =
            Router_agent.attach
              ~config:
                {
                  Router_agent.default_config with
                  Router_agent.interface_keys = true;
                }
              topo edge
          in
          Router_agent.set_scrubber agent
            (Scenario.delta_transform agent (Prng.split prng));
          agent)
        built.Topo_gen.edges
    else []
  in
  let layering = Defaults.layering () in
  let id = 1 and base_group = 0x1000 in
  (* Protocol dispatch: the sender goes up immediately; [start] realises
     one receiver instance, [leave] is its orderly departure (protocols
     without an explicit leave decay via key expiry). *)
  let start, group_addrs =
    match p.Spec.protocol with
    | Spec.Flid_ds ->
        let config =
          Flid.make_config ~id ~base_group ~layering ~slot_duration:slot ~mode ()
        in
        let rconfig =
          match receiver_mode with
          | Some m -> { config with Flid.mode = m }
          | None -> config
        in
        ignore
          (Flid.sender_start topo ~node:built.Topo_gen.sender
             ~prng:(Prng.split prng) config);
        ( (fun ~at ~host ->
            let r =
              Flid.receiver_start ~at topo ~host ~prng:(Prng.split prng) rconfig
            in
            (Flid.receiver_meter r, fun () -> Flid.receiver_leave r)),
          List.init layering.Mcc_mcast.Layering.groups (fun g ->
              Flid.group_addr config (g + 1)) )
    | Spec.Rlm_threshold ->
        let config =
          Rlm.make_config ~id ~base_group ~layering ~slot_duration:slot ~mode ()
        in
        let rconfig =
          match receiver_mode with
          | Some m -> { config with Rlm.mode = m }
          | None -> config
        in
        ignore
          (Rlm.sender_start topo ~node:built.Topo_gen.sender
             ~prng:(Prng.split prng) config);
        ( (fun ~at ~host ->
            let r =
              Rlm.receiver_start ~at topo ~host ~prng:(Prng.split prng) rconfig
            in
            (Rlm.receiver_meter r, fun () -> Rlm.receiver_stop r)),
          List.init layering.Mcc_mcast.Layering.groups (fun g ->
              Rlm.group_addr config (g + 1)) )
    | Spec.Replicated ->
        let config =
          Rep.make_config ~id ~base_group ~layering ~slot_duration:slot ~mode ()
        in
        let rconfig =
          match receiver_mode with
          | Some m -> { config with Rep.mode = m }
          | None -> config
        in
        ignore
          (Rep.sender_start topo ~node:built.Topo_gen.sender
             ~prng:(Prng.split prng) config);
        ( (fun ~at ~host ->
            let r =
              Rep.receiver_start ~at topo ~host ~prng:(Prng.split prng) rconfig
            in
            (Rep.receiver_meter r, fun () -> Rep.receiver_stop r)),
          List.init layering.Mcc_mcast.Layering.groups (fun g ->
              Rep.group_addr config (g + 1)) )
    | Spec.Oversub ->
        let config =
          Oversub.make_config ~id ~base_group ~layering ~slot_duration:slot
            ~mode ()
        in
        let rconfig =
          match receiver_mode with
          | Some m ->
              {
                config with
                Oversub.flid = { config.Oversub.flid with Flid.mode = m };
              }
          | None -> config
        in
        ignore
          (Oversub.sender_start topo ~node:built.Topo_gen.sender
             ~prng:(Prng.split prng) config);
        ( (fun ~at ~host ->
            let r =
              Oversub.receiver_start ~at topo ~host ~prng:(Prng.split prng)
                rconfig
            in
            (Oversub.receiver_meter r, fun () -> Oversub.receiver_leave r)),
          List.init layering.Mcc_mcast.Layering.groups (fun g ->
              Oversub.group_addr config (g + 1)) )
  in
  (* Membership timeline: one fresh receiver instance per interval. *)
  let intervals =
    Churn.plan churn_prng ~spec:p.Spec.churn ~receivers:p.Spec.receivers
      ~duration:p.Spec.duration
  in
  let pool = Array.of_list built.Topo_gen.pool in
  let instances =
    List.map
      (fun { Churn.host; at; until } ->
        let meter, leave = start ~at ~host:pool.(host) in
        let hi =
          match until with
          | Some u when u < p.Spec.duration ->
              Sim.post sim ~at:u leave;
              u
          | _ -> p.Spec.duration
        in
        { meter; lo = at; hi })
      intervals
  in
  (* Background cross traffic. *)
  let traffic =
    Traffic.install built ~prng:traffic_prng ~duration:p.Spec.duration
      ~specs:p.Spec.traffic
  in
  (* The adversary, when the workload mounts one: a standalone bare
     attacker on its own host behind the first receiver-side edge, as
     in the matrix cells for member-less protocols. *)
  let attacker_meter =
    match p.Spec.attack with
    | None -> None
    | Some kind ->
        let strat = Strategy.of_kind kind in
        let attacker_prng = Prng.create ((p.Spec.seed * 7919) + 13) in
        let host = Topology.add_node topo Node.Host in
        Topo_gen.access_link topo (List.hd built.Topo_gen.edges) host;
        let inst =
          strat.Strategy.instantiate ~attack_at:p.Spec.attack_at
            ~slot_duration:slot ~prng:attacker_prng
        in
        let target =
          {
            Strategy.tgt_groups = group_addrs;
            tgt_slot_duration = slot;
            tgt_sigma = sigma_enforced;
          }
        in
        let bare =
          Strategy.launch_bare ~at:p.Spec.attack_at topo ~host
            ~prng:attacker_prng ~target ~kind inst
        in
        Some (Strategy.bare_meter bare)
  in
  Topology.compute_routes topo;
  Sim.run_until sim p.Spec.duration;
  (* Aggregation. *)
  let goodputs =
    List.filter_map
      (fun i ->
        if i.hi -. i.lo <= 0. then None
        else Some (Meter.mean_kbps i.meter ~lo:i.lo ~hi:i.hi))
      instances
  in
  let mean xs =
    match xs with
    | [] -> 0.
    | _ -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)
  in
  let fold_min = List.fold_left Float.min infinity in
  let fold_max = List.fold_left Float.max neg_infinity in
  let drops, marks =
    List.fold_left
      (fun (d, m) (l : Link.t) -> (d + l.Link.drops, m + l.Link.marks))
      (0, 0) (Topology.links topo)
  in
  let keys_rejected, lockouts =
    List.fold_left
      (fun (k, l) agent ->
        let s = Router_agent.stats agent in
        (k + s.Router_agent.keys_rejected, l + s.Router_agent.lockouts))
      (0, 0) agents
  in
  {
    Experiments.w_nodes = List.length (Topology.nodes topo);
    w_links = List.length (Topology.links topo);
    w_receivers = List.length instances;
    w_mean_goodput_kbps = mean goodputs;
    w_min_goodput_kbps = (if goodputs = [] then 0. else fold_min goodputs);
    w_max_goodput_kbps = (if goodputs = [] then 0. else fold_max goodputs);
    w_cross_kbps =
      List.fold_left
        (fun acc m -> acc +. Meter.mean_kbps m ~lo:0. ~hi:p.Spec.duration)
        0. traffic.Traffic.delivered;
    w_attacker_kbps =
      (match attacker_meter with
      | None -> 0.
      | Some m -> Meter.mean_kbps m ~lo:p.Spec.attack_at ~hi:p.Spec.duration);
    w_drops = drops;
    w_marks = marks;
    w_keys_rejected = keys_rejected;
    w_lockouts = lockouts;
  }

(* Register as the Spec.Workload implementation: linking this module
   makes workload specs runnable through the ordinary Experiments/
   Runner machinery (and therefore through every sink, the matrix-style
   parallel runner, and the ledger). *)
let () = Experiments.set_workload_impl run
