(** Forward error correction for SIGMA's special packets.

    The paper requires only that key distribution to edge routers
    "overcomes 50% packet loss" with a measured bit-expansion factor z
    of about 2.  Two rate-1/2 schemes are provided:

    - [Repetition n]: every chunk of tuples is sent [n] times (z = n);
      a chunk is lost only if all copies are lost.
    - [Xor_parity]: k data chunks plus one XOR parity chunk (z =
      (k+1)/k); any k of the k+1 packets reconstruct the slot.  The
      simulator models the code's MDS property rather than actual bit
      XOR: the parity packet carries the full tuple list for recovery
      while its wire size is that of one chunk.

    Decoding is per (session, slot): feed every received special packet
    to the decoder and read the tuple list once it completes. *)

type scheme = Repetition of int | Xor_parity

type coded = {
  chunk : int;  (** 0-based; [total_chunks] denotes the parity chunk *)
  total_chunks : int;
  copy : int;
  tuples : Tuple.t list;  (** decodable from this packet alone *)
  recovery : Tuple.t list;  (** full slot list, parity packets only *)
  wire_bytes : int;
}

val encode :
  width:int -> scheme -> max_per_packet:int -> Tuple.t list -> coded list
(** Splits tuples into chunks of at most [max_per_packet] and applies
    the scheme.  @raise Invalid_argument on a non-positive chunk size,
    [Repetition n] with [n < 1], or an empty tuple list. *)

val expansion : scheme -> total_chunks:int -> float
(** The bit-expansion factor z the scheme pays. *)

type decoder

val decoder_create : unit -> decoder

val feed : decoder -> coded -> Tuple.t list option
(** Returns the slot's full tuple list the first time decoding
    completes, [None] before then and on every packet after
    completion. *)

val complete : decoder -> bool

val duplicates : decoder -> int
(** Packets fed that added no information — repeat copies, repeat
    chunks, arrivals after completion: the redundancy the scheme paid
    for actually arriving.  Also aggregated into the domain metric
    "sigma.fec.duplicates"; {!encode} likewise counts coded packets into
    "sigma.fec.chunks" and reports the scheme's expansion factor as the
    "sigma.fec.expansion" gauge. *)
