module Sim = Mcc_engine.Sim
module Node = Mcc_net.Node
module Packet = Mcc_net.Packet
module Topology = Mcc_net.Topology
module Multicast = Mcc_net.Multicast
module Key = Mcc_delta.Key

type pending = {
  slot : int;
  mutable pairs : (int * Key.t) list;
  mutable tries : int;
  mutable timer : Sim.handle option;
}

type t = {
  topo : Topology.t;
  host : Node.t;
  router : Node.t;
  width : int;
  retransmit_timeout : float;
  max_retransmits : int;
  acked : (int, (int * Key.t, unit) Hashtbl.t) Hashtbl.t;  (* per slot *)
  pendings : (int, pending) Hashtbl.t;  (* per slot *)
  mutable sent : int;
}

let router t = t.router

let acked_tbl t slot =
  match Hashtbl.find_opt t.acked slot with
  | Some tbl -> tbl
  | None ->
      let tbl = Hashtbl.create 8 in
      Hashtbl.replace t.acked slot tbl;
      (* Old slots never come back; cap growth. *)
      if Hashtbl.length t.acked > 64 then begin
        let oldest =
          Hashtbl.fold (fun s _ acc -> min s acc) t.acked max_int
        in
        Hashtbl.remove t.acked oldest
      end;
      tbl

let acked_pairs t ~slot =
  match Hashtbl.find_opt t.acked slot with
  | None -> []
  | Some tbl -> Hashtbl.fold (fun pair () acc -> pair :: acc) tbl []

let note_ack t ~slot ~pairs =
  let tbl = acked_tbl t slot in
  List.iter (fun pair -> Hashtbl.replace tbl pair ()) pairs;
  match Hashtbl.find_opt t.pendings slot with
  | None -> ()
  | Some pending ->
      pending.pairs <-
        List.filter (fun pair -> not (Hashtbl.mem tbl pair)) pending.pairs;
      if pending.pairs = [] then begin
        (match pending.timer with Some h -> Sim.cancel h | None -> ());
        Hashtbl.remove t.pendings slot
      end

let send_control t payload ~size =
  t.sent <- t.sent + 1;
  let pkt =
    Packet.make ~src:t.host.Node.id ~dst:(Packet.Unicast t.router.Node.id)
      ~size payload
  in
  (* Control packets originate at the receiver: session = the sending
     host, level 0 — distinguishable from data lineages, whose session
     is the FLID session id and level >= 1. *)
  Mcc_obs.Lineage.set_origin pkt.Packet.lineage ~session:t.host.Node.id
    ~level:0
    ~time:(Sim.now (Topology.sim t.topo));
  Node.originate t.host pkt

let rec transmit_pending t pending =
  if pending.pairs <> [] && pending.tries <= t.max_retransmits then begin
    pending.tries <- pending.tries + 1;
    send_control t
      (Messages.Subscribe
         { receiver = t.host.Node.id; slot = pending.slot; pairs = pending.pairs })
      ~size:(Messages.subscribe_bytes ~width:t.width pending.pairs);
    pending.timer <-
      Some
        (Sim.schedule_after (Topology.sim t.topo) ~delay:t.retransmit_timeout
           (fun () -> transmit_pending t pending))
  end
  else Hashtbl.remove t.pendings pending.slot

let subscribe t ~slot ~pairs =
  let tbl = acked_tbl t slot in
  let fresh = List.filter (fun pair -> not (Hashtbl.mem tbl pair)) pairs in
  if fresh <> [] then begin
    match Hashtbl.find_opt t.pendings slot with
    | Some pending ->
        pending.pairs <-
          pending.pairs
          @ List.filter (fun p -> not (List.mem p pending.pairs)) fresh
    | None ->
        let pending = { slot; pairs = fresh; tries = 0; timer = None } in
        Hashtbl.replace t.pendings slot pending;
        transmit_pending t pending
  end

let session_join t ~group =
  send_control t
    (Messages.Session_join { receiver = t.host.Node.id; group })
    ~size:Messages.session_join_bytes

let unsubscribe t ~groups =
  send_control t
    (Messages.Unsubscribe { receiver = t.host.Node.id; groups })
    ~size:(Messages.unsubscribe_bytes groups)

let messages_sent t = t.sent

let create ?(width = Key.default_width) ?(retransmit_timeout = 0.08)
    ?(max_retransmits = 5) topo ~host =
  let router =
    match Multicast.router_of topo host with
    | Some r, _ -> r
    | None, _ -> invalid_arg "Client.create: host has no edge router"
  in
  let t =
    {
      topo;
      host;
      router;
      width;
      retransmit_timeout;
      max_retransmits;
      acked = Hashtbl.create 16;
      pendings = Hashtbl.create 8;
      sent = 0;
    }
  in
  (* Snoop every ack crossing this interface, whether addressed to this
     receiver or a neighbor on the same LAN: both feed suppression. *)
  let snoop pkt =
    match pkt.Packet.payload with
    | Messages.Sub_ack { slot; pairs; _ } -> note_ack t ~slot ~pairs
    | _ -> ()
  in
  let previous = t.host.Node.promiscuous in
  t.host.Node.promiscuous <-
    Some
      (fun pkt ->
        (match previous with Some f -> f pkt | None -> ());
        snoop pkt);
  t
