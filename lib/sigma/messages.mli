(** SIGMA control messages exchanged between receivers and their edge
    router over the local interface (paper Figure 6), plus the special
    packets that carry address-key tuples from the sender to edge
    routers.

    Every constructor is a {!Mcc_net.Payload.t} extension; wire sizes
    include a 28-byte network/transport header. *)

type Mcc_net.Payload.t +=
  | Subscribe of {
      receiver : int;  (** requesting host node id *)
      slot : int;
      pairs : (int * Mcc_delta.Key.t) list;  (** (group address, key) *)
    }
  | Sub_ack of {
      receiver : int;
      slot : int;
      pairs : (int * Mcc_delta.Key.t) list;  (** the accepted pairs *)
    }
  | Unsubscribe of { receiver : int; groups : int list }
  | Session_join of { receiver : int; group : int }
      (** [group] must be the session's minimal group *)
  | Special of {
      session : int;
      slot : int;  (** slot the enclosed keys guard *)
      slot_duration : float;
      chunk : int;
      total_chunks : int;
      copy : int;  (** FEC copy index, 0-based *)
      tuples : Tuple.t list;
    }

val header_bytes : int
(** 28: IP + UDP-style header accounted on every control packet. *)

val subscribe_bytes : width:int -> (int * Mcc_delta.Key.t) list -> int
val ack_bytes : width:int -> (int * Mcc_delta.Key.t) list -> int
val unsubscribe_bytes : int list -> int
val session_join_bytes : int
val special_bytes : width:int -> Tuple.t list -> int
