module Sim = Mcc_engine.Sim
module Node = Mcc_net.Node
module Packet = Mcc_net.Packet

type stats = {
  packets : int;
  payload_bits : int;
  header_bits : int;
  expansion : float;
}

let distribute ?(scheme = Fec.Repetition 2) ?(max_per_packet = 16) topo ~sender
    ~session ~via_group ~width ~slot ~slot_duration ~tuples () =
  let sim = Mcc_net.Topology.sim topo in
  let coded = Fec.encode ~width scheme ~max_per_packet tuples in
  (* Interleave copies: all chunks' copy 0, then copy 1, ... *)
  let sorted =
    List.stable_sort
      (fun (a : Fec.coded) b ->
        match Int.compare a.copy b.copy with
        | 0 -> Int.compare a.chunk b.chunk
        | c -> c)
      coded
  in
  let n = List.length sorted in
  let spacing = slot_duration /. 2. /. float_of_int (max 1 n) in
  List.iteri
    (fun i (c : Fec.coded) ->
      let payload =
        Messages.Special
          {
            session;
            slot;
            slot_duration;
            chunk = c.Fec.chunk;
            total_chunks = c.Fec.total_chunks;
            copy = c.Fec.copy;
            tuples = (if c.Fec.chunk = c.Fec.total_chunks then c.Fec.recovery
                      else c.Fec.tuples);
          }
      in
      let pkt =
        Packet.make ~router_alert:true ~src:sender.Node.id
          ~dst:(Packet.Multicast via_group) ~size:c.Fec.wire_bytes payload
      in
      Sim.post_after sim ~delay:(float_of_int i *. spacing) (fun () ->
             Node.originate sender pkt))
    sorted;
  let total_chunks =
    match coded with [] -> 0 | (c : Fec.coded) :: _ -> c.Fec.total_chunks
  in
  let header_bits = n * Messages.header_bytes * 8 in
  let payload_bits =
    List.fold_left (fun acc (c : Fec.coded) -> acc + (8 * c.Fec.wire_bytes)) 0 coded
    - header_bits
  in
  {
    packets = n;
    payload_bits;
    header_bits;
    expansion = Fec.expansion scheme ~total_chunks;
  }
