type t = {
  group : int;
  slot : int;
  keys : Mcc_delta.Key.t list;
  minimal : bool;
}

let make ~group ~slot ~keys ~minimal = { group; slot; keys; minimal }

let wire_bytes ~width t =
  4 + 1 + (List.length t.keys * Mcc_delta.Key.field_bytes ~width)
