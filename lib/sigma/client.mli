(** Receiver-side SIGMA endpoint.

    Sends session-join / subscribe / unsubscribe messages to the local
    edge router, retransmits subscriptions until acknowledged, and
    suppresses subscriptions whose address-key pairs were already
    acknowledged to another receiver on the same interface (observed
    through the host's promiscuous tap) — paper Section 3.2.2. *)

type t

val create :
  ?width:int ->
  ?retransmit_timeout:float ->
  ?max_retransmits:int ->
  Mcc_net.Topology.t ->
  host:Mcc_net.Node.t ->
  t
(** Locates the host's edge router via the topology.
    @raise Invalid_argument if the host has no router neighbor. *)

val router : t -> Mcc_net.Node.t

val session_join : t -> group:int -> unit

val subscribe : t -> slot:int -> pairs:(int * Mcc_delta.Key.t) list -> unit
(** Pairs already acknowledged on this interface (to any receiver) are
    filtered out; if every pair is covered, nothing is sent. *)

val unsubscribe : t -> groups:int list -> unit

val messages_sent : t -> int
(** Control packets transmitted, retransmissions included. *)

val acked_pairs : t -> slot:int -> (int * Mcc_delta.Key.t) list
(** Pairs known (sent or snooped) to be acknowledged for [slot]. *)
