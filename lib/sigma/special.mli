(** Sender-side distribution of address-key tuples to edge routers
    (paper Section 3.2.1).

    Tuples for the slot guarded two slots ahead are FEC-encoded and
    transmitted as router-alert multicast packets down the session's
    minimal-group tree: every on-tree edge router intercepts them, and
    they are never forwarded onto host-facing interfaces.  Packets are
    spaced over the first half of the slot, repetition copies
    interleaved so correlated drops hit distinct chunks. *)

type stats = {
  packets : int;
  payload_bits : int;  (** tuple + slot-number bits, after FEC expansion *)
  header_bits : int;  (** h: header bits spent this slot *)
  expansion : float;  (** z of the scheme used *)
}

val distribute :
  ?scheme:Fec.scheme ->
  ?max_per_packet:int ->
  Mcc_net.Topology.t ->
  sender:Mcc_net.Node.t ->
  session:int ->
  via_group:int ->
  width:int ->
  slot:int ->
  slot_duration:float ->
  tuples:Tuple.t list ->
  unit ->
  stats
(** Default scheme is [Repetition 2] (the paper's z of about 2) with at
    most 16 tuples per packet. *)
