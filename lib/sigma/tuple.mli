(** Address-key tuples: the unit of key distribution from sender to edge
    routers (paper Section 3.2.1).  A tuple binds a group address to the
    set of keys that open the group during one time slot. *)

type t = {
  group : int;  (** multicast group address *)
  slot : int;  (** the guarded time slot *)
  keys : Mcc_delta.Key.t list;  (** top, decrease and (when authorized)
                                    increase keys *)
  minimal : bool;
      (** marks the session's minimal group, which SIGMA admits new
          receivers to without a key (session-join) *)
}

val make :
  group:int -> slot:int -> keys:Mcc_delta.Key.t list -> minimal:bool -> t

val wire_bytes : width:int -> t -> int
(** 32-bit address + flags byte + one [width]-bit field per key. *)
