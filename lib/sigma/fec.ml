type scheme = Repetition of int | Xor_parity

type coded = {
  chunk : int;
  total_chunks : int;
  copy : int;
  tuples : Tuple.t list;
  recovery : Tuple.t list;
  wire_bytes : int;
}

let chunked max_per_packet tuples =
  let rec split acc current count = function
    | [] -> List.rev (if current = [] then acc else List.rev current :: acc)
    | t :: rest ->
        if count = max_per_packet then
          split (List.rev current :: acc) [ t ] 1 rest
        else split acc (t :: current) (count + 1) rest
  in
  split [] [] 0 tuples

let expansion scheme ~total_chunks =
  match scheme with
  | Repetition n -> float_of_int n
  | Xor_parity ->
      let k = float_of_int (max 1 total_chunks) in
      (k +. 1.) /. k

let encode ~width scheme ~max_per_packet tuples =
  if max_per_packet <= 0 then invalid_arg "Fec.encode: max_per_packet";
  if tuples = [] then invalid_arg "Fec.encode: no tuples";
  let chunks = chunked max_per_packet tuples in
  let k = List.length chunks in
  Mcc_obs.Metrics.set_gauge "sigma.fec.expansion"
    (expansion scheme ~total_chunks:k);
  let coded =
    match scheme with
  | Repetition n ->
      if n < 1 then invalid_arg "Fec.encode: Repetition < 1";
      List.concat
        (List.mapi
           (fun i chunk ->
             List.init n (fun copy ->
                 {
                   chunk = i;
                   total_chunks = k;
                   copy;
                   tuples = chunk;
                   recovery = [];
                   wire_bytes = Messages.special_bytes ~width chunk;
                 }))
           chunks)
  | Xor_parity ->
      let data =
        List.mapi
          (fun i chunk ->
            {
              chunk = i;
              total_chunks = k;
              copy = 0;
              tuples = chunk;
              recovery = [];
              wire_bytes = Messages.special_bytes ~width chunk;
            })
          chunks
      in
      let widest =
        List.fold_left
          (fun acc chunk -> max acc (Messages.special_bytes ~width chunk))
          0 chunks
      in
      (* The parity packet is the XOR of the data chunks: one chunk's
         wire size, and (by the MDS property we model) enough to recover
         any single missing chunk. *)
      data
      @ [
          {
            chunk = k;
            total_chunks = k;
            copy = 0;
            tuples = [];
            recovery = tuples;
            wire_bytes = widest;
          };
        ]
  in
  Mcc_obs.Metrics.tick "sigma.fec.chunks" ~by:(List.length coded);
  coded

type decoder = {
  seen : (int, Tuple.t list) Hashtbl.t;  (* data chunk -> tuples *)
  mutable parity : Tuple.t list option;
  mutable total : int option;
  mutable done_ : bool;
  mutable dups : int;
}

let decoder_create () =
  { seen = Hashtbl.create 8; parity = None; total = None; done_ = false;
    dups = 0 }

let duplicates d = d.dups

(* A packet that adds no information — repeat copy, repeat chunk, or any
   arrival after completion — is a suppressed duplicate: exactly the
   redundancy the FEC scheme paid for. *)
let note_duplicate d =
  d.dups <- d.dups + 1;
  Mcc_obs.Metrics.tick "sigma.fec.duplicates"

let complete d = d.done_

let try_finish d =
  match d.total with
  | None -> None
  | Some k ->
      let have = Hashtbl.length d.seen in
      if have = k then begin
        d.done_ <- true;
        let out = ref [] in
        for i = k - 1 downto 0 do
          match Hashtbl.find_opt d.seen i with
          | Some ts -> out := ts @ !out
          | None -> ()
        done;
        Some !out
      end
      else if have = k - 1 && d.parity <> None then begin
        d.done_ <- true;
        d.parity
      end
      else None

let feed d coded =
  if d.done_ then begin
    note_duplicate d;
    None
  end
  else begin
    d.total <- Some coded.total_chunks;
    if coded.chunk = coded.total_chunks then begin
      if d.parity <> None then note_duplicate d;
      d.parity <- Some coded.recovery
    end
    else if Hashtbl.mem d.seen coded.chunk then note_duplicate d
    else Hashtbl.replace d.seen coded.chunk coded.tuples;
    try_finish d
  end
