(** SIGMA edge-router agent: the protocol-independent enforcement point
    (paper Section 3.2).

    The agent intercepts special packets, decodes the per-slot
    address-key tuples, and guards every host-facing interface: group
    traffic is forwarded only while the interface holds a grant — a
    validated key for the current slot, or a grace window.  Grace
    windows cover the two-complete-slot gaps the paper identifies: after
    a keyed upgrade to a new group, and after a session-join to the
    minimal group (which needs no key but is locked out for a slot if no
    valid key follows).

    The agent stores keys per (group address, slot) and estimates slot
    wall-clock boundaries from special-packet arrival (tuples for slot s
    arrive during slot s-2, paper Figure 2), so it needs no
    protocol-specific code — Requirement 3. *)

type config = {
  width : int;  (** key width in bits *)
  upgrade_grace_slots : float;
      (** unconditional forwarding after a keyed graft, in slots
          (paper: 2 complete slots) *)
  join_grace_slots : float;
      (** unconditional forwarding after a session-join *)
  lockout_slots : float;
      (** forwarding pause when a session-join expires keyless
          (paper: at least one slot) *)
  cleanup_period : float;  (** seconds between expiry sweeps *)
  interface_keys : bool;
      (** collusion resistance (paper Section 4.2): the router pads
          every forwarded component per interface, so a key lifted from
          a receiver on another interface no longer validates.  The
          padding itself is performed by the protocol integration (see
          {!note_pad}, {!decrease_pad}); validation then accepts a key
          if some candidate — corrected by the interface's cumulative
          component pad for top or increase keys, or by its decrease
          pad — matches an upper key from the sender.
          Assumes consecutively addressed session groups, trading
          generality for collusion resistance exactly as the paper
          notes. *)
}

val default_config : config

type t

val attach : ?config:config -> Mcc_net.Topology.t -> Mcc_net.Node.t -> t
(** Installs intercept, filter and forwarding hooks on an edge router.
    @raise Invalid_argument if the node is not an [Edge_router]. *)

val set_scrubber : t -> (Mcc_net.Link.t -> Mcc_net.Packet.t -> unit) -> unit
(** Component transform, called per outgoing copy with its interface
    link: on every ECN-marked copy (scrub, paper Section 3.1.2), and on
    every copy when [interface_keys] is enabled (per-interface padding,
    Section 4.2). *)

val interface_keys_enabled : t -> bool

val note_pad :
  t -> link_id:int -> group:int -> guarded_slot:int -> pad:Mcc_delta.Key.t ->
  unit
(** Record that a forwarded component of [group] (whose components build
    the keys of [guarded_slot]) was XOR-padded with [pad] on the given
    interface.  The protocol integration calls this from the node's
    forwarding hook as it rewrites each copy. *)

val decrease_pad :
  t ->
  link_id:int ->
  group:int ->
  guarded_slot:int ->
  fresh:(unit -> Mcc_delta.Key.t) ->
  Mcc_delta.Key.t
(** The stable pad applied to every forwarded copy of [group]'s decrease
    key for [guarded_slot] on the given interface, created with [fresh]
    on first use.  Decrease keys are per-slot constants, so one pad per
    (interface, group, slot) keeps the receiver's view consistent while
    making the key interface-specific. *)

val iface_active : t -> group:int -> toward:int -> bool
(** Is traffic for [group] currently forwarded toward node [toward]? *)

val guess_count : t -> group:int -> slot:int -> int
(** Distinct invalid keys submitted for (group, slot): the paper's
    indicator of a key-guessing attack. *)

val total_guesses : t -> int
(** Sum of {!guess_count} over every (group, slot).  Honest receivers
    contribute only when the router's keystore has gaps (lost special
    packets), which makes this a sensitive FEC-quality metric. *)

(** One receiver's contiguous run of rejected keys: opened by the first
    Subscribe carrying an invalid (group, key) pair, extended by every
    further rejection, closed ([kf_ended = Some t]) by the receiver's
    next fully valid Subscribe — or left open if it never recovers.
    The boundaries are also emitted as Warn-level "key_failure_start" /
    "key_failure_end" trace events on "sigma.router", the raw material
    of the [mcc report] attack timeline. *)
type key_failure = {
  kf_receiver : int;
  kf_first : float;  (** sim time of the first rejection *)
  kf_last : float;  (** sim time of the latest rejection *)
  kf_rejects : int;  (** total rejected pairs in the span *)
  kf_ended : float option;
}

val failure_audit : t -> key_failure list
(** Every key-failure span seen so far, closed and still-open, ordered
    by start time. *)

(** Lifetime activity of one agent, in one read.  The same quantities
    are published continuously to the domain's metrics registry under
    "sigma.*" names (subscriptions, keys_accepted, keys_rejected, acks,
    upgrade_graces, grace_admissions, suppressed_duplicates,
    unsubscribes, lockouts, specials, guesses, plus the
    "sigma.subscribe_pairs" histogram), where they aggregate across all
    agents of the domain's current run. *)
type stats = {
  subscriptions : int;  (** Subscribe messages processed *)
  keys_accepted : int;  (** (group, key) pairs that validated *)
  keys_rejected : int;  (** pairs that failed validation *)
  acks : int;  (** Sub_ack messages sent *)
  upgrade_graces : int;  (** grace windows opened by keyed activation *)
  grace_admissions : int;  (** keyless session-join admissions *)
  suppressed_duplicates : int;
      (** redundant arrivals absorbed without effect: session-joins for
          already-active interfaces plus FEC packets that added no
          information (repeat copies/chunks, post-completion) *)
  unsubscribes : int;  (** groups explicitly released by receivers *)
  lockouts : int;  (** minimal-group pauses after keyless expiry *)
  special_packets : int;  (** special packets intercepted *)
  distinct_guesses : int;  (** = {!total_guesses} at the time of the call *)
}

val stats : t -> stats

val known_groups : t -> int list
(** Groups the agent has received tuples for. *)

(** The three receiver messages (paper Figure 6) arrive as unicast
    packets addressed to the router and are handled internally; these
    entry points are exposed for tests. *)

val handle_subscribe :
  ?lineage:Mcc_obs.Lineage.t ->
  t ->
  receiver:int ->
  slot:int ->
  pairs:(int * Mcc_delta.Key.t) list ->
  unit
(** [?lineage] is the subscribe packet's causal record: the agent
    stamps a "sigma.subscribe" hop, preserves the whole chain as a
    "key_reject" case when any key is denied (first rejected
    [(group, key)] pair in the attrs, key rendered [0x%04x]), and
    retires it.  Omitted by direct test callers. *)

val handle_unsubscribe : t -> receiver:int -> groups:int list -> unit
val handle_session_join : t -> receiver:int -> group:int -> unit
