module Sim = Mcc_engine.Sim
module Node = Mcc_net.Node
module Link = Mcc_net.Link
module Packet = Mcc_net.Packet
module Topology = Mcc_net.Topology
module Multicast = Mcc_net.Multicast
module Key = Mcc_delta.Key

module Metrics = Mcc_obs.Metrics
module Tracer = Mcc_obs.Tracer
module Timeseries = Mcc_obs.Timeseries
module Json = Mcc_obs.Json
module Prof = Mcc_obs.Prof
module Lineage = Mcc_obs.Lineage

let log_src = Logs.Src.create "mcc.sigma" ~doc:"SIGMA edge-router agent"

module Log = (val Logs.src_log log_src)

type config = {
  width : int;
  upgrade_grace_slots : float;
  join_grace_slots : float;
  lockout_slots : float;
  cleanup_period : float;
  interface_keys : bool;
}

let default_config =
  {
    width = Key.default_width;
    upgrade_grace_slots = 2.0;
    join_grace_slots = 3.0;
    lockout_slots = 1.0;
    cleanup_period = 0.05;
    interface_keys = false;
  }

type slot_entry = {
  keys : Key.t list;
  est_start : float;  (** estimated wall-clock start of the guarded slot *)
  duration : float;
}

type group_info = {
  mutable minimal : bool;
  mutable latest_duration : float;
  mutable session_minimal : int option;
      (** address of this group's session's minimal group, learnt from
          the special-packet batches *)
  slots : (int, slot_entry) Hashtbl.t;
}

type grant = {
  mutable granted_until : float;
  mutable grace_until : float;
  mutable lockout_until : float;
  mutable by_join : bool;  (** grace came from a keyless session-join *)
  mutable grafted : bool;
  mutable join_strikes : int;
      (** keyless admissions that expired (or left) without the
          interface ever validating a key; doubles the next lockout, so
          join/leave cycling through the grace decays geometrically
          instead of settling at a duty cycle *)
}

type iface = {
  link : Link.t;  (** router -> host/LAN direction *)
  grants : (int, grant) Hashtbl.t;
}

type stats = {
  subscriptions : int;
  keys_accepted : int;
  keys_rejected : int;
  acks : int;
  upgrade_graces : int;
  grace_admissions : int;
  suppressed_duplicates : int;
  unsubscribes : int;
  lockouts : int;
  special_packets : int;
  distinct_guesses : int;
}

(* Running tallies behind {!stats}; each bump also feeds the domain's
   "sigma.*" metrics, whose handles live alongside. *)
type tallies = {
  mutable t_subscriptions : int;
  mutable t_keys_accepted : int;
  mutable t_keys_rejected : int;
  mutable t_acks : int;
  mutable t_upgrade_graces : int;
  mutable t_grace_admissions : int;
  mutable t_dup_joins : int;
  mutable t_unsubscribes : int;
  mutable t_lockouts : int;
  mutable t_specials : int;
  m_subscriptions : Metrics.counter;
  m_keys_accepted : Metrics.counter;
  m_keys_rejected : Metrics.counter;
  m_acks : Metrics.counter;
  m_upgrade_graces : Metrics.counter;
  m_grace_admissions : Metrics.counter;
  m_suppressed : Metrics.counter;
  m_unsubscribes : Metrics.counter;
  m_lockouts : Metrics.counter;
  m_specials : Metrics.counter;
  m_guesses : Metrics.counter;
  h_subscribe_pairs : Metrics.histogram;
}

let tallies_create () =
  {
    t_subscriptions = 0;
    t_keys_accepted = 0;
    t_keys_rejected = 0;
    t_acks = 0;
    t_upgrade_graces = 0;
    t_grace_admissions = 0;
    t_dup_joins = 0;
    t_unsubscribes = 0;
    t_lockouts = 0;
    t_specials = 0;
    m_subscriptions = Metrics.counter "sigma.subscriptions";
    m_keys_accepted = Metrics.counter "sigma.keys_accepted";
    m_keys_rejected = Metrics.counter "sigma.keys_rejected";
    m_acks = Metrics.counter "sigma.acks";
    m_upgrade_graces = Metrics.counter "sigma.upgrade_graces";
    m_grace_admissions = Metrics.counter "sigma.grace_admissions";
    m_suppressed = Metrics.counter "sigma.suppressed_duplicates";
    m_unsubscribes = Metrics.counter "sigma.unsubscribes";
    m_lockouts = Metrics.counter "sigma.lockouts";
    m_specials = Metrics.counter "sigma.specials";
    m_guesses = Metrics.counter "sigma.guesses";
    h_subscribe_pairs =
      Metrics.histogram "sigma.subscribe_pairs"
        ~bounds:(Metrics.exponential_bounds ~base:1. ~count:5);
  }

(* One receiver's run of rejected keys: opened at the first invalid
   (group, key) pair, extended by every further rejection, closed by the
   next fully valid Subscribe.  The span boundaries are also emitted as
   Warn-level "key_failure_start"/"key_failure_end" trace events, which
   is what [mcc report] reads back as the attack timeline. *)
type failure_span = {
  f_receiver : int;
  f_first : float;
  mutable f_last : float;
  mutable f_rejects : int;
  mutable f_ended : float option;
}

type key_failure = {
  kf_receiver : int;
  kf_first : float;
  kf_last : float;
  kf_rejects : int;
  kf_ended : float option;
}

type t = {
  topo : Topology.t;
  node : Node.t;
  config : config;
  groups : (int, group_info) Hashtbl.t;
  ifaces : (int, iface) Hashtbl.t;  (* keyed by link id *)
  decoders : (int * int, Fec.decoder) Hashtbl.t;  (* (session, slot) *)
  guesses : (int * int, (Key.t, unit) Hashtbl.t) Hashtbl.t;
  sessions : (int, int list ref) Hashtbl.t;
      (* minimal-group address -> all group addresses of the session *)
  control_held : (int, unit) Hashtbl.t;
      (* minimal groups the router itself is grafted to, keeping the
         special-packet channel alive while receivers hold only higher
         groups *)
  pads : (int * int * int, Key.t) Hashtbl.t;
      (* (link id, group, guarded slot) -> XOR of the pads applied to
         that interface's forwarded components: the delta between the
         sender's upper keys and the interface-specific lower keys
         (paper Section 4.2, collusion resistance) *)
  dec_pads : (int * int * int, Key.t) Hashtbl.t;
      (* (link id, group, guarded slot) -> the single stable pad applied
         to every copy of that group's decrease key forwarded down the
         interface, making decrease keys interface-specific too (they
         are per-slot constants, so one pad, not an XOR accumulator) *)
  mutable scrubber : (Link.t -> Packet.t -> unit) option;
  tallies : tallies;
  failures : (int, failure_span) Hashtbl.t;  (* open spans, by receiver *)
  mutable closed_failures : failure_span list;  (* newest first *)
}

let now t = Sim.now (Topology.sim t.topo)

let trace ?level t event attrs =
  if Tracer.enabled () then
    Tracer.emit ?level ~sim_time:(now t) ~component:"sigma.router" ~event
      (fun () -> ("router", Json.Int t.node.Node.id) :: attrs ())

let group_info t group =
  match Hashtbl.find_opt t.groups group with
  | Some gi -> gi
  | None ->
      let gi =
        {
          minimal = false;
          latest_duration = 0.5;
          session_minimal = None;
          slots = Hashtbl.create 32;
        }
      in
      Hashtbl.replace t.groups group gi;
      Hashtbl.replace t.node.Node.protected_groups group ();
      gi

let iface_of_link t (link : Link.t) =
  match Hashtbl.find_opt t.ifaces link.Link.id with
  | Some i -> i
  | None ->
      let i = { link; grants = Hashtbl.create 8 } in
      Hashtbl.replace t.ifaces link.Link.id i;
      i

let iface_toward t receiver =
  match Hashtbl.find_opt t.node.Node.fib receiver with
  | Some link -> Some (iface_of_link t link)
  | None -> None

let grant_of _t iface group =
  match Hashtbl.find_opt iface.grants group with
  | Some g -> g
  | None ->
      let g =
        {
          granted_until = neg_infinity;
          grace_until = neg_infinity;
          lockout_until = neg_infinity;
          by_join = false;
          grafted = false;
          join_strikes = 0;
        }
      in
      Hashtbl.replace iface.grants group g;
      g

let active_at grant time =
  time < grant.granted_until || time < grant.grace_until

(* The lockout charged when a keyless (session-join) admission ends
   without the interface ever validating a key — at grace expiry, on an
   early leave, or when tuples reveal the group as non-minimal.  Doubles
   per consecutive strike, capped at 4x the base lockout: enough that
   cycling through the join grace decays to a minority duty cycle, mild
   enough that an honest receiver whose keys fail under heavy ECN
   scrubbing is paused, not starved.  A validated key resets the count
   (Section 3.2.2's lockout, hardened against grace churn). *)
let charge_join_lockout t grant ~group ~time ~duration =
  let scale = float_of_int (1 lsl min grant.join_strikes 2) in
  grant.join_strikes <- grant.join_strikes + 1;
  grant.lockout_until <-
    Float.max grant.lockout_until
      (time +. (t.config.lockout_slots *. duration *. scale));
  grant.by_join <- false;
  t.tallies.t_lockouts <- t.tallies.t_lockouts + 1;
  Metrics.incr t.tallies.m_lockouts;
  Timeseries.record "sigma.evictions" ~time ~value:(float_of_int group);
  trace t "lockout" (fun () ->
      [ ("group", Json.Int group); ("strikes", Json.Int grant.join_strikes) ])

(* --- enforcement hooks ------------------------------------------------ *)

let filter t group link =
  if not (Hashtbl.mem t.groups group) then true (* unprotected group *)
  else
    match Hashtbl.find_opt t.ifaces link.Link.id with
    | None -> false
    | Some iface -> (
        match Hashtbl.find_opt iface.grants group with
        | None -> false
        | Some grant -> active_at grant (now t))

let on_forward t _group (link : Link.t) pkt =
  match link.Link.dst_kind with
  | Link.To_host | Link.To_lan -> (
      (* The transform rewrites components: always on marked packets
         (ECN scrub), and on every copy when interface-specific keys
         are enabled (collusion resistance). *)
      if pkt.Packet.ecn || t.config.interface_keys then
        match t.scrubber with Some f -> f link pkt | None -> ())
  | Link.To_router -> ()

(* --- graft / prune glue ------------------------------------------------ *)

(* Keep the session's special-packet channel (its minimal-group tree)
   alive at this router while any local grant exists, even when no
   interface subscribes to the minimal group itself. *)
let ensure_control_channel t group =
  match Hashtbl.find_opt t.groups group with
  | Some { session_minimal = Some m; _ } ->
      if not (Hashtbl.mem t.control_held m) then begin
        Hashtbl.replace t.control_held m ();
        Multicast.graft_local t.topo ~node:t.node ~group:m
      end
  | Some { session_minimal = None; _ } | None -> ()

let release_idle_control_channels t =
  let active_session m =
    match Hashtbl.find_opt t.sessions m with
    | None -> false
    | Some members ->
        let time = now t in
        List.exists
          (fun g ->
            Hashtbl.fold
              (fun _ iface acc ->
                acc
                ||
                match Hashtbl.find_opt iface.grants g with
                | Some grant -> active_at grant time
                | None -> false)
              t.ifaces false)
          !members
  in
  let held = Hashtbl.fold (fun m () acc -> m :: acc) t.control_held [] in
  List.iter
    (fun m ->
      if not (active_session m) then begin
        Hashtbl.remove t.control_held m;
        Multicast.prune_local t.topo ~node:t.node ~group:m
      end)
    held

let graft_iface t iface group =
  let grant = grant_of t iface group in
  ensure_control_channel t group;
  if not grant.grafted then begin
    grant.grafted <- true;
    Multicast.graft t.topo ~node:t.node ~group ~down:iface.link
  end

let prune_iface t iface group =
  let grant = grant_of t iface group in
  if grant.grafted then begin
    grant.grafted <- false;
    Multicast.prune t.topo ~node:t.node ~group ~down:iface.link
  end

(* --- key store -------------------------------------------------------- *)

let store_tuples t ~slot ~slot_duration tuples =
  let time = now t in
  let batch_minimal =
    List.find_map
      (fun (tuple : Tuple.t) ->
        if tuple.Tuple.minimal then Some tuple.Tuple.group else None)
      tuples
  in
  (match batch_minimal with
  | Some m ->
      let members =
        match Hashtbl.find_opt t.sessions m with
        | Some l -> l
        | None ->
            let l = ref [] in
            Hashtbl.replace t.sessions m l;
            l
      in
      List.iter
        (fun (tuple : Tuple.t) ->
          if not (List.mem tuple.Tuple.group !members) then
            members := tuple.Tuple.group :: !members)
        tuples
  | None -> ());
  List.iter
    (fun (tuple : Tuple.t) ->
      let gi = group_info t tuple.Tuple.group in
      gi.latest_duration <- slot_duration;
      gi.session_minimal <- (match batch_minimal with
                             | Some _ as m -> m
                             | None -> gi.session_minimal);
      if tuple.Tuple.minimal then gi.minimal <- true;
      if not (Hashtbl.mem gi.slots slot) then
        Hashtbl.replace gi.slots slot
          {
            keys = tuple.Tuple.keys;
            (* Tuples for slot s are sent during slot s-2 starting at its
               first instant, so the guarded slot opens two durations
               after the first special packet lands (paper Figure 2). *)
            est_start = time +. (2. *. slot_duration);
            duration = slot_duration;
          };
      (* A session-join grace for a group that tuples now reveal to be
         non-minimal was an inflation attempt: revoke it. *)
      if not gi.minimal then
        Hashtbl.iter
          (fun _ iface ->
            match Hashtbl.find_opt iface.grants tuple.Tuple.group with
            | Some grant when grant.by_join ->
                grant.grace_until <- neg_infinity;
                charge_join_lockout t grant ~group:tuple.Tuple.group ~time
                  ~duration:slot_duration;
                prune_iface t iface tuple.Tuple.group
            | Some _ | None -> ())
          t.ifaces)
    tuples

let on_special t pkt =
  match pkt.Packet.payload with
  | Messages.Special { session; slot; slot_duration; chunk; total_chunks; copy;
                       tuples } ->
      let key = (session, slot) in
      let decoder =
        match Hashtbl.find_opt t.decoders key with
        | Some d -> d
        | None ->
            let d = Fec.decoder_create () in
            Hashtbl.replace t.decoders key d;
            d
      in
      let is_parity = chunk = total_chunks in
      let coded =
        {
          Fec.chunk;
          total_chunks;
          copy;
          tuples = (if is_parity then [] else tuples);
          recovery = (if is_parity then tuples else []);
          wire_bytes = pkt.Packet.size;
        }
      in
      t.tallies.t_specials <- t.tallies.t_specials + 1;
      Metrics.incr t.tallies.m_specials;
      let dups_before = Fec.duplicates decoder in
      (match Fec.feed decoder coded with
      | Some all ->
          trace t "slot_decoded" (fun () ->
              [
                ("session", Json.Int session);
                ("slot", Json.Int slot);
                ("tuples", Json.Int (List.length all));
              ]);
          store_tuples t ~slot ~slot_duration all
      | None -> ());
      let dup_delta = Fec.duplicates decoder - dups_before in
      if dup_delta > 0 then
        Metrics.incr t.tallies.m_suppressed ~by:dup_delta
  | _ -> ()

(* --- receiver messages ------------------------------------------------- *)

let tally_guess t ~group ~slot key =
  let tbl =
    match Hashtbl.find_opt t.guesses (group, slot) with
    | Some tbl -> tbl
    | None ->
        let tbl = Hashtbl.create 8 in
        Hashtbl.replace t.guesses (group, slot) tbl;
        tbl
  in
  if not (Hashtbl.mem tbl key) then Metrics.incr t.tallies.m_guesses;
  Hashtbl.replace tbl key ()

let interface_keys_enabled t = t.config.interface_keys

(* The stable decrease-key pad for (interface, group, guarded slot),
   created on first use: the scrubber applies it to every forwarded copy
   so the receiver's view is consistent, and validation maps a submitted
   decrease key back through it. *)
let decrease_pad t ~link_id ~group ~guarded_slot ~fresh =
  let key = (link_id, group, guarded_slot) in
  match Hashtbl.find_opt t.dec_pads key with
  | Some p -> p
  | None ->
      let p = fresh () in
      Hashtbl.replace t.dec_pads key p;
      p

let note_pad t ~link_id ~group ~guarded_slot ~pad =
  let key = (link_id, group, guarded_slot) in
  let prev = Option.value (Hashtbl.find_opt t.pads key) ~default:0 in
  Hashtbl.replace t.pads key (Key.xor prev pad)

(* XOR of the pads applied on [link] to groups [from_addr..to_addr] of a
   consecutively addressed session: the correction between a lower
   (interface-specific) cumulative key and the sender's upper key. *)
let cumulative_pad t ~link_id ~from_addr ~to_addr ~slot =
  let acc = ref 0 in
  for addr = from_addr to to_addr do
    match Hashtbl.find_opt t.pads (link_id, addr, slot) with
    | Some p -> acc := Key.xor !acc p
    | None -> ()
  done;
  !acc

(* Candidate upper keys for a submitted (possibly lower) key: the
   cumulative component pad up to the group (top keys), up to the
   previous group (increase keys), and the interface's decrease pad.
   Every in-band field is padded per interface, so there is no identity
   candidate: a key lifted verbatim from another interface maps through
   this interface's (different) pads and fails (paper Section 4.2). *)
let upper_candidates t ~link_id ~group ~slot key =
  if not t.config.interface_keys then [ key ]
  else
    let session_base =
      match Hashtbl.find_opt t.groups group with
      | Some { session_minimal = Some m; _ } -> m
      | Some _ | None -> group
    in
    let cum_top =
      cumulative_pad t ~link_id ~from_addr:session_base ~to_addr:group ~slot
    in
    let cum_inc =
      if group > session_base then
        cumulative_pad t ~link_id ~from_addr:session_base
          ~to_addr:(group - 1) ~slot
      else 0
    in
    let dec =
      match Hashtbl.find_opt t.dec_pads (link_id, group, slot) with
      | Some p -> [ Key.xor key p ]
      | None -> []
    in
    dec @ [ Key.xor key cum_top; Key.xor key cum_inc ]

let guess_count t ~group ~slot =
  match Hashtbl.find_opt t.guesses (group, slot) with
  | Some tbl -> Hashtbl.length tbl
  | None -> 0

let total_guesses t =
  Hashtbl.fold (fun _ tbl acc -> acc + Hashtbl.length tbl) t.guesses 0

let failure_audit t =
  let view s =
    { kf_receiver = s.f_receiver; kf_first = s.f_first; kf_last = s.f_last;
      kf_rejects = s.f_rejects; kf_ended = s.f_ended }
  in
  let open_spans = Hashtbl.fold (fun _ s acc -> view s :: acc) t.failures [] in
  List.sort
    (fun a b ->
      match Float.compare a.kf_first b.kf_first with
      | 0 -> Int.compare a.kf_receiver b.kf_receiver
      | c -> c)
    (List.rev_map view t.closed_failures @ open_spans)

let stats t =
  let fec_dups =
    Hashtbl.fold (fun _ d acc -> acc + Fec.duplicates d) t.decoders 0
  in
  {
    subscriptions = t.tallies.t_subscriptions;
    keys_accepted = t.tallies.t_keys_accepted;
    keys_rejected = t.tallies.t_keys_rejected;
    acks = t.tallies.t_acks;
    upgrade_graces = t.tallies.t_upgrade_graces;
    grace_admissions = t.tallies.t_grace_admissions;
    suppressed_duplicates = t.tallies.t_dup_joins + fec_dups;
    unsubscribes = t.tallies.t_unsubscribes;
    lockouts = t.tallies.t_lockouts;
    special_packets = t.tallies.t_specials;
    distinct_guesses = total_guesses t;
  }

let send_ack t ~receiver ~slot ~pairs =
  let size = Messages.ack_bytes ~width:t.config.width pairs in
  let pkt =
    Packet.make ~src:t.node.Node.id ~dst:(Packet.Unicast receiver) ~size
      (Messages.Sub_ack { receiver; slot; pairs })
  in
  Node.originate t.node pkt

let handle_subscribe_body ?lineage t ~receiver ~slot ~pairs =
  match iface_toward t receiver with
  | None -> ()
  | Some iface ->
      let time = now t in
      (match lineage with
      | Some lin -> Lineage.hop lin ~time "sigma.subscribe"
      | None -> ());
      t.tallies.t_subscriptions <- t.tallies.t_subscriptions + 1;
      Metrics.incr t.tallies.m_subscriptions;
      Metrics.observe t.tallies.h_subscribe_pairs
        (float_of_int (List.length pairs));
      let accepted =
        List.filter
          (fun (group, key) ->
            match Hashtbl.find_opt t.groups group with
            | None -> false
            | Some gi -> (
                match Hashtbl.find_opt gi.slots slot with
                | None ->
                    tally_guess t ~group ~slot key;
                    false
                | Some entry ->
                    let candidates =
                      upper_candidates t ~link_id:iface.link.Link.id ~group
                        ~slot key
                    in
                    if
                      List.exists
                        (fun candidate -> List.mem candidate entry.keys)
                        candidates
                    then true
                    else begin
                      tally_guess t ~group ~slot key;
                      false
                    end))
          pairs
      in
      let denied = List.length pairs - List.length accepted in
      t.tallies.t_keys_accepted <-
        t.tallies.t_keys_accepted + List.length accepted;
      Metrics.incr t.tallies.m_keys_accepted ~by:(List.length accepted);
      t.tallies.t_keys_rejected <- t.tallies.t_keys_rejected + denied;
      Metrics.incr t.tallies.m_keys_rejected ~by:denied;
      trace t "subscribe" (fun () ->
          [
            ("receiver", Json.Int receiver);
            ("slot", Json.Int slot);
            ("accepted", Json.Int (List.length accepted));
            ("rejected", Json.Int denied);
          ]);
      (* The subscribe's causal chain ends here: preserve it whole when
         keys were rejected (forensics pins the attack's critical path
         to the first such case), then fold it into the hop table. *)
      (match lineage with
      | Some lin ->
          (if denied > 0 then
             let rejected =
               List.filter (fun pair -> not (List.memq pair accepted)) pairs
             in
             match rejected with
             | (group, key) :: _ ->
                 Lineage.note_case lin ~kind:"key_reject" ~time
                   ~attrs:
                     [
                       ("receiver", Json.Int receiver);
                       ("slot", Json.Int slot);
                       ("group", Json.Int group);
                       ("key", Json.String (Printf.sprintf "0x%04x" key));
                       ("rejected", Json.Int denied);
                     ]
             | [] -> ());
          Lineage.retire lin ~time
      | None -> ());
      if denied > 0 then
        Log.debug (fun m ->
            m "t=%.3f router %d: %d invalid key(s) from receiver %d for slot %d"
              (now t) t.node.Node.id denied receiver slot);
      (* Key-failure audit: track each receiver's run of rejections as a
         span.  Warn-level start/end events give the forensics report
         exact attack boundaries in sim time. *)
      (if denied > 0 then
         match Hashtbl.find_opt t.failures receiver with
         | Some span ->
             span.f_last <- time;
             span.f_rejects <- span.f_rejects + denied
         | None ->
             Hashtbl.replace t.failures receiver
               { f_receiver = receiver; f_first = time; f_last = time;
                 f_rejects = denied; f_ended = None };
             trace ~level:Tracer.Warn t "key_failure_start" (fun () ->
                 [ ("receiver", Json.Int receiver);
                   ("rejected", Json.Int denied) ])
       else
         match Hashtbl.find_opt t.failures receiver with
         | Some span when accepted <> [] ->
             span.f_ended <- Some time;
             Hashtbl.remove t.failures receiver;
             t.closed_failures <- span :: t.closed_failures;
             trace ~level:Tracer.Warn t "key_failure_end" (fun () ->
                 [ ("receiver", Json.Int receiver);
                   ("start", Json.Float span.f_first);
                   ("rejected", Json.Int span.f_rejects);
                   ("duration", Json.Float (time -. span.f_first)) ])
         | Some _ | None -> ());
      List.iter
        (fun (group, _) ->
          let gi = Hashtbl.find t.groups group in
          let entry = Hashtbl.find gi.slots slot in
          let grant = grant_of t iface group in
          Log.debug (fun m ->
              m "t=%.3f router %d: grant group %d slot %d to receiver %d"
                (now t) t.node.Node.id group slot receiver);
          let slot_end = entry.est_start +. entry.duration in
          let newly_active = not (active_at grant time) in
          grant.granted_until <- Float.max grant.granted_until slot_end;
          grant.by_join <- false;
          grant.join_strikes <- 0;
          if newly_active then begin
            (* Keyed (re)activation of an interface: unconditional
               forwarding long enough for the receiver's first complete
               slots to yield keys (paper Section 3.2.2). *)
            grant.grace_until <-
              Float.max grant.grace_until
                (grant.granted_until
                +. (t.config.upgrade_grace_slots *. entry.duration));
            t.tallies.t_upgrade_graces <- t.tallies.t_upgrade_graces + 1;
            Metrics.incr t.tallies.m_upgrade_graces
          end;
          graft_iface t iface group)
        accepted;
      if accepted <> [] then begin
        t.tallies.t_acks <- t.tallies.t_acks + 1;
        Metrics.incr t.tallies.m_acks;
        send_ack t ~receiver ~slot ~pairs:accepted
      end

let handle_subscribe ?lineage t ~receiver ~slot ~pairs =
  let sp = Prof.span "sigma" in
  handle_subscribe_body ?lineage t ~receiver ~slot ~pairs;
  Prof.finish sp

let handle_unsubscribe t ~receiver ~groups =
  match iface_toward t receiver with
  | None -> ()
  | Some iface ->
      let time = now t in
      List.iter
        (fun group ->
          match Hashtbl.find_opt iface.grants group with
          | None -> ()
          | Some grant ->
              (* A keyless (session-join) admission that leaves before
                 its grace expires owes the same lockout the sweep
                 charges at expiry; otherwise join/leave cycling inside
                 the grace window is admitted again immediately and the
                 free ride never ends. *)
              if grant.by_join && active_at grant time then begin
                let duration =
                  match Hashtbl.find_opt t.groups group with
                  | Some gi -> gi.latest_duration
                  | None -> 0.5
                in
                charge_join_lockout t grant ~group ~time ~duration
              end;
              grant.granted_until <- neg_infinity;
              grant.grace_until <- neg_infinity;
              grant.by_join <- false;
              t.tallies.t_unsubscribes <- t.tallies.t_unsubscribes + 1;
              Metrics.incr t.tallies.m_unsubscribes;
              trace t "unsubscribe" (fun () ->
                  [ ("receiver", Json.Int receiver);
                    ("group", Json.Int group) ]);
              prune_iface t iface group)
        groups

let handle_session_join t ~receiver ~group =
  match iface_toward t receiver with
  | None -> ()
  | Some iface ->
      let known_non_minimal =
        match Hashtbl.find_opt t.groups group with
        | Some gi -> not gi.minimal
        | None -> false
      in
      if not known_non_minimal then begin
        let duration =
          match Hashtbl.find_opt t.groups group with
          | Some gi -> gi.latest_duration
          | None -> 0.5
        in
        let grant = grant_of t iface group in
        let time = now t in
        if time >= grant.lockout_until && not (active_at grant time) then begin
          Log.debug (fun m ->
              m "t=%.3f router %d: session-join admits receiver %d to group %d"
                time t.node.Node.id receiver group);
          grant.grace_until <-
            time +. (t.config.join_grace_slots *. duration);
          grant.by_join <- true;
          t.tallies.t_grace_admissions <- t.tallies.t_grace_admissions + 1;
          Metrics.incr t.tallies.m_grace_admissions;
          trace t "grace_admit" (fun () ->
              [ ("receiver", Json.Int receiver);
                ("group", Json.Int group) ]);
          graft_iface t iface group
        end
        else if active_at grant time then begin
          (* The interface already forwards the group: the join adds
             nothing and is suppressed rather than re-granted. *)
          t.tallies.t_dup_joins <- t.tallies.t_dup_joins + 1;
          Metrics.incr t.tallies.m_suppressed;
          trace t "join_suppressed" (fun () ->
              [ ("receiver", Json.Int receiver);
                ("group", Json.Int group) ])
        end
      end

(* --- expiry sweep ------------------------------------------------------ *)

let sweep t =
  let time = now t in
  Hashtbl.iter
    (fun _ iface ->
      Hashtbl.iter
        (fun group grant ->
          if grant.grafted && not (active_at grant time) then begin
            if grant.by_join then begin
              (* Keyless admission expired: pause the minimal group for
                 at least one slot (paper Section 3.2.2). *)
              let duration =
                match Hashtbl.find_opt t.groups group with
                | Some gi -> gi.latest_duration
                | None -> 0.5
              in
              charge_join_lockout t grant ~group ~time ~duration
            end;
            prune_iface t iface group
          end)
        iface.grants)
    t.ifaces;
  release_idle_control_channels t;
  (* Purge pad accumulators for long-gone slots. *)
  let purge_pads pads =
    if Hashtbl.length pads > 4096 then begin
      let horizon =
        Hashtbl.fold (fun (_, _, slot) _ acc -> max acc slot) pads 0 - 16
      in
      let stale =
        Hashtbl.fold
          (fun ((_, _, slot) as key) _ acc ->
            if slot < horizon then key :: acc else acc)
          pads []
      in
      List.iter (Hashtbl.remove pads) stale
    end
  in
  purge_pads t.pads;
  purge_pads t.dec_pads;
  (* Purge stale slot entries and decoders. *)
  Hashtbl.iter
    (fun _ gi ->
      let stale =
        Hashtbl.fold
          (fun slot entry acc ->
            if entry.est_start +. (10. *. entry.duration) < time then
              slot :: acc
            else acc)
          gi.slots []
      in
      List.iter (Hashtbl.remove gi.slots) stale)
    t.groups

let on_unicast t pkt =
  match pkt.Packet.payload with
  | Messages.Subscribe { receiver; slot; pairs } ->
      handle_subscribe ~lineage:pkt.Packet.lineage t ~receiver ~slot ~pairs;
      true
  | Messages.Unsubscribe { receiver; groups } ->
      handle_unsubscribe t ~receiver ~groups;
      true
  | Messages.Session_join { receiver; group } ->
      handle_session_join t ~receiver ~group;
      true
  | _ -> false

let iface_active t ~group ~toward =
  match Hashtbl.find_opt t.node.Node.fib toward with
  | None -> false
  | Some link -> (
      match Hashtbl.find_opt t.ifaces link.Link.id with
      | None -> false
      | Some iface -> (
          match Hashtbl.find_opt iface.grants group with
          | None -> false
          | Some grant -> active_at grant (now t)))

let known_groups t = Hashtbl.fold (fun g _ acc -> g :: acc) t.groups []

let set_scrubber t f = t.scrubber <- Some f

let attach ?(config = default_config) topo node =
  (match node.Node.kind with
  | Node.Edge_router -> ()
  | Node.Host | Node.Core_router | Node.Lan ->
      invalid_arg "Router_agent.attach: node is not an edge router");
  let t =
    {
      topo;
      node;
      config;
      groups = Hashtbl.create 32;
      ifaces = Hashtbl.create 16;
      decoders = Hashtbl.create 64;
      guesses = Hashtbl.create 16;
      sessions = Hashtbl.create 8;
      control_held = Hashtbl.create 8;
      pads = Hashtbl.create 256;
      dec_pads = Hashtbl.create 256;
      scrubber = None;
      tallies = tallies_create ();
      failures = Hashtbl.create 8;
      closed_failures = [];
    }
  in
  (* SIGMA forensics trajectories (no-op unless the run enabled
     sampling); per-router names avoid "#2" suffixes when both edges of
     a dumbbell run an agent.  "sigma.evictions" is event-driven (see
     the lockout sites) and shared, sim time being globally monotone. *)
  if Timeseries.enabled () then begin
    let name suffix = Printf.sprintf "sigma.r%d.%s" node.Node.id suffix in
    Timeseries.sample_rate (name "guesses_per_s") (fun () ->
        float_of_int (total_guesses t));
    Timeseries.sample_rate (name "keys_rejected_per_s") (fun () ->
        float_of_int t.tallies.t_keys_rejected);
    Timeseries.sample_rate (name "grace_admissions_per_s") (fun () ->
        float_of_int t.tallies.t_grace_admissions);
    Timeseries.sample_rate (name "suppressed_joins_per_s") (fun () ->
        float_of_int t.tallies.t_dup_joins);
    Timeseries.sample_rate (name "lockouts_per_s") (fun () ->
        float_of_int t.tallies.t_lockouts)
  end;
  node.Node.intercept <- Some (on_special t);
  node.Node.mcast_filter <- Some (filter t);
  node.Node.on_forward <- Some (on_forward t);
  node.Node.local_unicast <-
    Some (fun pkt -> ignore (on_unicast t pkt));
  ignore
    (Sim.every (Topology.sim topo) ~start:config.cleanup_period
       ~period:config.cleanup_period (fun () -> sweep t));
  t
