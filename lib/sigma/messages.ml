module Payload = Mcc_net.Payload
module Key = Mcc_delta.Key

type Payload.t +=
  | Subscribe of {
      receiver : int;
      slot : int;
      pairs : (int * Key.t) list;
    }
  | Sub_ack of {
      receiver : int;
      slot : int;
      pairs : (int * Key.t) list;
    }
  | Unsubscribe of { receiver : int; groups : int list }
  | Session_join of { receiver : int; group : int }
  | Special of {
      session : int;
      slot : int;
      slot_duration : float;
      chunk : int;
      total_chunks : int;
      copy : int;
      tuples : Tuple.t list;
    }

let () =
  Payload.register_pp (fun fmt -> function
    | Subscribe { receiver; slot; pairs } ->
        Format.fprintf fmt "sigma-subscribe r%d s%d %d pairs" receiver slot
          (List.length pairs);
        true
    | Sub_ack { receiver; slot; pairs } ->
        Format.fprintf fmt "sigma-ack r%d s%d %d pairs" receiver slot
          (List.length pairs);
        true
    | Unsubscribe { receiver; groups } ->
        Format.fprintf fmt "sigma-unsub r%d %d groups" receiver
          (List.length groups);
        true
    | Session_join { receiver; group } ->
        Format.fprintf fmt "sigma-join r%d g%d" receiver group;
        true
    | Special { slot; chunk; total_chunks; copy; tuples; _ } ->
        Format.fprintf fmt "sigma-special s%d chunk %d/%d copy %d (%d tuples)"
          slot chunk total_chunks copy (List.length tuples);
        true
    | _ -> false)

let header_bytes = 28

let pair_bytes ~width = 4 + Key.field_bytes ~width

let subscribe_bytes ~width pairs =
  header_bytes + 4 + (List.length pairs * pair_bytes ~width)

let ack_bytes = subscribe_bytes
let unsubscribe_bytes groups = header_bytes + (4 * List.length groups)
let session_join_bytes = header_bytes + 4

let special_bytes ~width tuples =
  header_bytes + 1 (* slot number, l = 8 bits *)
  + List.fold_left (fun acc t -> acc + Tuple.wire_bytes ~width t) 0 tuples
