(** Shamir (k, n) threshold secret sharing over GF(2^31 - 1).

    DELTA's instantiation for threshold-based protocols (paper Section
    3.1.2, "Congested state"): the key for a subscription level is split
    among the n packets of a time slot so that any k of them suffice to
    reconstruct it, matching protocols that declare a receiver congested
    only above a loss-rate threshold. *)

type share = { x : int; y : int }
(** One share: the pair (p, q(p)) carried by packet number [x]. *)

val split : Prng.t -> k:int -> n:int -> secret:int -> share array
(** [split prng ~k ~n ~secret] builds shares of [secret] (a field
    element) using a random degree-(k-1) polynomial.  Share abscissae are
    1..n.  @raise Invalid_argument unless [0 < k <= n < Gf.p]. *)

val reconstruct : share list -> int
(** Reconstructs the secret from at least [k] distinct shares.  With
    fewer than [k] shares the result is (with overwhelming probability)
    a wrong value, never an error: the scheme is information-theoretic,
    an ineligible receiver simply computes garbage. *)
