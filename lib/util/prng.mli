(** Deterministic pseudo-random number generator (SplitMix64).

    Every stochastic element of the simulator draws from an explicit
    generator so that a simulation run is a pure function of its seed:
    same seed, same trace.  The generator is splittable, which lets each
    traffic source own an independent stream derived from the scenario
    seed. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator.  Two generators created from
    the same seed produce identical streams. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t]. *)

val copy : t -> t
(** [copy t] duplicates the current state without advancing [t]. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val bits : t -> int -> int
(** [bits t b] returns a uniformly distributed non-negative integer of
    exactly [b] random bits, [0 < b <= 62]. *)

val int : t -> int -> int
(** [int t bound] returns a uniform integer in [0, bound).
    @raise Invalid_argument if [bound <= 0]. *)

val float : t -> float
(** Uniform float in [0, 1). *)

val bool : t -> bool
(** Fair coin. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed sample with the given mean. *)
