let mean = function
  | [] -> 0.
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let stddev = function
  | [] | [ _ ] -> 0.
  | xs ->
      let m = mean xs in
      let var = mean (List.map (fun x -> (x -. m) *. (x -. m)) xs) in
      sqrt var

let minimum = function
  | [] -> invalid_arg "Stats.minimum"
  | x :: xs -> List.fold_left min x xs

let maximum = function
  | [] -> invalid_arg "Stats.maximum"
  | x :: xs -> List.fold_left max x xs

let percentile q xs =
  if xs = [] then invalid_arg "Stats.percentile: empty";
  if q < 0. || q > 1. then invalid_arg "Stats.percentile: q out of range";
  let arr = Array.of_list xs in
  Array.sort Float.compare arr;
  let n = Array.length arr in
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (floor pos) in
  let hi = int_of_float (ceil pos) in
  if lo = hi then arr.(lo)
  else
    let w = pos -. float_of_int lo in
    ((1. -. w) *. arr.(lo)) +. (w *. arr.(hi))

let jain_fairness xs =
  match xs with
  | [] -> 1.0
  | _ ->
      let s = List.fold_left ( +. ) 0. xs in
      let s2 = List.fold_left (fun acc x -> acc +. (x *. x)) 0. xs in
      if Float.equal s2 0. then 1.0
      else s *. s /. (float_of_int (List.length xs) *. s2)
