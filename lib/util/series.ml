type t = { mutable times : float array; mutable values : float array; mutable len : int }

let create () = { times = Array.make 64 0.; values = Array.make 64 0.; len = 0 }

let ensure_capacity t =
  if t.len = Array.length t.times then begin
    let grow a = Array.append a (Array.make (Array.length a) 0.) in
    t.times <- grow t.times;
    t.values <- grow t.values
  end

let add t ~time ~value =
  if t.len > 0 && time < t.times.(t.len - 1) then
    invalid_arg "Series.add: time going backwards";
  ensure_capacity t;
  t.times.(t.len) <- time;
  t.values.(t.len) <- value;
  t.len <- t.len + 1

let length t = t.len

let to_list t =
  let rec build i acc =
    if i < 0 then acc else build (i - 1) ((t.times.(i), t.values.(i)) :: acc)
  in
  build (t.len - 1) []

let values_between t ~lo ~hi =
  let rec build i acc =
    if i < 0 then acc
    else
      let time = t.times.(i) in
      if time >= lo && time < hi then build (i - 1) (t.values.(i) :: acc)
      else build (i - 1) acc
  in
  build (t.len - 1) []

let mean_between t ~lo ~hi = Stats.mean (values_between t ~lo ~hi)

let moving_average t ~window =
  let half = window /. 2. in
  List.map
    (fun (time, _) -> (time, mean_between t ~lo:(time -. half) ~hi:(time +. half)))
    (to_list t)

let pp_rows ?label fmt t =
  (match label with None -> () | Some l -> Format.fprintf fmt "# %s@." l);
  List.iter (fun (time, v) -> Format.fprintf fmt "%.3f %.3f@." time v) (to_list t)
