type t = {
  bin : float;
  mutable bins : float array; (* bytes per bin *)
  mutable last_time : float;
  mutable total : int;
}

let create ?(bin = 1.0) () =
  { bin; bins = Array.make 64 0.; last_time = 0.; total = 0 }

let bin_index t time = int_of_float (time /. t.bin)

let ensure t idx =
  while idx >= Array.length t.bins do
    t.bins <- Array.append t.bins (Array.make (Array.length t.bins) 0.)
  done

let record t ~time ~bytes =
  if time < t.last_time then invalid_arg "Meter.record: time going backwards";
  t.last_time <- time;
  let idx = bin_index t time in
  ensure t idx;
  t.bins.(idx) <- t.bins.(idx) +. float_of_int bytes;
  t.total <- t.total + bytes

let total_bytes t = t.total

let used_bins t = bin_index t t.last_time + 1

let kbps_of_bytes t bytes = bytes *. 8. /. t.bin /. 1000.

let throughput_kbps t =
  List.init (used_bins t) (fun i ->
      (float_of_int (i + 1) *. t.bin, kbps_of_bytes t t.bins.(i)))

let smoothed_kbps t ~window =
  let n = used_bins t in
  let w = max 1 (int_of_float (window /. t.bin)) in
  List.init n (fun i ->
      let lo = max 0 (i - w + 1) in
      let sum = ref 0. in
      for j = lo to i do
        sum := !sum +. t.bins.(j)
      done;
      ( float_of_int (i + 1) *. t.bin,
        kbps_of_bytes t (!sum /. float_of_int (i - lo + 1)) ))

let mean_kbps t ~lo ~hi =
  if hi <= lo then 0.
  else begin
    (* Weight each bin by its overlap with [lo, hi): windows that do not
       align with bin boundaries still average correctly. *)
    let nbins = Array.length t.bins in
    let lo_idx = max 0 (bin_index t lo) in
    let hi_idx = min (nbins - 1) (bin_index t (hi -. 1e-12)) in
    let sum = ref 0. in
    for i = lo_idx to hi_idx do
      let bin_lo = float_of_int i *. t.bin in
      let bin_hi = bin_lo +. t.bin in
      let overlap = Float.min hi bin_hi -. Float.max lo bin_lo in
      if overlap > 0. then sum := !sum +. (t.bins.(i) *. overlap /. t.bin)
    done;
    !sum *. 8. /. (hi -. lo) /. 1000.
  end
