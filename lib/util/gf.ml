let p = 2147483647 (* 2^31 - 1 *)

let of_int x =
  let r = x mod p in
  if r < 0 then r + p else r

let add a b =
  let s = a + b in
  if s >= p then s - p else s

let sub a b = if a >= b then a - b else a - b + p

(* (p-1)^2 = 2^62 - 2^32 + ... fits within OCaml's 63-bit native int. *)
let mul a b = a * b mod p

let rec pow x n =
  if n = 0 then 1
  else
    let h = pow x (n / 2) in
    let h2 = mul h h in
    if n land 1 = 1 then mul h2 x else h2

let inv x = if x = 0 then raise Division_by_zero else pow x (p - 2)

let eval_poly coeffs x =
  let acc = ref 0 in
  for i = Array.length coeffs - 1 downto 0 do
    acc := add (mul !acc x) coeffs.(i)
  done;
  !acc

let interpolate_at_zero points =
  let xs = List.map fst points in
  let rec dup = function
    | [] -> false
    | x :: rest -> List.mem x rest || dup rest
  in
  if dup xs then invalid_arg "Gf.interpolate_at_zero: duplicate abscissae";
  let term (xi, yi) =
    let num, den =
      List.fold_left
        (fun (num, den) (xj, _) ->
          if xj = xi then (num, den)
          else (mul num (sub 0 xj), mul den (sub xi xj)))
        (1, 1) points
    in
    mul yi (mul num (inv den))
  in
  List.fold_left (fun acc pt -> add acc (term pt)) 0 points
