(** Append-only time series of (time, value) samples with helpers to
    bin, window-average, and print the series the paper's figures plot. *)

type t

val create : unit -> t

val add : t -> time:float -> value:float -> unit
(** Samples must be appended in non-decreasing time order.
    @raise Invalid_argument otherwise. *)

val length : t -> int

val to_list : t -> (float * float) list
(** Samples in insertion order. *)

val values_between : t -> lo:float -> hi:float -> float list
(** Values of samples with [lo <= time < hi]. *)

val mean_between : t -> lo:float -> hi:float -> float
(** Mean value over the half-open window; 0. if the window is empty. *)

val moving_average : t -> window:float -> (float * float) list
(** Centered moving average: for each sample time [t], the mean of values
    in [t - window/2, t + window/2]. *)

val pp_rows : ?label:string -> Format.formatter -> t -> unit
(** Prints "time value" rows, one per line, gnuplot-style. *)
