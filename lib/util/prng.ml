type t = { mutable state : int64 }

let gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix (Int64.of_int seed) }

let int64 t =
  t.state <- Int64.add t.state gamma;
  mix t.state

let split t = { state = int64 t }
let copy t = { state = t.state }

let bits t b =
  if b <= 0 || b > 62 then invalid_arg "Prng.bits";
  Int64.to_int (Int64.shift_right_logical (int64 t) (64 - b))

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int";
  (* Rejection sampling over the smallest covering power of two keeps the
     distribution exactly uniform. *)
  let rec width w = if 1 lsl w >= bound then w else width (w + 1) in
  let w = width 1 in
  let rec draw () =
    let v = bits t w in
    if v < bound then v else draw ()
  in
  draw ()

let float t =
  (* 53 random bits scaled to [0, 1). *)
  let v = Int64.to_int (Int64.shift_right_logical (int64 t) 11) in
  float_of_int v *. 0x1p-53

let bool t = bits t 1 = 1

let exponential t ~mean =
  let u = 1.0 -. float t in
  -.mean *. log u
