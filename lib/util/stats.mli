(** Small descriptive-statistics helpers used by experiment reports. *)

val mean : float list -> float
(** Arithmetic mean; 0. on the empty list. *)

val stddev : float list -> float
(** Population standard deviation; 0. on fewer than two samples. *)

val minimum : float list -> float
(** @raise Invalid_argument on the empty list. *)

val maximum : float list -> float
(** @raise Invalid_argument on the empty list. *)

val percentile : float -> float list -> float
(** [percentile q xs] with [q] in [0, 1]; linear interpolation between
    order statistics.  @raise Invalid_argument on the empty list or a
    [q] outside [0, 1]. *)

val jain_fairness : float list -> float
(** Jain's fairness index (sum x)^2 / (n * sum x^2); 1.0 for a perfectly
    equal allocation, approaching 1/n under maximal unfairness.
    Returns 1.0 on the empty list or an all-zero allocation. *)
