(** Throughput meter: counts delivered bytes and renders them as a
    throughput time series in Kbps, the unit of every figure in the
    paper. *)

type t

val create : ?bin:float -> unit -> t
(** [bin] is the sampling interval in seconds (default 1.0). *)

val record : t -> time:float -> bytes:int -> unit
(** Account [bytes] delivered at [time].  Times must be non-decreasing. *)

val total_bytes : t -> int

val throughput_kbps : t -> (float * float) list
(** Per-bin throughput samples [(bin_end_time, kbps)].  Bins with no
    traffic report 0. *)

val smoothed_kbps : t -> window:float -> (float * float) list
(** Per-bin throughput averaged over a sliding window of [window]
    seconds, matching the smoothing of the paper's plots. *)

val mean_kbps : t -> lo:float -> hi:float -> float
(** Average throughput over [lo, hi) in Kbps; bins partially covered by
    the window contribute proportionally to the overlap. *)
