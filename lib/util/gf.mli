(** Arithmetic in the prime field GF(p) with p = 2^31 - 1 (Mersenne).

    Used by the Shamir threshold instantiation of DELTA (paper Section
    3.1.2, Equations 7-9).  Products of two field elements fit in OCaml's
    63-bit native integers, so all operations are allocation-free. *)

val p : int
(** The field modulus, [2147483647]. *)

val of_int : int -> int
(** Canonical representative in [0, p) of an arbitrary integer. *)

val add : int -> int -> int
val sub : int -> int -> int
val mul : int -> int -> int

val pow : int -> int -> int
(** [pow x n] is x^n mod p, n >= 0. *)

val inv : int -> int
(** Multiplicative inverse. @raise Division_by_zero on 0. *)

val eval_poly : int array -> int -> int
(** [eval_poly coeffs x] evaluates [coeffs.(0) + coeffs.(1) x + ...]
    by Horner's rule. *)

val interpolate_at_zero : (int * int) list -> int
(** Lagrange interpolation: given distinct points [(x_i, y_i)] of a
    polynomial, returns its value at 0.
    @raise Invalid_argument on duplicate abscissae. *)
