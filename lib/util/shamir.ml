type share = { x : int; y : int }

let split prng ~k ~n ~secret =
  if k <= 0 || k > n || n >= Gf.p then invalid_arg "Shamir.split";
  let coeffs = Array.make k 0 in
  coeffs.(0) <- Gf.of_int secret;
  for i = 1 to k - 1 do
    coeffs.(i) <- Prng.int prng Gf.p
  done;
  Array.init n (fun i ->
      let x = i + 1 in
      { x; y = Gf.eval_poly coeffs x })

let reconstruct shares =
  Gf.interpolate_at_zero (List.map (fun { x; y } -> (x, y)) shares)
