(** The defence-evaluation matrix: attack × protocol × defence cells.

    Each cell is one {!Mcc_core.Spec.Adversary} experiment — a 1 Mbps
    dumbbell carrying the attacked session, an honest victim session of
    the same protocol, and one TCP flow — whose result is the cell's
    damage metrics ({!Mcc_core.Experiments.adversary_result}): honest
    goodput loss, attacker gain in fair shares, and time to containment.

    Cells run through the ordinary {!Mcc_core.Runner} batch machinery,
    so a matrix parallelises across domains and its sink output is
    byte-identical for any [--jobs].  Linking this module registers
    {!run_cell} as the [Spec.Adversary] implementation
    ({!Mcc_core.Experiments.set_adversary_impl}). *)

val run_cell :
  Mcc_core.Spec.adversary_params -> Mcc_core.Experiments.adversary_result
(** Simulate one cell.  Defence mapping: [Undefended] = both sessions
    Plain, no agent; [Delta_only] = Robust senders behind a legacy edge
    (keys in band, nothing enforced, receivers on IGMP); [Delta_sigma] =
    SIGMA agent with interface-specific keys; [Delta_sigma_ecn] adds ECN
    marking and component scrubbing.  The adversary is a session member
    for FLID member attacks, a standalone bare attacker otherwise. *)

val default_attacks : Mcc_core.Spec.attack_kind list
(** All six strategies at catalogue parameters. *)

val default_protocols : Mcc_core.Spec.protocol list
val default_defences : Mcc_core.Spec.defence list

val entries :
  ?seed:int ->
  ?duration:float ->
  ?attack_at:float ->
  ?attacks:Mcc_core.Spec.attack_kind list ->
  ?protocols:Mcc_core.Spec.protocol list ->
  ?defences:Mcc_core.Spec.defence list ->
  unit ->
  Mcc_core.Runner.entry list
(** The grid as runner entries named
    ["matrix-<attack>-<protocol>-<defence>"], all in group ["matrix"]
    (attack-major, defence-minor order).  Defaults come from
    {!Mcc_core.Spec.default_adversary} and the [default_*] lists. *)

val run :
  ?jobs:int ->
  ?sched:Mcc_engine.Scheduler.backend ->
  ?sample_dt:float ->
  ?sinks:Mcc_core.Sink.t list ->
  ?on_progress:(Mcc_obs.Progress.sample -> unit) ->
  ?progress_interval:float ->
  Mcc_core.Runner.entry list ->
  Mcc_core.Runner.row list
(** [Runner.run_batch] with the (run-varying) profile stripped from
    every record — sinks are fed in entry order whatever [jobs] or
    [sched] is, so matrix files are byte-identical across job counts
    and scheduler backends.  [on_progress]/[progress_interval] pass
    through to {!Mcc_core.Runner.run_batch}'s live-telemetry monitor and
    never touch sink bytes. *)
