module Spec = Mcc_core.Spec
module Experiments = Mcc_core.Experiments
module Runner = Mcc_core.Runner
module Sink = Mcc_core.Sink
module Scenario = Mcc_core.Scenario
module Defaults = Mcc_core.Defaults
module Dumbbell = Mcc_core.Dumbbell
module Flid = Mcc_mcast.Flid
module Rlm = Mcc_mcast.Rlm_like
module Rep = Mcc_mcast.Replicated_proto
module Oversub = Mcc_mcast.Oversub
module Router_agent = Mcc_sigma.Router_agent
module Tcp = Mcc_transport.Tcp
module Meter = Mcc_util.Meter
module Prng = Mcc_util.Prng

(* --- Damage metrics ----------------------------------------------------- *)

let fair_share_kbps = Defaults.fair_share_bps /. 1000.

(* Slide 5-second windows over the attack period; the adversary counts
   as contained once every later window stays within the limit: twice
   the larger of a fair share and what the honest victim receiver got
   in the same window.  (The victim-relative term keeps the limit above
   the legitimate per-member session rate, which floats with the
   competition; the fair-share floor keeps a starved victim from
   excusing the attacker.)  [Some 0.] = never exceeded; [None] = still
   exceeding at the horizon. *)
let containment ~attack_at ~duration ~victim sample =
  let window = 5. and step = 1. in
  let rec scan t last =
    if t +. window > duration +. 1e-9 then last
    else
      let hi = t +. window in
      let limit = 2. *. Float.max fair_share_kbps (victim ~lo:t ~hi) in
      let last = if sample ~lo:t ~hi > limit then Some hi else last in
      scan (t +. step) last
  in
  match scan attack_at None with
  | None -> Some 0.
  | Some t_end when t_end +. step +. window > duration +. 1e-9 -> None
  | Some t_end -> Some (t_end -. attack_at)

(* --- Cell construction -------------------------------------------------- *)

(* Every cell shares one shape: a 1 Mbps dumbbell carrying the attacked
   session (A), an honest victim session (B) of the same protocol whose
   receiver is the honest-goodput probe, and one TCP Reno flow.  The
   defence picks the machinery around them:

   - Undefended: both sessions in Plain mode, no agent — plain IGMP.
   - Delta_only: Robust senders (keys flow in band) but a legacy edge
     ([Scenario.create ~sigma:false]) and IGMP receivers
     ([receiver_mode = Plain]) — the paper's incremental-deployment
     counterfactual, where DELTA alone protects nothing.
   - Delta_sigma: Robust end to end, SIGMA agent with interface keys.
   - Delta_sigma_ecn: additionally ECN marking + component scrubbing.

   The adversary is a session-A member where the protocol supports
   misbehaving receivers (FLID), a standalone bare attacker otherwise —
   and always for grace churn (which acts on the control channel) and
   collusion (free-riding hosts replaying an honest member's keys). *)

let run_cell (p : Spec.adversary_params) : Experiments.adversary_result =
  let ({ seed; duration; attack_at; attack; protocol; defence }
        : Spec.adversary_params) =
    p
  in
  let sigma_enforced =
    match defence with
    | Spec.Delta_sigma | Spec.Delta_sigma_ecn -> true
    | Spec.Undefended | Spec.Delta_only -> false
  in
  let mode =
    match defence with Spec.Undefended -> Flid.Plain | _ -> Flid.Robust
  in
  let receiver_mode =
    match defence with Spec.Delta_only -> Some Flid.Plain | _ -> None
  in
  let ecn = defence = Spec.Delta_sigma_ecn in
  let agent_config =
    { Router_agent.default_config with Router_agent.interface_keys = true }
  in
  let t =
    Scenario.create ~seed ~ecn ~sigma:sigma_enforced ~agent_config
      ~bottleneck_rate_bps:1_000_000. ()
  in
  let strat = Strategy.of_kind attack in
  (* The attacker's own randomness (guessed keys); decoupled from the
     scenario seed stream so adding a strategy never perturbs the honest
     sessions. *)
  let attacker_prng = Prng.create ((seed * 7919) + 13) in
  let member_receiver slot_duration =
    let inst =
      strat.Strategy.instantiate ~attack_at ~slot_duration ~prng:attacker_prng
    in
    Scenario.receiver ~behavior:(Flid.Adversarial (Strategy.member inst)) ()
  in
  let launch_bare ?feed ~groups ~slot_duration () =
    let inst =
      strat.Strategy.instantiate ~attack_at ~slot_duration ~prng:attacker_prng
    in
    let host = Dumbbell.add_receiver (Scenario.dumbbell t) in
    let target =
      {
        Strategy.tgt_groups = groups;
        tgt_slot_duration = slot_duration;
        tgt_sigma = sigma_enforced;
      }
    in
    let bare =
      Strategy.launch_bare ~at:attack_at ?feed
        (Scenario.dumbbell t).Dumbbell.topo ~host ~prng:attacker_prng ~target
        ~kind:attack inst
    in
    Strategy.bare_meter bare
  in
  let flid_slot =
    match mode with
    | Flid.Plain -> Defaults.flid_dl_slot
    | Flid.Robust -> Defaults.flid_ds_slot
  in
  (* Session A plus its adversary; returns the attacker-side meters. *)
  let attacker_meters =
    match protocol with
    | Spec.Flid_ds -> (
        match attack with
        | Spec.Grace_churn _ ->
            let a =
              Scenario.add_multicast t ~mode ?receiver_mode
                ~receivers:[ Scenario.receiver () ] ()
            in
            [
              launch_bare
                ~groups:
                  (List.init Defaults.groups (fun g ->
                       Flid.group_addr a.Scenario.config (g + 1)))
                ~slot_duration:a.Scenario.config.Flid.slot_duration ();
            ]
        | Spec.Collusion { colluders } ->
            (* One honest session member is the accomplice; the
               colluders are free-riding hosts replaying its key
               submissions from their own interfaces (just IGMP joiners
               where the edge does not enforce keys). *)
            let a =
              Scenario.add_multicast t ~mode ?receiver_mode
                ~receivers:[ Scenario.receiver () ] ()
            in
            let accomplice = List.hd a.Scenario.receivers in
            let groups =
              List.init Defaults.groups (fun g ->
                  Flid.group_addr a.Scenario.config (g + 1))
            in
            List.init colluders (fun _ ->
                launch_bare
                  ~feed:(fun () -> Flid.receiver_history accomplice)
                  ~groups ~slot_duration:a.Scenario.config.Flid.slot_duration
                  ())
        | Spec.Persistent_inflation | Spec.Pulse_inflation _
        | Spec.Key_guessing _ | Spec.Stale_replay _ ->
            let a =
              Scenario.add_multicast t ~mode ?receiver_mode
                ~receivers:[ member_receiver flid_slot ] ()
            in
            [ Flid.receiver_meter (List.hd a.Scenario.receivers) ])
    | Spec.Rlm_threshold ->
        let a =
          Scenario.add_rlm t ~mode ?receiver_mode
            ~receivers:[ Scenario.receiver () ] ()
        in
        [
          launch_bare
            ~groups:
              (List.init Defaults.groups (fun g ->
                   Rlm.group_addr a.Scenario.rlm_config (g + 1)))
            ~slot_duration:a.Scenario.rlm_config.Rlm.slot_duration ();
        ]
    | Spec.Replicated ->
        let a =
          Scenario.add_replicated t ~mode ?receiver_mode
            ~receivers:[ Scenario.receiver () ] ()
        in
        [
          launch_bare
            ~groups:
              (List.init Defaults.groups (fun g ->
                   Rep.group_addr a.Scenario.rep_config (g + 1)))
            ~slot_duration:a.Scenario.rep_config.Rep.slot_duration ();
        ]
    | Spec.Oversub ->
        let a =
          Scenario.add_oversub t ~mode ?receiver_mode
            ~receivers:[ Scenario.receiver () ] ()
        in
        [
          launch_bare
            ~groups:
              (List.init Defaults.groups (fun g ->
                   Oversub.group_addr a.Scenario.ovs_config (g + 1)))
            ~slot_duration:
              a.Scenario.ovs_config.Oversub.flid.Flid.slot_duration ();
        ]
  in
  (* Session B: the honest victim whose goodput measures the damage. *)
  let victim_meter =
    match protocol with
    | Spec.Flid_ds ->
        let b =
          Scenario.add_multicast t ~mode ?receiver_mode
            ~receivers:[ Scenario.receiver () ] ()
        in
        Flid.receiver_meter (List.hd b.Scenario.receivers)
    | Spec.Rlm_threshold ->
        let b =
          Scenario.add_rlm t ~mode ?receiver_mode
            ~receivers:[ Scenario.receiver () ] ()
        in
        Rlm.receiver_meter (List.hd b.Scenario.rlm_receivers)
    | Spec.Replicated ->
        let b =
          Scenario.add_replicated t ~mode ?receiver_mode
            ~receivers:[ Scenario.receiver () ] ()
        in
        Rep.receiver_meter (List.hd b.Scenario.rep_receivers)
    | Spec.Oversub ->
        let b =
          Scenario.add_oversub t ~mode ?receiver_mode
            ~receivers:[ Scenario.receiver () ] ()
        in
        Oversub.receiver_meter (List.hd b.Scenario.ovs_receivers)
  in
  let tcp = Scenario.add_tcp t in
  Scenario.run t ~seconds:duration;
  let sample ~lo ~hi =
    List.fold_left
      (fun acc m -> acc +. Meter.mean_kbps m ~lo ~hi)
      0. attacker_meters
  in
  let settle = Float.min 10. (0.1 *. (duration -. attack_at)) in
  let honest_before =
    Meter.mean_kbps victim_meter ~lo:(attack_at /. 2.) ~hi:attack_at
  in
  let honest_after =
    Meter.mean_kbps victim_meter ~lo:(attack_at +. settle) ~hi:duration
  in
  let attacker_kbps = sample ~lo:(attack_at +. settle) ~hi:duration in
  let keys_rejected, lockouts, grace_admissions =
    match Scenario.agent t with
    | Some agent ->
        let s = Router_agent.stats agent in
        ( s.Router_agent.keys_rejected,
          s.Router_agent.lockouts,
          s.Router_agent.grace_admissions )
    | None -> (0, 0, 0)
  in
  {
    Experiments.honest_before_kbps = honest_before;
    honest_after_kbps = honest_after;
    honest_loss_pct =
      (if honest_before <= 0. then 0.
       else Float.max 0. (100. *. (1. -. (honest_after /. honest_before))));
    attacker_kbps;
    attacker_gain = attacker_kbps /. fair_share_kbps;
    containment_s =
      containment ~attack_at ~duration
        ~victim:(fun ~lo ~hi -> Meter.mean_kbps victim_meter ~lo ~hi)
        sample;
    tcp_kbps =
      Meter.mean_kbps (Tcp.delivered_meter tcp) ~lo:(attack_at +. settle)
        ~hi:duration;
    keys_rejected;
    lockouts;
    grace_admissions;
  }

(* Register as the Spec.Adversary implementation: linking this module
   makes adversary specs runnable through the ordinary Experiments/
   Runner machinery. *)
let () = Experiments.set_adversary_impl run_cell

(* --- The matrix --------------------------------------------------------- *)

let default_attacks =
  [
    Spec.Persistent_inflation;
    Spec.Pulse_inflation { period_s = 10.; duty = 0.5 };
    Spec.Key_guessing { budget_per_slot = 4 };
    Spec.Stale_replay { lag_slots = 4 };
    Spec.Grace_churn { period_slots = 2.5 };
    Spec.Collusion { colluders = 3 };
  ]

(* Derived from the Spec registry so a protocol added there shows up as
   a matrix column (and a scorecard heading) without touching this
   file. *)
let default_protocols = List.map (fun (p, _, _) -> p) Spec.protocols

let default_defences =
  [ Spec.Undefended; Spec.Delta_only; Spec.Delta_sigma; Spec.Delta_sigma_ecn ]

let entries ?(seed = Spec.default_adversary.Spec.seed)
    ?(duration = Spec.default_adversary.Spec.duration)
    ?(attack_at = Spec.default_adversary.Spec.attack_at)
    ?(attacks = default_attacks) ?(protocols = default_protocols)
    ?(defences = default_defences) () =
  List.concat_map
    (fun attack ->
      List.concat_map
        (fun protocol ->
          List.map
            (fun defence ->
              let p =
                { Spec.seed; duration; attack_at; attack; protocol; defence }
              in
              {
                Runner.name =
                  Printf.sprintf "matrix-%s-%s-%s" (Spec.attack_str attack)
                    (Spec.protocol_str protocol)
                    (Spec.defence_str defence);
                group = "matrix";
                doc =
                  Printf.sprintf "%s attack vs %s under %s"
                    (Spec.attack_str attack)
                    (Spec.protocol_str protocol)
                    (Spec.defence_str defence);
                spec = Spec.Adversary p;
              })
            defences)
        protocols)
    attacks

let run ?jobs ?sched ?sample_dt ?(sinks = []) ?on_progress ?progress_interval
    cells =
  (* Matrix output doubles as a regression artefact (ci.sh compares job
     counts — and scheduler backends — byte for byte), so drop the
     profile: its wall-clock fields are nondeterministic and its sched
     field names the backend. *)
  let sinks =
    List.map (Sink.map (fun r -> { r with Sink.profile = None })) sinks
  in
  Runner.run_batch ?jobs ?sched ?sample_dt ~sinks ?on_progress
    ?progress_interval cells
