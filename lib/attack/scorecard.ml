module Spec = Mcc_core.Spec
module Experiments = Mcc_core.Experiments
module Runner = Mcc_core.Runner

type cell = {
  params : Spec.adversary_params;
  result : Experiments.adversary_result;
}

let cells rows =
  List.filter_map
    (fun (row : Runner.row) ->
      match (row.Runner.entry.Runner.spec, row.Runner.result) with
      | Spec.Adversary params, Experiments.Adversary result ->
          Some { params; result }
      | _ -> None)
    rows

let contained (r : Experiments.adversary_result) = r.containment_s <> None

let verdict (r : Experiments.adversary_result) =
  match r.Experiments.containment_s with
  | Some s ->
      Printf.sprintf "contained %.0fs (gain %.1fx, honest -%.0f%%)" s
        r.Experiments.attacker_gain r.Experiments.honest_loss_pct
  | None ->
      Printf.sprintf "BREACH (gain %.1fx, honest -%.0f%%)"
        r.Experiments.attacker_gain r.Experiments.honest_loss_pct

(* Rank defences per attack: contained beats uncontained, then less
   honest damage, then less attacker gain. *)
let rank cs =
  List.sort
    (fun a b ->
      let key (c : cell) =
        ( (if contained c.result then 0 else 1),
          c.result.Experiments.honest_loss_pct,
          c.result.Experiments.attacker_gain )
      in
      let ba, la, ga = key a and bb, lb, gb = key b in
      match Int.compare ba bb with
      | 0 -> ( match Float.compare la lb with 0 -> Float.compare ga gb | c -> c)
      | c -> c)
    cs

let dedup_keep_order xs =
  List.fold_left (fun acc x -> if List.mem x acc then acc else acc @ [ x ]) [] xs

(* Headings come from the Spec protocol registry: a protocol registered
   there renders its own scorecard section without this module naming
   it. *)
let protocol_heading = Spec.protocol_heading

let render ppf rows =
  let cs = cells rows in
  let attacks = dedup_keep_order (List.map (fun c -> c.params.Spec.attack) cs) in
  let protocols =
    dedup_keep_order (List.map (fun c -> c.params.Spec.protocol) cs)
  in
  let defences =
    dedup_keep_order (List.map (fun c -> c.params.Spec.defence) cs)
  in
  let find ~attack ~protocol ~defence =
    List.find_opt
      (fun c ->
        c.params.Spec.attack = attack
        && c.params.Spec.protocol = protocol
        && c.params.Spec.defence = defence)
      cs
  in
  Format.fprintf ppf "# Attack x defence scorecard@.@.";
  Format.fprintf ppf
    "%d cells; damage measured as honest-session goodput loss, attacker \
     goodput in fair shares (%.0f kbps each), and seconds until the \
     attacker's 5 s goodput windows stay within twice the larger of a fair \
     share and the victim's concurrent goodput.@.@."
    (List.length cs)
    (Mcc_core.Defaults.fair_share_bps /. 1000.);
  List.iter
    (fun protocol ->
      Format.fprintf ppf "## %s@.@." (protocol_heading protocol);
      Format.fprintf ppf "| attack |";
      List.iter
        (fun d -> Format.fprintf ppf " %s |" (Spec.defence_str d))
        defences;
      Format.fprintf ppf "@.|---|";
      List.iter (fun _ -> Format.fprintf ppf "---|") defences;
      Format.fprintf ppf "@.";
      List.iter
        (fun attack ->
          Format.fprintf ppf "| %s |" (Spec.attack_str attack);
          List.iter
            (fun defence ->
              match find ~attack ~protocol ~defence with
              | Some c -> Format.fprintf ppf " %s |" (verdict c.result)
              | None -> Format.fprintf ppf " - |")
            defences;
          Format.fprintf ppf "@.")
        attacks;
      Format.fprintf ppf "@.")
    protocols;
  Format.fprintf ppf "## Defence ranking per attack@.@.";
  List.iter
    (fun attack ->
      let of_attack =
        List.filter (fun c -> c.params.Spec.attack = attack) cs
      in
      if of_attack <> [] then begin
        Format.fprintf ppf "- **%s**: " (Spec.attack_str attack);
        let ranked = rank of_attack in
        List.iteri
          (fun i c ->
            if i > 0 then Format.fprintf ppf " > ";
            Format.fprintf ppf "%s/%s (%s)"
              (Spec.defence_str c.params.Spec.defence)
              (Spec.protocol_str c.params.Spec.protocol)
              (if contained c.result then "ok" else "breach"))
          ranked;
        Format.fprintf ppf "@."
      end)
    attacks;
  (* The headline claim the matrix exists to check. *)
  let sigma_cells =
    List.filter
      (fun c ->
        match c.params.Spec.defence with
        | Spec.Delta_sigma | Spec.Delta_sigma_ecn -> true
        | Spec.Undefended | Spec.Delta_only -> false)
      cs
  in
  let sigma_breaches = List.filter (fun c -> not (contained c.result)) sigma_cells in
  if sigma_cells <> [] then begin
    Format.fprintf ppf "@.";
    if sigma_breaches = [] then
      Format.fprintf ppf
        "**DELTA+SIGMA contains every attack in this matrix.**@."
    else begin
      Format.fprintf ppf "**DELTA+SIGMA breached by:**@.";
      List.iter
        (fun c ->
          Format.fprintf ppf "- %s/%s under %s: %s@."
            (Spec.attack_str c.params.Spec.attack)
            (Spec.protocol_str c.params.Spec.protocol)
            (Spec.defence_str c.params.Spec.defence)
            (verdict c.result))
        sigma_breaches
    end
  end

let to_string rows =
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  render ppf rows;
  Format.pp_print_flush ppf ();
  Buffer.contents buf
