(** Pluggable attack strategies against multicast congestion control.

    A strategy is a paper-grounded recipe for inflating a subscription:
    what to claim, when, and with which (if any) forged proof.  Each
    strategy is described declaratively — name, paper section, expected
    defence outcome — and realised as an {!instance}: a bundle of
    simulated-clock callbacks a harness drives.  Two harnesses exist:

    - the {e member} adapter ({!member}) turns an instance into a
      {!Mcc_mcast.Flid.adversary}, i.e. a misbehaving receiver inside a
      FLID session whose [on_slot] callback replaces the honest key
      submission; under a [Plain]-mode session the receiver degrades to
      the IGMP join-everything misbehaviour, gated by [active];
    - the {e bare} driver ({!launch_bare}) runs the instance as a
      standalone attacker host with its own SIGMA client (or raw IGMP
      joins when the edge is legacy), which is how attacks are mounted
      against protocols whose receivers take no behaviour parameter
      (RLM-like, replicated) and how grace-window churn acts on the
      control channel.

    Instances carry their own mutable state (guess cursors, hit
    counters), so one instance drives exactly one attacker.  All
    strategies publish "attack.*" metrics and trace under the
    "attack.strategy" component. *)

module Spec := Mcc_core.Spec
module Flid := Mcc_mcast.Flid

type instance = {
  label : string;
  active : time:float -> bool;
      (** whether the attacker misbehaves at simulated [time];
          re-evaluated every slot (on–off strategies gate here) *)
  on_slot : Flid.adv_ctx -> Flid.submission list;
      (** per-slot key submissions replacing the honest one.  The member
          adapter wires this into the receiver's subscription path; the
          bare driver calls it on its own slot tick with an empty
          entitlement. *)
  on_packet : time:float -> group:int -> bytes:int -> unit;
      (** every session packet reaching the attacker's host (driven by
          the bare driver, which owns the host's group handlers) *)
  on_key_result : slot:int -> group:int -> accepted:bool -> unit;
      (** validation verdicts for submitted keys, observed one slot
          after submission through the SIGMA client's ack state (driven
          by the bare driver, which owns the client) *)
}

type t = {
  name : string;  (** = [Spec.attack_str kind] *)
  kind : Spec.attack_kind;
  paper : string;  (** the paper section that motivates the attack *)
  doc : string;
  expected : string;  (** the defence outcome the paper predicts *)
  instantiate :
    attack_at:float ->
    slot_duration:float ->
    prng:Mcc_util.Prng.t ->
    instance;
      (** a fresh instance (fresh mutable state) for one attacker *)
}

val of_kind : Spec.attack_kind -> t
(** The strategy implementing a spec-level attack kind. *)

val catalogue : unit -> t list
(** All six strategies at their default parameters, in
    {!Mcc_core.Spec.attack_kind} declaration order — the table
    EXPERIMENTS.md documents. *)

val member : instance -> Flid.adversary
(** Adapt an instance into a misbehaving FLID session member. *)

(** {1 Bare attacker} *)

type target = {
  tgt_groups : int list;
      (** the attacked session's group addresses, minimal group first *)
  tgt_slot_duration : float;
  tgt_sigma : bool;
      (** [true]: the edge enforces keys, so the attacker drives the
          SIGMA control channel (session-join, key submissions);
          [false]: legacy edge, the attacker just IGMP-joins *)
}

type bare

val launch_bare :
  ?at:float ->
  ?feed:(unit -> Flid.submission list) ->
  Mcc_net.Topology.t ->
  host:Mcc_net.Node.t ->
  prng:Mcc_util.Prng.t ->
  target:target ->
  kind:Spec.attack_kind ->
  instance ->
  bare
(** Start a standalone attacker on [host] at [at] (default 0): group
    handlers feed [on_packet] and the attacker's meter; a slot tick
    evaluates [active] and sends [on_slot]'s submissions through the
    SIGMA client (acks drive [on_key_result]) or translates claims into
    IGMP joins on a legacy edge.  [Spec.Grace_churn] runs its
    join/leave cycle on the control channel instead of submitting keys:
    session-join, hold through the grace window, unsubscribe, rejoin
    next cycle.

    [feed] overrides the [actx_history] the slot tick presents to
    [on_slot] — by default the attacker's own past submissions; a
    collusion harness passes the accomplice's
    {!Mcc_mcast.Flid.receiver_history} here. *)

val bare_meter : bare -> Mcc_util.Meter.t
(** Bytes of attacked-session traffic reaching the attacker's host. *)
