module Spec = Mcc_core.Spec
module Flid = Mcc_mcast.Flid
module Key = Mcc_delta.Key
module Prng = Mcc_util.Prng
module Meter = Mcc_util.Meter
module Sim = Mcc_engine.Sim
module Node = Mcc_net.Node
module Packet = Mcc_net.Packet
module Topology = Mcc_net.Topology
module Multicast = Mcc_net.Multicast
module Client = Mcc_sigma.Client
module Metrics = Mcc_obs.Metrics
module Tracer = Mcc_obs.Tracer
module Timeseries = Mcc_obs.Timeseries
module Json = Mcc_obs.Json
module Prof = Mcc_obs.Prof

type instance = {
  label : string;
  active : time:float -> bool;
  on_slot : Flid.adv_ctx -> Flid.submission list;
  on_packet : time:float -> group:int -> bytes:int -> unit;
  on_key_result : slot:int -> group:int -> accepted:bool -> unit;
}

type t = {
  name : string;
  kind : Spec.attack_kind;
  paper : string;
  doc : string;
  expected : string;
  instantiate :
    attack_at:float -> slot_duration:float -> prng:Prng.t -> instance;
}

let trace ~time event attrs =
  if Tracer.enabled () then
    Tracer.emit ~sim_time:time ~component:"attack.strategy" ~event attrs

let no_packet ~time:_ ~group:_ ~bytes:_ = ()
let no_key_result ~slot:_ ~group:_ ~accepted:_ = ()

(* The inflation submission every claim-everything strategy shares:
   honest entitlement plus one guessed key per uncovered group
   (Flid.inflation_guesses is the paper's Figure 1 misbehaviour). *)
let inflation_submissions ctx =
  let guesses = Flid.inflation_guesses ctx in
  Metrics.tick "attack.submissions";
  Metrics.tick "attack.guesses" ~by:(List.length guesses);
  trace ~time:ctx.Flid.actx_time "inflate" (fun () ->
      [
        ("slot", Json.Int ctx.Flid.actx_slot);
        ("guesses", Json.Int (List.length guesses));
      ]);
  [
    {
      Flid.sub_slot = ctx.Flid.actx_slot;
      sub_pairs = ctx.Flid.actx_entitled @ guesses;
    };
  ]

let persistent =
  {
    name = "inflate";
    kind = Spec.Persistent_inflation;
    paper = "Section 2, Figure 1";
    doc =
      "From the attack time on, claim every group of the session: IGMP-join \
       everything on a plain edge, or submit the honest keys plus one random \
       guess per ineligible group under DELTA.";
    expected =
      "Captures the bottleneck against plain IGMP; DELTA+SIGMA rejects the \
       guessed keys, so the attacker keeps only its entitled level.";
    instantiate =
      (fun ~attack_at ~slot_duration:_ ~prng:_ ->
        {
          label = "inflate";
          active = (fun ~time -> time >= attack_at);
          on_slot = inflation_submissions;
          on_packet = no_packet;
          on_key_result = no_key_result;
        });
  }

let pulse ~period_s ~duty =
  {
    name = "pulse";
    kind = Spec.Pulse_inflation { period_s; duty };
    paper = "Section 3.1.2 (RED averaging)";
    doc =
      "On-off inflation: misbehave for a [duty] fraction of every \
       [period_s]-second cycle, sized near RED's averaging time constant so \
       each burst ends before the smoothed queue estimate fully reacts, then \
       behave until the next cycle.";
    expected =
      "Averages the damage of persistent inflation down by the duty cycle \
       against plain IGMP; DELTA+SIGMA contains every burst the same way it \
       contains persistent inflation.";
    instantiate =
      (fun ~attack_at ~slot_duration:_ ~prng:_ ->
        {
          label = "pulse";
          active =
            (fun ~time ->
              time >= attack_at
              && Float.rem (time -. attack_at) period_s < duty *. period_s);
          on_slot = inflation_submissions;
          on_packet = no_packet;
          on_key_result = no_key_result;
        });
  }

let guess ~budget_per_slot =
  {
    name = "guess";
    kind = Spec.Key_guessing { budget_per_slot };
    paper = "Section 4.1 (key width and guessing)";
    doc =
      "Submit the honest keys plus at most [budget_per_slot] random guesses \
       per slot, round-robin over the ineligible groups, and learn from the \
       router's acks which guesses (with probability 2^-w each) validated.";
    expected =
      "Every guess lands in the router's per-(group, slot) guess tally \
       (sigma.guesses) and rejected-key count; with 16-bit keys the expected \
       payoff is negligible, so the attacker stays at its entitled level.";
    instantiate =
      (fun ~attack_at ~slot_duration:_ ~prng:_ ->
        let cursor = ref 0 in
        let hits = ref 0 in
        {
          label = "guess";
          active = (fun ~time -> time >= attack_at);
          on_slot =
            (fun ctx ->
              let covered = List.map fst ctx.Flid.actx_entitled in
              let uncovered =
                List.filter
                  (fun g -> not (List.mem g covered))
                  ctx.Flid.actx_groups
              in
              let n = List.length uncovered in
              let picks =
                if n = 0 then []
                else
                  List.init
                    (min budget_per_slot n)
                    (fun i -> List.nth uncovered ((!cursor + i) mod n))
              in
              cursor := !cursor + List.length picks;
              let guesses =
                List.map (fun g -> (g, ctx.Flid.actx_fresh_key ())) picks
              in
              Metrics.tick "attack.submissions";
              Metrics.tick "attack.guesses" ~by:(List.length guesses);
              trace ~time:ctx.Flid.actx_time "guess" (fun () ->
                  [
                    ("slot", Json.Int ctx.Flid.actx_slot);
                    ("budget", Json.Int budget_per_slot);
                    ("guesses", Json.Int (List.length guesses));
                    ("hits", Json.Int !hits);
                  ]);
              [
                {
                  Flid.sub_slot = ctx.Flid.actx_slot;
                  sub_pairs = ctx.Flid.actx_entitled @ guesses;
                };
              ]);
          on_packet = no_packet;
          on_key_result =
            (fun ~slot:_ ~group:_ ~accepted -> if accepted then incr hits);
        });
  }

let replay ~lag_slots =
  {
    name = "replay";
    kind = Spec.Stale_replay { lag_slots };
    paper = "Section 3.2.2 (per-slot key expiry)";
    doc =
      "Keep the honest subscription but additionally resubmit, for the \
       current guarded slot, the keys of a submission at least [lag_slots] \
       slots old — trying to renew with yesterday's proof groups the \
       attacker has since lost.";
    expected =
      "Keys are slot-specific, so every replayed pair mismatches the current \
       slot's keys and is rejected (keys_rejected, guess tally); the \
       attacker gains nothing beyond its entitlement.";
    instantiate =
      (fun ~attack_at ~slot_duration:_ ~prng:_ ->
        {
          label = "replay";
          active = (fun ~time -> time >= attack_at);
          on_slot =
            (fun ctx ->
              let honest =
                {
                  Flid.sub_slot = ctx.Flid.actx_slot;
                  sub_pairs = ctx.Flid.actx_entitled;
                }
              in
              let stale =
                List.find_opt
                  (fun (s : Flid.submission) ->
                    s.Flid.sub_pairs <> []
                    && s.Flid.sub_slot <= ctx.Flid.actx_slot - lag_slots)
                  ctx.Flid.actx_history
              in
              Metrics.tick "attack.submissions";
              match stale with
              | None -> [ honest ]
              | Some s ->
                  Metrics.tick "attack.replays";
                  trace ~time:ctx.Flid.actx_time "replay" (fun () ->
                      [
                        ("slot", Json.Int ctx.Flid.actx_slot);
                        ("stale_slot", Json.Int s.Flid.sub_slot);
                        ("pairs", Json.Int (List.length s.Flid.sub_pairs));
                      ]);
                  [
                    honest;
                    {
                      Flid.sub_slot = ctx.Flid.actx_slot;
                      sub_pairs = s.Flid.sub_pairs;
                    };
                  ]);
          on_packet = no_packet;
          on_key_result = no_key_result;
        });
  }

let churn ~period_slots =
  {
    name = "churn";
    kind = Spec.Grace_churn { period_slots };
    paper = "Section 3.2.2 (grace windows and lockout)";
    doc =
      "Join/leave cycling inside SIGMA's session-join grace: join the \
       minimal group keyless, ride the grace window for [period_slots] \
       slots, unsubscribe just before the keyless expiry would lock the \
       interface out, and rejoin immediately.  Runs on the control channel \
       (bare attacker); a legacy edge sees plain IGMP join/leave cycling of \
       every group.";
    expected =
      "The agent charges the same lockout for an early unsubscribe of a \
       still-keyless join grant as for its expiry, so back-to-back grace \
       rides are denied and the attacker averages less than one minimal \
       group.";
    instantiate =
      (fun ~attack_at ~slot_duration:_ ~prng:_ ->
        {
          label = "churn";
          active = (fun ~time -> time >= attack_at);
          (* The cycle acts on the control channel, not on key
             submissions: the bare driver implements it. *)
          on_slot = (fun _ctx -> []);
          on_packet = no_packet;
          on_key_result = no_key_result;
        });
  }

let collude ~colluders =
  {
    name = "collude";
    kind = Spec.Collusion { colluders };
    paper = "Section 4.2 (collusion and interface keys)";
    doc =
      Printf.sprintf
        "%d free-riding hosts replay, slot for slot, the freshest key \
         submission an honest accomplice reconstructed — each trying to \
         open a private copy of the accomplice's whole subscription from \
         its own interface.  Where keys are not enforced the colluders \
         need no accomplice at all and just IGMP-join everything."
        colluders;
    expected =
      "Plain SIGMA honours the replayed keys (aggregate gain = number of \
       colluders); interface-specific keys make a key lifted from another \
       interface fail validation, locking every colluder down to the \
       session-join minimum.";
    instantiate =
      (fun ~attack_at ~slot_duration:_ ~prng:_ ->
        {
          label = "collude";
          active = (fun ~time -> time >= attack_at);
          (* The history of a bare colluder is its accomplice's feed
             ([launch_bare ~feed]); the replayed pairs are valid for
             their slot, just lifted from another interface. *)
          on_slot =
            (fun ctx ->
              match ctx.Flid.actx_history with
              | (s : Flid.submission) :: _ when s.Flid.sub_pairs <> [] ->
                  Metrics.tick "attack.submissions";
                  Metrics.tick "attack.colluder_shares"
                    ~by:(List.length s.Flid.sub_pairs);
                  trace ~time:ctx.Flid.actx_time "collude_replay" (fun () ->
                      [
                        ("slot", Json.Int s.Flid.sub_slot);
                        ("pairs", Json.Int (List.length s.Flid.sub_pairs));
                      ]);
                  [ s ]
              | _ -> []);
          on_packet = no_packet;
          on_key_result = no_key_result;
        });
  }

let of_kind = function
  | Spec.Persistent_inflation -> persistent
  | Spec.Pulse_inflation { period_s; duty } -> pulse ~period_s ~duty
  | Spec.Key_guessing { budget_per_slot } -> guess ~budget_per_slot
  | Spec.Stale_replay { lag_slots } -> replay ~lag_slots
  | Spec.Grace_churn { period_slots } -> churn ~period_slots
  | Spec.Collusion { colluders } -> collude ~colluders

let catalogue () =
  [
    persistent;
    pulse ~period_s:10. ~duty:0.5;
    guess ~budget_per_slot:4;
    replay ~lag_slots:4;
    churn ~period_slots:2.5;
    collude ~colluders:3;
  ]

let member inst =
  {
    Flid.adv_label = inst.label;
    adv_active = inst.active;
    adv_submit = inst.on_slot;
  }

(* --- Bare attacker ------------------------------------------------------ *)

type target = {
  tgt_groups : int list;
  tgt_slot_duration : float;
  tgt_sigma : bool;
}

type bare = { bare_meter : Meter.t }

let bare_meter b = b.bare_meter

let key_matches acked (g, k) =
  List.exists (fun (g', k') -> g' = g && k' = k) acked

let launch_bare ?(at = 0.) ?feed topo ~host ~prng ~target ~kind inst =
  let sim = Topology.sim topo in
  let meter = Meter.create () in
  Timeseries.sample_rate ~scale:0.008 "attack.bare.goodput_kbps" (fun () ->
      float_of_int (Meter.total_bytes meter));
  List.iter
    (fun group ->
      Node.subscribe_local host ~group (fun pkt ->
          let time = Sim.now sim in
          Meter.record meter ~time ~bytes:pkt.Packet.size;
          inst.on_packet ~time ~group ~bytes:pkt.Packet.size))
    target.tgt_groups;
  let minimal = List.hd target.tgt_groups in
  let slot_d = target.tgt_slot_duration in
  let client =
    if target.tgt_sigma then Some (Client.create topo ~host) else None
  in
  let joined = ref false in
  let join_all () =
    if not !joined then begin
      joined := true;
      List.iter
        (fun group -> Multicast.host_join topo ~host ~group)
        target.tgt_groups
    end
  in
  let leave_all () =
    if !joined then begin
      joined := false;
      List.iter
        (fun group -> Multicast.host_leave topo ~host ~group)
        target.tgt_groups
    end
  in
  let history = ref [] in
  let submit client subs =
    List.iter
      (fun (s : Flid.submission) ->
        if s.Flid.sub_pairs <> [] then begin
          Client.subscribe client ~slot:s.Flid.sub_slot ~pairs:s.Flid.sub_pairs;
          history := s :: List.filteri (fun i _ -> i < 15) !history;
          (* Observe the verdicts one slot later through the ack state
             the client accumulated (snooped Sub_acks). *)
          Sim.post_after sim ~delay:slot_d (fun () ->
                 let acked = Client.acked_pairs client ~slot:s.Flid.sub_slot in
                 List.iter
                   (fun pair ->
                     inst.on_key_result ~slot:s.Flid.sub_slot ~group:(fst pair)
                       ~accepted:(key_matches acked pair))
                   s.Flid.sub_pairs)
        end)
      subs
  in
  (match (kind, client) with
  | Spec.Grace_churn { period_slots }, _ ->
      (* The churn cycle: grab traffic for [hold] seconds, release it
         just before the keyless grant would expire, rejoin at the next
         cycle boundary. *)
      let period = Float.max slot_d (period_slots *. slot_d) in
      let hold = Float.max (0.5 *. slot_d) (period -. (0.25 *. slot_d)) in
      ignore
        (Sim.every sim ~start:at ~period (fun () ->
             let sp = Prof.span "attack" in
             let time = Sim.now sim in
             (if inst.active ~time then begin
               Metrics.tick "attack.churn_cycles";
               trace ~time "churn_join" (fun () ->
                   [ ("hold_s", Json.Float hold) ]);
               (match client with
               | Some client -> Client.session_join client ~group:minimal
               | None -> join_all ());
               Sim.post_after sim ~delay:hold (fun () ->
                      trace ~time:(Sim.now sim) "churn_leave" (fun () -> []);
                      match client with
                      | Some client ->
                          Client.unsubscribe client ~groups:[ minimal ]
                      | None -> leave_all ())
             end);
             Prof.finish sp))
  | _, None ->
      (* Legacy IGMP edge: claiming a group is joining it. *)
      ignore
        (Sim.every sim ~start:at ~period:slot_d (fun () ->
             let sp = Prof.span "attack" in
             let time = Sim.now sim in
             (if inst.active ~time then begin
                if not !joined then begin
                  Metrics.tick "attack.submissions";
                  trace ~time "igmp_join_all" (fun () ->
                      [ ("groups", Json.Int (List.length target.tgt_groups)) ])
                end;
                join_all ()
              end
              else leave_all ());
             Prof.finish sp))
  | _, Some client ->
      ignore
        (Sim.every sim ~start:at ~period:slot_d (fun () ->
             let sp = Prof.span "attack" in
             let time = Sim.now sim in
             (if inst.active ~time then begin
               (* Keep knocking on the session door: ignored while the
                  interface is locked out, otherwise worth a grace
                  window. *)
               Client.session_join client ~group:minimal;
               let ctx =
                 {
                   Flid.actx_time = time;
                   actx_slot = int_of_float (time /. slot_d) + 1;
                   actx_entitled = [];
                   actx_groups = target.tgt_groups;
                   actx_fresh_key =
                     (fun () -> Key.nonce prng ~width:Key.default_width);
                   actx_history =
                     (match feed with Some f -> f () | None -> !history);
                 }
               in
               submit client (inst.on_slot ctx)
             end);
             Prof.finish sp)))
  |> ignore;
  { bare_meter = meter }
