(** Markdown scorecard over a matrix run: one table per protocol
    (attack rows × defence columns, each cell a containment verdict
    with the damage metrics), a per-attack ranking of defences, and the
    headline claim — whether DELTA+SIGMA contained every attack.

    Rows that are not adversary cells are ignored, so the scorecard can
    be fed a mixed batch.  Output is deterministic: same rows, same
    bytes. *)

val verdict : Mcc_core.Experiments.adversary_result -> string
(** One cell's verdict, e.g. ["contained 12s (gain 0.3x, honest -2%)"]
    or ["BREACH (gain 3.1x, honest -64%)"]. *)

val render : Format.formatter -> Mcc_core.Runner.row list -> unit

val to_string : Mcc_core.Runner.row list -> string
