(* Pluggable event-scheduler backends.

   The simulator's hot path is push/pop on a priority queue keyed by
   (time, seq): time orders events, the insertion sequence number breaks
   ties first-in first-out.  Every backend implements exactly that
   contract, so schedules are byte-identical no matter which backend a
   run selects — the choice is purely a performance knob. *)

module type S = sig
  val name : string

  type 'a t

  val create : unit -> 'a t
  val is_empty : 'a t -> bool
  val size : 'a t -> int
  val push : 'a t -> time:float -> 'a -> unit
  val peek_time : 'a t -> float option
  val pop : 'a t -> (float * 'a) option

  val pop_into : 'a t -> float ref -> 'a -> 'a
  (** [pop_into t cell default] pops the earliest event, writing its
      time into [cell] and returning its value, or returns [default]
      with [cell] untouched when empty.  Same order as {!pop}, but
      allocation-free: the float lands in the ref's unboxed field and
      no option or tuple is built — the simulator's hot loop runs on
      this with a sentinel as [default]. *)

  val next_before : 'a t -> float -> bool
  (** [next_before t bound] is true iff the queue is non-empty and the
      earliest time is [<= bound] — {!peek_time} for bounded loops,
      without the option/boxed-float allocation. *)

  val pop_before : 'a t -> float ref -> bound:float -> 'a -> 'a
  (** [pop_before t cell ~bound default] is {!pop_into} restricted to
      events at time [<= bound]: the {!next_before}/{!pop_into} pair of
      a bounded run loop fused into one call, peeking the key exactly
      once per event. *)

  val clear : 'a t -> unit
  val capacity : 'a t -> int

  val stats : 'a t -> Mcc_obs.Profile.sched_stats
  (** Backend introspection: push/occupancy counters, the capacity
      trajectory, and (wheel) bucket-placement histogram and free-list
      hit rates.  All counts are of simulated work — deterministic for
      a deterministic schedule.  The engine-side [pool_*] fields are 0
      here; {!Sim} fills them in before publishing. *)
end

let nan_message = "Scheduler.push: NaN time"

module Heap = struct
  let name = "heap"
  let initial_capacity = 64

  (* Unboxed parallel arrays: [times] is a flat float array (OCaml
     unboxes float arrays), [seqs] a flat int array, so the only
     allocation a push performs is the amortised storage doubling.  The
     previous representation ('a entry option array) boxed an option and
     an entry record per element and re-boxed the whole heap through
     Array.append on every growth. *)
  type 'a t = {
    mutable times : float array;
    mutable seqs : int array;
    mutable values : 'a array;
    mutable len : int;
    mutable next_seq : int;
    mutable max_len : int;
    mutable growth_caps : int list;  (** newest first; reversed by [stats] *)
  }

  let create () =
    {
      times = [||];
      seqs = [||];
      values = [||];
      len = 0;
      next_seq = 0;
      max_len = 0;
      growth_caps = [];
    }

  let is_empty t = t.len = 0
  let size t = t.len
  let capacity t = Array.length t.times

  let[@hot] before t i j =
    let ti = t.times.(i) and tj = t.times.(j) in
    if ti < tj then true
    else if tj < ti then false
    else t.seqs.(i) < t.seqs.(j)

  let[@hot] swap t i j =
    let time = t.times.(i) and seq = t.seqs.(i) and value = t.values.(i) in
    t.times.(i) <- t.times.(j);
    t.seqs.(i) <- t.seqs.(j);
    t.values.(i) <- t.values.(j);
    t.times.(j) <- time;
    t.seqs.(j) <- seq;
    t.values.(j) <- value

  let[@hot] rec sift_up t i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if before t i parent then begin
        swap t i parent;
        sift_up t parent
      end
    end

  (* Immutable selection, not a [ref] accumulator: a sift runs once per
     pop, and an int ref cell per call is minor-heap traffic the
     hot-alloc rule now rejects. *)
  let[@hot] rec sift_down t i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let smallest = if l < t.len && before t l i then l else i in
    let smallest = if r < t.len && before t r smallest then r else smallest in
    if smallest <> i then begin
      swap t i smallest;
      sift_down t smallest
    end

  (* Grow in place: allocate the doubled arrays once and blit.  The
     [values] filler is the value being pushed — a sentinel that every
     slot >= len holds until overwritten, never observed. *)
  let grow t filler =
    let cap = Array.length t.times in
    let cap' = if cap = 0 then initial_capacity else 2 * cap in
    let times' = Array.make cap' 0. in
    let seqs' = Array.make cap' 0 in
    let values' = Array.make cap' filler in
    Array.blit t.times 0 times' 0 t.len;
    Array.blit t.seqs 0 seqs' 0 t.len;
    Array.blit t.values 0 values' 0 t.len;
    t.times <- times';
    t.seqs <- seqs';
    t.values <- values';
    t.growth_caps <- cap' :: t.growth_caps

  let[@hot] push t ~time value =
    if Float.is_nan time then invalid_arg nan_message;
    if t.len = Array.length t.times then
      (* lint: allow hot-alloc — amortised doubling, not steady state *)
      grow t value;
    let i = t.len in
    t.times.(i) <- time;
    t.seqs.(i) <- t.next_seq;
    t.values.(i) <- value;
    t.next_seq <- t.next_seq + 1;
    t.len <- t.len + 1;
    if t.len > t.max_len then t.max_len <- t.len;
    sift_up t i

  let peek_time t = if t.len = 0 then None else Some t.times.(0)

  let pop t =
    if t.len = 0 then None
    else begin
      let time = t.times.(0) and value = t.values.(0) in
      let last = t.len - 1 in
      t.times.(0) <- t.times.(last);
      t.seqs.(0) <- t.seqs.(last);
      t.values.(0) <- t.values.(last);
      (* values.(last) still aliases the element just moved to the root,
         which is live anyway — no stale retention beyond one slot. *)
      t.len <- last;
      if last > 0 then sift_down t 0;
      Some (time, value)
    end

  let[@hot] pop_into t cell default =
    if t.len = 0 then default
    else begin
      let time = t.times.(0) and value = t.values.(0) in
      let last = t.len - 1 in
      t.times.(0) <- t.times.(last);
      t.seqs.(0) <- t.seqs.(last);
      t.values.(0) <- t.values.(last);
      t.len <- last;
      if last > 0 then sift_down t 0;
      cell := time;
      value
    end

  let[@hot] next_before t bound = t.len > 0 && t.times.(0) <= bound

  let[@hot] pop_before t cell ~bound default =
    if t.len = 0 || t.times.(0) > bound then default
    else pop_into t cell default

  (* A cleared queue is as good as new: sequence numbers restart (a
     queue reused across thousands of batch runs never overflows them)
     and the storage is dropped outright — capacity returns to 0 and is
     lazily re-grown on the next push — so a reused queue keeps neither
     the high-water allocation nor references to popped values. *)
  let clear t =
    t.times <- [||];
    t.seqs <- [||];
    t.values <- [||];
    t.len <- 0;
    t.next_seq <- 0;
    t.max_len <- 0;
    t.growth_caps <- []

  (* next_seq increments exactly once per push, so it doubles as the
     push counter. *)
  let stats t =
    {
      Mcc_obs.Profile.pushes = t.next_seq;
      max_size = t.max_len;
      capacities = List.rev t.growth_caps;
      level_places = [];
      overflow = 0;
      drain_inserts = 0;
      free_hits = 0;
      free_misses = 0;
      pool_hits = 0;
      pool_misses = 0;
    }
end

module Wheel = struct
  let name = "wheel"

  (* Hierarchical timing wheel, htsim-style: float times are quantised
     to integer microticks at enqueue and the tick picks a bucket in one
     of [levels] wheels.  Level 0 is deliberately wide (2^13 one-tick
     slots, ~8.2 simulated milliseconds) so that typical event horizons
     — timer periods, RTTs, slot durations — place directly at the
     bottom and rarely pay a cascade; levels 1-3 add 2^8 slots each of
     geometrically coarser width, for a horizon of 2^37 microticks
     (~38 simulated hours) before spilling into the overflow list.

     Quantisation is bucketing only: every cell carries its original
     float time, a bucket is sorted by (time, seq) as it is loaded into
     the drain, and pop returns the float time — so the pop sequence is
     byte-identical to the heap's even when quantisation collapses
     distinct times into one tick.

     Cells live in unboxed parallel arrays (same representation trick
     as {!Heap}) and chains are index-linked through [nexts] with -1 as
     nil, so a push in steady state allocates nothing: a popped cell's
     index goes onto an internal free list and is reused by a later
     push.  The one cost of that reuse is that a free slot keeps its
     last value reachable until it is overwritten — bounded by the
     store's high-water mark, and dropped entirely by [clear]. *)
  let ticks_per_sec = 1_000_000.
  let levels = 4

  (* Level widths: 13 bits at level 0, 8 at each level above.
     [shift_of k] is the cumulative width below level k (so a level-k
     slot spans 2^(shift_of k) ticks), [top_of k] the cumulative width
     through it, [offset_of k] the level's start in the flat slot
     array.  Closed forms, not tables: the linter bans module-level
     array literals, and the multiplies constant-fold anyway. *)
  let shift_of k = if k = 0 then 0 else (8 * k) + 5
  let top_of k = (8 * k) + 13
  let mask_of k = if k = 0 then 8191 else 255
  let offset_of k = if k = 0 then 0 else 8192 + (256 * (k - 1))
  let total_slots = 8960
  let nil = -1
  let initial_capacity = 64

  type 'a t = {
    slots : int array;  (** bucket heads into the cell store; [nil] = empty *)
    level_count : int array;
    mutable cur : int;  (** cursor: no wheel-resident cell has a smaller tick *)
    mutable wheel_count : int;  (** cells resident in [slots] *)
    mutable overflow : int;  (** ticks beyond the top level's horizon *)
    mutable overflow_count : int;
    mutable drain : int;  (** current tick's cells, sorted by (time, seq) *)
    mutable drain_tick : int;  (** -1 until the first bucket is drained *)
    mutable size : int;  (** total events, drain and overflow included *)
    mutable next_seq : int;
    (* cell store: parallel arrays indexed by cell, chained by [nexts] *)
    mutable times : float array;
    mutable seqs : int array;
    mutable ticks : int array;
    mutable nexts : int array;
    mutable values : 'a array;
    mutable free : int;  (** head of the free-slot chain through [nexts] *)
    mutable scratch : int array;  (** reused by the drain sort *)
    (* introspection counters (simulated work only — deterministic) *)
    mutable max_size : int;
    places : int array;  (** placements per level, cascades included *)
    mutable overflow_places : int;
    mutable drain_inserted : int;
    mutable free_hits : int;  (** cell allocs served by the free list *)
    mutable free_misses : int;  (** cell allocs that forced a store growth *)
    mutable growth_caps : int list;  (** newest first; reversed by [stats] *)
  }

  let create () =
    {
      slots = Array.make total_slots nil;
      level_count = Array.make levels 0;
      cur = 0;
      wheel_count = 0;
      overflow = nil;
      overflow_count = 0;
      drain = nil;
      drain_tick = -1;
      size = 0;
      next_seq = 0;
      times = [||];
      seqs = [||];
      ticks = [||];
      nexts = [||];
      values = [||];
      free = nil;
      scratch = [||];
      max_size = 0;
      places = Array.make levels 0;
      overflow_places = 0;
      drain_inserted = 0;
      free_hits = 0;
      free_misses = 0;
      growth_caps = [];
    }

  let is_empty t = t.size = 0
  let size t = t.size

  (* Fixed slot table plus the cell store's high-water mark. *)
  let capacity t = total_slots + Array.length t.times

  let[@hot] tick_of_time time =
    let scaled = time *. ticks_per_sec in
    if scaled >= float_of_int max_int then max_int else int_of_float scaled

  (* Double the cell store (same in-place growth as {!Heap.grow}) and
     thread the new slots onto the free list. *)
  let grow t filler =
    let cap = Array.length t.times in
    let cap' = if cap = 0 then initial_capacity else 2 * cap in
    let times' = Array.make cap' 0. in
    let seqs' = Array.make cap' 0 in
    let ticks' = Array.make cap' 0 in
    let nexts' = Array.make cap' nil in
    let values' = Array.make cap' filler in
    Array.blit t.times 0 times' 0 cap;
    Array.blit t.seqs 0 seqs' 0 cap;
    Array.blit t.ticks 0 ticks' 0 cap;
    Array.blit t.nexts 0 nexts' 0 cap;
    Array.blit t.values 0 values' 0 cap;
    for i = cap to cap' - 2 do
      nexts'.(i) <- i + 1
    done;
    nexts'.(cap' - 1) <- t.free;
    t.free <- cap;
    t.times <- times';
    t.seqs <- seqs';
    t.ticks <- ticks';
    t.nexts <- nexts';
    t.values <- values';
    t.growth_caps <- cap' :: t.growth_caps

  let[@hot] alloc_cell t ~time ~tick value =
    if t.free = nil then begin
      (* lint: allow hot-alloc — amortised doubling, not steady state *)
      grow t value;
      t.free_misses <- t.free_misses + 1
    end
    else t.free_hits <- t.free_hits + 1;
    let i = t.free in
    t.free <- t.nexts.(i);
    t.times.(i) <- time;
    t.seqs.(i) <- t.next_seq;
    t.ticks.(i) <- tick;
    t.values.(i) <- value;
    t.next_seq <- t.next_seq + 1;
    i

  let[@hot] free_cell t i =
    t.nexts.(i) <- t.free;
    t.free <- i

  (* Place a cell by the alignment invariant: level k holds exactly the
     cells whose tick shares the cursor's prefix above level k but not
     its level-k prefix (those live lower).  The invariant is restored
     top-down as the cursor crosses slot boundaries, by cascading the
     entered slot's chain down a level before trusting the levels below.

     Chains are unordered (a slot prepends): level-0 buckets are sorted
     as they load into the drain, and higher-level chains are re-placed
     by a cascade before they can drain. *)
  let[@hot] rec place_level t tick k =
    if k >= levels then -1
    else if tick lsr top_of k = t.cur lsr top_of k then k
    else place_level t tick (k + 1)

  let[@hot] place t i =
    let tick = t.ticks.(i) in
    match place_level t tick 0 with
    | -1 ->
        t.nexts.(i) <- t.overflow;
        t.overflow <- i;
        t.overflow_count <- t.overflow_count + 1;
        t.overflow_places <- t.overflow_places + 1
    | k ->
        let idx = offset_of k + ((tick lsr shift_of k) land mask_of k) in
        t.nexts.(i) <- t.slots.(idx);
        t.slots.(idx) <- i;
        t.level_count.(k) <- t.level_count.(k) + 1;
        t.wheel_count <- t.wheel_count + 1;
        t.places.(k) <- t.places.(k) + 1

  (* Detach a chain and re-place each cell (used by cascades and
     overflow migration; [place] rewrites each cell's link). *)
  let replace_chain t head =
    let i = ref head in
    while !i <> nil do
      let next = t.nexts.(!i) in
      place t !i;
      i := next
    done

  (* Cell [a] sorts strictly before cell [b] under (time, seq). *)
  let[@hot] cell_before t a b =
    let ta = t.times.(a) and tb = t.times.(b) in
    if ta < tb then true
    else if tb < ta then false
    else t.seqs.(a) < t.seqs.(b)

  (* Load a same-tick bucket into the drain in (time, seq) order: copy
     the chain's indices into the reused scratch buffer, heapsort them
     (in place, allocation-free, and O(k log k) even for pathological
     buckets where every event shares a tick), and relink.  seq is
     unique so the order is total; NaN times are rejected at push. *)
  let load_drain_multi t head =
    let n = ref 0 in
    let i = ref head in
    while !i <> nil do
      if !n >= Array.length t.scratch then begin
        let grown =
          Array.make (Stdlib.max 64 (2 * Array.length t.scratch)) 0
        in
        Array.blit t.scratch 0 grown 0 !n;
        t.scratch <- grown
      end;
      t.scratch.(!n) <- !i;
      incr n;
      i := t.nexts.(!i)
    done;
    let n = !n in
    let a = t.scratch in
    (* heapsort on a.(0 .. n-1), max-heap so the array ends ascending *)
    let sift root len =
      let r = ref root in
      let continue = ref true in
      while !continue do
        let l = (2 * !r) + 1 in
        if l >= len then continue := false
        else begin
          let child =
            if l + 1 < len && cell_before t a.(l) a.(l + 1) then l + 1 else l
          in
          if cell_before t a.(!r) a.(child) then begin
            let tmp = a.(!r) in
            a.(!r) <- a.(child);
            a.(child) <- tmp;
            r := child
          end
          else continue := false
        end
      done
    in
    for root = (n / 2) - 1 downto 0 do
      sift root n
    done;
    for last = n - 1 downto 1 do
      let tmp = a.(0) in
      a.(0) <- a.(last);
      a.(last) <- tmp;
      sift 0 last
    done;
    for j = 0 to n - 2 do
      t.nexts.(a.(j)) <- a.(j + 1)
    done;
    if n > 0 then begin
      t.nexts.(a.(n - 1)) <- nil;
      t.drain <- a.(0)
    end
    else t.drain <- nil

  (* Single-cell buckets (the common case at realistic densities) skip
     the scratch/heapsort machinery entirely. *)
  let[@hot] load_drain t head =
    if head <> nil && t.nexts.(head) = nil then t.drain <- head
    else load_drain_multi t head

  (* Walk to the insertion point for cell [i] and splice it in after
     [prev].  Tail-recursive (a loop after compilation), so pathological
     same-tick chains cost time, never stack — and no [ref] cursor. *)
  let[@hot] rec drain_insert_after t prev i =
    if t.nexts.(prev) <> nil && cell_before t t.nexts.(prev) i then
      drain_insert_after t t.nexts.(prev) i
    else begin
      t.nexts.(i) <- t.nexts.(prev);
      t.nexts.(prev) <- i
    end

  (* Cells that land on the tick currently being drained must
     interleave with the not-yet-popped drain cells exactly as the heap
     would order them: sorted insertion. *)
  let[@hot] drain_insert t i =
    if t.drain = nil || cell_before t i t.drain then begin
      t.nexts.(i) <- t.drain;
      t.drain <- i
    end
    else drain_insert_after t t.drain i

  let[@hot] push t ~time value =
    if Float.is_nan time then invalid_arg nan_message;
    if time < 0. then invalid_arg "Scheduler.push: negative time (wheel)";
    let tick = tick_of_time time in
    let i = alloc_cell t ~time ~tick value in
    t.size <- t.size + 1;
    if t.size > t.max_size then t.max_size <- t.size;
    if tick <= t.drain_tick then begin
      drain_insert t i;
      t.drain_inserted <- t.drain_inserted + 1
    end
    else place t i

  (* The wheel proper is empty: rebase the cursor on the earliest
     overflow tick and re-place every overflow cell (the earliest lands
     in the wheel by construction). *)
  let migrate_overflow t =
    let min_tick = ref max_int in
    let i = ref t.overflow in
    while !i <> nil do
      if t.ticks.(!i) < !min_tick then min_tick := t.ticks.(!i);
      i := t.nexts.(!i)
    done;
    t.cur <- !min_tick;
    let chain = t.overflow in
    t.overflow <- nil;
    t.overflow_count <- 0;
    replace_chain t chain

  (* Find the earliest occupied bucket and load it into the drain.
     Precondition: drain empty, size > 0.  Scans the lowest non-empty
     level from the cursor's slot upward — residents of level k always
     live in the cursor's current span at slot indices >= the cursor's
     own, so a linear scan visits them in tick order and cannot come up
     empty.  Finding a slot at level >= 1 cascades its chain down one
     level and rescans from the bottom. *)
  let[@hot] rec chain_len t i acc =
    if i = nil then acc else chain_len t t.nexts.(i) (acc + 1)

  (* Level-0 slot scan: shift 0, offset 0, mask 8191 folded to
     constants. *)
  let[@hot] rec scan0 t idx =
    if idx > 8191 then assert false
    else if t.slots.(idx) = nil then scan0 t (idx + 1)
    else idx

  let[@hot] rec scan_level t base mask idx =
    if idx > mask then assert false
    else if t.slots.(base + idx) = nil then scan_level t base mask (idx + 1)
    else idx

  (* Lifted out of [advance] so the per-pop path defines no closures:
     the scans, the chain count, and the level loop are all module-level
     tail calls over [t]'s flat arrays. *)
  let[@hot] rec advance_from t k =
    if k >= levels then assert false
    else if t.level_count.(k) = 0 then advance_from t (k + 1)
    else if k = 0 then begin
      (* Level-0 fast path: the overwhelmingly common single-cell bucket
         loads the drain without any chain walk or sort. *)
      let idx = scan0 t (t.cur land 8191) in
      let chain = t.slots.(idx) in
      t.slots.(idx) <- nil;
      t.cur <- ((t.cur lsr 13) lsl 13) lor idx;
      t.drain_tick <- t.cur;
      if t.nexts.(chain) = nil then begin
        t.level_count.(0) <- t.level_count.(0) - 1;
        t.wheel_count <- t.wheel_count - 1;
        t.drain <- chain
      end
      else begin
        let n = chain_len t chain 0 in
        t.level_count.(0) <- t.level_count.(0) - n;
        t.wheel_count <- t.wheel_count - n;
        load_drain t chain
      end
    end
    else begin
      let shift = shift_of k in
      let base = offset_of k in
      let mask = mask_of k in
      let idx = scan_level t base mask ((t.cur lsr shift) land mask) in
      let chain = t.slots.(base + idx) in
      t.slots.(base + idx) <- nil;
      let n = chain_len t chain 0 in
      t.level_count.(k) <- t.level_count.(k) - n;
      t.wheel_count <- t.wheel_count - n;
      let span = top_of k in
      t.cur <- ((t.cur lsr span) lsl span) lor (idx lsl shift);
      replace_chain t chain;
      advance_from t 0
    end

  let[@hot] advance t =
    if t.wheel_count = 0 then migrate_overflow t;
    advance_from t 0

  let pop t =
    if t.size = 0 then None
    else begin
      if t.drain = nil then advance t;
      let i = t.drain in
      let time = t.times.(i) and value = t.values.(i) in
      t.drain <- t.nexts.(i);
      t.size <- t.size - 1;
      free_cell t i;
      Some (time, value)
    end

  let[@hot] pop_into t cell default =
    if t.size = 0 then default
    else begin
      if t.drain = nil then advance t;
      let i = t.drain in
      let value = t.values.(i) in
      cell := t.times.(i);
      t.drain <- t.nexts.(i);
      t.size <- t.size - 1;
      free_cell t i;
      value
    end

  let peek_time t =
    if t.size = 0 then None
    else begin
      if t.drain = nil then advance t;
      Some t.times.(t.drain)
    end

  let[@hot] next_before t bound =
    t.size > 0
    && begin
         if t.drain = nil then advance t;
         t.times.(t.drain) <= bound
       end

  let[@hot] pop_before t cell ~bound default =
    if t.size = 0 then default
    else begin
      if t.drain = nil then advance t;
      let i = t.drain in
      let time = t.times.(i) in
      if time > bound then default
      else begin
        let value = t.values.(i) in
        cell := time;
        t.drain <- t.nexts.(i);
        t.size <- t.size - 1;
        free_cell t i;
        value
      end
    end

  let clear t =
    Array.fill t.slots 0 total_slots nil;
    Array.fill t.level_count 0 levels 0;
    t.cur <- 0;
    t.wheel_count <- 0;
    t.overflow <- nil;
    t.overflow_count <- 0;
    t.drain <- nil;
    t.drain_tick <- -1;
    t.size <- 0;
    t.next_seq <- 0;
    t.times <- [||];
    t.seqs <- [||];
    t.ticks <- [||];
    t.nexts <- [||];
    t.values <- [||];
    t.free <- nil;
    t.scratch <- [||];
    t.max_size <- 0;
    Array.fill t.places 0 levels 0;
    t.overflow_places <- 0;
    t.drain_inserted <- 0;
    t.free_hits <- 0;
    t.free_misses <- 0;
    t.growth_caps <- []

  let stats t =
    {
      Mcc_obs.Profile.pushes = t.next_seq;
      max_size = t.max_size;
      capacities = List.rev t.growth_caps;
      level_places = Array.to_list t.places;
      overflow = t.overflow_places;
      drain_inserts = t.drain_inserted;
      free_hits = t.free_hits;
      free_misses = t.free_misses;
      pool_hits = 0;
      pool_misses = 0;
    }
end

type backend = (module S)

let heap : backend = (module Heap)
let wheel : backend = (module Wheel)
let all = [ heap; wheel ]
let backend_name (module B : S) = B.name

let of_name s =
  match String.lowercase_ascii s with
  | "heap" -> Ok heap
  | "wheel" -> Ok wheel
  | other ->
      Error
        (Printf.sprintf "unknown scheduler backend %S (expected heap or wheel)"
           other)

(* The domain-local default backend.  Worker domains start from the
   initializer (heap), so batch drivers that honour a --sched flag set
   the default inside the worker body, not before spawning. *)
let default_key = Domain.DLS.new_key (fun () -> heap)
let default () = Domain.DLS.get default_key
let set_default b = Domain.DLS.set default_key b

type 'a queue = {
  push : time:float -> 'a -> unit;
  pop : unit -> (float * 'a) option;
  pop_into : float ref -> 'a -> 'a;
  pop_before : float ref -> bound:float -> 'a -> 'a;
  peek_time : unit -> float option;
  next_before : float -> bool;
  size : unit -> int;
  is_empty : unit -> bool;
  clear : unit -> unit;
  capacity : unit -> int;
  stats : unit -> Mcc_obs.Profile.sched_stats;
  backend : string;
}

let instantiate (module B : S) () =
  let q = B.create () in
  {
    push = (fun ~time v -> B.push q ~time v);
    pop = (fun () -> B.pop q);
    pop_into = (fun cell default -> B.pop_into q cell default);
    pop_before = (fun cell ~bound default -> B.pop_before q cell ~bound default);
    peek_time = (fun () -> B.peek_time q);
    next_before = (fun bound -> B.next_before q bound);
    size = (fun () -> B.size q);
    is_empty = (fun () -> B.is_empty q);
    clear = (fun () -> B.clear q);
    capacity = (fun () -> B.capacity q);
    stats = (fun () -> B.stats q);
    backend = B.name;
  }
