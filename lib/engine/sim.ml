module Metrics = Mcc_obs.Metrics

type handle = { mutable cancelled : bool; mutable fire : unit -> unit }

type t = {
  queue : handle Event_queue.t;
  mutable clock : float;
  mutable executed : int;
  (* Telemetry handles, fetched at creation so the hot loop never does a
     registry lookup; [reported] makes the flush incremental, so several
     sims in one domain sum into "engine.events". *)
  events_metric : Metrics.counter;
  queue_capacity_metric : Metrics.gauge;
  mutable reported : int;
}

(* Called when a run returns to its driver, not per event: the hot loop
   carries zero instrumentation cost. *)
let flush_metrics t =
  Metrics.incr t.events_metric ~by:(t.executed - t.reported);
  t.reported <- t.executed;
  Metrics.set t.queue_capacity_metric
    (float_of_int (Event_queue.capacity t.queue))
let now t = t.clock

let schedule t ~at f =
  if at < t.clock then
    invalid_arg
      (Printf.sprintf "Sim.schedule: at=%g is before now=%g" at t.clock);
  let h = { cancelled = false; fire = f } in
  Event_queue.push t.queue ~time:at h;
  h

let schedule_after t ~delay f =
  if delay < 0. then invalid_arg "Sim.schedule_after: negative delay";
  schedule t ~at:(t.clock +. delay) f

let cancel h = h.cancelled <- true
let cancelled h = h.cancelled

let every t ~start ~period f =
  if period <= 0. then invalid_arg "Sim.every: period <= 0";
  (* The outer handle stands for the whole periodic task: cancelling it
     prevents both the pending tick and all future rescheduling. *)
  let outer = { cancelled = false; fire = (fun () -> ()) } in
  let rec tick at () =
    if not outer.cancelled then begin
      f ();
      if not outer.cancelled then begin
        let next = at +. period in
        ignore (schedule t ~at:next (tick next))
      end
    end
  in
  outer.fire <- (fun () -> ());
  ignore (schedule t ~at:start (tick start));
  outer

let create () =
  let t =
    {
      queue = Event_queue.create ();
      clock = 0.;
      executed = 0;
      events_metric = Metrics.counter "engine.events";
      queue_capacity_metric = Metrics.gauge "engine.queue_capacity";
      reported = 0;
    }
  in
  (* The time-series clock hook: mcc_obs cannot depend on the engine, so
     the dependency is inverted — when this domain has sampling enabled
     ([Timeseries.enable ~dt]), the sim drives [Timeseries.sample_all]
     through its own queue at that period.  Installed here, not lazily,
     so the sample times of a spec are identical no matter which
     components later register samplers. *)
  (match Mcc_obs.Timeseries.dt () with
  | Some period ->
      ignore
        (every t ~start:0. ~period (fun () ->
             Mcc_obs.Timeseries.sample_all ~time:t.clock))
  | None -> ());
  t

let step t =
  match Event_queue.pop t.queue with
  | None -> false
  | Some (time, h) ->
      t.clock <- time;
      if not h.cancelled then begin
        t.executed <- t.executed + 1;
        h.fire ()
      end;
      true

let run_until t horizon =
  let rec loop () =
    match Event_queue.peek_time t.queue with
    | Some time when time <= horizon ->
        ignore (step t);
        loop ()
    | Some _ | None -> ()
  in
  loop ();
  t.clock <- max t.clock horizon;
  flush_metrics t

let run t =
  while step t do
    ()
  done;
  flush_metrics t

let events_executed t = t.executed
let queue_capacity t = Event_queue.capacity t.queue
