module Metrics = Mcc_obs.Metrics

type handle = {
  mutable cancelled : bool;
  mutable fire : unit -> unit;
  (* [post]ed handles never escape to a caller, so the sim recycles
     them through an internal pool after they fire. *)
  mutable recycle : bool;
}

let noop () = ()

type t = {
  queue : handle Scheduler.queue;
  mutable clock : float;
  mutable executed : int;
  (* Hot-loop scratch: [pop_into] writes the event time into
     [time_cell] (an unboxed store) and returns [sentinel] when the
     queue is empty, so a step allocates nothing. *)
  time_cell : float ref;
  sentinel : handle;
  (* Free list of recyclable handles: [post]/[post_after] reuse fired
     records, so steady-state fire-and-forget scheduling allocates
     nothing.  Stack-backed; the sentinel fills the unused slots. *)
  mutable pool : handle array;
  mutable pool_len : int;
  mutable pool_hits : int;
  mutable pool_misses : int;
  (* Telemetry handles, fetched at creation so the hot loop never does a
     registry lookup; [reported] makes the flush incremental, so several
     sims in one domain sum into "engine.events". *)
  events_metric : Metrics.counter;
  queue_capacity_metric : Metrics.gauge;
  backend_capacity_metric : Metrics.gauge;
  mutable reported : int;
}

(* Called when a run returns to its driver, not per event: the hot loop
   carries zero instrumentation cost. *)
let flush_metrics t =
  Metrics.incr t.events_metric ~by:(t.executed - t.reported);
  t.reported <- t.executed;
  let capacity = float_of_int (t.queue.Scheduler.capacity ()) in
  Metrics.set t.queue_capacity_metric capacity;
  Metrics.set t.backend_capacity_metric capacity;
  (* Park the backend probe (plus this sim's handle-pool counters) for
     whoever builds the run profile on this domain. *)
  Mcc_obs.Profile.note_sched_stats
    {
      (t.queue.Scheduler.stats ()) with
      Mcc_obs.Profile.pool_hits = t.pool_hits;
      pool_misses = t.pool_misses;
    }

let now t = t.clock
let sched_name t = t.queue.Scheduler.backend

let schedule t ~at f =
  if at < t.clock then
    invalid_arg
      (Printf.sprintf "Sim.schedule: at=%g is before now=%g" at t.clock);
  let h = { cancelled = false; fire = f; recycle = false } in
  t.queue.Scheduler.push ~time:at h;
  h

let schedule_after t ~delay f =
  if delay < 0. then invalid_arg "Sim.schedule_after: negative delay";
  schedule t ~at:(t.clock +. delay) f

let[@hot] take_handle t f =
  if t.pool_len = 0 then begin
    t.pool_misses <- t.pool_misses + 1;
    (* lint: allow hot-alloc — pool miss builds the record being pooled *)
    { cancelled = false; fire = f; recycle = true }
  end
  else begin
    t.pool_hits <- t.pool_hits + 1;
    t.pool_len <- t.pool_len - 1;
    let h = t.pool.(t.pool_len) in
    t.pool.(t.pool_len) <- t.sentinel;
    h.cancelled <- false;
    h.fire <- f;
    h
  end

let[@hot] put_handle t h =
  (* Drop the closure so a parked handle retains nothing. *)
  h.fire <- noop;
  let cap = Array.length t.pool in
  if t.pool_len = cap then begin
    (* lint: allow hot-alloc — amortised doubling, not steady state *)
    let grown = Array.make (if cap = 0 then 64 else 2 * cap) t.sentinel in
    Array.blit t.pool 0 grown 0 cap;
    t.pool <- grown
  end;
  t.pool.(t.pool_len) <- h;
  t.pool_len <- t.pool_len + 1

(* Out of line so the formatted message is built only on the error
   path, never in [post]'s own (hot) body. *)
let post_in_past at clock =
  invalid_arg (Printf.sprintf "Sim.post: at=%g is before now=%g" at clock)

let[@hot] post t ~at f =
  if at < t.clock then post_in_past at t.clock;
  t.queue.Scheduler.push ~time:at (take_handle t f)

let[@hot] post_after t ~delay f =
  if delay < 0. then invalid_arg "Sim.post_after: negative delay";
  post t ~at:(t.clock +. delay) f

let cancel h = h.cancelled <- true
let cancelled h = h.cancelled

let every t ~start ~period f =
  if period <= 0. then invalid_arg "Sim.every: period <= 0";
  (* The outer handle stands for the whole periodic task: cancelling it
     prevents both the pending tick and all future rescheduling. *)
  let outer = { cancelled = false; fire = noop; recycle = false } in
  let rec tick at () =
    if not outer.cancelled then begin
      f ();
      if not outer.cancelled then begin
        let next = at +. period in
        post t ~at:next (tick next)
      end
    end
  in
  outer.fire <- noop;
  post t ~at:start (tick start);
  outer

let create ?sched () =
  let backend =
    match sched with Some b -> b | None -> Scheduler.default ()
  in
  let queue = Scheduler.instantiate backend () in
  let t =
    {
      queue;
      clock = 0.;
      executed = 0;
      time_cell = ref 0.;
      sentinel = { cancelled = true; fire = noop; recycle = false };
      pool = [||];
      pool_len = 0;
      pool_hits = 0;
      pool_misses = 0;
      events_metric = Metrics.counter "engine.events";
      queue_capacity_metric = Metrics.gauge "engine.queue_capacity";
      backend_capacity_metric =
        Metrics.gauge ("engine.queue_capacity." ^ queue.Scheduler.backend);
      reported = 0;
    }
  in
  (* The time-series clock hook: mcc_obs cannot depend on the engine, so
     the dependency is inverted — when this domain has sampling enabled
     ([Timeseries.enable ~dt]), the sim drives [Timeseries.sample_all]
     through its own queue at that period.  Installed here, not lazily,
     so the sample times of a spec are identical no matter which
     components later register samplers. *)
  (match Mcc_obs.Timeseries.dt () with
  | Some period ->
      ignore
        (every t ~start:0. ~period (fun () ->
             Mcc_obs.Timeseries.sample_all ~time:t.clock))
  | None -> ());
  t

let[@hot] step t =
  let h = t.queue.Scheduler.pop_into t.time_cell t.sentinel in
  if h == t.sentinel then false
  else begin
    t.clock <- !(t.time_cell);
    if not h.cancelled then begin
      t.executed <- t.executed + 1;
      h.fire ()
    end;
    if h.recycle then put_handle t h;
    true
  end

(* The profiled loop variants live apart from the plain ones so the
   disabled path stays byte-for-byte the existing loop: [run]/[run_until]
   branch ONCE on [Prof.enabled] at entry, never per event.  Inside the
   instrumented loop, scheduler time (pop + requeue bookkeeping) accrues
   to "engine.sched" and callback time to whatever spans the components
   open; the remainder is the engine's own self time. *)
let run_until_profiled t horizon =
  let root = Mcc_obs.Prof.span "engine" in
  let running = ref true in
  while !running do
    let sp = Mcc_obs.Prof.span "engine.sched" in
    let h = t.queue.Scheduler.pop_before t.time_cell ~bound:horizon t.sentinel in
    Mcc_obs.Prof.finish sp;
    if h == t.sentinel then running := false
    else begin
      t.clock <- !(t.time_cell);
      if not h.cancelled then begin
        t.executed <- t.executed + 1;
        h.fire ()
      end;
      if h.recycle then put_handle t h
    end
  done;
  Mcc_obs.Prof.finish root

let run_until t horizon =
  if Mcc_obs.Prof.enabled () then run_until_profiled t horizon
  else begin
    let running = ref true in
    while !running do
      let h =
        t.queue.Scheduler.pop_before t.time_cell ~bound:horizon t.sentinel
      in
      if h == t.sentinel then running := false
      else begin
        t.clock <- !(t.time_cell);
        if not h.cancelled then begin
          t.executed <- t.executed + 1;
          h.fire ()
        end;
        if h.recycle then put_handle t h
      end
    done
  end;
  t.clock <- max t.clock horizon;
  flush_metrics t

let run_profiled t =
  let root = Mcc_obs.Prof.span "engine" in
  let running = ref true in
  while !running do
    let sp = Mcc_obs.Prof.span "engine.sched" in
    let h = t.queue.Scheduler.pop_into t.time_cell t.sentinel in
    Mcc_obs.Prof.finish sp;
    if h == t.sentinel then running := false
    else begin
      t.clock <- !(t.time_cell);
      if not h.cancelled then begin
        t.executed <- t.executed + 1;
        h.fire ()
      end;
      if h.recycle then put_handle t h
    end
  done;
  Mcc_obs.Prof.finish root

let run t =
  if Mcc_obs.Prof.enabled () then run_profiled t
  else
    while step t do
      ()
    done;
  flush_metrics t

let events_executed t = t.executed
let queue_capacity t = t.queue.Scheduler.capacity ()
