(** Pluggable event-scheduler backends for the simulation engine.

    Every backend is a priority queue keyed by [(time, seq)]: events pop
    in time order, and events pushed with equal times pop first-in
    first-out.  That contract is exact — all backends produce
    byte-identical pop sequences for the same push/pop interleaving — so
    the backend choice is purely a performance knob and never a
    semantics knob.  {!Sim.create} selects a backend per simulation; the
    [--sched heap|wheel] CLI flag and the batch drivers route through
    {!set_default}. *)

(** Interface every backend implements. *)
module type S = sig
  val name : string
  (** Stable identifier ("heap", "wheel") used by [--sched], profiles,
      and the per-backend capacity gauge. *)

  type 'a t

  val create : unit -> 'a t
  val is_empty : 'a t -> bool
  val size : 'a t -> int

  val push : 'a t -> time:float -> 'a -> unit
  (** @raise Invalid_argument on a NaN time (every backend), or on a
      negative time for backends that quantise to non-negative integer
      ticks ({!Wheel}). *)

  val peek_time : 'a t -> float option
  (** Earliest event time, if any. *)

  val pop : 'a t -> (float * 'a) option
  (** Removes and returns the earliest event; ties pop in push order. *)

  val pop_into : 'a t -> float ref -> 'a -> 'a
  (** [pop_into t cell default] pops the earliest event, writing its
      time into [cell] and returning its value, or returns [default]
      with [cell] untouched when empty.  Same order as {!pop}, but
      allocation-free: the time lands in the ref's unboxed float field
      and no option or tuple is built.  {!Sim}'s per-event loop runs on
      this with a sentinel as [default]. *)

  val next_before : 'a t -> float -> bool
  (** [next_before t bound] is true iff the queue is non-empty and the
      earliest time is [<= bound] — {!peek_time} for bounded run loops,
      without the option/boxed-float allocation. *)

  val pop_before : 'a t -> float ref -> bound:float -> 'a -> 'a
  (** [pop_before t cell ~bound default] is {!pop_into} restricted to
      events at time [<= bound]: pops and returns the earliest such
      event, or returns [default] with [cell] untouched when the queue
      is empty or its earliest event lies beyond the bound.  Fuses the
      {!next_before}/{!pop_into} pair of a bounded run loop into one
      call so the hot path peeks the key exactly once per event. *)

  val clear : 'a t -> unit
  (** Empties the queue and restores it to its freshly-created state:
      tie-break sequence numbers restart from zero and dynamically grown
      storage is dropped, so a queue reused across many batch runs
      carries neither unbounded sequence numbers nor the high-water-mark
      allocation. *)

  val capacity : 'a t -> int
  (** Current backing allocation in slots (observability / tests).  For
      {!Heap} this is the parallel-array length (0 after [create] or
      [clear] — storage is lazily allocated on first push); for {!Wheel}
      it is the fixed slot-table size plus the cell store's high-water
      mark. *)

  val stats : 'a t -> Mcc_obs.Profile.sched_stats
  (** Backend introspection since the last [create]/[clear]: pushes,
      size high-water and the capacity trajectory for every backend;
      {!Wheel} additionally fills the per-level bucket-placement
      histogram (cascade re-placements included), overflow placements,
      draining-tick inserts and cell free-list hit/miss counters.  All
      counts are of simulated work, so they are deterministic for a
      deterministic schedule.  The engine-side [pool_hits]/[pool_misses]
      fields are 0 here; {!Sim} fills them in before publishing the
      record through {!Mcc_obs.Profile.note_sched_stats}. *)
end

module Heap : S
(** Binary min-heap over unboxed parallel arrays ([float array] times,
    [int array] seqs, ['a array] values): O(log n) push/pop, zero
    allocation per operation outside the amortised storage doubling.
    Handles any time, including negatives and infinities. *)

module Wheel : S
(** Hierarchical timing wheel (calendar queue): float times are
    quantised to integer microticks (10^-6 s) at enqueue and bucketed
    into 4 levels — a wide 2^13-slot level 0 so typical event horizons
    place at the bottom without cascading, plus three 2^8-slot levels of
    geometrically coarser width — O(1) push, amortised O(1) pop,
    covering 2^37 microticks (~38 simulated hours) before spilling into
    an overflow list that is migrated when the wheel empties.  Cells
    live in unboxed, index-linked parallel arrays recycled through an
    internal free list, so steady-state operation allocates nothing
    (a free slot keeps its last value reachable until reuse; [clear]
    drops the store).  Quantisation picks buckets only: each bucket is
    sorted by the original [(time, seq)] key when drained, so the pop
    sequence is byte-identical to {!Heap}'s.  Same-tick events batch
    through a drain buffer and are delivered in one pass per bucket.
    Times must be non-negative. *)

type backend = (module S)

val heap : backend
val wheel : backend

val all : backend list
(** Every built-in backend, for matrix-style tests and docs. *)

val backend_name : backend -> string

val of_name : string -> (backend, string) result
(** Case-insensitive lookup by {!backend_name}; [Error] carries a
    human-readable message listing the valid names. *)

val default : unit -> backend
(** This domain's default backend, used by {!Sim.create} when [?sched]
    is omitted.  Initially {!heap}. *)

val set_default : backend -> unit
(** Sets this domain's default.  Domain-local: worker domains spawned
    later start from the initial {!heap} default, so batch drivers apply
    a configured backend inside the worker body (see
    [Mcc_core.Runner]). *)

type 'a queue = {
  push : time:float -> 'a -> unit;
  pop : unit -> (float * 'a) option;
  pop_into : float ref -> 'a -> 'a;
  pop_before : float ref -> bound:float -> 'a -> 'a;
  peek_time : unit -> float option;
  next_before : float -> bool;
  size : unit -> int;
  is_empty : unit -> bool;
  clear : unit -> unit;
  capacity : unit -> int;
  stats : unit -> Mcc_obs.Profile.sched_stats;
  backend : string;  (** {!backend_name} of the backend instantiated *)
}
(** A backend instance closed over its state: what {!Sim} actually
    holds, so the per-event hot loop pays one indirect call instead of a
    first-class-module unpack. *)

val instantiate : backend -> unit -> 'a queue
(** [instantiate b ()] creates a fresh queue on backend [b].  (The
    [unit] parameter keeps the result polymorphic in ['a] under the
    value restriction.) *)
