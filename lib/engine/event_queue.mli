(** Deprecated alias of {!Scheduler.Heap}, kept for one release.

    The priority queue moved behind the pluggable backend interface in
    {!Scheduler}; this module re-exports the binary-heap backend under
    its old name so out-of-tree callers keep compiling.  New code should
    use {!Scheduler} (selecting a backend explicitly) or {!Sim.create}
    with [?sched].  See DESIGN.md, "Migrating from Event_queue". *)

[@@@ocaml.deprecated
"Event_queue is an alias of Mcc_engine.Scheduler.Heap; use Scheduler"]

include Scheduler.S with type 'a t = 'a Scheduler.Heap.t
