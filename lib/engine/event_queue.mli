(** Priority queue of timestamped events (binary min-heap).

    Ties are broken by insertion order so that events scheduled for the
    same instant fire first-in first-out, which keeps simulations
    deterministic. *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool

val size : 'a t -> int

val push : 'a t -> time:float -> 'a -> unit
(** @raise Invalid_argument on a NaN time. *)

val peek_time : 'a t -> float option
(** Earliest event time, if any. *)

val pop : 'a t -> (float * 'a) option
(** Removes and returns the earliest event. *)

val clear : 'a t -> unit
(** Empties the queue and restores it to its freshly-created state:
    tie-break sequence numbers restart from zero and the heap storage
    shrinks back to its initial capacity, so a queue reused across many
    batch runs carries neither unbounded sequence numbers nor the
    high-water-mark allocation. *)

val capacity : 'a t -> int
(** Current heap allocation in slots (observability / tests). *)
