type 'a entry = { time : float; seq : int; value : 'a }

type 'a t = {
  mutable heap : 'a entry option array;
  mutable len : int;
  mutable next_seq : int;
}

let initial_capacity = 64

let create () = { heap = Array.make initial_capacity None; len = 0; next_seq = 0 }
let is_empty t = t.len = 0
let size t = t.len

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let get t i =
  match t.heap.(i) with
  | Some e -> e
  | None -> assert false

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before (get t i) (get t parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.len && before (get t l) (get t !smallest) then smallest := l;
  if r < t.len && before (get t r) (get t !smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t ~time value =
  if Float.is_nan time then invalid_arg "Event_queue.push: NaN time";
  if t.len = Array.length t.heap then
    t.heap <- Array.append t.heap (Array.make (Array.length t.heap) None);
  t.heap.(t.len) <- Some { time; seq = t.next_seq; value };
  t.next_seq <- t.next_seq + 1;
  t.len <- t.len + 1;
  sift_up t (t.len - 1)

let peek_time t = if t.len = 0 then None else Some (get t 0).time

let pop t =
  if t.len = 0 then None
  else begin
    let e = get t 0 in
    t.len <- t.len - 1;
    t.heap.(0) <- t.heap.(t.len);
    t.heap.(t.len) <- None;
    if t.len > 0 then sift_down t 0;
    Some (e.time, e.value)
  end

let capacity t = Array.length t.heap

(* A cleared queue is as good as new: sequence numbers restart (a queue
   reused across thousands of batch runs never overflows them) and the
   heap drops back to its initial allocation instead of keeping the
   high-water mark of the busiest run alive. *)
let clear t =
  t.heap <- Array.make initial_capacity None;
  t.len <- 0;
  t.next_seq <- 0
