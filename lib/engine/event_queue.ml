(* Deprecated alias kept for one release: the heap now lives in
   Scheduler.Heap behind the pluggable-backend interface, and new code
   should go through Scheduler (or Sim ?sched) instead. *)
include Scheduler.Heap
