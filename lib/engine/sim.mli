(** Discrete-event simulation driver: a virtual clock plus an event
    queue of callbacks.  All network components schedule their work
    through one [Sim.t], so a run is single-threaded and deterministic. *)

type t

type handle
(** A scheduled event that can be cancelled. *)

val create : ?sched:Scheduler.backend -> unit -> t
(** A fresh sim with an empty queue at clock 0, on the given scheduler
    backend (default: this domain's {!Scheduler.default}, initially the
    heap).  Every backend fires the same events in the same order — see
    {!Scheduler} — so [?sched] is a performance knob only.

    If this domain has time-series sampling enabled
    ({!Mcc_obs.Timeseries.enable}), the sim installs a periodic task at
    the configured [dt] that feeds [Timeseries.sample_all] with the
    simulated clock, so sampled series are deterministic in simulated
    time, not wall clock. *)

val now : t -> float
(** Current simulated time in seconds. *)

val sched_name : t -> string
(** {!Scheduler.backend_name} of the backend this sim runs on. *)

val schedule : t -> at:float -> (unit -> unit) -> handle
(** Schedule a callback at absolute time [at].
    @raise Invalid_argument if [at] is in the past. *)

val schedule_after : t -> delay:float -> (unit -> unit) -> handle
(** Schedule a callback [delay] seconds from now ([delay >= 0]). *)

val post : t -> at:float -> (unit -> unit) -> unit
(** Fire-and-forget {!schedule}: no handle is returned, so the event
    cannot be cancelled — in exchange the sim recycles the internal
    event record through a pool, making steady-state scheduling
    allocation-free.  Semantically identical to
    [ignore (schedule t ~at f)] otherwise (same ordering, same
    validation). *)

val post_after : t -> delay:float -> (unit -> unit) -> unit
(** Fire-and-forget {!schedule_after}. *)

val cancel : handle -> unit
(** Cancelling a fired or already-cancelled event is a no-op. *)

val cancelled : handle -> bool

val every : t -> start:float -> period:float -> (unit -> unit) -> handle
(** Periodic task: fires at [start], [start+period], ...  Cancelling the
    returned handle stops future firings.  @raise Invalid_argument if
    [period <= 0]. *)

val run_until : t -> float -> unit
(** Execute events in time order until the queue is empty or the next
    event is later than the horizon; the clock ends at the horizon. *)

val run : t -> unit
(** Execute until the queue drains.  Periodic tasks never drain, so most
    callers want [run_until]. *)

val events_executed : t -> int
(** Total callbacks fired so far (observability / benchmarks). *)

val queue_capacity : t -> int
(** Event-queue allocation high-water in slots ({!Scheduler.S.capacity}
    of the backend); the "max heap depth" figure of a run profile.

    [run] and [run_until] also publish both counts to this domain's
    {!Mcc_obs.Metrics} registry on return: the "engine.events" counter,
    the backend-neutral "engine.queue_capacity" gauge, and the
    per-backend "engine.queue_capacity.heap" / "engine.queue_capacity.wheel"
    gauge for whichever backend the sim runs on.  They additionally park
    the backend's {!Scheduler.S.stats} probe — with this sim's
    timer-handle pool hit/miss counters merged in — via
    {!Mcc_obs.Profile.note_sched_stats} for the run-profile builder; and
    when {!Mcc_obs.Prof} is collecting, the event loop runs an
    instrumented variant attributing pop time to the "engine.sched" span
    under "engine" (selected once at entry, so the disabled path is the
    unmodified loop). *)
