module Prng = Mcc_util.Prng
module Gf = Mcc_util.Gf
module Shamir = Mcc_util.Shamir

type sender = {
  levels : int;
  counts : int array;
  cumulative : int array;  (* n_g = packets of groups 1..g *)
  first_index : int array;  (* 1-based slot index of group g's first packet *)
  quorums : int array;
  keys : Key.t array;
  polys : int array array;  (* polys.(g-1) = coefficients of q_g *)
}

let sender_create ~prng ~levels ~per_group_counts ~loss_thresholds =
  if levels < 1 then invalid_arg "Threshold.sender_create: levels";
  if Array.length per_group_counts <> levels then
    invalid_arg "Threshold.sender_create: counts length";
  if Array.length loss_thresholds <> levels then
    invalid_arg "Threshold.sender_create: thresholds length";
  Array.iter
    (fun c -> if c < 1 then invalid_arg "Threshold.sender_create: count < 1")
    per_group_counts;
  Array.iter
    (fun t ->
      if t < 0. || t >= 1. then
        invalid_arg "Threshold.sender_create: threshold out of [0,1)")
    loss_thresholds;
  let cumulative = Array.make levels 0 in
  let first_index = Array.make levels 0 in
  let running = ref 0 in
  for g = 1 to levels do
    first_index.(g - 1) <- !running + 1;
    running := !running + per_group_counts.(g - 1);
    cumulative.(g - 1) <- !running
  done;
  let quorums =
    Array.init levels (fun i ->
        let n = float_of_int cumulative.(i) in
        max 1 (int_of_float (ceil ((1. -. loss_thresholds.(i)) *. n))))
  in
  let keys = Array.init levels (fun _ -> Prng.int prng Gf.p) in
  let polys =
    Array.init levels (fun i ->
        let k = quorums.(i) in
        let coeffs = Array.make k 0 in
        coeffs.(0) <- keys.(i);
        for j = 1 to k - 1 do
          coeffs.(j) <- Prng.int prng Gf.p
        done;
        coeffs)
  in
  { levels; counts = per_group_counts; cumulative; first_index; quorums; keys; polys }

let level_key s ~level =
  if level < 1 || level > s.levels then invalid_arg "Threshold.level_key";
  s.keys.(level - 1)

let level_quorum s ~level =
  if level < 1 || level > s.levels then invalid_arg "Threshold.level_quorum";
  s.quorums.(level - 1)

let shares_for_packet s ~group ~packet_index =
  if group < 1 || group > s.levels then
    invalid_arg "Threshold.shares_for_packet: group";
  if packet_index < 1 || packet_index > s.counts.(group - 1) then
    invalid_arg "Threshold.shares_for_packet: packet_index";
  let x = s.first_index.(group - 1) + packet_index - 1 in
  List.init
    (s.levels - group + 1)
    (fun i ->
      let level = group + i in
      let y = Gf.eval_poly s.polys.(level - 1) x in
      (level, { Shamir.x; y }))

let share_bytes_per_packet s ~group =
  if group < 1 || group > s.levels then
    invalid_arg "Threshold.share_bytes_per_packet";
  4 * (s.levels - group + 1)

type receiver = {
  rlevels : int;
  shares : (int, Shamir.share) Hashtbl.t array;  (* per level, keyed by x *)
}

let receiver_create ~levels =
  if levels < 1 then invalid_arg "Threshold.receiver_create";
  { rlevels = levels; shares = Array.init levels (fun _ -> Hashtbl.create 64) }

let on_shares r pairs =
  List.iter
    (fun (level, (share : Shamir.share)) ->
      if level >= 1 && level <= r.rlevels then
        Hashtbl.replace r.shares.(level - 1) share.Shamir.x share)
    pairs

let shares_received r ~level =
  if level < 1 || level > r.rlevels then
    invalid_arg "Threshold.shares_received";
  Hashtbl.length r.shares.(level - 1)

let reconstruct r ~level ~quorum =
  if level < 1 || level > r.rlevels then invalid_arg "Threshold.reconstruct";
  let tbl = r.shares.(level - 1) in
  if Hashtbl.length tbl < quorum then None
  else begin
    (* Interpolate over every received share: with at least k genuine
       points of a degree-(k-1) polynomial the result is exact however
       many extra points participate, so a caller whose quorum estimate
       is off on the high side still reconstructs correctly. *)
    let selected = Hashtbl.fold (fun _ share acc -> share :: acc) tbl [] in
    Some (Shamir.reconstruct selected)
  end
