type params = {
  groups : int;
  min_rate_bps : float;
  rate_factor : float;
  slot : float;
  data_bits : int;
  key_bits : int;
  slot_number_bits : int;
  fec_expansion : float;
  header_bits : int;
  upgrade_freq : float array;
}

let cumulative_rate p =
  p.min_rate_bps *. (p.rate_factor ** float_of_int (p.groups - 1))

let packets_per_slot p = cumulative_rate p *. p.slot /. float_of_int p.data_bits

let delta_overhead p =
  let m_pow = p.rate_factor ** float_of_int (p.groups - 1) in
  (2. -. (1. /. m_pow)) *. float_of_int p.key_bits /. float_of_int p.data_bits

let sigma_overhead p =
  if Array.length p.upgrade_freq <> max 0 (p.groups - 1) then
    invalid_arg "Overhead.sigma_overhead: upgrade_freq length";
  let n = float_of_int p.groups in
  let b = float_of_int p.key_bits in
  let sum_f = Array.fold_left ( +. ) 0. p.upgrade_freq in
  let tuple_bits =
    float_of_int p.slot_number_bits
    +. (32. *. n)
    +. (b *. ((2. *. n) -. 1. +. sum_f))
  in
  ((tuple_bits *. p.fec_expansion) +. float_of_int p.header_bits)
  /. (cumulative_rate p *. p.slot)

type counters = {
  mutable data_bits_sent : int;
  mutable delta_field_bits : int;
  mutable sigma_special_bits : int;
}

let counters () =
  { data_bits_sent = 0; delta_field_bits = 0; sigma_special_bits = 0 }

let ratio num den = if den = 0 then 0. else float_of_int num /. float_of_int den

let measured_delta c = ratio c.delta_field_bits c.data_bits_sent
let measured_sigma c = ratio c.sigma_special_bits c.data_bits_sent
