(** DELTA instantiation for replicated multicast protocols — Figure 5 of
    the paper.  Each subscription level is a single group carrying the
    same content at a different rate, so keys are per-group:

    - top key      [lambda_g] = XOR of the component fields of the
                                packets of group g alone (Eq. 6);
    - decrease key [delta_(g-1)] = nonce in the decrease field of every
                                packet of group g;
    - increase key [iota_g]  = XOR of the components of group g-1
                                (Eq. 6), when an upgrade is authorized. *)

type keys = {
  top : Key.t array;
  decrease : Key.t array;  (** [decrease.(g-1)] = delta_g, g = 1..N-1 *)
  increase : Key.t option array;
}

val valid_keys : keys -> group:int -> Key.t list

type sender

val sender_create :
  prng:Mcc_util.Prng.t ->
  width:int ->
  groups:int ->
  upgrades:bool array ->
  sender

val sender_keys : sender -> keys
val next_component : sender -> group:int -> last:bool -> Key.t
val decrease_field : sender -> group:int -> Key.t option

type receiver

val receiver_create : groups:int -> receiver

val on_packet :
  receiver -> group:int -> component:Key.t -> decrease:Key.t option -> unit

type outcome = { next_group : int; key : Key.t option }
(** [next_group = 0] means the receiver left the session. *)

val slot_end :
  receiver -> group:int -> congested:bool -> upgrade_to:(int -> bool) -> outcome
(** Figure 5 receiver: uncongested receivers reconstruct their group's
    top key (and move up with the increase key when authorized);
    congested receivers fall back to the decrease field of their current
    group, which names the key of group g-1. *)
