module Prng = Mcc_util.Prng

type keys = {
  top : Key.t array;
  decrease : Key.t array;
  increase : Key.t option array;
}

let valid_keys keys ~group =
  let g = group in
  let n = Array.length keys.top in
  if g < 1 || g > n then invalid_arg "Replicated.valid_keys";
  let base = [ keys.top.(g - 1) ] in
  let base =
    if g <= Array.length keys.decrease then keys.decrease.(g - 1) :: base
    else base
  in
  match keys.increase.(g - 1) with Some i -> i :: base | None -> base

type sender = {
  width : int;
  prng : Prng.t;
  keys : keys;
  acc : Key.t array;
  closed : bool array;
}

let sender_create ~prng ~width ~groups ~upgrades =
  if groups < 1 then invalid_arg "Replicated.sender_create: groups < 1";
  if Array.length upgrades <> groups then
    invalid_arg "Replicated.sender_create: upgrades length";
  let c = Array.init groups (fun _ -> Key.nonce prng ~width) in
  let top = Array.copy c in
  let decrease =
    Array.init (max 0 (groups - 1)) (fun _ -> Key.nonce prng ~width)
  in
  let increase =
    Array.init groups (fun i ->
        if i >= 1 && upgrades.(i) then Some top.(i - 1) else None)
  in
  {
    width;
    prng;
    keys = { top; decrease; increase };
    acc = Array.copy c;
    closed = Array.make groups false;
  }

let sender_keys s = s.keys

let next_component s ~group ~last =
  let n = Array.length s.keys.top in
  if group < 1 || group > n then invalid_arg "Replicated.next_component: group";
  if s.closed.(group - 1) then
    invalid_arg "Replicated.next_component: slot already closed for group";
  if last then begin
    s.closed.(group - 1) <- true;
    s.acc.(group - 1)
  end
  else begin
    let c = Key.nonce s.prng ~width:s.width in
    s.acc.(group - 1) <- Key.xor s.acc.(group - 1) c;
    c
  end

let decrease_field s ~group =
  let n = Array.length s.keys.top in
  if group < 1 || group > n then invalid_arg "Replicated.decrease_field: group";
  if group = 1 then None else Some s.keys.decrease.(group - 2)

type receiver = {
  xors : Key.t array;
  dfields : Key.t option array;
}

let receiver_create ~groups =
  if groups < 1 then invalid_arg "Replicated.receiver_create";
  { xors = Array.make groups 0; dfields = Array.make groups None }

let on_packet r ~group ~component ~decrease =
  let n = Array.length r.xors in
  if group < 1 || group > n then invalid_arg "Replicated.on_packet: group";
  r.xors.(group - 1) <- Key.xor r.xors.(group - 1) component;
  match decrease with
  | Some d -> r.dfields.(group - 1) <- Some d
  | None -> ()

type outcome = { next_group : int; key : Key.t option }

let slot_end r ~group ~congested ~upgrade_to =
  let n = Array.length r.xors in
  let g = group in
  if g < 1 || g > n then invalid_arg "Replicated.slot_end: group";
  if congested then begin
    if g = 1 then { next_group = 0; key = None }
    else
      match r.dfields.(g - 1) with
      | Some d -> { next_group = g - 1; key = Some d }
      | None -> { next_group = 0; key = None }
  end
  else begin
    let top = r.xors.(g - 1) in
    if g < n && upgrade_to (g + 1) then { next_group = g + 1; key = Some top }
    else { next_group = g; key = Some top }
  end
