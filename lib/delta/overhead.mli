(** Communication overhead of DELTA and SIGMA — the closed-form
    analysis of paper Section 5.4 (reproduced by Figure 9), plus
    counters for measuring the same ratios inside a simulation. *)

type params = {
  groups : int;  (** N *)
  min_rate_bps : float;  (** r, transmission rate of group 1 *)
  rate_factor : float;  (** m, multiplicative cumulative-rate growth *)
  slot : float;  (** t, time slot duration in seconds *)
  data_bits : int;  (** s, data bits per packet *)
  key_bits : int;  (** b *)
  slot_number_bits : int;  (** l *)
  fec_expansion : float;  (** z, FEC bit expansion factor *)
  header_bits : int;  (** h, total special-packet header bits per slot *)
  upgrade_freq : float array;
      (** f_g for g = 2..N at index g-2: average upgrade authorizations
          per slot *)
}

val cumulative_rate : params -> float
(** R = r * m^(N-1) (Eq. 10). *)

val packets_per_slot : params -> float
(** P = R * t / s (Eq. 11). *)

val delta_overhead : params -> float
(** O_Delta = (2 - 1/m^(N-1)) * b / s: the ratio of DELTA field bits
    (one component per packet, one decrease field on groups 2..N) to
    data bits. *)

val sigma_overhead : params -> float
(** O_Sigma = ((l + 32 N + b (2N - 1 + sum f_g)) z + h) / (R t): the
    ratio of special-packet bits to data bits. *)

(** {1 Measured counters} *)

type counters = {
  mutable data_bits_sent : int;
  mutable delta_field_bits : int;
  mutable sigma_special_bits : int;
}

val counters : unit -> counters

val measured_delta : counters -> float
(** delta field bits / data bits; 0 when no data was sent. *)

val measured_sigma : counters -> float
