type t = { mutable component : Key.t; decrease : Key.t option }

let make ~component ~decrease = { component; decrease }

let wire_bytes ~width t =
  let per = Key.field_bytes ~width in
  match t.decrease with None -> per | Some _ -> 2 * per
