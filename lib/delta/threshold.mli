(** DELTA instantiation for threshold-based protocols (RLM, MLDA,
    WEBRC): a receiver is congested only when its loss rate exceeds a
    per-level threshold, so the key for subscription level g is split
    with Shamir's (k, n) scheme among all n packets transmitted to that
    level (paper Section 3.1.2, Eqs. 7-9).

    In cumulative layered sessions the levels share groups, and Shamir
    components cannot be reused across levels: each packet of group j
    carries one share for every level j..N, which is the "high
    communication overhead" the paper points out (we expose it in
    [share_bytes_per_packet] and benchmark it against the XOR scheme). *)

type sender

val sender_create :
  prng:Mcc_util.Prng.t ->
  levels:int ->
  per_group_counts:int array ->
  loss_thresholds:float array ->
  sender
(** [per_group_counts.(j-1)] is the number of packets group [j] will
    carry this slot; [loss_thresholds.(g-1)] in [0, 1) is the loss rate
    level [g] tolerates.  Level g's scheme has
    [n_g = sum of counts of groups 1..g] and
    [k_g = max 1 (ceil ((1 - threshold_g) * n_g))].
    @raise Invalid_argument on empty groups or thresholds out of range. *)

val level_key : sender -> level:int -> Key.t
(** The (precomputed) key guarding [level] — a GF(2^31 - 1) element. *)

val level_quorum : sender -> level:int -> int
(** k_g: shares needed to reconstruct level g's key. *)

val shares_for_packet :
  sender -> group:int -> packet_index:int -> (int * Mcc_util.Shamir.share) list
(** Shares carried by packet number [packet_index] (1-based within the
    whole slot's numbering of groups 1..N in order): one [(level,
    share)] pair for every level >= the packet's group. *)

val share_bytes_per_packet : sender -> group:int -> int
(** Wire overhead of the share block for a packet of [group], counting
    4 bytes per share (31-bit y plus the abscissa folded in the packet
    header). *)

type receiver

val receiver_create : levels:int -> receiver

val on_shares : receiver -> (int * Mcc_util.Shamir.share) list -> unit

val reconstruct : receiver -> level:int -> quorum:int -> Key.t option
(** The level key if at least [quorum] distinct shares arrived.
    Interpolation runs over every received share, so the result is the
    true key whenever the shares received reach the {e sender's} quorum,
    even if the caller's [quorum] estimate was lower. *)

val shares_received : receiver -> level:int -> int
