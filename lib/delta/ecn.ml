let scrubbed_component prng ~width original =
  let rec fresh () =
    let c = Key.nonce prng ~width in
    if c = original then fresh () else c
  in
  fresh ()

let scrub prng ~width (field : Field.t) =
  field.Field.component <- scrubbed_component prng ~width field.Field.component
