(** DELTA instantiation for cumulative layered multicast protocols that
    define congestion as a single packet loss (FLID-DL, RLC) — the
    algorithm of Figure 4 in the paper.

    Per time slot and group [g] (groups numbered 1..N):
    - top key        [lambda_g]  = XOR of the component fields of all
                                   packets of groups 1..g (Eq. 3);
    - decrease key   [delta_g]   = the nonce carried in the decrease
                                   field of every packet of group g+1
                                   (Eq. 4), defined for g = 1..N-1;
    - increase key   [iota_g]    = [lambda_(g-1)] (Eq. 5), defined for
                                   g = 2..N and only when the protocol
                                   authorizes an upgrade to g.

    The sender precomputes all keys before the slot starts (so SIGMA can
    ship them to edge routers ahead of time) and then emits components
    in real time without changing the transmission pattern. *)

type keys = {
  top : Key.t array;  (** [top.(g-1)] = lambda_g, g = 1..N *)
  decrease : Key.t array;  (** [decrease.(g-1)] = delta_g, g = 1..N-1 *)
  increase : Key.t option array;
      (** [increase.(g-1)] = iota_g for g = 2..N when an upgrade to g is
          authorized this slot; [increase.(0)] is always [None] *)
}

val valid_keys : keys -> group:int -> Key.t list
(** All keys that open [group] this slot: top, decrease (if defined) and
    increase (if authorized) — what SIGMA loads into edge routers. *)

(** {1 Sender} *)

type sender

val sender_create :
  prng:Mcc_util.Prng.t ->
  width:int ->
  groups:int ->
  upgrades:bool array ->
  sender
(** [upgrades.(g-1)] says the protocol authorizes an upgrade {e to}
    group [g] this slot ([upgrades.(0)] is ignored).
    @raise Invalid_argument if [groups < 1] or [upgrades] has the wrong
    length. *)

val sender_keys : sender -> keys
(** Available immediately after creation (precomputation property). *)

val next_component : sender -> group:int -> last:bool -> Key.t
(** Component field for the next packet of [group]; [last] marks the
    final packet of the slot, which must be requested exactly once and
    last.  @raise Invalid_argument on an out-of-range group or a
    component requested after [last]. *)

val decrease_field : sender -> group:int -> Key.t option
(** Decrease field [d_g] for packets of [group]; [None] for group 1. *)

(** {1 Receiver} *)

type receiver

val receiver_create : groups:int -> receiver
(** [groups] = N, the session size. *)

val on_packet :
  receiver -> group:int -> component:Key.t -> decrease:Key.t option -> unit
(** Accumulate the fields of one received packet. *)

type outcome = {
  next_level : int;
      (** subscription level for the guarded slot; 0 means the receiver
          lost even the minimal group and must re-admit via SIGMA's
          session-join *)
  keys : (int * Key.t) list;  (** (group, reconstructed key) pairs *)
}

val slot_end :
  receiver ->
  level:int ->
  congested:bool ->
  lost:(int -> bool) ->
  upgrade_to:(int -> bool) ->
  outcome
(** Applies the receiver algorithm of Figure 4.  [level] is the current
    subscription level g; [lost j] reports whether group [j] lost at
    least one packet this slot (the protocol's loss detector);
    [upgrade_to j] reports whether the slot's packets authorized an
    upgrade to group [j].

    Uncongested: keys are the top keys for groups 1..g, plus the
    increase key for g+1 when authorized.  Congested: keys are the
    decrease keys for the longest prefix of groups 1..g-1 whose decrease
    fields were received — unless the loss is confined to group g itself
    and an upgrade to g is authorized, in which case the receiver keeps
    level g (the paper's contradiction resolution). *)
