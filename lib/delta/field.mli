(** The DELTA fields a protocol embeds in each multicast data packet:
    one component field per packet, plus a decrease field on packets of
    every group above the minimal one.

    [component] is mutable because trusted edge routers scrub it on
    ECN-marked packets (paper Section 3.1.2, "Congestion notification"),
    and each multicast branch forwards its own packet copy. *)

type t = {
  mutable component : Key.t;
  decrease : Key.t option;  (** [d_g]: the decrease key of group g-1 *)
}

val make : component:Key.t -> decrease:Key.t option -> t

val wire_bytes : width:int -> t -> int
(** Bytes this field block adds to the packet. *)
