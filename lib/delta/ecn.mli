(** ECN adaptation of DELTA (paper Section 3.1.2, "Congestion
    notification"): instead of relying on loss, trusted edge routers
    scrub the component field of every marked packet before forwarding
    it to a local interface.  A receiver whose path marked packets then
    cannot reconstruct the guarded keys, exactly as if the packets had
    been dropped — while still receiving the data. *)

val scrub : Mcc_util.Prng.t -> width:int -> Field.t -> unit
(** Replace the component with a fresh random value of the same width
    (randomisation rather than zeroing keeps component-guessing as hard
    as key-guessing). *)

val scrubbed_component : Mcc_util.Prng.t -> width:int -> Key.t -> Key.t
(** Pure variant: returns the replacement component, guaranteed to
    differ from the original so the key XOR is always perturbed. *)
