(** Group keys and key components.

    Keys are [width]-bit integers (the paper's evaluation uses 16-bit
    keys); components are values of the same width combined with XOR.
    Guessing a component is exactly as hard as guessing the key
    (paper Section 4.2), which the width makes explicit. *)

type t = int

val default_width : int
(** 16, the width used throughout the paper's evaluation. *)

val nonce : Mcc_util.Prng.t -> width:int -> t
(** Fresh uniform [width]-bit value.  @raise Invalid_argument unless
    [0 < width <= 62]. *)

val xor : t -> t -> t

val xor_list : t list -> t
(** XOR of a list; 0 on the empty list. *)

val field_bytes : width:int -> int
(** Wire size of one key-sized field, rounded up to whole bytes. *)
