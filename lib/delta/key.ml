type t = int

let default_width = 16

let nonce prng ~width =
  if width <= 0 || width > 62 then invalid_arg "Key.nonce";
  Mcc_util.Prng.bits prng width

let xor = ( lxor )
let xor_list = List.fold_left ( lxor ) 0
let field_bytes ~width = (width + 7) / 8
