module Prng = Mcc_util.Prng

type keys = {
  top : Key.t array;
  decrease : Key.t array;
  increase : Key.t option array;
}

let valid_keys keys ~group =
  let g = group in
  let n = Array.length keys.top in
  if g < 1 || g > n then invalid_arg "Layered.valid_keys";
  let base = [ keys.top.(g - 1) ] in
  let base =
    if g <= Array.length keys.decrease then keys.decrease.(g - 1) :: base
    else base
  in
  match keys.increase.(g - 1) with Some i -> i :: base | None -> base

type sender = {
  width : int;
  prng : Prng.t;
  keys : keys;
  acc : Key.t array;  (* running accumulator C_g *)
  closed : bool array;  (* last component already emitted *)
}

let sender_create ~prng ~width ~groups ~upgrades =
  if groups < 1 then invalid_arg "Layered.sender_create: groups < 1";
  if Array.length upgrades <> groups then
    invalid_arg "Layered.sender_create: upgrades length";
  let c = Array.init groups (fun _ -> Key.nonce prng ~width) in
  let top = Array.make groups 0 in
  top.(0) <- c.(0);
  for g = 2 to groups do
    top.(g - 1) <- Key.xor top.(g - 2) c.(g - 1)
  done;
  let decrease =
    Array.init (max 0 (groups - 1)) (fun _ -> Key.nonce prng ~width)
  in
  let increase =
    Array.init groups (fun i ->
        if i >= 1 && upgrades.(i) then Some top.(i - 1) else None)
  in
  {
    width;
    prng;
    keys = { top; decrease; increase };
    acc = Array.copy c;
    closed = Array.make groups false;
  }

let sender_keys s = s.keys

let next_component s ~group ~last =
  let n = Array.length s.keys.top in
  if group < 1 || group > n then invalid_arg "Layered.next_component: group";
  if s.closed.(group - 1) then
    invalid_arg "Layered.next_component: slot already closed for group";
  if last then begin
    s.closed.(group - 1) <- true;
    s.acc.(group - 1)
  end
  else begin
    let c = Key.nonce s.prng ~width:s.width in
    s.acc.(group - 1) <- Key.xor s.acc.(group - 1) c;
    c
  end

let decrease_field s ~group =
  let n = Array.length s.keys.top in
  if group < 1 || group > n then invalid_arg "Layered.decrease_field: group";
  if group = 1 then None else Some s.keys.decrease.(group - 2)

type receiver = {
  xors : Key.t array;  (* XOR of received component fields per group *)
  dfields : Key.t option array;  (* decrease field seen per group *)
}

let receiver_create ~groups =
  if groups < 1 then invalid_arg "Layered.receiver_create";
  { xors = Array.make groups 0; dfields = Array.make groups None }

let on_packet r ~group ~component ~decrease =
  let n = Array.length r.xors in
  if group < 1 || group > n then invalid_arg "Layered.on_packet: group";
  r.xors.(group - 1) <- Key.xor r.xors.(group - 1) component;
  match decrease with
  | Some d -> r.dfields.(group - 1) <- Some d
  | None -> ()

type outcome = { next_level : int; keys : (int * Key.t) list }

(* XOR of component accumulators for groups 1..g: the receiver's view of
   lambda_g (correct exactly when no packet of groups 1..g was lost). *)
let cumulative_xor r g =
  let acc = ref 0 in
  for j = 1 to g do
    acc := Key.xor !acc r.xors.(j - 1)
  done;
  !acc

let slot_end r ~level ~congested ~lost ~upgrade_to =
  let n = Array.length r.xors in
  let g = level in
  if g < 1 || g > n then invalid_arg "Layered.slot_end: level";
  if not congested then begin
    let tops = List.init g (fun i -> (i + 1, cumulative_xor r (i + 1))) in
    if g < n && upgrade_to (g + 1) then
      { next_level = g + 1; keys = tops @ [ (g + 1, cumulative_xor r g) ] }
    else { next_level = g; keys = tops }
  end
  else begin
    let clean_below = not (List.exists lost (List.init (g - 1) (fun i -> i + 1))) in
    if clean_below && upgrade_to g then begin
      (* Loss confined to group g and an upgrade to g is authorized: the
         increase key lets the receiver keep its level (paper's
         contradiction resolution, Section 3.1.1). *)
      let tops = List.init (g - 1) (fun i -> (i + 1, cumulative_xor r (i + 1))) in
      { next_level = g; keys = tops @ [ (g, cumulative_xor r (g - 1)) ] }
    end
    else begin
      (* Decrease keys delta_j ride in the decrease field of group j+1;
         the reachable level is the longest prefix of groups whose
         decrease fields arrived. *)
      let rec prefix j acc =
        if j > g - 1 then List.rev acc
        else
          match r.dfields.(j) (* group j+1, 0-indexed *) with
          | Some d -> prefix (j + 1) ((j, d) :: acc)
          | None -> List.rev acc
      in
      let keys = prefix 1 [] in
      { next_level = List.length keys; keys }
    end
  end
