(** Invariant linter: a static-analysis pass over the repository's own
    sources enforcing the determinism and domain-safety rules the
    reproduction's guarantees rest on (byte-identical sink output for
    any [--jobs], attack/defence matrices on the simulated clock).

    The pass parses each [.ml] file with the compiler's own parser
    (compiler-libs) and walks the [Parsetree] with an [Ast_iterator];
    it needs no type information, so rules are syntactic and
    deliberately conservative.

    {2 Rules}

    - [wall-clock]: references to [Unix.gettimeofday], [Unix.time] or
      [Sys.time].  Simulation code must read the simulated clock only;
      the sole sanctioned host-clock site is
      {!Mcc_obs.Profile.with_wall_clock}.
    - [ambient-randomness]: [Random.self_init] and any use of the
      global [Random] state ([Random.int], [Random.float], ...).
      Only seeded, explicitly threaded state ([Mcc_util.Prng],
      [Random.State]) keeps runs reproducible.
    - [shared-mutable-toplevel]: a module-level binding that creates
      mutable state outside a function body ([ref], [Hashtbl.create],
      [Buffer.create], [Queue.create], [Stack.create], [Array.make],
      [Array.init], [Bytes.create], array literals).  Such state is
      shared by every domain the runner spawns; use the domain-local
      registries ([Domain.DLS.new_key (fun () -> ...)] — the creation
      then sits under a function and is not flagged) or [Atomic].
      Bindings that bind nothing ([let () = ...], [let _ = ...]) are
      exempt: state created there is initialisation scratch that dies
      with the binding.
    - [float-poly-compare]: polymorphic [=] / [<>] / [==] / [!=] with a
      float-shaped operand (float literal, [float_of_int], a [+.]-style
      operator application, or a [: float] constraint), and any
      reference to bare polymorphic [compare].  Use [Float.equal],
      [Float.compare], [String.compare], ... so comparisons stay
      monomorphic and NaN handling is explicit.
    - [mli-coverage]: a [.ml] file with no sibling [.mli].
    - [prof-span]: a self-profiler span site ([Prof.span],
      [Prof.with_span], or the [Mcc_obs.Prof]-qualified spellings)
      outside [lib/], or in a [lib/] module without a sibling [.mli].
      Instrumentation points are part of a module's documented surface;
      keeping them behind interfaces is what makes the span tree a
      stable, reviewable component taxonomy.

    {2 Suppression}

    A finding is suppressed by an in-source pragma comment

    {[ (* lint: allow <rule-id> — justification *) ]}

    placed on the same line as the finding or on the line directly
    above it ([mli-coverage] findings attach to line 1, so a pragma on
    the file's first line suppresses them), or by an entry in an
    allowlist file: one [<rule-id> <path>] pair per line, [#] comments,
    where a path ending in [/] matches as a prefix.  Paths are
    normalised by dropping [.] and [..] segments before matching. *)

type rule =
  | Wall_clock
  | Ambient_randomness
  | Shared_mutable_toplevel
  | Float_poly_compare
  | Mli_coverage
  | Prof_span

val all_rules : rule list

val rule_id : rule -> string
(** The stable kebab-case identifier used in pragmas, allowlists, CLI
    flags and the JSON report ([wall-clock], [ambient-randomness],
    [shared-mutable-toplevel], [float-poly-compare], [mli-coverage],
    [prof-span]). *)

val rule_of_id : string -> rule option
val rule_doc : rule -> string

type finding = {
  rule : rule;
  file : string;
  line : int;  (** 1-based *)
  col : int;  (** 0-based, matching compiler diagnostics *)
  message : string;
}

type allow_entry = {
  allow_rule : rule;
  allow_path : string;  (** exact path, or a prefix when ending in [/] *)
}

type config = {
  rules : rule list;  (** enabled rules *)
  allowlist : allow_entry list;
}

val default_config : config
(** Every rule enabled, empty allowlist. *)

val parse_allowlist : ?file:string -> string -> (allow_entry list, string) result
(** Parse allowlist text; [file] names the source in error messages. *)

val load_allowlist : string -> (allow_entry list, string) result

type report = {
  findings : finding list;  (** sorted by file, line, column, rule *)
  errors : (string * string) list;  (** (file, message): unparseable inputs *)
  files_checked : int;
}

val check_file : config -> string -> (finding list, string) result
(** Lint one [.ml] file ([Error] on I/O or syntax errors).  All enabled
    rules run, including [mli-coverage] against the sibling path. *)

val run : config -> string list -> report
(** Lint every [.ml] file under the given files and directories
    (recursing, skipping dot- and [_]-prefixed directories; traversal
    order is sorted, so reports are deterministic).  A path that does
    not exist or fails to parse lands in [errors]. *)

val exit_code : report -> int
(** 0 clean, 1 findings, 2 errors (errors win over findings). *)

val pp_finding : Format.formatter -> finding -> unit
(** [file:line:col: [rule-id] message] — the compiler-style location
    prefix editors already know how to jump to. *)

val report_to_json : report -> Mcc_obs.Json.t
(** Machine-readable report: tool name, enabled rules, file count,
    findings (rule/file/line/col/message) and errors. *)
