(** Invariant linter: a static-analysis pass over the repository's own
    sources enforcing the determinism and domain-safety rules the
    reproduction's guarantees rest on (byte-identical sink output for
    any [--jobs], attack/defence matrices on the simulated clock).

    The linter runs in two stages.  The {e syntactic} stage parses each
    [.ml] with the compiler's own parser (compiler-libs) and walks the
    [Parsetree]; its rules need no build context.  The {e typed} stage
    resolves each file's [.cmt] (dune's [-bin-annot] output, written by
    every build) and walks the [Typedtree] for the rules that need type
    information.  A file whose [.cmt] cannot be found keeps its
    syntactic coverage and is recorded in [cmts_missing] — the typed
    stage reports degradation, it never fails the run by itself.

    {2 Syntactic rules}

    - [wall-clock]: references to [Unix.gettimeofday], [Unix.time],
      [Sys.time], or a [Unix.sleep]/[sleepf] pacing wait.  Simulation
      code must read the simulated clock only; the sole sanctioned
      host-clock site is {!Mcc_obs.Profile.with_wall_clock}.
    - [ambient-randomness]: [Random.self_init] and any use of the
      global [Random] state ([Random.int], [Random.float], ...).
      Only seeded, explicitly threaded state ([Mcc_util.Prng],
      [Random.State]) keeps runs reproducible.
    - [shared-mutable-toplevel]: a module-level binding that creates
      mutable state outside a function body ([ref], [Hashtbl.create],
      [Buffer.create], [Queue.create], [Stack.create], [Array.make],
      [Array.init], [Bytes.create], array literals).  Such state is
      shared by every domain the runner spawns; use the domain-local
      registries ([Domain.DLS.new_key (fun () -> ...)] — the creation
      then sits under a function and is not flagged) or [Atomic].
      Bindings that bind nothing ([let () = ...], [let _ = ...]) are
      exempt: state created there is initialisation scratch that dies
      with the binding.
    - [float-poly-compare]: polymorphic [=] / [<>] / [==] / [!=] with a
      float-shaped operand (float literal, [float_of_int], a [+.]-style
      operator application, or a [: float] constraint), and any
      reference to bare polymorphic [compare].  Use [Float.equal],
      [Float.compare], [String.compare], ... so comparisons stay
      monomorphic and NaN handling is explicit.
    - [mli-coverage]: a [.ml] file with no sibling [.mli].
    - [prof-span]: a self-profiler span site ([Prof.span],
      [Prof.with_span], or the [Mcc_obs.Prof]-qualified spellings)
      outside [lib/], or in a [lib/] module without a sibling [.mli].
    - [gc-stats]: a GC statistics read ([Gc.quick_stat], [Gc.stat],
      [Gc.minor_words], [Gc.major_words], [Gc.counters],
      [Gc.allocated_bytes]) outside [lib/obs].  GC figures are live
      telemetry only; routing them through [Mcc_obs] keeps them out of
      sinks and ledger payloads, whose bytes must not vary across
      machines.

    {2 Typed rules}

    - [domain-escape]: a mutable value ([ref], [array], [bytes],
      [Hashtbl.t]/[Buffer.t]/[Queue.t]/[Stack.t], or a record declared
      with mutable fields in the same compilation unit) captured by a
      closure passed to [Domain.spawn] or [Domain.DLS.new_key].
      [Atomic.t] is exempt.  A spawn argument that is neither a
      function literal nor a locally let-bound function is flagged as
      opaque.
    - [hot-alloc]: an allocating expression inside a function whose
      binding carries the [[@hot]] attribute — closure, tuple, record,
      array, non-constant constructor, polymorphic variant or lazy
      construction; partial application; calls to known allocating
      stdlib entry points.  The engine's hot loops ([Sim.step], the
      scheduler backends, [Link], the packet pool) declare themselves
      [[@hot]] and are allocation-free by contract.
    - [registry-exhaustive]: a catch-all pattern in a multi-case match
      over the {!Mcc_core.Spec.protocol} registry type, or a registered
      consumer file that neither references a registry accessor
      ([Spec.protocols], [Spec.protocol_str], [Spec.protocol_heading])
      nor names every constructor.  Consumer findings attach to line 1
      of the consumer file.

    {2 Suppression}

    A finding is suppressed by an in-source pragma comment

    {[ (* lint: allow <rule-id> — justification *) ]}

    placed on the same line as the finding or on the line directly
    above it ([mli-coverage] and registry-consumer findings attach to
    line 1, so a pragma on the file's first line suppresses them), or
    by an entry in an allowlist file: one [<rule-id> <path>] pair per
    line, [#] comments, where a path ending in [/] matches as a prefix.
    Paths are normalised by dropping [.] and [..] segments before
    matching.  Typed findings go through exactly the same filters. *)

type rule = Kernel.rule =
  | Wall_clock
  | Ambient_randomness
  | Shared_mutable_toplevel
  | Float_poly_compare
  | Mli_coverage
  | Prof_span
  | Gc_stats
  | Domain_escape
  | Hot_alloc
  | Registry_exhaustive

val all_rules : rule list

val typed_rules : rule list
(** The rules that need [.cmt] type information: [domain-escape],
    [hot-alloc], [registry-exhaustive]. *)

val rule_id : rule -> string
(** The stable kebab-case identifier used in pragmas, allowlists, CLI
    flags and the JSON report. *)

val rule_of_id : string -> rule option
val rule_doc : rule -> string

type finding = Kernel.finding = {
  rule : rule;
  file : string;
  line : int;  (** 1-based *)
  col : int;  (** 0-based, matching compiler diagnostics *)
  message : string;
}

type allow_entry = Kernel.allow_entry = {
  allow_rule : rule;
  allow_path : string;  (** exact path, or a prefix when ending in [/] *)
}

type registry_check = Kernel.registry_check = {
  reg_def : string;  (** the [.ml] defining the registry, root-relative *)
  reg_type : string;  (** the variant type name, e.g. [protocol] *)
  reg_accessors : string list;
      (** value names in the defining module whose use counts as
          deriving from the registry *)
  reg_consumers : string list;
      (** files that must handle every registry entry *)
}

val default_registry : registry_check
(** [Spec.protocols] and its four consumers (matrix dispatch, scorecard
    headings, workload schema, workload [Build.run] dispatch). *)

type config = Kernel.config = {
  rules : rule list;  (** enabled rules *)
  allowlist : allow_entry list;
  build_dir : string option;
      (** where the typed stage looks for [.cmt] files; [None]
          autodetects ([_build/default] when present, else the current
          directory) *)
  registry : registry_check;
}

val default_config : config
(** Every rule enabled, empty allowlist, autodetected build dir,
    {!default_registry}. *)

val parse_allowlist : ?file:string -> string -> (allow_entry list, string) result
(** Parse allowlist text; [file] names the source in error messages. *)

val load_allowlist : string -> (allow_entry list, string) result

type report = Kernel.report = {
  findings : finding list;  (** sorted by file, line, column, rule *)
  errors : (string * string) list;  (** (file, message): unparseable inputs *)
  files_checked : int;
  cmts_loaded : int;  (** files the typed stage resolved a [.cmt] for *)
  cmts_missing : (string * string) list;
      (** (file, reason): typed stage degraded to syntactic-only *)
}

val check_file : config -> string -> (finding list, string) result
(** Lint one [.ml] file with the {e syntactic} stage only ([Error] on
    I/O or syntax errors).  All enabled syntactic rules run, including
    [mli-coverage] against the sibling path; typed rules need the
    [.cmt] context of {!run}. *)

val run : config -> string list -> report
(** Lint every [.ml] file under the given files and directories
    (recursing, skipping dot- and [_]-prefixed directories; traversal
    order is sorted, so reports are deterministic), through both
    stages.  A path that does not exist or fails to parse lands in
    [errors]; a file without a resolvable [.cmt] lands in
    [cmts_missing]. *)

val exit_code : report -> int
(** 0 clean, 1 findings, 2 errors (errors win over findings).
    [cmts_missing] alone never changes the exit code. *)

val pp_finding : Format.formatter -> finding -> unit
(** [file:line:col: [rule-id] message] — the compiler-style location
    prefix editors already know how to jump to. *)

val report_to_json : report -> Mcc_obs.Json.t
(** Machine-readable report: tool name, enabled rules, file count, the
    typed-stage coverage block ([cmts_loaded], [cmts_missing]),
    findings (rule/file/line/col/message) and errors. *)
