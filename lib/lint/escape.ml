(* domain-escape: conservative escape analysis over the Typedtree.

   A closure handed to Domain.spawn (or installed as a Domain.DLS
   initialiser) runs on another domain / is re-run per domain, so any
   mutable value it captures is shared mutable state.  The analysis is
   purely local: free variables of the closure are the idents used but
   not bound inside it (Ident stamps are unique, so no scope tracking
   is needed), and a free variable is flagged when its type is
   structurally mutable — ref, array, bytes, Hashtbl/Buffer/Queue/Stack,
   or a record declared with mutable fields in the same compilation
   unit.  Atomic.t is the sanctioned sharing primitive and is exempt.

   The one indirection the analysis sees through is a spawn argument
   that names a local [let]-bound function ([Domain.spawn worker]); any
   other non-literal argument is flagged as opaque, erring loud. *)

open Typedtree

let spawn_targets = [ "Domain.spawn"; "Domain.DLS.new_key" ]

let path_is name target =
  String.equal name target || String.ends_with ~suffix:("." ^ target) name

let rec first_some f = function
  | [] -> None
  | x :: rest -> ( match f x with Some _ as s -> s | None -> first_some f rest)

(* Structural mutability of a type expression.  [local_decls] maps
   same-unit type names to "declared with a mutable field"; records
   from other units are invisible (conservatively immutable) — the
   worker-state records the rule exists for live next to their spawns. *)
let rec mutable_reason ~local_decls depth ty =
  if depth > 4 then None
  else
    let recurse = mutable_reason ~local_decls (depth + 1) in
    match Types.get_desc ty with
    | Types.Tconstr (p, args, _) ->
        let name = Path.name p in
        let is t = path_is name t in
        if is "Atomic.t" then None
        else if is "ref" then Some "ref cell"
        else if String.equal name "array" then Some "array"
        else if String.equal name "bytes" || is "Bytes.t" then Some "bytes"
        else if is "Hashtbl.t" then Some "Hashtbl.t"
        else if is "Buffer.t" then Some "Buffer.t"
        else if is "Queue.t" then Some "Queue.t"
        else if is "Stack.t" then Some "Stack.t"
        else begin
          match Hashtbl.find_opt local_decls (Path.last p) with
          | Some true ->
              Some
                (Printf.sprintf "record with mutable fields (%s)" (Path.last p))
          | _ -> first_some recurse args
        end
    | Types.Ttuple ts -> first_some recurse ts
    | Types.Tpoly (ty, _) -> recurse ty
    | _ -> None

(* Same-unit type declarations with at least one mutable field. *)
let collect_local_decls str =
  let decls = Hashtbl.create 16 in
  let default = Tast_iterator.default_iterator in
  let type_declaration _it (td : type_declaration) =
    let mut =
      match td.typ_kind with
      | Ttype_record lds ->
          List.exists (fun ld -> ld.ld_mutable = Asttypes.Mutable) lds
      | _ -> false
    in
    Hashtbl.replace decls td.typ_name.Asttypes.txt mut
  in
  let it = { default with type_declaration } in
  it.structure it str;
  decls

(* let-bound function literals, for seeing through [Domain.spawn worker]. *)
let collect_fn_bindings str =
  let fns = Hashtbl.create 16 in
  let default = Tast_iterator.default_iterator in
  let value_binding it (vb : value_binding) =
    (match (vb.vb_pat.pat_desc, vb.vb_expr.exp_desc) with
    | Tpat_var (id, _), Texp_function _ ->
        Hashtbl.replace fns (Ident.unique_name id) vb.vb_expr
    | _ -> ());
    default.value_binding it vb
  in
  let it = { default with value_binding } in
  it.structure it str;
  fns

(* Free variables of [closure]: idents used but bound nowhere inside
   it.  Uses are kept in traversal order, one entry per ident. *)
let free_vars closure =
  let bound = Hashtbl.create 32 in
  let used = ref [] in
  let default = Tast_iterator.default_iterator in
  let bind id = Hashtbl.replace bound (Ident.unique_name id) () in
  let pat : type k. Tast_iterator.iterator -> k general_pattern -> unit =
   fun it p ->
    (match p.pat_desc with
    | Tpat_var (id, _) -> bind id
    | Tpat_alias (_, id, _) -> bind id
    | _ -> ());
    default.pat it p
  in
  let expr it (e : expression) =
    (match e.exp_desc with
    | Texp_function { param; _ } -> bind param
    | Texp_for (id, _, _, _, _, _) -> bind id
    | Texp_ident (Path.Pident id, _, _) ->
        used := (id, e.exp_loc, e.exp_type) :: !used
    | _ -> ());
    default.expr it e
  in
  let it = { default with pat; expr } in
  it.expr it closure;
  let seen = Hashtbl.create 32 in
  List.filter
    (fun (id, _, _) ->
      let key = Ident.unique_name id in
      if Hashtbl.mem bound key || Hashtbl.mem seen key then false
      else begin
        Hashtbl.replace seen key ();
        true
      end)
    (List.rev !used)

let check ~path str =
  let local_decls = collect_local_decls str in
  let fn_bindings = collect_fn_bindings str in
  let findings = ref [] in
  let emit (loc : Location.t) message =
    findings :=
      {
        Kernel.rule = Kernel.Domain_escape;
        file = path;
        line = loc.loc_start.pos_lnum;
        col = loc.loc_start.pos_cnum - loc.loc_start.pos_bol;
        message;
      }
      :: !findings
  in
  let analyze_closure ~target closure =
    List.iter
      (fun (id, loc, ty) ->
        match mutable_reason ~local_decls 0 ty with
        | None -> ()
        | Some reason ->
            emit loc
              (Printf.sprintf
                 "mutable %s `%s' is captured by a closure passed to %s; \
                  cross-domain sharing must go through Atomic, or the state \
                  must stay domain-confined"
                 reason (Ident.name id) target))
      (free_vars closure)
  in
  let default = Tast_iterator.default_iterator in
  let expr it (e : expression) =
    (match e.exp_desc with
    | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args) -> (
        let name = Path.name p in
        match List.find_opt (path_is name) spawn_targets with
        | None -> ()
        | Some target -> (
            (* erased optional arguments surface as ghost [None]
               constructs in [args]; the closure is the unlabeled one *)
            match
              List.find_map
                (function Asttypes.Nolabel, Some a -> Some a | _ -> None)
                args
            with
            | None -> ()
            | Some arg -> (
                match arg.exp_desc with
                | Texp_function _ -> analyze_closure ~target arg
                | Texp_ident (Path.Pident id, _, _) -> (
                    match
                      Hashtbl.find_opt fn_bindings (Ident.unique_name id)
                    with
                    | Some fn -> analyze_closure ~target fn
                    | None ->
                        emit arg.exp_loc
                          (Printf.sprintf
                             "opaque closure argument to %s; pass a literal \
                              fun or a locally let-bound function so captures \
                              can be checked"
                             target))
                | _ ->
                    emit arg.exp_loc
                      (Printf.sprintf
                         "opaque closure argument to %s; pass a literal fun \
                          or a locally let-bound function so captures can be \
                          checked"
                         target))))
    | _ -> ());
    default.expr it e
  in
  let it = { default with expr } in
  it.structure it str;
  List.rev !findings
