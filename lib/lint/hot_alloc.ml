(* hot-alloc: allocation sites inside functions marked [@hot].

   The engine's inner loops (Sim.step, the scheduler backends, link
   transmission, the packet pool) are allocation-free by contract so a
   steady-state run puts no pressure on the minor heap.  The contract
   is declared with a [@hot] attribute on the binding; this rule walks
   the typed body of every [@hot] function and flags expressions that
   allocate:

   - closure construction (a [fun] in executed position — the body of
     the nested closure is NOT walked, it runs elsewhere);
   - tuple / record / non-constant-constructor / polymorphic-variant /
     non-empty array construction, and [lazy];
   - partial application, detected by the application's *result* type
     being an arrow (erased optional arguments show up as missing
     arguments in the Typedtree, so counting arguments would
     false-positive on [Metrics.incr c]);
   - calls to known allocating stdlib entry points (Array.make,
     Printf.sprintf, List.map, ...).

   Out of scope (documented limitations): float boxing, closures the
   compiler eliminates by inlining, and allocation hidden behind
   callees outside the known list.  [assert] bodies are skipped —
   they are debug-build-only. *)

open Typedtree

let path_is name target =
  String.equal name target || String.ends_with ~suffix:("." ^ target) name

let has_hot_attr attrs =
  List.exists
    (fun (a : Parsetree.attribute) -> String.equal a.attr_name.txt "hot")
    attrs

(* Stdlib entry points that always allocate their result. *)
let allocating_callees =
  [
    "ref";
    "Array.make";
    "Array.init";
    "Array.copy";
    "Array.append";
    "Array.sub";
    "Array.of_list";
    "Array.to_list";
    "List.init";
    "List.map";
    "List.mapi";
    "List.filter";
    "List.filter_map";
    "List.rev";
    "List.append";
    "List.concat";
    "List.sort";
    "Printf.sprintf";
    "Format.asprintf";
    "String.concat";
    "String.sub";
    "String.make";
    "String.init";
    "Bytes.create";
    "Bytes.make";
    "Bytes.sub";
    "Buffer.create";
    "Buffer.contents";
    "Hashtbl.create";
    "Queue.create";
    "Stack.create";
  ]

let rec is_arrow ty =
  match Types.get_desc ty with
  | Types.Tarrow _ -> true
  | Types.Tpoly (ty, _) -> is_arrow ty
  | _ -> false

(* Strip the curried-parameter spine of a [@hot] binding: directly
   nested single-case unguarded Texp_functions are the parameters of
   one multi-argument function (how [let f x y = ...] is typed), not
   per-call closures.  A pattern-matching [function] body yields its
   case right-hand sides. *)
let rec bodies e =
  match e.exp_desc with
  | Texp_function { cases = [ { c_rhs; c_guard = None; _ } ]; _ } ->
      bodies c_rhs
  | Texp_function { cases; _ } ->
      List.concat_map
        (fun c ->
          (match c.c_guard with Some g -> [ g ] | None -> []) @ [ c.c_rhs ])
        cases
  | _ -> [ e ]

let check ~path str =
  let findings = ref [] in
  let emit ~fname (loc : Location.t) what =
    findings :=
      {
        Kernel.rule = Kernel.Hot_alloc;
        file = path;
        line = loc.loc_start.pos_lnum;
        col = loc.loc_start.pos_cnum - loc.loc_start.pos_bol;
        message =
          Printf.sprintf "%s in [@hot] function `%s'; hot paths are \
                          allocation-free by contract"
            what fname;
      }
      :: !findings
  in
  let walk_hot ~fname body =
    let default = Tast_iterator.default_iterator in
    let expr it (e : expression) =
      match e.exp_desc with
      | Texp_assert _ -> ()
      | Texp_function _ -> emit ~fname e.exp_loc "closure allocation"
      | Texp_tuple _ ->
          emit ~fname e.exp_loc "tuple allocation";
          default.expr it e
      | Texp_record _ ->
          emit ~fname e.exp_loc "record allocation";
          default.expr it e
      | Texp_array (_ :: _) ->
          emit ~fname e.exp_loc "array allocation";
          default.expr it e
      | Texp_construct (_, cd, _ :: _) ->
          emit ~fname e.exp_loc
            (Printf.sprintf "allocation of constructor %s" cd.cstr_name);
          default.expr it e
      | Texp_variant (_, Some _) ->
          emit ~fname e.exp_loc "polymorphic-variant allocation";
          default.expr it e
      | Texp_lazy _ ->
          emit ~fname e.exp_loc "lazy-block allocation";
          default.expr it e
      | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, _) ->
          let name = Path.name p in
          (match List.find_opt (path_is name) allocating_callees with
          | Some callee ->
              emit ~fname e.exp_loc
                (Printf.sprintf "call to allocating %s" callee)
          | None ->
              if is_arrow e.exp_type then
                emit ~fname e.exp_loc "partial application (allocates a closure)");
          default.expr it e
      | Texp_apply _ ->
          if is_arrow e.exp_type then
            emit ~fname e.exp_loc "partial application (allocates a closure)";
          default.expr it e
      | _ -> default.expr it e
    in
    let it = { default with expr } in
    it.expr it body
  in
  let default = Tast_iterator.default_iterator in
  let value_binding it (vb : value_binding) =
    if has_hot_attr vb.vb_attributes then begin
      let fname =
        match vb.vb_pat.pat_desc with
        | Tpat_var (id, _) -> Ident.name id
        | _ -> "<hot>"
      in
      List.iter (walk_hot ~fname) (bodies vb.vb_expr)
    end
    else default.value_binding it vb
  in
  let it = { default with value_binding } in
  it.structure it str;
  List.rev !findings
