(* Stage two of the linter: rules that need type information.

   For every .ml under check, resolve its .cmt through Cmt_index and
   run the enabled typed rules over the Typedtree.  A file whose .cmt
   cannot be found degrades gracefully: it is recorded in [t_missing]
   (surfaced in the report and the JSON output) and the file is still
   covered by the syntactic stage — the typed stage reports, it never
   fails the run by itself.

   The registry consumer check is the one cross-file rule: it needs
   the registry definition's .cmt (for the constructor list) plus each
   consumer's.  It only runs for consumers that are part of this lint
   invocation, so linting a subtree never complains about files it was
   not asked to look at. *)

type result = {
  t_findings : Kernel.finding list;
  t_loaded : int;
  t_missing : (string * string) list;
}

let file_matches ~file ~target =
  let file = Kernel.normalize_path file in
  let target = Kernel.normalize_path target in
  String.equal file target || String.ends_with ~suffix:("/" ^ target) file

let run (config : Kernel.config) files =
  let enabled r = List.mem r config.Kernel.rules in
  if not (List.exists enabled Kernel.typed_rules) then
    { t_findings = []; t_loaded = 0; t_missing = [] }
  else begin
    let index = Cmt_index.create ?build_dir:config.Kernel.build_dir () in
    let findings = ref [] in
    let missing = ref [] in
    let ml_files =
      List.filter (fun f -> Filename.check_suffix f ".ml") files
    in
    List.iter
      (fun file ->
        match Cmt_index.lookup index file with
        | Error reason -> missing := (file, reason) :: !missing
        | Ok str ->
            if enabled Kernel.Domain_escape then
              findings := Escape.check ~path:file str @ !findings;
            if enabled Kernel.Hot_alloc then
              findings := Hot_alloc.check ~path:file str @ !findings;
            if enabled Kernel.Registry_exhaustive then
              findings :=
                Registry.check_catch_all ~path:file
                  ~registry:config.Kernel.registry str
                @ !findings)
      ml_files;
    if enabled Kernel.Registry_exhaustive then begin
      let registry = config.Kernel.registry in
      let consumers_here =
        List.filter
          (fun file ->
            List.exists
              (fun c -> file_matches ~file ~target:c)
              registry.Kernel.reg_consumers)
          ml_files
      in
      if consumers_here <> [] then begin
        match Cmt_index.lookup index registry.Kernel.reg_def with
        | Error reason ->
            missing := (registry.Kernel.reg_def, reason) :: !missing
        | Ok def_str -> (
            match Registry.constructors ~registry def_str with
            | [] -> ()
            | ctors ->
                List.iter
                  (fun file ->
                    match Cmt_index.lookup index file with
                    | Error _ -> () (* already recorded above *)
                    | Ok str ->
                        findings :=
                          Registry.check_consumer ~path:file ~registry ~ctors
                            str
                          @ !findings)
                  consumers_here)
      end
    end;
    {
      t_findings = !findings;
      t_loaded = Cmt_index.loaded index;
      t_missing = List.rev !missing;
    }
  end
