(* The linter's command-line surface, shared by the standalone
   mcc-lint executable (what `dune build @lint` runs) and the
   `mcc lint` subcommand.  The two differ only in their name and in
   whether a run is recorded in the run ledger by default: the
   subcommand records (so `mcc history` / `mcc diff` show lint drift
   alongside perf drift), the standalone gate does not (CI loops and
   editor integrations should not grow the ledger). *)

open Cmdliner
module Json = Mcc_obs.Json
module Ledger = Mcc_obs.Ledger
module Profile = Mcc_obs.Profile

let fmt = Format.std_formatter

(* --- report renderings --------------------------------------------------- *)

(* Minimal SARIF 2.1.0: a single run with the rule catalogue and one
   result per finding.  startColumn is 1-based in SARIF, findings carry
   compiler-style 0-based columns. *)
let sarif_of_report (r : Lint.report) =
  Json.Obj
    [
      ("version", Json.String "2.1.0");
      ( "$schema",
        Json.String "https://json.schemastore.org/sarif-2.1.0.json" );
      ( "runs",
        Json.List
          [
            Json.Obj
              [
                ( "tool",
                  Json.Obj
                    [
                      ( "driver",
                        Json.Obj
                          [
                            ("name", Json.String "mcc-lint");
                            ( "rules",
                              Json.List
                                (List.map
                                   (fun ru ->
                                     Json.Obj
                                       [
                                         ("id", Json.String (Lint.rule_id ru));
                                         ( "shortDescription",
                                           Json.Obj
                                             [
                                               ( "text",
                                                 Json.String (Lint.rule_doc ru)
                                               );
                                             ] );
                                       ])
                                   Lint.all_rules) );
                          ] );
                    ] );
                ( "results",
                  Json.List
                    (List.map
                       (fun (f : Lint.finding) ->
                         Json.Obj
                           [
                             ("ruleId", Json.String (Lint.rule_id f.rule));
                             ("level", Json.String "error");
                             ( "message",
                               Json.Obj [ ("text", Json.String f.message) ] );
                             ( "locations",
                               Json.List
                                 [
                                   Json.Obj
                                     [
                                       ( "physicalLocation",
                                         Json.Obj
                                           [
                                             ( "artifactLocation",
                                               Json.Obj
                                                 [
                                                   ( "uri",
                                                     Json.String f.file );
                                                 ] );
                                             ( "region",
                                               Json.Obj
                                                 [
                                                   ( "startLine",
                                                     Json.Int f.line );
                                                   ( "startColumn",
                                                     Json.Int (f.col + 1) );
                                                 ] );
                                           ] );
                                     ];
                                 ] );
                           ])
                       r.Lint.findings) );
              ];
          ] );
    ]

(* --- the ledger entry ---------------------------------------------------- *)

(* Payload in the Crossrun convention ("config" digested, "rows" with
   summary + metrics) so `mcc history --metric findings` and `mcc diff`
   work on lint entries unchanged.  The findings digest is a content
   hash of the sorted findings, so two lint runs drift exactly when
   their findings differ. *)
let ledger_payload ~paths ~enabled (r : Lint.report) =
  let findings_digest =
    Ledger.digest_of_json
      (Json.List
         (List.map
            (fun (f : Lint.finding) ->
              Json.List
                [
                  Json.String (Lint.rule_id f.rule);
                  Json.String f.file;
                  Json.Int f.line;
                  Json.Int f.col;
                  Json.String f.message;
                ])
            r.Lint.findings))
  in
  let rule_counts =
    List.map
      (fun ru ->
        ( Lint.rule_id ru,
          Json.Int
            (List.length
               (List.filter (fun (f : Lint.finding) -> f.rule = ru)
                  r.Lint.findings)) ))
      enabled
  in
  Json.Obj
    [
      ( "config",
        Json.Obj
          [
            ("command", Json.String "lint");
            ("paths", Json.List (List.map (fun p -> Json.String p) paths));
            ( "rules",
              Json.List
                (List.map (fun ru -> Json.String (Lint.rule_id ru)) enabled) );
          ] );
      ( "rows",
        Json.List
          [
            Json.Obj
              [
                ("name", Json.String "lint");
                ( "summary",
                  Json.Obj
                    [
                      ("findings", Json.Int (List.length r.Lint.findings));
                      ("errors", Json.Int (List.length r.Lint.errors));
                      ("files_checked", Json.Int r.Lint.files_checked);
                      ("cmts_loaded", Json.Int r.Lint.cmts_loaded);
                      ( "cmts_missing",
                        Json.Int (List.length r.Lint.cmts_missing) );
                      ("findings_digest", Json.String findings_digest);
                    ] );
                ("metrics", Json.Obj rule_counts);
              ];
          ] );
    ]

(* --- the command --------------------------------------------------------- *)

let run_lint ~name ~ledger_default paths rules disable allow json sarif
    build_dir quiet list_rules ledger =
  if list_rules then begin
    List.iter
      (fun r ->
        Format.fprintf fmt "%-24s %s@." (Lint.rule_id r) (Lint.rule_doc r))
      Lint.all_rules;
    0
  end
  else begin
    let parse_rule id =
      match Lint.rule_of_id id with
      | Some r -> r
      | None ->
          Printf.eprintf "%s: unknown rule id %S (try --list-rules)\n" name id;
          exit 2
    in
    let enabled =
      let base =
        match rules with [] -> Lint.all_rules | ids -> List.map parse_rule ids
      in
      let off = List.map parse_rule disable in
      List.filter (fun r -> not (List.mem r off)) base
    in
    let allowlist =
      (* --allow names a file that must exist; with no flag the
         repo-root lint.allow is picked up when present. *)
      let path =
        match allow with
        | Some p -> Some p
        | None -> if Sys.file_exists "lint.allow" then Some "lint.allow" else None
      in
      match path with
      | None -> []
      | Some p -> (
          match Lint.load_allowlist p with
          | Ok entries -> entries
          | Error msg ->
              Printf.eprintf "%s: %s\n" name msg;
              exit 2)
    in
    let config =
      {
        Lint.rules = enabled;
        allowlist;
        build_dir;
        registry = Lint.default_registry;
      }
    in
    let report, elapsed =
      Profile.with_wall_clock (fun () -> Lint.run config paths)
    in
    if not quiet then begin
      List.iter
        (fun f -> Format.fprintf fmt "%a@." Lint.pp_finding f)
        report.Lint.findings;
      List.iter
        (fun (file, msg) -> Format.fprintf fmt "%s: error: %s@." file msg)
        report.Lint.errors;
      List.iter
        (fun (file, reason) ->
          Format.fprintf fmt "%s: note: typed rules skipped (%s)@." file
            reason)
        report.Lint.cmts_missing;
      Format.fprintf fmt
        "%s: %d finding%s, %d error%s in %d files (%d .cmt%s loaded%s)@."
        name
        (List.length report.Lint.findings)
        (if List.length report.Lint.findings = 1 then "" else "s")
        (List.length report.Lint.errors)
        (if List.length report.Lint.errors = 1 then "" else "s")
        report.Lint.files_checked report.Lint.cmts_loaded
        (if report.Lint.cmts_loaded = 1 then "" else "s")
        (match List.length report.Lint.cmts_missing with
        | 0 -> ""
        | n -> Printf.sprintf ", %d missing" n)
    end;
    let write_doc path doc =
      let line = Json.to_string doc ^ "\n" in
      if String.equal path "-" then print_string line
      else
        Out_channel.with_open_text path (fun oc ->
            Out_channel.output_string oc line)
    in
    (match json with
    | None -> ()
    | Some path -> write_doc path (Lint.report_to_json report));
    (match sarif with
    | None -> ()
    | Some path -> write_doc path (sarif_of_report report));
    let record = Option.value ~default:ledger_default ledger in
    if record then begin
      (* Recording is telemetry: a ledger failure warns and never fails
         the lint run that produced the findings. *)
      let dir = Ledger.default_dir () in
      match
        Ledger.append ~dir ~kind:"lint" ~label:(String.concat "," paths)
          ~payload:(ledger_payload ~paths ~enabled report)
          ~wall:
            [
              ("recorded_unix_s", Json.Float (Profile.now ()));
              ("wall_s", Json.Float elapsed);
            ]
          ()
      with
      | Ok _ -> ()
      | Error msg -> Printf.eprintf "%s: ledger: %s (continuing)\n" name msg
    end;
    Lint.exit_code report
  end

let paths_arg =
  Arg.(
    value
    & pos_all string [ "lib" ]
    & info [] ~docv:"PATH"
        ~doc:"Files or directories to lint (default: $(b,lib)).")

let rules_arg =
  Arg.(
    value
    & opt (list string) []
    & info [ "rules"; "r" ] ~docv:"RULE,..."
        ~doc:"Run only these rules (default: all; see $(b,--list-rules)).")

let disable_arg =
  Arg.(
    value
    & opt (list string) []
    & info [ "disable" ] ~docv:"RULE,..." ~doc:"Disable these rules.")

let allow_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "allow" ] ~docv:"FILE"
        ~doc:
          "Allowlist file: one \"rule-id path\" pair per line, # comments, \
           trailing / for directory prefixes.  Default: $(b,lint.allow) in \
           the current directory, when present.")

let json_arg =
  Arg.(
    value
    & opt ~vopt:(Some "-") (some string) None
    & info [ "json" ] ~docv:"PATH"
        ~doc:
          "Write the findings report as one JSON document to $(docv) \
           ($(b,-) = stdout).")

let sarif_arg =
  Arg.(
    value
    & opt ~vopt:(Some "-") (some string) None
    & info [ "sarif" ] ~docv:"PATH"
        ~doc:
          "Write the findings as a SARIF 2.1.0 document to $(docv) \
           ($(b,-) = stdout), for code-scanning UIs.")

let build_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "build-dir" ] ~docv:"DIR"
        ~doc:
          "Where the typed rules look for .cmt files (default: \
           $(b,_build/default) when present, else the current directory).")

let quiet_arg =
  Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Suppress human output.")

let list_rules_arg =
  Arg.(
    value & flag
    & info [ "list-rules" ] ~doc:"Print every rule id with its rationale.")

let ledger_arg =
  Arg.(
    value
    & vflag None
        [
          ( Some true,
            info [ "ledger" ]
              ~doc:
                "Record this invocation in the run ledger ($(b,.mcc/ledger), \
                 overridable via $(b,MCC_LEDGER)); $(b,mcc history) and \
                 $(b,mcc diff) then show lint drift." );
          ( Some false,
            info [ "no-ledger" ]
              ~doc:"Do not record this invocation in the run ledger." );
        ])

let term ~name ~ledger_default =
  (* bound before the local open: Term also exports a (deprecated)
     [name], which would shadow the parameter inside Term.(...) *)
  let run = run_lint ~name ~ledger_default in
  Term.(
    const run
    $ paths_arg $ rules_arg $ disable_arg $ allow_arg $ json_arg $ sarif_arg
    $ build_dir_arg $ quiet_arg $ list_rules_arg $ ledger_arg)

let man =
  [
    `S Manpage.s_description;
    `P
      "Two-stage static-analysis gate for the simulator's determinism and \
       domain-safety invariants.  The syntactic stage parses every .ml file \
       under the given paths with the compiler's own parser and rejects \
       host-clock reads, ambient randomness, module-level mutable state \
       shared across domains, polymorphic float comparison, GC-statistics \
       reads outside the observability layer, and missing interfaces.";
    `P
      "The typed stage loads each file's .cmt (dune's -bin-annot output) \
       and walks the Typedtree: $(b,domain-escape) flags mutable values \
       captured by closures passed to Domain.spawn / Domain.DLS.new_key, \
       $(b,hot-alloc) flags allocating expressions inside functions marked \
       [@hot], and $(b,registry-exhaustive) checks that every \
       Spec.protocols entry reaches every dispatch.  A missing .cmt is \
       reported as a note and degrades that file to syntactic coverage — \
       it never fails the run.";
    `P
      "Suppress an individual finding with a pragma comment on the same \
       or preceding line: (* lint: allow rule-id — justification *), or \
       with an allowlist entry (see $(b,--allow)).";
    `S Manpage.s_exit_status;
    `P "0 on a clean tree, 1 when findings remain, 2 on parse errors.";
  ]

let info ~name =
  let doc =
    "static-analysis gate for the simulator's determinism and domain-safety \
     invariants"
  in
  Cmd.info name ~doc ~man

let cmd ~name ~ledger_default = Cmd.v (info ~name) (term ~name ~ledger_default)
