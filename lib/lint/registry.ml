(* registry-exhaustive: the Spec.protocols registry must reach every
   dispatch.

   Two complementary checks, both over the Typedtree so the registry
   type is identified by its resolved path rather than by name
   coincidence:

   - catch-all: in any match/function with two or more cases whose
     patterns have the registry type, a catch-all case (_, a variable,
     an alias or or-pattern reducing to one) silently swallows future
     registry entries — the whole point of a variant registry is that
     adding a constructor breaks every dispatch at compile time.

   - consumer completeness: each registered consumer file must either
     reference one of the registry's accessor values (deriving its
     behaviour from Spec.protocols and friends, which track the
     registry by construction) or name every constructor itself.  The
     finding attaches to line 1 of the consumer, so a line-1 pragma
     can suppress it if a consumer is ever intentionally partial. *)

open Typedtree

(* Last name segment of a dotted/dune-mangled module path:
   "Mcc_core__Spec.protocols" -> (strip value) -> "Mcc_core__Spec" -> "Spec". *)
let seg_last s =
  let after_dot =
    match String.rindex_opt s '.' with
    | Some i -> String.sub s (i + 1) (String.length s - i - 1)
    | None -> s
  in
  let rec find i =
    if i < 0 then None
    else if
      i + 1 < String.length after_dot
      && after_dot.[i] = '_'
      && after_dot.[i + 1] = '_'
    then Some (i + 2)
    else find (i - 1)
  in
  match find (String.length after_dot - 2) with
  | Some start -> String.sub after_dot start (String.length after_dot - start)
  | None -> after_dot

let def_module (registry : Kernel.registry_check) =
  String.capitalize_ascii
    (Filename.remove_extension (Filename.basename registry.reg_def))

(* Is [p] the registry type?  Either a dotted path whose module segment
   is the defining module, or — only inside the defining file itself —
   the bare type name. *)
let is_registry_type ~in_def (registry : Kernel.registry_check) p =
  String.equal (Path.last p) registry.reg_type
  &&
  let name = Path.name p in
  if String.equal name registry.reg_type then in_def
  else
    let modpart =
      String.sub name 0
        (String.length name - String.length registry.reg_type - 1)
    in
    String.equal (seg_last modpart) (def_module registry)

let rec is_catch_all : type k. k general_pattern -> bool =
 fun p ->
  match p.pat_desc with
  | Tpat_any -> true
  | Tpat_var _ -> true
  | Tpat_alias (p, _, _) -> is_catch_all p
  | Tpat_or (a, b, _) -> is_catch_all a || is_catch_all b
  | Tpat_value v -> is_catch_all (v :> value general_pattern)
  | _ -> false

let finding ~path ~line ~col message =
  {
    Kernel.rule = Kernel.Registry_exhaustive;
    file = path;
    line;
    col;
    message;
  }

let check_catch_all ~path ~registry str =
  let in_def =
    let wanted = Kernel.normalize_path path in
    let def = Kernel.normalize_path registry.Kernel.reg_def in
    String.equal wanted def || String.ends_with ~suffix:("/" ^ def) wanted
    || String.ends_with ~suffix:("/" ^ Filename.basename def) wanted
  in
  let findings = ref [] in
  let check_cases : type k. k case list -> unit =
   fun cases ->
    match cases with
    | [] | [ _ ] -> ()
    | _ ->
        List.iter
          (fun c ->
            let p = c.c_lhs in
            match Types.get_desc p.pat_type with
            | Types.Tconstr (tp, _, _)
              when is_registry_type ~in_def registry tp ->
                if is_catch_all p then
                  findings :=
                    finding ~path ~line:p.pat_loc.loc_start.pos_lnum
                      ~col:
                        (p.pat_loc.loc_start.pos_cnum
                        - p.pat_loc.loc_start.pos_bol)
                      (Printf.sprintf
                         "catch-all pattern over registry type %s.%s; \
                          enumerate the constructors so new registry entries \
                          fail to compile here instead of being silently \
                          swallowed"
                         (def_module registry) registry.Kernel.reg_type)
                    :: !findings
            | _ -> ())
          cases
  in
  let default = Tast_iterator.default_iterator in
  let expr it (e : expression) =
    (match e.exp_desc with
    | Texp_match (_, cases, _) -> check_cases cases
    | Texp_function { cases; _ } -> check_cases cases
    | _ -> ());
    default.expr it e
  in
  let it = { default with expr } in
  it.structure it str;
  List.rev !findings

(* Constructor names of the registry variant, from the defining file's
   typed tree. *)
let constructors ~registry str =
  let found = ref [] in
  let default = Tast_iterator.default_iterator in
  let type_declaration _it (td : type_declaration) =
    if String.equal td.typ_name.Asttypes.txt registry.Kernel.reg_type then
      match td.typ_kind with
      | Ttype_variant cds ->
          found := List.map (fun cd -> cd.cd_name.Asttypes.txt) cds
      | _ -> ()
  in
  let it = { default with type_declaration } in
  it.structure it str;
  !found

let check_consumer ~path ~registry ~ctors str =
  let accessor_used = ref false in
  let mentioned = Hashtbl.create 16 in
  let dm = def_module registry in
  let note_accessor name =
    List.iter
      (fun acc ->
        if
          String.ends_with ~suffix:("." ^ acc) name
          && String.equal
               (seg_last
                  (String.sub name 0
                     (String.length name - String.length acc - 1)))
               dm
        then accessor_used := true)
      registry.Kernel.reg_accessors
  in
  let note_ctor (cd : Types.constructor_description) =
    match Types.get_desc cd.cstr_res with
    | Types.Tconstr (tp, _, _) when is_registry_type ~in_def:false registry tp
      ->
        Hashtbl.replace mentioned cd.cstr_name ()
    | _ -> ()
  in
  let default = Tast_iterator.default_iterator in
  let expr it (e : expression) =
    (match e.exp_desc with
    | Texp_ident (p, _, _) -> note_accessor (Path.name p)
    | Texp_construct (_, cd, _) -> note_ctor cd
    | _ -> ());
    default.expr it e
  in
  let pat : type k. Tast_iterator.iterator -> k general_pattern -> unit =
   fun it p ->
    (match p.pat_desc with
    | Tpat_construct (_, cd, _, _) -> note_ctor cd
    | _ -> ());
    default.pat it p
  in
  let it = { default with expr; pat } in
  it.structure it str;
  if !accessor_used then []
  else
    let missing =
      List.filter (fun c -> not (Hashtbl.mem mentioned c)) ctors
    in
    if missing = [] then []
    else
      [
        finding ~path ~line:1 ~col:0
          (Printf.sprintf
             "registry consumer neither references %s.%s nor names every %s \
              constructor (missing: %s); new registry entries would silently \
              skip this dispatch"
             dm
             (String.concat "/" registry.Kernel.reg_accessors)
             registry.Kernel.reg_type
             (String.concat ", " missing));
      ]
