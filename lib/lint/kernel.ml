(* Shared vocabulary of both lint stages: rules, findings, the config
   record, suppression (pragmas + allowlist) and path normalisation.
   The syntactic pass (Lint) and the typed pass (Typed and the rule
   modules under it) both build on these types, so they live below
   either stage. *)

type rule =
  | Wall_clock
  | Ambient_randomness
  | Shared_mutable_toplevel
  | Float_poly_compare
  | Mli_coverage
  | Prof_span
  | Gc_stats
  | Domain_escape
  | Hot_alloc
  | Registry_exhaustive

let all_rules =
  [
    Wall_clock;
    Ambient_randomness;
    Shared_mutable_toplevel;
    Float_poly_compare;
    Mli_coverage;
    Prof_span;
    Gc_stats;
    Domain_escape;
    Hot_alloc;
    Registry_exhaustive;
  ]

let typed_rules = [ Domain_escape; Hot_alloc; Registry_exhaustive ]

let rule_id = function
  | Wall_clock -> "wall-clock"
  | Ambient_randomness -> "ambient-randomness"
  | Shared_mutable_toplevel -> "shared-mutable-toplevel"
  | Float_poly_compare -> "float-poly-compare"
  | Mli_coverage -> "mli-coverage"
  | Prof_span -> "prof-span"
  | Gc_stats -> "gc-stats"
  | Domain_escape -> "domain-escape"
  | Hot_alloc -> "hot-alloc"
  | Registry_exhaustive -> "registry-exhaustive"

let rule_of_id s =
  List.find_opt (fun r -> String.equal (rule_id r) s) all_rules

let rule_doc = function
  | Wall_clock ->
      "host clock dependency (Unix.gettimeofday/Unix.time/Sys.time, or a \
       Unix.sleep/sleepf pacing wait); use the simulated clock, or \
       Mcc_obs.Profile.with_wall_clock for profiling"
  | Ambient_randomness ->
      "ambient Random state (self_init or the global generator); use \
       seeded, explicitly threaded state (Mcc_util.Prng, Random.State)"
  | Shared_mutable_toplevel ->
      "mutable state created at module level is shared across every \
       domain; use Domain.DLS registries or Atomic"
  | Float_poly_compare ->
      "polymorphic =/compare on floats (or bare `compare`); use \
       Float.equal/Float.compare/String.compare so comparisons stay \
       monomorphic"
  | Mli_coverage -> "every library .ml must have a sibling .mli"
  | Prof_span ->
      "self-profiler span sites (Prof.span / Prof.with_span) must stay \
       in lib/ modules with an interface, so every instrumentation \
       point is part of a documented surface"
  | Gc_stats ->
      "GC statistics reads (Gc.quick_stat/Gc.stat/Gc.minor_words/...) \
       outside lib/obs; GC figures are live telemetry only and must \
       never feed sinks or ledger payloads"
  | Domain_escape ->
      "[typed] mutable value (ref, array, bytes, Hashtbl, record with \
       mutable fields) captured by a closure passed to Domain.spawn or \
       Domain.DLS.new_key; share via Atomic or keep the state \
       domain-confined"
  | Hot_alloc ->
      "[typed] allocating expression (closure/tuple/record/array/variant \
       construction, partial application, a known allocating call) in a \
       function marked [@hot]; the engine's hot loops are \
       allocation-free by contract"
  | Registry_exhaustive ->
      "[typed] a catch-all pattern over the Spec.protocol registry type, \
       or a registry consumer that neither derives from Spec.protocols \
       nor names every constructor; new protocols must reach every \
       dispatch"

type finding = {
  rule : rule;
  file : string;
  line : int;
  col : int;
  message : string;
}

type allow_entry = { allow_rule : rule; allow_path : string }

type registry_check = {
  reg_def : string;
  reg_type : string;
  reg_accessors : string list;
  reg_consumers : string list;
}

(* The Spec.protocols registry (PR 9): matrix dispatch, workload schema,
   Build.run dispatch and the scorecard headings must each track it. *)
let default_registry =
  {
    reg_def = "lib/core/spec.ml";
    reg_type = "protocol";
    reg_accessors = [ "protocols"; "protocol_str"; "protocol_heading" ];
    reg_consumers =
      [
        "lib/attack/matrix.ml";
        "lib/attack/scorecard.ml";
        "lib/workload/schema.ml";
        "lib/workload/build.ml";
      ];
  }

type config = {
  rules : rule list;
  allowlist : allow_entry list;
  build_dir : string option;
  registry : registry_check;
}

let default_config =
  {
    rules = all_rules;
    allowlist = [];
    build_dir = None;
    registry = default_registry;
  }

type report = {
  findings : finding list;
  errors : (string * string) list;
  files_checked : int;
  cmts_loaded : int;
  cmts_missing : (string * string) list;
}

(* --- paths and the allowlist -------------------------------------------- *)

(* "./lib/core/runner.ml" and "../lib/core/runner.ml" (as seen from the
   test tree in _build) must both match an allowlist entry written as
   "lib/core/runner.ml", so matching drops "." and ".." segments. *)
let normalize_path p =
  String.split_on_char '/' p
  |> List.filter (fun seg ->
         not
           (String.equal seg "" || String.equal seg "."
           || String.equal seg ".."))
  |> String.concat "/"

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

let allow_matches entry path =
  let path = normalize_path path in
  let entry_path = entry.allow_path in
  if String.length entry_path > 0 && entry_path.[String.length entry_path - 1] = '/'
  then
    let prefix = normalize_path entry_path ^ "/" in
    String.length path >= String.length prefix
    && String.equal (String.sub path 0 (String.length prefix)) prefix
  else String.equal path (normalize_path entry_path)

let parse_allowlist ?(file = "<allowlist>") text =
  let err = ref None in
  let entries =
    String.split_on_char '\n' text
    |> List.mapi (fun i line -> (i + 1, line))
    |> List.filter_map (fun (lnum, line) ->
           let line =
             match String.index_opt line '#' with
             | Some i -> String.sub line 0 i
             | None -> line
           in
           let line = String.trim line in
           if String.equal line "" then None
           else
             match String.index_opt line ' ' with
             | None ->
                 if !err = None then
                   err :=
                     Some
                       (Printf.sprintf "%s:%d: expected \"<rule-id> <path>\""
                          file lnum);
                 None
             | Some i -> (
                 let id = String.sub line 0 i in
                 let path =
                   String.trim
                     (String.sub line (i + 1) (String.length line - i - 1))
                 in
                 match rule_of_id id with
                 | Some r -> Some { allow_rule = r; allow_path = path }
                 | None ->
                     if !err = None then
                       err :=
                         Some
                           (Printf.sprintf "%s:%d: unknown rule id %S" file
                              lnum id);
                     None))
  in
  match !err with Some e -> Error e | None -> Ok entries

let load_allowlist path =
  match In_channel.with_open_bin path In_channel.input_all with
  | text -> parse_allowlist ~file:path text
  | exception Sys_error msg -> Error msg

(* --- pragmas ------------------------------------------------------------ *)

let pragma_marker = "(* lint: allow "

(* All (line, rule) pragma positions in the raw source.  Comments are
   invisible to the parser, so this is a plain text scan; an unknown
   rule id in a pragma is simply inert (the finding it meant to
   suppress still fires, which is how the typo gets noticed). *)
let scan_pragmas source =
  let pragmas = ref [] in
  String.split_on_char '\n' source
  |> List.iteri (fun i line ->
         let lnum = i + 1 in
         let rec scan from =
           match
             if from > String.length line then None
             else
               let found = ref None in
               (try
                  for j = from to String.length line - String.length pragma_marker do
                    if
                      !found = None
                      && String.equal
                           (String.sub line j (String.length pragma_marker))
                           pragma_marker
                    then found := Some j
                  done
                with Invalid_argument _ -> ());
               !found
           with
           | None -> ()
           | Some j ->
               let start = j + String.length pragma_marker in
               let stop = ref start in
               while
                 !stop < String.length line
                 && not
                      (List.mem line.[!stop] [ ' '; '\t'; '*'; ')' ])
               do
                 incr stop
               done;
               (match rule_of_id (String.sub line start (!stop - start)) with
               | Some r -> pragmas := (lnum, r) :: !pragmas
               | None -> ());
               scan (j + String.length pragma_marker)
         in
         scan 0);
  !pragmas

let pragma_suppresses pragmas (f : finding) =
  List.exists
    (fun (lnum, r) -> r = f.rule && (lnum = f.line || lnum = f.line - 1))
    pragmas

let finding_order a b =
  match String.compare a.file b.file with
  | 0 -> (
      match Int.compare a.line b.line with
      | 0 -> (
          match Int.compare a.col b.col with
          | 0 -> String.compare (rule_id a.rule) (rule_id b.rule)
          | c -> c)
      | c -> c)
  | c -> c
