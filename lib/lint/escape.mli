(** [domain-escape]: conservative escape analysis flagging mutable
    values captured by closures passed to [Domain.spawn] or installed
    with [Domain.DLS.new_key].

    Free variables of the closure (idents used but not bound inside it)
    whose types are structurally mutable — [ref], [array], [bytes],
    [Hashtbl.t]/[Buffer.t]/[Queue.t]/[Stack.t], or a record declared
    with mutable fields in the same compilation unit — produce one
    finding each, at the variable's first use inside the closure.
    [Atomic.t] is the sanctioned cross-domain primitive and is exempt.
    A spawn argument that is neither a function literal nor a local
    let-bound function is flagged as opaque. *)

val check : path:string -> Typedtree.structure -> Kernel.finding list
(** [check ~path str] — [path] is used verbatim in findings (it is the
    path the caller asked to lint, not the one recorded in the
    [.cmt]). *)
