(** Shared vocabulary of both lint stages: the rule set, findings,
    configuration, and the suppression machinery (pragma comments and
    the allowlist).  {!Lint} re-exports everything here, so external
    consumers never need this module directly — it exists so the typed
    stage's rule modules ({!Escape}, {!Hot_alloc}, {!Registry},
    {!Typed}) and the syntactic pass can share types without a
    dependency cycle. *)

type rule =
  | Wall_clock
  | Ambient_randomness
  | Shared_mutable_toplevel
  | Float_poly_compare
  | Mli_coverage
  | Prof_span
  | Gc_stats
  | Domain_escape
  | Hot_alloc
  | Registry_exhaustive

val all_rules : rule list

val typed_rules : rule list
(** The rules that need [.cmt] type information:
    [domain-escape], [hot-alloc], [registry-exhaustive]. *)

val rule_id : rule -> string
val rule_of_id : string -> rule option
val rule_doc : rule -> string

type finding = {
  rule : rule;
  file : string;
  line : int;  (** 1-based *)
  col : int;  (** 0-based, matching compiler diagnostics *)
  message : string;
}

type allow_entry = {
  allow_rule : rule;
  allow_path : string;  (** exact path, or a prefix when ending in [/] *)
}

type registry_check = {
  reg_def : string;  (** the [.ml] defining the registry, root-relative *)
  reg_type : string;  (** the variant type name, e.g. [protocol] *)
  reg_accessors : string list;
      (** value names in the defining module whose use counts as
          deriving from the registry *)
  reg_consumers : string list;
      (** files that must handle every registry entry *)
}

val default_registry : registry_check
(** [Spec.protocols] and its four consumers (matrix dispatch, scorecard
    headings, workload schema, workload Build.run dispatch). *)

type config = {
  rules : rule list;  (** enabled rules *)
  allowlist : allow_entry list;
  build_dir : string option;
      (** where to look for [.cmt] files; [None] autodetects
          ([_build/default] when present, else the current directory) *)
  registry : registry_check;
}

val default_config : config

type report = {
  findings : finding list;  (** sorted by file, line, column, rule *)
  errors : (string * string) list;  (** (file, message): unparseable inputs *)
  files_checked : int;
  cmts_loaded : int;  (** files the typed stage found a [.cmt] for *)
  cmts_missing : (string * string) list;
      (** (file, reason): typed stage degraded to syntactic-only *)
}

val normalize_path : string -> string
(** Drop [.], [..] and empty segments, so the same file reached via
    different working directories compares equal. *)

val has_prefix : prefix:string -> string -> bool
val allow_matches : allow_entry -> string -> bool

val parse_allowlist :
  ?file:string -> string -> (allow_entry list, string) result

val load_allowlist : string -> (allow_entry list, string) result

val scan_pragmas : string -> (int * rule) list
(** All [(line, rule)] pragma-comment positions in a source text. *)

val pragma_suppresses : (int * rule) list -> finding -> bool
(** A pragma suppresses a finding of its rule on the same or the
    directly preceding line. *)

val finding_order : finding -> finding -> int
