(* The linter runs in two stages.

   Stage one is purely syntactic: each file is parsed with the
   compiler's own parser and walked with an Ast_iterator, so it flags
   exactly what is written in the source, with no type information and
   no build context.

   Stage two ({!Typed}) resolves each file's .cmt (dune's -bin-annot
   output) and walks the Typedtree for the rules that need types:
   domain-escape, hot-alloc and registry-exhaustive.  A file whose
   .cmt is missing degrades to stage-one coverage only and is recorded
   in [cmts_missing] — reported, never fatal.

   Both stages share the vocabulary in {!Kernel} (re-exported here) and
   the same suppression machinery: in-source pragmas and the allowlist
   filter typed findings exactly as they filter syntactic ones. *)

type rule = Kernel.rule =
  | Wall_clock
  | Ambient_randomness
  | Shared_mutable_toplevel
  | Float_poly_compare
  | Mli_coverage
  | Prof_span
  | Gc_stats
  | Domain_escape
  | Hot_alloc
  | Registry_exhaustive

let all_rules = Kernel.all_rules
let typed_rules = Kernel.typed_rules
let rule_id = Kernel.rule_id
let rule_of_id = Kernel.rule_of_id
let rule_doc = Kernel.rule_doc

type finding = Kernel.finding = {
  rule : rule;
  file : string;
  line : int;
  col : int;
  message : string;
}

type allow_entry = Kernel.allow_entry = {
  allow_rule : rule;
  allow_path : string;
}

type registry_check = Kernel.registry_check = {
  reg_def : string;
  reg_type : string;
  reg_accessors : string list;
  reg_consumers : string list;
}

type config = Kernel.config = {
  rules : rule list;
  allowlist : allow_entry list;
  build_dir : string option;
  registry : registry_check;
}

let default_registry = Kernel.default_registry
let default_config = Kernel.default_config

type report = Kernel.report = {
  findings : finding list;
  errors : (string * string) list;
  files_checked : int;
  cmts_loaded : int;
  cmts_missing : (string * string) list;
}

let normalize_path = Kernel.normalize_path
let allow_matches = Kernel.allow_matches
let parse_allowlist = Kernel.parse_allowlist
let load_allowlist = Kernel.load_allowlist
let scan_pragmas = Kernel.scan_pragmas
let pragma_suppresses = Kernel.pragma_suppresses
let finding_order = Kernel.finding_order
let has_prefix = Kernel.has_prefix

(* --- the syntactic pass ------------------------------------------------- *)

(* Sleeps are host-time dependencies just like clock reads: simulated
   code waits on the simulated clock, and the one legitimate pacing
   sleep (the Progress monitor's sampling loop) carries its own
   justified pragma. *)
let wall_clock_idents =
  [ "Unix.gettimeofday"; "Unix.time"; "Sys.time"; "Unix.sleep"; "Unix.sleepf" ]

let mutable_creators =
  [
    "ref";
    "Hashtbl.create";
    "Buffer.create";
    "Queue.create";
    "Stack.create";
    "Array.make";
    "Array.init";
    "Array.create_float";
    "Bytes.create";
    "Bytes.make";
  ]

let eq_ops = [ "="; "<>"; "=="; "!=" ]
let bare_compares = [ "compare"; "Stdlib.compare"; "Pervasives.compare" ]

let prof_span_idents =
  [
    "Prof.span";
    "Prof.with_span";
    "Mcc_obs.Prof.span";
    "Mcc_obs.Prof.with_span";
  ]

(* GC statistics are live telemetry: only lib/obs may read them, so no
   GC figure can leak into sinks or ledger payloads and perturb
   byte-identical output across machines. *)
let gc_stat_idents =
  [
    "Gc.quick_stat";
    "Gc.stat";
    "Gc.minor_words";
    "Gc.major_words";
    "Gc.counters";
    "Gc.allocated_bytes";
  ]

let rec lid_to_list = function
  | Longident.Lident s -> Some [ s ]
  | Longident.Ldot (l, s) ->
      Option.map (fun xs -> xs @ [ s ]) (lid_to_list l)
  | Longident.Lapply _ -> None

let lid_name lid =
  match lid_to_list lid with Some xs -> String.concat "." xs | None -> ""

let is_ambient_random name =
  has_prefix ~prefix:"Random." name
  && not (has_prefix ~prefix:"Random.State." name)

(* Float-shaped to the parser: a float literal, a float-operator or
   float-conversion application, a float-returning Float.* call, or an
   explicit [: float] constraint.  [=] on two un-annotated float
   variables is invisible here — the rule trades those misses for zero
   false positives on non-float code. *)
let rec is_floatish (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_constraint
      (_, { ptyp_desc = Ptyp_constr ({ txt = Lident "float"; _ }, []); _ }) ->
      true
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) ->
      let name = lid_name txt in
      let float_op =
        String.length name > 1
        && name.[String.length name - 1] = '.'
        && List.mem name.[0] [ '+'; '-'; '*'; '/'; '~' ]
      in
      float_op
      || List.mem name [ "float_of_int"; "float"; "Float.of_int" ]
      || (has_prefix ~prefix:"Float." name
         && not (List.mem name [ "Float.to_int"; "Float.compare"; "Float.equal" ])
         )
      || List.exists (fun (_, a) -> is_floatish a) args
  | _ -> false

type ctx = { path : string; enabled : rule list; mutable found : finding list }

let report ctx rule (loc : Location.t) message =
  if List.mem rule ctx.enabled then
    ctx.found <-
      {
        rule;
        file = ctx.path;
        line = loc.loc_start.pos_lnum;
        col = loc.loc_start.pos_cnum - loc.loc_start.pos_bol;
        message;
      }
      :: ctx.found

(* Mutable-state creation in a module-level binding, stopping at
   function boundaries: [let t = Hashtbl.create 16] is shared by every
   domain, [let create () = Hashtbl.create 16] (and a Domain.DLS
   initialiser) allocates per call and is fine. *)
let scan_toplevel_mutable ctx expr =
  let default = Ast_iterator.default_iterator in
  let it =
    {
      default with
      expr =
        (fun it (e : Parsetree.expression) ->
          match e.pexp_desc with
          | Pexp_fun _ | Pexp_function _ -> ()
          | Pexp_array _ ->
              report ctx Shared_mutable_toplevel e.pexp_loc
                "array literal at module level is mutable state shared \
                 across domains";
              default.expr it e
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _)
            when List.mem (lid_name txt) mutable_creators ->
              report ctx Shared_mutable_toplevel e.pexp_loc
                (Printf.sprintf
                   "%s at module level creates mutable state shared across \
                    domains; use a Domain.DLS registry or Atomic"
                   (lid_name txt));
              default.expr it e
          | _ -> default.expr it e);
    }
  in
  it.expr it expr

let make_iterator ctx =
  let default = Ast_iterator.default_iterator in
  {
    default with
    expr =
      (fun it (e : Parsetree.expression) ->
        (match e.pexp_desc with
        | Pexp_ident { txt; _ } ->
            let name = lid_name txt in
            if List.mem name wall_clock_idents then
              report ctx Wall_clock e.pexp_loc
                (Printf.sprintf
                   "%s depends on the host clock; simulation code must use \
                    the simulated clock (profiling goes through \
                    Mcc_obs.Profile.with_wall_clock)"
                   name)
            else if String.equal name "Random.self_init" then
              report ctx Ambient_randomness e.pexp_loc
                "Random.self_init makes runs irreproducible; seed an \
                 explicit Mcc_util.Prng or Random.State instead"
            else if is_ambient_random name then
              report ctx Ambient_randomness e.pexp_loc
                (Printf.sprintf
                   "%s draws from the ambient global generator; thread \
                    seeded state (Mcc_util.Prng, Random.State) instead"
                   name)
            else if List.mem name bare_compares then
              report ctx Float_poly_compare e.pexp_loc
                "bare polymorphic compare; use a monomorphic comparison \
                 (Float.compare, Int.compare, String.compare, ...)"
            else if
              List.mem name gc_stat_idents
              && not (has_prefix ~prefix:"lib/obs/" (normalize_path ctx.path))
            then
              report ctx Gc_stats e.pexp_loc
                (Printf.sprintf
                   "%s reads GC statistics outside Mcc_obs; GC figures are \
                    live telemetry only and must never feed sinks or ledger \
                    payloads"
                   name)
            else if
              List.mem name prof_span_idents
              && not
                   (has_prefix ~prefix:"lib/" (normalize_path ctx.path)
                   && Sys.file_exists (ctx.path ^ "i"))
            then
              report ctx Prof_span e.pexp_loc
                (Printf.sprintf
                   "%s outside an interfaced lib/ module; span sites are \
                    instrumentation surface — keep them in lib/ behind an \
                    .mli"
                   name)
        | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; pexp_loc; _ }, args)
          when List.mem (lid_name txt) eq_ops
               && List.exists (fun (_, a) -> is_floatish a) args ->
            report ctx Float_poly_compare pexp_loc
              (Printf.sprintf
                 "polymorphic %s on a float operand; use \
                  Float.equal/Float.compare"
                 (lid_name txt))
        | _ -> ());
        default.expr it e);
    structure_item =
      (fun it (si : Parsetree.structure_item) ->
        (match si.pstr_desc with
        | Pstr_value (_, vbs) ->
            (* [let () = ...] and [let _ = ...] bind nothing: mutable
               state created there is init-time scratch that dies with
               the binding (sharing it requires storing it in some
               named binding, which is flagged at that binding). *)
            let binds_nothing (p : Parsetree.pattern) =
              match p.ppat_desc with
              | Ppat_any -> true
              | Ppat_construct ({ txt = Lident "()"; _ }, None) -> true
              | _ -> false
            in
            List.iter
              (fun (vb : Parsetree.value_binding) ->
                if not (binds_nothing vb.pvb_pat) then
                  scan_toplevel_mutable ctx vb.pvb_expr)
              vbs
        | _ -> ());
        default.structure_item it si);
  }

(* --- per-file driver ---------------------------------------------------- *)

let parse_structure ~path source =
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf path;
  match Parse.implementation lexbuf with
  | ast -> Ok ast
  | exception exn -> (
      match Location.error_of_exn exn with
      | Some (`Ok err) -> Error (Format.asprintf "%a" Location.print_report err)
      | Some `Already_displayed | None -> Error (Printexc.to_string exn))

let allow_suppresses config (f : finding) =
  List.exists
    (fun entry -> entry.allow_rule = f.rule && allow_matches entry f.file)
    config.allowlist

let check_source config ~path source =
  match parse_structure ~path source with
  | Error _ as e -> e
  | Ok ast ->
      let ctx = { path; enabled = config.rules; found = [] } in
      let it = make_iterator ctx in
      it.structure it ast;
      let pragmas = scan_pragmas source in
      let findings =
        List.filter
          (fun f ->
            (not (pragma_suppresses pragmas f))
            && not (allow_suppresses config f))
          ctx.found
      in
      Ok (List.sort finding_order findings)

let check_file config path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | source -> (
      match check_source config ~path source with
      | Error _ as e -> e
      | Ok findings ->
          let missing_mli =
            List.mem Mli_coverage config.rules
            && not (Sys.file_exists (path ^ "i"))
          in
          if missing_mli then
            let f =
              {
                rule = Mli_coverage;
                file = path;
                line = 1;
                col = 0;
                message =
                  Printf.sprintf "%s has no interface (%si missing)"
                    (Filename.basename path)
                    (Filename.basename path);
              }
            in
            let pragmas = scan_pragmas source in
            let suppressed =
              pragma_suppresses pragmas f || allow_suppresses config f
            in
            if suppressed then Ok findings
            else Ok (List.sort finding_order (f :: findings))
          else Ok findings)

(* --- tree walk ---------------------------------------------------------- *)

let rec collect_ml_files path acc =
  if Sys.is_directory path then
    Sys.readdir path
    |> Array.to_list
    |> List.sort String.compare
    |> List.fold_left
         (fun acc entry ->
           if String.length entry = 0 || entry.[0] = '.' || entry.[0] = '_' then
             acc
           else collect_ml_files (Filename.concat path entry) acc)
         acc
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let run config paths =
  let errors = ref [] in
  let files =
    List.concat_map
      (fun p ->
        if Sys.file_exists p then List.rev (collect_ml_files p [])
        else begin
          errors := (p, "no such file or directory") :: !errors;
          []
        end)
      paths
  in
  let syntactic =
    List.concat_map
      (fun file ->
        match check_file config file with
        | Ok fs -> fs
        | Error msg ->
            errors := (file, msg) :: !errors;
            [])
      files
  in
  (* Stage two.  Typed findings go through the same pragma + allowlist
     filters; the pragma scan re-reads each flagged file's source. *)
  let typed = Typed.run config files in
  let pragma_cache = Hashtbl.create 16 in
  let pragmas_of file =
    match Hashtbl.find_opt pragma_cache file with
    | Some ps -> ps
    | None ->
        let ps =
          match In_channel.with_open_bin file In_channel.input_all with
          | source -> scan_pragmas source
          | exception Sys_error _ -> []
        in
        Hashtbl.replace pragma_cache file ps;
        ps
  in
  let typed_findings =
    List.filter
      (fun (f : finding) ->
        (not (pragma_suppresses (pragmas_of f.file) f))
        && not (allow_suppresses config f))
      typed.Typed.t_findings
  in
  {
    findings = List.sort finding_order (syntactic @ typed_findings);
    errors = List.rev !errors;
    files_checked = List.length files;
    cmts_loaded = typed.Typed.t_loaded;
    cmts_missing = typed.Typed.t_missing;
  }

let exit_code r =
  if r.errors <> [] then 2 else if r.findings <> [] then 1 else 0

let pp_finding fmt f =
  Format.fprintf fmt "%s:%d:%d: [%s] %s" f.file f.line f.col (rule_id f.rule)
    f.message

let report_to_json r =
  let module J = Mcc_obs.Json in
  J.Obj
    [
      ("tool", J.String "mcc-lint");
      ("rules", J.List (List.map (fun ru -> J.String (rule_id ru)) all_rules));
      ("files_checked", J.Int r.files_checked);
      ( "typed",
        J.Obj
          [
            ("cmts_loaded", J.Int r.cmts_loaded);
            ( "cmts_missing",
              J.List
                (List.map
                   (fun (file, reason) ->
                     J.Obj
                       [
                         ("file", J.String file);
                         ("reason", J.String reason);
                       ])
                   r.cmts_missing) );
          ] );
      ( "findings",
        J.List
          (List.map
             (fun f ->
               J.Obj
                 [
                   ("rule", J.String (rule_id f.rule));
                   ("file", J.String f.file);
                   ("line", J.Int f.line);
                   ("col", J.Int f.col);
                   ("message", J.String f.message);
                 ])
             r.findings) );
      ( "errors",
        J.List
          (List.map
             (fun (file, msg) ->
               J.Obj [ ("file", J.String file); ("message", J.String msg) ])
             r.errors) );
    ]
