(* Locating the .cmt behind a source file.

   Dune writes binary-annotation files under per-library object
   directories (lib/engine/.mcc_engine.objs/byte/mcc_engine__Sim.cmt,
   bin/.mcc.eobjs/byte/dune__exe__Mcc.cmt, ...), with the original
   source path recorded inside as [cmt_sourcefile], relative to the
   workspace root.  The index walks the build directory once, buckets
   every .cmt by the lowercased last [__]-segment of its basename (the
   module name dune derived from the filename), and resolves a source
   path by reading candidate .cmts lazily until one's recorded
   [cmt_sourcefile] matches.  Matching is by normalised equality, or by
   suffix at a [/] boundary so a file reached from a subdirectory
   ("lint_fixtures/x.ml" from the test tree) still finds its
   workspace-relative .cmt ("test/lint_fixtures/x.ml").

   Everything is per-index mutable state created by [create]; nothing
   is shared at module level. *)

type read_result = (string * Typedtree.structure, string) result

type t = {
  build_dir : string;
  by_module : (string, string list) Hashtbl.t;
  mutable scanned : bool;
  reads : (string, read_result) Hashtbl.t;
  sources : (string, (Typedtree.structure, string) result) Hashtbl.t;
  mutable loaded : int;
}

let default_build_dir () =
  if Sys.file_exists "_build/default" && Sys.is_directory "_build/default"
  then "_build/default"
  else "."

let create ?build_dir () =
  let build_dir =
    match build_dir with Some d -> d | None -> default_build_dir ()
  in
  {
    build_dir;
    by_module = Hashtbl.create 256;
    scanned = false;
    reads = Hashtbl.create 64;
    sources = Hashtbl.create 64;
    loaded = 0;
  }

let build_dir t = t.build_dir

(* The module name dune derives for a .cmt basename: the segment after
   the last "__" (library prefixing), lowercased back to filename
   convention ("mcc_engine__Sim" -> "sim", "dune__exe__Mcc" -> "mcc"). *)
let module_key base =
  let rec last_sep i =
    if i < 0 then None
    else if i + 1 < String.length base && base.[i] = '_' && base.[i + 1] = '_'
    then Some (i + 2)
    else last_sep (i - 1)
  in
  let seg =
    match last_sep (String.length base - 2) with
    | Some start -> String.sub base start (String.length base - start)
    | None -> base
  in
  String.uncapitalize_ascii seg

let scan t =
  if not t.scanned then begin
    t.scanned <- true;
    let rec walk dir =
      match Sys.readdir dir with
      | exception Sys_error _ -> ()
      | entries ->
          Array.sort String.compare entries;
          Array.iter
            (fun entry ->
              if not (String.equal entry ".git") then begin
                let path = Filename.concat dir entry in
                if Sys.is_directory path then walk path
                else if Filename.check_suffix entry ".cmt" then begin
                  let key = module_key (Filename.chop_suffix entry ".cmt") in
                  let prev =
                    Option.value ~default:[]
                      (Hashtbl.find_opt t.by_module key)
                  in
                  Hashtbl.replace t.by_module key (path :: prev)
                end
              end)
            entries
    in
    walk t.build_dir
  end

let read_cmt t path =
  match Hashtbl.find_opt t.reads path with
  | Some r -> r
  | None ->
      let r =
        match Cmt_format.read_cmt path with
        | exception exn ->
            Error (Printf.sprintf "unreadable .cmt: %s" (Printexc.to_string exn))
        | infos -> (
            match (infos.Cmt_format.cmt_sourcefile, infos.Cmt_format.cmt_annots)
            with
            | Some src, Cmt_format.Implementation str ->
                Ok (Kernel.normalize_path src, str)
            | Some _, _ -> Error "not a whole-implementation .cmt"
            | None, _ -> Error ".cmt records no source file")
      in
      Hashtbl.replace t.reads path r;
      r

(* [recorded] is the normalised workspace-relative path inside the
   .cmt; [wanted] the normalised path the caller asked about. *)
let source_matches ~recorded ~wanted =
  String.equal recorded wanted
  || (String.length recorded > String.length wanted + 1
     && String.ends_with ~suffix:("/" ^ wanted) recorded)

let lookup t source =
  let wanted = Kernel.normalize_path source in
  match Hashtbl.find_opt t.sources wanted with
  | Some r -> r
  | None ->
      scan t;
      let key =
        String.uncapitalize_ascii
          (Filename.remove_extension (Filename.basename wanted))
      in
      let candidates =
        List.sort String.compare
          (Option.value ~default:[] (Hashtbl.find_opt t.by_module key))
      in
      let matches =
        List.filter_map
          (fun path ->
            match read_cmt t path with
            | Ok (recorded, str) when source_matches ~recorded ~wanted ->
                Some (recorded, str)
            | Ok _ | Error _ -> None)
          candidates
      in
      let exact =
        List.filter (fun (recorded, _) -> String.equal recorded wanted) matches
      in
      let r =
        match (exact, matches) with
        | (_, str) :: _, _ | [], [ (_, str) ] -> Ok str
        | [], [] ->
            if candidates = [] then
              Error
                (Printf.sprintf
                   "no .cmt under %s (typed rules need a dune build first)"
                   t.build_dir)
            else
              Error
                (Printf.sprintf
                   "no .cmt under %s records this source (stale build?)"
                   t.build_dir)
        | [], _ :: _ :: _ ->
            Error "several .cmt files match this source ambiguously"
      in
      Hashtbl.replace t.sources wanted r;
      (match r with Ok _ -> t.loaded <- t.loaded + 1 | Error _ -> ());
      r

let loaded t = t.loaded
