(** Lazy index from source paths to the [Typedtree] inside the [.cmt]
    files dune already produces ([-bin-annot] is on by default).

    The index walks the build directory once (on the first lookup),
    buckets candidates by the module name encoded in each [.cmt]
    basename, and verifies a candidate by the source path recorded
    inside it — so same-named modules in different libraries cannot be
    confused.  Lookups and reads are cached; a missing or unreadable
    [.cmt] is an [Error] with a reason, never an exception, which is
    what lets the typed lint stage degrade gracefully. *)

type t

val create : ?build_dir:string -> unit -> t
(** [build_dir] defaults to {!default_build_dir}[ ()]. *)

val default_build_dir : unit -> string
(** [_build/default] when it exists (linting from the repository root),
    else [.] (linting from inside the build tree, where the object
    directories are siblings of the sources). *)

val build_dir : t -> string

val lookup : t -> string -> (Typedtree.structure, string) result
(** [lookup t source] finds the typed tree of [source] ([.ml]).  The
    recorded source path must equal the (normalised) request, or end
    with it at a [/] boundary — covering lookups made from a
    subdirectory of the workspace. *)

val loaded : t -> int
(** Distinct sources successfully resolved so far. *)
