(** [registry-exhaustive]: the protocol registry must reach every
    dispatch.

    Per-file: {!check_catch_all} flags catch-all patterns in multi-case
    matches whose patterns have the registry type.  Cross-file:
    {!constructors} extracts the variant's constructor names from the
    defining file's typed tree, and {!check_consumer} verifies a
    consumer either references a registry accessor
    ([Spec.protocols] & co.) or names every constructor; its finding
    attaches to line 1 of the consumer so a line-1 pragma can suppress
    an intentionally partial consumer. *)

val check_catch_all :
  path:string ->
  registry:Kernel.registry_check ->
  Typedtree.structure ->
  Kernel.finding list

val constructors :
  registry:Kernel.registry_check -> Typedtree.structure -> string list
(** Constructor names of the registry variant; [[]] when the defining
    file declares no variant of that name. *)

val check_consumer :
  path:string ->
  registry:Kernel.registry_check ->
  ctors:string list ->
  Typedtree.structure ->
  Kernel.finding list
