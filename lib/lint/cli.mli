(** The linter's command-line surface, shared by the standalone
    [mcc-lint] executable and the [mcc lint] subcommand.

    [ledger_default] sets whether a run is recorded in the run ledger
    when neither [--ledger] nor [--no-ledger] is given: the [mcc lint]
    subcommand records by default (lint drift then shows up in
    [mcc history] / [mcc diff]), the standalone gate does not. *)

val term : name:string -> ledger_default:bool -> int Cmdliner.Term.t
(** The command term; evaluates to the process exit code (0 clean,
    1 findings, 2 errors). *)

val info : name:string -> Cmdliner.Cmd.info
(** The shared command metadata (doc string and man page) under the
    given command name. *)

val cmd : name:string -> ledger_default:bool -> int Cmdliner.Cmd.t
(** {!term} packaged as a complete command named [name], with the
    shared man page. *)
