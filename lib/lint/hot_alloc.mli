(** [hot-alloc]: allocation analysis over functions marked [[@hot]].

    A binding carrying the [[@hot]] attribute declares its body
    allocation-free; this rule walks the typed body and flags closure,
    tuple, record, array, constructor, polymorphic-variant and lazy
    construction, partial applications (detected by the application's
    result type being an arrow, which survives optional-argument
    erasure), and calls to known allocating stdlib entry points.
    Nested closure bodies and [assert] payloads are not walked.  Known
    blind spots: float boxing and allocation hidden inside callees off
    the known list. *)

val check : path:string -> Typedtree.structure -> Kernel.finding list
(** [check ~path str] — [path] is used verbatim in findings. *)
