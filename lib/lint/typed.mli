(** Stage two of the linter: the [.cmt]-backed rules
    ([domain-escape], [hot-alloc], [registry-exhaustive]).

    Degrades gracefully: a file whose [.cmt] cannot be resolved is
    reported in [t_missing] rather than failing the run.  Findings here
    are raw — {!Lint.run} applies pragma and allowlist suppression. *)

type result = {
  t_findings : Kernel.finding list;  (** unfiltered, unsorted *)
  t_loaded : int;  (** files whose [.cmt] resolved *)
  t_missing : (string * string) list;
      (** (file, reason) for unresolved [.cmt]s, in input order *)
}

val run : Kernel.config -> string list -> result
(** [run config files] runs the enabled typed rules over every [.ml]
    in [files].  The registry consumer check only considers consumers
    that are themselves part of [files]. *)
