module Sim = Mcc_engine.Sim
module Node = Mcc_net.Node
module Packet = Mcc_net.Packet
module Payload = Mcc_net.Payload
module Meter = Mcc_util.Meter
module Metrics = Mcc_obs.Metrics

type Payload.t +=
  | Tcp_data of { flow : int; seq : int }
  | Tcp_ack of { flow : int; ack : int }

let () =
  Payload.register_pp (fun fmt -> function
    | Tcp_data { flow; seq } ->
        Format.fprintf fmt "tcp-data f%d s%d" flow seq;
        true
    | Tcp_ack { flow; ack } ->
        Format.fprintf fmt "tcp-ack f%d a%d" flow ack;
        true
    | _ -> false)

type config = {
  segment_size : int;
  initial_cwnd : float;
  initial_ssthresh : float;
  min_rto : float;
  max_rto : float;
  ack_size : int;
}

let default_config =
  {
    segment_size = 576;
    initial_cwnd = 1.;
    initial_ssthresh = 64.;
    min_rto = 0.5;
    max_rto = 60.;
    ack_size = 40;
  }

type t = {
  config : config;
  sim : Sim.t;
  flow : int;
  src : Node.t;
  dst : Node.t;
  meter : Meter.t;
  (* sender state *)
  mutable cwnd : float;  (* segments *)
  mutable ssthresh : float;
  mutable snd_una : int;  (* lowest unacked seq *)
  mutable snd_nxt : int;  (* next seq to send *)
  mutable dupacks : int;
  mutable in_recovery : bool;
  mutable recover : int;  (* highest seq outstanding when loss detected *)
  mutable srtt : float option;
  mutable rttvar : float;
  mutable rto : float;
  mutable backoff : float;
  mutable timing : (int * float) option;  (* (seq, send time) RTT sample *)
  mutable rto_timer : Sim.handle option;
  mutable retransmissions : int;
  mutable timeouts : int;
  mutable running : bool;
  (* receiver state *)
  mutable rcv_nxt : int;
  ooo : (int, unit) Hashtbl.t;  (* out-of-order segments buffered at sink *)
  m_retransmits : Metrics.counter;
  m_rto_fires : Metrics.counter;
  h_rtt_ms : Metrics.histogram;
}

let delivered_meter t = t.meter
let cwnd t = t.cwnd
let ssthresh t = t.ssthresh
let retransmissions t = t.retransmissions
let timeouts t = t.timeouts

let flight t = t.snd_nxt - t.snd_una

let cancel_rto t =
  match t.rto_timer with
  | Some h ->
      Sim.cancel h;
      t.rto_timer <- None
  | None -> ()

let send_segment t ~seq ~retransmit =
  if retransmit then begin
    t.retransmissions <- t.retransmissions + 1;
    Metrics.incr t.m_retransmits;
    (* Karn: never sample the RTT of a retransmitted segment. *)
    match t.timing with
    | Some (s, _) when s = seq -> t.timing <- None
    | Some _ | None -> ()
  end
  else if t.timing = None then t.timing <- Some (seq, Sim.now t.sim);
  let pkt =
    Packet.make ~src:t.src.Node.id ~dst:(Packet.Unicast t.dst.Node.id)
      ~size:t.config.segment_size
      (Tcp_data { flow = t.flow; seq })
  in
  Node.originate t.src pkt

let rec arm_rto t =
  cancel_rto t;
  if flight t > 0 && t.running then
    let delay = min t.config.max_rto (t.rto *. t.backoff) in
    t.rto_timer <- Some (Sim.schedule_after t.sim ~delay (fun () -> on_timeout t))

and on_timeout t =
  t.rto_timer <- None;
  if flight t > 0 && t.running then begin
    t.timeouts <- t.timeouts + 1;
    Metrics.incr t.m_rto_fires;
    t.ssthresh <- Float.max (float_of_int (flight t) /. 2.) 2.;
    t.cwnd <- 1.;
    t.dupacks <- 0;
    t.in_recovery <- false;
    t.backoff <- Float.min (t.backoff *. 2.) 64.;
    t.timing <- None;
    send_segment t ~seq:t.snd_una ~retransmit:true;
    arm_rto t
  end

let fill_window t =
  if t.running then begin
    let window = max 1 (int_of_float t.cwnd) in
    let started_empty = flight t = 0 in
    while flight t < window do
      send_segment t ~seq:t.snd_nxt ~retransmit:false;
      t.snd_nxt <- t.snd_nxt + 1
    done;
    if started_empty && flight t > 0 then arm_rto t
  end

let rtt_sample t r =
  Metrics.observe t.h_rtt_ms (r *. 1000.);
  (match t.srtt with
  | None ->
      t.srtt <- Some r;
      t.rttvar <- r /. 2.
  | Some srtt ->
      let delta = Float.abs (srtt -. r) in
      t.rttvar <- (0.75 *. t.rttvar) +. (0.25 *. delta);
      t.srtt <- Some ((0.875 *. srtt) +. (0.125 *. r)));
  let srtt = Option.value t.srtt ~default:r in
  t.rto <-
    Float.min t.config.max_rto
      (Float.max t.config.min_rto (srtt +. (4. *. t.rttvar)))

let on_ack t ack =
  if ack > t.snd_una then begin
    (* New data acknowledged. *)
    (match t.timing with
    | Some (seq, sent) when ack > seq ->
        rtt_sample t (Sim.now t.sim -. sent);
        t.timing <- None
    | Some _ | None -> ());
    t.backoff <- 1.;
    t.snd_una <- ack;
    if t.in_recovery then begin
      (* Reno: leave recovery on the first new ACK, deflating the window. *)
      t.in_recovery <- false;
      t.cwnd <- t.ssthresh
    end
    else if t.cwnd < t.ssthresh then t.cwnd <- t.cwnd +. 1.
    else t.cwnd <- t.cwnd +. (1. /. t.cwnd);
    t.dupacks <- 0;
    arm_rto t;
    fill_window t
  end
  else if ack = t.snd_una && flight t > 0 then begin
    t.dupacks <- t.dupacks + 1;
    if t.in_recovery then begin
      t.cwnd <- t.cwnd +. 1.;
      fill_window t
    end
    else if t.dupacks = 3 then begin
      t.ssthresh <- Float.max (float_of_int (flight t) /. 2.) 2.;
      t.recover <- t.snd_nxt - 1;
      t.in_recovery <- true;
      send_segment t ~seq:t.snd_una ~retransmit:true;
      t.cwnd <- t.ssthresh +. 3.;
      arm_rto t
    end
  end

let send_ack t =
  let pkt =
    Packet.make ~src:t.dst.Node.id ~dst:(Packet.Unicast t.src.Node.id)
      ~size:t.config.ack_size
      (Tcp_ack { flow = t.flow; ack = t.rcv_nxt })
  in
  Node.originate t.dst pkt

let on_data t seq =
  if seq = t.rcv_nxt then begin
    t.rcv_nxt <- t.rcv_nxt + 1;
    Meter.record t.meter ~time:(Sim.now t.sim) ~bytes:t.config.segment_size;
    let rec drain () =
      if Hashtbl.mem t.ooo t.rcv_nxt then begin
        Hashtbl.remove t.ooo t.rcv_nxt;
        t.rcv_nxt <- t.rcv_nxt + 1;
        Meter.record t.meter ~time:(Sim.now t.sim)
          ~bytes:t.config.segment_size;
        drain ()
      end
    in
    drain ()
  end
  else if seq > t.rcv_nxt then Hashtbl.replace t.ooo seq ();
  send_ack t

let start ?(config = default_config) ?(at = 0.) topo ~flow ~src ~dst () =
  let sim = Mcc_net.Topology.sim topo in
  let t =
    {
      config;
      sim;
      flow;
      src;
      dst;
      meter = Meter.create ();
      cwnd = config.initial_cwnd;
      ssthresh = config.initial_ssthresh;
      snd_una = 0;
      snd_nxt = 0;
      dupacks = 0;
      in_recovery = false;
      recover = 0;
      srtt = None;
      rttvar = 0.;
      rto = 3.;
      backoff = 1.;
      timing = None;
      rto_timer = None;
      retransmissions = 0;
      timeouts = 0;
      running = false;
      rcv_nxt = 0;
      ooo = Hashtbl.create 64;
      m_retransmits = Metrics.counter "tcp.retransmits";
      m_rto_fires = Metrics.counter "tcp.rto_fires";
      h_rtt_ms =
        Metrics.histogram "tcp.rtt_ms"
          ~bounds:(Metrics.exponential_bounds ~base:10. ~count:8);
    }
  in
  Mux.add_handler (Mux.of_node dst) (fun pkt ->
      match pkt.Packet.payload with
      | Tcp_data { flow = f; seq } when f = flow ->
          on_data t seq;
          true
      | _ -> false);
  Mux.add_handler (Mux.of_node src) (fun pkt ->
      match pkt.Packet.payload with
      | Tcp_ack { flow = f; ack } when f = flow ->
          on_ack t ack;
          true
      | _ -> false);
  Sim.post sim ~at (fun () ->
         t.running <- true;
         fill_window t);
  t

let stop t =
  t.running <- false;
  cancel_rto t
