(** TCP Reno with an infinite (FTP-like) source.

    Implements the loss recovery the paper's competing traffic needs:
    slow start, congestion avoidance, fast retransmit after three
    duplicate ACKs, fast recovery with window inflation, and an RTO
    estimator with Karn's algorithm and exponential backoff.  Sequence
    numbers count segments, every segment is [segment_size] bytes on the
    wire, and ACKs are 40-byte packets on the reverse path. *)

type config = {
  segment_size : int;  (** bytes on the wire per data segment *)
  initial_cwnd : float;  (** segments *)
  initial_ssthresh : float;  (** segments *)
  min_rto : float;  (** seconds *)
  max_rto : float;
  ack_size : int;  (** bytes *)
}

val default_config : config
(** 576-byte segments (the paper's packet size), cwnd 1, ssthresh 64,
    RTO in [0.5, 60] s, 40-byte ACKs. *)

type t

val start :
  ?config:config ->
  ?at:float ->
  Mcc_net.Topology.t ->
  flow:int ->
  src:Mcc_net.Node.t ->
  dst:Mcc_net.Node.t ->
  unit ->
  t
(** Creates the sender at [src] and the sink at [dst] (through the
    node's {!Mux}) and begins transmitting at time [at] (default 0).
    [flow] must be unique per (src, dst) pair. *)

val delivered_meter : t -> Mcc_util.Meter.t
(** Goodput meter fed by in-order delivery at the sink. *)

val cwnd : t -> float
val ssthresh : t -> float
val retransmissions : t -> int
val timeouts : t -> int

val stop : t -> unit
(** Stops sending and cancels the pending RTO timer. *)
