(** Constant-bit-rate source: fixed-size packets at a fixed rate. *)

type t

val start :
  ?at:float ->
  ?payload:(unit -> Mcc_net.Payload.t) ->
  Mcc_net.Topology.t ->
  src:Mcc_net.Node.t ->
  dst:Mcc_net.Packet.dst ->
  rate_bps:float ->
  size:int ->
  unit ->
  t
(** Emits a [size]-byte packet every [size * 8 / rate_bps] seconds
    starting at [at] (default 0).  [payload] supplies each packet's
    payload (default {!Mcc_net.Payload.Raw}). *)

val pause : t -> unit
(** Suspends emission (packets already in flight are unaffected). *)

val resume : t -> unit
val stop : t -> unit
val packets_sent : t -> int
