module Sim = Mcc_engine.Sim
module Node = Mcc_net.Node
module Packet = Mcc_net.Packet
module Payload = Mcc_net.Payload

type t = {
  mutable emitting : bool;
  mutable stopped : bool;
  mutable sent : int;
  task : Sim.handle;
}

let start ?(at = 0.) ?(payload = fun () -> Payload.Raw) topo ~src ~dst ~rate_bps
    ~size () =
  if rate_bps <= 0. then invalid_arg "Cbr.start: rate_bps <= 0";
  let sim = Mcc_net.Topology.sim topo in
  let period = float_of_int (size * 8) /. rate_bps in
  let rec t =
    lazy
      {
        emitting = true;
        stopped = false;
        sent = 0;
        task =
          Sim.every sim ~start:at ~period (fun () ->
              let self = Lazy.force t in
              if self.emitting && not self.stopped then begin
                self.sent <- self.sent + 1;
                Node.originate src
                  (Packet.make ~src:src.Node.id ~dst ~size (payload ()))
              end);
      }
  in
  Lazy.force t

let pause t = t.emitting <- false
let resume t = t.emitting <- true

let stop t =
  t.stopped <- true;
  Sim.cancel t.task

let packets_sent t = t.sent
