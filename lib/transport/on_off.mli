(** On-off CBR source: alternates fixed on and off periods, transmitting
    at the configured rate during on periods (the paper's cross-traffic:
    10% of bottleneck capacity, 5-second periods; and the 800 Kbps burst
    of the responsiveness experiment). *)

type t

val start :
  ?at:float ->
  ?until:float ->
  Mcc_net.Topology.t ->
  src:Mcc_net.Node.t ->
  dst:Mcc_net.Packet.dst ->
  rate_bps:float ->
  size:int ->
  on_period:float ->
  off_period:float ->
  unit ->
  t
(** Starts an on period at [at] (default 0); if [until] is given, the
    source stops for good at that time. *)

val stop : t -> unit
