module Node = Mcc_net.Node

type t = { mutable handlers : (Mcc_net.Packet.t -> bool) list }

(* Keyed by physical node identity: node ids restart from 0 in every
   topology, and one process (the benchmark harness) builds many.
   Domain-local so concurrent simulations on separate domains (the
   batch runner) cannot race on the list or clobber each other's
   unicast handlers; a node and all its traffic live on one domain. *)
let registry_key : (Node.t * t) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let of_node (node : Node.t) =
  let registry = Domain.DLS.get registry_key in
  match List.find_opt (fun (n, _) -> n == node) !registry with
  | Some (_, t) -> t
  | None ->
      let t = { handlers = [] } in
      registry := (node, t) :: !registry;
      Node.set_unicast_handler node (fun pkt ->
          let rec dispatch = function
            | [] -> ()
            | h :: rest -> if not (h pkt) then dispatch rest
          in
          dispatch t.handlers);
      t

let add_handler t h = t.handlers <- t.handlers @ [ h ]
