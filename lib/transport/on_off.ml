module Sim = Mcc_engine.Sim

type t = {
  cbr : Cbr.t;
  mutable toggles : Sim.handle list;
  mutable stopped : bool;
}

let start ?(at = 0.) ?until topo ~src ~dst ~rate_bps ~size ~on_period
    ~off_period () =
  if on_period <= 0. || off_period < 0. then invalid_arg "On_off.start";
  let sim = Mcc_net.Topology.sim topo in
  let cbr = Cbr.start ~at topo ~src ~dst ~rate_bps ~size () in
  Cbr.pause cbr;
  let t = { cbr; toggles = []; stopped = false } in
  let horizon = Option.value until ~default:infinity in
  let rec cycle start_time () =
    if (not t.stopped) && start_time < horizon then begin
      Cbr.resume cbr;
      let off_at = Float.min horizon (start_time +. on_period) in
      t.toggles <-
        Sim.schedule sim ~at:off_at (fun () -> Cbr.pause cbr) :: t.toggles;
      let next = start_time +. on_period +. off_period in
      if next < horizon then
        t.toggles <- Sim.schedule sim ~at:next (cycle next) :: t.toggles
    end
  in
  t.toggles <- [ Sim.schedule sim ~at (cycle at) ];
  t

let stop t =
  t.stopped <- true;
  List.iter Sim.cancel t.toggles;
  Cbr.stop t.cbr
