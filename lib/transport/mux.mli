(** Per-node unicast demultiplexer.

    [Node.set_unicast_handler] installs a single callback; transport
    endpoints share the node by registering through a mux instead, each
    handler claiming the packets it understands. *)

type t

val of_node : Mcc_net.Node.t -> t
(** Returns the node's mux, installing one on first use.  Calling
    [Node.set_unicast_handler] directly afterwards would bypass it. *)

val add_handler : t -> (Mcc_net.Packet.t -> bool) -> unit
(** Handlers are tried in registration order until one returns [true]. *)
