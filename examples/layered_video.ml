(* Layered video distribution to heterogeneous receivers: the scenario
   that motivates multi-group multicast in the paper's introduction.
   One FLID-DS session serves a modem-class, a DSL-class, and a
   LAN-class receiver; each converges to the subscription level its own
   access capacity supports, while SIGMA keeps all three honest.

   Run with:  dune exec examples/layered_video.exe *)

module Sim = Mcc_engine.Sim
module Dumbbell = Mcc_core.Dumbbell
module Defaults = Mcc_core.Defaults
module Flid = Mcc_mcast.Flid
module Layering = Mcc_mcast.Layering
module Router_agent = Mcc_sigma.Router_agent
module Meter = Mcc_util.Meter
module Prng = Mcc_util.Prng

type viewer = { name : string; access_bps : float }

let viewers =
  [
    { name = "modem (160 kbps)"; access_bps = 160_000. };
    { name = "dsl (600 kbps)"; access_bps = 600_000. };
    { name = "lan (10 Mbps)"; access_bps = 10_000_000. };
  ]

let () =
  let sim = Sim.create () in
  (* A wide shared bottleneck: each viewer's own access link is its
     constraint. *)
  let db = Dumbbell.create sim ~bottleneck_rate_bps:8_000_000. () in
  let agent = Router_agent.attach db.Dumbbell.topo db.Dumbbell.right in
  ignore agent;
  let prng = Prng.create 3 in
  let layering = Defaults.layering () in
  let config =
    Flid.make_config ~id:1 ~base_group:0x4000 ~layering
      ~slot_duration:Defaults.flid_ds_slot ~mode:Flid.Robust ()
  in
  let src = Dumbbell.add_sender db in
  let _sender =
    Flid.sender_start db.Dumbbell.topo ~node:src ~prng:(Prng.split prng) config
  in
  let receivers =
    List.map
      (fun v ->
        let host = Dumbbell.add_receiver ~rate_bps:v.access_bps db in
        ( v,
          Flid.receiver_start db.Dumbbell.topo ~host ~prng:(Prng.split prng)
            config ))
      viewers
  in
  Dumbbell.finalize db;
  Sim.run_until sim 90.;

  Printf.printf
    "Layered video over FLID-DS: one sender, three receiver classes\n\
     (10 layers, 100 kbps base, x1.5 cumulative growth)\n\n";
  Printf.printf "  %-18s %12s %8s %12s %14s\n" "viewer" "capacity" "level"
    "entitled" "throughput";
  List.iter
    (fun (v, r) ->
      let entitled = Layering.fair_level layering ~rate_bps:v.access_bps in
      let level = Flid.receiver_level r in
      let kbps = Meter.mean_kbps (Flid.receiver_meter r) ~lo:40. ~hi:90. in
      Printf.printf "  %-18s %8.0f kbps %8d %12d %10.0f kbps\n" v.name
        (v.access_bps /. 1000.) level entitled kbps)
    receivers;
  Printf.printf
    "\nEach viewer holds the highest stack of layers its capacity sustains;\n\
     the subscription levels differ, the protocol and the edge router are\n\
     shared.\n"
