(* Quickstart: one FLID-DS session (FLID-DL hardened with DELTA+SIGMA)
   over a 250 kbps bottleneck.  The receiver starts at the minimal group
   and climbs to its fair subscription level; every slot it reconstructs
   the next slot's group keys from in-band components and presents them
   to its edge router.

   Run with:  dune exec examples/quickstart.exe *)

module Scenario = Mcc_core.Scenario
module Defaults = Mcc_core.Defaults
module Flid = Mcc_mcast.Flid
module Layering = Mcc_mcast.Layering
module Meter = Mcc_util.Meter

let () =
  (* A dumbbell whose bottleneck equals one fair share: the session
     should settle at the highest level that fits (level 3 = 225 kbps
     of the default 100 kbps x1.5 layering). *)
  let t =
    Scenario.create ~seed:1 ~bottleneck_rate_bps:Defaults.fair_share_bps ()
  in
  let session =
    Scenario.add_multicast t ~mode:Flid.Robust
      ~receivers:[ Scenario.receiver () ] ()
  in
  Scenario.run t ~seconds:60.;

  let receiver = List.hd session.Scenario.receivers in
  let meter = Flid.receiver_meter receiver in
  let fair =
    Layering.fair_level (Defaults.layering ())
      ~rate_bps:Defaults.fair_share_bps
  in
  Printf.printf "FLID-DS quickstart (60 simulated seconds)\n";
  Printf.printf "  bottleneck:          %.0f kbps\n"
    (Defaults.fair_share_bps /. 1000.);
  Printf.printf "  fair level:          %d (%.0f kbps cumulative)\n" fair
    (Layering.cumulative_rate (Defaults.layering ()) ~level:fair /. 1000.);
  Printf.printf "  receiver level:      %d\n" (Flid.receiver_level receiver);
  Printf.printf "  mean throughput:     %.0f kbps (t in [20, 60))\n"
    (Meter.mean_kbps meter ~lo:20. ~hi:60.);
  Printf.printf "  congestion events:   %d\n"
    (Flid.congestion_events receiver);
  Printf.printf "\n  per-second throughput (kbps):\n   ";
  List.iter
    (fun (time, kbps) ->
      if Float.rem time 5.0 < 0.5 then Printf.printf " %3.0fs:%4.0f" time kbps)
    (Meter.throughput_kbps meter);
  print_newline ()
