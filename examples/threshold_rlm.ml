(* Threshold-based congestion control (RLM / MLDA / WEBRC style) with
   the Shamir-threshold DELTA instantiation (paper Section 3.1.2).

   Two receivers face background noise from an on-off CBR: a
   single-loss protocol (FLID-DS) backs off on every lossy slot, while
   the threshold receiver holds its level as long as the loss rate stays
   below theta_g.  The demo also prints the price: Shamir components
   cannot be reused across levels, so the threshold scheme's per-packet
   overhead dwarfs the XOR scheme's.

   Run with:  dune exec examples/threshold_rlm.exe *)

module Sim = Mcc_engine.Sim
module Dumbbell = Mcc_core.Dumbbell
module Defaults = Mcc_core.Defaults
module Flid = Mcc_mcast.Flid
module Rlm = Mcc_mcast.Rlm_like
module Router_agent = Mcc_sigma.Router_agent
module On_off = Mcc_transport.On_off
module Packet = Mcc_net.Packet
module Node = Mcc_net.Node
module Meter = Mcc_util.Meter
module Prng = Mcc_util.Prng

let run_threshold () =
  let sim = Sim.create () in
  let db = Dumbbell.create sim ~bottleneck_rate_bps:300_000. () in
  let _agent = Router_agent.attach db.Dumbbell.topo db.Dumbbell.right in
  let prng = Prng.create 29 in
  let config =
    Rlm.make_config ~id:1 ~base_group:0x6000 ~layering:(Defaults.layering ())
      ~slot_duration:0.25 ~mode:Flid.Robust ()
  in
  let src = Dumbbell.add_sender db in
  let sender =
    Rlm.sender_start db.Dumbbell.topo ~node:src ~prng:(Prng.split prng) config
  in
  let host = Dumbbell.add_receiver db in
  let receiver =
    Rlm.receiver_start db.Dumbbell.topo ~host ~prng:(Prng.split prng) config
  in
  (* Light periodic interference: 60 kbps, 1 s on / 3 s off. *)
  let cbr_src = Dumbbell.add_sender db in
  let cbr_dst = Dumbbell.add_receiver db in
  ignore
    (On_off.start db.Dumbbell.topo ~src:cbr_src
       ~dst:(Packet.Unicast cbr_dst.Node.id) ~rate_bps:60_000.
       ~size:Defaults.packet_size ~on_period:1. ~off_period:3. ());
  Dumbbell.finalize db;
  Sim.run_until sim 60.;
  (sender, receiver)

let () =
  let sender, receiver = run_threshold () in
  let theta g =
    Rlm.threshold
      (Rlm.make_config ~id:0 ~base_group:0 ~layering:(Defaults.layering ())
         ~slot_duration:0.25 ~mode:Flid.Plain ())
      ~level:g
  in
  Printf.printf
    "Threshold-based layered multicast (Shamir DELTA), 300 kbps bottleneck\n\
     with a light on-off interferer.\n\n";
  Printf.printf "  per-level loss tolerance: ";
  for g = 1 to 5 do
    Printf.printf "theta_%d=%.1f%% " g (100. *. theta g)
  done;
  Printf.printf "\n\n  receiver level after 60 s: %d\n"
    (Rlm.receiver_level receiver);
  Printf.printf "  mean throughput 20-60 s:   %.0f kbps\n"
    (Meter.mean_kbps (Rlm.receiver_meter receiver) ~lo:20. ~hi:60.);
  let share_pct =
    100.
    *. float_of_int (Rlm.share_overhead_bits sender)
    /. float_of_int (Rlm.data_bits sender)
  in
  Printf.printf "\n  Shamir share overhead:     %.2f%% of data bits\n" share_pct;
  Printf.printf "  XOR-scheme overhead:       ~0.79%% (paper Section 5.4)\n";
  Printf.printf
    "  -> the paper's point: threshold schemes cannot reuse components\n\
    \     across levels, so their in-band key distribution costs %.0fx more.\n"
    (share_pct /. 0.79)
