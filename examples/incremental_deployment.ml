(* Incremental deployment (paper Section 3.2.3): SIGMA replaces IGMP one
   edge router at a time.  This walkthrough puts the same greedy
   receiver behind an upgraded edge and behind a legacy edge, on a
   shared bottleneck, and shows that the upgraded router keeps its own
   customers honest even while the rest of the network lags behind.

   Run with:  dune exec examples/incremental_deployment.exe *)

module E = Mcc_core.Experiments
module Spec = Mcc_core.Spec
module Defaults = Mcc_core.Defaults

let () =
  Printf.printf
    "Incremental SIGMA deployment\n\
     ----------------------------\n\
     Three FLID-DS sessions share a 750 kbps bottleneck (fair share\n\
     250 kbps each).  At t=40 s two receivers turn greedy and try to\n\
     join all ten groups of their sessions:\n\n\
    \  * one sits behind an edge router that runs SIGMA,\n\
    \  * one sits behind a legacy IGMP router,\n\
    \  * a third receiver stays honest behind the SIGMA edge.\n\n";
  let r =
    E.run_partial { Spec.default_partial with Spec.duration = 120.; attack_at = 40. }
  in
  Printf.printf "  %-36s %10s\n" "receiver" "after t=50s";
  Printf.printf "  %-36s %7.0f kbps\n" "attacker behind SIGMA edge"
    r.E.protected_attacker_kbps;
  Printf.printf "  %-36s %7.0f kbps\n" "attacker behind legacy IGMP edge"
    r.E.unprotected_attacker_kbps;
  Printf.printf "  %-36s %7.0f kbps\n" "honest receiver (SIGMA edge)"
    r.E.honest_kbps;
  Printf.printf
    "\nReading the numbers:\n\
    \  - The SIGMA edge rejects every key its local attacker cannot\n\
    \    reconstruct: its inflation attempt goes nowhere.\n\
    \  - The legacy edge happily grafts all ten groups: that attacker\n\
    \    floods the shared bottleneck with its session's full demand.\n\
    \  - The honest receiver is protected from *local* misbehaviour but\n\
    \    not from the bottleneck damage admitted elsewhere: exactly the\n\
    \    paper's argument for why every upgraded edge router helps, and\n\
    \    why full deployment is the goal.\n"
