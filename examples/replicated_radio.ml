(* Replicated multicast (paper Section 3.1.2, Figure 5): a "radio"
   station streams the same programme at five quality tiers, each in its
   own group; a receiver subscribes to exactly one tier and switches
   tiers with congestion.  The replicated DELTA instantiation guards
   every tier with per-group keys.

   The demo drives the receiver through a congestion episode — an on-off
   CBR burst — and prints the tier track.

   Run with:  dune exec examples/replicated_radio.exe *)

module Sim = Mcc_engine.Sim
module Dumbbell = Mcc_core.Dumbbell
module Defaults = Mcc_core.Defaults
module Flid = Mcc_mcast.Flid
module Rep = Mcc_mcast.Replicated_proto
module Layering = Mcc_mcast.Layering
module Router_agent = Mcc_sigma.Router_agent
module On_off = Mcc_transport.On_off
module Packet = Mcc_net.Packet
module Node = Mcc_net.Node
module Meter = Mcc_util.Meter
module Series = Mcc_util.Series
module Prng = Mcc_util.Prng

let () =
  let sim = Sim.create () in
  let db = Dumbbell.create sim ~bottleneck_rate_bps:600_000. () in
  let _agent = Router_agent.attach db.Dumbbell.topo db.Dumbbell.right in
  let prng = Prng.create 11 in
  (* Five tiers: 64, 96, 144, 216, 324 kbps. *)
  let layering = Layering.make ~groups:5 ~min_rate_bps:64_000. ~factor:1.5 in
  let config =
    Rep.make_config ~id:1 ~base_group:0x5000 ~layering ~slot_duration:0.25
      ~mode:Flid.Robust ()
  in
  let src = Dumbbell.add_sender db in
  let _sender =
    Rep.sender_start db.Dumbbell.topo ~node:src ~prng:(Prng.split prng) config
  in
  let listener_host = Dumbbell.add_receiver db in
  let listener =
    Rep.receiver_start db.Dumbbell.topo ~host:listener_host
      ~prng:(Prng.split prng) config
  in
  (* A 450 kbps burst squeezes the 600 kbps bottleneck between t=30 and
     t=50. *)
  let cbr_src = Dumbbell.add_sender db in
  let cbr_dst = Dumbbell.add_receiver db in
  ignore
    (On_off.start ~at:30. ~until:50. db.Dumbbell.topo ~src:cbr_src
       ~dst:(Packet.Unicast cbr_dst.Node.id) ~rate_bps:450_000.
       ~size:Defaults.packet_size ~on_period:20. ~off_period:1. ());
  Dumbbell.finalize db;
  Sim.run_until sim 80.;

  Printf.printf
    "Replicated-multicast radio: 5 tiers (64..324 kbps), 600 kbps \
     bottleneck,\na 450 kbps burst during [30 s, 50 s].\n\n";
  Printf.printf "  tier track (time -> tier):\n";
  List.iter
    (fun (time, tier) -> Printf.printf "    %5.1f s -> tier %.0f\n" time tier)
    (Series.to_list (Rep.group_series listener));
  Printf.printf "\n  final tier:        %d\n" (Rep.receiver_group listener);
  Printf.printf "  mean rate 10-30 s: %.0f kbps (before burst)\n"
    (Meter.mean_kbps (Rep.receiver_meter listener) ~lo:10. ~hi:30.);
  Printf.printf "  mean rate 35-50 s: %.0f kbps (during burst)\n"
    (Meter.mean_kbps (Rep.receiver_meter listener) ~lo:35. ~hi:50.);
  Printf.printf "  mean rate 60-80 s: %.0f kbps (recovered)\n"
    (Meter.mean_kbps (Rep.receiver_meter listener) ~lo:60. ~hi:80.)
