(* The paper's headline experiment as a demo: an inflating receiver in a
   plain FLID-DL session captures almost the whole bottleneck (Figure 1);
   the identical attack against FLID-DS is stopped cold at the edge
   router because the attacker cannot reconstruct keys for groups it is
   not eligible for (Figure 7).

   Run with:  dune exec examples/attack_demo.exe *)

module Scenario = Mcc_core.Scenario
module Flid = Mcc_mcast.Flid
module Tcp = Mcc_transport.Tcp
module Meter = Mcc_util.Meter
module Router_agent = Mcc_sigma.Router_agent

let attack_at = 100.
let horizon = 200.

let run ~mode =
  let t = Scenario.create ~seed:7 ~bottleneck_rate_bps:1_000_000. () in
  let f1 =
    Scenario.add_multicast t ~mode
      ~receivers:[ Scenario.receiver ~behavior:(Flid.Inflate_after attack_at) () ]
      ()
  in
  let f2 = Scenario.add_multicast t ~mode ~receivers:[ Scenario.receiver () ] () in
  let t1 = Scenario.add_tcp t in
  let t2 = Scenario.add_tcp t in
  Scenario.run t ~seconds:horizon;
  (t, List.hd f1.Scenario.receivers, List.hd f2.Scenario.receivers, t1, t2)

let report ~label (t, r1, r2, t1, t2) =
  let before m = Meter.mean_kbps m ~lo:50. ~hi:attack_at in
  let after m = Meter.mean_kbps m ~lo:(attack_at +. 10.) ~hi:horizon in
  Printf.printf "%s\n" label;
  Printf.printf "  %-22s %12s %12s\n" "receiver" "before" "during attack";
  let row name m =
    Printf.printf "  %-22s %9.0f kbps %9.0f kbps\n" name (before m) (after m)
  in
  row "F1 (misbehaving)" (Flid.receiver_meter r1);
  row "F2" (Flid.receiver_meter r2);
  row "T1 (TCP Reno)" (Tcp.delivered_meter t1);
  row "T2 (TCP Reno)" (Tcp.delivered_meter t2);
  (match Scenario.agent t with
  | Some agent ->
      let guesses =
        List.fold_left
          (fun acc group ->
            let rec sum slot acc =
              if slot > int_of_float (horizon /. 0.25) + 4 then acc
              else
                sum (slot + 1) (acc + Router_agent.guess_count agent ~group ~slot)
            in
            sum 0 acc)
          0
          (Router_agent.known_groups agent)
      in
      Printf.printf
        "  edge router tallied %d distinct invalid keys (the attack's trail)\n"
        guesses
  | None -> ());
  print_newline ()

let () =
  Printf.printf
    "Inflated subscription: 2 multicast + 2 TCP sessions, 1 Mbps bottleneck;\n\
     receiver F1 turns greedy at t=%.0fs and tries to join all 10 groups.\n\n"
    attack_at;
  report ~label:"FLID-DL (unprotected, paper Figure 1):" (run ~mode:Flid.Plain);
  report
    ~label:"FLID-DS (DELTA + SIGMA, paper Figure 7):"
    (run ~mode:Flid.Robust)
