(* The paper's headline experiment as a demo: an inflating receiver in a
   plain FLID-DL session captures almost the whole bottleneck (Figure 1);
   the identical attack against FLID-DS is stopped cold at the edge
   router because the attacker cannot reconstruct keys for groups it is
   not eligible for (Figure 7).

   Run with:  dune exec examples/attack_demo.exe *)

module Scenario = Mcc_core.Scenario
module Defaults = Mcc_core.Defaults
module Forensics = Mcc_core.Forensics
module Flid = Mcc_mcast.Flid
module Tcp = Mcc_transport.Tcp
module Meter = Mcc_util.Meter
module Prng = Mcc_util.Prng
module Router_agent = Mcc_sigma.Router_agent
module Strategy = Mcc_attack.Strategy
module Spec = Mcc_core.Spec
module Timeseries = Mcc_obs.Timeseries

let attack_at = 100.
let horizon = 200.

(* F1's misbehaviour comes from the attack subsystem: the
   persistent-inflation strategy (paper §3.1) adapted into a session
   member.  Under Plain mode the member degrades to the IGMP
   join-everything attack; under Robust it guesses keys for the groups
   it is not eligible for. *)
let inflater ~mode =
  let strat = Strategy.of_kind Spec.Persistent_inflation in
  let slot_duration =
    match mode with
    | Flid.Plain -> Defaults.flid_dl_slot
    | Flid.Robust -> Defaults.flid_ds_slot
  in
  let inst =
    strat.Strategy.instantiate ~attack_at ~slot_duration
      ~prng:(Prng.create 7919)
  in
  Flid.Adversarial (Strategy.member inst)

let run ~mode =
  (* Enable sampling before the scenario builds its Sim: the event loop
     installs the periodic sampler at creation time. *)
  Timeseries.enable ~dt:1.0 ();
  let t = Scenario.create ~seed:7 ~bottleneck_rate_bps:1_000_000. () in
  let f1 =
    Scenario.add_multicast t ~mode
      ~receivers:[ Scenario.receiver ~behavior:(inflater ~mode) () ]
      ()
  in
  let f2 = Scenario.add_multicast t ~mode ~receivers:[ Scenario.receiver () ] () in
  let t1 = Scenario.add_tcp t in
  let t2 = Scenario.add_tcp t in
  Scenario.run t ~seconds:horizon;
  let series = Timeseries.snapshot () in
  Timeseries.disable ();
  (t, List.hd f1.Scenario.receivers, List.hd f2.Scenario.receivers, t1, t2, series)

let report ~label (t, r1, r2, t1, t2, series) =
  let before m = Meter.mean_kbps m ~lo:50. ~hi:attack_at in
  let after m = Meter.mean_kbps m ~lo:(attack_at +. 10.) ~hi:horizon in
  Printf.printf "%s\n" label;
  Printf.printf "  %-22s %12s %12s\n" "receiver" "before" "during attack";
  let row name m =
    Printf.printf "  %-22s %9.0f kbps %9.0f kbps\n" name (before m) (after m)
  in
  row "F1 (misbehaving)" (Flid.receiver_meter r1);
  row "F2" (Flid.receiver_meter r2);
  row "T1 (TCP Reno)" (Tcp.delivered_meter t1);
  row "T2 (TCP Reno)" (Tcp.delivered_meter t2);
  (* Sampled goodput over the whole run: the attack (and, under SIGMA,
     the recovery) is visible in the shape. *)
  List.iter
    (fun (name, points) ->
      let suffix = ".goodput_kbps" in
      let ls = String.length suffix and ln = String.length name in
      if ln >= ls && String.sub name (ln - ls) ls = suffix then
        Printf.printf "  %-22s [%s] 0..%.0fs\n" name
          (Forensics.sparkline ~width:50 points)
          horizon)
    series;
  (match Scenario.agent t with
  | Some agent ->
      let stats = Router_agent.stats agent in
      Printf.printf
        "  edge router: %d keys rejected, %d distinct invalid keys, %d \
         grace admissions, %d lockouts\n"
        stats.Router_agent.keys_rejected stats.Router_agent.distinct_guesses
        stats.Router_agent.grace_admissions stats.Router_agent.lockouts;
      (match Router_agent.failure_audit agent with
      | [] -> Printf.printf "  no key-failure spans: every submitted key validated\n"
      | spans ->
          Printf.printf "  key-failure forensics timeline:\n";
          List.iter
            (fun (f : Router_agent.key_failure) ->
              match f.Router_agent.kf_ended with
              | Some ended ->
                  Printf.printf
                    "    t=%6.1fs receiver %d starts failing validation; %d \
                     rejects until t=%.1fs, then back to valid keys\n"
                    f.Router_agent.kf_first f.Router_agent.kf_receiver
                    f.Router_agent.kf_rejects ended
              | None ->
                  Printf.printf
                    "    t=%6.1fs receiver %d starts failing validation; %d \
                     rejects through t=%.1fs, never recovers (inflated \
                     subscription held)\n"
                    f.Router_agent.kf_first f.Router_agent.kf_receiver
                    f.Router_agent.kf_rejects f.Router_agent.kf_last)
            spans)
  | None -> ());
  print_newline ()

let () =
  Printf.printf
    "Inflated subscription: 2 multicast + 2 TCP sessions, 1 Mbps bottleneck;\n\
     receiver F1 turns greedy at t=%.0fs and tries to join all 10 groups.\n\n"
    attack_at;
  report ~label:"FLID-DL (unprotected, paper Figure 1):" (run ~mode:Flid.Plain);
  report
    ~label:"FLID-DS (DELTA + SIGMA, paper Figure 7):"
    (run ~mode:Flid.Robust)
