(* A reduced defence-evaluation matrix as a demo: three attacks from
   the catalogue against FLID, undefended versus the full DELTA+SIGMA
   edge.  Each cell is one simulated dumbbell (attacked session, honest
   victim session, one TCP flow); the scorecard ranks the defences and
   states the paper's headline claim.

   The full grid (six attacks x three protocols x four defences) is the
   [mcc matrix] subcommand.

   Run with:  dune exec examples/attack_matrix.exe *)

module Matrix = Mcc_attack.Matrix
module Scorecard = Mcc_attack.Scorecard
module Spec = Mcc_core.Spec

let () =
  let entries =
    Matrix.entries ~seed:41 ~duration:120. ~attack_at:30.
      ~attacks:
        [
          Spec.Persistent_inflation;
          Spec.Key_guessing { budget_per_slot = 4 };
          Spec.Collusion { colluders = 3 };
        ]
      ~protocols:[ Spec.Flid_ds ]
      ~defences:[ Spec.Undefended; Spec.Delta_sigma ]
      ()
  in
  Printf.printf
    "Defence-evaluation matrix (reduced grid): %d cells, 120 s each.\n\
     Each cell: attacked session + honest victim session + 1 TCP flow\n\
     on a 1 Mbps dumbbell; attack starts at t=30 s.\n\n\
     Simulating...\n\n%!"
    (List.length entries);
  let rows = Matrix.run ~jobs:1 entries in
  print_string (Scorecard.to_string rows)
