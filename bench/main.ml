(* Benchmark harness: regenerates every experiment figure of the paper
   (Figures 1, 7, 8a-8h, 9a, 9b) and runs Bechamel microbenchmarks of
   the hot primitives.

   Usage:
     dune exec bench/main.exe                 # all figures, paper durations
     dune exec bench/main.exe -- --quick      # abbreviated durations
     dune exec bench/main.exe -- --jobs 4     # sweeps across 4 domains
     dune exec bench/main.exe -- fig1 fig7    # a subset
     dune exec bench/main.exe -- micro        # microbenchmarks only

   Regression gate: --save-baseline FILE writes each figure's events/s
   to FILE as JSON; a later run with --baseline FILE (optionally
   --threshold F, default 0.25) compares itself against that file and
   exits nonzero if any common figure regressed by more than the
   fraction F.  A bare --baseline gates against the committed
   BENCH_baseline.json (saved with --quick, jobs 1).  Compare like
   against like: same --quick/--jobs; across machines, loosen
   --threshold (events/s is machine-dependent).

   --sched heap|wheel runs every figure on that scheduler backend; the
   churn-heap/churn-wheel pair always pins its own backend and prints
   the wheel/heap speedup.

   --record appends this invocation's figures to the run ledger
   (.mcc/ledger, override with MCC_LEDGER), so `mcc history` renders
   the events/s trajectory across bench runs and `mcc diff` compares
   any two of them. *)

module E = Mcc_core.Experiments
module Report = Mcc_core.Report
module Runner = Mcc_core.Runner
module Spec = Mcc_core.Spec
module Flid = Mcc_mcast.Flid
module Metrics = Mcc_obs.Metrics
module Profile = Mcc_obs.Profile
module Scheduler = Mcc_engine.Scheduler
module Sim = Mcc_engine.Sim

let fmt = Format.std_formatter

let quick = ref false
let jobs = ref 1
let sched : Scheduler.backend option ref = ref None
let requested : string list ref = ref []
let baseline_path : string option ref = ref None
let save_baseline_path : string option ref = ref None
let threshold = ref 0.25
let record = ref false

let duration full = if !quick then full /. 4. else full

(* Event-loop throughput per figure: batch runs report through their
   profiles (summed here), while direct Scenario runs land in the main
   domain's "engine.events" counter; the driver reads both. *)
let events_total = ref 0

(* --quick scales a whole spec (attack times, burst windows, joins)
   rather than just the duration, so abbreviated runs keep their
   measurement windows inside the simulated horizon. *)
let q spec = if !quick then Spec.scale_time spec ~factor:0.25 else spec

let run_specs specs =
  Runner.run_specs_profiled ~jobs:!jobs ?sched:!sched (List.map q specs)
  |> List.map (fun (result, _metrics, _series, profile) ->
         events_total := !events_total + profile.Profile.events;
         result)

let run_spec spec = List.hd (run_specs [ spec ])

let attack mode =
  match run_spec (Spec.Attack { Spec.default_attack with Spec.mode = mode }) with
  | E.Attack r -> r
  | _ -> assert false

let fig1 () =
  Report.heading fmt
    "Figure 1: impact of inflated subscription on FLID-DL (1 Mbps \
     bottleneck, F1 misbehaves at t=100s)";
  Report.attack fmt (attack Flid.Plain)

let fig7 () =
  Report.heading fmt
    "Figure 7: protection with DELTA and SIGMA (same scenario, FLID-DS)";
  Report.attack fmt (attack Flid.Robust)

let sweep_counts () =
  if !quick then [ 1; 2; 4; 8 ] else [ 1; 2; 4; 6; 8; 10; 12; 14; 16; 18 ]

let sweep_specs ?(cross_traffic = false) mode =
  List.map
    (fun sessions ->
      Spec.Sweep
        { Spec.seed = 11 + sessions; duration = 200.; sessions; cross_traffic;
          mode })
    (sweep_counts ())

let sweep_point = function E.Sweep_point p -> p | _ -> assert false
let sweep_points specs = List.map sweep_point (run_specs specs)

let fig8a () =
  Report.heading fmt
    "Figure 8a: FLID-DL throughput vs number of sessions (no cross traffic)";
  Report.sweep fmt (sweep_points (sweep_specs Flid.Plain))

let fig8b () =
  Report.heading fmt
    "Figure 8b: FLID-DS throughput vs number of sessions (no cross traffic)";
  Report.sweep fmt (sweep_points (sweep_specs Flid.Robust))

(* Both variants of a comparison figure go into one batch, so --jobs
   parallelises across the full surface, not per half. *)
let sweep_pair ?cross_traffic () =
  let dl_specs = sweep_specs ?cross_traffic Flid.Plain in
  let points =
    List.map sweep_point
      (run_specs (dl_specs @ sweep_specs ?cross_traffic Flid.Robust))
  in
  let n = List.length dl_specs in
  (List.filteri (fun i _ -> i < n) points, List.filteri (fun i _ -> i >= n) points)

let print_pair (dl, ds) =
  Format.fprintf fmt "# sessions  FLID-DL avg  FLID-DS avg@.";
  List.iter2
    (fun (a : E.sweep_point) (b : E.sweep_point) ->
      Format.fprintf fmt "%2d  %.1f  %.1f@." a.E.sessions a.E.average_kbps
        b.E.average_kbps)
    dl ds;
  Format.fprintf fmt "@."

let fig8c () =
  Report.heading fmt
    "Figure 8c: average throughput, FLID-DL vs FLID-DS (no cross traffic)";
  print_pair (sweep_pair ())

let fig8d () =
  Report.heading fmt
    "Figure 8d: average throughput with TCP and on-off CBR cross traffic";
  print_pair (sweep_pair ~cross_traffic:true ())

let fig8e () =
  Report.heading fmt
    "Figure 8e: responsiveness to an 800 Kbps CBR burst (45-75 s)";
  let results =
    run_specs
      [
        Spec.Responsiveness
          { Spec.default_responsiveness with Spec.mode = Flid.Plain };
        Spec.Responsiveness
          { Spec.default_responsiveness with Spec.mode = Flid.Robust };
      ]
  in
  List.iter2
    (fun label result ->
      Format.fprintf fmt "-- %s --@." label;
      match result with
      | E.Responsiveness r -> Report.responsiveness fmt r
      | _ -> assert false)
    [ "FLID-DL"; "FLID-DS" ] results

let fig8f () =
  Report.heading fmt
    "Figure 8f: average throughput vs heterogeneous round-trip times";
  let results =
    run_specs
      [
        Spec.Rtt { Spec.default_rtt with Spec.mode = Flid.Plain };
        Spec.Rtt { Spec.default_rtt with Spec.mode = Flid.Robust };
      ]
  in
  List.iter2
    (fun label result ->
      Format.fprintf fmt "-- %s --@." label;
      match result with E.Rtt r -> Report.rtt fmt r | _ -> assert false)
    [ "FLID-DL"; "FLID-DS" ] results

let convergence mode =
  match
    Runner.run_spec (Spec.Convergence { Spec.default_convergence with Spec.mode })
  with
  | E.Convergence r -> r
  | _ -> assert false

let fig8g () =
  Report.heading fmt
    "Figure 8g: subscription convergence, FLID-DL (joins at 0/10/20/30 s)";
  Report.convergence fmt (convergence Flid.Plain)

let fig8h () =
  Report.heading fmt "Figure 8h: subscription convergence, FLID-DS";
  Report.convergence fmt (convergence Flid.Robust)

let overhead_points values axis =
  run_specs
    (List.map
       (fun (groups, slot) ->
         Spec.Overhead { Spec.default_overhead with Spec.groups; slot; axis })
       values)
  |> List.map (function E.Overhead p -> p | _ -> assert false)

let fig9a () =
  Report.heading fmt
    "Figure 9a: DELTA / SIGMA communication overhead vs number of groups";
  let groups_list =
    if !quick then [ 2; 6; 10; 20 ] else [ 2; 4; 6; 8; 10; 12; 14; 16; 18; 20 ]
  in
  Report.overhead fmt ~x_label:"groups"
    (overhead_points (List.map (fun g -> (g, 0.25)) groups_list) Spec.Groups)

let fig9b () =
  Report.heading fmt
    "Figure 9b: DELTA / SIGMA communication overhead vs slot duration";
  let slots =
    if !quick then [ 0.2; 0.5; 1.0 ]
    else [ 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9; 1.0 ]
  in
  Report.overhead fmt ~x_label:"slot_s"
    (overhead_points (List.map (fun s -> (10, s)) slots) Spec.Slot)

(* --- Beyond the paper's figures: Section 3.2.3 and design ablations ---- *)

let partial () =
  Report.heading fmt
    "Incremental deployment (paper Section 3.2.3): the same attack behind \
     a SIGMA edge router vs a legacy IGMP router";
  let r =
    match run_spec (Spec.Partial Spec.default_partial) with
    | E.Partial r -> r
    | _ -> assert false
  in
  Report.row fmt "attacker behind SIGMA edge"
    [ ("kbps", r.E.protected_attacker_kbps) ];
  Report.row fmt "attacker behind legacy edge"
    [ ("kbps", r.E.unprotected_attacker_kbps) ];
  Report.row fmt "honest receiver (SIGMA edge)" [ ("kbps", r.E.honest_kbps) ];
  Format.fprintf fmt
    "SIGMA prevents local inflation even partially deployed; the legacy\n\
     edge admits the attack, which then also damages everyone sharing the\n\
     bottleneck (the honest receiver's collapse is that collateral).@.@."

(* Ablation: FEC scheme for SIGMA's special packets.  Heavy congestion
   (an unprotected hog on the same bottleneck) drops special packets;
   without redundancy the edge router's keystore develops gaps and even
   honest keys bounce (counted by the guess tally). *)
let ablation_fec () =
  Report.heading fmt
    "Ablation: FEC scheme for key distribution to edge routers";
  Format.fprintf fmt
    "# scheme            honest_kbps  keystore_misses  z@.";
  List.iter
    (fun (label, scheme) ->
      let t =
        Mcc_core.Scenario.create ~seed:51 ~packet_buffer:true
          ~bottleneck_rate_bps:500_000. ()
      in
      let session =
        Mcc_core.Scenario.add_multicast ~fec_scheme:scheme t ~mode:Flid.Robust
          ~receivers:[ Mcc_core.Scenario.receiver () ]
          ()
      in
      (* An unprotected CBR burst at the full bottleneck rate: the queue
         stays solid during bursts, so even the small special packets
         drop and the keystore can only stay complete through FEC. *)
      ignore
        (Mcc_core.Scenario.add_onoff_cbr t ~rate_bps:500_000. ~on_period:2.
           ~off_period:3.);
      Mcc_core.Scenario.run t ~seconds:(duration 120.);
      let honest =
        Mcc_util.Meter.mean_kbps
          (Flid.receiver_meter (List.hd session.Mcc_core.Scenario.receivers))
          ~lo:20. ~hi:(duration 120.)
      in
      let misses =
        match Mcc_core.Scenario.agent t with
        | Some agent -> Mcc_sigma.Router_agent.total_guesses agent
        | None -> 0
      in
      let stats = Flid.sender_stats session.Mcc_core.Scenario.sender in
      Format.fprintf fmt "%-18s %8.1f %12d %10.2f@." label honest misses
        stats.Flid.fec_expansion)
    [
      ("repetition-1", Mcc_sigma.Fec.Repetition 1);
      ("repetition-2", Mcc_sigma.Fec.Repetition 2);
      ("repetition-3", Mcc_sigma.Fec.Repetition 3);
      ("xor-parity", Mcc_sigma.Fec.Xor_parity);
    ];
  Format.fprintf fmt "@."

(* Ablation: SIGMA grace windows.  Too little unconditional forwarding
   after a keyed upgrade starves the receiver of the components it needs
   for the next keys; more grace than the paper's two slots buys
   nothing. *)
let ablation_grace () =
  Report.heading fmt
    "Ablation: SIGMA grace window after a keyed upgrade (paper: 2 slots)";
  Format.fprintf fmt "# grace_slots  honest_kbps@.";
  List.iter
    (fun grace ->
      let config =
        { Mcc_sigma.Router_agent.default_config with
          Mcc_sigma.Router_agent.upgrade_grace_slots = grace }
      in
      let t =
        Mcc_core.Scenario.create ~seed:53 ~agent_config:config
          ~bottleneck_rate_bps:Mcc_core.Defaults.fair_share_bps ()
      in
      let session =
        Mcc_core.Scenario.add_multicast t ~mode:Flid.Robust
          ~receivers:[ Mcc_core.Scenario.receiver () ]
          ()
      in
      Mcc_core.Scenario.run t ~seconds:(duration 120.);
      let kbps =
        Mcc_util.Meter.mean_kbps
          (Flid.receiver_meter (List.hd session.Mcc_core.Scenario.receivers))
          ~lo:30. ~hi:(duration 120.)
      in
      Format.fprintf fmt "%6.1f %14.1f@." grace kbps)
    [ 0.; 0.5; 1.; 2.; 3. ];
  Format.fprintf fmt "@."

(* Ablation: FLID-DS slot duration.  Shorter slots react faster (better
   backoff during a burst) but cost more key-distribution overhead; the
   paper picks 250 ms to match FLID-DL's 500 ms control granularity. *)
let ablation_slot () =
  Report.heading fmt
    "Ablation: FLID-DS slot duration (responsiveness vs overhead)";
  Format.fprintf fmt
    "# slot_s  before_kbps  during_burst_kbps  after_kbps  sigma_overhead%%@.";
  List.iter
    (fun slot ->
      let t =
        Mcc_core.Scenario.create ~seed:57 ~bottleneck_rate_bps:1_000_000. ()
      in
      let session =
        Mcc_core.Scenario.add_multicast ~slot t ~mode:Flid.Robust
          ~receivers:[ Mcc_core.Scenario.receiver () ]
          ()
      in
      ignore
        (Mcc_core.Scenario.add_onoff_cbr t ~at:45. ~until:75.
           ~rate_bps:800_000. ~on_period:30. ~off_period:1.);
      Mcc_core.Scenario.run t ~seconds:(duration 100.);
      let meter =
        Flid.receiver_meter (List.hd session.Mcc_core.Scenario.receivers)
      in
      let stats = Flid.sender_stats session.Mcc_core.Scenario.sender in
      let overhead =
        if stats.Flid.data_bits = 0 then 0.
        else
          100.
          *. float_of_int
               (stats.Flid.sigma_payload_bits + stats.Flid.sigma_header_bits)
          /. float_of_int stats.Flid.data_bits
      in
      Format.fprintf fmt "%6.3f %10.1f %14.1f %12.1f %12.3f@." slot
        (Mcc_util.Meter.mean_kbps meter ~lo:30. ~hi:45.)
        (Mcc_util.Meter.mean_kbps meter ~lo:50. ~hi:75.)
        (Mcc_util.Meter.mean_kbps meter ~lo:85. ~hi:(duration 100.))
        overhead)
    [ 0.125; 0.25; 0.5; 1.0 ];
  Format.fprintf fmt "@."

(* Ablation: XOR scheme vs Shamir threshold scheme in-band overhead
   (paper Section 3.1.2: threshold schemes cannot reuse components). *)
let ablation_threshold () =
  Report.heading fmt
    "Ablation: in-band key material, XOR (FLID-DS) vs Shamir threshold \
     (RLM-like)";
  let seconds = duration 30. in
  (* XOR scheme. *)
  let t = Mcc_core.Scenario.create ~seed:59 ~bottleneck_rate_bps:500_000. () in
  let session =
    Mcc_core.Scenario.add_multicast t ~mode:Flid.Robust
      ~receivers:[ Mcc_core.Scenario.receiver () ]
      ()
  in
  Mcc_core.Scenario.run t ~seconds;
  let stats = Flid.sender_stats session.Mcc_core.Scenario.sender in
  let xor_pct =
    100. *. float_of_int stats.Flid.delta_bits
    /. float_of_int (max 1 stats.Flid.data_bits)
  in
  (* Shamir threshold scheme. *)
  let module Rlm = Mcc_mcast.Rlm_like in
  let module Dumbbell = Mcc_core.Dumbbell in
  let sim = Mcc_engine.Sim.create () in
  let db = Dumbbell.create sim ~bottleneck_rate_bps:500_000. () in
  let _agent =
    Mcc_sigma.Router_agent.attach db.Dumbbell.topo db.Dumbbell.right
  in
  let prng = Mcc_util.Prng.create 59 in
  let config =
    Rlm.make_config ~id:9 ~base_group:0x7F00
      ~layering:(Mcc_core.Defaults.layering ()) ~slot_duration:0.25
      ~mode:Flid.Robust ()
  in
  let src = Dumbbell.add_sender db in
  let sender =
    Rlm.sender_start db.Dumbbell.topo ~node:src
      ~prng:(Mcc_util.Prng.split prng) config
  in
  let host = Dumbbell.add_receiver db in
  let _receiver =
    Rlm.receiver_start db.Dumbbell.topo ~host ~prng:(Mcc_util.Prng.split prng)
      config
  in
  Dumbbell.finalize db;
  Mcc_engine.Sim.run_until sim seconds;
  let shamir_pct =
    100.
    *. float_of_int (Rlm.share_overhead_bits sender)
    /. float_of_int (max 1 (Rlm.data_bits sender))
  in
  Format.fprintf fmt "# scheme             in-band overhead (%% of data bits)@.";
  Format.fprintf fmt "xor (FLID-DS)        %.3f@." xor_pct;
  Format.fprintf fmt "shamir (RLM-like)    %.3f@." shamir_pct;
  Format.fprintf fmt "ratio                %.1fx@.@." (shamir_pct /. xor_pct)

(* Protocol comparison: one session of each family — FLID-DS (single
   loss, XOR keys), replicated (tier switching), RLM-like ladder and
   WEBRC-style equation (threshold keys) — competing with one TCP flow
   on a shared bottleneck provisioned at 250 kbps per flow. *)
let protocols () =
  Report.heading fmt
    "Protocol comparison: FLID-DS / replicated / RLM ladder / WEBRC \
     equation / TCP sharing one bottleneck";
  let module Rep = Mcc_mcast.Replicated_proto in
  let module Rlm = Mcc_mcast.Rlm_like in
  let t =
    Mcc_core.Scenario.create ~seed:101 ~bottleneck_rate_bps:1_250_000. ()
  in
  let flid =
    Mcc_core.Scenario.add_multicast t ~mode:Flid.Robust
      ~receivers:[ Mcc_core.Scenario.receiver () ] ()
  in
  let rep =
    Mcc_core.Scenario.add_replicated t ~mode:Flid.Robust
      ~receivers:[ Mcc_core.Scenario.receiver () ] ()
  in
  let ladder =
    Mcc_core.Scenario.add_rlm t ~mode:Flid.Robust
      ~receivers:[ Mcc_core.Scenario.receiver () ] ()
  in
  let webrc =
    Mcc_core.Scenario.add_rlm ~policy:Rlm.Equation t ~mode:Flid.Robust
      ~receivers:[ Mcc_core.Scenario.receiver () ] ()
  in
  let tcp = Mcc_core.Scenario.add_tcp t in
  let horizon = duration 200. in
  Mcc_core.Scenario.run t ~seconds:horizon;
  let mean m = Mcc_util.Meter.mean_kbps m ~lo:(horizon /. 4.) ~hi:horizon in
  let rows =
    [
      ("flid-ds", mean (Flid.receiver_meter (List.hd flid.Mcc_core.Scenario.receivers)));
      ("replicated", mean (Rep.receiver_meter (List.hd rep.Mcc_core.Scenario.rep_receivers)));
      ("rlm-ladder", mean (Rlm.receiver_meter (List.hd ladder.Mcc_core.Scenario.rlm_receivers)));
      ("webrc-equation", mean (Rlm.receiver_meter (List.hd webrc.Mcc_core.Scenario.rlm_receivers)));
      ("tcp-reno", mean (Mcc_transport.Tcp.delivered_meter tcp));
    ]
  in
  Format.fprintf fmt "# protocol        kbps (fair share 250)@.";
  List.iter (fun (name, kbps) -> Format.fprintf fmt "%-16s %8.1f@." name kbps) rows;
  Format.fprintf fmt "Jain fairness index: %.3f@.@."
    (Mcc_util.Stats.jain_fairness (List.map snd rows))

(* Extension: collusion (paper Section 4.2).  Receiver B, behind a
   150 kbps access link, replays the keys its clean-path accomplice A
   reconstructs.  Plain SIGMA honours them and floods B's link with A's
   whole subscription; interface-specific keys make the replay
   worthless. *)
let collusion () =
  Report.heading fmt
    "Extension: key-passing collusion vs interface-specific keys \
     (paper Section 4.2)";
  Format.fprintf fmt
    "# interface_keys  accomplice_level  groups_open_to_colluder  \
     colluder_access_drops@.";
  List.iter
    (fun interface_keys ->
      let agent_config =
        { Mcc_sigma.Router_agent.default_config with
          Mcc_sigma.Router_agent.interface_keys }
      in
      let t =
        Mcc_core.Scenario.create ~seed:97 ~agent_config
          ~bottleneck_rate_bps:2_000_000. ()
      in
      let session =
        Mcc_core.Scenario.add_multicast t ~mode:Flid.Robust
          ~receivers:
            [
              Mcc_core.Scenario.receiver ();
              Mcc_core.Scenario.receiver ~access_rate_bps:150_000. ();
            ]
          ()
      in
      (match session.Mcc_core.Scenario.receivers with
      | [ a; b ] -> Flid.set_colluder b ~source:a
      | _ -> ());
      Mcc_core.Scenario.run t ~seconds:(duration 60.);
      let agent = Option.get (Mcc_core.Scenario.agent t) in
      let db = Mcc_core.Scenario.dumbbell t in
      let b_host =
        List.find
          (fun (n : Mcc_net.Node.t) ->
            n.Mcc_net.Node.kind = Mcc_net.Node.Host
            && List.exists
                 (fun (l : Mcc_net.Link.t) ->
                   Float.equal l.Mcc_net.Link.rate_bps 150_000.)
                 n.Mcc_net.Node.links)
          (Mcc_net.Topology.nodes db.Mcc_core.Dumbbell.topo)
      in
      let open_groups =
        List.length
          (List.filter
             (fun g ->
               Mcc_sigma.Router_agent.iface_active agent
                 ~group:(Flid.group_addr session.Mcc_core.Scenario.config g)
                 ~toward:b_host.Mcc_net.Node.id)
             (List.init Mcc_core.Defaults.groups (fun i -> i + 1)))
      in
      let drops =
        match
          Mcc_net.Multicast.router_of db.Mcc_core.Dumbbell.topo b_host
        with
        | _, Some link -> link.Mcc_net.Link.drops
        | _, None -> -1
      in
      let a_level =
        Flid.receiver_level (List.hd session.Mcc_core.Scenario.receivers)
      in
      Format.fprintf fmt "%-16b %10d %18d %20d@." interface_keys a_level
        open_groups drops)
    [ false; true ];
  Format.fprintf fmt "@."

(* Extension: ECN-driven DELTA (paper Section 3.1.2, "Congestion
   notification").  With marking enabled the edge router scrubs the
   component field of marked copies and the receiver treats marks as
   congestion: the session backs off before the queue overflows. *)
let ecn () =
  Report.heading fmt
    "Extension: ECN-driven congestion signalling (marks instead of drops)";
  Format.fprintf fmt "# variant     kbps  bottleneck_drops  marks@.";
  List.iter
    (fun (label, ecn) ->
      let t =
        Mcc_core.Scenario.create ~seed:63 ~ecn
          ~bottleneck_rate_bps:Mcc_core.Defaults.fair_share_bps ()
      in
      let session =
        Mcc_core.Scenario.add_multicast t ~mode:Flid.Robust
          ~receivers:[ Mcc_core.Scenario.receiver () ]
          ()
      in
      Mcc_core.Scenario.run t ~seconds:(duration 120.);
      let kbps =
        Mcc_util.Meter.mean_kbps
          (Flid.receiver_meter (List.hd session.Mcc_core.Scenario.receivers))
          ~lo:30. ~hi:(duration 120.)
      in
      let db = Mcc_core.Scenario.dumbbell t in
      Format.fprintf fmt "%-10s %8.1f %10d %12d@." label kbps
        db.Mcc_core.Dumbbell.forward.Mcc_net.Link.drops
        db.Mcc_core.Dumbbell.forward.Mcc_net.Link.marks)
    [ ("drop-tail", false); ("ecn", true) ];
  Format.fprintf fmt "@."

(* Extension: the oversubscribed-CC protocol — each receiver subscribes
   one layer past its sustainable rate and backs off on the EWMA of the
   ECN mark fraction.  Honest receivers only; the attack matrix covers
   the adversarial cells. *)
let oversub () =
  let module Oversub = Mcc_mcast.Oversub in
  Report.heading fmt
    "Extension: oversubscribed CC (EWMA of ECN mark fraction), 3 \
     receivers on an ECN dumbbell";
  let t =
    Mcc_core.Scenario.create ~seed:77 ~ecn:true ~sigma:true
      ~bottleneck_rate_bps:1_000_000. ()
  in
  let s =
    Mcc_core.Scenario.add_oversub t ~mode:Flid.Robust
      ~receivers:
        [
          Mcc_core.Scenario.receiver ();
          Mcc_core.Scenario.receiver ();
          Mcc_core.Scenario.receiver ();
        ]
      ()
  in
  let horizon = duration 120. in
  Mcc_core.Scenario.run t ~seconds:horizon;
  Format.fprintf fmt "# receiver  level     kbps  mark_ewma  decreases@.";
  List.iteri
    (fun i r ->
      Format.fprintf fmt "%-9d %6d %8.1f %10.3f %10d@." i
        (Oversub.receiver_level r)
        (Mcc_util.Meter.mean_kbps (Oversub.receiver_meter r)
           ~lo:(horizon /. 4.) ~hi:horizon)
        (Oversub.mark_ewma r)
        (Oversub.decrease_events r))
    s.Mcc_core.Scenario.ovs_receivers;
  Format.fprintf fmt "@."

(* Attack-evaluation matrix (reduced grid): two strategies against
   FLID, undefended vs DELTA+SIGMA, through the same batch runner as
   the figures — so the events/s gate also covers the adversary
   scenarios (bare attackers, SIGMA control traffic, lockouts). *)
let matrix () =
  Report.heading fmt
    "Attack matrix (reduced): inflate & grace-churn vs FLID, plain vs \
     DELTA+SIGMA";
  let entries =
    Mcc_attack.Matrix.entries
      ~attacks:
        [ Spec.Persistent_inflation; Spec.Grace_churn { period_slots = 2.5 } ]
      ~protocols:[ Spec.Flid_ds ]
      ~defences:[ Spec.Undefended; Spec.Delta_sigma ]
      ()
  in
  let entries =
    List.map (fun e -> { e with Runner.spec = q e.Runner.spec }) entries
  in
  let rows = Mcc_attack.Matrix.run ~jobs:!jobs ?sched:!sched entries in
  List.iter
    (fun (row : Runner.row) ->
      events_total := !events_total + row.Runner.profile.Profile.events)
    rows;
  Format.fprintf fmt "%s@." (Mcc_attack.Scorecard.to_string rows)

(* Self-profiler overhead: the matrix inflate cell — every Prof span
   site and Lineage hop site compiled in — with instrumentation left
   disabled, as an events/s figure the baseline gate tracks.  This is
   the zero-cost-when-off claim in the regression harness: a disabled
   span is one DLS read and an integer compare, so the figure must stay
   within noise of the same cell before the instrumentation existed
   (the acceptance bar is 2% plus measurement noise; the committed
   cross-machine gate is necessarily looser). *)
let profile_overhead () =
  Report.heading fmt
    "Profiler overhead: matrix inflate cell, span sites compiled in, \
     instrumentation off";
  Gc.compact ();
  match run_spec (Spec.Adversary Spec.default_adversary) with
  | E.Adversary r ->
      Report.row fmt "honest receiver"
        [
          ("before_kbps", r.E.honest_before_kbps);
          ("after_kbps", r.E.honest_after_kbps);
        ];
      Report.row fmt "attacker"
        [ ("kbps", r.E.attacker_kbps); ("gain", r.E.attacker_gain) ]
  | _ -> assert false

(* --- scheduler churn stress -------------------------------------------- *)

(* The workload the calendar queue exists for: a hot set of
   self-rescheduling timers (every FLID/RLM receiver, link serializer,
   and adversary in a big matrix cell is one) firing every few
   milliseconds, against a cold standing population of long-timeout
   timers (session expiries, keepalives) that never fire inside the
   measured window.  The heap pays O(log n) per event against the
   whole population, hot and cold alike; the wheel places the cold
   timers once in its upper levels and never touches them again, so
   its per-event cost stays O(1) on the hot set.  Delays come from a
   precomputed table (drawn once per process from a fixed Prng seed)
   so the figure measures the scheduler, not the RNG — both backends
   run the byte-identical schedule and events/s is the only thing that
   differs. *)
let churn_hot = 5_000
let churn_cold = 100_000
let churn_mean = 0.005
let churn_budget () = if !quick then 2_000_000 else 4_000_000

let churn backend () =
  Report.heading fmt
    (Printf.sprintf
       "Scheduler churn: %d hot timers + %d cold, %d events (%s backend)"
       churn_hot churn_cold (churn_budget ())
       (Scheduler.backend_name backend));
  (* Figures before this one leave a large, fragmented major heap;
     compacting first gives both backends the same memory layout
     whether the figure runs alone or after the whole suite. *)
  Gc.compact ();
  let sim = Sim.create ~sched:backend () in
  let prng = Mcc_util.Prng.create 1907 in
  let delays =
    Array.init 4096 (fun _ ->
        Mcc_util.Prng.float prng *. (2. *. churn_mean))
  in
  let cursor = ref 0 in
  let remaining = ref (churn_budget ()) in
  let rec fire () =
    if !remaining > 0 then begin
      decr remaining;
      cursor := (!cursor + 1) land 4095;
      Sim.post_after sim ~delay:delays.(!cursor) fire
    end
  in
  for _ = 1 to churn_hot do
    cursor := (!cursor + 1) land 4095;
    Sim.post_after sim ~delay:delays.(!cursor) fire
  done;
  (* Cold timers: timeouts up to ~67 simulated minutes, far beyond the
     horizon, so none fires — they only deepen the standing queue. *)
  for _ = 1 to churn_cold do
    Sim.post_after sim
      ~delay:(Mcc_util.Prng.float prng *. 4000.)
      (fun () -> ())
  done;
  let horizon =
    float_of_int (churn_budget ()) *. churn_mean /. float_of_int churn_hot
  in
  Sim.run_until sim horizon;
  Format.fprintf fmt "final sim time %.1fs, queue capacity %d@.@."
    (Sim.now sim) (Sim.queue_capacity sim)

let churn_heap = churn Scheduler.heap
let churn_wheel = churn Scheduler.wheel

(* --- Bechamel microbenchmarks ------------------------------------------ *)

let micro () =
  let open Bechamel in
  let prng = Mcc_util.Prng.create 99 in
  let delta_precompute =
    Test.make ~name:"delta/layered-precompute-N10" (Bechamel.Staged.stage @@ fun () ->
        ignore
          (Mcc_delta.Layered.sender_create ~prng ~width:16 ~groups:10
             ~upgrades:(Array.make 10 true)))
  in
  let delta_roundtrip =
    Test.make ~name:"delta/layered-slot-roundtrip" (Bechamel.Staged.stage @@ fun () ->
        let s =
          Mcc_delta.Layered.sender_create ~prng ~width:16 ~groups:10
            ~upgrades:(Array.make 10 false)
        in
        let r = Mcc_delta.Layered.receiver_create ~groups:10 in
        for g = 1 to 10 do
          for i = 0 to 9 do
            let c =
              Mcc_delta.Layered.next_component s ~group:g ~last:(i = 9)
            in
            Mcc_delta.Layered.on_packet r ~group:g ~component:c
              ~decrease:(Mcc_delta.Layered.decrease_field s ~group:g)
          done
        done;
        ignore
          (Mcc_delta.Layered.slot_end r ~level:10 ~congested:false
             ~lost:(fun _ -> false)
             ~upgrade_to:(fun _ -> false)))
  in
  let shamir =
    Test.make ~name:"delta/shamir-split-reconstruct-k8-n16" (Bechamel.Staged.stage @@ fun () ->
        let shares = Mcc_util.Shamir.split prng ~k:8 ~n:16 ~secret:123456 in
        ignore
          (Mcc_util.Shamir.reconstruct
             (Array.to_list (Array.sub shares 0 8))))
  in
  (* One micro per backend over the identical push/pop schedule; the
     queue is created outside the staged closure so steady-state capacity
     (not first-run growth) is what's measured. *)
  let sched_micro name backend =
    let q = Scheduler.instantiate backend () in
    Test.make ~name (Bechamel.Staged.stage @@ fun () ->
        for i = 0 to 999 do
          q.Scheduler.push ~time:(float_of_int (i * 7 mod 100)) i
        done;
        while not (q.Scheduler.is_empty ()) do
          ignore (q.Scheduler.pop ())
        done)
  in
  let sched_heap = sched_micro "engine/sched-heap-push-pop-1k" Scheduler.heap in
  let sched_wheel =
    sched_micro "engine/sched-wheel-push-pop-1k" Scheduler.wheel
  in
  let sim_second =
    Test.make ~name:"scenario/one-simulated-second" (Bechamel.Staged.stage @@ fun () ->
        let t =
          Mcc_core.Scenario.create ~seed:3 ~bottleneck_rate_bps:1_000_000. ()
        in
        ignore
          (Mcc_core.Scenario.add_multicast t ~mode:Flid.Robust
             ~receivers:[ Mcc_core.Scenario.receiver () ] ());
        Mcc_core.Scenario.run t ~seconds:1.0)
  in
  let tests =
    [ delta_precompute; delta_roundtrip; shamir; sched_heap; sched_wheel;
      sim_second ]
  in
  let benchmark test =
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let raw = Benchmark.all cfg instances test in
    let results =
      Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false
                     ~predictors:[| Measure.run |])
        (Toolkit.Instance.monotonic_clock) raw
    in
    Hashtbl.iter
      (fun name result ->
        match Analyze.OLS.estimates result with
        | Some [ est ] -> Format.fprintf fmt "%-42s %12.1f ns/run@." name est
        | Some _ | None -> Format.fprintf fmt "%-42s (no estimate)@." name)
      results
  in
  Report.heading fmt "Microbenchmarks (Bechamel, monotonic clock)";
  List.iter benchmark tests

(* --- driver ------------------------------------------------------------ *)

let all_figs =
  [
    ("fig1", fig1);
    ("fig7", fig7);
    ("fig8a", fig8a);
    ("fig8b", fig8b);
    ("fig8c", fig8c);
    ("fig8d", fig8d);
    ("fig8e", fig8e);
    ("fig8f", fig8f);
    ("fig8g", fig8g);
    ("fig8h", fig8h);
    ("fig9a", fig9a);
    ("fig9b", fig9b);
    ("partial", partial);
    ("protocols", protocols);
    ("collusion", collusion);
    ("ecn", ecn);
    ("oversub", oversub);
    ("matrix", matrix);
    ("ablation-fec", ablation_fec);
    ("ablation-grace", ablation_grace);
    ("ablation-slot", ablation_slot);
    ("ablation-threshold", ablation_threshold);
    ("profile-overhead", profile_overhead);
    ("churn-heap", churn_heap);
    ("churn-wheel", churn_wheel);
    ("micro", micro);
  ]

(* --- events/s baseline gate -------------------------------------------- *)

module Json = Mcc_core.Json

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let save_baseline path rates =
  let oc = open_out path in
  output_string oc
    (Json.to_string (Json.Obj (List.map (fun (n, r) -> (n, Json.Float r)) rates)));
  output_char oc '\n';
  close_out oc;
  Format.fprintf fmt "baseline saved to %s (%d figures)@." path
    (List.length rates)

(* Compare this run's events/s against a saved baseline; any common
   figure more than [threshold] below its baseline is a regression and
   fails the run.  Figures present on only one side are reported but
   never fail — registries evolve. *)
let compare_baseline path rates =
  let baseline =
    match Json.of_string (read_file path) with
    | Ok (Json.Obj fields) ->
        List.filter_map
          (fun (n, v) ->
            Option.map (fun r -> (n, r)) (Json.to_float_opt v))
          fields
    | Ok _ ->
        Format.eprintf "%s: baseline is not a JSON object@." path;
        exit 2
    | Error e ->
        Format.eprintf "%s: cannot parse baseline: %s@." path e;
        exit 2
  in
  Format.fprintf fmt "@.baseline comparison against %s (threshold -%.0f%%):@."
    path (100. *. !threshold);
  Format.fprintf fmt "# figure          baseline ev/s   current ev/s   delta@.";
  let regressions = ref [] in
  List.iter
    (fun (name, cur) ->
      match List.assoc_opt name baseline with
      | None -> Format.fprintf fmt "%-16s %14s %14.0f   (new)@." name "-" cur
      | Some base ->
          let delta = if base > 0. then (cur -. base) /. base else 0. in
          let flag =
            if delta < -. !threshold then begin
              regressions := name :: !regressions;
              "  REGRESSION"
            end
            else ""
          in
          Format.fprintf fmt "%-16s %14.0f %14.0f %+6.1f%%%s@." name base cur
            (100. *. delta) flag)
    rates;
  List.iter
    (fun (name, _) ->
      if not (List.mem_assoc name rates) then
        Format.fprintf fmt "%-16s (in baseline only)@." name)
    baseline;
  if !regressions <> [] then begin
    Format.eprintf "events/s regression beyond %.0f%%: %s@."
      (100. *. !threshold)
      (String.concat ", " (List.rev !regressions));
    exit 1
  end

let () =
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
        quick := true;
        parse rest
    | "--jobs" :: n :: rest ->
        jobs := max 1 (int_of_string n);
        parse rest
    | "--sched" :: name :: rest ->
        (match Scheduler.of_name name with
        | Ok b ->
            sched := Some b;
            (* Direct Scenario/Sim figures run on this domain and pick
               the backend up from the domain default; batch figures get
               it passed explicitly so worker domains follow suit. *)
            Scheduler.set_default b
        | Error e ->
            Format.eprintf "bench: %s@." e;
            exit 2);
        parse rest
    (* A bare --baseline (next token absent, a flag, or a figure name)
       gates against the committed repo baseline. *)
    | "--baseline" :: path :: rest
      when String.length path > 0
           && path.[0] <> '-'
           && not (List.mem_assoc path all_figs) ->
        baseline_path := Some path;
        parse rest
    | "--baseline" :: rest ->
        baseline_path := Some "BENCH_baseline.json";
        parse rest
    | "--save-baseline" :: path :: rest ->
        save_baseline_path := Some path;
        parse rest
    | "--threshold" :: f :: rest ->
        threshold := float_of_string f;
        parse rest
    | "--record" :: rest ->
        record := true;
        parse rest
    | name :: rest ->
        requested := name :: !requested;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let selected =
    if !requested = [] then all_figs
    else
      List.filter (fun (name, _) -> List.mem name !requested) all_figs
  in
  if selected = [] then begin
    Format.fprintf fmt "unknown selection; available:@.";
    List.iter (fun (name, _) -> Format.fprintf fmt "  %s@." name) all_figs
  end
  else begin
    let rates = ref [] in
    List.iter
      (fun (name, f) ->
        Metrics.reset ();
        events_total := 0;
        let (), wall = Profile.with_wall_clock f in
        let events =
          !events_total + Metrics.counter_value (Metrics.counter "engine.events")
        in
        Metrics.reset ();
        if events > 0 then begin
          let rate = float_of_int events /. Float.max wall 1e-9 in
          rates := (name, rate) :: !rates;
          Format.fprintf fmt "[%s done in %.1fs, %d events, %.0f events/s]@."
            name wall events rate
        end
        else Format.fprintf fmt "[%s done in %.1fs]@." name wall)
      selected;
    let rates = List.rev !rates in
    (match
       ( List.assoc_opt "churn-heap" rates,
         List.assoc_opt "churn-wheel" rates )
     with
    | Some h, Some w when h > 0. ->
        Format.fprintf fmt "[churn wheel/heap speedup: %.2fx]@." (w /. h)
    | _ -> ());
    (match !save_baseline_path with
    | Some path -> save_baseline path rates
    | None -> ());
    (* --record appends this invocation to the run ledger so `mcc
       history`/`mcc diff` see the bench trajectory.  The figure names
       and configuration are the deterministic payload; the events/s
       figures are wall-derived and live in the wall suffix, like every
       other host-timing field. *)
    if !record then begin
      let dir = Mcc_obs.Ledger.default_dir () in
      let selection =
        match !requested with [] -> "all" | l -> String.concat "," (List.rev l)
      in
      let payload =
        Json.Obj
          [
            ( "config",
              Json.Obj
                [
                  ("command", Json.String "bench");
                  ("selection", Json.String selection);
                  ("quick", Json.Bool !quick);
                  ( "figures",
                    Json.List
                      (List.map (fun (n, _) -> Json.String n) rates) );
                ] );
          ]
      in
      let wall =
        [
          ("recorded_unix_s", Json.Float (Profile.now ()));
          ( "figures",
            Json.Obj (List.map (fun (n, r) -> (n, Json.Float r)) rates) );
        ]
      in
      match
        Mcc_obs.Ledger.append ~dir ~kind:"bench" ~label:selection ~payload
          ~wall ()
      with
      | Ok entry ->
          Format.fprintf fmt "[recorded as ledger entry #%d in %s]@."
            entry.Mcc_obs.Ledger.seq
            (Mcc_obs.Ledger.file ~dir)
      | Error msg -> Format.eprintf "bench: ledger: %s (continuing)@." msg
    end;
    match !baseline_path with
    | Some path -> compare_baseline path rates
    | None -> ()
  end
