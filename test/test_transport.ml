module Sim = Mcc_engine.Sim
module Topology = Mcc_net.Topology
module Node = Mcc_net.Node
module Link = Mcc_net.Link
module Packet = Mcc_net.Packet
module Tcp = Mcc_transport.Tcp
module Cbr = Mcc_transport.Cbr
module On_off = Mcc_transport.On_off
module Meter = Mcc_util.Meter

let path ~rate ~buffer () =
  let sim = Sim.create () in
  let topo = Topology.create sim in
  let a = Topology.add_node topo Node.Host in
  let r1 = Topology.add_node topo Node.Core_router in
  let r2 = Topology.add_node topo Node.Core_router in
  let b = Topology.add_node topo Node.Host in
  ignore
    (Topology.connect topo a r1 ~rate_bps:10e6 ~delay_s:0.01
       ~buffer_bytes:100_000 ());
  let bottleneck, _ =
    Topology.connect topo r1 r2 ~rate_bps:rate ~delay_s:0.02
      ~buffer_bytes:buffer ()
  in
  ignore
    (Topology.connect topo r2 b ~rate_bps:10e6 ~delay_s:0.01
       ~buffer_bytes:100_000 ());
  Topology.compute_routes topo;
  (sim, topo, a, b, bottleneck)

let test_tcp_fills_pipe () =
  let sim, topo, a, b, _ = path ~rate:1_000_000. ~buffer:20_000 () in
  let flow = Tcp.start topo ~flow:1 ~src:a ~dst:b () in
  Sim.run_until sim 30.;
  let kbps = Meter.mean_kbps (Tcp.delivered_meter flow) ~lo:5. ~hi:30. in
  Alcotest.(check bool)
    (Printf.sprintf "utilization %.0f kbps" kbps)
    true
    (kbps > 850. && kbps <= 1000.)

let test_tcp_losses_trigger_retransmits () =
  (* A tiny buffer forces drops; delivery must still be loss-free and
     in order at the sink (cumulative acks + retransmissions). *)
  let sim, topo, a, b, bottleneck = path ~rate:500_000. ~buffer:3_000 () in
  let flow = Tcp.start topo ~flow:1 ~src:a ~dst:b () in
  Sim.run_until sim 30.;
  Alcotest.(check bool) "drops happened" true (bottleneck.Link.drops > 0);
  Alcotest.(check bool) "retransmissions happened" true
    (Tcp.retransmissions flow > 0);
  let kbps = Meter.mean_kbps (Tcp.delivered_meter flow) ~lo:5. ~hi:30. in
  Alcotest.(check bool) "still delivers" true (kbps > 300.)

let test_tcp_two_flows_share () =
  let sim, topo, a, b, _ = path ~rate:1_000_000. ~buffer:20_000 () in
  let f1 = Tcp.start topo ~flow:1 ~src:a ~dst:b () in
  let f2 = Tcp.start ~at:0.1 topo ~flow:2 ~src:a ~dst:b () in
  Sim.run_until sim 60.;
  let k1 = Meter.mean_kbps (Tcp.delivered_meter f1) ~lo:10. ~hi:60. in
  let k2 = Meter.mean_kbps (Tcp.delivered_meter f2) ~lo:10. ~hi:60. in
  let ratio = if k2 = 0. then infinity else k1 /. k2 in
  Alcotest.(check bool)
    (Printf.sprintf "rough fairness (%.0f vs %.0f)" k1 k2)
    true
    (ratio > 0.4 && ratio < 2.5);
  Alcotest.(check bool) "pipe full" true (k1 +. k2 > 850.)

let test_tcp_cwnd_grows_from_slow_start () =
  let sim, topo, a, b, _ = path ~rate:10_000_000. ~buffer:200_000 () in
  let flow = Tcp.start topo ~flow:1 ~src:a ~dst:b () in
  Sim.run_until sim 1.0;
  Alcotest.(check bool) "cwnd grew" true (Tcp.cwnd flow > 4.)

let test_cbr_rate () =
  let sim, topo, a, b, _ = path ~rate:1_000_000. ~buffer:20_000 () in
  let meter = Meter.create () in
  Node.set_unicast_handler b (fun pkt ->
      Meter.record meter ~time:(Sim.now sim) ~bytes:pkt.Packet.size);
  ignore
    (Cbr.start topo ~src:a ~dst:(Packet.Unicast b.Node.id) ~rate_bps:200_000.
       ~size:500 ());
  Sim.run_until sim 20.;
  let kbps = Meter.mean_kbps meter ~lo:2. ~hi:20. in
  Alcotest.(check bool)
    (Printf.sprintf "cbr ~200 kbps, got %.0f" kbps)
    true
    (abs_float (kbps -. 200.) < 10.)

let test_cbr_pause_resume () =
  let sim, topo, a, b, _ = path ~rate:1_000_000. ~buffer:20_000 () in
  let count = ref 0 in
  Node.set_unicast_handler b (fun _ -> incr count);
  let cbr =
    Cbr.start topo ~src:a ~dst:(Packet.Unicast b.Node.id) ~rate_bps:100_000.
      ~size:500 ()
  in
  Sim.run_until sim 1.0;
  Cbr.pause cbr;
  let at_pause = !count in
  Sim.run_until sim 2.0;
  Alcotest.(check bool) "paused (packets in flight may land)" true
    (!count <= at_pause + 1);
  Cbr.resume cbr;
  Sim.run_until sim 3.0;
  Alcotest.(check bool) "resumed" true (!count > at_pause + 10)

let test_onoff_duty_cycle () =
  let sim, topo, a, b, _ = path ~rate:1_000_000. ~buffer:20_000 () in
  let meter = Meter.create () in
  Node.set_unicast_handler b (fun pkt ->
      Meter.record meter ~time:(Sim.now sim) ~bytes:pkt.Packet.size);
  ignore
    (On_off.start topo ~src:a ~dst:(Packet.Unicast b.Node.id)
       ~rate_bps:400_000. ~size:500 ~on_period:5. ~off_period:5. ());
  Sim.run_until sim 40.;
  (* 50% duty cycle at 400 kbps: about 200 kbps on average. *)
  let kbps = Meter.mean_kbps meter ~lo:0. ~hi:40. in
  Alcotest.(check bool)
    (Printf.sprintf "duty cycle, got %.0f" kbps)
    true
    (abs_float (kbps -. 200.) < 25.);
  (* During an off period nothing flows. *)
  let off = Meter.mean_kbps meter ~lo:6. ~hi:9. in
  Alcotest.(check bool) "off period quiet" true (off < 1.)

let test_onoff_until () =
  let sim, topo, a, b, _ = path ~rate:1_000_000. ~buffer:20_000 () in
  let meter = Meter.create () in
  Node.set_unicast_handler b (fun pkt ->
      Meter.record meter ~time:(Sim.now sim) ~bytes:pkt.Packet.size);
  ignore
    (On_off.start ~at:1. ~until:3. topo ~src:a ~dst:(Packet.Unicast b.Node.id)
       ~rate_bps:400_000. ~size:500 ~on_period:10. ~off_period:0. ());
  Sim.run_until sim 10.;
  Alcotest.(check bool) "active inside window" true
    (Meter.mean_kbps meter ~lo:1. ~hi:3. > 300.);
  Alcotest.(check bool) "silent after until" true
    (Meter.mean_kbps meter ~lo:4. ~hi:10. < 1.)

let suite =
  ( "transport",
    [
      Alcotest.test_case "tcp fills pipe" `Quick test_tcp_fills_pipe;
      Alcotest.test_case "tcp loss recovery" `Quick
        test_tcp_losses_trigger_retransmits;
      Alcotest.test_case "tcp sharing" `Quick test_tcp_two_flows_share;
      Alcotest.test_case "tcp slow start" `Quick
        test_tcp_cwnd_grows_from_slow_start;
      Alcotest.test_case "cbr rate" `Quick test_cbr_rate;
      Alcotest.test_case "cbr pause/resume" `Quick test_cbr_pause_resume;
      Alcotest.test_case "on-off duty cycle" `Quick test_onoff_duty_cycle;
      Alcotest.test_case "on-off until" `Quick test_onoff_until;
    ] )
