(* Twin: spelling every constructor keeps the match honest — adding a
   registry entry turns this into a compile error, not silent fallout. *)
let is_flid (p : Mcc_core.Spec.protocol) =
  match p with
  | Mcc_core.Spec.Flid_ds -> true
  | Mcc_core.Spec.Rlm_threshold | Mcc_core.Spec.Replicated
  | Mcc_core.Spec.Oversub ->
      false
