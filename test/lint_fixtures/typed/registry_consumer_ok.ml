(* Twin: every constructor appears, so a new registry entry surfaces
   here as a missing case. *)
let order =
  [
    Mcc_core.Spec.Flid_ds;
    Mcc_core.Spec.Rlm_threshold;
    Mcc_core.Spec.Replicated;
    Mcc_core.Spec.Oversub;
  ]

let count () = List.length Mcc_core.Spec.protocols
