(* Fixture: a [@hot] function that allocates a tuple per call. *)
let[@hot] pair x = (x, x)
