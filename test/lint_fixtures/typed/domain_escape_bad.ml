(* Fixture: a [ref] captured by a closure passed to Domain.spawn. *)
let bad () =
  let counter = ref 0 in
  let d = Domain.spawn (fun () -> incr counter) in
  Domain.join d;
  !counter
