(* Fixture: dispatches on the registry naming a single constructor and
   never deriving from Spec.protocols — new entries would miss it. *)
let label p = if p = Mcc_core.Spec.Flid_ds then "flid" else "other"
