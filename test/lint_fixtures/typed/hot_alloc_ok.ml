(* Twin: arithmetic only under [@hot]; the unannotated allocator is out
   of the rule's scope. *)
let[@hot] add x y = x + y
let pair x = (x, x)
