(* Twin: atomics may cross domains, and a DLS initialiser that creates
   (rather than captures) mutable state is the sanctioned pattern. *)
let ok () =
  let counter = Atomic.make 0 in
  let d = Domain.spawn (fun () -> Atomic.incr counter) in
  Domain.join d;
  Atomic.get counter

let key = Domain.DLS.new_key (fun () -> ref 0)
