(* Fixture: a catch-all over the protocol registry hides new entries. *)
let is_flid (p : Mcc_core.Spec.protocol) =
  match p with Mcc_core.Spec.Flid_ds -> true | _ -> false
