(* Fixture: unparseable on purpose — the linter must report exit 2. *)
let = ((
