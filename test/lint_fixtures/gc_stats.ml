(* Fixture: GC statistics read outside lib/obs. *)
let heat () = Gc.minor_words ()

(* lint: allow gc-stats — twin demonstrating pragma suppression *)
let heat_allowed () = Gc.minor_words ()
