(* lint: allow mli-coverage — fixtures carry no interfaces *)
(* Fixture: wall-clock.  Line 3 (clock read) and 6 (pacing sleep) violate. *)
let bad () = Unix.gettimeofday ()
(* lint: allow wall-clock — suppressed twin *)
let ok () = Sys.time ()
let bad_sleep () = Unix.sleepf 0.1
(* lint: allow wall-clock — suppressed pacing sleep *)
let ok_sleep () = Unix.sleep 1
let all = (bad, ok, bad_sleep, ok_sleep)
