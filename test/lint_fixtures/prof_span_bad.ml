(* lint: allow mli-coverage — fixtures carry no interfaces *)
(* Fixture: prof-span.  Lines 4-5 violate (span sites outside lib/);
   line 8 is the suppressed twin. *)
let bad () = Prof.span "fixture"
let also_bad f = Mcc_obs.Prof.with_span "fixture" f

(* lint: allow prof-span — suppressed twin *)
let ok () = Prof.span "fixture"
let uses = (bad, also_bad, ok)
