(* lint: allow mli-coverage — suppressed twin of no_mli.ml *)
let answer = 42
