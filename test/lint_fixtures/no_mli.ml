(* Fixture: mli-coverage — this file deliberately has no interface. *)
let answer = 42
