(* lint: allow mli-coverage — fixtures carry no interfaces *)
(* Fixture: ambient-randomness.  Line 4 violates; line 6 is the
   suppressed twin; line 7 threads explicit state and is clean. *)
let bad () = Random.self_init ()
(* lint: allow ambient-randomness — suppressed twin *)
let ok () = Random.int 6
let fine st = Random.State.int st 6
