(* lint: allow mli-coverage — fixtures carry no interfaces *)
let bad = Hashtbl.create 16
(* lint: allow shared-mutable-toplevel — suppressed twin *)
let ok = ref 0
let fine () = Buffer.create 8
let also_fine = fun () -> Array.make 4 0
