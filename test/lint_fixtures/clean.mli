val add : int -> int -> int
val scaled : float list -> float list
