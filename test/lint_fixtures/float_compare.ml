(* lint: allow mli-coverage — fixtures carry no interfaces *)
let bad x = x = 0.5
let bad_sort xs = List.sort compare xs
(* lint: allow float-poly-compare — suppressed twin *)
let ok x = x = 0.5
let fine x y = Float.compare x y
