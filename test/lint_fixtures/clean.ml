(* Fixture: a file every rule passes. *)
let add a b = a + b
let scaled xs = List.map (fun x -> x *. 2.) xs
