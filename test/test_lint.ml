(* The invariant linter, against the seeded fixtures under
   lint_fixtures/ (one violation per rule plus a pragma-suppressed
   twin) and, as a self-check, against the shipped library tree. *)

module Lint = Mcc_lint.Lint

let fixture name = Filename.concat "lint_fixtures" name

let config ?(allow = []) ?build_dir rules =
  {
    Lint.rules;
    allowlist = allow;
    build_dir;
    registry = Lint.default_registry;
  }

let check ?allow rules file =
  match Lint.check_file (config ?allow rules) (fixture file) with
  | Ok findings -> findings
  | Error msg -> Alcotest.failf "%s: unexpected lint error: %s" file msg

let ids fs = List.map (fun (f : Lint.finding) -> Lint.rule_id f.rule) fs
let lines fs = List.map (fun (f : Lint.finding) -> f.line) fs

let exit_for rules files =
  Lint.exit_code
    (Lint.run (config rules) (List.map fixture files))

let test_wall_clock () =
  let fs = check [ Lint.Wall_clock ] "wall_clock.ml" in
  Alcotest.(check (list string)) "rule id"
    [ "wall-clock"; "wall-clock" ]
    (ids fs);
  Alcotest.(check (list int)) "clock read and sleep, twins suppressed" [ 3; 6 ]
    (lines fs);
  Alcotest.(check int) "exit 1" 1 (exit_for [ Lint.Wall_clock ] [ "wall_clock.ml" ])

let test_ambient_random () =
  let fs = check [ Lint.Ambient_randomness ] "ambient_random.ml" in
  Alcotest.(check (list string)) "rule id" [ "ambient-randomness" ] (ids fs);
  Alcotest.(check (list int)) "self_init flagged, Random.State clean" [ 4 ]
    (lines fs);
  Alcotest.(check int) "exit 1" 1
    (exit_for [ Lint.Ambient_randomness ] [ "ambient_random.ml" ])

let test_shared_toplevel () =
  let fs = check [ Lint.Shared_mutable_toplevel ] "shared_toplevel.ml" in
  Alcotest.(check (list string)) "rule id" [ "shared-mutable-toplevel" ] (ids fs);
  Alcotest.(check (list int))
    "module-level Hashtbl flagged; twin, functions clean" [ 2 ] (lines fs);
  Alcotest.(check int) "exit 1" 1
    (exit_for [ Lint.Shared_mutable_toplevel ] [ "shared_toplevel.ml" ])

let test_float_compare () =
  let fs = check [ Lint.Float_poly_compare ] "float_compare.ml" in
  Alcotest.(check (list string)) "rule ids"
    [ "float-poly-compare"; "float-poly-compare" ]
    (ids fs);
  Alcotest.(check (list int)) "float = and bare compare; twin suppressed"
    [ 2; 3 ] (lines fs);
  Alcotest.(check int) "exit 1" 1
    (exit_for [ Lint.Float_poly_compare ] [ "float_compare.ml" ])

let test_mli_coverage () =
  let fs = check [ Lint.Mli_coverage ] "no_mli.ml" in
  Alcotest.(check (list string)) "rule id" [ "mli-coverage" ] (ids fs);
  Alcotest.(check (list int)) "attached to line 1" [ 1 ] (lines fs);
  Alcotest.(check (list int)) "line-1 pragma suppresses" []
    (lines (check [ Lint.Mli_coverage ] "no_mli_suppressed.ml"));
  Alcotest.(check (list int)) "sibling .mli satisfies" []
    (lines (check [ Lint.Mli_coverage ] "clean.ml"));
  Alcotest.(check int) "exit 1" 1
    (exit_for [ Lint.Mli_coverage ] [ "no_mli.ml" ])

let test_prof_span () =
  let fs = check [ Lint.Prof_span ] "prof_span_bad.ml" in
  Alcotest.(check (list string)) "rule ids"
    [ "prof-span"; "prof-span" ]
    (ids fs);
  Alcotest.(check (list int)) "span sites outside lib/ flagged; twin suppressed"
    [ 4; 5 ] (lines fs);
  Alcotest.(check int) "exit 1" 1
    (exit_for [ Lint.Prof_span ] [ "prof_span_bad.ml" ])

let test_exit_codes () =
  Alcotest.(check int) "clean file exits 0" 0
    (exit_for Lint.all_rules [ "clean.ml" ]);
  let report = Lint.run (config Lint.all_rules) [ fixture "parse_error.ml" ] in
  Alcotest.(check int) "syntax error exits 2" 2 (Lint.exit_code report);
  Alcotest.(check bool) "error names the file" true
    (List.exists
       (fun (file, _) -> file = fixture "parse_error.ml")
       report.Lint.errors);
  let missing = Lint.run (config Lint.all_rules) [ "lint_fixtures/enoent.ml" ] in
  Alcotest.(check int) "missing path exits 2" 2 (Lint.exit_code missing)

let test_allowlist () =
  let allow text =
    match Lint.parse_allowlist text with
    | Ok entries -> entries
    | Error msg -> Alcotest.failf "allowlist: %s" msg
  in
  Alcotest.(check (list int)) "exact-path entry suppresses" []
    (lines
       (check
          ~allow:(allow "mli-coverage lint_fixtures/no_mli.ml")
          [ Lint.Mli_coverage ] "no_mli.ml"));
  Alcotest.(check (list int)) "directory-prefix entry suppresses" []
    (lines
       (check
          ~allow:(allow "# a comment\nmli-coverage lint_fixtures/\n")
          [ Lint.Mli_coverage ] "no_mli.ml"));
  Alcotest.(check (list int)) "other-rule entry does not" [ 1 ]
    (lines
       (check
          ~allow:(allow "wall-clock lint_fixtures/no_mli.ml")
          [ Lint.Mli_coverage ] "no_mli.ml"));
  (match Lint.parse_allowlist "bogus-rule lib/" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown rule id must be rejected");
  (* Dot-segment normalisation: a finding reached via "../" still
     matches an allowlist entry written repo-root-relative. *)
  let via_dotdot =
    match
      Lint.check_file
        (config
           ~allow:(allow "mli-coverage test/lint_fixtures/no_mli.ml")
           [ Lint.Mli_coverage ])
        "../test/lint_fixtures/no_mli.ml"
    with
    | Ok fs -> fs
    | Error msg -> Alcotest.failf "unexpected: %s" msg
  in
  Alcotest.(check (list int)) "../-relative finding matches root entry" []
    (lines via_dotdot)

let test_gc_stats () =
  let fs = check [ Lint.Gc_stats ] "gc_stats.ml" in
  Alcotest.(check (list string)) "rule id" [ "gc-stats" ] (ids fs);
  Alcotest.(check (list int)) "GC read flagged, pragma twin clean" [ 2 ]
    (lines fs);
  (* The same probe under lib/obs/ is the sanctioned telemetry home. *)
  let dir = Filename.concat "lib" "obs" in
  if not (Sys.file_exists dir) then begin
    Sys.mkdir "lib" 0o755;
    Sys.mkdir dir 0o755
  end;
  let exempt = Filename.concat dir "gc_probe.ml" in
  let oc = open_out exempt in
  output_string oc "let heat () = Gc.minor_words ()\n";
  close_out oc;
  (match Lint.check_file (config [ Lint.Gc_stats ]) exempt with
  | Ok fs -> Alcotest.(check (list int)) "lib/obs is exempt" [] (lines fs)
  | Error msg -> Alcotest.failf "lib/obs probe: %s" msg);
  Sys.remove exempt

(* Typed-rule fixtures live in a compiled sub-library; the .cmts land
   under _build/default, which is ".." from the test's cwd. *)
let typed_check rules file =
  let report =
    Lint.run (config ~build_dir:".." rules) [ fixture ("typed/" ^ file) ]
  in
  Alcotest.(check (list (pair string string)))
    (file ^ ": no read errors") [] report.Lint.errors;
  Alcotest.(check (list (pair string string)))
    (file ^ ": cmt found") [] report.Lint.cmts_missing;
  Alcotest.(check int) (file ^ ": one cmt loaded") 1 report.Lint.cmts_loaded;
  report.Lint.findings

let test_domain_escape () =
  let fs = typed_check [ Lint.Domain_escape ] "domain_escape_bad.ml" in
  Alcotest.(check (list string)) "rule id" [ "domain-escape" ] (ids fs);
  Alcotest.(check (list int)) "capture flagged at its use site" [ 4 ]
    (lines fs);
  Alcotest.(check (list int)) "atomics and DLS initialisers clean" []
    (lines (typed_check [ Lint.Domain_escape ] "domain_escape_ok.ml"))

let test_hot_alloc () =
  let fs = typed_check [ Lint.Hot_alloc ] "hot_alloc_bad.ml" in
  Alcotest.(check (list string)) "rule id" [ "hot-alloc" ] (ids fs);
  Alcotest.(check (list int)) "tuple in [@hot] body flagged" [ 2 ] (lines fs);
  Alcotest.(check (list int)) "non-hot allocator out of scope" []
    (lines (typed_check [ Lint.Hot_alloc ] "hot_alloc_ok.ml"))

let test_registry_exhaustive () =
  let fs = typed_check [ Lint.Registry_exhaustive ] "registry_bad.ml" in
  Alcotest.(check (list string)) "rule id" [ "registry-exhaustive" ] (ids fs);
  Alcotest.(check (list int)) "catch-all over the registry flagged" [ 3 ]
    (lines fs);
  Alcotest.(check (list int)) "all-constructor match clean" []
    (lines (typed_check [ Lint.Registry_exhaustive ] "registry_ok.ml"))

let test_registry_consumer () =
  let consumer file =
    {
      Lint.rules = [ Lint.Registry_exhaustive ];
      allowlist = [];
      build_dir = Some "..";
      registry =
        {
          Lint.default_registry with
          Lint.reg_consumers = [ "lint_fixtures/typed/" ^ file ];
        };
    }
  in
  let run file =
    Lint.run (consumer file) [ fixture ("typed/" ^ file) ]
  in
  let bad = run "registry_consumer_bad.ml" in
  Alcotest.(check (list string)) "rule id" [ "registry-exhaustive" ]
    (ids bad.Lint.findings);
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i =
      i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "names the missing constructors" true
    (List.exists
       (fun (f : Lint.finding) ->
         contains f.message "Rlm_threshold"
         && contains f.message "Replicated"
         && contains f.message "Oversub")
       bad.Lint.findings);
  Alcotest.(check (list int)) "complete consumer clean" []
    (lines (run "registry_consumer_ok.ml").Lint.findings)

let test_missing_cmt () =
  let probe = "typed_probe_no_cmt.ml" in
  let oc = open_out probe in
  output_string oc "let x = ref 0\n";
  close_out oc;
  let report =
    Lint.run (config ~build_dir:".." [ Lint.Domain_escape ]) [ probe ]
  in
  Sys.remove probe;
  Alcotest.(check int) "degrades without findings" 0
    (List.length report.Lint.findings);
  Alcotest.(check int) "still exits clean" 0 (Lint.exit_code report);
  Alcotest.(check bool) "reports the missing cmt" true
    (List.mem_assoc probe report.Lint.cmts_missing)

let test_json_report () =
  let report = Lint.run (config Lint.all_rules) [ fixture "no_mli.ml" ] in
  let rendered = Mcc_obs.Json.to_string (Lint.report_to_json report) in
  match Mcc_obs.Json.of_string rendered with
  | Error e -> Alcotest.failf "report is not valid JSON: %s" e
  | Ok json ->
      let member k = Mcc_obs.Json.member k json in
      Alcotest.(check bool) "has findings array" true
        (match member "findings" with
        | Some (Mcc_obs.Json.List (_ :: _)) -> true
        | _ -> false);
      Alcotest.(check (option string)) "tool name" (Some "mcc-lint")
        (Option.bind (member "tool") Mcc_obs.Json.to_string_opt)

(* The acceptance bar of the lint gate itself: the shipped library tree
   must be clean with no allowlist at all (suppressions in lib/ are
   in-source pragmas with justifications). *)
let test_self_check_lib () =
  let report = Lint.run (config ~build_dir:".." Lint.all_rules) [ "../lib" ] in
  List.iter
    (fun f -> Format.eprintf "%a@." Lint.pp_finding f)
    report.Lint.findings;
  Alcotest.(check int) "no findings in lib/" 0
    (List.length report.Lint.findings);
  Alcotest.(check (list (pair string string))) "no errors" []
    report.Lint.errors;
  Alcotest.(check bool) "walked the whole library tree" true
    (report.Lint.files_checked > 50);
  (* The typed stage must have genuinely run: every lib module compiles,
     so every file should resolve to a .cmt. *)
  Alcotest.(check (list (pair string string))) "no cmts missing" []
    report.Lint.cmts_missing;
  Alcotest.(check bool) "typed stage covered the tree" true
    (report.Lint.cmts_loaded > 50)

let suite =
  ( "lint",
    [
      Alcotest.test_case "wall-clock fixture" `Quick test_wall_clock;
      Alcotest.test_case "ambient-randomness fixture" `Quick test_ambient_random;
      Alcotest.test_case "shared-mutable-toplevel fixture" `Quick
        test_shared_toplevel;
      Alcotest.test_case "float-poly-compare fixture" `Quick test_float_compare;
      Alcotest.test_case "mli-coverage fixture" `Quick test_mli_coverage;
      Alcotest.test_case "prof-span fixture" `Quick test_prof_span;
      Alcotest.test_case "gc-stats fixture" `Quick test_gc_stats;
      Alcotest.test_case "domain-escape fixture" `Quick test_domain_escape;
      Alcotest.test_case "hot-alloc fixture" `Quick test_hot_alloc;
      Alcotest.test_case "registry-exhaustive fixture" `Quick
        test_registry_exhaustive;
      Alcotest.test_case "registry consumer completeness" `Quick
        test_registry_consumer;
      Alcotest.test_case "missing .cmt degrades gracefully" `Quick
        test_missing_cmt;
      Alcotest.test_case "exit codes" `Quick test_exit_codes;
      Alcotest.test_case "allowlist" `Quick test_allowlist;
      Alcotest.test_case "json report" `Quick test_json_report;
      Alcotest.test_case "self-check: lib/ is clean" `Quick test_self_check_lib;
    ] )
