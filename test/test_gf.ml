open Mcc_util

let elem = QCheck.map (fun x -> Gf.of_int x) QCheck.(int_range 0 max_int)

let prop_add_assoc =
  QCheck.Test.make ~name:"Gf add associative" ~count:300
    QCheck.(triple elem elem elem)
    (fun (a, b, c) -> Gf.add (Gf.add a b) c = Gf.add a (Gf.add b c))

let prop_mul_assoc =
  QCheck.Test.make ~name:"Gf mul associative" ~count:300
    QCheck.(triple elem elem elem)
    (fun (a, b, c) -> Gf.mul (Gf.mul a b) c = Gf.mul a (Gf.mul b c))

let prop_distrib =
  QCheck.Test.make ~name:"Gf distributivity" ~count:300
    QCheck.(triple elem elem elem)
    (fun (a, b, c) ->
      Gf.mul a (Gf.add b c) = Gf.add (Gf.mul a b) (Gf.mul a c))

let prop_inverse =
  QCheck.Test.make ~name:"Gf inverse" ~count:300 elem (fun a ->
      QCheck.assume (a <> 0);
      Gf.mul a (Gf.inv a) = 1)

let prop_sub_add =
  QCheck.Test.make ~name:"Gf sub then add roundtrips" ~count:300
    QCheck.(pair elem elem)
    (fun (a, b) -> Gf.add (Gf.sub a b) b = a)

let test_of_int_negative () =
  Alcotest.(check int) "canonical negative" (Gf.p - 5) (Gf.of_int (-5))

let test_pow () =
  Alcotest.(check int) "x^0" 1 (Gf.pow 12345 0);
  Alcotest.(check int) "x^1" 12345 (Gf.pow 12345 1);
  Alcotest.(check int) "2^10" 1024 (Gf.pow 2 10);
  (* Fermat: x^(p-1) = 1 *)
  Alcotest.(check int) "fermat" 1 (Gf.pow 987654321 (Gf.p - 1))

let test_inv_zero () =
  Alcotest.check_raises "inv 0" Division_by_zero (fun () ->
      ignore (Gf.inv 0))

let test_eval_poly () =
  (* 3 + 2x + x^2 at x = 5 -> 3 + 10 + 25 = 38 *)
  Alcotest.(check int) "horner" 38 (Gf.eval_poly [| 3; 2; 1 |] 5)

let test_interpolate_constant () =
  (* A degree-2 polynomial through three points. q(x) = 7 + x + 2x^2. *)
  let q x = Gf.add 7 (Gf.add x (Gf.mul 2 (Gf.mul x x))) in
  let points = [ (1, q 1); (2, q 2); (3, q 3) ] in
  Alcotest.(check int) "q(0)" 7 (Gf.interpolate_at_zero points)

let test_interpolate_duplicate () =
  Alcotest.check_raises "duplicate x"
    (Invalid_argument "Gf.interpolate_at_zero: duplicate abscissae")
    (fun () -> ignore (Gf.interpolate_at_zero [ (1, 2); (1, 3) ]))

let suite =
  ( "gf",
    [
      QCheck_alcotest.to_alcotest prop_add_assoc;
      QCheck_alcotest.to_alcotest prop_mul_assoc;
      QCheck_alcotest.to_alcotest prop_distrib;
      QCheck_alcotest.to_alcotest prop_inverse;
      QCheck_alcotest.to_alcotest prop_sub_add;
      Alcotest.test_case "of_int negative" `Quick test_of_int_negative;
      Alcotest.test_case "pow" `Quick test_pow;
      Alcotest.test_case "inv zero" `Quick test_inv_zero;
      Alcotest.test_case "eval_poly" `Quick test_eval_poly;
      Alcotest.test_case "interpolate" `Quick test_interpolate_constant;
      Alcotest.test_case "interpolate dup" `Quick test_interpolate_duplicate;
    ] )
