(* mcc_obs tests: metrics registry semantics, ring-buffer eviction,
   tracer filtering/sinks, profile rendering, and JSON escaping.

   These run against the library directly (no simulation) so every
   behaviour the instrumented components rely on — get-or-create
   handles, reset detachment, bounded rings, component-prefix filters —
   is pinned independently of the simulator. *)

module Json = Mcc_obs.Json
module Metrics = Mcc_obs.Metrics
module Profile = Mcc_obs.Profile
module Ring = Mcc_obs.Ring
module Tracer = Mcc_obs.Tracer

let contains ~needle haystack =
  let n = String.length needle in
  let rec find i =
    i + n <= String.length haystack
    && (String.sub haystack i n = needle || find (i + 1))
  in
  find 0

(* --- metrics ------------------------------------------------------------ *)

let test_counter_basics () =
  Metrics.reset ();
  let c = Metrics.counter "t.counter" in
  Alcotest.(check int) "starts at zero" 0 (Metrics.counter_value c);
  Metrics.incr c;
  Metrics.incr c ~by:41;
  Alcotest.(check int) "incr accumulates" 42 (Metrics.counter_value c);
  (* get-or-create: a second fetch is the same handle *)
  Metrics.incr (Metrics.counter "t.counter");
  Alcotest.(check int) "same name, same handle" 43 (Metrics.counter_value c);
  Metrics.tick "t.counter" ~by:7;
  Alcotest.(check int) "tick reaches the handle" 50 (Metrics.counter_value c);
  Metrics.reset ()

let test_gauge_basics () =
  Metrics.reset ();
  let g = Metrics.gauge "t.gauge" in
  Metrics.set g 2.5;
  Metrics.set_gauge "t.gauge" 3.5;
  Alcotest.(check (float 0.)) "last set wins" 3.5 (Metrics.gauge_value g);
  Metrics.reset ()

let test_histogram_buckets () =
  Metrics.reset ();
  let h = Metrics.histogram "t.hist" ~bounds:[ 1.; 10.; 100. ] in
  List.iter (Metrics.observe h) [ 0.5; 1.0; 5.; 50.; 500.; 5000. ];
  (match Metrics.snapshot () with
  | [ ("t.hist", Metrics.Histogram { bounds; buckets; observations; sum }) ] ->
      Alcotest.(check (list (float 0.))) "bounds" [ 1.; 10.; 100. ] bounds;
      (* <=1: {0.5, 1.0}; <=10: {5}; <=100: {50}; overflow: {500, 5000} *)
      Alcotest.(check (list int)) "buckets" [ 2; 1; 1; 2 ] buckets;
      Alcotest.(check int) "observations" 6 observations;
      Alcotest.(check (float 1e-9)) "sum" 5556.5 sum
  | _ -> Alcotest.fail "expected exactly one histogram in the snapshot");
  Metrics.reset ()

let test_kind_mismatch () =
  Metrics.reset ();
  ignore (Metrics.counter "t.kind");
  Alcotest.check_raises "gauge over counter"
    (Invalid_argument "Metrics: \"t.kind\" already registered with another kind")
    (fun () -> ignore (Metrics.gauge "t.kind"));
  Metrics.reset ()

let test_bad_bounds () =
  Metrics.reset ();
  let err =
    Invalid_argument "Metrics.histogram: bounds must be non-empty and ascending"
  in
  Alcotest.check_raises "empty bounds" err (fun () ->
      ignore (Metrics.histogram "t.empty" ~bounds:[]));
  Alcotest.check_raises "non-ascending bounds" err (fun () ->
      ignore (Metrics.histogram "t.desc" ~bounds:[ 2.; 1. ]));
  Metrics.reset ()

let test_snapshot_sorted_and_reset () =
  Metrics.reset ();
  Metrics.tick "z.last";
  Metrics.tick "a.first";
  Metrics.set_gauge "m.middle" 1.;
  Alcotest.(check (list string)) "snapshot sorted by name"
    [ "a.first"; "m.middle"; "z.last" ]
    (List.map fst (Metrics.snapshot ()));
  (* A handle fetched before reset mutates a detached record: it must
     not resurface in the next snapshot. *)
  let stale = Metrics.counter "z.last" in
  Metrics.reset ();
  Metrics.incr stale ~by:100;
  Alcotest.(check int) "registry empty after reset" 0
    (List.length (Metrics.snapshot ()));
  Alcotest.(check int) "fresh handle starts clean" 0
    (Metrics.counter_value (Metrics.counter "z.last"));
  Metrics.reset ()

let test_values_json () =
  Metrics.reset ();
  Metrics.tick "t.c" ~by:3;
  Metrics.set_gauge "t.g" 1.5;
  Alcotest.(check string) "rendering"
    {|{"t.c":3,"t.g":1.5}|}
    (Json.to_string (Metrics.values_json (Metrics.snapshot ())));
  Metrics.reset ()

(* --- ring --------------------------------------------------------------- *)

let test_ring_eviction () =
  let r = Ring.create ~capacity:3 in
  List.iter (Ring.push r) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check int) "capacity" 3 (Ring.capacity r);
  Alcotest.(check int) "length capped" 3 (Ring.length r);
  Alcotest.(check int) "pushed counts evictions" 5 (Ring.pushed r);
  Alcotest.(check (list int)) "oldest first, oldest evicted" [ 3; 4; 5 ]
    (Ring.to_list r);
  let seen = ref [] in
  Ring.iter (fun x -> seen := x :: !seen) r;
  Alcotest.(check (list int)) "iter order" [ 3; 4; 5 ] (List.rev !seen);
  Alcotest.(check int) "fold order"
    345
    (Ring.fold (fun acc x -> (acc * 10) + x) 0 r);
  Ring.clear r;
  Alcotest.(check int) "clear drops retained" 0 (Ring.length r);
  Alcotest.(check int) "clear keeps pushed" 5 (Ring.pushed r)

let test_ring_bad_capacity () =
  Alcotest.check_raises "zero capacity"
    (Invalid_argument "Ring.create: capacity <= 0") (fun () ->
      ignore (Ring.create ~capacity:0))

(* --- tracer ------------------------------------------------------------- *)

let emit_all () =
  let e ?level component event =
    Tracer.emit ?level ~sim_time:1. ~component ~event (fun () -> [])
  in
  e "link" "drop";
  e "sigma.router" "subscribe";
  e "sigma.router" "lockout" ~level:Tracer.Warn;
  e "flid.receiver" "level" ~level:Tracer.Debug

let test_tracer_component_filter () =
  Alcotest.(check bool) "disabled without sinks" false (Tracer.enabled ());
  let captured, sink = Tracer.ring ~components:[ "sigma" ] () in
  Alcotest.(check bool) "enabled with a sink" true (Tracer.enabled ());
  emit_all ();
  Tracer.remove sink;
  Alcotest.(check bool) "disabled after remove" false (Tracer.enabled ());
  Alcotest.(check (list string)) "prefix matches dotted descendants"
    [ "subscribe"; "lockout" ]
    (List.map
       (fun (r : Tracer.record) -> r.Tracer.event)
       (Ring.to_list captured))

let test_tracer_level_filter () =
  let captured, sink = Tracer.ring ~min_level:Tracer.Info () in
  emit_all ();
  Tracer.remove sink;
  Alcotest.(check (list string)) "debug suppressed"
    [ "drop"; "subscribe"; "lockout" ]
    (List.map
       (fun (r : Tracer.record) -> r.Tracer.event)
       (Ring.to_list captured))

let test_tracer_attr_thunk_laziness () =
  (* With no interested sink, the attribute closure must not run. *)
  let ran = ref false in
  Tracer.emit ~sim_time:0. ~component:"x" ~event:"e" (fun () ->
      ran := true;
      []);
  Alcotest.(check bool) "no sink, no thunk" false !ran;
  let _, sink = Tracer.ring ~components:[ "other" ] () in
  Tracer.emit ~sim_time:0. ~component:"x" ~event:"e" (fun () ->
      ran := true;
      []);
  Tracer.remove sink;
  Alcotest.(check bool) "filtered out, no thunk" false !ran

let test_tracer_jsonl () =
  let buf = Buffer.create 256 in
  let sink = Tracer.jsonl ~components:[ "sigma.router" ] (Buffer.add_string buf) in
  Tracer.emit ~sim_time:2.5 ~component:"sigma.router" ~event:"subscribe"
    (fun () -> [ ("receiver", Json.Int 7); ("note", Json.String "a\"b") ]);
  Tracer.emit ~sim_time:3. ~component:"link" ~event:"drop" (fun () -> []);
  Tracer.remove sink;
  Alcotest.(check string) "one filtered, escaped line"
    ({|{"t":2.5,"level":"info","component":"sigma.router",|}
    ^ {|"event":"subscribe","attrs":{"receiver":7,"note":"a\"b"}}|} ^ "\n")
    (Buffer.contents buf)

let test_record_json_omits_empty_attrs () =
  let r =
    { Tracer.sim_time = 1.; level = Tracer.Warn; component = "c";
      event = "e"; attrs = [] }
  in
  Alcotest.(check string) "no attrs key"
    {|{"t":1,"level":"warn","component":"c","event":"e"}|}
    (Json.to_string (Tracer.record_json r))

(* --- profile ------------------------------------------------------------ *)

let test_profile_json_field_order () =
  let p =
    Profile.make ~sched:"wheel" ~events:100 ~queue_capacity:16 ~wall_s:0.5 ()
  in
  Alcotest.(check (float 1e-9)) "derived rate" 200. p.Profile.events_per_sec;
  let s = Json.to_string (Profile.to_json p) in
  (* The deterministic fields (sched included) must precede "wall_s"
     (the runner tests byte-compare jsonl lines truncated at that
     marker). *)
  Alcotest.(check string) "wall-clock fields last"
    {|{"sched":"wheel","events":100,"queue_capacity":16,"wall_s":0.5,"events_per_sec":200}|}
    s;
  let z = Profile.make ~events:5 ~queue_capacity:4 ~wall_s:0. () in
  Alcotest.(check string) "default backend" "heap" z.Profile.sched;
  Alcotest.(check (float 0.)) "zero wall, zero rate" 0. z.Profile.events_per_sec

(* --- json escaping ------------------------------------------------------ *)

let test_escape_exhaustive_controls () =
  (* Every byte below 0x20 must render as a valid JSON escape. *)
  for b = 0 to 0x1f do
    let s = Json.to_string (Json.String (String.make 1 (Char.chr b))) in
    let expected =
      match Char.chr b with
      | '\b' -> {|"\b"|}
      | '\012' -> {|"\f"|}
      | '\n' -> {|"\n"|}
      | '\r' -> {|"\r"|}
      | '\t' -> {|"\t"|}
      | c -> Printf.sprintf {|"\u%04x"|} (Char.code c)
    in
    Alcotest.(check string) (Printf.sprintf "byte 0x%02x" b) expected s
  done;
  Alcotest.(check string) "quote and backslash"
    {|"a\"b\\c"|}
    (Json.to_string (Json.String {|a"b\c|}));
  Alcotest.(check string) "escape is the unquoted body"
    {|tab\there|} (Json.escape "tab\there")

let suite =
  ( "obs",
    [
      Alcotest.test_case "counter basics" `Quick test_counter_basics;
      Alcotest.test_case "gauge basics" `Quick test_gauge_basics;
      Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
      Alcotest.test_case "kind mismatch" `Quick test_kind_mismatch;
      Alcotest.test_case "bad histogram bounds" `Quick test_bad_bounds;
      Alcotest.test_case "snapshot sorted; reset detaches" `Quick
        test_snapshot_sorted_and_reset;
      Alcotest.test_case "values_json" `Quick test_values_json;
      Alcotest.test_case "ring eviction" `Quick test_ring_eviction;
      Alcotest.test_case "ring bad capacity" `Quick test_ring_bad_capacity;
      Alcotest.test_case "tracer component filter" `Quick
        test_tracer_component_filter;
      Alcotest.test_case "tracer level filter" `Quick test_tracer_level_filter;
      Alcotest.test_case "tracer attr thunks lazy" `Quick
        test_tracer_attr_thunk_laziness;
      Alcotest.test_case "tracer jsonl sink" `Quick test_tracer_jsonl;
      Alcotest.test_case "record_json empty attrs" `Quick
        test_record_json_omits_empty_attrs;
      Alcotest.test_case "profile json field order" `Quick
        test_profile_json_field_order;
      Alcotest.test_case "json control-char escaping" `Quick
        test_escape_exhaustive_controls;
    ] )
