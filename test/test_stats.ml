open Mcc_util

let feq ?(eps = 1e-9) a b = abs_float (a -. b) < eps

let test_mean () =
  Alcotest.(check bool) "mean" true (feq (Stats.mean [ 1.; 2.; 3. ]) 2.);
  Alcotest.(check bool) "empty" true (feq (Stats.mean []) 0.)

let test_stddev () =
  Alcotest.(check bool) "constant" true (feq (Stats.stddev [ 5.; 5.; 5. ]) 0.);
  (* population stddev of 2,4,4,4,5,5,7,9 is 2 *)
  Alcotest.(check bool) "known" true
    (feq (Stats.stddev [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ]) 2.)

let test_min_max () =
  Alcotest.(check (float 0.)) "min" 1. (Stats.minimum [ 3.; 1.; 2. ]);
  Alcotest.(check (float 0.)) "max" 3. (Stats.maximum [ 3.; 1.; 2. ]);
  Alcotest.check_raises "min empty" (Invalid_argument "Stats.minimum")
    (fun () -> ignore (Stats.minimum []))

let test_percentile () =
  let xs = [ 1.; 2.; 3.; 4.; 5. ] in
  Alcotest.(check (float 1e-9)) "median" 3. (Stats.percentile 0.5 xs);
  Alcotest.(check (float 1e-9)) "p0" 1. (Stats.percentile 0. xs);
  Alcotest.(check (float 1e-9)) "p100" 5. (Stats.percentile 1. xs);
  Alcotest.(check (float 1e-9)) "p25 interpolates" 2. (Stats.percentile 0.25 xs)

let test_jain () =
  Alcotest.(check (float 1e-9)) "equal" 1. (Stats.jain_fairness [ 2.; 2.; 2. ]);
  Alcotest.(check (float 1e-9)) "one hog" (1. /. 3.)
    (Stats.jain_fairness [ 1.; 0.; 0. ]);
  Alcotest.(check (float 1e-9)) "all zero" 1. (Stats.jain_fairness [ 0.; 0. ])

let prop_jain_bounds =
  QCheck.Test.make ~name:"Jain index in [1/n, 1]" ~count:300
    QCheck.(list_of_size Gen.(int_range 1 20) (float_bound_inclusive 100.))
    (fun xs ->
      let j = Stats.jain_fairness xs in
      let n = float_of_int (List.length xs) in
      j >= (1. /. n) -. 1e-9 && j <= 1. +. 1e-9)

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentile monotone in q" ~count:200
    QCheck.(list_of_size Gen.(int_range 2 30) (float_bound_inclusive 1000.))
    (fun xs ->
      Stats.percentile 0.25 xs <= Stats.percentile 0.75 xs +. 1e-9)

let suite =
  ( "stats",
    [
      Alcotest.test_case "mean" `Quick test_mean;
      Alcotest.test_case "stddev" `Quick test_stddev;
      Alcotest.test_case "min/max" `Quick test_min_max;
      Alcotest.test_case "percentile" `Quick test_percentile;
      Alcotest.test_case "jain" `Quick test_jain;
      QCheck_alcotest.to_alcotest prop_jain_bounds;
      QCheck_alcotest.to_alcotest prop_percentile_monotone;
    ] )
