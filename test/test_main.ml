let () =
  Alcotest.run "mcc"
    [
      Test_prng.suite;
      Test_gf.suite;
      Test_shamir.suite;
      Test_stats.suite;
      Test_series_meter.suite;
      Test_engine.suite;
      Test_net.suite;
      Test_delta.suite;
      Test_threshold.suite;
      Test_fec.suite;
      Test_overhead.suite;
      Test_sigma.suite;
      Test_transport.suite;
      Test_flid.suite;
      Test_protocols.suite;
      Test_core.suite;
      Test_red.suite;
      Test_trace.suite;
      Test_misc.suite;
      Test_integration.suite;
      Test_properties.suite;
      Test_tfrc.suite;
      Test_collusion.suite;
    ]
