module Sim = Mcc_engine.Sim
module Defaults = Mcc_core.Defaults
module Dumbbell = Mcc_core.Dumbbell
module Scenario = Mcc_core.Scenario
module E = Mcc_core.Experiments
module Spec = Mcc_core.Spec
module Flid = Mcc_mcast.Flid
module Node = Mcc_net.Node
module Link = Mcc_net.Link
module Meter = Mcc_util.Meter

let test_defaults_math () =
  let rtt =
    Defaults.path_rtt_s ~bottleneck_delay_s:0.020 ~access_delay_s:0.010
  in
  Alcotest.(check (float 1e-9)) "standard RTT 80 ms" 0.080 rtt;
  (* 2 x 1 Mbps x 80 ms = 20 kB *)
  Alcotest.(check int) "buffer 2 BDP" 20_000
    (Defaults.buffer_bytes ~bottleneck_rate_bps:1_000_000. ~rtt_s:0.080)

let test_dumbbell_structure () =
  let sim = Sim.create () in
  let db = Dumbbell.create sim ~bottleneck_rate_bps:1_000_000. () in
  let s1 = Dumbbell.add_sender db in
  let s2 = Dumbbell.add_sender db in
  let d1 = Dumbbell.add_receiver db in
  Dumbbell.finalize db;
  (* Any sender-to-receiver route crosses the bottleneck. *)
  let via_bottleneck src =
    match Hashtbl.find_opt src.Node.fib d1.Node.id with
    | Some link -> link.Link.dst = db.Dumbbell.left.Node.id
    | None -> false
  in
  Alcotest.(check bool) "s1 via left router" true (via_bottleneck s1);
  Alcotest.(check bool) "s2 via left router" true (via_bottleneck s2);
  (match Hashtbl.find_opt db.Dumbbell.left.Node.fib d1.Node.id with
  | Some link ->
      Alcotest.(check int) "left routes via bottleneck"
        db.Dumbbell.right.Node.id link.Link.dst
  | None -> Alcotest.fail "no route");
  Alcotest.(check (float 1.)) "bottleneck rate" 1_000_000.
    db.Dumbbell.forward.Link.rate_bps

let test_dumbbell_receiver_lan () =
  let sim = Sim.create () in
  let db = Dumbbell.create sim ~bottleneck_rate_bps:1_000_000. () in
  let lan, hosts = Dumbbell.add_receiver_lan db ~hosts:3 in
  Dumbbell.finalize db;
  Alcotest.(check int) "three hosts" 3 (List.length hosts);
  Alcotest.(check bool) "lan node kind" true (lan.Node.kind = Node.Lan);
  (* All LAN hosts resolve to the same edge-router interface. *)
  let ifaces =
    List.filter_map
      (fun h ->
        match Mcc_net.Multicast.router_of db.Dumbbell.topo h with
        | Some _, Some link -> Some link.Link.id
        | _ -> None)
      hosts
  in
  Alcotest.(check int) "all resolved" 3 (List.length ifaces);
  Alcotest.(check bool) "single shared interface" true
    (List.for_all (fun i -> i = List.hd ifaces) ifaces)

let test_scenario_agent_only_for_robust () =
  let t = Scenario.create ~bottleneck_rate_bps:500_000. () in
  ignore
    (Scenario.add_multicast t ~mode:Flid.Plain
       ~receivers:[ Scenario.receiver () ] ());
  Alcotest.(check bool) "no agent for plain" true (Scenario.agent t = None);
  ignore
    (Scenario.add_multicast t ~mode:Flid.Robust
       ~receivers:[ Scenario.receiver () ] ());
  Alcotest.(check bool) "agent after robust" true (Scenario.agent t <> None)

let test_scenario_unique_sessions () =
  let t = Scenario.create ~bottleneck_rate_bps:500_000. () in
  let a =
    Scenario.add_multicast t ~mode:Flid.Plain ~receivers:[ Scenario.receiver () ] ()
  in
  let b =
    Scenario.add_multicast t ~mode:Flid.Plain ~receivers:[ Scenario.receiver () ] ()
  in
  Alcotest.(check bool) "distinct ids" true
    (a.Scenario.config.Flid.id <> b.Scenario.config.Flid.id);
  (* Group address ranges must not overlap. *)
  let range (s : Scenario.session) =
    let base = s.Scenario.config.Flid.base_group in
    (base, base + Defaults.groups - 1)
  in
  let a_lo, a_hi = range a and b_lo, b_hi = range b in
  Alcotest.(check bool) "disjoint group ranges" true (a_hi < b_lo || b_hi < a_lo)

let test_experiment_attack_quick () =
  let result =
    E.run_attack
      { Spec.default_attack with
        Spec.duration = 60.; attack_at = 30.; mode = Flid.Plain }
  in
  Alcotest.(check bool)
    (Printf.sprintf "inflation pays off (%.0f -> %.0f)"
       result.E.f1_before result.E.f1_after)
    true
    (result.E.f1_after > 2. *. result.E.f1_before);
  Alcotest.(check bool) "series non-empty" true (List.length result.E.f1 > 10)

let test_experiment_attack_robust_quick () =
  let result =
    E.run_attack
      { Spec.default_attack with
        Spec.duration = 60.; attack_at = 30.; mode = Flid.Robust }
  in
  Alcotest.(check bool)
    (Printf.sprintf "protected (%.0f -> %.0f)" result.E.f1_before
       result.E.f1_after)
    true
    (result.E.f1_after < 2. *. Defaults.fair_share_bps /. 1000.);
  Alcotest.(check bool) "victims alive" true
    (result.E.f2_after > 50. && result.E.t1_after > 50.)

let test_experiment_sweep_quick () =
  let points =
    List.map
      (fun sessions ->
        E.run_sweep
          { Spec.default_sweep with
            Spec.seed = 11 + sessions; duration = 40.; sessions;
            mode = Flid.Plain })
      [ 1; 3 ]
  in
  Alcotest.(check int) "two points" 2 (List.length points);
  List.iter
    (fun (p : E.sweep_point) ->
      Alcotest.(check int) "one rate per session" p.E.sessions
        (List.length p.E.individual_kbps);
      Alcotest.(check bool)
        (Printf.sprintf "%d sessions avg %.0f" p.E.sessions p.E.average_kbps)
        true
        (p.E.average_kbps > 120. && p.E.average_kbps < 300.))
    points

let test_experiment_convergence_quick () =
  let series =
    E.run_convergence
      { Spec.default_convergence with Spec.duration = 40.; mode = Flid.Plain }
  in
  Alcotest.(check int) "four receivers" 4 (List.length series);
  (* All receivers end up within a factor of ~2 of each other. *)
  let finals =
    List.map
      (fun s ->
        match List.rev s with
        | (_, v) :: _ -> v
        | [] -> Alcotest.fail "empty series")
      series
  in
  let lo = List.fold_left min (List.hd finals) finals in
  let hi = List.fold_left max (List.hd finals) finals in
  Alcotest.(check bool)
    (Printf.sprintf "converged (%.0f...%.0f)" lo hi)
    true
    (lo > 0. && hi /. (Float.max lo 1.) < 3.)

let test_experiment_overhead_quick () =
  let points =
    List.map
      (fun groups ->
        E.run_overhead
          { Spec.default_overhead with
            Spec.duration = 10.; groups; axis = Spec.Groups })
      [ 2; 10 ]
  in
  Alcotest.(check int) "two points" 2 (List.length points);
  List.iter
    (fun (p : E.overhead_point) ->
      Alcotest.(check bool)
        (Printf.sprintf "delta analytic %.3f%% near 0.8%%" p.E.delta_analytic)
        true
        (abs_float (p.E.delta_analytic -. 0.79) < 0.02);
      Alcotest.(check bool) "measured tracks analytic" true
        (abs_float (p.E.delta_measured -. p.E.delta_analytic) < 0.05);
      Alcotest.(check bool)
        (Printf.sprintf "sigma %.3f%% under paper bound" p.E.sigma_analytic)
        true
        (p.E.sigma_analytic < 0.6))
    points

let test_experiment_rtt_quick () =
  let rows =
    E.run_rtt
      { Spec.default_rtt with
        Spec.duration = 60.; receivers = 5; mode = Flid.Plain }
  in
  Alcotest.(check int) "five rows" 5 (List.length rows);
  let rates = List.map snd rows in
  let lo = List.fold_left min (List.hd rates) rates in
  let hi = List.fold_left max (List.hd rates) rates in
  Alcotest.(check bool)
    (Printf.sprintf "rtt-independent (%.0f..%.0f)" lo hi)
    true
    (lo > 0.7 *. hi)

let test_experiment_responsiveness_quick () =
  let r =
    E.run_responsiveness
      { Spec.default_responsiveness with Spec.duration = 100.; mode = Flid.Plain }
  in
  Alcotest.(check bool)
    (Printf.sprintf "backs off during burst (%.0f -> %.0f)" r.E.before_kbps
       r.E.during_kbps)
    true
    (r.E.during_kbps < 0.6 *. r.E.before_kbps);
  Alcotest.(check bool)
    (Printf.sprintf "recovers after burst (%.0f)" r.E.after_kbps)
    true
    (r.E.after_kbps > 0.7 *. r.E.before_kbps)

let test_partial_deployment () =
  let r = E.run_partial { Spec.default_partial with Spec.duration = 90. } in
  let fair = Defaults.fair_share_bps /. 1000. in
  Alcotest.(check bool)
    (Printf.sprintf "SIGMA edge caps local inflation (%.0f kbps)"
       r.E.protected_attacker_kbps)
    true
    (r.E.protected_attacker_kbps < 2. *. fair);
  Alcotest.(check bool)
    (Printf.sprintf "legacy edge admits the attack (%.0f kbps)"
       r.E.unprotected_attacker_kbps)
    true
    (r.E.unprotected_attacker_kbps > 2. *. fair)

let test_ecn_reduces_drops () =
  let run ~ecn =
    let t = Scenario.create ~seed:61 ~ecn ~bottleneck_rate_bps:250_000. () in
    let session =
      Scenario.add_multicast t ~mode:Flid.Plain
        ~receivers:[ Scenario.receiver () ] ()
    in
    Scenario.run t ~seconds:60.;
    ( Scenario.bottleneck_drops t,
      Meter.mean_kbps
        (Flid.receiver_meter (List.hd session.Scenario.receivers))
        ~lo:20. ~hi:60. )
  in
  let drops_plain, kbps_plain = run ~ecn:false in
  let drops_ecn, kbps_ecn = run ~ecn:true in
  Alcotest.(check bool)
    (Printf.sprintf "marks pre-empt drops (%d -> %d)" drops_plain drops_ecn)
    true
    (drops_ecn < drops_plain);
  Alcotest.(check bool)
    (Printf.sprintf "throughput preserved (%.0f vs %.0f)" kbps_plain kbps_ecn)
    true
    (kbps_ecn > 0.6 *. kbps_plain)

let test_three_protocol_coexistence () =
  (* One session of each protocol family on one dumbbell, sharing the
     same SIGMA agent: group ranges must not clash and all three must
     move data. *)
  let t = Scenario.create ~seed:103 ~bottleneck_rate_bps:900_000. () in
  let flid =
    Scenario.add_multicast t ~mode:Flid.Robust
      ~receivers:[ Scenario.receiver () ] ()
  in
  let rep =
    Scenario.add_replicated t ~mode:Flid.Robust
      ~receivers:[ Scenario.receiver () ] ()
  in
  let rlm =
    Scenario.add_rlm t ~mode:Flid.Robust ~receivers:[ Scenario.receiver () ] ()
  in
  Scenario.run t ~seconds:40.;
  let nonzero m = Meter.total_bytes m > 0 in
  Alcotest.(check bool) "flid flows" true
    (nonzero (Flid.receiver_meter (List.hd flid.Scenario.receivers)));
  Alcotest.(check bool) "replicated flows" true
    (nonzero
       (Mcc_mcast.Replicated_proto.receiver_meter
          (List.hd rep.Scenario.rep_receivers)));
  Alcotest.(check bool) "rlm flows" true
    (nonzero
       (Mcc_mcast.Rlm_like.receiver_meter (List.hd rlm.Scenario.rlm_receivers)));
  (* Disjoint group address ranges. *)
  let fb = flid.Scenario.config.Flid.base_group in
  let rb = rep.Scenario.rep_config.Mcc_mcast.Replicated_proto.base_group in
  let lb = rlm.Scenario.rlm_config.Mcc_mcast.Rlm_like.base_group in
  Alcotest.(check bool) "disjoint ranges" true
    (rb >= fb + Defaults.groups && lb >= rb + Defaults.groups)

let suite =
  ( "core",
    [
      Alcotest.test_case "three protocols coexist" `Slow
        test_three_protocol_coexistence;
      Alcotest.test_case "defaults math" `Quick test_defaults_math;
      Alcotest.test_case "dumbbell structure" `Quick test_dumbbell_structure;
      Alcotest.test_case "dumbbell LAN" `Quick test_dumbbell_receiver_lan;
      Alcotest.test_case "scenario agent" `Quick
        test_scenario_agent_only_for_robust;
      Alcotest.test_case "scenario sessions" `Quick test_scenario_unique_sessions;
      Alcotest.test_case "experiment: attack (plain)" `Slow
        test_experiment_attack_quick;
      Alcotest.test_case "experiment: attack (robust)" `Slow
        test_experiment_attack_robust_quick;
      Alcotest.test_case "experiment: sweep" `Slow test_experiment_sweep_quick;
      Alcotest.test_case "experiment: convergence" `Slow
        test_experiment_convergence_quick;
      Alcotest.test_case "experiment: overhead" `Slow
        test_experiment_overhead_quick;
      Alcotest.test_case "experiment: rtt" `Slow test_experiment_rtt_quick;
      Alcotest.test_case "experiment: responsiveness" `Slow
        test_experiment_responsiveness_quick;
      Alcotest.test_case "partial deployment" `Slow test_partial_deployment;
      Alcotest.test_case "ecn reduces drops" `Slow test_ecn_reduces_drops;
    ] )
