module Sim = Mcc_engine.Sim
module Topology = Mcc_net.Topology
module Node = Mcc_net.Node
module Link = Mcc_net.Link
module Packet = Mcc_net.Packet
module Trace = Mcc_net.Trace

let small_link () =
  let sim = Sim.create () in
  let topo = Topology.create sim in
  let a = Topology.add_node topo Node.Host in
  let b = Topology.add_node topo Node.Host in
  let ab, _ =
    Topology.connect topo a b ~rate_bps:80_000. ~delay_s:0.001
      ~buffer_bytes:2_000 ()
  in
  Topology.compute_routes topo;
  (sim, a, b, ab)

let burst sim a b n =
  for _ = 1 to n do
    Node.originate a
      (Packet.make ~src:a.Node.id ~dst:(Packet.Unicast b.Node.id) ~size:1000
         Mcc_net.Payload.Raw)
  done;
  Sim.run sim

let test_counts_match_link () =
  let sim, a, b, ab = small_link () in
  let trace = Trace.attach ab in
  burst sim a b 10;
  Alcotest.(check int) "tx" ab.Link.tx_packets (Trace.count trace Link.Tx_start);
  Alcotest.(check int) "drops" ab.Link.drops (Trace.count trace Link.Dropped);
  Alcotest.(check int) "delivered = tx" ab.Link.tx_packets
    (Trace.count trace Link.Delivered);
  Alcotest.(check bool) "some drops in this burst" true (ab.Link.drops > 0)

let test_record_order_and_times () =
  let sim, a, b, ab = small_link () in
  let trace = Trace.attach ab in
  burst sim a b 3;
  let records = Trace.records trace in
  let times = List.map (fun (r : Trace.record) -> r.Trace.time) records in
  Alcotest.(check bool) "non-decreasing timestamps" true
    (List.for_all2 (fun x y -> x <= y)
       (List.filteri (fun i _ -> i < List.length times - 1) times)
       (List.tl times));
  (* First event of an idle link is the first transmission at t=0. *)
  match records with
  | first :: _ ->
      Alcotest.(check bool) "starts with tx" true
        (first.Trace.event = Link.Tx_start)
  | [] -> Alcotest.fail "no records"

let test_ring_capacity () =
  let sim, a, b, ab = small_link () in
  let trace = Trace.attach ~capacity:5 ab in
  burst sim a b 10;
  Alcotest.(check bool) "bounded" true (List.length (Trace.records trace) <= 5);
  Alcotest.(check bool) "counts unbounded" true
    (Trace.count trace Link.Tx_start = 3);
  Trace.clear trace;
  Alcotest.(check int) "cleared" 0 (List.length (Trace.records trace))

(* Regression: counts are tallied outside the ring, so eviction of old
   records must never roll a count back. *)
let test_count_survives_eviction () =
  let sim, a, b, ab = small_link () in
  let trace = Trace.attach ~capacity:2 ab in
  burst sim a b 10;
  let tx = Trace.count trace Link.Tx_start in
  Alcotest.(check bool) "more events than the ring holds" true
    (tx > 2 && List.length (Trace.records trace) = 2);
  Alcotest.(check int) "count matches the link, not the ring"
    ab.Link.tx_packets tx;
  (* clear drops the retained records but not the tallies *)
  Trace.clear trace;
  Alcotest.(check int) "count survives clear" tx
    (Trace.count trace Link.Tx_start)

let test_iter_fold_agree_with_records () =
  let sim, a, b, ab = small_link () in
  let trace = Trace.attach ab in
  burst sim a b 5;
  let records = Trace.records trace in
  let via_iter = ref [] in
  Trace.iter (fun r -> via_iter := r :: !via_iter) trace;
  Alcotest.(check int) "iter visits every record" (List.length records)
    (List.length !via_iter);
  Alcotest.(check bool) "iter order oldest-first" true
    (List.rev !via_iter = records);
  let via_fold = Trace.fold (fun acc r -> r :: acc) [] trace in
  Alcotest.(check bool) "fold order oldest-first" true
    (List.rev via_fold = records);
  Alcotest.(check int) "fold sums sizes"
    (List.fold_left (fun acc (r : Trace.record) -> acc + r.Trace.size) 0 records)
    (Trace.fold (fun acc r -> acc + r.Trace.size) 0 trace)

let test_chaining_preserves_existing_tap () =
  let sim, a, b, ab = small_link () in
  let seen = ref 0 in
  ab.Link.on_event <- Some (fun _ _ -> incr seen);
  let trace = Trace.attach ab in
  burst sim a b 2;
  Alcotest.(check bool) "original tap still called" true (!seen > 0);
  Alcotest.(check bool) "trace also records" true
    (Trace.count trace Link.Tx_start > 0)

let suite =
  ( "trace",
    [
      Alcotest.test_case "counts match link" `Quick test_counts_match_link;
      Alcotest.test_case "record order" `Quick test_record_order_and_times;
      Alcotest.test_case "ring capacity" `Quick test_ring_capacity;
      Alcotest.test_case "count survives eviction" `Quick
        test_count_survives_eviction;
      Alcotest.test_case "iter/fold" `Quick test_iter_fold_agree_with_records;
      Alcotest.test_case "tap chaining" `Quick test_chaining_preserves_existing_tap;
    ] )
