module Fec = Mcc_sigma.Fec
module Tuple = Mcc_sigma.Tuple

let tuples n =
  List.init n (fun i ->
      Tuple.make ~group:(1000 + i) ~slot:5 ~keys:[ i; i + 1 ] ~minimal:(i = 0))

let decode_with coded =
  let d = Fec.decoder_create () in
  List.fold_left
    (fun acc c -> match Fec.feed d c with Some ts -> Some ts | None -> acc)
    None coded

let groups_of ts = List.map (fun (t : Tuple.t) -> t.Tuple.group) ts

let test_repetition_all_arrive () =
  let coded = Fec.encode ~width:16 (Fec.Repetition 2) ~max_per_packet:4 (tuples 10) in
  Alcotest.(check int) "3 chunks x 2 copies" 6 (List.length coded);
  match decode_with coded with
  | Some ts ->
      Alcotest.(check (list int)) "order preserved"
        (groups_of (tuples 10)) (groups_of ts)
  | None -> Alcotest.fail "should decode"

let test_repetition_survives_one_copy () =
  let coded = Fec.encode ~width:16 (Fec.Repetition 2) ~max_per_packet:4 (tuples 10) in
  (* Drop every copy-0 packet: copy-1 packets alone must decode. *)
  let survivors = List.filter (fun (c : Fec.coded) -> c.Fec.copy = 1) coded in
  match decode_with survivors with
  | Some ts -> Alcotest.(check int) "all tuples" 10 (List.length ts)
  | None -> Alcotest.fail "copies should decode"

let test_repetition_fails_when_chunk_gone () =
  let coded = Fec.encode ~width:16 (Fec.Repetition 2) ~max_per_packet:4 (tuples 10) in
  let survivors = List.filter (fun (c : Fec.coded) -> c.Fec.chunk <> 1) coded in
  Alcotest.(check bool) "incomplete" true (decode_with survivors = None)

let test_parity_recovers_missing_chunk () =
  let coded = Fec.encode ~width:16 Fec.Xor_parity ~max_per_packet:4 (tuples 10) in
  Alcotest.(check int) "3 data + 1 parity" 4 (List.length coded);
  (* Drop one data chunk: parity recovers. *)
  let survivors = List.filter (fun (c : Fec.coded) -> c.Fec.chunk <> 0) coded in
  match decode_with survivors with
  | Some ts -> Alcotest.(check int) "recovered" 10 (List.length ts)
  | None -> Alcotest.fail "parity should recover one missing chunk"

let test_parity_fails_on_two_missing () =
  let coded = Fec.encode ~width:16 Fec.Xor_parity ~max_per_packet:4 (tuples 10) in
  let survivors =
    List.filter (fun (c : Fec.coded) -> c.Fec.chunk > 1) coded
  in
  Alcotest.(check bool) "two chunks gone" true (decode_with survivors = None)

let test_expansion () =
  Alcotest.(check (float 1e-9)) "repetition z" 2.
    (Fec.expansion (Fec.Repetition 2) ~total_chunks:3);
  Alcotest.(check (float 1e-9)) "parity z" (4. /. 3.)
    (Fec.expansion Fec.Xor_parity ~total_chunks:3)

let test_decoder_reports_once () =
  let coded = Fec.encode ~width:16 (Fec.Repetition 2) ~max_per_packet:100 (tuples 3) in
  let d = Fec.decoder_create () in
  let results = List.map (Fec.feed d) coded in
  let some = List.filter Option.is_some results in
  Alcotest.(check int) "exactly one completion" 1 (List.length some);
  Alcotest.(check bool) "complete" true (Fec.complete d)

let test_invalid_args () =
  Alcotest.(check bool) "empty tuples" true
    (try
       ignore (Fec.encode ~width:16 (Fec.Repetition 2) ~max_per_packet:4 []);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad chunk size" true
    (try
       ignore (Fec.encode ~width:16 Fec.Xor_parity ~max_per_packet:0 (tuples 2));
       false
     with Invalid_argument _ -> true)

let prop_repetition_random_loss =
  QCheck.Test.make ~name:"repetition-2 decodes iff each chunk has a copy"
    ~count:200
    QCheck.(list_of_size (Gen.return 6) bool)
    (fun keep ->
      let coded =
        Fec.encode ~width:16 (Fec.Repetition 2) ~max_per_packet:4 (tuples 10)
      in
      let coded = List.sort (fun (a : Fec.coded) b -> compare (a.Fec.chunk, a.Fec.copy) (b.Fec.chunk, b.Fec.copy)) coded in
      let survivors =
        List.filteri (fun i _ -> List.nth keep (i mod List.length keep)) coded
      in
      let chunk_survives c =
        List.exists (fun (s : Fec.coded) -> s.Fec.chunk = c) survivors
      in
      let decodable = chunk_survives 0 && chunk_survives 1 && chunk_survives 2 in
      (decode_with survivors <> None) = decodable)

let suite =
  ( "fec",
    [
      Alcotest.test_case "repetition, all arrive" `Quick
        test_repetition_all_arrive;
      Alcotest.test_case "repetition, one copy set" `Quick
        test_repetition_survives_one_copy;
      Alcotest.test_case "repetition, chunk gone" `Quick
        test_repetition_fails_when_chunk_gone;
      Alcotest.test_case "parity recovers" `Quick
        test_parity_recovers_missing_chunk;
      Alcotest.test_case "parity limit" `Quick test_parity_fails_on_two_missing;
      Alcotest.test_case "expansion factors" `Quick test_expansion;
      Alcotest.test_case "single completion" `Quick test_decoder_reports_once;
      Alcotest.test_case "invalid args" `Quick test_invalid_args;
      QCheck_alcotest.to_alcotest prop_repetition_random_loss;
    ] )
