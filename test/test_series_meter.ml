open Mcc_util

let test_series_order () =
  let s = Series.create () in
  Series.add s ~time:1. ~value:10.;
  Series.add s ~time:2. ~value:20.;
  Alcotest.check_raises "backwards"
    (Invalid_argument "Series.add: time going backwards") (fun () ->
      Series.add s ~time:1.5 ~value:0.)

let test_series_window () =
  let s = Series.create () in
  List.iter
    (fun (t, v) -> Series.add s ~time:t ~value:v)
    [ (0., 1.); (1., 2.); (2., 3.); (3., 4.) ];
  Alcotest.(check int) "length" 4 (Series.length s);
  Alcotest.(check (list (float 0.))) "between" [ 2.; 3. ]
    (Series.values_between s ~lo:1. ~hi:3.);
  Alcotest.(check (float 1e-9)) "mean window" 2.5
    (Series.mean_between s ~lo:1. ~hi:3.)

let test_series_moving_average () =
  let s = Series.create () in
  List.iter (fun t -> Series.add s ~time:t ~value:t) [ 0.; 1.; 2.; 3.; 4. ];
  let ma = Series.moving_average s ~window:2.0 in
  (* At time 2 the window [1,3] holds values 1,2 (hi exclusive gives 1,2)
     - centered average includes 1,2 (3 excluded by half-open bound). *)
  let _, v2 = List.nth ma 2 in
  Alcotest.(check (float 1e-9)) "centered" 1.5 v2

let test_meter_bins () =
  let m = Meter.create ~bin:1.0 () in
  Meter.record m ~time:0.2 ~bytes:125;
  Meter.record m ~time:0.7 ~bytes:125;
  Meter.record m ~time:1.5 ~bytes:250;
  Alcotest.(check int) "total" 500 (Meter.total_bytes m);
  (match Meter.throughput_kbps m with
  | (_, k1) :: (_, k2) :: _ ->
      Alcotest.(check (float 1e-9)) "bin1 kbps" 2.0 k1;
      Alcotest.(check (float 1e-9)) "bin2 kbps" 2.0 k2
  | _ -> Alcotest.fail "expected two bins")

let test_meter_mean () =
  let m = Meter.create ~bin:1.0 () in
  for i = 0 to 9 do
    Meter.record m ~time:(float_of_int i +. 0.5) ~bytes:1250
  done;
  (* 1250 B/s = 10 kbps over [0, 10). *)
  Alcotest.(check (float 1e-6)) "mean kbps" 10. (Meter.mean_kbps m ~lo:0. ~hi:10.)

(* Windows that do not align with bin boundaries: each bin contributes
   proportionally to its overlap with [lo, hi). *)
let test_meter_mean_partial_bins () =
  let m = Meter.create ~bin:1.0 () in
  Meter.record m ~time:0.5 ~bytes:1000;  (* bin [0,1): 8 kbps *)
  Meter.record m ~time:1.5 ~bytes:2000;  (* bin [1,2): 16 kbps *)
  (* Half of each bin: (500 + 1000) B over 1 s = 12 kbps. *)
  Alcotest.(check (float 1e-9)) "straddles the boundary" 12.
    (Meter.mean_kbps m ~lo:0.5 ~hi:1.5);
  (* Entirely inside one bin: the bin's own rate, whatever the span. *)
  Alcotest.(check (float 1e-9)) "interior of bin 0" 8.
    (Meter.mean_kbps m ~lo:0.25 ~hi:0.75);
  Alcotest.(check (float 1e-9)) "quarter of each bin" 12.
    (Meter.mean_kbps m ~lo:0.75 ~hi:1.25);
  (* Past the recorded data the window averages in silence. *)
  Alcotest.(check (float 1e-9)) "trailing silence" 8.
    (Meter.mean_kbps m ~lo:1.0 ~hi:3.0);
  Alcotest.(check (float 0.)) "empty window" 0.
    (Meter.mean_kbps m ~lo:2.0 ~hi:2.0)

let test_meter_backwards () =
  let m = Meter.create () in
  Meter.record m ~time:5. ~bytes:1;
  Alcotest.check_raises "backwards"
    (Invalid_argument "Meter.record: time going backwards") (fun () ->
      Meter.record m ~time:4. ~bytes:1)

let prop_meter_total =
  QCheck.Test.make ~name:"meter total equals sum of records" ~count:200
    QCheck.(list_of_size Gen.(int_range 0 50) (int_range 1 10_000))
    (fun sizes ->
      let m = Meter.create () in
      List.iteri
        (fun i b -> Meter.record m ~time:(float_of_int i *. 0.1) ~bytes:b)
        sizes;
      Meter.total_bytes m = List.fold_left ( + ) 0 sizes)

let suite =
  ( "series-meter",
    [
      Alcotest.test_case "series ordering" `Quick test_series_order;
      Alcotest.test_case "series windows" `Quick test_series_window;
      Alcotest.test_case "series moving average" `Quick
        test_series_moving_average;
      Alcotest.test_case "meter bins" `Quick test_meter_bins;
      Alcotest.test_case "meter mean" `Quick test_meter_mean;
      Alcotest.test_case "meter mean, partial bins" `Quick
        test_meter_mean_partial_bins;
      Alcotest.test_case "meter backwards" `Quick test_meter_backwards;
      QCheck_alcotest.to_alcotest prop_meter_total;
    ] )
