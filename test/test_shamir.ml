open Mcc_util

let test_reconstruct_exact () =
  let prng = Prng.create 1 in
  let secret = 987654 in
  let shares = Shamir.split prng ~k:3 ~n:5 ~secret in
  let subset = [ shares.(0); shares.(2); shares.(4) ] in
  Alcotest.(check int) "k shares recover" secret (Shamir.reconstruct subset)

let test_all_shares () =
  let prng = Prng.create 2 in
  let secret = 31337 in
  let shares = Shamir.split prng ~k:4 ~n:7 ~secret in
  Alcotest.(check int) "n shares recover" secret
    (Shamir.reconstruct (Array.to_list shares))

let test_below_quorum_wrong () =
  let prng = Prng.create 3 in
  let secret = 1234567 in
  let wrong = ref 0 in
  for trial = 0 to 19 do
    let shares = Shamir.split prng ~k:3 ~n:5 ~secret:(secret + trial) in
    let guess = Shamir.reconstruct [ shares.(0); shares.(1) ] in
    if guess <> secret + trial then incr wrong
  done;
  (* Information-theoretic hiding: two shares of a 3-quorum say nothing;
     a collision is a ~1/p event. *)
  Alcotest.(check int) "k-1 shares never recover" 20 !wrong

let test_invalid_params () =
  let prng = Prng.create 4 in
  Alcotest.check_raises "k > n" (Invalid_argument "Shamir.split") (fun () ->
      ignore (Shamir.split prng ~k:5 ~n:3 ~secret:1));
  Alcotest.check_raises "k = 0" (Invalid_argument "Shamir.split") (fun () ->
      ignore (Shamir.split prng ~k:0 ~n:3 ~secret:1))

let test_k1_every_share_is_key () =
  let prng = Prng.create 5 in
  let shares = Shamir.split prng ~k:1 ~n:4 ~secret:777 in
  Array.iter
    (fun s ->
      Alcotest.(check int) "single share" 777 (Shamir.reconstruct [ s ]))
    shares

let prop_roundtrip =
  QCheck.Test.make ~name:"Shamir split/reconstruct roundtrip" ~count:100
    QCheck.(triple small_int (int_range 1 10) (int_range 0 1_000_000))
    (fun (seed, k, secret) ->
      let n = k + (seed mod 5) in
      let prng = Prng.create seed in
      let shares = Shamir.split prng ~k ~n ~secret in
      (* Any k shares suffice; take the last k. *)
      let subset = Array.to_list (Array.sub shares (n - k) k) in
      Shamir.reconstruct subset = Gf.of_int secret)

let suite =
  ( "shamir",
    [
      Alcotest.test_case "k shares recover" `Quick test_reconstruct_exact;
      Alcotest.test_case "all shares recover" `Quick test_all_shares;
      Alcotest.test_case "below quorum hides" `Quick test_below_quorum_wrong;
      Alcotest.test_case "invalid params" `Quick test_invalid_params;
      Alcotest.test_case "k=1 degenerate" `Quick test_k1_every_share_is_key;
      QCheck_alcotest.to_alcotest prop_roundtrip;
    ] )
