(* End-to-end collusion (paper Section 4.2): receiver B sits behind a
   narrow access link and is entitled to a low level; accomplice A, on a
   clean path, passes B its reconstructed keys every slot.  With plain
   SIGMA the edge router honours the replayed keys and pumps A's whole
   subscription onto B's starved link; with interface-specific keys the
   replay bounces. *)

module Scenario = Mcc_core.Scenario
module Dumbbell = Mcc_core.Dumbbell
module Defaults = Mcc_core.Defaults
module Flid = Mcc_mcast.Flid
module Router_agent = Mcc_sigma.Router_agent
module Multicast = Mcc_net.Multicast
module Node = Mcc_net.Node
module Link = Mcc_net.Link

let run ~interface_keys =
  let agent_config =
    { Router_agent.default_config with Router_agent.interface_keys }
  in
  let t =
    Scenario.create ~seed:97 ~agent_config ~bottleneck_rate_bps:2_000_000. ()
  in
  let session =
    Scenario.add_multicast t ~mode:Flid.Robust
      ~receivers:
        [
          Scenario.receiver ();
          (* the clean-path accomplice *)
          Scenario.receiver ~access_rate_bps:150_000. ();
          (* the colluder *)
        ]
      ()
  in
  let a, b =
    match session.Scenario.receivers with
    | [ a; b ] -> (a, b)
    | _ -> assert false
  in
  Flid.set_colluder b ~source:a;
  Scenario.run t ~seconds:60.;
  let agent = Option.get (Scenario.agent t) in
  (* B's host is the second receiver host added to the dumbbell; recover
     it through the session's receiver order via the topology. *)
  let b_host =
    (* hosts are identifiable by their narrow access link *)
    List.find
      (fun (n : Node.t) ->
        n.Node.kind = Node.Host
        && List.exists
             (fun (l : Link.t) -> l.Link.rate_bps = 150_000.)
             n.Node.links)
      (Mcc_net.Topology.nodes (Scenario.dumbbell t).Dumbbell.topo)
  in
  let active_toward_b =
    List.length
      (List.filter
         (fun g ->
           Router_agent.iface_active agent
             ~group:(Flid.group_addr session.Scenario.config g)
             ~toward:b_host.Node.id)
         (List.init Defaults.groups (fun i -> i + 1)))
  in
  let b_access_drops =
    match Multicast.router_of (Scenario.dumbbell t).Dumbbell.topo b_host with
    | _, Some link -> link.Link.drops
    | _, None -> -1
  in
  (Flid.receiver_level a, active_toward_b, b_access_drops)

let test_collusion_succeeds_without_interface_keys () =
  let a_level, active_b, drops = run ~interface_keys:false in
  Alcotest.(check bool)
    (Printf.sprintf "accomplice holds a high level (%d)" a_level)
    true (a_level >= 5);
  Alcotest.(check bool)
    (Printf.sprintf "replayed keys open %d groups for B" active_b)
    true
    (active_b >= a_level - 1);
  Alcotest.(check bool)
    (Printf.sprintf "B's access link bleeds (%d drops)" drops)
    true (drops > 1000)

let test_collusion_blocked_with_interface_keys () =
  let _, active_b, drops = run ~interface_keys:true in
  (* B still gets what its own congestion state entitles it to (a couple
     of groups through its 150 kbps link) but nothing replayed. *)
  Alcotest.(check bool)
    (Printf.sprintf "B capped at its entitlement (%d groups)" active_b)
    true
    (active_b <= 3);
  (* B's own probing saturates its 150 kbps link a little; the flood of
     the unprotected case is an order of magnitude larger. *)
  Alcotest.(check bool)
    (Printf.sprintf "no flood on B's access (%d drops)" drops)
    true
    (drops < 5000)

let suite =
  ( "collusion",
    [
      Alcotest.test_case "succeeds without interface keys" `Slow
        test_collusion_succeeds_without_interface_keys;
      Alcotest.test_case "blocked by interface keys" `Slow
        test_collusion_blocked_with_interface_keys;
    ] )
