module Red = Mcc_net.Red
module Sim = Mcc_engine.Sim
module Topology = Mcc_net.Topology
module Node = Mcc_net.Node
module Link = Mcc_net.Link
module Packet = Mcc_net.Packet

let config =
  { Red.min_bytes = 1000; max_bytes = 3000; max_probability = 0.5; weight = 1.0 }

let test_no_marks_below_min () =
  let red = Red.create config in
  for _ = 1 to 100 do
    Alcotest.(check bool) "below min" false
      (Red.on_enqueue red ~queue_bytes:500)
  done;
  Alcotest.(check int) "no marks" 0 (Red.marks red)

let test_all_marks_above_max () =
  let red = Red.create config in
  for _ = 1 to 100 do
    Alcotest.(check bool) "above max" true
      (Red.on_enqueue red ~queue_bytes:5000)
  done;
  Alcotest.(check int) "all marked" 100 (Red.marks red)

let test_probability_ramp () =
  (* With weight 1 the average tracks instantaneously; at the midpoint
     the marking probability is max_probability / 2 = 0.25. *)
  let red = Red.create ~seed:5 config in
  let n = 20_000 in
  let marked = ref 0 in
  for _ = 1 to n do
    if Red.on_enqueue red ~queue_bytes:2000 then incr marked
  done;
  let rate = float_of_int !marked /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "midpoint rate %.3f near 0.25" rate)
    true
    (abs_float (rate -. 0.25) < 0.02)

let test_ewma_smoothing () =
  let red =
    Red.create { config with Red.weight = 0.1 }
  in
  (* A single burst sample barely moves a slow average. *)
  ignore (Red.on_enqueue red ~queue_bytes:10_000);
  Alcotest.(check bool) "smoothed" true (Red.average red < 1_001.)

let test_invalid_configs () =
  let check name c =
    Alcotest.(check bool) name true
      (try
         ignore (Red.create c);
         false
       with Invalid_argument _ -> true)
  in
  check "thresholds" { config with Red.max_bytes = 500 };
  check "probability" { config with Red.max_probability = 0. };
  check "weight" { config with Red.weight = 2. }

let test_red_on_link_marks () =
  let sim = Sim.create () in
  let topo = Topology.create sim in
  let a = Topology.add_node topo Node.Host in
  let b = Topology.add_node topo Node.Host in
  let ab, _ =
    Topology.connect topo a b ~rate_bps:80_000. ~delay_s:0.001
      ~buffer_bytes:8_000 ()
  in
  ab.Link.red <-
    Some
      (Red.create
         { Red.min_bytes = 1000; max_bytes = 4000; max_probability = 0.5;
           weight = 1.0 });
  Topology.compute_routes topo;
  let marked = ref 0 and total = ref 0 in
  Node.set_unicast_handler b (fun pkt ->
      incr total;
      if pkt.Packet.ecn then incr marked);
  for _ = 1 to 8 do
    Node.originate a
      (Packet.make ~src:a.Node.id ~dst:(Packet.Unicast b.Node.id) ~size:1000
         Mcc_net.Payload.Raw)
  done;
  Sim.run sim;
  Alcotest.(check bool) "all delivered (buffer fits)" true (!total = 8);
  Alcotest.(check bool) "deep-queue packets marked" true (!marked > 0);
  Alcotest.(check int) "link counter consistent" !marked ab.Link.marks

let suite =
  ( "red",
    [
      Alcotest.test_case "below min" `Quick test_no_marks_below_min;
      Alcotest.test_case "above max" `Quick test_all_marks_above_max;
      Alcotest.test_case "probability ramp" `Quick test_probability_ramp;
      Alcotest.test_case "ewma smoothing" `Quick test_ewma_smoothing;
      Alcotest.test_case "invalid configs" `Quick test_invalid_configs;
      Alcotest.test_case "marks on a link" `Quick test_red_on_link_marks;
    ] )
