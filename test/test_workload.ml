(* Workload subsystem tests: schema validation with field-path
   diagnostics, seed-driven generator determinism (same seed, same
   topology bytes), byte-identical runner output across job counts and
   scheduler backends, the Oversub control law end to end, and the
   workload-file digest the ledger records. *)

module Spec = Mcc_core.Spec
module Sink = Mcc_core.Sink
module Runner = Mcc_core.Runner
module Scenario = Mcc_core.Scenario
module Json = Mcc_core.Json
module Ledger = Mcc_obs.Ledger
module Sim = Mcc_engine.Sim
module Scheduler = Mcc_engine.Scheduler
module Topology = Mcc_net.Topology
module Prng = Mcc_util.Prng
module Meter = Mcc_util.Meter
module Flid = Mcc_mcast.Flid
module Oversub = Mcc_mcast.Oversub
module Topo_gen = Mcc_workload.Topo_gen
module Churn = Mcc_workload.Churn
module Schema = Mcc_workload.Schema

(* Reference Build so its Spec.Workload implementation hook registers
   even though no test names the module's values. *)
let () = ignore (Mcc_workload.Build.run : Spec.workload_params -> _)

let contains ~needle haystack =
  let n = String.length needle in
  let rec find i =
    i + n <= String.length haystack
    && (String.sub haystack i n = needle || find (i + 1))
  in
  find 0

let parse s =
  match Json.of_string s with Ok j -> j | Error e -> Alcotest.fail e

let valid_doc =
  {|{ "version": 1, "name": "t", "seed": 5, "duration": 20,
      "topology": { "kind": "fat_tree", "k": 4, "core_rate_bps": 2000000 },
      "protocol": "oversub", "defence": "delta+sigma+ecn", "receivers": 3,
      "churn": { "kind": "flash_crowd", "at": 5, "arrivals": 2, "leave_after": 6 },
      "traffic": [ { "kind": "tcp", "flows": 1 } ],
      "attack": { "kind": "inflate", "at": 8 } }|}

(* --- schema ------------------------------------------------------------- *)

let test_schema_valid () =
  match Schema.params_of_json ~ctx:"w.json" (parse valid_doc) with
  | Error e -> Alcotest.fail e
  | Ok (name, seeded) ->
      Alcotest.(check string) "name" "t" name;
      Alcotest.(check int) "one seed" 1 (List.length seeded);
      let seed, p = List.hd seeded in
      Alcotest.(check int) "seed" 5 seed;
      Alcotest.(check bool) "protocol" true (p.Spec.protocol = Spec.Oversub);
      Alcotest.(check bool) "attack parsed" true
        (p.Spec.attack = Some Spec.Persistent_inflation);
      Alcotest.(check (float 1e-9)) "attack at" 8. p.Spec.attack_at

let expect_error ~needle doc =
  match Schema.params_of_json ~ctx:"w.json" (parse doc) with
  | Ok _ -> Alcotest.fail ("accepted invalid doc (wanted " ^ needle ^ ")")
  | Error e ->
      Alcotest.(check bool)
        (Printf.sprintf "error %S names %S" e needle)
        true
        (contains ~needle e)

let test_schema_invalid () =
  (* Unknown field, with the file:field path in the diagnostic. *)
  expect_error ~needle:"w.json.typo"
    {|{ "version": 1, "name": "t", "duration": 20, "typo": 1,
        "topology": { "kind": "dumbbell" },
        "protocol": "flid", "defence": "plain", "receivers": 2 }|};
  (* Wrong version. *)
  expect_error ~needle:"w.json.version"
    {|{ "version": 9, "name": "t", "duration": 20,
        "topology": { "kind": "dumbbell" },
        "protocol": "flid", "defence": "plain", "receivers": 2 }|};
  (* Unknown protocol lists the registry. *)
  expect_error ~needle:"oversub"
    {|{ "version": 1, "name": "t", "duration": 20,
        "topology": { "kind": "dumbbell" },
        "protocol": "ftp", "defence": "plain", "receivers": 2 }|};
  (* Nested field path. *)
  expect_error ~needle:"w.json.topology.k"
    {|{ "version": 1, "name": "t", "duration": 20,
        "topology": { "kind": "fat_tree", "k": 3 },
        "protocol": "flid", "defence": "plain", "receivers": 2 }|};
  (* Capacity: fat_tree(4) seats 15 receivers, flash crowd pushes past. *)
  expect_error ~needle:"w.json.receivers"
    {|{ "version": 1, "name": "t", "duration": 20,
        "topology": { "kind": "fat_tree", "k": 4 },
        "protocol": "flid", "defence": "plain", "receivers": 10,
        "churn": { "kind": "flash_crowd", "at": 5, "arrivals": 10 } }|};
  (* seed and seeds are mutually exclusive. *)
  expect_error ~needle:"w.json.seeds"
    {|{ "version": 1, "name": "t", "seed": 1, "seeds": [1, 2], "duration": 20,
        "topology": { "kind": "dumbbell" },
        "protocol": "flid", "defence": "plain", "receivers": 2 }|}

let test_schema_multi_seed () =
  let doc =
    {|{ "version": 1, "name": "multi seed", "seeds": [7, 8], "duration": 10,
        "topology": { "kind": "dumbbell" },
        "protocol": "flid", "defence": "delta+sigma", "receivers": 2 }|}
  in
  match Schema.entries_of_json ~ctx:"w.json" (parse doc) with
  | Error e -> Alcotest.fail e
  | Ok entries ->
      Alcotest.(check (list string))
        "one entry per seed, sanitized names"
        [ "multi-seed-s7"; "multi-seed-s8" ]
        (List.map (fun (e : Runner.entry) -> e.Runner.name) entries)

(* --- generator determinism ---------------------------------------------- *)

let dump_of ~seed spec =
  let sim = Sim.create () in
  let built =
    Topo_gen.build sim ~prng:(Prng.create seed) ~spec ~hosts:4
  in
  Topology.dump built.Topo_gen.topo

let test_generator_determinism () =
  List.iter
    (fun spec ->
      let a = dump_of ~seed:11 spec and b = dump_of ~seed:11 spec in
      Alcotest.(check string)
        (Spec.topology_str spec ^ " same seed, same bytes")
        a b)
    [
      Spec.Dumbbell_topo;
      Spec.Fat_tree { k = 4; core_rate_bps = 2e6 };
      Spec.Star_lans { lans = 3; hosts_per_lan = 2; core_rate_bps = 2e6 };
      Spec.Isp_random
        { routers = 6; extra_links = 3; hosts_per_edge = 2; core_rate_bps = 2e6 };
    ];
  (* The random graph actually uses its seed. *)
  let spec =
    Spec.Isp_random
      { routers = 8; extra_links = 4; hosts_per_edge = 2; core_rate_bps = 2e6 }
  in
  Alcotest.(check bool)
    "isp_random differs across seeds" false
    (String.equal (dump_of ~seed:11 spec) (dump_of ~seed:12 spec))

let test_generator_shapes () =
  let sim = Sim.create () in
  let ft =
    Topo_gen.build sim ~prng:(Prng.create 1)
      ~spec:(Spec.Fat_tree { k = 4; core_rate_bps = 2e6 })
      ~hosts:4
  in
  Alcotest.(check int) "fat_tree(4) edges" 8 (List.length ft.Topo_gen.edges);
  Alcotest.(check int) "fat_tree(4) pool" 15 (List.length ft.Topo_gen.pool);
  Alcotest.(check int) "capacity matches pool" 15
    (Topo_gen.capacity ~spec:(Spec.Fat_tree { k = 4; core_rate_bps = 2e6 })
       ~hosts:4);
  Alcotest.check_raises "undersized shape rejected"
    (Invalid_argument
       "Topo_gen.build: star_lans provides 2 receiver hosts, workload needs 4")
    (fun () ->
      ignore
        (Topo_gen.build (Sim.create ()) ~prng:(Prng.create 1)
           ~spec:
             (Spec.Star_lans { lans = 2; hosts_per_lan = 1; core_rate_bps = 2e6 })
           ~hosts:4))

(* --- churn plans --------------------------------------------------------- *)

let test_churn_plans () =
  let flash =
    Churn.plan (Prng.create 3)
      ~spec:(Spec.Flash_crowd { at = 10.; arrivals = 4; leave_after = 5. })
      ~receivers:3 ~duration:60.
  in
  Alcotest.(check int) "flash intervals" 7 (List.length flash);
  List.iteri
    (fun i { Churn.host; at; until } ->
      Alcotest.(check int) "distinct hosts" i host;
      if i >= 3 then begin
        Alcotest.(check bool) "arrival joins around t=10" true
          (at >= 10. && at < 11.);
        match until with
        | Some u -> Alcotest.(check (float 1e-9)) "leaves 5s later" (at +. 5.) u
        | None -> Alcotest.fail "arrival should leave"
      end)
    flash;
  let outage =
    Churn.plan (Prng.create 3)
      ~spec:(Spec.Regional_outage { at = 20.; restore_at = 40.; fraction = 0.5 })
      ~receivers:4 ~duration:60.
  in
  (* 2 affected hosts x 2 intervals + 2 steady. *)
  Alcotest.(check int) "outage intervals" 6 (List.length outage);
  let diurnal =
    Churn.plan (Prng.create 3)
      ~spec:(Spec.Diurnal { period = 30.; fraction = 0.5 })
      ~receivers:4 ~duration:60.
  in
  (* 2 cycling hosts x 2 cycles + 2 steady. *)
  Alcotest.(check int) "diurnal intervals" 6 (List.length diurnal)

(* --- byte-identical runner output ---------------------------------------- *)

let test_run_byte_identity () =
  let doc =
    {|{ "version": 1, "name": "det", "seed": 9, "duration": 8,
        "topology": { "kind": "star_lans", "lans": 2, "hosts_per_lan": 2,
                      "core_rate_bps": 1000000 },
        "protocol": "flid", "defence": "delta+sigma", "receivers": 3,
        "traffic": [ { "kind": "web", "flows": 2, "rate_bps": 100000,
                       "mean_on": 2, "mean_off": 2 } ] }|}
  in
  let entries =
    match Schema.entries_of_json ~ctx:"det.json" (parse doc) with
    | Ok e -> e
    | Error e -> Alcotest.fail e
  in
  let capture ~jobs ~sched =
    let buf = Buffer.create 4096 in
    let sinks =
      [
        Sink.map
          (fun r -> { r with Sink.profile = None })
          (Sink.jsonl (Buffer.add_string buf));
      ]
    in
    ignore (Runner.run_batch ~jobs ~sched ~sinks entries);
    Buffer.contents buf
  in
  let heap =
    match Scheduler.of_name "heap" with Ok b -> b | Error e -> Alcotest.fail e
  in
  let wheel =
    match Scheduler.of_name "wheel" with Ok b -> b | Error e -> Alcotest.fail e
  in
  let reference = capture ~jobs:1 ~sched:heap in
  Alcotest.(check bool) "reference non-empty" true (reference <> "");
  Alcotest.(check string) "jobs 4 identical"
    reference
    (capture ~jobs:4 ~sched:heap);
  Alcotest.(check string) "wheel backend identical"
    reference
    (capture ~jobs:4 ~sched:wheel)

(* --- oversub end to end -------------------------------------------------- *)

let test_oversub_session () =
  let t =
    Scenario.create ~seed:21 ~ecn:true ~sigma:true
      ~bottleneck_rate_bps:1_000_000. ()
  in
  let s =
    Scenario.add_oversub t ~mode:Flid.Robust
      ~receivers:[ Scenario.receiver () ] ()
  in
  Scenario.run t ~seconds:30.;
  let r = List.hd s.Scenario.ovs_receivers in
  Alcotest.(check bool) "receiver climbed" true (Oversub.receiver_level r >= 1);
  Alcotest.(check bool) "goodput flowed" true
    (Meter.mean_kbps (Oversub.receiver_meter r) ~lo:5. ~hi:30. > 50.);
  let g = Oversub.mark_ewma r in
  Alcotest.(check bool) "ewma in range" true (g >= 0. && g <= 1.);
  (* The shared bottleneck with ECN produces congestion signals the
     control law must have reacted to at least once in 30 s. *)
  Alcotest.(check bool) "control law engaged" true
    (Oversub.congestion_events r > 0 || Oversub.decrease_events r > 0)

let test_oversub_registry () =
  Alcotest.(check int) "four protocols registered" 4
    (List.length Spec.protocols);
  Alcotest.(check string) "oversub short name" "oversub"
    (Spec.protocol_str Spec.Oversub);
  Alcotest.(check bool) "matrix columns follow the registry" true
    (List.mem Spec.Oversub Mcc_attack.Matrix.default_protocols);
  Alcotest.(check bool) "heading distinct from CLI name" true
    (Spec.protocol_heading Spec.Oversub <> Spec.protocol_str Spec.Oversub)

(* --- workload digest ----------------------------------------------------- *)

let test_workload_digest () =
  let d s = Ledger.digest_of_json (Json.String s) in
  Alcotest.(check string) "digest stable" (d valid_doc) (d valid_doc);
  Alcotest.(check bool) "digest tracks file bytes" false
    (String.equal (d valid_doc) (d (valid_doc ^ " ")))

let suite =
  ( "workload",
    [
      Alcotest.test_case "schema valid" `Quick test_schema_valid;
      Alcotest.test_case "schema invalid" `Quick test_schema_invalid;
      Alcotest.test_case "schema multi-seed" `Quick test_schema_multi_seed;
      Alcotest.test_case "generator determinism" `Quick
        test_generator_determinism;
      Alcotest.test_case "generator shapes" `Quick test_generator_shapes;
      Alcotest.test_case "churn plans" `Quick test_churn_plans;
      Alcotest.test_case "run byte identity" `Slow test_run_byte_identity;
      Alcotest.test_case "oversub session" `Slow test_oversub_session;
      Alcotest.test_case "oversub registry" `Quick test_oversub_registry;
      Alcotest.test_case "workload digest" `Quick test_workload_digest;
    ] )
