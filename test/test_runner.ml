(* Runner, registry and sink tests.

   The determinism test is the load-bearing one: a batch run with
   --jobs 4 must produce byte-identical JSONL/CSV to the same batch run
   serially, which is what makes the parallel runner safe to use for
   the paper's figures. *)

module E = Mcc_core.Experiments
module Json = Mcc_core.Json
module Report = Mcc_core.Report
module Runner = Mcc_core.Runner
module Sink = Mcc_core.Sink
module Spec = Mcc_core.Spec
module Flid = Mcc_mcast.Flid

(* A small mixed batch, short horizons: every spec kind that is cheap
   enough for the test suite, scaled to a few simulated seconds. *)
let small_batch () =
  List.map
    (fun (name, spec) ->
      { Runner.name; group = name; doc = name;
        spec = Spec.scale_time spec ~factor:0.1 })
    [
      ("attack", Spec.Attack { Spec.default_attack with Spec.mode = Flid.Plain });
      ("sweep2", Spec.Sweep { Spec.default_sweep with Spec.sessions = 2 });
      ( "conv",
        Spec.Convergence { Spec.default_convergence with Spec.mode = Flid.Plain }
      );
      ("ovh", Spec.Overhead { Spec.default_overhead with Spec.duration = 50. });
    ]

let capture_sinks ?sched ?on_progress ?progress_interval entries ~jobs =
  let jsonl = Buffer.create 4096 and csv = Buffer.create 4096 in
  ignore
    (Runner.run_batch ~jobs ?sched ?on_progress ?progress_interval
       ~sinks:[ Sink.jsonl (Buffer.add_string jsonl);
                Sink.csv (Buffer.add_string csv) ]
       entries);
  (Buffer.contents jsonl, Buffer.contents csv)

let contains ~needle haystack =
  let n = String.length needle in
  let rec find i =
    i + n <= String.length haystack
    && (String.sub haystack i n = needle || find (i + 1))
  in
  find 0

(* The profile is the last jsonl field and its wall-clock members come
   after the deterministic ones, so cutting each line at "wall_s" leaves
   exactly the bytes that must match across job counts. *)
let scrub_wall_clock s =
  String.split_on_char '\n' s
  |> List.map (fun line ->
         let marker = "\"wall_s\"" in
         let m = String.length marker in
         let rec find i =
           if i + m > String.length line then line
           else if String.sub line i m = marker then String.sub line 0 i
           else find (i + 1)
         in
         find 0)
  |> String.concat "\n"

let test_parallel_determinism () =
  let entries = small_batch () in
  let j1, c1 = capture_sinks entries ~jobs:1 in
  let j4, c4 = capture_sinks entries ~jobs:4 in
  Alcotest.(check bool) "jsonl non-empty" true (String.length j1 > 0);
  Alcotest.(check string) "jsonl byte-identical, jobs 1 vs 4"
    (scrub_wall_clock j1) (scrub_wall_clock j4);
  Alcotest.(check string) "csv byte-identical, jobs 1 vs 4" c1 c4;
  Alcotest.(check int) "one jsonl line per entry" (List.length entries)
    (List.length
       (List.filter (fun l -> l <> "") (String.split_on_char '\n' j1)));
  Alcotest.(check bool) "metrics on every line" true
    (List.for_all
       (fun l -> l = "" || contains ~needle:{|"metrics":{|} l)
       (String.split_on_char '\n' j1));
  Alcotest.(check bool) "profile on every line" true
    (List.for_all
       (fun l -> l = "" || contains ~needle:{|"profile":{|} l)
       (String.split_on_char '\n' j1))

(* Live telemetry must be pure observation: the progress callback only
   writes to its own channel (stderr in the CLI), so turning it on — at
   any job count, under either scheduler backend — cannot perturb a
   single sink byte beyond the wall-clock suffix.  A pathologically
   short sampling interval maximises monitor interleaving. *)
let test_telemetry_sink_determinism () =
  let entries = small_batch () in
  List.iter
    (fun (label, sched) ->
      (* The profile names its backend in the deterministic prefix, so
         the telemetry-off baseline is taken per backend. *)
      let baseline_j, baseline_c = capture_sinks entries ~jobs:1 ~sched in
      let baseline_j = scrub_wall_clock baseline_j in
      List.iter
        (fun jobs ->
          let samples = ref 0 in
          let j, c =
            capture_sinks entries ~jobs ~sched
              ~on_progress:(fun (_ : Mcc_obs.Progress.sample) -> incr samples)
              ~progress_interval:0.01
          in
          let tag = Printf.sprintf "%s jobs=%d" label jobs in
          Alcotest.(check bool) (tag ^ ": monitor sampled") true (!samples > 0);
          Alcotest.(check string)
            (tag ^ ": jsonl byte-identical with telemetry")
            baseline_j (scrub_wall_clock j);
          Alcotest.(check string)
            (tag ^ ": csv byte-identical with telemetry")
            baseline_c c)
        [ 1; 4 ])
    [
      ("heap", (module Mcc_engine.Scheduler.Heap : Mcc_engine.Scheduler.S));
      ("wheel", (module Mcc_engine.Scheduler.Wheel : Mcc_engine.Scheduler.S));
    ];
  (* The final sample fires even when the monitor never ticks. *)
  let finals = ref 0 in
  ignore
    (capture_sinks entries ~jobs:2 ~progress_interval:60.
       ~on_progress:(fun s ->
         if s.Mcc_obs.Progress.final then incr finals));
  Alcotest.(check int) "exactly one final sample" 1 !finals

(* run_batch rows carry the full per-run snapshot: an attack run drops
   packets at the bottleneck, executes events, and — Plain mode, no
   SIGMA agent — still lists the sigma counters, at zero. *)
let test_batch_metrics () =
  let entries =
    [ List.hd (small_batch ()) ]  (* the Plain-mode attack entry *)
  in
  match Runner.run_batch ~jobs:1 entries with
  | [ row ] ->
      let counter name =
        match List.assoc_opt name row.Runner.metrics with
        | Some (Mcc_obs.Metrics.Counter n) -> n
        | Some _ -> Alcotest.fail (name ^ " is not a counter")
        | None -> Alcotest.fail (name ^ " missing from snapshot")
      in
      Alcotest.(check bool) "events executed" true (counter "engine.events" > 0);
      Alcotest.(check bool) "bottleneck dropped" true (counter "link.drops" > 0);
      Alcotest.(check bool) "packets transmitted" true
        (counter "link.tx_packets" > 0);
      Alcotest.(check int) "no sigma traffic in Plain mode" 0
        (counter "sigma.subscriptions");
      Alcotest.(check bool) "profile counts the run" true
        (row.Runner.profile.Mcc_obs.Profile.events = counter "engine.events");
      Alcotest.(check bool) "queue capacity recorded" true
        (row.Runner.profile.Mcc_obs.Profile.queue_capacity > 0);
      (* The bracketing reset means none of the run's counts leak into
         the caller's registry. *)
      Alcotest.(check int) "registry left clean" 0
        (Mcc_obs.Metrics.counter_value
           (Mcc_obs.Metrics.counter "engine.events"))
  | rows -> Alcotest.fail (Printf.sprintf "expected 1 row, got %d" (List.length rows))

let test_run_specs_order () =
  (* Results come back in input order even when several domains race. *)
  let specs =
    List.map
      (fun sessions ->
        Spec.Sweep
          { Spec.default_sweep with
            Spec.seed = 11 + sessions; duration = 20.; sessions })
      [ 1; 2; 3 ]
  in
  let serial = Runner.run_specs ~jobs:1 specs in
  let parallel = Runner.run_specs ~jobs:3 specs in
  List.iteri
    (fun i (a, b) ->
      match (a, b) with
      | E.Sweep_point p, E.Sweep_point q ->
          Alcotest.(check int)
            (Printf.sprintf "slot %d sessions" i)
            p.E.sessions q.E.sessions;
          Alcotest.(check (float 1e-9))
            (Printf.sprintf "slot %d average" i)
            p.E.average_kbps q.E.average_kbps
      | _ -> Alcotest.fail "unexpected result kind")
    (List.combine serial parallel)

(* Every registry entry must round-trip name -> spec -> run.  Abbreviated
   horizons keep this affordable; finite, sane summaries are the check. *)
let test_registry_roundtrip () =
  Alcotest.(check bool) "registry non-empty" true (List.length (Runner.all ()) > 50);
  List.iter
    (fun (e : Runner.entry) ->
      (match Runner.lookup e.Runner.name with
      | Some e' -> Alcotest.(check string) "lookup" e.Runner.name e'.Runner.name
      | None -> Alcotest.fail ("lookup failed for " ^ e.Runner.name));
      Alcotest.(check bool)
        (e.Runner.name ^ " in its group")
        true
        (List.exists
           (fun (g : Runner.entry) -> g.Runner.name = e.Runner.name)
           (Runner.find e.Runner.group)))
    (Runner.all ());
  (* Run one abbreviated representative of every group. *)
  List.iter
    (fun group ->
      let e = List.hd (Runner.find group) in
      let result =
        Runner.run_spec (Spec.scale_time e.Runner.spec ~factor:0.05)
      in
      let summary = Report.summary result in
      Alcotest.(check bool) (group ^ " summary non-empty") true (summary <> []);
      List.iter
        (fun (metric, v) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s %s finite" group metric)
            true (Float.is_finite v))
        summary)
    (Runner.groups ())

let test_registry_names_unique () =
  let names = List.map (fun (e : Runner.entry) -> e.Runner.name) (Runner.all ()) in
  let sorted = List.sort_uniq compare names in
  Alcotest.(check int) "no duplicate names" (List.length names)
    (List.length sorted)

(* --- sink well-formedness ---------------------------------------------- *)

let test_json_escaping () =
  Alcotest.(check string) "control chars"
    "\"a\\\"b\\\\c\\n\\t\\u0001\""
    (Json.to_string (Json.String "a\"b\\c\n\t\001"));
  Alcotest.(check string) "non-finite floats are null" "[null,null,1.5]"
    (Json.to_string
       (Json.List [ Json.Float Float.nan; Json.Float Float.infinity;
                    Json.Float 1.5 ]))

let test_jsonl_sink_shape () =
  let buf = Buffer.create 256 in
  let sink = Sink.jsonl (Buffer.add_string buf) in
  let record =
    { Sink.name = "na\"me,x"; group = "g";
      spec = Spec.Partial { Spec.default_partial with Spec.duration = 1. };
      result =
        E.Partial
          { E.protected_attacker_kbps = 1.; unprotected_attacker_kbps = 2.;
            honest_kbps = Float.nan };
      metrics = []; series = []; profile = None }
  in
  Sink.emit sink record;
  Sink.close sink;
  let line = Buffer.contents buf in
  Alcotest.(check bool) "newline-terminated" true
    (String.length line > 0 && line.[String.length line - 1] = '\n');
  Alcotest.(check bool) "quote escaped" true
    (let re = {|"name":"na\"me,x"|} in
     let rec find i =
       i + String.length re <= String.length line
       && (String.sub line i (String.length re) = re || find (i + 1))
     in
     find 0);
  Alcotest.(check bool) "nan serialised as null" true
    (let re = {|"honest_kbps":null|} in
     let rec find i =
       i + String.length re <= String.length line
       && (String.sub line i (String.length re) = re || find (i + 1))
     in
     find 0)

let test_csv_sink_shape () =
  let buf = Buffer.create 256 in
  let sink = Sink.csv (Buffer.add_string buf) in
  let record =
    { Sink.name = "a,b\"c"; group = "g";
      spec = Spec.Partial { Spec.default_partial with Spec.duration = 1. };
      result =
        E.Partial
          { E.protected_attacker_kbps = 1.25; unprotected_attacker_kbps = 2.;
            honest_kbps = 3. };
      metrics = []; series = []; profile = None }
  in
  Sink.emit sink record;
  Sink.close sink;
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' (Buffer.contents buf))
  in
  Alcotest.(check string) "header first" "name,group,metric,value"
    (List.hd lines);
  (* RFC 4180: a field containing commas or quotes is quoted, quotes doubled. *)
  List.iter
    (fun l ->
      Alcotest.(check bool) (l ^ " quoted") true
        (String.length l > 9 && String.sub l 0 9 = "\"a,b\"\"c\",")
    )
    (List.tl lines);
  Alcotest.(check int) "one row per metric"
    (List.length (Report.summary record.Sink.result))
    (List.length (List.tl lines))

let suite =
  ( "runner",
    [
      Alcotest.test_case "registry names unique" `Quick
        test_registry_names_unique;
      Alcotest.test_case "json escaping" `Quick test_json_escaping;
      Alcotest.test_case "jsonl sink shape" `Quick test_jsonl_sink_shape;
      Alcotest.test_case "csv sink shape" `Quick test_csv_sink_shape;
      Alcotest.test_case "parallel determinism" `Slow test_parallel_determinism;
      Alcotest.test_case "telemetry leaves sinks untouched" `Slow
        test_telemetry_sink_determinism;
      Alcotest.test_case "batch metrics" `Slow test_batch_metrics;
      Alcotest.test_case "run_specs order" `Slow test_run_specs_order;
      Alcotest.test_case "registry round-trip" `Slow test_registry_roundtrip;
    ] )
