(* The self-profiler (Mcc_obs.Prof) and the run-profile field-order
   contract (Mcc_obs.Profile): span nesting and accounting, the
   zero-cost disabled path, folded-stack output, and the rule that
   wall-clock fields render last so profile JSON stays byte-comparable
   across --jobs up to its deterministic prefix. *)

module Prof = Mcc_obs.Prof
module Profile = Mcc_obs.Profile
module Json = Mcc_obs.Json

let paths entries = List.map (fun (e : Prof.entry) -> e.Prof.path) entries

let entry entries path =
  match
    List.find_opt (fun (e : Prof.entry) -> e.Prof.path = path) entries
  with
  | Some e -> e
  | None ->
      Alcotest.failf "no entry for path %s" (String.concat ";" path)

let test_disabled () =
  Prof.reset ();
  Alcotest.(check bool) "off by default" false (Prof.enabled ());
  let sp = Prof.span "hot" in
  Alcotest.(check bool) "disabled token" true (sp == Prof.disabled);
  Prof.finish sp;
  Alcotest.(check int) "with_span is just f ()" 3
    (Prof.with_span "hot" (fun () -> 3));
  Alcotest.(check (list (list string))) "nothing recorded" []
    (paths (Prof.snapshot ()))

let test_nesting () =
  Prof.enable ();
  Prof.with_span "a" (fun () ->
      Prof.with_span "b" (fun () -> ignore (Sys.opaque_identity 1));
      Prof.with_span "b" (fun () -> ignore (Sys.opaque_identity 2));
      Prof.with_span "c" (fun () -> ()));
  Prof.with_span "a" (fun () -> ());
  let entries = Prof.snapshot () in
  Prof.disable ();
  Alcotest.(check (list (list string)))
    "preorder, creation order, same name under one parent merged"
    [ [ "a" ]; [ "a"; "b" ]; [ "a"; "c" ] ]
    (paths entries);
  let a = entry entries [ "a" ] and b = entry entries [ "a"; "b" ] in
  Alcotest.(check int) "a opened twice" 2 a.Prof.count;
  Alcotest.(check int) "b opened twice" 2 b.Prof.count;
  Alcotest.(check int) "b depth" 1 b.Prof.depth;
  Alcotest.(check bool) "totals are non-negative" true
    (a.Prof.total_s >= 0. && a.Prof.self_s >= 0.);
  Alcotest.(check bool) "parent total covers child total" true
    (a.Prof.total_s +. 1e-9 >= b.Prof.total_s);
  (* self_total telescopes back to root_total by construction. *)
  Alcotest.(check bool) "self sums to root total" true
    (Float.abs (Prof.self_total entries -. Prof.root_total entries) < 1e-9)

let test_exception_unwind () =
  Prof.enable ();
  (try
     Prof.with_span "outer" (fun () ->
         let _inner = Prof.span "inner" in
         raise Exit)
   with Exit -> ());
  let entries = Prof.snapshot () in
  Prof.disable ();
  Alcotest.(check (list (list string)))
    "finish closed the abandoned inner span too"
    [ [ "outer" ]; [ "outer"; "inner" ] ]
    (paths entries);
  (* The tree is well-formed again: a fresh root span nests at depth 0. *)
  Prof.enable ();
  Prof.with_span "again" (fun () -> ());
  Alcotest.(check (list (list string))) "clean tree after re-enable"
    [ [ "again" ] ]
    (paths (Prof.snapshot ()));
  Prof.disable ()

let test_folded () =
  Prof.enable ();
  Prof.with_span "run" (fun () ->
      Prof.with_span "engine" (fun () -> ignore (Sys.opaque_identity 1)));
  let entries = Prof.snapshot () in
  Prof.disable ();
  let lines = String.split_on_char '\n' (String.trim (Prof.folded entries)) in
  Alcotest.(check int) "one line per node" 2 (List.length lines);
  List.iter2
    (fun line prefix ->
      Alcotest.(check bool)
        (Printf.sprintf "%S starts with %S" line prefix)
        true
        (String.length line > String.length prefix
        && String.sub line 0 (String.length prefix) = prefix);
      (* ... and ends in a non-negative integer microsecond count. *)
      let n =
        String.sub line
          (String.length prefix + 1)
          (String.length line - String.length prefix - 1)
      in
      match int_of_string_opt n with
      | Some us -> Alcotest.(check bool) "self-us >= 0" true (us >= 0)
      | None -> Alcotest.failf "%S: %S is not an integer" line n)
    lines [ "run"; "run;engine" ]

let test_markdown () =
  Prof.enable ();
  Prof.with_span "run" (fun () -> Prof.with_span "engine" (fun () -> ()));
  let entries = Prof.snapshot () in
  Prof.disable ();
  (* An empty span pair can measure exactly 0.0 wall on a coarse clock,
     and to_markdown only renders the coverage line for positive wall
     time — floor it so the rendering under test is always exercised. *)
  let md =
    Prof.to_markdown ~wall_s:(Float.max 1e-9 (Prof.root_total entries)) entries
  in
  let has needle =
    let nl = String.length needle and ml = String.length md in
    let rec go i = i + nl <= ml && (String.sub md i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "table header" true (has "| component |");
  Alcotest.(check bool) "coverage line against wall time" true (has "cover");
  Alcotest.(check bool) "child row indented" true (has "&nbsp;&nbsp;`engine`")

(* Satellite regression: Profile.to_json must render every
   deterministic field (sched, events, queue_capacity, sched_stats)
   before the wall-clock fields, and omit sched_stats entirely when
   absent — that prefix rule is what keeps --jobs 1 and --jobs N
   metrics JSONL comparable up to the wall-clock suffix. *)
let find_sub s needle =
  let nl = String.length needle in
  let rec go i =
    if i + nl > String.length s then None
    else if String.sub s i nl = needle then Some i
    else go (i + 1)
  in
  go 0

let test_profile_field_order () =
  let stats =
    {
      Profile.pushes = 10;
      max_size = 4;
      capacities = [ 64 ];
      level_places = [ 3; 1; 0; 0 ];
      overflow = 1;
      drain_inserts = 2;
      free_hits = 5;
      free_misses = 6;
      pool_hits = 7;
      pool_misses = 8;
    }
  in
  let render wall_s =
    Json.to_string
      (Profile.to_json
         (Profile.make ~sched:"wheel" ~sched_stats:stats ~events:100
            ~queue_capacity:64 ~wall_s ()))
  in
  let a = render 0.5 and b = render 0.25 in
  let wall_at s =
    match find_sub s "\"wall_s\"" with
    | Some i -> i
    | None -> Alcotest.failf "no wall_s field in %s" s
  in
  Alcotest.(check string)
    "deterministic prefix is byte-identical across different wall clocks"
    (String.sub a 0 (wall_at a))
    (String.sub b 0 (wall_at b));
  let stats_at =
    match find_sub a "\"sched_stats\"" with
    | Some i -> i
    | None -> Alcotest.fail "sched_stats missing when provided"
  in
  Alcotest.(check bool) "sched_stats renders before wall_s" true
    (stats_at < wall_at a);
  (match find_sub a "\"events_per_sec\"" with
  | Some i -> Alcotest.(check bool) "events_per_sec after wall_s" true (i > wall_at a)
  | None -> Alcotest.fail "events_per_sec missing");
  let bare =
    Json.to_string
      (Profile.to_json
         (Profile.make ~sched:"heap" ~events:100 ~queue_capacity:64
            ~wall_s:0.5 ()))
  in
  Alcotest.(check (option int)) "sched_stats omitted entirely when absent"
    None
    (find_sub bare "sched_stats");
  match Json.of_string a with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "profile JSON does not parse: %s" e

let suite =
  ( "prof",
    [
      Alcotest.test_case "disabled is inert" `Quick test_disabled;
      Alcotest.test_case "nesting and accounting" `Quick test_nesting;
      Alcotest.test_case "exception unwind" `Quick test_exception_unwind;
      Alcotest.test_case "folded stacks" `Quick test_folded;
      Alcotest.test_case "markdown table" `Quick test_markdown;
      Alcotest.test_case "profile field order" `Quick test_profile_field_order;
    ] )
